package qed2

import (
	"math/big"
	"strings"
	"testing"
)

func TestAnalyzeSourceSafe(t *testing.T) {
	report, err := AnalyzeSource(`
pragma circom 2.0.0;
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
component main = Mul();
`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Safe {
		t.Fatalf("verdict = %v (%s)", report.Verdict, report.Reason)
	}
}

func TestAnalyzeSourceWithBundledLibrary(t *testing.T) {
	report, err := AnalyzeSource(`
pragma circom 2.0.0;
include "multiplexer.circom";
component main = Decoder(4);
`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Unsafe {
		t.Fatalf("Decoder verdict = %v (%s), want unsafe", report.Verdict, report.Reason)
	}
	if report.Counter == nil {
		t.Fatal("unsafe without counterexample")
	}
}

func TestAnalyzeSourceUserLibraryOverride(t *testing.T) {
	lib := map[string]string{
		"mine.circom": `
template Pass() {
    signal input a;
    signal output b;
    b <== a;
}
`,
	}
	report, err := AnalyzeSource(`
include "mine.circom";
component main = Pass();
`, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Safe {
		t.Fatalf("verdict = %v", report.Verdict)
	}
}

func TestCompileAndWitnessRoundTrip(t *testing.T) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "comparators.circom";
component main = IsEqual();
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := prog.GenerateWitness(map[string]*big.Int{
		"in[0]": big.NewInt(7), "in[1]": big.NewInt(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.System.CheckWitness(w); err != nil {
		t.Fatal(err)
	}
	if w[prog.OutputNames["out"]].Int64() != 1 {
		t.Error("IsEqual(7,7) != 1")
	}
}

func TestSystemTextRoundTripThroughFacade(t *testing.T) {
	prog, err := Compile(`
template T() { signal input a; signal output b; b <== 2*a + 1; }
component main = T();
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.System.MarshalText()
	sys, err := ParseSystem(text)
	if err != nil {
		t.Fatal(err)
	}
	report := AnalyzeSystem(sys, nil)
	if report.Verdict != Safe {
		t.Fatalf("verdict after round trip = %v", report.Verdict)
	}
}

func TestNewFieldFacade(t *testing.T) {
	f, err := NewField("97")
	if err != nil || f.BitLen() != 7 {
		t.Fatalf("NewField(97): %v %v", f, err)
	}
	if _, err := NewField("96"); err == nil {
		t.Error("NewField(96) accepted composite")
	}
	if _, err := NewField("giraffe"); err == nil {
		t.Error("NewField(giraffe) accepted garbage")
	}
	if BN254().BitLen() != 254 {
		t.Error("BN254 facade broken")
	}
}

func TestCircomLibIsCopy(t *testing.T) {
	a := CircomLib()
	if len(a) == 0 || !strings.Contains(a["comparators.circom"], "IsZero") {
		t.Fatal("bundled library incomplete")
	}
	a["comparators.circom"] = "tampered"
	b := CircomLib()
	if b["comparators.circom"] == "tampered" {
		t.Error("CircomLib returns shared state")
	}
}
