package qed2

import (
	"fmt"
	"math/big"
	"strings"
	"testing"

	"qed2/internal/bench"
	"qed2/internal/core"
)

func TestAnalyzeSourceSafe(t *testing.T) {
	report, err := AnalyzeSource(`
pragma circom 2.0.0;
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
component main = Mul();
`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Safe {
		t.Fatalf("verdict = %v (%s)", report.Verdict, report.Reason)
	}
}

func TestAnalyzeSourceWithBundledLibrary(t *testing.T) {
	report, err := AnalyzeSource(`
pragma circom 2.0.0;
include "multiplexer.circom";
component main = Decoder(4);
`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Unsafe {
		t.Fatalf("Decoder verdict = %v (%s), want unsafe", report.Verdict, report.Reason)
	}
	if report.Counter == nil {
		t.Fatal("unsafe without counterexample")
	}
}

func TestAnalyzeSourceUserLibraryOverride(t *testing.T) {
	lib := map[string]string{
		"mine.circom": `
template Pass() {
    signal input a;
    signal output b;
    b <== a;
}
`,
	}
	report, err := AnalyzeSource(`
include "mine.circom";
component main = Pass();
`, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Safe {
		t.Fatalf("verdict = %v", report.Verdict)
	}
}

func TestCompileAndWitnessRoundTrip(t *testing.T) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "comparators.circom";
component main = IsEqual();
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := prog.GenerateWitness(map[string]*big.Int{
		"in[0]": big.NewInt(7), "in[1]": big.NewInt(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.System.CheckWitness(w); err != nil {
		t.Fatal(err)
	}
	if !prog.System.Field().IsOne(w[prog.OutputNames["out"]]) {
		t.Error("IsEqual(7,7) != 1")
	}
}

func TestSystemTextRoundTripThroughFacade(t *testing.T) {
	prog, err := Compile(`
template T() { signal input a; signal output b; b <== 2*a + 1; }
component main = T();
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.System.MarshalText()
	sys, err := ParseSystem(text)
	if err != nil {
		t.Fatal(err)
	}
	report := AnalyzeSystem(sys, nil)
	if report.Verdict != Safe {
		t.Fatalf("verdict after round trip = %v", report.Verdict)
	}
}

func TestNewFieldFacade(t *testing.T) {
	f, err := NewField("97")
	if err != nil || f.BitLen() != 7 {
		t.Fatalf("NewField(97): %v %v", f, err)
	}
	if _, err := NewField("96"); err == nil {
		t.Error("NewField(96) accepted composite")
	}
	if _, err := NewField("giraffe"); err == nil {
		t.Error("NewField(giraffe) accepted garbage")
	}
	if BN254().BitLen() != 254 {
		t.Error("BN254 facade broken")
	}
}

func TestCircomLibIsCopy(t *testing.T) {
	a := CircomLib()
	if len(a) == 0 || !strings.Contains(a["comparators.circom"], "IsZero") {
		t.Fatal("bundled library incomplete")
	}
	a["comparators.circom"] = "tampered"
	b := CircomLib()
	if b["comparators.circom"] == "tampered" {
		t.Error("CircomLib returns shared state")
	}
}

// canonicalReport renders everything observable about a report except
// timing and the worker count — the two fields that legitimately vary with
// the parallelism configuration.
func canonicalReport(r *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict=%s reason=%q\n", r.Verdict, r.Reason)
	s := r.Stats
	fmt.Fprintf(&b, "signals=%d outputs=%d cons=%d prop=%d bits=%d smt=%d uniq=%d queries=%d steps=%d cache=%d\n",
		s.SignalsTotal, s.Outputs, s.Constraints, s.PropagationUnique, s.BitsUnique,
		s.SMTUnique, s.UniqueTotal, s.Queries, s.SolverSteps, s.CacheHits)
	if ce := r.Counter; ce != nil {
		fmt.Fprintf(&b, "ce signal=%d diff=", ce.Signal)
		for i := range ce.W1 {
			if ce.W1[i] != ce.W2[i] {
				// Raw limbs are canonical per field, so %v is deterministic.
				fmt.Fprintf(&b, " %d:%v|%v", i, ce.W1[i], ce.W2[i])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestSuiteDeterministicAcrossWorkerCounts pins the parallel query engine's
// central guarantee: for every circuit in the evaluation suite, the report
// (verdict, statistics, counterexample) is byte-identical whether queries
// run on one worker or eight. No wall-clock timeout is set — a timeout is
// the one documented source of nondeterminism.
func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run skipped with -short")
	}
	insts := bench.Suite()
	cfg := core.Config{QuerySteps: 10_000, GlobalSteps: 100_000, Seed: 1}
	run := func(workers int) []bench.Result {
		c := cfg
		c.Workers = workers
		return bench.Run(insts, &bench.RunOptions{Config: c, Workers: 4})
	}
	one := run(1)
	eight := run(8)
	for i := range insts {
		if one[i].CompileErr != nil || eight[i].CompileErr != nil {
			t.Errorf("%s: compile error: %v / %v", insts[i].Name, one[i].CompileErr, eight[i].CompileErr)
			continue
		}
		a, b := canonicalReport(one[i].Report), canonicalReport(eight[i].Report)
		if a != b {
			t.Errorf("%s: report differs between 1 and 8 workers:\n--- workers=1\n%s--- workers=8\n%s",
				insts[i].Name, a, b)
		}
	}
}

// TestDigestStableAcrossCompilesAndAnalysis pins the content-address
// contract the qed2d store keys on: recompiling the same source yields the
// same digest, and analyzing a system — with any worker count — never
// perturbs it (analysis treats the system as read-only).
func TestDigestStableAcrossCompilesAndAnalysis(t *testing.T) {
	const src = `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`
	p1, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := Digest(p1.System)
	if len(d) != 64 {
		t.Fatalf("digest %q is not a hex SHA-256", d)
	}
	if d2 := Digest(p2.System); d2 != d {
		t.Fatalf("recompiling the same source changed the digest: %s vs %s", d, d2)
	}
	for _, workers := range []int{1, 8} {
		r := AnalyzeSystem(p1.System, &Config{Workers: workers, Seed: 1})
		if r.Verdict != Safe {
			t.Fatalf("workers=%d: verdict = %v (%s)", workers, r.Verdict, r.Reason)
		}
		if got := Digest(p1.System); got != d {
			t.Fatalf("workers=%d: analysis mutated the system digest: %s vs %s", workers, got, d)
		}
	}
	if Version() == "" {
		t.Fatal("Version() is empty")
	}
}
