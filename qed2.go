// Package qed2 detects under-constrained arithmetic circuits in
// zero-knowledge proof programs, implementing the analysis of
//
//	Pailoor, Chen, Wang, Rodríguez-Núñez, Van Geffen, Morton, Chu, Gu,
//	Feng, Dillig. "Automated Detection of Under-Constrained Circuits in
//	Zero-Knowledge Proofs." PLDI 2023 (DOI 10.1145/3591282).
//
// A circuit compiled from a DSL like Circom is a system of polynomial
// equations over a prime field. It is under-constrained when two different
// witnesses satisfy every constraint while agreeing on all inputs — a
// malicious prover can then have a verifier accept a claim it should
// reject. This package compiles a faithful Circom subset to rank-1
// constraint systems and decides, per output signal, whether it is uniquely
// determined by the inputs, combining lightweight uniqueness-constraint
// propagation with SMT-style reasoning over the finite field.
//
// # Quick start
//
//	report, err := qed2.AnalyzeSource(src, nil, nil)
//	if err != nil { ... }
//	switch report.Verdict {
//	case qed2.Safe:    // every output uniquely determined
//	case qed2.Unsafe:  // report.Counter holds a checked witness pair
//	case qed2.Unknown: // undecided within budget (report.Reason says why)
//	}
//
// The cmd/qed2 command wraps this API for the command line, and
// cmd/qed2bench regenerates the evaluation tables of the paper.
package qed2

import (
	"context"
	"fmt"
	"math/big"

	"qed2/internal/bench"
	"qed2/internal/buildinfo"
	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/ff"
	"qed2/internal/r1cs"
)

// Verdict classifies a circuit: Safe, Unsafe or Unknown.
type Verdict = core.Verdict

// Verdicts.
const (
	// Safe: every output signal is uniquely determined by the inputs.
	Safe = core.VerdictSafe
	// Unsafe: a checked witness pair demonstrates non-uniqueness.
	Unsafe = core.VerdictUnsafe
	// Unknown: undecided within the configured budget.
	Unknown = core.VerdictUnknown
)

// Mode selects the analysis configuration.
type Mode = core.Mode

// Analysis modes.
const (
	// ModeFull is the paper's combination of propagation and sliced SMT
	// queries (the default).
	ModeFull = core.ModeFull
	// ModePropagationOnly runs only the inference rules (Ecne-style
	// baseline).
	ModePropagationOnly = core.ModePropagationOnly
	// ModeSMTOnly issues monolithic whole-circuit queries (naive SMT
	// baseline).
	ModeSMTOnly = core.ModeSMTOnly
)

// Config tunes the analysis; the zero value (or nil) uses the defaults
// documented on the fields of core.Config.
type Config = core.Config

// Report is the analysis result: verdict, effort statistics, and — for
// Unsafe — a checked CounterExample.
type Report = core.Report

// CounterExample is a pair of witnesses that satisfy every constraint,
// agree on all inputs, and differ on an output signal.
type CounterExample = core.CounterExample

// Program is a compiled circuit: its constraint system plus the
// witness-generation program.
type Program = circom.Program

// CompileOptions configures circuit compilation (field, include library,
// resource budgets).
type CompileOptions = circom.CompileOptions

// System is a rank-1 constraint system.
type System = r1cs.System

// Witness is a full assignment to every signal of a System.
type Witness = r1cs.Witness

// Field is a prime field F_p.
type Field = ff.Field

// BN254 returns the scalar field of the BN254 curve — the default field of
// the Circom toolchain.
func BN254() *Field { return ff.BN254() }

// NewField constructs F_p for a prime modulus given in decimal or 0x-hex.
func NewField(modulus string) (*Field, error) {
	m, ok := new(big.Int).SetString(modulus, 0)
	if !ok {
		return nil, fmt.Errorf("qed2: cannot parse modulus %q", modulus)
	}
	return ff.NewField(m)
}

// Compile compiles Circom source (which must declare a main component).
// Includes resolve against opts.Library; CircomLib() provides the bundled
// circomlib subset.
func Compile(src string, opts *CompileOptions) (*Program, error) {
	return circom.Compile(src, opts)
}

// Analyze runs the under-constraint analysis on a compiled circuit.
func Analyze(prog *Program, cfg *Config) *Report {
	return core.Analyze(prog.System, cfg)
}

// AnalyzeContext is Analyze with cancellation: when ctx is canceled (or its
// deadline — unified with cfg.Timeout, whichever is earlier — fires), the
// analysis stops at the next query boundary and returns a partial report
// with Verdict Unknown and Reason "canceled" instead of the undecided part.
// Decided safe/unsafe verdicts are never revoked by cancellation.
func AnalyzeContext(ctx context.Context, prog *Program, cfg *Config) *Report {
	return core.AnalyzeContext(ctx, prog.System, cfg)
}

// AnalyzeSystem runs the analysis directly on a constraint system (e.g. one
// parsed from the text format rather than compiled from source).
func AnalyzeSystem(sys *System, cfg *Config) *Report {
	return core.Analyze(sys, cfg)
}

// AnalyzeSystemContext is AnalyzeSystem with cancellation (see
// AnalyzeContext for the semantics).
func AnalyzeSystemContext(ctx context.Context, sys *System, cfg *Config) *Report {
	return core.AnalyzeContext(ctx, sys, cfg)
}

// AnalyzeSource compiles and analyzes in one step. The library may be nil;
// includes then resolve against the bundled circomlib subset.
func AnalyzeSource(src string, library map[string]string, cfg *Config) (*Report, error) {
	return AnalyzeSourceContext(context.Background(), src, library, cfg)
}

// AnalyzeSourceContext is AnalyzeSource with cancellation (see
// AnalyzeContext for the semantics). Compilation itself is not interrupted;
// the context governs the analysis phase.
func AnalyzeSourceContext(ctx context.Context, src string, library map[string]string, cfg *Config) (*Report, error) {
	lib := CircomLib()
	for k, v := range library {
		lib[k] = v
	}
	prog, err := circom.Compile(src, &circom.CompileOptions{Library: lib})
	if err != nil {
		return nil, err
	}
	return core.AnalyzeContext(ctx, prog.System, cfg), nil
}

// CircomLib returns the bundled circomlib-subset sources (comparators,
// bitify, gates, mux, multiplexer, curve operations, MiMC, …), keyed by
// include name. The map is a fresh copy the caller may extend.
func CircomLib() map[string]string {
	return bench.Library()
}

// ParseSystem reads a constraint system from the text format produced by
// (*System).MarshalText / the qed2 -r1cs flag.
func ParseSystem(text string) (*System, error) {
	return r1cs.ParseString(text)
}

// Digest returns the content address of a constraint system: the SHA-256
// of its canonical form, independent of constraint order. Two systems with
// equal digests produce identical analysis reports under one configuration
// — the keying invariant of the qed2d report store.
func Digest(sys *System) string {
	return sys.Digest()
}

// Version describes the build ("version revision goversion"), the same
// stamp qed2d reports from /healthz and embeds in cached reports.
func Version() string {
	return buildinfo.Get().String()
}
