package qed2_test

import (
	"fmt"
	"math/big"

	"qed2"
)

// ExampleAnalyzeSource analyzes the classic broken IsZero and prints the
// verdict with its counterexample.
func ExampleAnalyzeSource() {
	src := `
pragma circom 2.0.0;
template IsZeroBroken() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    // missing:  in*out === 0;
}
component main = IsZeroBroken();
`
	report, err := qed2.AnalyzeSource(src, nil, &qed2.Config{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verdict:", report.Verdict)
	fmt.Println("has counterexample:", report.Counter != nil)
	// Output:
	// verdict: unsafe
	// has counterexample: true
}

// ExampleCompile compiles a circuit against the bundled circomlib subset
// and generates a checked witness.
func ExampleCompile() {
	prog, err := qed2.Compile(`
pragma circom 2.0.0;
include "bitify.circom";
component main = Num2Bits(4);
`, &qed2.CompileOptions{Library: qed2.CircomLib()})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w, err := prog.GenerateWitness(map[string]*big.Int{"in": big.NewInt(13)})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("out[%d]", i)
		fmt.Printf("%s = %s\n", name, prog.System.Field().String(w[prog.OutputNames[name]]))
	}
	// Output:
	// out[0] = 1
	// out[1] = 0
	// out[2] = 1
	// out[3] = 1
}

// ExampleAnalyze shows the full compile-then-analyze flow on a safe
// circuit.
func ExampleAnalyze() {
	prog, err := qed2.Compile(`
template Square() {
    signal input x;
    signal output y;
    y <== x * x;
}
component main = Square();
`, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	report := qed2.Analyze(prog, nil)
	fmt.Println("verdict:", report.Verdict)
	fmt.Println("signals proven unique:", report.Stats.UniqueTotal, "of", report.Stats.SignalsTotal)
	// Output:
	// verdict: safe
	// signals proven unique: 3 of 3
}
