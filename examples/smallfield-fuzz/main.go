// smallfield-fuzz cross-validates the analyzer against ground truth: it
// generates random constraint systems over a tiny prime field, decides
// output-uniqueness exactly by exhaustive enumeration, and checks that
// every Safe/Unsafe verdict the analyzer produces agrees with reality.
//
// Over F_13 the whole witness space of a 4-signal circuit is only 13³
// points, so the brute-force oracle is exact. This is the same methodology
// the test suite uses for its soundness property tests, exposed as a
// runnable tool so the guarantee is easy to reproduce at any scale.
//
// Run with:
//
//	go run ./examples/smallfield-fuzz            # 300 random circuits
//	go run ./examples/smallfield-fuzz -n 2000    # more
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"qed2"
	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

func main() {
	n := flag.Int("n", 300, "number of random circuits")
	seed := flag.Int64("seed", 2024, "generator seed")
	flag.Parse()

	f13 := ff.MustField(big.NewInt(13))
	rng := rand.New(rand.NewSource(*seed))

	var safe, unsafeN, unknown int
	for iter := 0; iter < *n; iter++ {
		sys := randomSystem(f13, rng)
		gotUnique, gotPair := bruteForceUniqueness(sys)
		report := qed2.AnalyzeSystem(sys, &qed2.Config{Seed: int64(iter)})
		switch report.Verdict {
		case qed2.Safe:
			safe++
			if !gotUnique {
				log.Fatalf("UNSOUND Safe verdict on circuit %d:\n%s", iter, sys.MarshalText())
			}
		case qed2.Unsafe:
			unsafeN++
			if !gotPair {
				log.Fatalf("UNSOUND Unsafe verdict on circuit %d:\n%s", iter, sys.MarshalText())
			}
		default:
			unknown++
		}
	}
	fmt.Printf("fuzzed %d random circuits over F_13\n", *n)
	fmt.Printf("  safe:    %d (every one verified unique by exhaustive enumeration)\n", safe)
	fmt.Printf("  unsafe:  %d (every one confirmed by a real witness pair)\n", unsafeN)
	fmt.Printf("  unknown: %d (honestly undecided — never a wrong answer)\n", unknown)
	fmt.Printf("decision rate: %.1f%%, zero unsound verdicts\n",
		100*float64(safe+unsafeN)/float64(*n))
}

// randomSystem builds a small random R1CS over f.
func randomSystem(f *ff.Field, rng *rand.Rand) *r1cs.System {
	sys := r1cs.NewSystem(f)
	sys.AddSignal("", r1cs.KindInput)
	sys.AddSignal("", r1cs.KindInternal)
	sys.AddSignal("", r1cs.KindOutput)
	if rng.Intn(2) == 0 {
		sys.AddSignal("", r1cs.KindOutput)
	}
	n := sys.NumSignals()
	p := int64(f.SmallModulus())
	randLC := func() *poly.LinComb {
		out := poly.ConstInt(f, rng.Int63n(p))
		for v := 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				out = out.AddTerm(v, f.NewElement(rng.Int63n(p)))
			}
		}
		return out
	}
	for k := 1 + rng.Intn(3); k > 0; k-- {
		sys.AddConstraint(randLC(), randLC(), randLC(), "")
	}
	return sys
}

// bruteForceUniqueness enumerates every assignment and reports whether all
// outputs are unique per input class, and whether some witness pair agrees
// on inputs but differs on an output.
func bruteForceUniqueness(sys *r1cs.System) (allUnique, pairExists bool) {
	f := sys.Field()
	p := int64(f.SmallModulus())
	n := sys.NumSignals()
	total := int64(1)
	for i := 1; i < n; i++ {
		total *= p
	}
	byInput := map[string][]string{}
	w := sys.NewWitness()
	for enc := int64(0); enc < total; enc++ {
		v := enc
		for i := 1; i < n; i++ {
			w[i] = f.NewElement(v % p)
			v /= p
		}
		if sys.CheckWitness(w) != nil {
			continue
		}
		var ik, ok []byte
		for _, in := range sys.Inputs() {
			ik = append(ik, byte('a'+f.ToBig(w[in]).Int64()))
		}
		for _, o := range sys.Outputs() {
			ok = append(ok, byte('a'+f.ToBig(w[o]).Int64()))
		}
		byInput[string(ik)] = append(byInput[string(ik)], string(ok))
	}
	allUnique = true
	for _, outs := range byInput {
		for i := 1; i < len(outs); i++ {
			if outs[i] != outs[0] {
				allUnique = false
				pairExists = true
			}
		}
	}
	return allUnique, pairExists
}
