// Quickstart: compile a small Circom circuit, analyze it, and inspect the
// result — the minimal end-to-end tour of the qed2 API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qed2"
)

// A correct circuit: out is fully determined by the two inputs.
const safeSrc = `
pragma circom 2.0.0;

template Multiplier() {
    signal input a;
    signal input b;
    signal output out;
    out <== a * b;
}

component main = Multiplier();
`

// The classic bug: inv is assigned with <-- (witness-only) and the
// constraint that pins out down (in*out === 0) is missing, so a malicious
// prover can claim IsZero(x) = 0 even when x == 0.
const buggySrc = `
pragma circom 2.0.0;

template IsZeroBroken() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    // missing:  in*out === 0;
}

component main = IsZeroBroken();
`

func main() {
	fmt.Println("== analyzing a correct Multiplier ==")
	report, err := qed2.AnalyzeSource(safeSrc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s (proved %d/%d signals unique, %d SMT queries)\n\n",
		report.Verdict, report.Stats.UniqueTotal, report.Stats.SignalsTotal, report.Stats.Queries)

	fmt.Println("== analyzing a broken IsZero ==")
	prog, err := qed2.Compile(buggySrc, nil)
	if err != nil {
		log.Fatal(err)
	}
	report = qed2.Analyze(prog, nil)
	fmt.Printf("verdict: %s\n", report.Verdict)
	if report.Verdict != qed2.Unsafe {
		log.Fatalf("expected Unsafe, got %s (%s)", report.Verdict, report.Reason)
	}

	// The counterexample is a pair of *checked* witnesses: both satisfy
	// every constraint, agree on the input, and disagree on the output.
	ce := report.Counter
	sys := prog.System
	f := sys.Field()
	fmt.Println("\ncounterexample (same input, two accepted outputs):")
	for _, name := range prog.SortedInputNames() {
		id := prog.InputNames[name]
		fmt.Printf("  input  %-4s = %s\n", name, f.String(ce.W1[id]))
	}
	fmt.Printf("  output %-4s = %s   in witness 1\n", sys.Name(ce.Signal), f.String(ce.W1[ce.Signal]))
	fmt.Printf("  output %-4s = %s   in witness 2\n", sys.Name(ce.Signal), f.String(ce.W2[ce.Signal]))

	// Verify the pair once more by hand — both really satisfy the circuit.
	if err := sys.CheckWitness(ce.W1); err != nil {
		log.Fatal(err)
	}
	if err := sys.CheckWitness(ce.W2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nboth witnesses re-checked against every constraint: the circuit is exploitable")
}
