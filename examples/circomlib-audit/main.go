// circomlib-audit sweeps the bundled circomlib-subset templates the way an
// auditor would: instantiate each widely-used template standalone, analyze
// it, and report which ones admit forged witnesses.
//
// This reproduces the headline finding of the paper: several templates that
// ship in the standard library (Decoder, the Montgomery/Edwards conversions
// and Montgomery arithmetic) are under-constrained as standalone circuits.
//
// Run with:
//
//	go run ./examples/circomlib-audit
package main

import (
	"fmt"
	"time"

	"qed2"
)

// audit lists template instantiations an auditor would screen.
var audit = []struct {
	name string
	main string
}{
	{"IsZero", "component main = IsZero();"},
	{"IsEqual", "component main = IsEqual();"},
	{"LessThan(32)", "component main = LessThan(32);"},
	{"Num2Bits(32)", "component main = Num2Bits(32);"},
	{"Bits2Num(16)", "component main = Bits2Num(16);"},
	{"AND", "component main = AND();"},
	{"MultiAND(16)", "component main = MultiAND(16);"},
	{"Mux2", "component main = Mux2();"},
	{"Switcher", "component main = Switcher();"},
	{"Multiplexer(2,4)", "component main = Multiplexer(2, 4);"},
	{"MiMC7(91)", "component main = MiMC7(91);"},
	{"Decoder(8)", "component main = Decoder(8);"},
	{"Edwards2Montgomery", "component main = Edwards2Montgomery();"},
	{"Montgomery2Edwards", "component main = Montgomery2Edwards();"},
	{"MontgomeryAdd", "component main = MontgomeryAdd();"},
	{"MontgomeryDouble", "component main = MontgomeryDouble();"},
	{"BabyAdd", "component main = BabyAdd();"},
}

// includes that cover every template above.
const header = `
pragma circom 2.0.0;
include "comparators.circom";
include "bitify.circom";
include "gates.circom";
include "mux2.circom";
include "switcher.circom";
include "multiplexer.circom";
include "montgomery.circom";
include "babyjub.circom";
include "mimc.circom";
`

func main() {
	fmt.Printf("%-22s %-9s %-28s %s\n", "TEMPLATE", "VERDICT", "DETAIL", "TIME")
	var unsafeCount int
	for _, a := range audit {
		t0 := time.Now()
		report, err := qed2.AnalyzeSource(header+a.main, nil, &qed2.Config{
			Timeout: 5 * time.Second,
			Seed:    1,
		})
		if err != nil {
			fmt.Printf("%-22s %-9s %v\n", a.name, "ERROR", err)
			continue
		}
		detail := ""
		switch report.Verdict {
		case qed2.Unsafe:
			unsafeCount++
			detail = "forgeable — witness pair found"
		case qed2.Safe:
			detail = fmt.Sprintf("unique outputs (%d facts)", report.Stats.UniqueTotal)
		default:
			detail = report.Reason
			if len(detail) > 28 {
				detail = detail[:28]
			}
		}
		fmt.Printf("%-22s %-9s %-28s %s\n",
			a.name, report.Verdict, detail, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\n%d of %d audited templates are under-constrained.\n", unsafeCount, len(audit))
	fmt.Println("Decoder and the Montgomery templates are real circomlib code — the same")
	fmt.Println("findings the paper reported as previously-unknown vulnerabilities.")
}
