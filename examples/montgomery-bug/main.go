// montgomery-bug reproduces one of the paper's real findings end to end:
// circomlib's MontgomeryDouble is under-constrained because its witness
// hint divides by 2·B·y without a constraint excluding y = 0.
//
// The example (1) analyzes the template, (2) prints the forged witness pair
// the analyzer constructed, (3) re-derives the attack by hand to show why
// it works, and (4) shows that the obvious fix — constraining the
// denominator to be invertible — makes the analyzer prove the template safe
// for that input class.
//
// Run with:
//
//	go run ./examples/montgomery-bug
package main

import (
	"fmt"
	"log"

	"qed2"
)

const vulnerable = `
pragma circom 2.0.0;
include "montgomery.circom";
component main = MontgomeryDouble();
`

// The repaired template adds an inverse witness for the denominator,
// turning "denominator is zero" into an unsatisfiable input class instead
// of a free output.
const repaired = `
pragma circom 2.0.0;

template MontgomeryDoubleFixed() {
    signal input in[2];
    signal output out[2];

    var a = 168700;
    var d = 168696;
    var A = (2 * (a + d)) / (a - d);
    var B = 4 / (a - d);

    signal lamda;
    signal x1_2;
    signal denomInv;

    x1_2 <== in[0] * in[0];

    // FIX: force the denominator 2*B*in[1] to be invertible.
    denomInv <-- 1 / (2*B*in[1]);
    denomInv * (2*B*in[1]) === 1;

    lamda <== (3*x1_2 + 2*A*in[0] + 1) * denomInv;
    lamda * (2*B*in[1]) === (3*x1_2 + 2*A*in[0] + 1);

    out[0] <== B*lamda*lamda - A - 2*in[0];
    out[1] <== lamda * (in[0] - out[0]) - in[1];
}

component main = MontgomeryDoubleFixed();
`

func main() {
	fmt.Println("== 1. analyzing circomlib's MontgomeryDouble ==")
	prog, err := qed2.Compile(vulnerable, &qed2.CompileOptions{Library: qed2.CircomLib()})
	if err != nil {
		log.Fatal(err)
	}
	report := qed2.Analyze(prog, &qed2.Config{Seed: 1})
	fmt.Printf("verdict: %s\n\n", report.Verdict)
	if report.Verdict != qed2.Unsafe {
		log.Fatalf("expected Unsafe, got %s (%s)", report.Verdict, report.Reason)
	}

	sys := prog.System
	f := sys.Field()
	ce := report.Counter
	fmt.Println("== 2. the forged witness pair ==")
	fmt.Println("shared inputs (an attacker-chosen point with y = 0):")
	for _, name := range prog.SortedInputNames() {
		id := prog.InputNames[name]
		fmt.Printf("  %-8s = %s\n", name, f.String(ce.W1[id]))
	}
	fmt.Println("signals where the two accepted witnesses diverge:")
	for id := 1; id < sys.NumSignals(); id++ {
		if ce.W1[id] != ce.W2[id] {
			fmt.Printf("  %-8s = %-30.30s... vs %-30.30s...\n",
				sys.Name(id), f.String(ce.W1[id]), f.String(ce.W2[id]))
		}
	}

	fmt.Println("\n== 3. why the attack works ==")
	fmt.Println("the only constraint mentioning lamda is")
	fmt.Println("    lamda * (2*B*in[1]) === 3*x1_2 + 2*A*in[0] + 1")
	fmt.Println("with in[1] = 0 the left side vanishes for ANY lamda; the input can be")
	fmt.Println("chosen so the right side vanishes too (a root of 3x² + 2Ax + 1), after")
	fmt.Println("which lamda — and through it both outputs — is entirely prover-chosen.")
	in1 := prog.InputNames["in[1]"]
	if !ce.W1[in1].IsZero() {
		log.Fatal("unexpected: counterexample does not use the y=0 class")
	}

	fmt.Println("\n== 4. the repaired template ==")
	fixedReport, err := qed2.AnalyzeSource(repaired, nil, &qed2.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict after fix: %s\n", fixedReport.Verdict)
	if fixedReport.Verdict != qed2.Safe {
		log.Fatalf("expected Safe after fix, got %s (%s)", fixedReport.Verdict, fixedReport.Reason)
	}
	fmt.Println("constraining the denominator to be invertible removes the attack class:")
	fmt.Println("every output is now provably unique for all accepted inputs")
}
