// circomlib's MontgomeryDouble, unmodified: under-constrained because the
// witness hint divides by 2·B·y without a constraint excluding y = 0.
// Analyze with:
//
//	go run ./cmd/qed2 examples/montgomery-bug/circuit.circom
//
// (the include resolves against the bundled circomlib subset), or run
// `go run ./examples/montgomery-bug` for the full guided walkthrough.
pragma circom 2.0.0;
include "montgomery.circom";
component main = MontgomeryDouble();
