package gen

import (
	"fmt"
	"math/big"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// A bug records the deliberate under-constraint planted by a buggy gadget:
// the alternate assignments for its internal signals (everything outside
// the gadget keeps its honest value — bug outputs never enter the builder
// pool, so nothing downstream consumes them except the collector), and the
// carrier signal whose divergence the collector forwards to an output.
type bug struct {
	alt     map[int]ff.Element
	carrier int
}

// gadgetIsZero emits the full circomlib IsZero core on a pool signal:
//
//	x*inv = 1 - out
//	x*out = 0
//
// Both constraints together pin out to [x == 0]; out joins the boolean pool.
func (b *builder) gadgetIsZero() {
	f := b.f
	x := b.pick()
	var inv, out ff.Element
	if b.vals[x].IsZero() {
		out = f.One()
	} else {
		inv = f.MustInv(b.vals[x])
	}
	invID := b.fresh("isz.inv", r1cs.KindInternal, inv)
	outID := b.fresh("isz.out", r1cs.KindInternal, out)
	b.sys.MarkHinted(invID)
	b.sys.AddConstraint(poly.Var(f, x), poly.Var(f, invID),
		poly.ConstInt(f, 1).Sub(poly.Var(f, outID)), "iszero")
	b.sys.AddConstraint(poly.Var(f, x), poly.Var(f, outID), poly.NewLinComb(f), "iszero-check")
	b.pool = append(b.pool, outID)
	b.boolPool = append(b.boolPool, outID)
}

// bugIsZero is gadgetIsZero with the x*out = 0 check dropped — the classic
// circomlib-shaped bug. With x ≠ 0 the honest branch gives out = 0, but
// inv = 0, out = 1 also satisfies the surviving constraint.
func (b *builder) bugIsZero() *bug {
	f := b.f
	x := b.pickNonzero()
	inv := f.MustInv(b.vals[x])
	invID := b.fresh("bisz.inv", r1cs.KindInternal, inv)
	outID := b.fresh("bisz.out", r1cs.KindInternal, f.Zero())
	b.sys.MarkHinted(invID)
	b.sys.MarkHinted(outID)
	b.sys.AddConstraint(poly.Var(f, x), poly.Var(f, invID),
		poly.ConstInt(f, 1).Sub(poly.Var(f, outID)), "iszero")
	return &bug{
		alt:     map[int]ff.Element{invID: f.Zero(), outID: f.One()},
		carrier: outID,
	}
}

// gadgetMul emits out = a*b.
func (b *builder) gadgetMul() {
	f := b.f
	a, c := b.pick(), b.pick()
	out := b.fresh("mul.out", r1cs.KindInternal, f.Mul(b.vals[a], b.vals[c]))
	b.sys.AddConstraint(poly.Var(f, a), poly.Var(f, c), poly.Var(f, out), "mul")
	b.pool = append(b.pool, out)
}

// gadgetLinear emits an affine combination out = k1*a + k2*c + k0.
func (b *builder) gadgetLinear() {
	f := b.f
	a, c := b.pick(), b.pick()
	k1 := f.NewElement(1 + b.rng.Int63n(9))
	k2 := f.NewElement(1 + b.rng.Int63n(9))
	k0 := f.NewElement(b.rng.Int63n(16) - 8)
	lc := poly.Term(f, a, k1).AddTerm(c, k2).AddConst(k0)
	val := f.Add(f.Add(f.Mul(k1, b.vals[a]), f.Mul(k2, b.vals[c])), k0)
	out := b.fresh("lin.out", r1cs.KindInternal, val)
	b.sys.AddConstraint(lc, poly.ConstInt(f, 1), poly.Var(f, out), "linear")
	b.pool = append(b.pool, out)
}

// gadgetBits emits a sound Num2Bits: a fresh input x (honest value below
// 2^n) decomposed into n boolean bits with booleanness on every bit and the
// recomposition sum. The bits are hinted (circom assigns them with <--) but
// fully determined; they feed the boolean pool.
func (b *builder) gadgetBits(n int) {
	f := b.f
	v := b.rng.Int63n(int64(1) << uint(n))
	x := b.input(f.NewElement(v))
	sum := poly.NewLinComb(f)
	for i := 0; i < n; i++ {
		bit := b.fresh("bits.b", r1cs.KindInternal, f.NewElement((v>>uint(i))&1))
		b.sys.MarkHinted(bit)
		b.sys.AddConstraint(poly.Var(f, bit),
			poly.Var(f, bit).AddConst(f.NewElement(-1)),
			poly.NewLinComb(f), "boolean")
		sum = sum.AddTerm(bit, f.NewElement(int64(1)<<uint(i)))
		b.pool = append(b.pool, bit)
		b.boolPool = append(b.boolPool, bit)
	}
	b.sys.AddConstraint(sum, poly.ConstInt(f, 1), poly.Var(f, x), "recompose")
}

// bugBits is gadgetBits with the booleanness constraint on one bit j
// dropped. The honest value is arranged so bit j is set alongside at least
// one lower bit; the alternate witness zeroes every other bit and absorbs
// the whole value into the free bit j (b_j' = x / 2^j in the field), which
// still satisfies the recomposition sum.
func (b *builder) bugBits(n int) *bug {
	f := b.f
	j := b.rng.Intn(n)
	// x = 2^j + r with r nonzero and bit j of r clear, so the honest and
	// alternate assignments of bit j differ (1 vs 1 + r/2^j).
	var r int64
	for r == 0 {
		r = b.rng.Int63n(int64(1)<<uint(n)) &^ (int64(1) << uint(j))
	}
	v := int64(1)<<uint(j) + r
	x := b.input(f.NewElement(v))
	sum := poly.NewLinComb(f)
	ids := make([]int, n)
	alt := map[int]ff.Element{}
	for i := 0; i < n; i++ {
		bit := b.fresh("bbits.b", r1cs.KindInternal, f.NewElement((v>>uint(i))&1))
		ids[i] = bit
		b.sys.MarkHinted(bit)
		if i != j {
			b.sys.AddConstraint(poly.Var(f, bit),
				poly.Var(f, bit).AddConst(f.NewElement(-1)),
				poly.NewLinComb(f), "boolean")
		}
		sum = sum.AddTerm(bit, f.NewElement(int64(1)<<uint(i)))
	}
	b.sys.AddConstraint(sum, poly.ConstInt(f, 1), poly.Var(f, x), "recompose")
	for i, bit := range ids {
		if i == j {
			alt[bit] = f.Mul(f.NewElement(v), f.MustInv(f.NewElement(int64(1)<<uint(j))))
		} else if (v>>uint(i))&1 == 1 {
			alt[bit] = f.Zero()
		}
	}
	return &bug{alt: alt, carrier: ids[j]}
}

// gadgetSelector emits a sound binary selector out = s*(a-c) + c with a
// determined boolean s from the boolean pool.
func (b *builder) gadgetSelector() {
	f := b.f
	s := b.pickBool()
	a, c := b.pick(), b.pick()
	val := b.vals[c]
	if !b.vals[s].IsZero() {
		val = b.vals[a]
	}
	out := b.fresh("sel.out", r1cs.KindInternal, val)
	b.sys.AddConstraint(poly.Var(f, s),
		poly.Var(f, a).Sub(poly.Var(f, c)),
		poly.Var(f, out).Sub(poly.Var(f, c)), "select")
	b.pool = append(b.pool, out)
}

// bugSelector is a selector whose selector signal is a hint-only internal
// with no constraint at all — neither booleanness nor a defining equation —
// so out slides anywhere along the a–c line.
func (b *builder) bugSelector() *bug {
	f := b.f
	a := b.pick()
	c := b.pickDistinct(a)
	sv := f.NewElement(b.rng.Int63n(2))
	s := b.fresh("bsel.s", r1cs.KindInternal, sv)
	b.sys.MarkHinted(s)
	diff := f.Sub(b.vals[a], b.vals[c])
	out := b.fresh("bsel.out", r1cs.KindInternal, f.Add(f.Mul(sv, diff), b.vals[c]))
	b.sys.MarkHinted(out)
	b.sys.AddConstraint(poly.Var(f, s),
		poly.Var(f, a).Sub(poly.Var(f, c)),
		poly.Var(f, out).Sub(poly.Var(f, c)), "select")
	sv2 := f.Add(sv, f.One())
	return &bug{
		alt:     map[int]ff.Element{s: sv2, out: f.Add(f.Mul(sv2, diff), b.vals[c])},
		carrier: out,
	}
}

// gadgetDiv emits a guarded division out = num/den: the denominator is
// pinned nonzero by den*invden = 1 before out*den = num defines out.
func (b *builder) gadgetDiv() {
	f := b.f
	num, den := b.pick(), b.pickNonzero()
	invdenVal := f.MustInv(b.vals[den])
	invden := b.fresh("div.invden", r1cs.KindInternal, invdenVal)
	b.sys.MarkHinted(invden)
	out := b.fresh("div.out", r1cs.KindInternal, f.Mul(b.vals[num], invdenVal))
	b.sys.MarkHinted(out)
	b.sys.AddConstraint(poly.Var(f, den), poly.Var(f, invden), poly.ConstInt(f, 1), "nonzero")
	b.sys.AddConstraint(poly.Var(f, out), poly.Var(f, den), poly.Var(f, num), "div")
	b.pool = append(b.pool, out)
}

// bugDiv is the 0/0 trap: a fresh zero-valued input z and the single
// constraint out*z = z with no nonzero guard, leaving out completely free.
func (b *builder) bugDiv() *bug {
	f := b.f
	z := b.input(f.Zero())
	v := f.NewElement(1 + b.rng.Int63n(1_000_000))
	out := b.fresh("bdiv.out", r1cs.KindInternal, v)
	b.sys.MarkHinted(out)
	b.sys.AddConstraint(poly.Var(f, out), poly.Var(f, z), poly.Var(f, z), "div")
	return &bug{
		alt:     map[int]ff.Element{out: f.Add(v, f.One())},
		carrier: out,
	}
}

// gadgetLadder emits a sound Montgomery-ladder step fragment: t = x²,
// out = bit ? t : x with a determined boolean bit.
func (b *builder) gadgetLadder() {
	f := b.f
	bit := b.pickBool()
	x := b.pick()
	t := b.fresh("lad.t", r1cs.KindInternal, f.Square(b.vals[x]))
	b.sys.AddConstraint(poly.Var(f, x), poly.Var(f, x), poly.Var(f, t), "square")
	val := b.vals[x]
	if !b.vals[bit].IsZero() {
		val = b.vals[t]
	}
	out := b.fresh("lad.out", r1cs.KindInternal, val)
	b.sys.AddConstraint(poly.Var(f, bit),
		poly.Var(f, t).Sub(poly.Var(f, x)),
		poly.Var(f, out).Sub(poly.Var(f, x)), "select")
	b.pool = append(b.pool, t, out)
}

// bugLadder is the curve-addition chord-slope bug: the slope lam is
// hint-assigned and only constrained by lam*(x2-x1) = y2-y1. When the two
// points coincide (x1 = x2, y1 = y2 — which the honest inputs arrange),
// the constraint degenerates to 0 = 0 and lam is free; xout = lam² - x1 - x2
// carries the divergence.
func (b *builder) bugLadder() *bug {
	f := b.f
	pv := f.NewElement(1 + b.rng.Int63n(1_000_000))
	qv := f.NewElement(1 + b.rng.Int63n(1_000_000))
	x1 := b.input(pv)
	y1 := b.input(qv)
	x2 := b.input(pv)
	y2 := b.input(qv)
	lv := f.NewElement(b.rng.Int63n(1_000_000))
	lam := b.fresh("blad.lam", r1cs.KindInternal, lv)
	b.sys.MarkHinted(lam)
	b.sys.AddConstraint(poly.Var(f, lam),
		poly.Var(f, x2).Sub(poly.Var(f, x1)),
		poly.Var(f, y2).Sub(poly.Var(f, y1)), "slope")
	t := b.fresh("blad.t", r1cs.KindInternal, f.Square(lv))
	b.sys.AddConstraint(poly.Var(f, lam), poly.Var(f, lam), poly.Var(f, t), "square")
	xoutVal := f.Sub(f.Sub(b.vals[t], pv), pv)
	xout := b.fresh("blad.xout", r1cs.KindInternal, xoutVal)
	b.sys.AddConstraint(poly.Var(f, t).Sub(poly.Var(f, x1)).Sub(poly.Var(f, x2)),
		poly.ConstInt(f, 1), poly.Var(f, xout), "xout")
	lv2 := f.Add(lv, f.One())
	t2 := f.Square(lv2)
	return &bug{
		alt: map[int]ff.Element{
			lam:  lv2,
			t:    t2,
			xout: f.Sub(f.Sub(t2, pv), pv),
		},
		carrier: xout,
	}
}

// pickDistinct returns a pool signal whose honest value differs from ref's,
// minting a fresh input if every pool value coincides.
func (b *builder) pickDistinct(ref int) int {
	var cands []int
	for _, id := range b.pool {
		if b.vals[id] != b.vals[ref] {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return b.input(b.f.Add(b.vals[ref], b.f.One()))
	}
	return cands[b.rng.Intn(len(cands))]
}

// safeGadget appends one randomly chosen sound gadget.
func (b *builder) safeGadget() {
	switch b.rng.Intn(7) {
	case 0:
		b.gadgetIsZero()
	case 1:
		b.gadgetMul()
	case 2:
		b.gadgetLinear()
	case 3:
		b.gadgetBits(2 + b.rng.Intn(5))
	case 4:
		b.gadgetSelector()
	case 5:
		b.gadgetDiv()
	default:
		b.gadgetLadder()
	}
}

// buggyGadget appends one randomly chosen under-constrained gadget.
func (b *builder) buggyGadget() *bug {
	switch b.rng.Intn(5) {
	case 0:
		return b.bugIsZero()
	case 1:
		return b.bugBits(2 + b.rng.Intn(5))
	case 2:
		return b.bugSelector()
	case 3:
		return b.bugDiv()
	default:
		return b.bugLadder()
	}
}

// generateComposed builds a safe or unsafe circuit over BN254: a few
// inputs, a chain of sound gadgets, for the unsafe profile exactly one bug
// gadget, then copy-outputs and a collector output summing a subset of the
// determined pool — plus, for unsafe, the bug's carrier signal with
// coefficient one, so the planted divergence reaches an output unmasked.
func generateComposed(seed int64, profile string) *Circuit {
	b := newBuilder(seed, ff.BN254())
	f := b.f
	for i, n := 0, 2+b.rng.Intn(3); i < n; i++ {
		b.input(f.NewElement(1 + b.rng.Int63n(int64(1)<<32)))
	}
	for i, n := 0, 2+b.rng.Intn(4); i < n; i++ {
		b.safeGadget()
	}
	var bg *bug
	if profile == ProfileUnsafe {
		bg = b.buggyGadget()
		if b.rng.Intn(2) == 1 {
			b.safeGadget()
		}
	}

	// Copy a couple of determined pool signals to dedicated outputs.
	for i, n := 0, b.rng.Intn(3); i < n; i++ {
		src := b.pick()
		out := b.fresh("out", r1cs.KindOutput, b.vals[src])
		b.sys.AddConstraint(poly.Var(f, src), poly.ConstInt(f, 1), poly.Var(f, out), "copy")
	}

	// Collector: out = Σ chosen pool signals (+ carrier for unsafe). Pool
	// signals hold identical values in both planted witnesses, so the
	// collector's divergence equals the carrier's — it cannot cancel.
	lc := poly.NewLinComb(f)
	val := f.Zero()
	perm := b.rng.Perm(len(b.pool))
	k := 1 + b.rng.Intn(3)
	if k > len(perm) {
		k = len(perm)
	}
	for _, pi := range perm[:k] {
		id := b.pool[pi]
		lc = lc.AddTerm(id, f.One())
		val = f.Add(val, b.vals[id])
	}
	if bg != nil {
		lc = lc.AddTerm(bg.carrier, f.One())
		val = f.Add(val, b.vals[bg.carrier])
	}
	outID := b.fresh("out", r1cs.KindOutput, val)
	b.sys.AddConstraint(lc, poly.ConstInt(f, 1), poly.Var(f, outID), "collect")

	c := &Circuit{System: b.sys, Label: LabelSafe}
	if bg != nil {
		c.Label = LabelUnsafe
		c.W1 = b.witness()
		c.W2 = c.W1.Clone()
		for id, v := range bg.alt {
			c.W2[id] = v
		}
		c.W2[outID] = lc.Eval(func(x int) ff.Element { return c.W2[x] })
		c.PlantedOutput = outID
	}
	return c
}

// aliasModulus is 2^62 - 57, the largest 62-bit prime: every 62-bit
// decomposition sum with honest value below 2^62 - p = 57 has exactly one
// alias (the value plus p), and the only subset of the distinct power-of-two
// coefficients summing to 0 mod p is the full carry chain of that alias —
// there is no short bit-flip relation a bounded search could stumble on.
const aliasModulus = int64(1)<<62 - 57

// aliasBits is the decomposition width for the unknown profile.
const aliasBits = 62

// generateAlias builds the unknown-profile circuit: a Num2Bits whose width
// exceeds the field's bit length. Every constraint a sound Num2Bits has is
// present — booleanness on all bits, the recomposition sum — yet the
// circuit is under-constrained because 2^62 > p: the planted input value v
// (below 57) also decomposes as the 62-bit integer v + p. Proving or
// refuting uniqueness needs range reasoning across the full 62-bit carry
// chain, which is beyond the solver's step budget, so the expected verdict
// is unknown; the ground-truth label still carries the alias pair.
func generateAlias(seed int64) *Circuit {
	f, err := ff.SmallField(aliasModulus)
	if err != nil {
		panic(fmt.Sprintf("gen: alias modulus rejected: %v", err))
	}
	b := newBuilder(seed, f)
	v := 1 + b.rng.Int63n(int64(1)<<62-aliasModulus-1)
	x := b.input(f.NewElement(v))
	v2 := new(big.Int).Add(big.NewInt(v), big.NewInt(aliasModulus))
	sum := poly.NewLinComb(f)
	ids := make([]int, aliasBits)
	for i := 0; i < aliasBits; i++ {
		bit := b.fresh("b", r1cs.KindInternal, f.NewElement((v>>uint(i))&1))
		ids[i] = bit
		b.sys.MarkHinted(bit)
		b.sys.AddConstraint(poly.Var(f, bit),
			poly.Var(f, bit).AddConst(f.NewElement(-1)),
			poly.NewLinComb(f), "boolean")
		sum = sum.AddTerm(bit, f.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(i))))
	}
	b.sys.AddConstraint(sum, poly.ConstInt(f, 1), poly.Var(f, x), "recompose")

	// Expose the lowest bit on which the two decompositions differ.
	j := 0
	for ; j < aliasBits; j++ {
		if uint(v>>uint(j))&1 != v2.Bit(j) {
			break
		}
	}
	outID := b.fresh("out", r1cs.KindOutput, f.NewElement((v>>uint(j))&1))
	b.sys.AddConstraint(poly.Var(f, ids[j]), poly.ConstInt(f, 1), poly.Var(f, outID), "copy")

	w1 := b.witness()
	w2 := w1.Clone()
	for i := 0; i < aliasBits; i++ {
		w2[ids[i]] = f.FromUint64(uint64(v2.Bit(i)))
	}
	w2[outID] = w2[ids[j]]
	return &Circuit{
		System:        b.sys,
		Label:         LabelUnknown,
		W1:            w1,
		W2:            w2,
		PlantedOutput: outID,
	}
}
