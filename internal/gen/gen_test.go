package gen

import (
	"bytes"
	"testing"

	"qed2/internal/r1cs"
)

// TestGenerateDeterminism checks the determinism contract: the same spec
// yields a byte-identical circuit (text serialization covers names, IDs,
// kinds, hints, constraint order, and coefficients) and identical planted
// witnesses.
func TestGenerateDeterminism(t *testing.T) {
	for _, profile := range []string{ProfileSafe, ProfileUnsafe, ProfileUnknown, ""} {
		for seed := int64(0); seed < 25; seed++ {
			spec := Spec{Seed: seed, Profile: profile}
			a, err := Generate(spec)
			if err != nil {
				t.Fatalf("Generate(%+v): %v", spec, err)
			}
			b, err := Generate(spec)
			if err != nil {
				t.Fatalf("Generate(%+v) again: %v", spec, err)
			}
			if a.Name != b.Name || a.Label != b.Label {
				t.Fatalf("%+v: identity diverged: %s/%s vs %s/%s", spec, a.Name, a.Label, b.Name, b.Label)
			}
			if a.System.MarshalText() != b.System.MarshalText() {
				t.Fatalf("%+v: circuit text diverged between runs", spec)
			}
			if !witnessEqual(a.W1, b.W1) || !witnessEqual(a.W2, b.W2) {
				t.Fatalf("%+v: planted witnesses diverged between runs", spec)
			}
			if a.PlantedOutput != b.PlantedOutput {
				t.Fatalf("%+v: planted output diverged: %d vs %d", spec, a.PlantedOutput, b.PlantedOutput)
			}
		}
	}
}

func witnessEqual(a, b r1cs.Witness) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLabelSoundness re-checks the planted ground truth from the outside
// (Generate also self-validates, but this pins the contract in a test):
// for every unsafe and unknown instance, both planted witnesses satisfy
// every constraint, agree on all inputs, and differ on an output.
func TestLabelSoundness(t *testing.T) {
	unsafeSeen, unknownSeen := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		c, err := Generate(Spec{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch c.Label {
		case LabelSafe:
			if c.W1 != nil || c.W2 != nil {
				t.Errorf("%s: safe instance carries a witness pair", c.Name)
			}
			continue
		case LabelUnsafe:
			unsafeSeen++
		case LabelUnknown:
			unknownSeen++
		}
		if err := c.System.CheckWitness(c.W1); err != nil {
			t.Errorf("%s: W1 rejected: %v", c.Name, err)
		}
		if err := c.System.CheckWitness(c.W2); err != nil {
			t.Errorf("%s: W2 rejected: %v", c.Name, err)
		}
		if !r1cs.AgreeOn(c.W1, c.W2, c.System.Inputs()) {
			t.Errorf("%s: planted pair disagrees on an input", c.Name)
		}
		if sig := c.System.Signal(c.PlantedOutput); sig.Kind != r1cs.KindOutput {
			t.Errorf("%s: planted signal %d is %s, not an output", c.Name, c.PlantedOutput, sig.Kind)
		}
		if c.W1[c.PlantedOutput] == c.W2[c.PlantedOutput] {
			t.Errorf("%s: planted pair agrees on the planted output", c.Name)
		}
	}
	if unsafeSeen == 0 || unknownSeen == 0 {
		t.Fatalf("mix did not cover all labels: %d unsafe, %d unknown", unsafeSeen, unknownSeen)
	}
}

// TestEveryBugGadgetCovered drives enough unsafe seeds that every buggy
// gadget appears (they are identifiable by their signal name prefixes).
func TestEveryBugGadgetCovered(t *testing.T) {
	prefixes := map[string]bool{"bisz": false, "bbits": false, "bsel": false, "bdiv": false, "blad": false}
	for seed := int64(0); seed < 60; seed++ {
		c, err := Generate(Spec{Seed: seed, Profile: ProfileUnsafe})
		if err != nil {
			t.Fatal(err)
		}
		for _, sig := range c.System.Signals() {
			for p := range prefixes {
				if len(sig.Name) > len(p) && sig.Name[:len(p)] == p && sig.Name[len(p)] == '.' {
					prefixes[p] = true
				}
			}
		}
	}
	for p, seen := range prefixes {
		if !seen {
			t.Errorf("bug gadget %q never generated in 60 unsafe seeds", p)
		}
	}
}

// TestManifestRoundTrip checks Build → Marshal → Parse and the validation
// rejections.
func TestManifestRoundTrip(t *testing.T) {
	m, err := BuildManifest(1000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 40 {
		t.Fatalf("got %d instances, want 40", len(m.Instances))
	}
	got, err := ParseManifest(m.Marshal())
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if !bytes.Equal(got.Marshal(), m.Marshal()) {
		t.Fatal("manifest round trip changed content")
	}
	// Regenerating from a manifest entry reproduces the recorded label.
	for _, e := range got.Instances[:10] {
		c, err := Generate(e.Spec())
		if err != nil {
			t.Fatal(err)
		}
		if c.Label.String() != e.Label || c.Name != e.Name {
			t.Fatalf("%s: regenerated as %s/%s", e.Name, c.Name, c.Label)
		}
	}

	bad := func(name string, mutate func(*Manifest)) {
		t.Helper()
		m2, err := ParseManifest(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		mutate(m2)
		if _, err := ParseManifest(m2.Marshal()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad("version mismatch", func(m *Manifest) { m.GeneratorVersion = GeneratorVersion + 1 })
	bad("bad label", func(m *Manifest) { m.Instances[0].Label = "maybe" })
	bad("bad profile", func(m *Manifest) { m.Instances[0].Profile = "spicy" })
	bad("name mismatch", func(m *Manifest) { m.Instances[0].Name = "gen/safe-999999" })
	bad("duplicate name", func(m *Manifest) { m.Instances[1] = m.Instances[0] })
}

// TestDefaultMixCoversProfiles sanity-checks the documented 13/6/1 split.
func TestDefaultMixCoversProfiles(t *testing.T) {
	counts := map[string]int{}
	for seed := int64(0); seed < 20; seed++ {
		counts[DefaultMix(seed)]++
	}
	if counts[ProfileSafe] != 13 || counts[ProfileUnsafe] != 6 || counts[ProfileUnknown] != 1 {
		t.Fatalf("mix per 20 seeds = %v, want 13/6/1", counts)
	}
}
