// Package gen is a seeded property-based circuit generator: it composes
// known-verdict gadgets (IsZero cores, binary selectors, bit
// decompositions, Montgomery-ladder fragments, 0/0 divisions) into whole
// R1CS circuits with ground-truth labels, deterministically per seed.
//
// The generator is the corpus workhorse behind the thousand-instance golden
// gate (testdata/corpus) and the nightly fresh-seed soundness run: because
// every circuit is built from gadgets whose uniqueness status is known by
// construction, each instance carries a label the analyzer's verdict can be
// judged against — and for under-constrained instances, a concrete planted
// witness pair that CheckWitness accepts on both sides, so the ground truth
// itself is machine-checked rather than asserted.
//
// Determinism contract: Generate is a pure function of its Spec. The same
// (seed, profile) produces a byte-identical circuit (same signal names and
// IDs, same constraint order, same planted witnesses) across runs,
// processes, and architectures; the corpus manifest pins GeneratorVersion
// so a generator change cannot silently re-label checked-in seeds.
package gen

import (
	"fmt"
	"math/rand"

	"qed2/internal/ff"
	"qed2/internal/r1cs"
)

// GeneratorVersion identifies the generation algorithm. Any change to the
// gadget set, the composition logic, or the rng draw order that alters
// generated circuits must bump it; LoadManifest refuses manifests written
// by a different version instead of silently re-labeling seeds.
const GeneratorVersion = 1

// Label is the ground-truth classification of a generated circuit.
type Label int

const (
	// LabelSafe marks circuits that are properly constrained by
	// construction: every output is a deterministic function of the inputs.
	LabelSafe Label = iota
	// LabelUnsafe marks circuits with a deliberately dropped or weakened
	// constraint and a planted witness pair the analyzer is expected to
	// find: verdict unsafe is expected, verdict safe is unsound.
	LabelUnsafe
	// LabelUnknown marks circuits that are genuinely under-constrained
	// (a planted pair exists and is attached) but whose discovery needs
	// range reasoning beyond the solver's budget — an aliased bit
	// decomposition over a field narrower than the bit width. Verdict
	// unknown is expected; safe is unsound; unsafe is a (welcome)
	// completeness win.
	LabelUnknown
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case LabelSafe:
		return "safe"
	case LabelUnsafe:
		return "unsafe"
	case LabelUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// ParseLabel inverts String.
func ParseLabel(s string) (Label, error) {
	switch s {
	case "safe":
		return LabelSafe, nil
	case "unsafe":
		return LabelUnsafe, nil
	case "unknown":
		return LabelUnknown, nil
	default:
		return 0, fmt.Errorf("gen: unknown label %q", s)
	}
}

// Profiles selectable in a Spec.
const (
	// ProfileSafe composes only sound gadgets.
	ProfileSafe = "safe"
	// ProfileUnsafe composes sound gadgets plus exactly one bug gadget
	// whose divergence is wired into the collector output.
	ProfileUnsafe = "unsafe"
	// ProfileUnknown builds an aliased bit decomposition: every input has
	// two decompositions, but finding the second needs range reasoning.
	ProfileUnknown = "unknown"
)

// Spec selects one deterministic circuit.
type Spec struct {
	// Seed drives every random choice.
	Seed int64
	// Profile is one of the Profile constants; empty derives a profile
	// from the seed with the DefaultMix.
	Profile string
}

// DefaultMix is the profile distribution used when a Spec leaves Profile
// empty, chosen to mirror a realistic corpus: mostly sound circuits, a
// solid tail of findable bugs, a thin band of beyond-budget instances.
// Out of every 20 seeds: 13 safe, 6 unsafe, 1 unknown.
func DefaultMix(seed int64) string {
	switch m := uint64(seed) % 20; {
	case m < 13:
		return ProfileSafe
	case m < 19:
		return ProfileUnsafe
	default:
		return ProfileUnknown
	}
}

// Circuit is one generated instance.
type Circuit struct {
	// Name is the canonical display name: "gen/<profile>-<seed>".
	Name string
	// System is the generated constraint system.
	System *r1cs.System
	// Label is the ground truth.
	Label Label
	// W1 and W2 are the planted witness pair for LabelUnsafe and
	// LabelUnknown circuits: both satisfy every constraint, they agree on
	// every input, and they differ on PlantedOutput. Nil for LabelSafe.
	W1, W2 r1cs.Witness
	// PlantedOutput is the output signal ID on which W1 and W2 differ
	// (0 for LabelSafe).
	PlantedOutput int
}

// Name renders the canonical instance name of a spec (with the profile
// resolved), without generating the circuit.
func (s Spec) Name() string {
	p := s.Profile
	if p == "" {
		p = DefaultMix(s.Seed)
	}
	return fmt.Sprintf("gen/%s-%d", p, s.Seed)
}

// Generate builds the circuit selected by spec. It validates its own
// ground truth before returning: for unsafe and unknown labels the planted
// pair is CheckWitness-verified on both sides, input-agreement and
// output-divergence included. A validation failure is a generator bug and
// panics rather than silently mislabeling a corpus instance.
func Generate(spec Spec) (*Circuit, error) {
	profile := spec.Profile
	if profile == "" {
		profile = DefaultMix(spec.Seed)
	}
	var c *Circuit
	switch profile {
	case ProfileSafe, ProfileUnsafe:
		c = generateComposed(spec.Seed, profile)
	case ProfileUnknown:
		c = generateAlias(spec.Seed)
	default:
		return nil, fmt.Errorf("gen: unknown profile %q", spec.Profile)
	}
	c.Name = fmt.Sprintf("gen/%s-%d", profile, spec.Seed)
	if err := c.validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %d profile %s: ground truth failed self-validation: %v", spec.Seed, profile, err))
	}
	return c, nil
}

// validate machine-checks the ground truth attached to the circuit.
func (c *Circuit) validate() error {
	if c.Label == LabelSafe {
		if c.W1 != nil || c.W2 != nil {
			return fmt.Errorf("safe circuit carries a witness pair")
		}
		return nil
	}
	if c.W1 == nil || c.W2 == nil {
		return fmt.Errorf("%s circuit without a planted pair", c.Label)
	}
	if err := c.System.CheckWitness(c.W1); err != nil {
		return fmt.Errorf("W1 rejected: %v", err)
	}
	if err := c.System.CheckWitness(c.W2); err != nil {
		return fmt.Errorf("W2 rejected: %v", err)
	}
	if !r1cs.AgreeOn(c.W1, c.W2, c.System.Inputs()) {
		return fmt.Errorf("planted pair disagrees on an input")
	}
	if c.System.Signal(c.PlantedOutput).Kind != r1cs.KindOutput {
		return fmt.Errorf("planted signal %d is not an output", c.PlantedOutput)
	}
	if c.W1[c.PlantedOutput] == c.W2[c.PlantedOutput] {
		return fmt.Errorf("planted pair agrees on the planted output")
	}
	return nil
}

// builder accumulates a circuit under construction, tracking the honest
// witness value of every signal as it is created.
type builder struct {
	rng *rand.Rand
	f   *ff.Field
	sys *r1cs.System
	// vals is the honest witness value per signal ID.
	vals map[int]ff.Element
	// pool lists signals usable as gadget inputs (inputs and determined
	// gadget outputs — never bug-divergent signals, so a planted second
	// witness only ever differs inside its own gadget and the collector).
	pool []int
	// boolPool lists pool signals that are constrained booleans with both
	// a determined value (bit-decomposition outputs).
	boolPool []int
	// names counts per-prefix allocations for unique signal names.
	names map[string]int
}

func newBuilder(seed int64, f *ff.Field) *builder {
	return &builder{
		rng:   rand.New(rand.NewSource(seed)),
		f:     f,
		sys:   r1cs.NewSystem(f),
		vals:  map[int]ff.Element{r1cs.OneID: f.One()},
		names: map[string]int{},
	}
}

// fresh allocates a uniquely named signal with a known honest value.
func (b *builder) fresh(prefix string, kind r1cs.SignalKind, val ff.Element) int {
	n := b.names[prefix]
	b.names[prefix] = n + 1
	id := b.sys.AddSignal(fmt.Sprintf("%s%d", prefix, n), kind)
	b.vals[id] = val
	return id
}

// input allocates a fresh input signal with the given honest value.
func (b *builder) input(val ff.Element) int {
	id := b.fresh("in", r1cs.KindInput, val)
	b.pool = append(b.pool, id)
	return id
}

// pick returns a random pool signal.
func (b *builder) pick() int {
	return b.pool[b.rng.Intn(len(b.pool))]
}

// pickNonzero returns a random pool signal whose honest value is nonzero,
// minting a fresh input if the pool has none.
func (b *builder) pickNonzero() int {
	var nz []int
	for _, id := range b.pool {
		if !b.vals[id].IsZero() {
			nz = append(nz, id)
		}
	}
	if len(nz) == 0 {
		return b.input(b.f.NewElement(1 + b.rng.Int63n(1_000_000)))
	}
	return nz[b.rng.Intn(len(nz))]
}

// pickBool returns a determined boolean signal, building a small bit
// decomposition first if none exists yet.
func (b *builder) pickBool() int {
	if len(b.boolPool) == 0 {
		b.gadgetBits(2 + b.rng.Intn(3))
	}
	return b.boolPool[b.rng.Intn(len(b.boolPool))]
}

// witness materializes the honest witness.
func (b *builder) witness() r1cs.Witness {
	w := b.sys.NewWitness()
	for id, v := range b.vals {
		w[id] = v
	}
	return w
}
