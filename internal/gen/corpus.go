package gen

import (
	"encoding/json"
	"fmt"
	"os"
)

// ManifestEntry pins one corpus instance: the seed and profile that
// regenerate it, and the ground-truth label recorded at generation time.
// The circuit itself is not stored — Generate is deterministic, so the
// (generator version, seed, profile) triple is the instance.
type ManifestEntry struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	Profile string `json:"profile"`
	Label   string `json:"label"`
}

// Spec returns the generation spec for the entry.
func (e ManifestEntry) Spec() Spec {
	return Spec{Seed: e.Seed, Profile: e.Profile}
}

// Manifest is the checked-in corpus index (testdata/corpus/manifest.json).
type Manifest struct {
	// GeneratorVersion must equal gen.GeneratorVersion; a mismatch means
	// the entries were produced by a different generation algorithm and
	// the labels cannot be trusted for the current code.
	GeneratorVersion int             `json:"generator_version"`
	BaseSeed         int64           `json:"base_seed"`
	Instances        []ManifestEntry `json:"instances"`
}

// BuildManifest deterministically enumerates n instances starting at
// baseSeed, with profiles drawn from the DefaultMix and labels recorded
// from actual generation (which self-validates each ground truth).
func BuildManifest(baseSeed int64, n int) (*Manifest, error) {
	m := &Manifest{GeneratorVersion: GeneratorVersion, BaseSeed: baseSeed}
	for i := 0; i < n; i++ {
		spec := Spec{Seed: baseSeed + int64(i)}
		c, err := Generate(spec)
		if err != nil {
			return nil, err
		}
		m.Instances = append(m.Instances, ManifestEntry{
			Name:    c.Name,
			Seed:    spec.Seed,
			Profile: c.Label.String(), // profile == label string for all profiles
			Label:   c.Label.String(),
		})
	}
	return m, nil
}

// Marshal renders the manifest as indented JSON with a trailing newline.
func (m *Manifest) Marshal() []byte {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		panic(err) // plain data, cannot fail
	}
	return append(data, '\n')
}

// maxManifestInstances bounds manifest loading, mirroring the parser caps.
const maxManifestInstances = 1 << 20

// ParseManifest decodes and validates a manifest: generator version match,
// parseable profiles and labels, unique names, and name/seed/profile
// consistency.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("gen: manifest: %v", err)
	}
	if m.GeneratorVersion != GeneratorVersion {
		return nil, fmt.Errorf("gen: manifest written by generator version %d, this binary is version %d — regenerate the corpus",
			m.GeneratorVersion, GeneratorVersion)
	}
	if len(m.Instances) > maxManifestInstances {
		return nil, fmt.Errorf("gen: manifest has %d instances (limit %d)", len(m.Instances), maxManifestInstances)
	}
	seen := make(map[string]bool, len(m.Instances))
	for i, e := range m.Instances {
		if _, err := ParseLabel(e.Label); err != nil {
			return nil, fmt.Errorf("gen: manifest instance %d: %v", i, err)
		}
		if e.Profile != ProfileSafe && e.Profile != ProfileUnsafe && e.Profile != ProfileUnknown {
			return nil, fmt.Errorf("gen: manifest instance %d: unknown profile %q", i, e.Profile)
		}
		if want := e.Spec().Name(); e.Name != want {
			return nil, fmt.Errorf("gen: manifest instance %d: name %q does not match spec (%q)", i, e.Name, want)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("gen: manifest: duplicate instance %q", e.Name)
		}
		seen[e.Name] = true
	}
	return &m, nil
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}
