package buildinfo

import (
	"strings"
	"testing"
)

func TestGetPopulatesStableStamp(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get not stable: %+v vs %+v", a, b)
	}
	if a.Version == "" {
		t.Fatal("empty Version (want at least a placeholder)")
	}
	if a.GoVersion == "" || !strings.HasPrefix(a.GoVersion, "go") {
		t.Fatalf("bad GoVersion %q", a.GoVersion)
	}
	if got := a.String(); !strings.Contains(got, a.Version) || !strings.Contains(got, a.GoVersion) {
		t.Fatalf("String() = %q does not include version and toolchain", got)
	}
}

func TestShortRevisionTruncatesAndMarksDirty(t *testing.T) {
	i := Info{Revision: "0123456789abcdef0123", Modified: true}
	if got, want := i.ShortRevision(), "0123456789ab+dirty"; got != want {
		t.Fatalf("ShortRevision = %q, want %q", got, want)
	}
	if got := (Info{}).ShortRevision(); got != "" {
		t.Fatalf("empty revision rendered as %q", got)
	}
	// A clean short hash passes through untouched.
	i = Info{Revision: "abc123"}
	if got := i.ShortRevision(); got != "abc123" {
		t.Fatalf("ShortRevision = %q, want abc123", got)
	}
}
