// Package buildinfo resolves the module version and VCS revision of the
// running binary from the build metadata the Go toolchain embeds
// (debug.ReadBuildInfo). Every user-facing surface that stamps an artifact
// with "which build produced this" — `qed2 -version`, `qed2bench -version`,
// the qed2d /healthz endpoint, checkpoint headers and trace meta events —
// goes through this package so the stamps cannot drift apart.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Info describes the running build. Fields are best-effort: binaries built
// outside a VCS checkout (or with -buildvcs=false, as `go test` binaries
// are) carry no revision, and a non-module build has no version at all.
type Info struct {
	// Version is the module version ("(devel)" for a source build).
	Version string
	// Revision is the VCS revision the binary was built from ("" when the
	// toolchain embedded no VCS metadata).
	Revision string
	// Modified reports uncommitted changes in the build's working tree.
	Modified bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

var (
	once   sync.Once
	cached Info
)

// Get resolves the build info once and caches it (the underlying lookup
// parses the embedded metadata on every call).
func Get() Info {
	once.Do(func() {
		cached = Info{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			cached.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}

// ShortRevision returns the revision truncated to 12 characters (plus a
// "+dirty" suffix for modified trees), or "" when none was embedded.
func (i Info) ShortRevision() string {
	r := i.Revision
	if len(r) > 12 {
		r = r[:12]
	}
	if r != "" && i.Modified {
		r += "+dirty"
	}
	return r
}

// String renders a one-line human-readable stamp, e.g.
// "(devel) a1b2c3d4e5f6+dirty go1.22.0".
func (i Info) String() string {
	s := i.Version
	if r := i.ShortRevision(); r != "" {
		s += " " + r
	}
	return s + " " + i.GoVersion
}
