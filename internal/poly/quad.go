package poly

import (
	"fmt"
	"math/big" //qed2:allow-mathbig — rendering and signed-magnitude display only
	"sort"
	"strings"

	"qed2/internal/ff"
)

// VarPair identifies the bilinear monomial x·y with X ≤ Y.
type VarPair struct{ X, Y int }

func orderedPair(a, b int) VarPair {
	if a > b {
		a, b = b, a
	}
	return VarPair{a, b}
}

// Quad is a canonical multivariate polynomial of total degree ≤ 2:
//
//	Σ q_{ij}·xᵢ·xⱼ + Σ cᵢ·xᵢ + c₀
//
// The quadratic part is stored sparsely with ordered variable pairs. Quads
// are the expanded, canonical view of rank-1 constraints ⟨A,s⟩·⟨B,s⟩−⟨C,s⟩:
// two constraints are semantically identical iff their Quads are equal.
type Quad struct {
	f    *ff.Field
	lin  *LinComb
	quad map[VarPair]ff.Element // nonzero coefficients only
}

// NewQuad returns the zero quadratic polynomial.
func NewQuad(f *ff.Field) *Quad {
	return &Quad{f: f, lin: NewLinComb(f), quad: map[VarPair]ff.Element{}}
}

// ConstQuad returns the constant quadratic polynomial v.
func ConstQuad(f *ff.Field, v int64) *Quad {
	return QuadFromLin(ConstInt(f, v))
}

// QuadFromLin lifts a linear combination to a Quad.
func QuadFromLin(lc *LinComb) *Quad {
	q := NewQuad(lc.f)
	q.lin = lc.Clone()
	return q
}

// MulLin returns the product a·b of two linear combinations as a Quad.
func MulLin(a, b *LinComb) *Quad {
	if !a.f.SameField(b.f) {
		panic("poly: MulLin across fields")
	}
	f := a.f
	q := NewQuad(f)
	// constant × everything
	q.lin = b.Scale(a.konst).Add(a.Scale(b.konst))
	// The product of the constants was added twice; remove one copy.
	q.lin.konst = f.Sub(q.lin.konst, f.Mul(a.konst, b.konst))
	for va, ca := range a.terms {
		for vb, cb := range b.terms {
			p := orderedPair(va, vb)
			c := f.Mul(ca, cb)
			if cur, ok := q.quad[p]; ok {
				c = f.Add(cur, c)
			}
			if c.IsZero() {
				delete(q.quad, p)
			} else {
				q.quad[p] = c
			}
		}
	}
	return q
}

// Field returns the coefficient field.
func (q *Quad) Field() *ff.Field { return q.f }

// Clone returns a deep copy.
func (q *Quad) Clone() *Quad {
	out := NewQuad(q.f)
	out.lin = q.lin.Clone()
	for p, c := range q.quad {
		out.quad[p] = c
	}
	return out
}

// Lin returns the linear (plus constant) part. The result aliases internal
// state and must not be mutated.
func (q *Quad) Lin() *LinComb { return q.lin }

// IsZero reports whether q is identically zero.
func (q *Quad) IsZero() bool { return len(q.quad) == 0 && q.lin.IsZero() }

// IsLinear reports whether the quadratic part is empty.
func (q *Quad) IsLinear() bool { return len(q.quad) == 0 }

// IsConst reports whether q is a constant, returning it when so.
func (q *Quad) IsConst() (ff.Element, bool) {
	if len(q.quad) == 0 && q.lin.IsConst() {
		return q.lin.Constant(), true
	}
	return ff.Element{}, false
}

// Degree returns 0, 1 or 2.
func (q *Quad) Degree() int {
	if len(q.quad) > 0 {
		return 2
	}
	if !q.lin.IsConst() {
		return 1
	}
	return 0
}

// Add returns q + other.
func (q *Quad) Add(other *Quad) *Quad {
	out := q.Clone()
	out.lin = q.lin.Add(other.lin)
	for p, c := range other.quad {
		s := q.f.Add(out.quad[p], c)
		if s.IsZero() {
			delete(out.quad, p)
		} else {
			out.quad[p] = s
		}
	}
	return out
}

// Sub returns q - other.
func (q *Quad) Sub(other *Quad) *Quad { return q.Add(other.Neg()) }

// Neg returns -q.
func (q *Quad) Neg() *Quad {
	out := NewQuad(q.f)
	out.lin = q.lin.Neg()
	for p, c := range q.quad {
		out.quad[p] = q.f.Neg(c)
	}
	return out
}

// Scale returns k·q.
func (q *Quad) Scale(k ff.Element) *Quad {
	out := NewQuad(q.f)
	if k.IsZero() {
		return out
	}
	out.lin = q.lin.Scale(k)
	for p, c := range q.quad {
		out.quad[p] = q.f.Mul(c, k)
	}
	return out
}

// Vars returns the set of variables occurring in q, ascending.
func (q *Quad) Vars() []int {
	seen := map[int]bool{}
	for _, v := range q.lin.Vars() {
		seen[v] = true
	}
	for p := range q.quad {
		seen[p.X] = true
		seen[p.Y] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Eval evaluates q under the assignment fn, allocation-free.
func (q *Quad) Eval(fn func(x int) ff.Element) ff.Element {
	acc := q.lin.Eval(fn)
	for p, c := range q.quad {
		acc = q.f.Add(acc, q.f.Mul(c, q.f.Mul(fn(p.X), fn(p.Y))))
	}
	return acc
}

// EvalMap is Eval over a map; absent variables read as zero.
func (q *Quad) EvalMap(m map[int]ff.Element) ff.Element {
	return q.Eval(func(x int) ff.Element { return m[x] })
}

// SubstituteValue returns q with variable x fixed to the constant v.
func (q *Quad) SubstituteValue(x int, v ff.Element) *Quad {
	out := NewQuad(q.f)
	out.lin = q.lin.SubstituteValue(x, v)
	for p, c := range q.quad {
		switch {
		case p.X == x && p.Y == x:
			out.lin.konst = q.f.Add(out.lin.konst, q.f.Mul(c, q.f.Mul(v, v)))
		case p.X == x:
			out.lin = out.lin.AddTerm(p.Y, q.f.Mul(c, v))
		case p.Y == x:
			out.lin = out.lin.AddTerm(p.X, q.f.Mul(c, v))
		default:
			out.quad[p] = c
		}
	}
	return out
}

// CoeffPair returns the coefficient of the monomial xᵢ·xⱼ.
func (q *Quad) CoeffPair(i, j int) ff.Element {
	return q.quad[orderedPair(i, j)]
}

// NumQuadTerms returns the number of distinct bilinear monomials.
func (q *Quad) NumQuadTerms() int { return len(q.quad) }

// VisitQuadTerms calls fn for every bilinear monomial in canonical
// (sorted-pair) order, so iteration is deterministic.
func (q *Quad) VisitQuadTerms(fn func(p VarPair, coeff ff.Element)) {
	for _, pr := range q.sortedPairs() {
		fn(pr, q.quad[pr])
	}
}

// VisitQuadTermsUnordered calls fn for every bilinear monomial in
// unspecified order. Unlike VisitQuadTerms it neither sorts nor allocates;
// callers must fold the visits with an order-independent operation.
func (q *Quad) VisitQuadTermsUnordered(fn func(p VarPair, coeff ff.Element)) {
	for p, c := range q.quad {
		fn(p, c)
	}
}

// Equal reports canonical equality of two quadratic polynomials.
func (q *Quad) Equal(other *Quad) bool {
	if !q.f.SameField(other.f) || !q.lin.Equal(other.lin) || len(q.quad) != len(other.quad) {
		return false
	}
	for p, c := range q.quad {
		if oc, ok := other.quad[p]; !ok || c != oc {
			return false
		}
	}
	return true
}

// sortedPairs returns the bilinear monomials in canonical pair order.
func (q *Quad) sortedPairs() []VarPair {
	pairs := make([]VarPair, 0, len(q.quad))
	for p := range q.quad {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].X != pairs[j].X {
			return pairs[i].X < pairs[j].X
		}
		return pairs[i].Y < pairs[j].Y
	})
	return pairs
}

// Key returns a canonical string for hashing/deduplication, unique up to
// polynomial identity. Like LinComb.Key it encodes raw limb bytes: cheap,
// canonical per field, never printed.
func (q *Quad) Key() string {
	pairs := q.sortedPairs()
	buf := make([]byte, 0, len(pairs)*(16+8*ff.ElementLimbs)+64)
	for _, p := range pairs {
		buf = appendVarID(buf, p.X)
		buf = appendVarID(buf, p.Y)
		buf = q.quad[p].AppendRawBytes(buf)
	}
	buf = append(buf, '#')
	return string(buf) + q.lin.Key()
}

// NormalizeSign returns q scaled so that its leading coefficient (first
// bilinear monomial in pair order, else first linear coefficient, else the
// constant) equals 1, yielding a canonical representative of the equation
// q = 0 modulo nonzero scaling. The zero polynomial is returned unchanged.
func (q *Quad) NormalizeSign() *Quad {
	var lead ff.Element
	if pairs := q.sortedPairs(); len(pairs) > 0 {
		lead = q.quad[pairs[0]]
	} else if vs := q.lin.Vars(); len(vs) > 0 {
		lead = q.lin.Coeff(vs[0])
	} else if !q.lin.konst.IsZero() {
		lead = q.lin.konst
	} else {
		return q.Clone()
	}
	return q.Scale(q.f.MustInv(lead))
}

// String renders the polynomial; variables print as x<i>.
func (q *Quad) String() string {
	return q.StringNamed(func(x int) string { return fmt.Sprintf("x%d", x) })
}

// StringNamed renders the polynomial with the given variable namer.
func (q *Quad) StringNamed(name func(x int) string) string {
	var parts []string
	for _, p := range q.sortedPairs() {
		c := q.f.Signed(q.quad[p])
		mono := name(p.X) + "*" + name(p.Y)
		if p.X == p.Y {
			mono = name(p.X) + "²"
		}
		switch {
		case c.Cmp(oneInt) == 0:
			parts = append(parts, "+ "+mono)
		case c.Cmp(minusOneInt) == 0:
			parts = append(parts, "- "+mono)
		case c.Sign() < 0:
			parts = append(parts, fmt.Sprintf("- %v*%s", new(big.Int).Neg(c), mono))
		default:
			parts = append(parts, fmt.Sprintf("+ %v*%s", c, mono))
		}
	}
	linStr := q.lin.StringNamed(name)
	if linStr != "0" {
		if strings.HasPrefix(linStr, "-") {
			parts = append(parts, "- "+linStr[1:])
		} else {
			parts = append(parts, "+ "+linStr)
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	s := strings.Join(parts, " ")
	s = strings.TrimPrefix(s, "+ ")
	if strings.HasPrefix(s, "- ") {
		s = "-" + s[2:]
	}
	return s
}
