package poly

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qed2/internal/ff"
)

var f97 = ff.MustField(big.NewInt(97))

// elt converts a small integer for test literals.
func elt(f *ff.Field, v int64) ff.Element { return f.NewElement(v) }

// int64Of extracts the plain value for assertions on small fields.
func int64Of(f *ff.Field, e ff.Element) int64 { return f.ToBig(e).Int64() }

// randLC builds a random linear combination over nVars variables.
func randLC(f *ff.Field, rng *rand.Rand, nVars int) *LinComb {
	lc := Const(f, f.RandFrom(rng))
	for v := 0; v < nVars; v++ {
		if rng.Intn(2) == 0 {
			lc = lc.AddTerm(v, f.RandFrom(rng))
		}
	}
	return lc
}

func randAssign(f *ff.Field, rng *rand.Rand, nVars int) map[int]ff.Element {
	m := map[int]ff.Element{}
	for v := 0; v < nVars; v++ {
		m[v] = f.RandFrom(rng)
	}
	return m
}

func TestLinCombBasics(t *testing.T) {
	f := f97
	lc := Var(f, 3).Scale(elt(f, 2)).AddTerm(7, elt(f, -1)).AddConst(elt(f, 1))
	if got := lc.String(); got != "2*x3 - x7 + 1" {
		t.Errorf("String = %q", got)
	}
	if lc.NumTerms() != 2 || lc.IsConst() || lc.IsZero() {
		t.Error("shape predicates wrong")
	}
	if got := int64Of(f, lc.Coeff(3)); got != 2 {
		t.Errorf("Coeff(3) = %d", got)
	}
	if got := lc.Coeff(99); !got.IsZero() {
		t.Errorf("Coeff(99) = %v", got)
	}
	if vars := lc.Vars(); !reflect.DeepEqual(vars, []int{3, 7}) {
		t.Errorf("Vars = %v", vars)
	}
	// 2*5 - 10 + 1 = 1
	m := map[int]ff.Element{3: elt(f, 5), 7: elt(f, 10)}
	if got := int64Of(f, lc.EvalMap(m)); got != 1 {
		t.Errorf("Eval = %d", got)
	}
}

func TestLinCombCancellation(t *testing.T) {
	f := f97
	a := Var(f, 1)
	b := Var(f, 1).Neg()
	sum := a.Add(b)
	if !sum.IsZero() {
		t.Errorf("x1 - x1 = %v", sum)
	}
	if sum.NumTerms() != 0 {
		t.Error("cancelled term still stored")
	}
}

func TestLinCombAlgebraQuick(t *testing.T) {
	f := f97
	const nVars = 6
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randLC(f, r, nVars))
			}
		},
	}
	rng := rand.New(rand.NewSource(5))
	// (a+b) evaluates as eval(a)+eval(b); similarly sub, neg, scale.
	prop := func(a, b *LinComb) bool {
		m := randAssign(f, rng, nVars)
		k := f.RandFrom(rng)
		if a.Add(b).EvalMap(m) != f.Add(a.EvalMap(m), b.EvalMap(m)) {
			return false
		}
		if a.Sub(b).EvalMap(m) != f.Sub(a.EvalMap(m), b.EvalMap(m)) {
			return false
		}
		if a.Neg().EvalMap(m) != f.Neg(a.EvalMap(m)) {
			return false
		}
		if a.Scale(k).EvalMap(m) != f.Mul(k, a.EvalMap(m)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
	// a - a == 0 structurally.
	propZero := func(a *LinComb) bool { return a.Sub(a).IsZero() }
	if err := quick.Check(propZero, cfg); err != nil {
		t.Error(err)
	}
	// Key is stable under clone and add-zero.
	propKey := func(a *LinComb) bool {
		return a.Key() == a.Clone().Key() && a.Key() == a.Add(NewLinComb(f)).Key()
	}
	if err := quick.Check(propKey, cfg); err != nil {
		t.Error(err)
	}
}

func TestSubstituteValue(t *testing.T) {
	f := f97
	lc := Var(f, 0).Scale(elt(f, 3)).AddTerm(1, elt(f, 5))
	got := lc.SubstituteValue(0, elt(f, 2))
	want := Term(f, 1, elt(f, 5)).AddConst(elt(f, 6))
	if !got.Equal(want) {
		t.Errorf("subst = %v, want %v", got, want)
	}
	// substituting an absent variable is a no-op clone
	if !lc.SubstituteValue(42, elt(f, 9)).Equal(lc) {
		t.Error("substituting absent var changed lc")
	}
}

func TestSubstituteLin(t *testing.T) {
	f := f97
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		lc := randLC(f, rng, 5)
		repl := randLC(f, rng, 5)
		repl = repl.SubstituteValue(2, f.Zero()) // repl must not mention x2
		got := lc.Substitute(2, repl)
		m := randAssign(f, rng, 5)
		// Evaluate lc with x2 := repl(m).
		m2 := map[int]ff.Element{}
		for k, v := range m {
			m2[k] = v
		}
		m2[2] = repl.EvalMap(m)
		if got.EvalMap(m) != lc.EvalMap(m2) {
			t.Fatalf("iter %d: substitution not semantics-preserving", i)
		}
		if !got.Coeff(2).IsZero() {
			t.Fatalf("iter %d: x2 still present after substitution", i)
		}
	}
}

func TestSolveFor(t *testing.T) {
	f := f97
	// 3*x0 + 5*x1 + 7 = 0  =>  x0 = (-5*x1 - 7)/3
	lc := Term(f, 0, elt(f, 3)).AddTerm(1, elt(f, 5)).AddConst(elt(f, 7))
	expr, ok := lc.SolveFor(0)
	if !ok {
		t.Fatal("SolveFor failed")
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		x1 := f.RandFrom(rng)
		x0 := expr.EvalMap(map[int]ff.Element{1: x1})
		val := lc.EvalMap(map[int]ff.Element{0: x0, 1: x1})
		if !val.IsZero() {
			t.Fatalf("solved x0 does not satisfy equation (x1=%v)", x1)
		}
	}
	if _, ok := lc.SolveFor(9); ok {
		t.Error("SolveFor(absent) succeeded")
	}
}

func TestRenameVars(t *testing.T) {
	f := f97
	lc := Var(f, 0).AddTerm(1, elt(f, 2))
	ren := lc.RenameVars(func(x int) int { return x + 100 })
	if !reflect.DeepEqual(ren.Vars(), []int{100, 101}) {
		t.Errorf("renamed vars = %v", ren.Vars())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-injective rename did not panic")
		}
	}()
	lc.RenameVars(func(x int) int { return 0 })
}

func TestMulLinSemantics(t *testing.T) {
	f := f97
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		a := randLC(f, rng, 5)
		b := randLC(f, rng, 5)
		q := MulLin(a, b)
		m := randAssign(f, rng, 5)
		want := f.Mul(a.EvalMap(m), b.EvalMap(m))
		if got := q.EvalMap(m); got != want {
			t.Fatalf("iter %d: MulLin eval mismatch: got %v want %v\n a=%v b=%v q=%v", i, got, want, a, b, q)
		}
	}
}

func TestQuadAlgebra(t *testing.T) {
	f := f97
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		a := MulLin(randLC(f, rng, 4), randLC(f, rng, 4))
		b := MulLin(randLC(f, rng, 4), randLC(f, rng, 4))
		m := randAssign(f, rng, 4)
		k := f.RandFrom(rng)
		if a.Add(b).EvalMap(m) != f.Add(a.EvalMap(m), b.EvalMap(m)) {
			t.Fatal("Quad.Add mismatch")
		}
		if a.Sub(b).EvalMap(m) != f.Sub(a.EvalMap(m), b.EvalMap(m)) {
			t.Fatal("Quad.Sub mismatch")
		}
		if a.Neg().EvalMap(m) != f.Neg(a.EvalMap(m)) {
			t.Fatal("Quad.Neg mismatch")
		}
		if a.Scale(k).EvalMap(m) != f.Mul(k, a.EvalMap(m)) {
			t.Fatal("Quad.Scale mismatch")
		}
		if !a.Sub(a).IsZero() {
			t.Fatal("a-a not structurally zero")
		}
	}
}

func TestQuadSubstituteValue(t *testing.T) {
	f := f97
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 200; i++ {
		q := MulLin(randLC(f, rng, 4), randLC(f, rng, 4))
		v := f.RandFrom(rng)
		got := q.SubstituteValue(1, v)
		m := randAssign(f, rng, 4)
		m2 := map[int]ff.Element{}
		for k, val := range m {
			m2[k] = val
		}
		m2[1] = v
		if got.EvalMap(m) != q.EvalMap(m2) {
			t.Fatalf("iter %d: Quad substitution mismatch", i)
		}
		for _, x := range got.Vars() {
			if x == 1 {
				t.Fatalf("iter %d: x1 survived substitution", i)
			}
		}
	}
}

func TestQuadSquareTerm(t *testing.T) {
	f := f97
	// (x0+1)*(x0-1) = x0² - 1
	a := Var(f, 0).AddConst(elt(f, 1))
	b := Var(f, 0).AddConst(elt(f, -1))
	q := MulLin(a, b)
	if q.NumQuadTerms() != 1 || int64Of(f, q.CoeffPair(0, 0)) != 1 {
		t.Errorf("x0² coefficient wrong: %v", q)
	}
	if got := q.String(); got != "x0² - 1" {
		t.Errorf("String = %q", got)
	}
	// Substituting x0=5 gives 24.
	if got := q.SubstituteValue(0, elt(f, 5)); func() bool {
		c, ok := got.IsConst()
		return !ok || int64Of(f, c) != 24
	}() {
		t.Errorf("subst gave %v", got)
	}
}

func TestQuadEqualKeyNormalize(t *testing.T) {
	f := f97
	a := Var(f, 0)
	b := Var(f, 1)
	q1 := MulLin(a, b)                  // x0*x1
	q2 := MulLin(b, a)                  // x1*x0
	q3 := MulLin(a.Scale(elt(f, 2)), b) // 2*x0*x1
	if !q1.Equal(q2) || q1.Key() != q2.Key() {
		t.Error("commuted products not canonical-equal")
	}
	if q1.Equal(q3) {
		t.Error("distinct polys compare equal")
	}
	if !q3.NormalizeSign().Equal(q1) {
		t.Error("NormalizeSign(2*x0*x1) != x0*x1")
	}
	z := NewQuad(f)
	if !z.NormalizeSign().IsZero() {
		t.Error("NormalizeSign(0) != 0")
	}
}

func TestQuadDegreeAndShape(t *testing.T) {
	f := f97
	if d := NewQuad(f).Degree(); d != 0 {
		t.Errorf("deg 0 poly = %d", d)
	}
	if d := QuadFromLin(Var(f, 2)).Degree(); d != 1 {
		t.Errorf("deg 1 poly = %d", d)
	}
	q := MulLin(Var(f, 0), Var(f, 1))
	if d := q.Degree(); d != 2 {
		t.Errorf("deg 2 poly = %d", d)
	}
	if q.IsLinear() {
		t.Error("product reported linear")
	}
	if _, ok := q.IsConst(); ok {
		t.Error("product reported const")
	}
	if c, ok := ConstQuad(f, 7).IsConst(); !ok || int64Of(f, c) != 7 {
		t.Error("ConstQuad shape wrong")
	}
	if !reflect.DeepEqual(q.Vars(), []int{0, 1}) {
		t.Errorf("Vars = %v", q.Vars())
	}
}

func TestQuadStringForms(t *testing.T) {
	f := f97
	q := MulLin(Var(f, 0), Var(f, 1)).Neg()
	if got := q.String(); got != "-x0*x1" {
		t.Errorf("String = %q", got)
	}
	if got := NewQuad(f).String(); got != "0" {
		t.Errorf("zero String = %q", got)
	}
}
