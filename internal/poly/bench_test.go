package poly

import (
	"math/rand"
	"testing"

	"qed2/internal/ff"
)

// BenchmarkPolySubst measures the substitution path the solver's Gaussian
// elimination leans on: substituting a linear combination into a dense Quad,
// and fixing a variable to a value.
func BenchmarkPolySubst(b *testing.B) {
	f := ff.BN254()
	rng := rand.New(rand.NewSource(7))
	const nVars = 24
	dense := func() *LinComb {
		lc := Const(f, f.RandFrom(rng))
		for v := 0; v < nVars; v++ {
			lc = lc.AddTerm(v, f.RandFrom(rng))
		}
		return lc
	}
	a, c := dense(), dense()
	q := MulLin(a, c)
	repl := dense().SubstituteValue(3, f.Zero())
	val := f.RandFrom(rng)

	b.Run("lincomb-substitute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkLC = a.Substitute(3, repl)
		}
	})
	b.Run("lincomb-substitute-value", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkLC = a.SubstituteValue(3, val)
		}
	})
	b.Run("quad-substitute-value", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkQuad = q.SubstituteValue(3, val)
		}
	})
	b.Run("quad-eval", func(b *testing.B) {
		m := map[int]ff.Element{}
		for v := 0; v < nVars; v++ {
			m[v] = f.RandFrom(rng)
		}
		for i := 0; i < b.N; i++ {
			sinkElt = q.EvalMap(m)
		}
	})
	b.Run("mullin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkQuad = MulLin(a, c)
		}
	})
	b.Run("key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkString = q.Key()
		}
	})
}

var (
	sinkLC     *LinComb
	sinkQuad   *Quad
	sinkElt    ff.Element
	sinkString string
)
