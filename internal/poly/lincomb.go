// Package poly implements the symbolic algebra used throughout the system:
// sparse linear combinations over signal variables and canonical quadratic
// forms, both with coefficients in a prime field F_p.
//
// Variables are identified by small non-negative integers; the mapping from
// variable IDs to circuit signals is owned by the r1cs package. Linear
// combinations are the building block of rank-1 constraints ⟨A,s⟩·⟨B,s⟩ =
// ⟨C,s⟩, and — crucially for the solver — the R1CS form is closed under
// substituting a linear combination for a variable, so the entire analysis
// pipeline stays within this algebra.
//
// Coefficients are stored as ff.Element values (no per-coefficient heap
// pointers); conversion to *big.Int happens only in the String renderers.
package poly

import (
	"fmt"
	"math/big" //qed2:allow-mathbig — rendering and signed-magnitude display only
	"sort"
	"strings"

	"qed2/internal/ff"
)

// LinComb is a sparse linear combination  c₀ + Σᵢ cᵢ·xᵢ  with coefficients
// in F_p. The zero coefficient is never stored. LinComb values are mutable;
// operations return new values and never mutate their receivers unless the
// method name says so (the *InPlace variants).
type LinComb struct {
	f     *ff.Field
	konst ff.Element         // constant term
	terms map[int]ff.Element // var → nonzero coefficient
}

// NewLinComb returns the zero linear combination over field f.
func NewLinComb(f *ff.Field) *LinComb {
	return &LinComb{f: f, terms: map[int]ff.Element{}}
}

// Const returns the constant linear combination v.
func Const(f *ff.Field, v ff.Element) *LinComb {
	lc := NewLinComb(f)
	lc.konst = v
	return lc
}

// ConstBig returns the constant linear combination for a *big.Int, reduced
// into the field. Parse/deserialize boundary helper.
func ConstBig(f *ff.Field, v *big.Int) *LinComb { return Const(f, f.FromBig(v)) }

// ConstInt returns the constant linear combination for a small integer.
func ConstInt(f *ff.Field, v int64) *LinComb { return Const(f, f.NewElement(v)) }

// Var returns the linear combination consisting of the single variable x
// with coefficient 1.
func Var(f *ff.Field, x int) *LinComb {
	lc := NewLinComb(f)
	lc.terms[x] = f.One()
	return lc
}

// Term returns the linear combination coeff·x.
func Term(f *ff.Field, x int, coeff ff.Element) *LinComb {
	lc := NewLinComb(f)
	if !coeff.IsZero() {
		lc.terms[x] = coeff
	}
	return lc
}

// Field returns the coefficient field.
func (lc *LinComb) Field() *ff.Field { return lc.f }

// Clone returns a deep copy.
func (lc *LinComb) Clone() *LinComb {
	out := &LinComb{f: lc.f, konst: lc.konst, terms: make(map[int]ff.Element, len(lc.terms))}
	for v, c := range lc.terms {
		out.terms[v] = c
	}
	return out
}

// Constant returns the constant term.
func (lc *LinComb) Constant() ff.Element { return lc.konst }

// Coeff returns the coefficient of variable x (zero if absent).
func (lc *LinComb) Coeff(x int) ff.Element { return lc.terms[x] }

// NumTerms returns the number of variables with nonzero coefficient.
func (lc *LinComb) NumTerms() int { return len(lc.terms) }

// Vars returns the variables with nonzero coefficients, in ascending order.
func (lc *LinComb) Vars() []int {
	vs := make([]int, 0, len(lc.terms))
	for v := range lc.terms {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// VisitTerms calls fn for every (variable, coefficient) pair in ascending
// variable order.
func (lc *LinComb) VisitTerms(fn func(x int, coeff ff.Element)) {
	for _, v := range lc.Vars() {
		fn(v, lc.terms[v])
	}
}

// VisitTermsUnordered calls fn for every (variable, coefficient) pair in
// unspecified order. Unlike VisitTerms it neither sorts nor allocates, so
// it is safe in hot paths as long as the caller folds the visits with an
// order-independent operation (a multiset hash, a minimum, a sum).
func (lc *LinComb) VisitTermsUnordered(fn func(x int, coeff ff.Element)) {
	for v, c := range lc.terms {
		fn(v, c)
	}
}

// IsZero reports whether the combination is identically zero.
func (lc *LinComb) IsZero() bool { return lc.konst.IsZero() && len(lc.terms) == 0 }

// IsConst reports whether the combination has no variables.
func (lc *LinComb) IsConst() bool { return len(lc.terms) == 0 }

// IsSingleVar reports whether lc has exactly the form c·x + d with c ≠ 0,
// returning x when so.
func (lc *LinComb) IsSingleVar() (x int, ok bool) {
	if len(lc.terms) != 1 {
		return 0, false
	}
	for v := range lc.terms {
		return v, true
	}
	return 0, false // unreachable
}

// setCoeff installs coeff for x, deleting the entry when zero.
func (lc *LinComb) setCoeff(x int, coeff ff.Element) {
	if coeff.IsZero() {
		delete(lc.terms, x)
	} else {
		lc.terms[x] = coeff
	}
}

// Add returns lc + other.
func (lc *LinComb) Add(other *LinComb) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Add(out.konst, other.konst)
	for v, c := range other.terms {
		out.setCoeff(v, lc.f.Add(out.terms[v], c))
	}
	return out
}

// Sub returns lc - other.
func (lc *LinComb) Sub(other *LinComb) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Sub(out.konst, other.konst)
	for v, c := range other.terms {
		out.setCoeff(v, lc.f.Sub(out.terms[v], c))
	}
	return out
}

// Neg returns -lc.
func (lc *LinComb) Neg() *LinComb {
	out := NewLinComb(lc.f)
	out.konst = lc.f.Neg(lc.konst)
	for v, c := range lc.terms {
		out.terms[v] = lc.f.Neg(c)
	}
	return out
}

// Scale returns k·lc for a field constant k.
func (lc *LinComb) Scale(k ff.Element) *LinComb {
	out := NewLinComb(lc.f)
	if k.IsZero() {
		return out
	}
	out.konst = lc.f.Mul(lc.konst, k)
	for v, c := range lc.terms {
		out.terms[v] = lc.f.Mul(c, k)
	}
	return out
}

// AddTerm returns lc + coeff·x.
func (lc *LinComb) AddTerm(x int, coeff ff.Element) *LinComb {
	out := lc.Clone()
	out.setCoeff(x, lc.f.Add(out.terms[x], coeff))
	return out
}

// AddConst returns lc + v.
func (lc *LinComb) AddConst(v ff.Element) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Add(out.konst, v)
	return out
}

// Eval evaluates the combination under the assignment fn (variable → value).
// fn must return a field element for every variable of lc. The evaluation
// is allocation-free.
func (lc *LinComb) Eval(fn func(x int) ff.Element) ff.Element {
	acc := lc.konst
	for v, c := range lc.terms {
		acc = lc.f.Add(acc, lc.f.Mul(c, fn(v)))
	}
	return acc
}

// EvalMap is Eval over a map assignment; variables absent from m evaluate
// to zero.
func (lc *LinComb) EvalMap(m map[int]ff.Element) ff.Element {
	return lc.Eval(func(x int) ff.Element { return m[x] })
}

// SubstituteValue returns lc with variable x replaced by the constant v.
func (lc *LinComb) SubstituteValue(x int, v ff.Element) *LinComb {
	c, ok := lc.terms[x]
	if !ok {
		return lc.Clone()
	}
	out := lc.Clone()
	delete(out.terms, x)
	out.konst = lc.f.Add(out.konst, lc.f.Mul(c, v))
	return out
}

// Substitute returns lc with variable x replaced by the linear combination
// repl (which must not mention x).
func (lc *LinComb) Substitute(x int, repl *LinComb) *LinComb {
	c, ok := lc.terms[x]
	if !ok {
		return lc.Clone()
	}
	out := lc.Clone()
	delete(out.terms, x)
	return out.Add(repl.Scale(c))
}

// SolveFor rewrites the equation lc = 0 as x = expr when the coefficient of
// x is nonzero, returning expr (which does not mention x). ok is false when
// x does not occur in lc.
func (lc *LinComb) SolveFor(x int) (expr *LinComb, ok bool) {
	c, found := lc.terms[x]
	if !found {
		return nil, false
	}
	// c·x + rest = 0  ⇒  x = -rest / c
	rest := lc.Clone()
	delete(rest.terms, x)
	scale := lc.f.Neg(lc.f.MustInv(c))
	return rest.Scale(scale), true
}

// Equal reports structural equality (same field, same coefficients).
func (lc *LinComb) Equal(other *LinComb) bool {
	if !lc.f.SameField(other.f) || lc.konst != other.konst || len(lc.terms) != len(other.terms) {
		return false
	}
	for v, c := range lc.terms {
		if oc, ok := other.terms[v]; !ok || c != oc {
			return false
		}
	}
	return true
}

// Key returns a canonical key for deduplication. The encoding is the raw
// fixed-width limb bytes of each coefficient (cheap to produce, never
// printed), so it is canonical per field but not meaningful across fields.
func (lc *LinComb) Key() string {
	buf := make([]byte, 0, (len(lc.terms)+1)*(8*ff.ElementLimbs+8))
	buf = lc.konst.AppendRawBytes(buf)
	for _, v := range lc.Vars() {
		buf = appendVarID(buf, v)
		buf = lc.terms[v].AppendRawBytes(buf)
	}
	return string(buf)
}

// appendVarID appends a fixed-width encoding of a variable ID to a key.
func appendVarID(dst []byte, v int) []byte {
	u := uint64(v)
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// String renders the combination with signed coefficients, e.g.
// "2*x3 - x7 + 1". Variables print as x<i>; use StringNamed for real names.
func (lc *LinComb) String() string {
	return lc.StringNamed(func(x int) string { return fmt.Sprintf("x%d", x) })
}

// StringNamed renders the combination using the provided variable namer.
func (lc *LinComb) StringNamed(name func(x int) string) string {
	var parts []string
	for _, v := range lc.Vars() {
		c := lc.f.Signed(lc.terms[v])
		switch {
		case c.Cmp(oneInt) == 0:
			parts = append(parts, "+ "+name(v))
		case c.Cmp(minusOneInt) == 0:
			parts = append(parts, "- "+name(v))
		case c.Sign() < 0:
			parts = append(parts, fmt.Sprintf("- %v*%s", new(big.Int).Neg(c), name(v)))
		default:
			parts = append(parts, fmt.Sprintf("+ %v*%s", c, name(v)))
		}
	}
	if !lc.konst.IsZero() || len(parts) == 0 {
		c := lc.f.Signed(lc.konst)
		if c.Sign() < 0 {
			parts = append(parts, fmt.Sprintf("- %v", new(big.Int).Neg(c)))
		} else {
			parts = append(parts, fmt.Sprintf("+ %v", c))
		}
	}
	s := strings.Join(parts, " ")
	s = strings.TrimPrefix(s, "+ ")
	if strings.HasPrefix(s, "- ") {
		s = "-" + s[2:]
	}
	return s
}

var (
	oneInt      = big.NewInt(1)
	minusOneInt = big.NewInt(-1)
)

// RenameVars returns lc with every variable x replaced by rename(x).
// rename must be injective on the variables of lc.
func (lc *LinComb) RenameVars(rename func(x int) int) *LinComb {
	out := NewLinComb(lc.f)
	out.konst = lc.konst
	for v, c := range lc.terms {
		out.terms[rename(v)] = c
	}
	if len(out.terms) != len(lc.terms) {
		panic("poly: RenameVars with non-injective renaming")
	}
	return out
}
