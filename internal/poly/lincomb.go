// Package poly implements the symbolic algebra used throughout the system:
// sparse linear combinations over signal variables and canonical quadratic
// forms, both with coefficients in a prime field F_p.
//
// Variables are identified by small non-negative integers; the mapping from
// variable IDs to circuit signals is owned by the r1cs package. Linear
// combinations are the building block of rank-1 constraints ⟨A,s⟩·⟨B,s⟩ =
// ⟨C,s⟩, and — crucially for the solver — the R1CS form is closed under
// substituting a linear combination for a variable, so the entire analysis
// pipeline stays within this algebra.
package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"qed2/internal/ff"
)

// LinComb is a sparse linear combination  c₀ + Σᵢ cᵢ·xᵢ  with coefficients
// in F_p. The zero coefficient is never stored. LinComb values are mutable;
// operations return new values and never mutate their receivers unless the
// method name says so (the *InPlace variants).
type LinComb struct {
	f     *ff.Field
	konst *big.Int         // constant term, normalized in [0,p)
	terms map[int]*big.Int // var → nonzero normalized coefficient
}

// NewLinComb returns the zero linear combination over field f.
func NewLinComb(f *ff.Field) *LinComb {
	return &LinComb{f: f, konst: new(big.Int), terms: map[int]*big.Int{}}
}

// Const returns the constant linear combination v (reduced into the field).
func Const(f *ff.Field, v *big.Int) *LinComb {
	lc := NewLinComb(f)
	lc.konst = f.Reduce(v)
	return lc
}

// ConstInt returns the constant linear combination for a small integer.
func ConstInt(f *ff.Field, v int64) *LinComb { return Const(f, big.NewInt(v)) }

// Var returns the linear combination consisting of the single variable x
// with coefficient 1.
func Var(f *ff.Field, x int) *LinComb {
	lc := NewLinComb(f)
	lc.terms[x] = f.One()
	return lc
}

// Term returns the linear combination coeff·x.
func Term(f *ff.Field, x int, coeff *big.Int) *LinComb {
	lc := NewLinComb(f)
	c := f.Reduce(coeff)
	if c.Sign() != 0 {
		lc.terms[x] = c
	}
	return lc
}

// Field returns the coefficient field.
func (lc *LinComb) Field() *ff.Field { return lc.f }

// Clone returns a deep copy.
func (lc *LinComb) Clone() *LinComb {
	out := &LinComb{f: lc.f, konst: new(big.Int).Set(lc.konst), terms: make(map[int]*big.Int, len(lc.terms))}
	for v, c := range lc.terms {
		out.terms[v] = new(big.Int).Set(c)
	}
	return out
}

// Constant returns the constant term (do not mutate).
func (lc *LinComb) Constant() *big.Int { return lc.konst }

// Coeff returns the coefficient of variable x (zero if absent; do not mutate).
func (lc *LinComb) Coeff(x int) *big.Int {
	if c, ok := lc.terms[x]; ok {
		return c
	}
	return zeroInt
}

var zeroInt = new(big.Int)

// NumTerms returns the number of variables with nonzero coefficient.
func (lc *LinComb) NumTerms() int { return len(lc.terms) }

// Vars returns the variables with nonzero coefficients, in ascending order.
func (lc *LinComb) Vars() []int {
	vs := make([]int, 0, len(lc.terms))
	for v := range lc.terms {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// VisitTerms calls fn for every (variable, coefficient) pair in ascending
// variable order. The coefficient must not be mutated.
func (lc *LinComb) VisitTerms(fn func(x int, coeff *big.Int)) {
	for _, v := range lc.Vars() {
		fn(v, lc.terms[v])
	}
}

// IsZero reports whether the combination is identically zero.
func (lc *LinComb) IsZero() bool { return lc.konst.Sign() == 0 && len(lc.terms) == 0 }

// IsConst reports whether the combination has no variables.
func (lc *LinComb) IsConst() bool { return len(lc.terms) == 0 }

// IsSingleVar reports whether lc has exactly the form c·x + d with c ≠ 0,
// returning x when so.
func (lc *LinComb) IsSingleVar() (x int, ok bool) {
	if len(lc.terms) != 1 {
		return 0, false
	}
	for v := range lc.terms {
		return v, true
	}
	return 0, false // unreachable
}

// setCoeff installs coeff (already reduced) for x, deleting the entry when zero.
func (lc *LinComb) setCoeff(x int, coeff *big.Int) {
	if coeff.Sign() == 0 {
		delete(lc.terms, x)
	} else {
		lc.terms[x] = coeff
	}
}

// Add returns lc + other.
func (lc *LinComb) Add(other *LinComb) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Add(out.konst, other.konst)
	for v, c := range other.terms {
		out.setCoeff(v, lc.f.Add(out.Coeff(v), c))
	}
	return out
}

// Sub returns lc - other.
func (lc *LinComb) Sub(other *LinComb) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Sub(out.konst, other.konst)
	for v, c := range other.terms {
		out.setCoeff(v, lc.f.Sub(out.Coeff(v), c))
	}
	return out
}

// Neg returns -lc.
func (lc *LinComb) Neg() *LinComb {
	out := NewLinComb(lc.f)
	out.konst = lc.f.Neg(lc.konst)
	for v, c := range lc.terms {
		out.terms[v] = lc.f.Neg(c)
	}
	return out
}

// Scale returns k·lc for a field constant k.
func (lc *LinComb) Scale(k *big.Int) *LinComb {
	k = lc.f.Reduce(k)
	out := NewLinComb(lc.f)
	if k.Sign() == 0 {
		return out
	}
	out.konst = lc.f.Mul(lc.konst, k)
	for v, c := range lc.terms {
		out.terms[v] = lc.f.Mul(c, k)
	}
	return out
}

// AddTerm returns lc + coeff·x.
func (lc *LinComb) AddTerm(x int, coeff *big.Int) *LinComb {
	out := lc.Clone()
	out.setCoeff(x, lc.f.Add(out.Coeff(x), lc.f.Reduce(coeff)))
	return out
}

// AddConst returns lc + v.
func (lc *LinComb) AddConst(v *big.Int) *LinComb {
	out := lc.Clone()
	out.konst = lc.f.Add(out.konst, lc.f.Reduce(v))
	return out
}

// Eval evaluates the combination under the assignment fn (variable → value).
// fn must return a normalized field element for every variable of lc.
func (lc *LinComb) Eval(fn func(x int) *big.Int) *big.Int {
	acc := new(big.Int).Set(lc.konst)
	tmp := new(big.Int)
	for v, c := range lc.terms {
		tmp.Mul(c, fn(v))
		acc.Add(acc, tmp)
	}
	return acc.Mod(acc, lc.f.Modulus())
}

// EvalMap is Eval over a map assignment; variables absent from m evaluate
// to zero.
func (lc *LinComb) EvalMap(m map[int]*big.Int) *big.Int {
	return lc.Eval(func(x int) *big.Int {
		if v, ok := m[x]; ok {
			return v
		}
		return zeroInt
	})
}

// SubstituteValue returns lc with variable x replaced by the constant v.
func (lc *LinComb) SubstituteValue(x int, v *big.Int) *LinComb {
	c, ok := lc.terms[x]
	if !ok {
		return lc.Clone()
	}
	out := lc.Clone()
	delete(out.terms, x)
	out.konst = lc.f.Add(out.konst, lc.f.Mul(c, lc.f.Reduce(v)))
	return out
}

// Substitute returns lc with variable x replaced by the linear combination
// repl (which must not mention x).
func (lc *LinComb) Substitute(x int, repl *LinComb) *LinComb {
	c, ok := lc.terms[x]
	if !ok {
		return lc.Clone()
	}
	out := lc.Clone()
	delete(out.terms, x)
	return out.Add(repl.Scale(c))
}

// SolveFor rewrites the equation lc = 0 as x = expr when the coefficient of
// x is nonzero, returning expr (which does not mention x). ok is false when
// x does not occur in lc.
func (lc *LinComb) SolveFor(x int) (expr *LinComb, ok bool) {
	c, found := lc.terms[x]
	if !found {
		return nil, false
	}
	// c·x + rest = 0  ⇒  x = -rest / c
	rest := lc.Clone()
	delete(rest.terms, x)
	scale := lc.f.Neg(lc.f.MustInv(c))
	return rest.Scale(scale), true
}

// Equal reports structural equality (same field, same coefficients).
func (lc *LinComb) Equal(other *LinComb) bool {
	if !lc.f.SameField(other.f) || lc.konst.Cmp(other.konst) != 0 || len(lc.terms) != len(other.terms) {
		return false
	}
	for v, c := range lc.terms {
		oc, ok := other.terms[v]
		if !ok || c.Cmp(oc) != 0 {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for deduplication.
func (lc *LinComb) Key() string {
	var b strings.Builder
	b.WriteString(lc.konst.String())
	for _, v := range lc.Vars() {
		fmt.Fprintf(&b, "|%d:%s", v, lc.terms[v].String())
	}
	return b.String()
}

// String renders the combination with signed coefficients, e.g.
// "2*x3 - x7 + 1". Variables print as x<i>; use StringNamed for real names.
func (lc *LinComb) String() string {
	return lc.StringNamed(func(x int) string { return fmt.Sprintf("x%d", x) })
}

// StringNamed renders the combination using the provided variable namer.
func (lc *LinComb) StringNamed(name func(x int) string) string {
	var parts []string
	for _, v := range lc.Vars() {
		c := lc.f.Signed(lc.terms[v])
		switch {
		case c.Cmp(oneInt) == 0:
			parts = append(parts, "+ "+name(v))
		case c.Cmp(minusOneInt) == 0:
			parts = append(parts, "- "+name(v))
		case c.Sign() < 0:
			parts = append(parts, fmt.Sprintf("- %v*%s", new(big.Int).Neg(c), name(v)))
		default:
			parts = append(parts, fmt.Sprintf("+ %v*%s", c, name(v)))
		}
	}
	if lc.konst.Sign() != 0 || len(parts) == 0 {
		c := lc.f.Signed(lc.konst)
		if c.Sign() < 0 {
			parts = append(parts, fmt.Sprintf("- %v", new(big.Int).Neg(c)))
		} else {
			parts = append(parts, fmt.Sprintf("+ %v", c))
		}
	}
	s := strings.Join(parts, " ")
	s = strings.TrimPrefix(s, "+ ")
	if strings.HasPrefix(s, "- ") {
		s = "-" + s[2:]
	}
	return s
}

var (
	oneInt      = big.NewInt(1)
	minusOneInt = big.NewInt(-1)
)

// RenameVars returns lc with every variable x replaced by rename(x).
// rename must be injective on the variables of lc.
func (lc *LinComb) RenameVars(rename func(x int) int) *LinComb {
	out := NewLinComb(lc.f)
	out.konst = new(big.Int).Set(lc.konst)
	for v, c := range lc.terms {
		out.terms[rename(v)] = new(big.Int).Set(c)
	}
	if len(out.terms) != len(lc.terms) {
		panic("poly: RenameVars with non-injective renaming")
	}
	return out
}
