package smt

import (
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// Hand-built BabyAdd xout uniqueness query (shared: x1=1 y1=2 x2=3 y2=4
// beta=5 gamma=6 delta=7 tau=8; xout=9 yout=10; primed +20). BabyJubJub's
// parameters make the twisted Edwards addition complete (d is a
// non-square), so xout is uniquely determined and the query must be UNSAT —
// reaching that verdict requires the pair-difference and proportional-
// square rules.
func TestBabyAddXoutUnsat(t *testing.T) {
	f := ff.BN254()
	a := f.NewElement(168700)
	d := f.NewElement(168696)
	v := func(x int) *poly.LinComb { return poly.Var(f, x) }
	p := NewProblem(f)
	// E1: x1*y2 = beta
	p.AddEq(v(1), v(4), v(5))
	// E2: y1*x2 = gamma
	p.AddEq(v(2), v(3), v(6))
	// E3: (-a*x1 + y1)*(x2+y2) = delta
	p.AddEq(v(1).Scale(f.Neg(a)).Add(v(2)), v(3).Add(v(4)), v(7))
	// E4: beta*gamma = tau
	p.AddEq(v(5), v(6), v(8))
	onePlus := poly.ConstInt(f, 1).AddTerm(8, d)
	oneMinus := poly.ConstInt(f, 1).AddTerm(8, f.Neg(d))
	rhsY := v(7).Add(v(5).Scale(a)).Sub(v(6))
	// E5/E5': (1+d*tau)*xout = beta+gamma
	p.AddEq(onePlus, v(9), v(5).Add(v(6)))
	p.AddEq(onePlus, v(29), v(5).Add(v(6)))
	// E6/E6': (1-d*tau)*yout = delta + a*beta - gamma
	p.AddEq(oneMinus, v(10), rhsY)
	p.AddEq(oneMinus, v(30), rhsY)
	p.AddNeq(v(9).Sub(v(29)))
	out := Solve(p, &Options{MaxSteps: 200000, Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("xout query: %v (steps=%d reason=%s), want unsat", out.Status, out.Steps, out.Reason)
	}
}

// Same system asking about yout: also genuinely unique (legendre(a·d) =
// -1 makes the forgery class empty), but the proof needs Gröbner-style
// reasoning beyond this solver. The required outcome is "never SAT":
// Unknown is acceptable, a model would be unsound.
func TestBabyAddYoutNeverSat(t *testing.T) {
	f := ff.BN254()
	a := f.NewElement(168700)
	d := f.NewElement(168696)
	v := func(x int) *poly.LinComb { return poly.Var(f, x) }
	p := NewProblem(f)
	p.AddEq(v(1), v(4), v(5))
	p.AddEq(v(2), v(3), v(6))
	p.AddEq(v(1).Scale(f.Neg(a)).Add(v(2)), v(3).Add(v(4)), v(7))
	p.AddEq(v(5), v(6), v(8))
	onePlus := poly.ConstInt(f, 1).AddTerm(8, d)
	oneMinus := poly.ConstInt(f, 1).AddTerm(8, f.Neg(d))
	rhsY := v(7).Add(v(5).Scale(a)).Sub(v(6))
	p.AddEq(onePlus, v(9), v(5).Add(v(6)))
	p.AddEq(onePlus, v(29), v(5).Add(v(6)))
	p.AddEq(oneMinus, v(10), rhsY)
	p.AddEq(oneMinus, v(30), rhsY)
	p.AddNeq(v(10).Sub(v(30)))
	out := Solve(p, &Options{MaxSteps: 200000, Seed: 1})
	if out.Status == StatusSat {
		t.Fatalf("yout query SAT — unsound (model %v)", out.Model)
	}
}
