package smt

import (
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// --- proportional-factor detection -------------------------------------------------

func TestProportionalDetection(t *testing.T) {
	f := f97
	x := poly.Var(f, 0)
	y := poly.Var(f, 1)
	cases := []struct {
		a, b  *poly.LinComb
		wantK int64
		ok    bool
	}{
		{x, x, 1, true},
		{x.Scale(f.NewElement(3)), x, 3, true},
		{x.Neg(), x, 96, true},
		{x.Add(y).Scale(f.NewElement(5)), x.Add(y), 5, true},
		{x.Add(y), x.Sub(y), 0, false},
		{x, y, 0, false},
		{x.AddConst(f.NewElement(1)), x, 0, false},
		{poly.ConstInt(f, 3), x, 0, false}, // const side
		{x, poly.ConstInt(f, 3), 0, false},
	}
	for i, c := range cases {
		k, ok := proportional(f, c.a, c.b)
		if ok != c.ok {
			t.Errorf("case %d: ok=%v want %v", i, ok, c.ok)
			continue
		}
		if ok && i64(f, k) != c.wantK {
			t.Errorf("case %d: k=%v want %d", i, k, c.wantK)
		}
	}
}

func TestProportionalSquareUnsat(t *testing.T) {
	// (2x+2y)·(x+y) = 5 with 5·2⁻¹... i.e. (x+y)² = 5/2; check against a
	// value with no square root. Over F_97, pick c so that c/2 is a QNR:
	// 5 is a QNR mod 97 and 2⁻¹·10 = 5, so use C = 10.
	f := f97
	l := poly.Var(f, 0).Add(poly.Var(f, 1))
	p := NewProblem(f)
	p.AddEq(l.Scale(f.NewElement(2)), l, poly.ConstInt(f, 10))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("status = %v, want unsat ((x+y)² = 5 has no solution mod 97)", out.Status)
	}
	// Same shape with a solvable RHS: (x+y)² = 9·2/2 → use C = 18 → square 9.
	p2 := NewProblem(f)
	p2.AddEq(l.Scale(f.NewElement(2)), l, poly.ConstInt(f, 18))
	out = Solve(p2, &Options{Seed: 1})
	if out.Status != StatusSat {
		t.Fatalf("status = %v, want sat", out.Status)
	}
	sum := f.Add(out.Model.Eval(0), out.Model.Eval(1))
	if sq := f.Mul(sum, sum); i64(f, sq) != 9 {
		t.Errorf("(x+y)² = %v, want 9", sq)
	}
}

// --- pairwise differencing ---------------------------------------------------------

func TestDerivePairsDecidesSharedDenominator(t *testing.T) {
	// x·k = 1 ∧ x′·k = 1 ∧ x ≠ x′ is UNSAT: either k = 0 (conflicts with
	// the product being 1) or x = x′ (conflicts with the disequality).
	// Without pair differencing this needs enumeration and would be
	// Unknown over a big field.
	f := ff.BN254()
	x, xp, k := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2)
	p := NewProblem(f)
	p.AddEq(x, k, poly.ConstInt(f, 1))
	p.AddEq(xp, k, poly.ConstInt(f, 1))
	p.AddNeq(x.Sub(xp))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("status = %v (reason %s), want unsat", out.Status, out.Reason)
	}
}

func TestDerivePairsCrossSides(t *testing.T) {
	// Factor shared across different sides: k·x = 5 ∧ y·k = 5 ∧ x ≠ y,
	// k constrained nonzero via k·kinv = 1 → UNSAT.
	f := ff.BN254()
	x, y, k, kinv := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2), poly.Var(f, 3)
	p := NewProblem(f)
	p.AddEq(k, x, poly.ConstInt(f, 5))
	p.AddEq(y, k, poly.ConstInt(f, 5))
	p.AddEq(k, kinv, poly.ConstInt(f, 1))
	p.AddNeq(x.Sub(y))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("status = %v (reason %s), want unsat", out.Status, out.Reason)
	}
}

func TestDerivePairsStillFindsSat(t *testing.T) {
	// x·k = 1 ∧ x′·k = 1 ∧ x ≠ x′ becomes SAT once k may differ: use two
	// separate ks.
	f := ff.BN254()
	x, xp, k1, k2 := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2), poly.Var(f, 3)
	p := NewProblem(f)
	p.AddEq(x, k1, poly.ConstInt(f, 1))
	p.AddEq(xp, k2, poly.ConstInt(f, 1))
	p.AddNeq(x.Sub(xp))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusSat {
		t.Fatalf("status = %v, want sat", out.Status)
	}
	if err := p.Check(out.Model); err != nil {
		t.Fatal(err)
	}
}

// --- quadratic-difference derivation ------------------------------------------------

func TestQuadDiffLinearizes(t *testing.T) {
	// x·y = 7 ∧ (x−3)·y = 7 − 3·5... i.e. x·y − 3y = 7 − 15 → subtracting
	// gives 3y = 15 → y = 5, then x = 7/5. All over BN254 (no enumeration
	// can stumble on this).
	f := ff.BN254()
	x, y := poly.Var(f, 0), poly.Var(f, 1)
	p := NewProblem(f)
	p.AddEq(x, y, poly.ConstInt(f, 7))
	p.AddEq(x.AddConst(f.NewElement(-3)), y, poly.ConstInt(f, 7-15))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusSat {
		t.Fatalf("status = %v (%s), want sat", out.Status, out.Reason)
	}
	if i64(f, out.Model.Eval(1)) != 5 {
		t.Errorf("y = %v, want 5", out.Model.Eval(1))
	}
	want := f.Mul(f.NewElement(7), f.MustInv(f.NewElement(5)))
	if out.Model.Eval(0) != want {
		t.Errorf("x = %v, want 7/5", out.Model.Eval(0))
	}
}

func TestQuadDiffDetectsContradiction(t *testing.T) {
	// x·y = 1 ∧ x·y = 2: the difference is the constant 1 → UNSAT, over
	// the big field where enumeration alone could not conclude.
	f := ff.BN254()
	x, y := poly.Var(f, 0), poly.Var(f, 1)
	p := NewProblem(f)
	p.AddEq(x, y, poly.ConstInt(f, 1))
	p.AddEq(x.Clone(), y.Clone(), poly.ConstInt(f, 2))
	out := Solve(p, &Options{Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("status = %v (%s), want unsat", out.Status, out.Reason)
	}
}

func TestQuadPartFingerprintBuckets(t *testing.T) {
	f := f97
	x, y := poly.Var(f, 0), poly.Var(f, 1)
	q1 := poly.MulLin(x, y)                          // xy
	q2 := poly.MulLin(x, y).Add(poly.QuadFromLin(x)) // xy + x
	q3 := poly.MulLin(x.Scale(f.NewElement(2)), y)   // 2xy
	if quadPartFingerprint(q1) != quadPartFingerprint(q2) {
		t.Error("same quadratic part bucketed differently")
	}
	if quadPartFingerprint(q1) == quadPartFingerprint(q3) {
		t.Error("different quadratic parts share a bucket")
	}
}

// --- enumeration candidates ----------------------------------------------------------

func TestEnumerationTriesAllFactorRoots(t *testing.T) {
	// Regression test for the MontgomeryDouble search-ordering bug: the SAT
	// assignment requires the roots of BOTH single-variable factors, not
	// just the busiest variable's candidates. System:
	//
	//	(a−2)·b = c ∧ (b−3)·a = c′ ∧ c,c′ ∈ {0,1} ∧ c + c′ = 0 ∧ a,b ≠ 0
	//
	// forces c = c′ = 0, hence a = 2 (since b ≠ 0) and b = 3 (since a ≠ 0)
	// — values only reachable through the factor-root candidates.
	f := ff.BN254()
	a, b, c, cp := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2), poly.Var(f, 3)
	p := NewProblem(f)
	p.AddEq(a.AddConst(f.NewElement(-2)), b, c)
	p.AddEq(b.AddConst(f.NewElement(-3)), a, cp)
	p.AddEq(c, c.AddConst(f.NewElement(-1)), poly.NewLinComb(f))   // c ∈ {0,1}
	p.AddEq(cp, cp.AddConst(f.NewElement(-1)), poly.NewLinComb(f)) // c′ ∈ {0,1}
	p.AddLinearEq(c.Add(cp))                                       // c + c′ = 0 → both zero
	p.AddNeq(a)                                                    // a ≠ 0
	p.AddNeq(b)                                                    // b ≠ 0
	out := Solve(p, &Options{Seed: 3})
	if out.Status != StatusSat {
		t.Fatalf("status = %v (%s), want sat via factor roots a=2, b=3", out.Status, out.Reason)
	}
	if i64(f, out.Model.Eval(0)) != 2 || i64(f, out.Model.Eval(1)) != 3 {
		t.Errorf("model a=%v b=%v, want 2,3", out.Model.Eval(0), out.Model.Eval(1))
	}
}

// --- budget interactions --------------------------------------------------------------

func TestDeriveGuardsRespectSize(t *testing.T) {
	// A system beyond maxDeriveEqs must still solve (without the derived
	// lemmas) and never panic.
	f := f97
	p := NewProblem(f)
	for i := 0; i < maxDeriveEqs+10; i++ {
		// x_i + 1 = x_{i+1}
		p.AddLinearEq(poly.Var(f, i).AddConst(f.NewElement(1)).Sub(poly.Var(f, i+1)))
	}
	out := Solve(p, &Options{MaxSteps: 10_000_000, Seed: 1})
	if out.Status != StatusSat {
		t.Fatalf("status = %v", out.Status)
	}
}
