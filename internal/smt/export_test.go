package smt

// SetDebugTrace installs a trace hook for diagnosis in tests.
func SetDebugTrace(fn func(string, ...any)) { debugTrace = fn }
