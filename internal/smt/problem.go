// Package smt implements a satisfiability solver for systems of rank-1
// polynomial equations and linear disequalities over a prime field F_p —
// the query language the QED² analysis needs. It plays the role the Z3 /
// cvc5 finite-field backends play for the original tool (there are no
// usable SMT bindings in pure Go, so the decision procedure is built from
// scratch).
//
// A problem is a conjunction of
//
//	⟨A,x⟩·⟨B,x⟩ = ⟨C,x⟩   (rank-1 equations; linear when A or B is constant)
//	⟨L,x⟩ ≠ 0              (linear disequalities)
//
// The solver combines exhaustive propagation (substitution of resolved
// values, Gaussian elimination of linear equations, single-variable
// quadratic solving with field square roots) with complete case splitting
// on zero products (A·B=0 ⇒ A=0 ∨ B=0) and square patterns (A²=c ⇒
// A=±√c), falling back to bounded value enumeration for residual hard
// cores. Every answer is sound: SAT comes with a checked model, and UNSAT
// is only reported when the search was exhaustive (no incomplete
// enumeration was involved on any refuted branch).
package smt

import (
	"fmt"
	"sort"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// Equation is a rank-1 constraint ⟨A,x⟩·⟨B,x⟩ = ⟨C,x⟩.
type Equation struct {
	A, B, C *poly.LinComb
}

// String renders the equation.
func (e Equation) String() string {
	return fmt.Sprintf("(%s)*(%s) = (%s)", e.A, e.B, e.C)
}

// Problem is a conjunction of equations and disequalities over one field.
type Problem struct {
	Field *ff.Field
	Eqs   []Equation
	// Neqs are linear disequalities L ≠ 0.
	Neqs []*poly.LinComb
}

// NewProblem creates an empty problem over f.
func NewProblem(f *ff.Field) *Problem {
	return &Problem{Field: f}
}

// AddEq appends the equation a·b = c.
func (p *Problem) AddEq(a, b, c *poly.LinComb) {
	p.Eqs = append(p.Eqs, Equation{A: a, B: b, C: c})
}

// AddLinearEq appends the linear equation l = 0.
func (p *Problem) AddLinearEq(l *poly.LinComb) {
	p.AddEq(poly.ConstInt(p.Field, 1), l, poly.NewLinComb(p.Field))
}

// AddNeq appends the disequality l ≠ 0.
func (p *Problem) AddNeq(l *poly.LinComb) {
	p.Neqs = append(p.Neqs, l.Clone())
}

// Vars returns every variable mentioned in the problem, ascending.
func (p *Problem) Vars() []int {
	seen := map[int]bool{}
	for _, e := range p.Eqs {
		for _, lc := range []*poly.LinComb{e.A, e.B, e.C} {
			for _, v := range lc.Vars() {
				seen[v] = true
			}
		}
	}
	for _, n := range p.Neqs {
		for _, v := range n.Vars() {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Model is a satisfying assignment, defined on every variable of the
// problem it solves.
type Model map[int]ff.Element

// Eval looks a variable up, defaulting to zero.
func (m Model) Eval(x int) ff.Element {
	return m[x]
}

// Check verifies that the model satisfies every constraint of the problem.
func (p *Problem) Check(m Model) error {
	f := p.Field
	at := m.Eval
	for i, e := range p.Eqs {
		l := f.Mul(e.A.Eval(at), e.B.Eval(at))
		r := e.C.Eval(at)
		if l != r {
			return fmt.Errorf("smt: equation %d violated: %s (lhs=%s rhs=%s)", i, e, f.String(l), f.String(r))
		}
	}
	for i, n := range p.Neqs {
		if n.Eval(at).IsZero() {
			return fmt.Errorf("smt: disequality %d violated: %s != 0", i, n)
		}
	}
	return nil
}

// Status is the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	// StatusSat means a model was found (Outcome.Model is set and checked).
	StatusSat Status = iota
	// StatusUnsat means the problem is proven unsatisfiable.
	StatusUnsat
	// StatusUnknown means the budget ran out or the search was incomplete.
	StatusUnknown
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Effort breaks a Solve call's work down by mechanism. All counts are
// deterministic for a fixed problem, budget and seed (the search itself is
// deterministic); only a wall-clock deadline can cut them short.
type Effort struct {
	// Eliminations counts variable eliminations performed by propagation
	// (Gaussian substitution of linear equations).
	Eliminations int64
	// Branches counts case-split branches explored by the complete pattern
	// rules (zero products, squares, quadratic roots).
	Branches int64
	// Enumerations counts concrete candidate assignments tried by the
	// value-enumeration fallback (complete on small fields, heuristic
	// probing on large ones).
	Enumerations int64
	// MaxDepth is the deepest search node reached.
	MaxDepth int
}

// Outcome is the full result of a Solve call.
type Outcome struct {
	Status Status
	// Model is set iff Status == StatusSat.
	Model Model
	// Steps is the number of solver steps consumed.
	Steps int64
	// Effort attributes the steps to elimination, branching and
	// enumeration work.
	Effort Effort
	// Reason is a short human-readable note (budget exhausted, incomplete
	// enumeration, …) for Unknown outcomes.
	Reason string
	// ResourceLimited marks Unknown outcomes caused by an exhaustible
	// resource — step budget, wall-clock deadline, cancellation, or an
	// injected fault — rather than by the search being inherently
	// incomplete on this problem. Resource-limited outcomes are not
	// replay-safe: a re-run with a bigger budget could decide the query, so
	// memo caches must not retain them (see core/scheduler.go).
	ResourceLimited bool
}
