package smt

import (
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// TestMontgomeryDoublePattern is a regression test for the vanishing-
// denominator search pattern: the uniqueness query of circomlib's
// MontgomeryDouble must come back SAT via the in[1] = 0 branch, which
// requires enumerating the root of a single-variable factor that is NOT
// the busiest variable.
func TestMontgomeryDoublePattern(t *testing.T) {
	f := ff.BN254()
	// vars: in0=1 in1=2 out0=3 out1=4 lamda=5 x1_2=6; primed +10
	v := func(x int) *poly.LinComb { return poly.Var(f, x) }
	c := func(k int64) *poly.LinComb { return poly.ConstInt(f, k) }
	p := NewProblem(f)
	// C0: in0*in0 = x1_2 (shared)
	p.AddEq(v(1), v(1), v(6))
	// C1: lamda * (2*in1) = 337396*in0 + 3*x1_2 + 1
	rhs := c(1).AddTerm(1, f.NewElement(337396)).AddTerm(6, f.NewElement(3))
	p.AddEq(v(5), v(2).Scale(f.NewElement(2)), rhs)
	p.AddEq(v(15), v(2).Scale(f.NewElement(2)), rhs)
	// C2: lamda*lamda = 2*in0 + out0 + 168698
	rhs2 := c(168698).AddTerm(1, f.NewElement(2))
	p.AddEq(v(5), v(5), rhs2.AddTerm(3, f.NewElement(1)))
	p.AddEq(v(15), v(15), rhs2.AddTerm(13, f.NewElement(1)))
	// C3: lamda*(in0 - out0) = in1 + out1
	p.AddEq(v(5), v(1).Sub(v(3)), v(2).Add(v(4)))
	p.AddEq(v(15), v(1).Sub(v(13)), v(2).Add(v(14)))
	p.AddNeq(v(3).Sub(v(13)))
	out := Solve(p, &Options{MaxSteps: 100000, Seed: 1})
	if out.Status != StatusSat {
		t.Fatalf("status=%v steps=%d reason=%s, want sat", out.Status, out.Steps, out.Reason)
	}
	if err := p.Check(out.Model); err != nil {
		t.Fatal(err)
	}
	// The model must exercise the vanishing denominator.
	if !out.Model.Eval(2).IsZero() {
		t.Errorf("expected in[1] = 0 in the model, got %v", out.Model.Eval(2))
	}
}
