package smt

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"qed2/internal/faultinject"
	"qed2/internal/ff"
	"qed2/internal/obs"
	"qed2/internal/poly"
)

// Options configures the solver.
type Options struct {
	// MaxSteps bounds the total number of solver steps (propagation actions
	// plus search nodes). Default 200000.
	MaxSteps int64
	// MaxEnumeration: fields with modulus ≤ this bound get complete value
	// enumeration (making UNSAT answers possible on residual hard cores).
	// Default 4096.
	MaxEnumeration uint64
	// ProbeValues is the number of pseudo-random probe values tried per
	// enumerated variable on large fields. Default 8.
	ProbeValues int
	// Seed drives the deterministic probe generator.
	Seed int64
	// Deadline, when nonzero, bounds wall-clock time for this Solve call.
	// The step loop checks it every deadlineCheckEvery steps and aborts with
	// StatusUnknown / reason "deadline exceeded", so a single query can
	// overshoot the deadline by at most one check interval of work.
	Deadline time.Time
	// Ctx, when non-nil, cancels the Solve call: the step loop checks
	// ctx.Done() at the same cadence as the deadline and aborts with
	// StatusUnknown / reason "canceled". A ctx deadline is NOT folded into
	// Deadline here — callers (internal/core) unify the two up front so a
	// single wall-clock bound governs the whole analysis.
	Ctx context.Context
	// Obs, when non-nil, receives one "smt.solve" span per Solve call
	// (child of Parent), carrying the outcome and effort breakdown.
	Obs    *obs.Tracer
	Parent *obs.Span
	// Metrics, when non-nil, receives the smt.* counters and histograms
	// (see DESIGN §10 for the taxonomy).
	Metrics *obs.Metrics
}

// deadlineCheckEvery is the step interval between wall-clock deadline
// checks. Steps vary in cost (a propagation pass over a large system versus
// one enumerated value), so the interval is kept small; time.Now is cheap
// relative to even the lightest step.
const deadlineCheckEvery = 16

// DeadlineExceeded is the Outcome.Reason reported when a Solve call aborts
// because Options.Deadline passed.
const DeadlineExceeded = "deadline exceeded"

// Canceled is the Outcome.Reason reported when a Solve call aborts because
// Options.Ctx was canceled.
const Canceled = "canceled"

// budgetExhausted is the Outcome.Reason for step-budget exhaustion.
const budgetExhausted = "step budget exhausted"

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxSteps == 0 {
		out.MaxSteps = 200_000
	}
	if out.MaxEnumeration == 0 {
		out.MaxEnumeration = 4096
	}
	if out.ProbeValues == 0 {
		out.ProbeValues = 8
	}
	return out
}

// Solve decides the problem within the configured budget.
func Solve(p *Problem, opts *Options) Outcome {
	o := opts.withDefaults()
	var span *obs.Span
	if o.Obs.Enabled() {
		span = o.Obs.Start(o.Parent, "smt.solve",
			obs.KV("eqs", len(p.Eqs)), obs.KV("neqs", len(p.Neqs)), obs.KV("vars", len(p.Vars())))
	}
	out := solveProblem(p, o)
	o.observe(span, out)
	return out
}

// injectSolveFault applies the "smt.solve" chaos hook. Panics propagate to
// the caller's recover boundary (internal/core isolates them per query);
// injected errors and early deadlines come back as a terminal Outcome.
func injectSolveFault() (Outcome, bool) {
	if !faultinject.Enabled() {
		return Outcome{}, false
	}
	switch f := faultinject.Check("smt.solve"); {
	case f.Deadline:
		return Outcome{Status: StatusUnknown, Reason: DeadlineExceeded, ResourceLimited: true}, true
	case f.Err != "":
		return Outcome{Status: StatusUnknown, Reason: f.Err, ResourceLimited: true}, true
	}
	return Outcome{}, false
}

// observe folds one completed Solve call into the span and the metrics
// registry (both optional).
func (o *Options) observe(span *obs.Span, out Outcome) {
	if m := o.Metrics; m != nil {
		m.Counter("smt.queries").Inc()
		m.Counter("smt.steps").Add(out.Steps)
		m.Counter("smt.eliminations").Add(out.Effort.Eliminations)
		m.Counter("smt.branches").Add(out.Effort.Branches)
		m.Counter("smt.enumerations").Add(out.Effort.Enumerations)
		m.Counter("smt.status." + out.Status.String()).Inc()
		if out.Reason == DeadlineExceeded {
			m.Counter("smt.deadline_hits").Inc()
		}
		if out.Reason == budgetExhausted {
			m.Counter("smt.budget_hits").Inc()
		}
		if out.Reason == Canceled {
			m.Counter("smt.cancel_hits").Inc()
		}
		m.Histogram("smt.query.steps").Observe(out.Steps)
		m.Histogram("smt.query.depth").Observe(int64(out.Effort.MaxDepth))
	}
	if span != nil {
		attrs := []obs.Attr{
			obs.KV("status", out.Status.String()),
			obs.KV("steps", out.Steps),
			obs.KV("eliminations", out.Effort.Eliminations),
			obs.KV("branches", out.Effort.Branches),
			obs.KV("enumerations", out.Effort.Enumerations),
			obs.KV("depth", out.Effort.MaxDepth),
		}
		if out.Reason != "" {
			attrs = append(attrs, obs.KV("reason", out.Reason))
		}
		span.End(attrs...)
	}
}

func solveProblem(p *Problem, o Options) Outcome {
	if out, injected := injectSolveFault(); injected {
		return out
	}
	if !o.Deadline.IsZero() && !time.Now().Before(o.Deadline) {
		return Outcome{Status: StatusUnknown, Reason: DeadlineExceeded, ResourceLimited: true}
	}
	s := &solver{
		f:    p.Field,
		opts: o,
		rng:  rand.New(rand.NewSource(o.Seed ^ 0x7f4a7c15)),
	}
	if o.Ctx != nil {
		if o.Ctx.Err() != nil {
			return Outcome{Status: StatusUnknown, Reason: Canceled, ResourceLimited: true}
		}
		s.done = o.Ctx.Done()
	}
	st := newState(p)
	res, model := s.solve(st, 0)
	return s.outcome(res, model, func(m Model) error { return p.Check(m) })
}

// outcome assembles the Outcome for a finished search. check re-verifies a
// SAT model against the original constraints (defensive: a model that does
// not check is a solver bug; better to degrade to Unknown than to report a
// bogus SAT).
func (s *solver) outcome(res resultKind, model Model, check func(Model) error) Outcome {
	out := Outcome{Steps: s.steps, Effort: s.eff}
	switch res {
	case rSat:
		out.Status = StatusSat
		out.Model = model
		if err := check(model); err != nil {
			out.Status = StatusUnknown
			out.Model = nil
			out.Reason = "internal: model check failed: " + err.Error()
		}
	case rUnsat:
		out.Status = StatusUnsat
	default:
		out.Status = StatusUnknown
		out.Reason = s.reason
		out.ResourceLimited = s.limited
		if out.Reason == "" {
			out.Reason = "search incomplete"
		}
	}
	return out
}

// newState builds the root search state for p: equations deduplicated
// modulo nonzero scaling, freeHint set to the problem's variables. Shared
// by the from-scratch path and the incremental sessions so both start from
// an identical state. The problem's LinCombs are referenced, not cloned:
// the solver never mutates a LinComb in place (all poly operations are
// copy-on-write), so sharing them with the caller is safe.
func newState(p *Problem) *state {
	st := &state{f: p.Field, complete: true}
	seen := newQuadSet()
	for _, e := range p.Eqs {
		if !seen.add(expandEq(e)) {
			continue
		}
		st.eqs = append(st.eqs, e)
	}
	st.neqs = append(st.neqs, p.Neqs...)
	st.freeHint = p.Vars()
	return st
}

type resultKind int

const (
	rSat resultKind = iota
	rUnsat
	rUnknown
)

type solver struct {
	f      *ff.Field
	opts   Options
	rng    *rand.Rand
	steps  int64
	eff    Effort
	reason string
	// done is Options.Ctx.Done(), cached so the step loop pays one channel
	// poll instead of an interface method call per check.
	done <-chan struct{}
	// halted latches budget/deadline exhaustion so the search loops can
	// abandon their remaining branches without cloning state for each one;
	// unwinding then costs O(depth), keeping a deadline overshoot within one
	// check interval of work.
	halted bool
	// limited records that halting was caused by an exhaustible resource
	// (budget, deadline, cancellation, injected fault); it feeds
	// Outcome.ResourceLimited.
	limited bool
	// stepBias is added to steps for budget accounting and check cadence
	// only. Incremental continuations (incremental.go) set it to the steps
	// the shared base already consumed minus the one redundant fixpoint
	// pass, so a continuation exhausts its per-query budget at exactly the
	// same point in the search tree as a from-scratch solve would — the
	// step parity behind the byte-identical-outcome guarantee. Reported
	// Outcome.Steps stay unbiased (steps actually executed).
	stepBias int64
}

func (s *solver) step() bool {
	if s.halted {
		return false
	}
	s.steps++
	if s.steps+s.stepBias > s.opts.MaxSteps {
		s.reason = budgetExhausted
		s.halted = true
		s.limited = true
		return false
	}
	if (s.steps+s.stepBias)%deadlineCheckEvery == 0 {
		// Wall-clock bounds, cancellation and the chaos hook share one
		// cadence: a single query overshoots any of them by at most one
		// check interval of work.
		if !s.opts.Deadline.IsZero() && !time.Now().Before(s.opts.Deadline) {
			s.reason = DeadlineExceeded
			s.halted = true
			s.limited = true
			return false
		}
		if s.done != nil {
			select {
			case <-s.done:
				s.reason = Canceled
				s.halted = true
				s.limited = true
				return false
			default:
			}
		}
		if faultinject.Enabled() {
			switch f := faultinject.Check("smt.step"); {
			case f.Deadline:
				s.reason = DeadlineExceeded
				s.halted = true
				s.limited = true
				return false
			case f.Err != "":
				s.reason = f.Err
				s.halted = true
				s.limited = true
				return false
			}
		}
	}
	return true
}

// subEntry records the elimination x := expr; expr references only
// never-eliminated variables (the invariant is maintained by addSub).
type subEntry struct {
	v    int
	expr *poly.LinComb
}

type state struct {
	f    *ff.Field
	eqs  []Equation
	neqs []*poly.LinComb
	subs []subEntry
	// complete is false once an incomplete enumeration influenced this
	// branch; UNSAT conclusions then degrade to Unknown.
	complete bool
	// freeHint lists the problem's original variables (model domain).
	freeHint []int
	// derived remembers (as a fingerprinted set modulo scaling) the
	// difference equations already added on this branch, so pair derivation
	// terminates.
	derived *quadSet
}

// clone copies the state shallowly: the slices are fresh (both sides
// overwrite elements in place), but the LinComb values they point at are
// shared. That sharing is safe because every poly.LinComb operation is
// copy-on-write — the solver only ever replaces an element with a newly
// built expression, never mutates one it already holds. derived is the one
// in-place-mutable structure (a fingerprint set) and is deep-copied.
func (st *state) clone() *state {
	out := &state{f: st.f, complete: st.complete, freeHint: st.freeHint}
	out.eqs = append([]Equation(nil), st.eqs...)
	out.neqs = append([]*poly.LinComb(nil), st.neqs...)
	out.subs = append([]subEntry(nil), st.subs...)
	if st.derived != nil {
		out.derived = st.derived.clone()
	}
	return out
}

// addSub eliminates variable v by the linear expression expr (not
// mentioning v), rewriting every constraint and earlier elimination.
func (st *state) addSub(v int, expr *poly.LinComb) {
	for i := range st.eqs {
		st.eqs[i].A = st.eqs[i].A.Substitute(v, expr)
		st.eqs[i].B = st.eqs[i].B.Substitute(v, expr)
		st.eqs[i].C = st.eqs[i].C.Substitute(v, expr)
	}
	for i := range st.neqs {
		st.neqs[i] = st.neqs[i].Substitute(v, expr)
	}
	for i := range st.subs {
		st.subs[i].expr = st.subs[i].expr.Substitute(v, expr)
	}
	st.subs = append(st.subs, subEntry{v: v, expr: expr})
}

// assignVar is addSub with a constant.
func (st *state) assignVar(v int, val ff.Element) {
	st.addSub(v, poly.Const(st.f, val))
}

// solve runs propagation + search on st, which it may mutate freely.
func (s *solver) solve(st *state, depth int) (resultKind, Model) {
	if depth > s.eff.MaxDepth {
		s.eff.MaxDepth = depth
	}
	if conflict, ok := s.propagate(st); !ok {
		return rUnknown, nil
	} else if conflict {
		if st.complete {
			return rUnsat, nil
		}
		return rUnknown, nil
	}
	if len(st.eqs) == 0 {
		if m, ok := s.completeModel(st); ok {
			return rSat, m
		}
		if st.complete {
			return rUnsat, nil
		}
		return rUnknown, nil
	}
	return s.branch(st, depth)
}

// propagate simplifies to fixpoint. It returns (conflict, withinBudget).
func (s *solver) propagate(st *state) (bool, bool) {
	for {
		if !s.step() {
			return false, false
		}
		// Disequalities first: cheap conflict detection.
		kept := st.neqs[:0]
		for _, n := range st.neqs {
			if n.IsConst() {
				if n.Constant().IsZero() {
					return true, true
				}
				continue // trivially satisfied
			}
			kept = append(kept, n)
		}
		st.neqs = kept

		acted := false
		for i := 0; i < len(st.eqs); i++ {
			e := st.eqs[i]
			lin, isLin, conflict := linearView(st.f, e)
			if conflict {
				return true, true
			}
			if !isLin {
				continue
			}
			// Remove equation i.
			st.eqs = append(st.eqs[:i], st.eqs[i+1:]...)
			if lin == nil {
				// Trivially satisfied.
				acted = true
				break
			}
			v := pickPivot(st, lin)
			expr, _ := lin.SolveFor(v)
			st.addSub(v, expr)
			s.eff.Eliminations++
			acted = true
			break
		}
		if !acted {
			return false, true
		}
	}
}

// linearView reduces an equation to a linear one when possible.
// Returns (lin, isLinear, conflict): isLinear with lin == nil means the
// equation is trivially satisfied; conflict means it is trivially false.
func linearView(f *ff.Field, e Equation) (*poly.LinComb, bool, bool) {
	aConst, aOk := constOf(e.A)
	bConst, bOk := constOf(e.B)
	var lin *poly.LinComb
	switch {
	case aOk && bOk:
		lin = e.C.AddConst(f.Neg(f.Mul(aConst, bConst))).Neg() // a·b − C = 0 → C − a·b = 0 (sign irrelevant)
	case aOk:
		lin = e.B.Scale(aConst).Sub(e.C)
	case bOk:
		lin = e.A.Scale(bConst).Sub(e.C)
	default:
		// Both factors non-constant; check for full cancellation of the
		// quadratic part (e.g. crafted products expanding to linear forms).
		// The expansion is quadratic in the factor sizes, so huge products
		// are conservatively treated as nonlinear (sound: we only miss a
		// simplification opportunity).
		if e.A.NumTerms()*e.B.NumTerms() > 1024 {
			return nil, false, false
		}
		q := poly.MulLin(e.A, e.B).Sub(poly.QuadFromLin(e.C))
		if !q.IsLinear() {
			return nil, false, false
		}
		lin = q.Lin()
	}
	if lin.IsConst() {
		if !lin.Constant().IsZero() {
			return nil, true, true
		}
		return nil, true, false
	}
	return lin, true, false
}

func constOf(lc *poly.LinComb) (ff.Element, bool) {
	if lc.IsConst() {
		return lc.Constant(), true
	}
	return ff.Element{}, false
}

// pickPivot chooses the elimination variable of a linear equation by the
// Markowitz rule: the variable occurring in the fewest other constraints,
// which keeps substitution fill-in low and leaves structural variables
// (inputs, shared signals) available for the pattern rules. Ties break on
// smallest ID for determinism.
//
// Only equations are tallied, never disequalities. This is what makes the
// incremental slice sessions (incremental.go) exact: the elimination order
// of the shared base state — which carries no per-target disequality — is
// then identical to the order a from-scratch solve of base ∧ (target ≠
// target′) would pick, so a batched continuation explores the same search
// tree and finds the same model as the monolithic path.
func pickPivot(st *state, lin *poly.LinComb) int {
	vars := lin.Vars()
	if len(vars) == 1 {
		return vars[0]
	}
	counts := make(map[int]int, len(vars))
	for _, v := range vars {
		counts[v] = 0
	}
	tally := func(lc *poly.LinComb) {
		for _, v := range vars {
			if !lc.Coeff(v).IsZero() {
				counts[v]++
			}
		}
	}
	for _, e := range st.eqs {
		tally(e.A)
		tally(e.B)
		tally(e.C)
	}
	best, bestN := vars[0], counts[vars[0]]
	for _, v := range vars[1:] {
		if counts[v] < bestN {
			best, bestN = v, counts[v]
		}
	}
	return best
}

// branch performs one case split and recurses.
func (s *solver) branch(st *state, depth int) (resultKind, Model) {
	if !s.step() {
		return rUnknown, nil
	}

	// Pattern 0: pairwise differencing. Two equations sharing a product
	// factor imply a zero-product difference — e.g. x·k = c ∧ x′·k = c
	// implies (x − x′)·k = 0, the lemma that decides the two-copy
	// uniqueness queries. The derived equations are logical consequences,
	// so adding them preserves both SAT and UNSAT.
	if s.derivePairs(st) {
		return s.solve(st, depth)
	}

	// Pattern 0b: quadratic cancellation. When the expanded polynomials of
	// two equations differ by a linear form (their quadratic parts are
	// equal), the difference is a new linear equation — Gaussian
	// elimination lifted to the quadratic monomials. Each firing is
	// followed by a variable elimination in propagate, so this terminates.
	if s.deriveQuadDiff(st) {
		return s.solve(st, depth)
	}

	// Pattern 1: proportional factors. If A = k·B for a constant k ≠ 0 the
	// equation k·B² = c rewrites to B² = c/k, so B = ±√(c/k) — a complete
	// two-way linear split, or an immediate conflict when c/k is a
	// non-residue.
	for i, e := range st.eqs {
		c, ok := constOf(e.C)
		if !ok {
			continue
		}
		k, ok := proportional(s.f, e.A, e.B)
		if !ok {
			continue
		}
		st.eqs = append(st.eqs[:i], st.eqs[i+1:]...)
		r, exists := s.f.Sqrt(s.f.Mul(c, s.f.MustInv(k)))
		if !exists {
			if st.complete {
				return rUnsat, nil
			}
			return rUnknown, nil
		}
		if r.IsZero() {
			// B² = 0 ⟺ B = 0: deterministic.
			st.eqs = append(st.eqs, Equation{A: poly.ConstInt(s.f, 1), B: e.B, C: poly.NewLinComb(s.f)})
			return s.solve(st, depth)
		}
		branches := []*poly.LinComb{e.B.AddConst(s.f.Neg(r)), e.B.AddConst(r)}
		return s.splitLinear(st, branches, depth)
	}

	// Pattern 2: single-variable quadratic → explicit roots (complete).
	for i, e := range st.eqs {
		q := poly.MulLin(e.A, e.B).Sub(poly.QuadFromLin(e.C))
		vars := q.Vars()
		if len(vars) != 1 {
			continue
		}
		x := vars[0]
		q2 := q.CoeffPair(x, x)
		q1 := q.Lin().Coeff(x)
		q0 := q.Lin().Constant()
		if q2.IsZero() {
			continue // linear; propagate would have caught it, defensive
		}
		st.eqs = append(st.eqs[:i], st.eqs[i+1:]...)
		roots, exists := quadraticRoots(s.f, q2, q1, q0)
		if !exists {
			if st.complete {
				return rUnsat, nil
			}
			return rUnknown, nil
		}
		var branches []*poly.LinComb
		for _, r := range roots {
			branches = append(branches, poly.Var(s.f, x).AddConst(s.f.Neg(r)))
		}
		return s.splitLinear(st, branches, depth)
	}

	// Pattern 3: zero product A·B = 0 → A = 0 ∨ B = 0 (complete).
	for i, e := range st.eqs {
		c, ok := constOf(e.C)
		if !ok || !c.IsZero() {
			continue
		}
		st.eqs = append(st.eqs[:i], st.eqs[i+1:]...)
		return s.splitLinear(st, []*poly.LinComb{e.A, e.B}, depth)
	}

	// Fallback: bounded value enumeration on the busiest variable.
	if debugTrace != nil {
		for _, e := range st.eqs {
			debugTrace("d%d eq: %s", depth, e.String())
		}
	}
	return s.enumerate(st, depth)
}

// derivePairs scans equation pairs for a shared product factor and appends
// the difference equation when the right-hand sides cancel:
//
//	A₁·F = C ∧ A₂·F = C  ⟹  (A₁ − A₂)·F = 0
//
// This zero-product consequence is the lemma that decides two-copy
// uniqueness queries (x·k = c ∧ x′·k = c ⟹ x = x′ ∨ k = 0). The pass runs
// once per search lineage — the pattern it targets is syntactic and present
// at the root — so it cannot blow up the search. Reports whether anything
// was added.
func (s *solver) derivePairs(st *state) bool {
	if st.derived != nil || len(st.eqs) > maxDeriveEqs {
		return false
	}
	st.derived = newQuadSet()
	type half struct{ factor, other, c *poly.LinComb }
	views := func(e Equation) []half {
		return []half{
			{factor: e.A, other: e.B, c: e.C},
			{factor: e.B, other: e.A, c: e.C},
		}
	}
	added := false
	n := len(st.eqs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, hi := range views(st.eqs[i]) {
				for _, hj := range views(st.eqs[j]) {
					if hi.factor.IsConst() || !hi.factor.Equal(hj.factor) {
						continue
					}
					cDiff := hi.c.Sub(hj.c)
					if !cDiff.IsZero() {
						continue
					}
					diff := hi.other.Sub(hj.other)
					if diff.IsZero() {
						continue // 0 = 0, vacuous
					}
					ne := Equation{A: diff, B: hi.factor.Clone(), C: cDiff}
					if !st.derived.add(expandEq(ne)) {
						continue
					}
					st.eqs = append(st.eqs, ne)
					added = true
				}
			}
		}
	}
	return added
}

// deriveQuadDiff scans equation pairs whose expanded difference is linear
// and non-trivial, appending it as a linear equation. Identical equations
// are dropped; contradictory ones (difference a nonzero constant) surface
// as a conflict in the next propagate pass.
func (s *solver) deriveQuadDiff(st *state) bool {
	n := len(st.eqs)
	if n < 2 || n > maxDeriveEqs {
		return false
	}
	// Bucket by a fingerprint of the quadratic monomial part: only
	// equations with identical quadratic parts can have a linear
	// difference, so the scan is near-linear instead of O(n²) expansions.
	// Identical parts always share a fingerprint, so no pair is missed;
	// the d.IsLinear() re-check below makes a collision-merged bucket
	// harmless.
	quads := make([]*poly.Quad, n)
	buckets := map[uint64][]int{}
	var keys []uint64
	for i, e := range st.eqs {
		q := expandEq(e)
		quads[i] = q
		k := quadPartFingerprint(q)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], i)
	}
	// First-seen bucket order, not map order: which pair fires first shapes
	// the whole search, so iteration must be deterministic.
	for _, k := range keys {
		idxs := buckets[k]
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				d := quads[i].Sub(quads[j])
				if !d.IsLinear() {
					continue
				}
				lin := d.Lin()
				if lin.IsConst() && lin.Constant().IsZero() {
					// Identical equations: drop the duplicate.
					st.eqs = append(st.eqs[:j], st.eqs[j+1:]...)
					return true
				}
				st.eqs = append(st.eqs, Equation{
					A: poly.ConstInt(s.f, 1),
					B: lin,
					C: poly.NewLinComb(s.f),
				})
				return true
			}
		}
	}
	return false
}

// maxDeriveEqs bounds the pair-derivation passes: beyond this size the
// quadratic expansions dominate solving time (only the monolithic baseline
// builds systems that large, and it is meant to demonstrate non-scaling).
const maxDeriveEqs = 256

// splitLinear explores st ∧ (l = 0) for each l in branches. The split is
// logically complete: the disjunction of the branches covers st.
func (s *solver) splitLinear(st *state, branches []*poly.LinComb, depth int) (resultKind, Model) {
	sawUnknown := false
	for i, l := range branches {
		if s.halted {
			return rUnknown, nil
		}
		s.eff.Branches++
		child := st
		if i < len(branches)-1 {
			child = st.clone()
		}
		child.eqs = append(child.eqs, Equation{A: poly.ConstInt(s.f, 1), B: l, C: poly.NewLinComb(s.f)})
		res, m := s.solve(child, depth+1)
		switch res {
		case rSat:
			return rSat, m
		case rUnknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return rUnknown, nil
	}
	return rUnsat, nil
}

// proportional reports whether A = k·B for a nonzero constant k, with both
// sides non-constant.
func proportional(f *ff.Field, a, b *poly.LinComb) (ff.Element, bool) {
	if a.IsConst() || b.IsConst() {
		return ff.Element{}, false
	}
	v := b.Vars()[0]
	b0 := b.Coeff(v)
	a0 := a.Coeff(v)
	if a0.IsZero() {
		return ff.Element{}, false
	}
	k := f.Mul(a0, f.MustInv(b0))
	if !a.Sub(b.Scale(k)).IsZero() {
		return ff.Element{}, false
	}
	return k, true
}

// quadraticRoots solves q2·x² + q1·x + q0 = 0 (q2 ≠ 0), returning the roots
// or exists=false when the discriminant is a non-residue.
func quadraticRoots(f *ff.Field, q2, q1, q0 ff.Element) ([]ff.Element, bool) {
	// x = (-q1 ± √(q1² − 4·q2·q0)) / (2·q2)
	disc := f.Sub(f.Mul(q1, q1), f.Mul(f.NewElement(4), f.Mul(q2, q0)))
	r, ok := f.Sqrt(disc)
	if !ok {
		return nil, false
	}
	inv2a := f.MustInv(f.Mul(f.NewElement(2), q2))
	x1 := f.Mul(f.Sub(f.Neg(q1), r), inv2a)
	if r.IsZero() {
		return []ff.Element{x1}, true
	}
	x2 := f.Mul(f.Add(f.Neg(q1), r), inv2a)
	return []ff.Element{x1, x2}, true
}

// assignCand is one (variable := value) case of an enumeration split.
type assignCand struct {
	v   int
	val ff.Element
}

// enumerate tries concrete (variable, value) cases. Over small fields it
// enumerates one variable completely (keeping UNSAT conclusions valid);
// over large fields it tries the root of every single-variable product
// factor (the vanishing-denominator pattern behind most real
// under-constrained circuits) plus generic and random values for the
// busiest variable, degrading UNSAT to Unknown.
func (s *solver) enumerate(st *state, depth int) (resultKind, Model) {
	x := s.pickEnumVar(st)
	if x < 0 {
		// No quadratic variable left; should be unreachable.
		s.reason = "internal: nothing to enumerate"
		return rUnknown, nil
	}
	var candidates []assignCand
	completeEnum := false
	if s.f.IsSmall() && s.f.SmallModulus() <= s.opts.MaxEnumeration {
		p := s.f.SmallModulus()
		for v := uint64(0); v < p; v++ {
			candidates = append(candidates, assignCand{v: x, val: s.f.FromUint64(v)})
		}
		completeEnum = true
	} else {
		// Roots of every single-variable factor in the system: each zeroes
		// a product side and typically collapses its equation to linear.
		seen := map[assignKey]bool{}
		add := func(v int, val ff.Element) {
			k := assignKey{v: v, val: val}
			if !seen[k] {
				seen[k] = true
				candidates = append(candidates, assignCand{v: v, val: val})
			}
		}
		for _, e := range st.eqs {
			for _, lc := range []*poly.LinComb{e.A, e.B} {
				if v, ok := lc.IsSingleVar(); ok {
					if expr, ok := lc.SolveFor(v); ok {
						add(v, expr.Constant())
					}
				}
			}
		}
		for _, val := range s.heuristicCandidates(st, x) {
			add(x, val)
		}
	}
	sawUnknown := false
	for i, c := range candidates {
		if s.halted {
			return rUnknown, nil
		}
		s.eff.Enumerations++
		child := st
		if i < len(candidates)-1 {
			child = st.clone()
		}
		if !completeEnum {
			child.complete = false
		}
		if debugTrace != nil {
			debugTrace("d%d enum x%d := %s", depth, c.v, s.f.String(c.val))
		}
		child.assignVar(c.v, c.val)
		res, m := s.solve(child, depth+1)
		switch res {
		case rSat:
			return rSat, m
		case rUnknown:
			sawUnknown = true
		}
	}
	if completeEnum && !sawUnknown {
		if st.complete {
			return rUnsat, nil
		}
		return rUnknown, nil
	}
	if s.reason == "" {
		s.reason = "incomplete value enumeration on a hard quadratic core"
	}
	return rUnknown, nil
}

// assignKey identifies a candidate assignment; Element is comparable, so the
// dedup set needs no string rendering.
type assignKey struct {
	v   int
	val ff.Element
}

// pickEnumVar chooses the enumeration variable. Variables that occur as a
// single-variable product factor are strongly preferred: zeroing such a
// factor (the "vanishing denominator" pattern behind most real
// under-constrained circuits) is the highest-value case split, and the
// candidate generator knows the exact root for them. Ties break on
// occurrence count, then smallest ID for determinism.
func (s *solver) pickEnumVar(st *state) int {
	count := map[int]int{}
	factorVar := map[int]bool{}
	for _, e := range st.eqs {
		for _, lc := range []*poly.LinComb{e.A, e.B, e.C} {
			for _, v := range lc.Vars() {
				count[v]++
			}
		}
		for _, lc := range []*poly.LinComb{e.A, e.B} {
			if v, ok := lc.IsSingleVar(); ok {
				factorVar[v] = true
			}
		}
	}
	vars := make([]int, 0, len(count))
	for v := range count {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	best, bestScore := -1, -1
	for _, v := range vars {
		score := count[v]
		if factorVar[v] {
			score += 1 << 20
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// heuristicCandidates assembles promising values for variable x: small
// constants, roots of single-variable factors mentioning x, and
// deterministic pseudo-random probes.
func (s *solver) heuristicCandidates(st *state, x int) []ff.Element {
	seen := map[ff.Element]bool{}
	var out []ff.Element
	add := func(v ff.Element) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	add(s.f.Zero())
	add(s.f.One())
	add(s.f.Neg(s.f.One()))
	add(s.f.NewElement(2))
	// Roots of factors that are single-variable in x: values that zero a
	// product side.
	for _, e := range st.eqs {
		for _, lc := range []*poly.LinComb{e.A, e.B} {
			if v, ok := lc.IsSingleVar(); ok && v == x {
				if expr, ok := lc.SolveFor(x); ok {
					add(expr.Constant())
				}
			}
		}
	}
	for i := 0; i < s.opts.ProbeValues; i++ {
		add(s.f.RandFrom(s.rng))
	}
	return out
}

// completeModel extends a constraint-free state to a full model, choosing
// free-variable values that satisfy the remaining disequalities.
func (s *solver) completeModel(st *state) (Model, bool) {
	model := Model{}
	eliminated := map[int]bool{}
	for _, e := range st.subs {
		eliminated[e.v] = true
	}
	// Free variables: everything in the problem domain not eliminated.
	var free []int
	for _, v := range st.freeHint {
		if !eliminated[v] {
			free = append(free, v)
		}
	}
	// Also variables appearing only in residual disequalities.
	for _, n := range st.neqs {
		for _, v := range n.Vars() {
			if !eliminated[v] && !containsInt(free, v) {
				free = append(free, v)
			}
		}
	}
	sort.Ints(free)

	neqs := make([]*poly.LinComb, len(st.neqs))
	copy(neqs, st.neqs)
	for _, v := range free {
		// Collect forbidden values from disequalities where v is the last
		// unresolved variable.
		forbidden := map[ff.Element]bool{}
		for _, n := range neqs {
			vars := n.Vars()
			if len(vars) == 1 && vars[0] == v {
				root, _ := n.SolveFor(v)
				forbidden[root.Constant()] = true
			}
		}
		val, ok := s.pickValueAvoiding(forbidden)
		if !ok {
			return nil, false
		}
		model[v] = val
		for i := range neqs {
			neqs[i] = neqs[i].SubstituteValue(v, val)
		}
	}
	// Any disequality now constant must be nonzero (single-var ones were
	// avoided; fully-substituted ones could still conflict only if they had
	// no free vars, which propagate already rejected).
	for _, n := range neqs {
		if n.IsConst() && n.Constant().IsZero() {
			return nil, false
		}
	}
	// Materialize eliminated variables from the substitution chain.
	at := func(x int) ff.Element { return model.Eval(x) }
	for i := len(st.subs) - 1; i >= 0; i-- {
		e := st.subs[i]
		model[e.v] = e.expr.Eval(at)
	}
	return model, true
}

// pickValueAvoiding returns a field element outside the forbidden set.
func (s *solver) pickValueAvoiding(forbidden map[ff.Element]bool) (ff.Element, bool) {
	if s.f.IsSmall() && uint64(len(forbidden)) >= s.f.SmallModulus() {
		// The forbidden set may cover the entire field.
		for v := uint64(0); v < s.f.SmallModulus(); v++ {
			c := s.f.FromUint64(v)
			if !forbidden[c] {
				return c, true
			}
		}
		return ff.Element{}, false
	}
	// Terminates within |forbidden|+1 iterations: a set of n elements cannot
	// exclude n+1 distinct candidates.
	//qed2:allow-unpolled-loop
	for i := int64(0); ; i++ {
		c := s.f.NewElement(i)
		if !forbidden[c] {
			return c, true
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// debugTrace, when set (tests/diagnosis only), receives search events.
var debugTrace func(format string, args ...any)
