package smt

import (
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// BenchmarkSolverCore measures full Solve calls on the query shapes the
// analyzer actually issues: a shared-denominator uniqueness proof over BN254
// (pair differencing + zero-product split), the BabyAdd xout proof (the
// hardest deterministic UNSAT in the suite), and a small-field enumeration
// core.
func BenchmarkSolverCore(b *testing.B) {
	b.Run("shared-denominator-unsat", func(b *testing.B) {
		f := ff.BN254()
		for i := 0; i < b.N; i++ {
			x, xp, k := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2)
			p := NewProblem(f)
			p.AddEq(x, k, poly.ConstInt(f, 1))
			p.AddEq(xp, k, poly.ConstInt(f, 1))
			p.AddNeq(x.Sub(xp))
			if out := Solve(p, &Options{Seed: 1}); out.Status != StatusUnsat {
				b.Fatalf("status = %v", out.Status)
			}
		}
	})
	b.Run("babyadd-xout-unsat", func(b *testing.B) {
		f := ff.BN254()
		a := f.NewElement(168700)
		d := f.NewElement(168696)
		for i := 0; i < b.N; i++ {
			v := func(x int) *poly.LinComb { return poly.Var(f, x) }
			p := NewProblem(f)
			p.AddEq(v(1), v(4), v(5))
			p.AddEq(v(2), v(3), v(6))
			p.AddEq(v(1).Scale(f.Neg(a)).Add(v(2)), v(3).Add(v(4)), v(7))
			p.AddEq(v(5), v(6), v(8))
			onePlus := poly.ConstInt(f, 1).AddTerm(8, d)
			oneMinus := poly.ConstInt(f, 1).AddTerm(8, f.Neg(d))
			rhsY := v(7).Add(v(5).Scale(a)).Sub(v(6))
			p.AddEq(onePlus, v(9), v(5).Add(v(6)))
			p.AddEq(onePlus, v(29), v(5).Add(v(6)))
			p.AddEq(oneMinus, v(10), rhsY)
			p.AddEq(oneMinus, v(30), rhsY)
			p.AddNeq(v(9).Sub(v(29)))
			if out := Solve(p, &Options{MaxSteps: 200000, Seed: 1}); out.Status != StatusUnsat {
				b.Fatalf("status = %v", out.Status)
			}
		}
	})
	b.Run("incremental-continuation", func(b *testing.B) {
		// The batch-dispatch shape: sibling targets over one shared base.
		// Each iteration answers both targets as continuations of a single
		// propagated session instead of two from-scratch solves.
		f := ff.BN254()
		x, xp, y, yp, k := poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 2), poly.Var(f, 3), poly.Var(f, 4)
		base := NewProblem(f)
		base.AddEq(x, k, poly.ConstInt(f, 1))
		base.AddEq(xp, k, poly.ConstInt(f, 1))
		base.AddEq(y, k, poly.ConstInt(f, 2))
		base.AddEq(yp, k, poly.ConstInt(f, 2))
		for i := 0; i < b.N; i++ {
			sess := NewSession(base, &Options{Seed: 1})
			if sess.Poisoned() {
				b.Fatalf("session poisoned: %s", sess.PoisonReason())
			}
			for _, nq := range []*poly.LinComb{x.Sub(xp), y.Sub(yp)} {
				if out := sess.Solve([]*poly.LinComb{nq}, &Options{Seed: 1}); out.Status != StatusUnsat {
					b.Fatalf("status = %v", out.Status)
				}
			}
		}
	})
	b.Run("small-field-enumeration", func(b *testing.B) {
		f := f97
		for i := 0; i < b.N; i++ {
			// x² + y² = 1 ∧ x ≠ 0 ∧ y ≠ 0: needs the enumeration fallback.
			x, y := poly.Var(f, 0), poly.Var(f, 1)
			p := NewProblem(f)
			p.AddEq(x, x, poly.Var(f, 2))
			p.AddEq(y, y, poly.ConstInt(f, 1).Sub(poly.Var(f, 2)))
			p.AddNeq(x)
			p.AddNeq(y)
			if out := Solve(p, &Options{Seed: 1}); out.Status != StatusSat {
				b.Fatalf("status = %v", out.Status)
			}
		}
	})
}

// BenchmarkEquationFingerprint measures the structural dedup keys on the
// solver hot path (they replaced string-building keys; the fingerprints
// must stay allocation-free per equation apart from the one expanded Quad).
func BenchmarkEquationFingerprint(b *testing.B) {
	f := ff.BN254()
	mk := func(shift int) Equation {
		a := poly.ConstInt(f, 3)
		c := poly.ConstInt(f, 7)
		for v := 0; v < 8; v++ {
			a = a.AddTerm(v+shift, f.NewElement(int64(2*v+1)))
			c = c.AddTerm(v+shift+8, f.NewElement(int64(v+5)))
		}
		return Equation{A: a, B: poly.Var(f, 40+shift), C: c}
	}
	eqs := []Equation{mk(0), mk(4), mk(9)}
	quads := make([]*poly.Quad, len(eqs))
	for i, e := range eqs {
		quads[i] = expandEq(e)
	}

	b.Run("shape", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= quadShapeFingerprint(quads[i%len(quads)])
		}
		_ = sink
	})
	b.Run("part", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= quadPartFingerprint(quads[i%len(quads)])
		}
		_ = sink
	})
	b.Run("dedup-set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := newQuadSet()
			for _, e := range eqs {
				set.add(expandEq(e))
			}
			for _, e := range eqs {
				if set.add(expandEq(e)) {
					b.Fatal("duplicate not detected")
				}
			}
		}
	})
}
