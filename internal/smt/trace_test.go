package smt

import (
	"strings"
	"testing"

	"qed2/internal/poly"
)

// TestDebugTraceHook verifies the diagnostic trace hook emits search events
// (equation dumps at enumeration nodes and candidate assignments).
func TestDebugTraceHook(t *testing.T) {
	var lines []string
	SetDebugTrace(func(format string, args ...any) {
		lines = append(lines, format)
	})
	defer SetDebugTrace(nil)

	f := fbig
	p := NewProblem(f)
	// A hard 2-var core that must reach the enumeration fallback.
	p.AddEq(poly.Var(f, 0), poly.Var(f, 1), poly.Var(f, 0).Add(poly.Var(f, 1)).AddConst(f.NewElement(1)))
	Solve(p, &Options{MaxSteps: 2000, Seed: 1})
	var sawEnum bool
	for _, l := range lines {
		if strings.Contains(l, "enum") {
			sawEnum = true
		}
	}
	if len(lines) == 0 || !sawEnum {
		t.Errorf("trace hook produced %d lines, enum seen: %v", len(lines), sawEnum)
	}
}
