package smt

import (
	"math/big"
	"math/rand"
	"testing"
	"time"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

var (
	f97   = ff.MustField(big.NewInt(97))
	f13   = ff.MustField(big.NewInt(13))
	fbig  = ff.BN254()
	one97 = func() *poly.LinComb { return poly.ConstInt(f97, 1) }
)

func lc(f *ff.Field, konst int64, terms ...int64) *poly.LinComb {
	// terms come in (var, coeff) pairs
	out := poly.ConstInt(f, konst)
	for i := 0; i+1 < len(terms); i += 2 {
		out = out.AddTerm(int(terms[i]), f.NewElement(terms[i+1]))
	}
	return out
}

// i64 renders a small element as an int64 for assertions.
func i64(f *ff.Field, e ff.Element) int64 { return f.ToBig(e).Int64() }

func solve(t *testing.T, p *Problem) Outcome {
	t.Helper()
	out := Solve(p, &Options{Seed: 1})
	if out.Status == StatusSat {
		if err := p.Check(out.Model); err != nil {
			t.Fatalf("solver returned bad model: %v", err)
		}
	}
	return out
}

func TestLinearSystems(t *testing.T) {
	// x + y = 10, x - y = 4  → x=7, y=3 (mod 97)
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -10, 0, 1, 1, 1))
	p.AddLinearEq(lc(f97, -4, 0, 1, 1, -1))
	out := solve(t, p)
	if out.Status != StatusSat {
		t.Fatalf("status = %v", out.Status)
	}
	if i64(f97, out.Model.Eval(0)) != 7 || i64(f97, out.Model.Eval(1)) != 3 {
		t.Errorf("model = %v", out.Model)
	}
}

func TestLinearInfeasible(t *testing.T) {
	// x + y = 1, x + y = 2
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -1, 0, 1, 1, 1))
	p.AddLinearEq(lc(f97, -2, 0, 1, 1, 1))
	if out := solve(t, p); out.Status != StatusUnsat {
		t.Errorf("status = %v, want unsat", out.Status)
	}
}

func TestUnderdeterminedLinear(t *testing.T) {
	// Single equation, two vars: SAT with free choice.
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -5, 0, 2, 1, 3))
	if out := solve(t, p); out.Status != StatusSat {
		t.Errorf("status = %v", out.Status)
	}
}

func TestBooleanConstraint(t *testing.T) {
	// x(x-1) = 0 ∧ x ≠ 0 → x = 1
	p := NewProblem(f97)
	p.AddEq(lc(f97, 0, 0, 1), lc(f97, -1, 0, 1), poly.NewLinComb(f97))
	p.AddNeq(lc(f97, 0, 0, 1))
	out := solve(t, p)
	if out.Status != StatusSat || i64(f97, out.Model.Eval(0)) != 1 {
		t.Fatalf("out = %+v", out)
	}
	// Adding x ≠ 1 makes it unsat.
	p.AddNeq(lc(f97, -1, 0, 1))
	if out := solve(t, p); out.Status != StatusUnsat {
		t.Errorf("status = %v, want unsat", out.Status)
	}
}

func TestZeroProductChain(t *testing.T) {
	// (x-2)(y-3) = 0, x ≠ 2 → y = 3
	p := NewProblem(f97)
	p.AddEq(lc(f97, -2, 0, 1), lc(f97, -3, 1, 1), poly.NewLinComb(f97))
	p.AddNeq(lc(f97, -2, 0, 1))
	out := solve(t, p)
	if out.Status != StatusSat || i64(f97, out.Model.Eval(1)) != 3 {
		t.Fatalf("out = %+v model=%v", out.Status, out.Model)
	}
}

func TestSquarePattern(t *testing.T) {
	// x² = 9 → x ∈ {3, 94}; with x ≠ 3 forced to -3.
	p := NewProblem(f97)
	x := lc(f97, 0, 0, 1)
	p.AddEq(x, x, poly.ConstInt(f97, 9))
	p.AddNeq(lc(f97, -3, 0, 1))
	out := solve(t, p)
	if out.Status != StatusSat || i64(f97, out.Model.Eval(0)) != 94 {
		t.Fatalf("out = %v model=%v", out.Status, out.Model)
	}
	// x² = non-residue → unsat. 5 is a non-residue mod 97.
	p2 := NewProblem(f97)
	p2.AddEq(x, x, poly.ConstInt(f97, 5))
	if out := solve(t, p2); out.Status != StatusUnsat {
		t.Errorf("x²=5 status = %v, want unsat (5 is a QNR mod 97)", out.Status)
	}
}

func TestSingleVarQuadratic(t *testing.T) {
	// (x+1)(x+2) = 2 → x² + 3x = 0 → x ∈ {0, -3}; x ≠ 0 → x = 94
	p := NewProblem(f97)
	p.AddEq(lc(f97, 1, 0, 1), lc(f97, 2, 0, 1), poly.ConstInt(f97, 2))
	p.AddNeq(lc(f97, 0, 0, 1))
	out := solve(t, p)
	if out.Status != StatusSat || i64(f97, out.Model.Eval(0)) != 94 {
		t.Fatalf("out = %v model=%v", out.Status, out.Model)
	}
}

func TestMultiplicationCircuitUniqueness(t *testing.T) {
	// The uniqueness query for out = a*b: two copies share a,b; outputs
	// must differ. a·b = o ∧ a·b = o' ∧ o − o' ≠ 0 → unsat.
	p := NewProblem(f97)
	a, b, o, o2 := 0, 1, 2, 3
	p.AddEq(lc(f97, 0, int64(a), 1), lc(f97, 0, int64(b), 1), lc(f97, 0, int64(o), 1))
	p.AddEq(lc(f97, 0, int64(a), 1), lc(f97, 0, int64(b), 1), lc(f97, 0, int64(o2), 1))
	p.AddNeq(lc(f97, 0, int64(o), 1, int64(o2), -1))
	if out := solve(t, p); out.Status != StatusUnsat {
		t.Errorf("status = %v, want unsat", out.Status)
	}
}

func TestUnderconstrainedDetection(t *testing.T) {
	// inv is unconstrained given in: in·inv = tmp, no constraint pinning
	// inv. Query: two copies agreeing on in, differing on inv → SAT.
	p := NewProblem(f97)
	in, inv, inv2 := 0, 1, 2
	// tmp constraints omitted: just ask if inv can take two values with no
	// constraints at all — trivially SAT; then with one shared product.
	p.AddNeq(lc(f97, 0, int64(inv), 1, int64(inv2), -1))
	_ = in
	out := solve(t, p)
	if out.Status != StatusSat {
		t.Fatalf("status = %v", out.Status)
	}
	if out.Model.Eval(inv) == out.Model.Eval(inv2) {
		t.Error("model violates disequality")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A chain of boolean variables with 2^n cases and a contradiction at
	// the end; a tiny budget must yield Unknown, never a wrong verdict.
	p := NewProblem(fbig)
	n := 24
	for i := 0; i < n; i++ {
		x := lc(fbig, 0, int64(i), 1)
		p.AddEq(x, x.AddConst(fbig.NewElement(-1)), poly.NewLinComb(fbig))
	}
	// sum of all x_i = n+1 → impossible (each is 0/1, but that reasoning
	// needs the full split).
	sum := poly.ConstInt(fbig, int64(-(n + 1)))
	for i := 0; i < n; i++ {
		sum = sum.AddTerm(i, fbig.NewElement(1))
	}
	p.AddLinearEq(sum)
	out := Solve(p, &Options{MaxSteps: 50})
	if out.Status != StatusUnknown {
		t.Errorf("status = %v, want unknown under tiny budget", out.Status)
	}
	if out.Reason == "" {
		t.Error("unknown outcome lacks a reason")
	}
}

func TestLargeFieldIncompletenessIsHonest(t *testing.T) {
	// x·y = 1 ∧ x·y = 2 is unsat, provable by propagation? No: both
	// quadratic. The solver must not claim SAT; UNSAT or Unknown are both
	// acceptable, but a model would be a bug (checked by solve()).
	p := NewProblem(fbig)
	x, y := lc(fbig, 0, 0, 1), lc(fbig, 0, 1, 1)
	p.AddEq(x, y, poly.ConstInt(fbig, 1))
	p.AddEq(x, y, poly.ConstInt(fbig, 2))
	out := solve(t, p)
	if out.Status == StatusSat {
		t.Fatalf("impossible SAT")
	}
}

func TestDuplicateEquationsDeduped(t *testing.T) {
	p := NewProblem(f97)
	x, y := lc(f97, 0, 0, 1), lc(f97, 0, 1, 1)
	p.AddEq(x, y, poly.ConstInt(f97, 6))
	p.AddEq(y, x, poly.ConstInt(f97, 6)) // same equation, commuted
	out := solve(t, p)
	if out.Status != StatusSat {
		t.Fatalf("status = %v", out.Status)
	}
}

// --- brute-force cross-validation ------------------------------------------------

// bruteForce decides a problem over a small field by full enumeration.
func bruteForce(p *Problem) (bool, Model) {
	f := p.Field
	vars := p.Vars()
	pMod := int64(f.SmallModulus())
	assign := make(Model, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return p.Check(assign) == nil
		}
		for v := int64(0); v < pMod; v++ {
			assign[vars[i]] = f.NewElement(v)
			if rec(i + 1) {
				return true
			}
		}
		delete(assign, vars[i])
		return false
	}
	if rec(0) {
		return true, assign
	}
	return false, nil
}

// randProblem builds a random system over f13 with nv vars.
func randProblem(rng *rand.Rand, nv int) *Problem {
	p := NewProblem(f13)
	nEq := 1 + rng.Intn(4)
	randLC := func() *poly.LinComb {
		out := poly.ConstInt(f13, int64(rng.Intn(13)))
		for v := 0; v < nv; v++ {
			if rng.Intn(2) == 0 {
				out = out.AddTerm(v, f13.NewElement(int64(rng.Intn(13))))
			}
		}
		return out
	}
	for i := 0; i < nEq; i++ {
		p.AddEq(randLC(), randLC(), randLC())
	}
	for i := rng.Intn(3); i > 0; i-- {
		n := randLC()
		if !n.IsConst() {
			p.AddNeq(n)
		}
	}
	return p
}

func TestSolverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	agree, unknown := 0, 0
	for iter := 0; iter < 400; iter++ {
		p := randProblem(rng, 3)
		want, _ := bruteForce(p)
		out := Solve(p, &Options{Seed: int64(iter), MaxSteps: 500_000})
		switch out.Status {
		case StatusSat:
			if !want {
				t.Fatalf("iter %d: solver SAT but brute force UNSAT\n%+v", iter, p)
			}
			if err := p.Check(out.Model); err != nil {
				t.Fatalf("iter %d: bad model: %v", iter, err)
			}
			agree++
		case StatusUnsat:
			if want {
				t.Fatalf("iter %d: solver UNSAT but brute force SAT\n%+v", iter, p)
			}
			agree++
		default:
			unknown++
		}
	}
	if agree < 380 {
		t.Errorf("solver decided only %d/400 random small-field problems (%d unknown)", agree, unknown)
	}
}

func TestStatusString(t *testing.T) {
	if StatusSat.String() != "sat" || StatusUnsat.String() != "unsat" ||
		StatusUnknown.String() != "unknown" || Status(9).String() == "" {
		t.Error("Status.String broken")
	}
}

func TestProblemVars(t *testing.T) {
	p := NewProblem(f97)
	p.AddEq(lc(f97, 0, 5, 1), one97(), lc(f97, 0, 2, 1))
	p.AddNeq(lc(f97, 0, 9, 1))
	got := p.Vars()
	want := []int{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

// slowTwoCopyProblem builds the two-copy uniqueness query of the power map
// o^L = a over a small prime field: a length-L multiplication chain, its
// primed copy sharing only a, and o ≠ o'. With gcd(L, p−1) = 1 the map is a
// bijection, so the query is UNSAT — but proving it requires enumerating
// both copies' chain variables (p² branches of cascading substitutions),
// which takes far longer than any reasonable deadline.
func slowTwoCopyProblem() *Problem {
	f := ff.MustField(big.NewInt(4093)) // 4093 − 1 = 4092, gcd(25, 4092) = 1
	const L = 25
	p := NewProblem(f)
	addChain := func(o, base int) {
		// o·o = t1, t1·o = t2, …, t_{L−2}·o = a  (a is var 2·L−2, shared)
		a := 2 * (L - 1)
		prev := o
		for i := 1; i < L; i++ {
			next := base + i
			if i == L-1 {
				next = a
			}
			p.AddEq(lc(f, 0, int64(prev), 1), lc(f, 0, int64(o), 1), lc(f, 0, int64(next), 1))
			prev = next
		}
	}
	addChain(0, 0)                           // o = 0, t_i = 1..L−2
	addChain(L-1, L-1)                       // o' = L−1, t'_i = L..2L−3
	p.AddNeq(lc(f, 0, 0, 1, int64(L-1), -1)) // o ≠ o'
	return p
}

func TestDeadlineAlreadyPassed(t *testing.T) {
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -10, 0, 1, 1, 1))
	out := Solve(p, &Options{Deadline: time.Now().Add(-time.Second)})
	if out.Status != StatusUnknown || out.Reason != DeadlineExceeded {
		t.Fatalf("out = %+v, want unknown/%q", out, DeadlineExceeded)
	}
	if out.Steps != 0 {
		t.Errorf("steps = %d, want 0 (no work past the deadline)", out.Steps)
	}
}

func TestDeadlineBoundsSlowQuery(t *testing.T) {
	p := slowTwoCopyProblem()
	t0 := time.Now()
	out := Solve(p, &Options{
		MaxSteps: 1 << 40, // effectively unbounded: the deadline must cut first
		Seed:     1,
		Deadline: t0.Add(50 * time.Millisecond),
	})
	elapsed := time.Since(t0)
	if out.Status != StatusUnknown || out.Reason != DeadlineExceeded {
		t.Fatalf("out = %v/%q, want unknown/%q (steps %d, %s)",
			out.Status, out.Reason, DeadlineExceeded, out.Steps, elapsed)
	}
	// The solver may overshoot by at most one check interval of work; a
	// generous bound still catches a missing deadline check (the search
	// space is p² ≈ 16M branches, i.e. minutes of work).
	if elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: solve took %s", elapsed)
	}
	if out.Steps >= 1<<40 {
		t.Errorf("step budget exhausted instead of deadline")
	}
}
