package smt

import (
	"testing"

	"qed2/internal/faultinject"
	"qed2/internal/poly"
)

// incCase is one base/disequality split used by the continuation tests.
// The full problem is base ∧ neqs; the session is built from base alone.
type incCase struct {
	name string
	base func() *Problem
	neqs func() []*poly.LinComb
}

func incCases() []incCase {
	return []incCase{
		{
			// Determined linear chain; the disequality contradicts it.
			name: "linear-unsat",
			base: func() *Problem {
				p := NewProblem(f97)
				p.AddLinearEq(lc(f97, -10, 0, 1, 1, 1)) // x0 + x1 = 10
				p.AddLinearEq(lc(f97, -4, 0, 1, 1, -1)) // x0 - x1 = 4
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f97, -7, 0, 1)} }, // x0 ≠ 7
		},
		{
			// Same chain, satisfiable disequality.
			name: "linear-sat",
			base: func() *Problem {
				p := NewProblem(f97)
				p.AddLinearEq(lc(f97, -10, 0, 1, 1, 1))
				p.AddLinearEq(lc(f97, -4, 0, 1, 1, -1))
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f97, -1, 0, 1)} }, // x0 ≠ 1
		},
		{
			// Boolean constraint with a branch split.
			name: "boolean",
			base: func() *Problem {
				p := NewProblem(f97)
				p.AddEq(lc(f97, 0, 0, 1), lc(f97, -1, 0, 1), poly.NewLinComb(f97)) // x0(x0-1)=0
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f97, 0, 0, 1)} }, // x0 ≠ 0
		},
		{
			// Two-copy uniqueness shape: shared input x0 drives both copies,
			// outputs x1 (original) and x2 (primed) must differ.
			name: "two-copy",
			base: func() *Problem {
				p := NewProblem(f97)
				p.AddEq(lc(f97, 0, 0, 1), lc(f97, 0, 0, 1), lc(f97, 0, 1, 1)) // x0² = x1
				p.AddEq(lc(f97, 0, 0, 1), lc(f97, 0, 0, 1), lc(f97, 0, 2, 1)) // x0² = x2
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f97, 0, 1, 1, 2, -1)} }, // x1 ≠ x2
		},
		{
			// Underdetermined: free variables survive the base fixpoint.
			name: "underdetermined",
			base: func() *Problem {
				p := NewProblem(f97)
				p.AddLinearEq(lc(f97, -5, 0, 2, 1, 3)) // 2x0 + 3x1 = 5
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f97, 0, 1, 1, 3, -1)} }, // x1 ≠ x3
		},
		{
			// Small field with a quadratic core that needs enumeration.
			name: "quadratic-smallfield",
			base: func() *Problem {
				p := NewProblem(f13)
				p.AddEq(lc(f13, 0, 0, 1), lc(f13, 0, 1, 1), lc(f13, -3, 2, 1)) // x0·x1 = x2 + 3
				p.AddEq(lc(f13, 0, 0, 1), lc(f13, 0, 0, 1), lc(f13, 0, 3, 1))  // x0² = x3
				return p
			},
			neqs: func() []*poly.LinComb { return []*poly.LinComb{lc(f13, 0, 2, 1, 3, -1)} }, // x2 ≠ x3
		},
	}
}

func modelsEqual(a, b Model) bool {
	if len(a) != len(b) {
		return false
	}
	for v, e := range a {
		if b[v] != e {
			return false
		}
	}
	return true
}

// fullProblem conjoins a case's base and disequalities.
func (c incCase) fullProblem() *Problem {
	p := c.base()
	for _, nq := range c.neqs() {
		p.AddNeq(nq)
	}
	return p
}

// TestSessionContinuationMatchesFromScratch is the core exactness contract:
// on an unextended session, a continuation returns the same status, reason
// and model bytes as a from-scratch solve of base ∧ neqs, and the step
// ledgers agree (base steps + continuation steps − the re-executed fixpoint
// pass = from-scratch steps).
func TestSessionContinuationMatchesFromScratch(t *testing.T) {
	for _, c := range incCases() {
		t.Run(c.name, func(t *testing.T) {
			opts := &Options{Seed: 1}
			want := Solve(c.fullProblem(), opts)

			sess := NewSession(c.base(), opts)
			if sess.Poisoned() {
				t.Fatalf("session poisoned: %s", sess.PoisonReason())
			}
			if !sess.Exact() {
				t.Fatal("fresh session not exact")
			}
			got := sess.Solve(c.neqs(), opts)

			if got.Status != want.Status || got.Reason != want.Reason {
				t.Fatalf("continuation = (%v, %q), from-scratch = (%v, %q)",
					got.Status, got.Reason, want.Status, want.Reason)
			}
			if !modelsEqual(got.Model, want.Model) {
				t.Errorf("models differ: continuation %v, from-scratch %v", got.Model, want.Model)
			}
			if total := sess.BaseSteps() - 1 + got.Steps; total != want.Steps {
				t.Errorf("step ledger: base %d + continuation %d - 1 = %d, from-scratch %d",
					sess.BaseSteps(), got.Steps, total, want.Steps)
			}
			// A second continuation on the same session must be unaffected by
			// the first (Solve only clones).
			again := sess.Solve(c.neqs(), opts)
			if again.Status != got.Status || again.Steps != got.Steps || !modelsEqual(again.Model, got.Model) {
				t.Errorf("second continuation diverged: (%v, %d) vs (%v, %d)",
					again.Status, again.Steps, got.Status, got.Steps)
			}
		})
	}
}

// TestSessionStepParityBudget sweeps the step budget and checks that the
// continuation and the from-scratch solve halt identically at every grant:
// same status, same reason, same models. This pins the stepBias ledger — an
// off-by-one would shift the exhaustion point of some budget in the sweep.
func TestSessionStepParityBudget(t *testing.T) {
	for _, c := range incCases() {
		t.Run(c.name, func(t *testing.T) {
			ref := Solve(c.fullProblem(), &Options{Seed: 1})
			limit := ref.Steps + 2
			for b := int64(1); b <= limit; b++ {
				opts := &Options{Seed: 1, MaxSteps: b}
				want := Solve(c.fullProblem(), opts)
				sess := NewSession(c.base(), opts)
				if sess.Poisoned() {
					// The base itself exceeded this budget; from-scratch must
					// have halted inside the same prefix.
					if want.Status != StatusUnknown {
						t.Fatalf("budget %d: base poisoned (%s) but from-scratch decided %v",
							b, sess.PoisonReason(), want.Status)
					}
					continue
				}
				got := sess.Solve(c.neqs(), opts)
				if got.Status != want.Status || got.Reason != want.Reason {
					t.Fatalf("budget %d: continuation = (%v, %q), from-scratch = (%v, %q)",
						b, got.Status, got.Reason, want.Status, want.Reason)
				}
				if !modelsEqual(got.Model, want.Model) {
					t.Fatalf("budget %d: models differ", b)
				}
			}
		})
	}
}

// TestSessionConflictBase checks the short-circuit for bases that are
// unsatisfiable on their own: every continuation is UNSAT without search.
func TestSessionConflictBase(t *testing.T) {
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -1, 0, 1, 1, 1)) // x0 + x1 = 1
	p.AddLinearEq(lc(f97, -2, 0, 1, 1, 1)) // x0 + x1 = 2
	sess := NewSession(p, &Options{Seed: 1})
	if sess.Poisoned() {
		t.Fatalf("session poisoned: %s", sess.PoisonReason())
	}
	out := sess.Solve([]*poly.LinComb{lc(f97, 0, 0, 1)}, &Options{Seed: 1})
	if out.Status != StatusUnsat {
		t.Fatalf("status = %v, want unsat", out.Status)
	}
	if out.Steps != 0 {
		t.Errorf("conflict continuation consumed %d steps, want 0", out.Steps)
	}
	// Extending a conflicting base keeps it conflicting.
	if !sess.Extend([]VarMerge{{Keep: 0, Drop: 1}}, &Options{Seed: 1}) {
		t.Fatalf("extend on conflict base failed: %s", sess.PoisonReason())
	}
	if out := sess.Solve([]*poly.LinComb{lc(f97, 0, 0, 1)}, &Options{Seed: 1}); out.Status != StatusUnsat {
		t.Errorf("post-extend status = %v, want unsat", out.Status)
	}
}

// TestSessionRejectsDisequalityBase checks that a base problem carrying
// disequalities poisons the session instead of silently mis-sharing
// per-query state.
func TestSessionRejectsDisequalityBase(t *testing.T) {
	p := NewProblem(f97)
	p.AddLinearEq(lc(f97, -10, 0, 1, 1, 1))
	p.AddNeq(lc(f97, 0, 0, 1))
	sess := NewSession(p, &Options{Seed: 1})
	if !sess.Poisoned() {
		t.Fatal("session accepted a base with disequalities")
	}
	out := sess.Solve([]*poly.LinComb{lc(f97, 0, 1, 1)}, &Options{Seed: 1})
	if out.Status != StatusUnknown || !out.ResourceLimited {
		t.Fatalf("poisoned solve = (%v, limited=%v), want resource-limited unknown", out.Status, out.ResourceLimited)
	}
}

// TestSessionExtendMergeEquivalence checks the Extend contract: after
// merging newly shared signals, continuations decide exactly like a
// from-scratch solve of the base plus the merge equations. Verdicts must
// match; models need not (and full queries are therefore never routed to
// extended sessions by the scheduler).
func TestSessionExtendMergeEquivalence(t *testing.T) {
	// Two-copy shape over x0,x1 with primed copies x2,x3:
	//   x0² = x1   and   x2² = x3.
	base := func() *Problem {
		p := NewProblem(f97)
		p.AddEq(lc(f97, 0, 0, 1), lc(f97, 0, 0, 1), lc(f97, 0, 1, 1))
		p.AddEq(lc(f97, 0, 2, 1), lc(f97, 0, 2, 1), lc(f97, 0, 3, 1))
		return p
	}
	// The input became shared: x2 (the primed x0) merges into x0.
	merges := []VarMerge{{Keep: 0, Drop: 2}}
	neqs := []*poly.LinComb{lc(f97, 0, 1, 1, 3, -1)} // x1 ≠ x3

	ref := base()
	ref.AddLinearEq(lc(f97, 0, 2, 1, 0, -1)) // x2 - x0 = 0
	for _, nq := range neqs {
		ref.AddNeq(nq)
	}
	want := Solve(ref, &Options{Seed: 1})
	if want.Status != StatusUnsat {
		t.Fatalf("reference verdict = %v, want unsat (squaring is deterministic)", want.Status)
	}

	sess := NewSession(base(), &Options{Seed: 1})
	if sess.Poisoned() {
		t.Fatalf("session poisoned: %s", sess.PoisonReason())
	}
	if !sess.Extend(merges, &Options{Seed: 1}) {
		t.Fatalf("extend failed: %s", sess.PoisonReason())
	}
	if sess.Exact() {
		t.Fatal("session still exact after Extend")
	}
	if got := sess.Solve(neqs, &Options{Seed: 1}); got.Status != want.Status {
		t.Fatalf("extended continuation = %v, from-scratch = %v", got.Status, want.Status)
	}

	// The satisfiable direction: without the output merge, x1 ≠ x3 stays
	// reachable only if the inputs may differ — merge both and it's UNSAT,
	// merge nothing and it's SAT.
	sess2 := NewSession(base(), &Options{Seed: 1})
	if got := sess2.Solve(neqs, &Options{Seed: 1}); got.Status != StatusSat {
		t.Fatalf("unmerged continuation = %v, want sat", got.Status)
	}
}

// TestSessionFactsAreConsequences checks the learned-fact contract: every
// fact x := e exposed by a session is a universal consequence of the base
// equations — base ∧ (x − e ≠ 0) must be unsatisfiable.
func TestSessionFactsAreConsequences(t *testing.T) {
	for _, c := range incCases() {
		t.Run(c.name, func(t *testing.T) {
			sess := NewSession(c.base(), &Options{Seed: 1})
			if sess.Poisoned() {
				t.Fatalf("session poisoned: %s", sess.PoisonReason())
			}
			for _, fact := range sess.Facts() {
				p := c.base()
				p.AddNeq(poly.Var(p.Field, fact.Var).Sub(fact.Expr))
				if out := Solve(p, &Options{Seed: 1}); out.Status != StatusUnsat {
					t.Errorf("fact x%d := %s is not a consequence: refutation = %v",
						fact.Var, fact.Expr, out.Status)
				}
			}
		})
	}
}

// TestSessionSurvivesInjectedFaults drives the "smt.incremental" chaos site
// through its error and deadline kinds: sessions poison instead of
// half-working, continuations degrade to resource-limited Unknown, and a
// rebuilt session works once injection is disarmed.
func TestSessionSurvivesInjectedFaults(t *testing.T) {
	c := incCases()[0]

	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "smt.incremental", Kind: faultinject.KindError, Every: 1, Msg: "injected incremental fault"},
	}})
	sess := NewSession(c.base(), &Options{Seed: 1})
	if !sess.Poisoned() {
		faultinject.Disable()
		t.Fatal("error injection did not poison NewSession")
	}
	out := sess.Solve(c.neqs(), &Options{Seed: 1})
	if out.Status != StatusUnknown || !out.ResourceLimited {
		faultinject.Disable()
		t.Fatalf("poisoned continuation = (%v, limited=%v)", out.Status, out.ResourceLimited)
	}
	faultinject.Disable()

	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "smt.incremental", Kind: faultinject.KindDeadline, Every: 1},
	}})
	if sess := NewSession(c.base(), &Options{Seed: 1}); !sess.Poisoned() || sess.PoisonReason() != DeadlineExceeded {
		faultinject.Disable()
		t.Fatalf("deadline injection: poisoned=%v reason=%q", sess.Poisoned(), sess.PoisonReason())
	}
	faultinject.Disable()

	// Extend is a chaos point too: a healthy session poisoned mid-extend
	// reports unusable so the caller falls back.
	sess = NewSession(c.base(), &Options{Seed: 1})
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "smt.incremental", Kind: faultinject.KindError, Every: 1, Msg: "injected extend fault"},
	}})
	ok := sess.Extend([]VarMerge{{Keep: 0, Drop: 1}}, &Options{Seed: 1})
	faultinject.Disable()
	if ok || !sess.Poisoned() {
		t.Fatalf("extend under injection: ok=%v poisoned=%v", ok, sess.Poisoned())
	}

	// Disarmed: everything works again.
	sess = NewSession(c.base(), &Options{Seed: 1})
	if sess.Poisoned() {
		t.Fatalf("post-chaos session poisoned: %s", sess.PoisonReason())
	}
	want := Solve(c.fullProblem(), &Options{Seed: 1})
	if got := sess.Solve(c.neqs(), &Options{Seed: 1}); got.Status != want.Status {
		t.Fatalf("post-chaos continuation = %v, want %v", got.Status, want.Status)
	}
}
