package smt

// Incremental solving across related queries.
//
// The QED² scheduler issues many two-copy uniqueness queries over the same
// constraint slice: sibling targets in one round share every equation and
// differ only in the final target ≠ target′ disequality, and re-queries in
// later rounds differ only by which signals became shared. A Session
// retains the propagated elimination state of the common base (equations
// only, no disequalities) so each query pays for the diff instead of
// re-running Gaussian elimination from the raw Problem:
//
//   - Solve clones the base fixpoint, applies the retained substitutions
//     to the per-target disequality, and continues the search from there.
//     Because pickPivot never consults disequalities, the base fixpoint is
//     exactly the state a from-scratch solve of base ∧ neq would reach, so
//     a continuation on an unextended session returns byte-identical
//     outcomes (status, model, reason) to Solve on the full problem — with
//     stepBias aligning even the budget-exhaustion point (see solver.step).
//   - Extend grows the base in place when the shared-signal mask grows:
//     each newly shared signal v contributes the merge equation v′ − v = 0,
//     and propagation resumes on the constraint diff alone. The merge maps
//     solutions of the extended base bijectively onto solutions of a freshly
//     built base with v′ renamed to v, so SAT/UNSAT verdicts are preserved;
//     models, however, may differ from the from-scratch ones (the search
//     tree changes shape), which is why the scheduler routes only non-full
//     queries — whose models are never consumed — through extended sessions.
//   - Facts exposes the root-level eliminations of the base fixpoint as
//     replay-safe learned facts: each one is a universal consequence of the
//     base equations, so it may be injected into any sibling query over the
//     same constraint set with an equal-or-larger shared mask.
//
// A Session is immutable during querying: Solve only clones. NewSession and
// Extend are the mutation points, and also the chaos points — the
// "smt.incremental" faultinject site can poison a session there, which
// callers must treat as "fall back to from-scratch solving".

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qed2/internal/faultinject"
	"qed2/internal/ff"
	"qed2/internal/obs"
	"qed2/internal/poly"
)

// Session holds the reusable elimination state of a base problem (a
// conjunction of equations, no disequalities).
type Session struct {
	f *ff.Field
	// base is the propagated fixpoint state; nil when poisoned or when the
	// base is conflicting.
	base *state
	// baseEqs are the deduplicated original equations (plus Extend's merge
	// equations), kept for defensive model checking of continuations.
	baseEqs []Equation
	// baseVars is the ascending variable list of the base problem.
	baseVars []int
	// baseSteps is the cumulative step count of base propagation (build
	// plus extensions); continuations use it as their budget bias.
	baseSteps int64
	// conflict marks a base proven unsatisfiable on its own: every
	// continuation is then UNSAT without further search.
	conflict bool
	// exact is true until the first Extend: continuations of an exact
	// session reproduce from-scratch outcomes byte-for-byte.
	exact bool

	poisoned     bool
	poisonReason string
}

// VarMerge asks Extend to identify two base variables: Drop (the primed
// copy) becomes equal to Keep (the shared original).
type VarMerge struct {
	Keep, Drop int
}

// Fact is one root-level elimination x := Expr of a base fixpoint — a
// universal consequence of the base equations, safe to replay as the
// linear equation x − Expr = 0 in any query over the same (or a more
// shared) base.
type Fact struct {
	Var  int
	Expr *poly.LinComb
}

// checkIncrementalFault consults the "smt.incremental" chaos site; a
// non-empty return is the poison reason. Injected panics propagate to the
// caller's recover boundary.
func checkIncrementalFault() string {
	if !faultinject.Enabled() {
		return ""
	}
	switch f := faultinject.Check("smt.incremental"); {
	case f.Deadline:
		return DeadlineExceeded
	case f.Err != "":
		return f.Err
	}
	return ""
}

// NewSession builds a session from the base problem: equations are
// deduplicated exactly like Solve would, then propagated to fixpoint under
// opts' budget/deadline. A session that could not complete propagation is
// poisoned, never half-usable; callers then solve from scratch.
func NewSession(p *Problem, opts *Options) *Session {
	o := opts.withDefaults()
	sess := &Session{f: p.Field, exact: true}
	if r := checkIncrementalFault(); r != "" {
		sess.poison(r)
		return sess
	}
	if len(p.Neqs) != 0 {
		// Disequalities are per-query state by design; a base carrying them
		// would break the exactness argument above.
		sess.poison("incremental: base problem carries disequalities")
		return sess
	}
	st := newState(p)
	sess.baseEqs = cloneEqs(st.eqs)
	sess.baseVars = st.freeHint
	s := &solver{f: p.Field, opts: o}
	if o.Ctx != nil {
		if o.Ctx.Err() != nil {
			sess.poison(Canceled)
			return sess
		}
		s.done = o.Ctx.Done()
	}
	conflict, ok := s.propagate(st)
	sess.baseSteps = s.steps
	sess.observeBaseWork(&o, "smt.incremental.sessions", s.steps)
	if !ok {
		sess.poison(haltReason(s))
		return sess
	}
	sess.conflict = conflict
	sess.base = st
	return sess
}

// Extend grows the base by identifying newly shared signals: for each
// merge, the equation Drop − Keep = 0 joins the base and propagation
// resumes on the diff. Reports whether the session is still usable; on
// false the session is poisoned and callers must rebuild or fall back.
// After a successful Extend the session is no longer exact (see the
// package comment), so callers must not route model-consuming (full)
// queries through it.
func (sess *Session) Extend(merges []VarMerge, opts *Options) bool {
	if sess.poisoned {
		return false
	}
	o := opts.withDefaults()
	sess.exact = false
	if r := checkIncrementalFault(); r != "" {
		sess.poison(r)
		return false
	}
	if sess.conflict {
		// A conflicting base stays conflicting under extra equations.
		return true
	}
	st := sess.base
	for _, mg := range merges {
		lin := poly.Var(sess.f, mg.Drop).Sub(poly.Var(sess.f, mg.Keep))
		sess.baseEqs = append(sess.baseEqs, Equation{
			A: poly.ConstInt(sess.f, 1), B: lin, C: poly.NewLinComb(sess.f),
		})
		// New equations never see older substitutions (addSub only rewrites
		// what is already present), so apply them here.
		red := applySubs(st.subs, lin)
		if red.IsConst() {
			if !red.Constant().IsZero() {
				sess.conflict = true
				return true
			}
			continue // already identified
		}
		st.eqs = append(st.eqs, Equation{
			A: poly.ConstInt(sess.f, 1), B: red, C: poly.NewLinComb(sess.f),
		})
	}
	s := &solver{f: sess.f, opts: o}
	if o.Ctx != nil {
		if o.Ctx.Err() != nil {
			sess.poison(Canceled)
			return false
		}
		s.done = o.Ctx.Done()
	}
	conflict, ok := s.propagate(st)
	sess.baseSteps += s.steps
	sess.observeBaseWork(&o, "smt.incremental.extends", s.steps)
	if !ok {
		sess.poison(haltReason(s))
		return false
	}
	sess.conflict = conflict
	return true
}

// Solve answers one query against the retained base: the disequalities are
// rewritten through the base substitutions and the search continues from
// the base fixpoint. On an exact session the outcome is byte-identical to
// Solve on base ∧ neqs.
func (sess *Session) Solve(neqs []*poly.LinComb, opts *Options) Outcome {
	o := opts.withDefaults()
	var span *obs.Span
	if o.Obs.Enabled() {
		span = o.Obs.Start(o.Parent, "smt.solve",
			obs.KV("eqs", len(sess.baseEqs)), obs.KV("neqs", len(neqs)),
			obs.KV("incremental", true))
	}
	out := sess.solveContinuation(neqs, o)
	if m := o.Metrics; m != nil {
		m.Counter("smt.incremental.reuses").Inc()
	}
	o.observe(span, out)
	return out
}

func (sess *Session) solveContinuation(neqs []*poly.LinComb, o Options) Outcome {
	// A continuation is the entry of an SMT query like any other: the
	// "smt.solve" chaos site must fire here too, or arming it would miss
	// every batch-dispatched query.
	if out, injected := injectSolveFault(); injected {
		return out
	}
	if sess.poisoned {
		return Outcome{Status: StatusUnknown, Reason: "incremental: session poisoned: " + sess.poisonReason, ResourceLimited: true}
	}
	if sess.conflict {
		// The base alone is UNSAT; the from-scratch search would derive the
		// same conflict during propagation (complete never degraded there).
		return Outcome{Status: StatusUnsat}
	}
	if !o.Deadline.IsZero() && !time.Now().Before(o.Deadline) {
		return Outcome{Status: StatusUnknown, Reason: DeadlineExceeded, ResourceLimited: true}
	}
	s := &solver{
		f:    sess.f,
		opts: o,
		rng:  rand.New(rand.NewSource(o.Seed ^ 0x7f4a7c15)),
		// The base consumed baseSteps, of which the final no-action fixpoint
		// pass (1 step) is re-executed by the continuation's first propagate
		// pass; biasing by the difference makes the continuation's budget
		// ledger agree step-for-step with a from-scratch solve.
		stepBias: sess.baseSteps - 1,
	}
	if o.Ctx != nil {
		if o.Ctx.Err() != nil {
			return Outcome{Status: StatusUnknown, Reason: Canceled, ResourceLimited: true}
		}
		s.done = o.Ctx.Done()
	}
	st := sess.base.clone()
	neqVars := map[int]bool{}
	for _, nq := range neqs {
		st.neqs = append(st.neqs, applySubs(st.subs, nq))
		for _, v := range nq.Vars() {
			neqVars[v] = true
		}
	}
	st.freeHint = mergedVars(sess.baseVars, neqVars)
	res, model := s.solve(st, 0)
	return s.outcome(res, model, sess.checkModel(neqs))
}

// Facts returns the root-level eliminations of the current base fixpoint.
// Expressions are cloned: the caller may hold them across later Extends.
func (sess *Session) Facts() []Fact {
	if sess.poisoned || sess.base == nil {
		return nil
	}
	out := make([]Fact, 0, len(sess.base.subs))
	for _, e := range sess.base.subs {
		out = append(out, Fact{Var: e.v, Expr: e.expr.Clone()})
	}
	return out
}

// Poisoned reports whether the session is unusable; PoisonReason explains.
func (sess *Session) Poisoned() bool { return sess.poisoned }

// PoisonReason returns the poison cause ("" when healthy).
func (sess *Session) PoisonReason() string { return sess.poisonReason }

// Exact reports whether continuations still reproduce from-scratch
// outcomes byte-for-byte (true until the first Extend).
func (sess *Session) Exact() bool { return sess.exact }

// BaseSteps returns the cumulative solver steps spent on base propagation.
func (sess *Session) BaseSteps() int64 { return sess.baseSteps }

func (sess *Session) poison(reason string) {
	sess.poisoned = true
	sess.poisonReason = reason
	sess.base = nil
}

// checkModel verifies a continuation model against the original base
// equations plus this query's disequalities — the same defensive re-check
// solveProblem performs with Problem.Check.
func (sess *Session) checkModel(neqs []*poly.LinComb) func(Model) error {
	return func(m Model) error {
		at := m.Eval
		for i, e := range sess.baseEqs {
			l := sess.f.Mul(e.A.Eval(at), e.B.Eval(at))
			if l != e.C.Eval(at) {
				return fmt.Errorf("smt: base equation %d violated: %s", i, e)
			}
		}
		for i, nq := range neqs {
			if nq.Eval(at).IsZero() {
				return fmt.Errorf("smt: disequality %d violated: %s != 0", i, nq)
			}
		}
		return nil
	}
}

// observeBaseWork folds base propagation into the metrics registry. Base
// steps count as smt.steps (they are real solver work) and additionally
// under smt.incremental.base_steps so the reuse savings stay attributable.
func (sess *Session) observeBaseWork(o *Options, counter string, steps int64) {
	if m := o.Metrics; m != nil {
		m.Counter(counter).Inc()
		m.Counter("smt.steps").Add(steps)
		m.Counter("smt.incremental.base_steps").Add(steps)
	}
}

// haltReason maps a halted propagation to a poison reason.
func haltReason(s *solver) string {
	if s.reason != "" {
		return s.reason
	}
	return "base propagation halted"
}

// applySubs rewrites l through the elimination chain. Substitution
// expressions reference only never-eliminated variables (the addSub
// invariant), so a single forward pass suffices.
func applySubs(subs []subEntry, l *poly.LinComb) *poly.LinComb {
	out := l
	for _, e := range subs {
		out = out.Substitute(e.v, e.expr)
	}
	return out.Clone()
}

// cloneEqs snapshots an equation list. The copy is shallow: LinCombs are
// never mutated in place (poly operations are copy-on-write), so sharing
// them between the snapshot and the live state is safe.
func cloneEqs(eqs []Equation) []Equation {
	return append([]Equation(nil), eqs...)
}

// mergedVars unions the sorted base variable list with the disequality
// variables, ascending — reproducing Problem.Vars() of the full query.
func mergedVars(base []int, extra map[int]bool) []int {
	missing := 0
	for v := range extra {
		if !containsSorted(base, v) {
			missing++
		}
	}
	if missing == 0 {
		return base
	}
	out := make([]int, 0, len(base)+missing)
	out = append(out, base...)
	for v := range extra {
		if !containsSorted(base, v) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}
