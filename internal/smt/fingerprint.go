package smt

// Allocation-free structural fingerprints for equation deduplication and
// pair-derivation bucketing. The solver's inner loops used to build
// canonical *string* keys (NormalizeSign + raw-byte Key) for every
// equation they wanted to compare — a field inversion, a byte buffer and a
// string-map insertion per equation. The fingerprints here replace that
// with 64-bit multiset hashes folded over the unordered term maps:
//
//   - quadShapeFingerprint hashes only the *shape* of a polynomial (which
//     monomials occur, not their coefficients), making it invariant under
//     nonzero scaling — the equivalence the old NormalizeSign().Key()
//     computed. Equality is confirmed exactly inside a bucket by
//     equalModScale, so a fingerprint collision can never change the
//     deduplication result.
//   - quadPartFingerprint hashes the bilinear monomials *with* their
//     coefficients, replacing quadPartKey for deriveQuadDiff's bucketing.
//     Equal quadratic parts always hash equally, so no candidate pair is
//     ever missed; an (astronomically unlikely, but deterministic) bucket
//     collision is harmless because the pair scan re-checks that the
//     difference is linear before using it.
//
// Multiset (commutative) folding is what lets the hashes run off the raw
// Go maps via the Unordered visitors: per-term hashes are combined with
// addition, so map iteration order cannot leak into the result.

import (
	"qed2/internal/ff"
	"qed2/internal/poly"
)

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// spreads structured inputs (small var IDs, field limbs) over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashElem folds the raw limbs of e into h.
func hashElem(h uint64, e ff.Element) uint64 {
	for i := 0; i < ff.ElementLimbs; i++ {
		h = mix64(h ^ e[i])
	}
	return h
}

// quadShapeFingerprint returns a scale-invariant fingerprint of q: two
// polynomials that are nonzero scalar multiples of each other always get
// the same value. Only monomial identities (variable pairs, linear
// variables, a constant-present flag) are hashed — coefficients change
// under scaling and must not contribute.
func quadShapeFingerprint(q *poly.Quad) uint64 {
	var quadSum, linSum uint64
	var nQuad, nLin uint64
	q.VisitQuadTermsUnordered(func(p poly.VarPair, _ ff.Element) {
		quadSum += mix64(uint64(p.X)<<32 ^ uint64(p.Y) ^ 0x9e3779b97f4a7c15)
		nQuad++
	})
	lin := q.Lin()
	lin.VisitTermsUnordered(func(x int, _ ff.Element) {
		linSum += mix64(uint64(x) ^ 0xd1b54a32d192ed03)
		nLin++
	})
	h := mix64(quadSum ^ mix64(linSum))
	h = mix64(h ^ nQuad<<1 ^ nLin<<33)
	if !lin.Constant().IsZero() {
		h = mix64(h ^ 0x2545f4914f6cdd1d)
	}
	return h
}

// quadPartFingerprint returns an exact fingerprint of q's bilinear
// monomials (variable pairs and coefficients, ignoring the linear part).
// Polynomials with identical quadratic parts always collide, which is the
// grouping deriveQuadDiff needs.
func quadPartFingerprint(q *poly.Quad) uint64 {
	var sum uint64
	var n uint64
	q.VisitQuadTermsUnordered(func(p poly.VarPair, c ff.Element) {
		h := mix64(uint64(p.X)<<32 ^ uint64(p.Y) ^ 0x9e3779b97f4a7c15)
		sum += hashElem(h, c)
		n++
	})
	return mix64(sum ^ n)
}

// leadCoeff returns the coefficient NormalizeSign would divide by: the
// first bilinear monomial in canonical pair order, else the first linear
// coefficient, else the constant. Zero only for the zero polynomial.
func leadCoeff(q *poly.Quad) ff.Element {
	if q.NumQuadTerms() > 0 {
		var best poly.VarPair
		var bestC ff.Element
		first := true
		q.VisitQuadTermsUnordered(func(p poly.VarPair, c ff.Element) {
			if first || p.X < best.X || (p.X == best.X && p.Y < best.Y) {
				best, bestC, first = p, c, false
			}
		})
		return bestC
	}
	lin := q.Lin()
	if lin.NumTerms() > 0 {
		bestV := -1
		var bestC ff.Element
		lin.VisitTermsUnordered(func(x int, c ff.Element) {
			if bestV < 0 || x < bestV {
				bestV, bestC = x, c
			}
		})
		return bestC
	}
	return lin.Constant()
}

// equalModScale reports whether a = k·b for some nonzero field constant k.
// This is exactly the equivalence the old NormalizeSign().Key() string
// comparison decided, but with two scalings instead of a field inversion.
func equalModScale(a, b *poly.Quad) bool {
	la, lb := leadCoeff(a), leadCoeff(b)
	if la.IsZero() || lb.IsZero() {
		// A zero lead means the whole polynomial is zero (coefficient maps
		// never store zeros), so the only match is zero = zero.
		return la.IsZero() && lb.IsZero()
	}
	return a.Scale(lb).Equal(b.Scale(la))
}

// quadSet is a set of polynomials modulo nonzero scaling: the structure
// behind equation deduplication and derivePairs' derived-equation memory.
// Membership is decided by exact equalModScale confirmation within a
// fingerprint bucket, so hash collisions cannot drop equations.
type quadSet struct {
	buckets map[uint64][]*poly.Quad
}

func newQuadSet() *quadSet {
	return &quadSet{buckets: map[uint64][]*poly.Quad{}}
}

// add inserts q, reporting whether it was absent. Stored polynomials are
// never mutated afterwards (Quad operations are persistent), so clones may
// share them.
func (s *quadSet) add(q *poly.Quad) bool {
	fp := quadShapeFingerprint(q)
	for _, m := range s.buckets[fp] {
		if equalModScale(m, q) {
			return false
		}
	}
	s.buckets[fp] = append(s.buckets[fp], q)
	return true
}

func (s *quadSet) clone() *quadSet {
	out := &quadSet{buckets: make(map[uint64][]*poly.Quad, len(s.buckets))}
	for k, v := range s.buckets {
		out.buckets[k] = append([]*poly.Quad(nil), v...)
	}
	return out
}

// expandEq returns the polynomial A·B − C of an equation, the canonical
// object both fingerprints operate on.
func expandEq(e Equation) *poly.Quad {
	return poly.MulLin(e.A, e.B).Sub(poly.QuadFromLin(e.C))
}
