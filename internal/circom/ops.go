package circom

import (
	"fmt"
	"math/big"

	"qed2/internal/ff"
)

// This file centralizes the concrete semantics of Circom operators over
// field elements, shared by the compile-time evaluator and the witness-time
// interpreter.
//
// Following the Circom 2 specification:
//   - +, -, * and / are field operations (/ is multiplication by inverse);
//   - relational operators compare the *signed representatives* of their
//     operands, i.e. the lift into (−p/2, p/2];
//   - \, %, <<, >>, &, |, ^ and ~ operate on the canonical *unsigned*
//     representative in [0, p) as an integer and reduce the result back into
//     the field (this is what lets circomlib evaluate CompConstant(-1): the
//     -1 reads as p−1, a 254-bit constant);
//   - boolean operators treat 0 as false and everything else as true and
//     produce 0/1;
//   - ** is field exponentiation with the exponent read as an unsigned
//     integer in [0, p).

// maxShift bounds shift amounts so a hostile or buggy circuit cannot force
// multi-gigabyte bignums.
const maxShift = 1 << 20

func truthy(v *big.Int) bool { return v.Sign() != 0 }

func boolElt(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

// applyBin applies a binary Circom operator to two normalized field
// elements in big.Int form — the compile-time evaluator's domain, where
// values flow into array sizes and loop bounds anyway.
func applyBin(f *ff.Field, op TokKind, a, b *big.Int) (*big.Int, error) {
	switch op {
	case TokPlus:
		return f.AddBig(a, b), nil
	case TokMinus:
		return f.SubBig(a, b), nil
	case TokStar:
		return f.MulBig(a, b), nil
	case TokSlash:
		r, err := f.DivBig(a, b)
		if err != nil {
			return nil, fmt.Errorf("division by zero")
		}
		return r, nil
	case TokPow:
		return f.ExpBig(a, b), nil
	case TokIntDiv:
		ua, ub := f.Reduce(a), f.Reduce(b)
		if ub.Sign() == 0 {
			return nil, fmt.Errorf("integer division by zero")
		}
		return f.Reduce(new(big.Int).Quo(ua, ub)), nil
	case TokPercent:
		ua, ub := f.Reduce(a), f.Reduce(b)
		if ub.Sign() == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return f.Reduce(new(big.Int).Rem(ua, ub)), nil
	case TokEq:
		return boolElt(a.Cmp(b) == 0), nil
	case TokNeq:
		return boolElt(a.Cmp(b) != 0), nil
	case TokLt:
		return boolElt(f.SignedBig(a).Cmp(f.SignedBig(b)) < 0), nil
	case TokLeq:
		return boolElt(f.SignedBig(a).Cmp(f.SignedBig(b)) <= 0), nil
	case TokGt:
		return boolElt(f.SignedBig(a).Cmp(f.SignedBig(b)) > 0), nil
	case TokGeq:
		return boolElt(f.SignedBig(a).Cmp(f.SignedBig(b)) >= 0), nil
	case TokAndAnd:
		return boolElt(truthy(a) && truthy(b)), nil
	case TokOrOr:
		return boolElt(truthy(a) || truthy(b)), nil
	case TokShl:
		n, err := shiftAmount(f, b)
		if err != nil {
			return nil, err
		}
		return f.Reduce(new(big.Int).Lsh(f.Reduce(a), n)), nil
	case TokShr:
		n, err := shiftAmount(f, b)
		if err != nil {
			return nil, err
		}
		return f.Reduce(new(big.Int).Rsh(f.Reduce(a), n)), nil
	case TokBitAnd:
		return bitwise(f, a, b, (*big.Int).And)
	case TokBitOr:
		return bitwise(f, a, b, (*big.Int).Or)
	case TokBitXor:
		return bitwise(f, a, b, (*big.Int).Xor)
	default:
		return nil, fmt.Errorf("operator %q is not a binary value operator", op)
	}
}

func shiftAmount(f *ff.Field, b *big.Int) (uint, error) {
	ub := f.Reduce(b)
	if ub.Cmp(big.NewInt(maxShift)) > 0 {
		return 0, fmt.Errorf("shift amount %v out of range", ub)
	}
	return uint(ub.Uint64()), nil
}

func bitwise(f *ff.Field, a, b *big.Int, op func(z, x, y *big.Int) *big.Int) (*big.Int, error) {
	return f.Reduce(op(new(big.Int), f.Reduce(a), f.Reduce(b))), nil
}

// applyUn applies a unary Circom operator.
func applyUn(f *ff.Field, op TokKind, a *big.Int) (*big.Int, error) {
	switch op {
	case TokMinus:
		return f.NegBig(a), nil
	case TokNot:
		return boolElt(!truthy(a)), nil
	case TokBitNot:
		// Circom's complement is with respect to the 254-bit mask; we use
		// the field-width mask, which agrees for BN254-sized fields.
		mask := new(big.Int).Lsh(big.NewInt(1), uint(f.BitLen()))
		mask.Sub(mask, big.NewInt(1))
		sa := f.SignedBig(a)
		if sa.Sign() < 0 {
			sa = f.Reduce(sa)
		}
		return f.Reduce(new(big.Int).AndNot(mask, sa)), nil
	default:
		return nil, fmt.Errorf("operator %q is not a unary value operator", op)
	}
}

// applyBinElt is applyBin over ff.Element — the witness interpreter's
// domain. Field-semantics operators run natively on limbs; the
// integer-semantics ones (\, %, shifts, bitwise) and signed comparisons
// genuinely need the unsigned/signed integer representative and convert at
// the edge.
func applyBinElt(f *ff.Field, op TokKind, a, b ff.Element) (ff.Element, error) {
	switch op {
	case TokPlus:
		return f.Add(a, b), nil
	case TokMinus:
		return f.Sub(a, b), nil
	case TokStar:
		return f.Mul(a, b), nil
	case TokSlash:
		r, err := f.Div(a, b)
		if err != nil {
			return ff.Element{}, fmt.Errorf("division by zero")
		}
		return r, nil
	case TokPow:
		return f.Exp(a, f.ToBig(b)), nil
	case TokEq:
		return boolEltOf(f, a == b), nil
	case TokNeq:
		return boolEltOf(f, a != b), nil
	case TokAndAnd:
		return boolEltOf(f, !a.IsZero() && !b.IsZero()), nil
	case TokOrOr:
		return boolEltOf(f, !a.IsZero() || !b.IsZero()), nil
	default:
		r, err := applyBin(f, op, f.ToBig(a), f.ToBig(b))
		if err != nil {
			return ff.Element{}, err
		}
		return f.FromBig(r), nil
	}
}

// applyUnElt is applyUn over ff.Element.
func applyUnElt(f *ff.Field, op TokKind, a ff.Element) (ff.Element, error) {
	switch op {
	case TokMinus:
		return f.Neg(a), nil
	case TokNot:
		return boolEltOf(f, a.IsZero()), nil
	default:
		r, err := applyUn(f, op, f.ToBig(a))
		if err != nil {
			return ff.Element{}, err
		}
		return f.FromBig(r), nil
	}
}

func boolEltOf(f *ff.Field, b bool) ff.Element {
	if b {
		return f.One()
	}
	return ff.Element{}
}
