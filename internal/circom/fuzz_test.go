package circom

import (
	"strings"
	"testing"
)

// FuzzLex checks the lexer never panics and always terminates, producing
// either a token stream ending in EOF or a positioned error.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"",
		"template T() { signal input a; }",
		"a <== b ** 2 ** 3;",
		`log("esc \" \n")`,
		"/* unterminated",
		"0x",
		"\"\\q\"",
		"x <-- (in >> i) & 1;",
		"\x00\xff",
		strings.Repeat("((((", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream does not end in EOF: %v", toks)
		}
	})
}

// FuzzParse checks the parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"template T() { signal input a; signal output b; b <== a; } component main = T();",
		"component main = T(1, 2);",
		"function f(x) { return x; }",
		"template T(n) { for (var i = 0; i < n; i++) { } }",
		"template T() { if (1) { } else if (0) { } else { } }",
		"template T() { var a[2] = [1, 2]; }",
		"include \"x\"; pragma circom 2.0.0;",
		"template T() { c.in[0] <== a ? b : c; }",
		"template T() { a ==> b; b --> c; a === b; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseFile(src) // must not panic
	})
}

// FuzzCompile checks the whole front-end (with tight budgets) never panics
// on arbitrary source. The budgets make every resource path reachable:
// the constraint-budget seed below overflows MaxConstraints inside a loop,
// exercising the error return that used to be a control-flow panic.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"template T() { signal input a; signal output b; b <== a*a; } component main = T();",
		"template T(n) { signal input a[n]; signal output b; b <== a[0]; } component main = T(3);",
		"template T() { signal output b; b <== 1/0; } component main = T();",
		"template T() { signal input a; signal output b; b <-- 1/a; b*a === 1; } component main = T();",
		"function f(x){ return f(x); } template T() { signal input a; signal output b; b <== a*f(1); } component main = T();",
		"template T() { signal input a; signal output b; var i = 0; while (1) i++; b <== a; } component main = T();",
		// Constraint-budget overflow: 5000 constraints against MaxConstraints 4096.
		"template T() { signal input a; signal output b[5000]; for (var i = 0; i < 5000; i++) { b[i] <== a*a; } } component main = T();",
		// Signal-budget overflow.
		"template T() { signal input a[5000]; signal output b; b <== a[0]; } component main = T();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		opts := &CompileOptions{MaxSteps: 50_000, MaxSignals: 4096, MaxConstraints: 4096, MaxDepth: 32}
		prog, err := Compile(src, opts)
		if err != nil || prog == nil {
			return
		}
		// Any program that compiles must at least attempt witness
		// generation without panicking.
		_, _ = prog.GenerateWitness(nil)
	})
}
