package circom

import (
	"math/big"
	"strings"
	"testing"

	"qed2/internal/ff"
)

var f97t = ff.MustField(big.NewInt(97))

// TestApplyBinTable exercises every binary operator against hand-computed
// results, including the signed-representative semantics of the relational
// and integer operators.
func TestApplyBinTable(t *testing.T) {
	f := f97t
	cases := []struct {
		op   TokKind
		a, b int64 // signed inputs, reduced into the field
		want int64 // signed expected result
	}{
		{TokPlus, 90, 10, 3},
		{TokMinus, 3, 10, -7},
		{TokStar, 10, 10, 3},
		{TokPow, 2, 10, -43}, // 1024 mod 97 = 54 ≡ −43 signed
		{TokIntDiv, 17, 5, 3},
		{TokIntDiv, -17, 5, 16}, // unsigned: −17 ≡ 80, 80\5 = 16
		{TokPercent, 17, 5, 2},
		{TokPercent, -17, 5, 0}, // unsigned: 80 % 5 = 0
		{TokEq, 5, 5, 1},
		{TokEq, 5, 6, 0},
		{TokNeq, 5, 6, 1},
		{TokLt, -1, 0, 1}, // signed comparison: −1 < 0
		{TokLt, 96, 0, 1}, // 96 ≡ −1 mod 97
		{TokGt, 48, -48, 1},
		{TokLeq, 5, 5, 1},
		{TokGeq, 4, 5, 0},
		{TokAndAnd, 3, 4, 1},
		{TokAndAnd, 3, 0, 0},
		{TokOrOr, 0, 0, 0},
		{TokOrOr, 0, 9, 1},
		{TokShl, 3, 4, 48},
		{TokShr, 48, 4, 3},
		{TokBitAnd, 0b1100, 0b1010, 0b1000},
		{TokBitOr, 0b1100, 0b1010, 0b1110},
		{TokBitXor, 0b1100, 0b1010, 0b0110},
	}
	for _, c := range cases {
		got, err := applyBinElt(f, c.op, f.NewElement(c.a), f.NewElement(c.b))
		if err != nil {
			t.Errorf("%v(%d,%d): %v", c.op, c.a, c.b, err)
			continue
		}
		if f.Signed(got).Int64() != c.want {
			t.Errorf("%v(%d,%d) = %v, want %d", c.op, c.a, c.b, f.Signed(got), c.want)
		}
	}
}

func TestApplyBinErrors(t *testing.T) {
	f := f97t
	cases := []struct {
		op   TokKind
		a, b int64
		want string
	}{
		{TokSlash, 1, 0, "division by zero"},
		{TokIntDiv, 1, 0, "division by zero"},
		{TokPercent, 1, 0, "modulo by zero"},
		{TokSemi, 1, 1, "not a binary value operator"},
	}
	for _, c := range cases {
		_, err := applyBinElt(f, c.op, f.NewElement(c.a), f.NewElement(c.b))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v(%d,%d) err = %v, want contains %q", c.op, c.a, c.b, err, c.want)
		}
	}
}

func TestShiftAmountBound(t *testing.T) {
	// Over BN254, -1 reads as p−1, far beyond the shift-amount bound.
	f := ff.BN254()
	if _, err := applyBinElt(f, TokShl, f.One(), f.Neg(f.One())); err == nil ||
		!strings.Contains(err.Error(), "shift amount") {
		t.Errorf("huge shift err = %v", err)
	}
	// Over a small field the same -1 is a legal (if odd) shift by p−1 bits.
	if _, err := applyBinElt(f97t, TokShl, f97t.One(), f97t.Neg(f97t.One())); err != nil {
		t.Errorf("small-field shift err = %v", err)
	}
}

func TestApplyBinFieldDivision(t *testing.T) {
	f := f97t
	got, err := applyBinElt(f, TokSlash, f.NewElement(10), f.NewElement(4))
	if err != nil {
		t.Fatal(err)
	}
	// 10/4 in F_97: 4·x = 10 → x = 10·4⁻¹
	if f.ToBig(f.Mul(got, f.NewElement(4))).Int64() != 10 {
		t.Errorf("10/4 = %v", got)
	}
}

func TestApplyUn(t *testing.T) {
	f := f97t
	if got, _ := applyUnElt(f, TokMinus, f.NewElement(5)); f.Signed(got).Int64() != -5 {
		t.Errorf("-5 = %v", got)
	}
	if got, _ := applyUnElt(f, TokNot, f.NewElement(0)); !f.IsOne(got) {
		t.Errorf("!0 = %v", got)
	}
	if got, _ := applyUnElt(f, TokNot, f.NewElement(7)); !got.IsZero() {
		t.Errorf("!7 = %v", got)
	}
	if _, err := applyUnElt(f, TokPlus, f.NewElement(7)); err == nil {
		t.Error("applyUnElt(+) succeeded")
	}
	// Complement stays in-field and is an involution on small values
	// masked to the field width.
	x := f.NewElement(0b1010)
	nx, err := applyUnElt(f, TokBitNot, x)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsValid(nx) {
		t.Error("~x out of range")
	}
}

// TestOperatorsEndToEnd checks the operator semantics through the full
// compile + witness pipeline, where circom evaluates them at witness time.
func TestOperatorsEndToEnd(t *testing.T) {
	cases := []struct {
		expr string
		in   int64
		want int64
	}{
		{"in + 3", 4, 7},
		{"in * in - 1", 5, 24},
		{"in \\ 3", 11, 3},
		{"in % 4", 11, 3},
		{"in >> 2", 12, 3},
		{"in << 2", 3, 12},
		{"in & 6", 5, 4},
		{"in | 2", 5, 7},
		{"in ^ 1", 5, 4},
		{"in < 10 ? 1 : 2", 5, 1},
		{"in < 10 ? 1 : 2", 15, 2},
		{"in == 7", 7, 1},
		{"in != 7", 7, 0},
		{"(in > 2) && (in < 9)", 5, 1},
		{"(in > 2) || (in < 1)", 2, 0},
		{"!in", 0, 1},
		{"-in", 3, -3},
	}
	for _, c := range cases {
		src := `
template T() {
    signal input in;
    signal output out;
    out <-- ` + c.expr + `;
    out === out;
}
component main = T();
`
		prog, err := Compile(src, nil)
		if err != nil {
			t.Errorf("%q: compile: %v", c.expr, err)
			continue
		}
		w, err := prog.GenerateWitness(InputsFromInts(map[string]int64{"in": c.in}))
		if err != nil {
			t.Errorf("%q: witness: %v", c.expr, err)
			continue
		}
		f := prog.System.Field()
		got := f.Signed(w[prog.OutputNames["out"]]).Int64()
		if got != c.want {
			t.Errorf("%q with in=%d: got %d, want %d", c.expr, c.in, got, c.want)
		}
	}
}

// TestWExprStringForms covers the diagnostic renderers.
func TestWExprStringForms(t *testing.T) {
	w := &WBin{Op: TokPlus, L: &WSig{ID: 1}, R: &WConst{V: big.NewInt(2)}}
	if got := w.String(); got != "(x1 + 2)" {
		t.Errorf("WBin.String = %q", got)
	}
	c := &WCond{C: &WSig{ID: 1}, T: &WConst{V: big.NewInt(1)}, F: &WConst{V: big.NewInt(0)}}
	if got := c.String(); got != "(x1 ? 1 : 0)" {
		t.Errorf("WCond.String = %q", got)
	}
	u := &WUn{Op: TokMinus, X: &WSig{ID: 3}}
	if got := u.String(); got != "(-x3)" {
		t.Errorf("WUn.String = %q", got)
	}
}

// TestShortCircuitAvoidsSideError checks that && and || short-circuit at
// witness time (the unevaluated side may divide by zero).
func TestShortCircuitAvoidsSideError(t *testing.T) {
	prog, err := Compile(`
template T() {
    signal input in;
    signal output out;
    out <-- (in == 0) || (1/in > 0);
    out === out;
}
component main = T();
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := prog.GenerateWitness(InputsFromInts(map[string]int64{"in": 0}))
	if err != nil {
		t.Fatalf("short-circuit || still evaluated 1/0: %v", err)
	}
	if !prog.System.Field().IsOne(w[prog.OutputNames["out"]]) {
		t.Error("(0==0)||... != 1")
	}
}
