package circom

import (
	"fmt"
	"math/big"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// symVal is the symbolic value of an expression over signals during
// constraint emission. Mirroring the Circom compiler, a symbolic value is
// at most "quadratic": either a constant, a linear combination of signals,
// or A·B + C with A, B, C linear. Anything beyond that shape is rejected at
// compile time, exactly as circom rejects non-quadratic constraints.
type symVal struct {
	f *ff.Field
	// lin is set for degree ≤ 1 values (constants included).
	lin *poly.LinComb
	// qa·qb + qc is the value when quadratic (lin == nil).
	qa, qb, qc *poly.LinComb
}

func symConst(f *ff.Field, v *big.Int) *symVal {
	return &symVal{f: f, lin: poly.ConstBig(f, v)}
}

func symLin(f *ff.Field, lc *poly.LinComb) *symVal {
	return &symVal{f: f, lin: lc}
}

func symQuad(f *ff.Field, a, b, c *poly.LinComb) *symVal {
	return &symVal{f: f, qa: a, qb: b, qc: c}
}

// isConst reports whether the value is a compile-time constant, returning it
// in the evaluator's big.Int domain.
func (v *symVal) isConst() (*big.Int, bool) {
	if v.lin != nil && v.lin.IsConst() {
		return v.f.ToBig(v.lin.Constant()), true
	}
	return nil, false
}

func (v *symVal) isLinear() bool { return v.lin != nil }

// degreeName describes the value's shape for error messages.
func (v *symVal) degreeName() string {
	if c, ok := v.isConst(); ok {
		return fmt.Sprintf("constant %v", c)
	}
	if v.isLinear() {
		return "linear expression"
	}
	return "quadratic expression"
}

// symAdd returns a + b, rejecting the sum of two quadratic values (which is
// in general not expressible as a single rank-1 constraint).
func symAdd(a, b *symVal) (*symVal, error) {
	switch {
	case a.lin != nil && b.lin != nil:
		return symLin(a.f, a.lin.Add(b.lin)), nil
	case a.lin != nil:
		return symQuad(a.f, b.qa, b.qb, b.qc.Add(a.lin)), nil
	case b.lin != nil:
		return symQuad(a.f, a.qa, a.qb, a.qc.Add(b.lin)), nil
	default:
		return nil, fmt.Errorf("sum of two quadratic expressions is not quadratic")
	}
}

// symNeg returns -a.
func symNeg(a *symVal) *symVal {
	if a.lin != nil {
		return symLin(a.f, a.lin.Neg())
	}
	return symQuad(a.f, a.qa.Neg(), a.qb, a.qc.Neg())
}

// symSub returns a - b.
func symSub(a, b *symVal) (*symVal, error) { return symAdd(a, symNeg(b)) }

// symMul returns a·b, rejecting products whose degree would exceed 2.
func symMul(a, b *symVal) (*symVal, error) {
	if c, ok := a.isConst(); ok {
		return symScale(b, c), nil
	}
	if c, ok := b.isConst(); ok {
		return symScale(a, c), nil
	}
	if a.lin != nil && b.lin != nil {
		return symQuad(a.f, a.lin, b.lin, poly.NewLinComb(a.f)), nil
	}
	return nil, fmt.Errorf("product of %s and %s exceeds degree 2", a.degreeName(), b.degreeName())
}

// symScale returns k·a for a constant k.
func symScale(a *symVal, k *big.Int) *symVal {
	ke := a.f.FromBig(k)
	if a.lin != nil {
		return symLin(a.f, a.lin.Scale(ke))
	}
	return symQuad(a.f, a.qa.Scale(ke), a.qb, a.qc.Scale(ke))
}

// symDiv returns a / k for a constant nonzero divisor k. Division by a
// signal-dependent expression is only legal in witness-assignment position
// (<--), never in a constraint.
func symDiv(a, b *symVal) (*symVal, error) {
	k, ok := b.isConst()
	if !ok {
		return nil, fmt.Errorf("division by a signal-dependent expression is not allowed in constraints (use <-- and add the constraint explicitly)")
	}
	inv, err := a.f.InvBig(k)
	if err != nil {
		return nil, fmt.Errorf("division by zero")
	}
	return symScale(a, inv), nil
}
