package circom

import (
	"math/big"
)

// Parser is a recursive-descent parser for the Circom subset.
type Parser struct {
	toks []Token
	pos  int
}

// ParseFile parses a complete source file.
func ParseFile(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

// ParseExpr parses a single expression (used by tests and the CLI).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, errAt(p.cur().Pos, "trailing input after expression")
	}
	return e, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind == k {
		return p.next(), nil
	}
	return Token{}, errAt(p.cur().Pos, "expected %q, found %s", k.String(), p.cur())
}

// --- file level ----------------------------------------------------------------

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokPragma:
			p.next()
			// consume tokens until semicolon, e.g. `pragma circom 2.1.6;`
			var text string
			for p.cur().Kind != TokSemi && p.cur().Kind != TokEOF {
				if text != "" {
					text += " "
				}
				text += p.next().Text
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			f.Pragmas = append(f.Pragmas, text)
		case TokInclude:
			p.next()
			tok, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			f.Includes = append(f.Includes, tok.Text)
		case TokTemplate:
			t, err := p.parseTemplate()
			if err != nil {
				return nil, err
			}
			f.Templates = append(f.Templates, t)
		case TokFunction:
			fn, err := p.parseFunction()
			if err != nil {
				return nil, err
			}
			f.Functions = append(f.Functions, fn)
		case TokComponent:
			m, err := p.parseMainDecl()
			if err != nil {
				return nil, err
			}
			if f.Main != nil {
				return nil, errAt(m.Pos, "duplicate main component")
			}
			f.Main = m
		default:
			return nil, errAt(p.cur().Pos, "expected template, function, include, pragma or main declaration, found %s", p.cur())
		}
	}
	return f, nil
}

func (p *Parser) parseTemplate() (*Template, error) {
	start, err := p.expect(TokTemplate)
	if err != nil {
		return nil, err
	}
	parallel := false
	if _, ok := p.accept(TokParallel); ok {
		parallel = true
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Template{Name: name.Text, Params: params, Body: body, Parallel: parallel, Pos: start.Pos}, nil
}

func (p *Parser) parseFunction() (*Function, error) {
	start, err := p.expect(TokFunction)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Function{Name: name.Text, Params: params, Body: body, Pos: start.Pos}, nil
}

func (p *Parser) parseParamList() ([]string, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	if p.cur().Kind != TokRParen {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			params = append(params, id.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

// parseMainDecl parses `component main {public [a,b]} = T(args);`.
func (p *Parser) parseMainDecl() (*MainDecl, error) {
	start, err := p.expect(TokComponent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokMain); err != nil {
		return nil, err
	}
	m := &MainDecl{Pos: start.Pos}
	if _, ok := p.accept(TokLBrace); ok {
		if _, err := p.expect(TokPublic); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBracket); err != nil {
			return nil, err
		}
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			m.Public = append(m.Public, id.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	// optional `parallel` keyword before the call
	p.accept(TokParallel)
	callTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	call := &CallExpr{Name: callTok.Text, Pos: callTok.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	m.Call = call
	return m, nil
}

// --- statements ---------------------------------------------------------------

func (p *Parser) parseBlock() (*Block, error) {
	start, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: start.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errAt(start.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokVar:
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokSignal:
		return p.parseSignalDecl()
	case TokComponent:
		return p.parseComponentDecl()
	case TokFor:
		return p.parseFor()
	case TokWhile:
		return p.parseWhile()
	case TokIf:
		return p.parseIf()
	case TokReturn:
		start := p.next()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Pos: start.Pos}, nil
	case TokAssert:
		start := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssertStmt{Cond: cond, Pos: start.Pos}, nil
	case TokLog:
		start := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []Expr
		if p.cur().Kind != TokRParen {
			for {
				if p.cur().Kind == TokString {
					tok := p.next()
					args = append(args, &StringLit{Val: tok.Text, Pos: tok.Pos})
				} else {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &LogStmt{Args: args, Pos: start.Pos}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment / constraint / inc-dec statement
// without its trailing semicolon (shared with for-loop headers).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	if p.cur().Kind == TokVar {
		return p.parseVarDecl()
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	tok := p.cur()
	switch tok.Kind {
	case TokAssign, TokPlusAssign, TokMinusAssign, TokStarAssign,
		TokSlashAssign, TokIntDivAssign, TokPctAssign, TokShlAssign,
		TokShrAssign, TokAndAssign, TokOrAssign, TokXorAssign,
		TokAssignSig, TokAssignCon:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, Op: tok.Kind, RHS: rhs, Pos: tok.Pos}, nil
	case TokAssignSigR, TokAssignConR:
		// expr --> target / expr ==> target: normalize so target is LHS.
		p.next()
		target, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		op := TokAssignSig
		if tok.Kind == TokAssignConR {
			op = TokAssignCon
		}
		return &AssignStmt{LHS: target, Op: op, RHS: lhs, Pos: tok.Pos}, nil
	case TokConstrainEq:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ConstraintStmt{L: lhs, R: rhs, Pos: tok.Pos}, nil
	case TokInc, TokDec:
		p.next()
		return &IncDecStmt{LHS: lhs, Op: tok.Kind, Pos: tok.Pos}, nil
	default:
		return nil, errAt(tok.Pos, "expected assignment or constraint operator, found %s", tok)
	}
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	start, err := p.expect(TokVar)
	if err != nil {
		return nil, err
	}
	decls, err := p.parseDeclarators(true)
	if err != nil {
		return nil, err
	}
	return &VarDecl{Decls: decls, Pos: start.Pos}, nil
}

func (p *Parser) parseDeclarators(allowInit bool) ([]Declarator, error) {
	var decls []Declarator
	for {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d := Declarator{Name: id.Text, Pos: id.Pos}
		for p.cur().Kind == TokLBracket {
			p.next()
			dim, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
		}
		if allowInit {
			if _, ok := p.accept(TokAssign); ok {
				init, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Init = init
			}
		}
		decls = append(decls, d)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	return decls, nil
}

func (p *Parser) parseSignalDecl() (Stmt, error) {
	start, err := p.expect(TokSignal)
	if err != nil {
		return nil, err
	}
	class := SignalIntermediate
	switch p.cur().Kind {
	case TokInput:
		class = SignalInput
		p.next()
	case TokOutput:
		class = SignalOutput
		p.next()
	}
	// Optional tag list `{binary}` after signal class — parsed and ignored.
	if _, ok := p.accept(TokLBrace); ok {
		for p.cur().Kind != TokRBrace && p.cur().Kind != TokEOF {
			p.next()
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	decls, err := p.parseDeclarators(false)
	if err != nil {
		return nil, err
	}
	// Circom 2.1 allows `signal s <== expr;` — desugar into decl + assign.
	if tok := p.cur(); tok.Kind == TokAssignCon || tok.Kind == TokAssignSig {
		if len(decls) != 1 || len(decls[0].Dims) != 0 {
			return nil, errAt(tok.Pos, "initialized signal declaration must declare a single scalar signal")
		}
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		decl := &SignalDecl{Class: class, Decls: decls, Pos: start.Pos}
		assign := &AssignStmt{
			LHS: &Ident{Name: decls[0].Name, Pos: decls[0].Pos},
			Op:  tok.Kind,
			RHS: rhs,
			Pos: tok.Pos,
		}
		return &Block{Stmts: []Stmt{decl, assign}, Pos: start.Pos}, nil
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &SignalDecl{Class: class, Decls: decls, Pos: start.Pos}, nil
}

func (p *Parser) parseComponentDecl() (Stmt, error) {
	start, err := p.expect(TokComponent)
	if err != nil {
		return nil, err
	}
	decls, err := p.parseDeclarators(true)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ComponentDecl{Decls: decls, Pos: start.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	start, err := p.expect(TokFor)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var init Stmt
	if p.cur().Kind != TokSemi {
		init, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var cond Expr
	if p.cur().Kind != TokSemi {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var post Stmt
	if p.cur().Kind != TokRParen {
		post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: start.Pos}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	start, err := p.expect(TokWhile)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: start.Pos}, nil
}

// parseLoopBody accepts either a block or a single statement.
func (p *Parser) parseLoopBody() (*Block, error) {
	if p.cur().Kind == TokLBrace {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}, Pos: s.stmtPos()}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	start, err := p.expect(TokIf)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: start.Pos}
	if _, ok := p.accept(TokElse); ok {
		if p.cur().Kind == TokIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseLoopBody()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// --- expressions ----------------------------------------------------------------

// Binding powers, low to high, mirroring the Circom grammar.
var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokBitOr:  3,
	TokBitXor: 4,
	TokBitAnd: 5,
	TokEq:     6, TokNeq: 6,
	TokLt: 7, TokGt: 7, TokLeq: 7, TokGeq: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokIntDiv: 10, TokPercent: 10,
	TokPow: 11,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if tok, ok := p.accept(TokQuestion); ok {
		thenE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		elseE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{C: cond, T: thenE, F: elseE, Pos: tok.Pos}, nil
	}
	return cond, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		// ** is right-associative; everything else left-associative.
		nextMin := prec + 1
		if op.Kind == TokPow {
			nextMin = prec
		}
		right, err := p.parseBinary(nextMin)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op.Kind, L: left, R: right, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokMinus, TokNot, TokBitNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: tok.Kind, X: x, Pos: tok.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			tok := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx, Pos: tok.Pos}
		case TokDot:
			tok := p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Name: name.Text, Pos: tok.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokNumber:
		p.next()
		v, ok := new(big.Int).SetString(tok.Text, 0)
		if !ok {
			return nil, errAt(tok.Pos, "malformed number %q", tok.Text)
		}
		return &NumberLit{Val: v, Pos: tok.Pos}, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			call := &CallExpr{Name: tok.Text, Pos: tok.Pos}
			if p.cur().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if _, ok := p.accept(TokComma); !ok {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBracket:
		p.next()
		lit := &ArrayLit{Pos: tok.Pos}
		if p.cur().Kind != TokRBracket {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return lit, nil
	default:
		return nil, errAt(tok.Pos, "expected expression, found %s", tok)
	}
}
