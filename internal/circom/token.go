// Package circom implements a compiler front-end for a faithful subset of
// the Circom 2 hardware-description language for arithmetic circuits: lexer,
// parser, compile-time evaluator, template instantiation, R1CS constraint
// emission, and witness generation.
//
// The subset covers the constructs used by circomlib-style libraries:
// templates with parameters, input/output/intermediate signals (including
// multi-dimensional arrays), components and component arrays, compile-time
// variables, functions, for/while/if, the constraint operators <== / ==> /
// === and the witness-only assignment <-- / -->, plus the full Circom
// expression grammar (field arithmetic, integer division, shifts, bitwise
// and relational operators, ternary conditionals).
//
// Semantics follow Circom 2: `<==` both assigns and constrains and its
// right-hand side must be at most quadratic; `<--` only assigns (this is the
// operator whose misuse creates under-constrained circuits); `===` only
// constrains. Relational and integer operators interpret field elements via
// their signed representative in (−p/2, p/2], as the Circom compiler does.
package circom

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString

	// punctuation
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
	TokQuestion
	TokColon

	// operators
	TokAssign       // =
	TokConstrainEq  // ===
	TokAssignSig    // <--
	TokAssignSigR   // -->
	TokAssignCon    // <==
	TokAssignConR   // ==>
	TokPlus         // +
	TokMinus        // -
	TokStar         // *
	TokPow          // **
	TokSlash        // /
	TokIntDiv       // \
	TokPercent      // %
	TokPlusAssign   // +=
	TokMinusAssign  // -=
	TokStarAssign   // *=
	TokSlashAssign  // /=
	TokIntDivAssign // \=
	TokPctAssign    // %=
	TokShlAssign    // <<=
	TokShrAssign    // >>=
	TokAndAssign    // &=
	TokOrAssign     // |=
	TokXorAssign    // ^=
	TokInc          // ++
	TokDec          // --
	TokEq           // ==
	TokNeq          // !=
	TokLt           // <
	TokGt           // >
	TokLeq          // <=
	TokGeq          // >=
	TokAndAnd       // &&
	TokOrOr         // ||
	TokNot          // !
	TokBitAnd       // &
	TokBitOr        // |
	TokBitXor       // ^
	TokBitNot       // ~
	TokShl          // <<
	TokShr          // >>

	// keywords
	TokPragma
	TokInclude
	TokTemplate
	TokFunction
	TokComponent
	TokMain
	TokPublic
	TokSignal
	TokInput
	TokOutput
	TokVar
	TokFor
	TokWhile
	TokIf
	TokElse
	TokReturn
	TokAssert
	TokLog
	TokParallel
)

var keywords = map[string]TokKind{
	"pragma":    TokPragma,
	"include":   TokInclude,
	"template":  TokTemplate,
	"function":  TokFunction,
	"component": TokComponent,
	"main":      TokMain,
	"public":    TokPublic,
	"signal":    TokSignal,
	"input":     TokInput,
	"output":    TokOutput,
	"var":       TokVar,
	"for":       TokFor,
	"while":     TokWhile,
	"if":        TokIf,
	"else":      TokElse,
	"return":    TokReturn,
	"assert":    TokAssert,
	"log":       TokLog,
	"parallel":  TokParallel,
}

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokDot: ".", TokQuestion: "?", TokColon: ":",
	TokAssign: "=", TokConstrainEq: "===", TokAssignSig: "<--", TokAssignSigR: "-->",
	TokAssignCon: "<==", TokAssignConR: "==>",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokPow: "**", TokSlash: "/",
	TokIntDiv: "\\", TokPercent: "%",
	TokPlusAssign: "+=", TokMinusAssign: "-=", TokStarAssign: "*=",
	TokSlashAssign: "/=", TokIntDivAssign: "\\=", TokPctAssign: "%=",
	TokShlAssign: "<<=", TokShrAssign: ">>=",
	TokAndAssign: "&=", TokOrAssign: "|=", TokXorAssign: "^=",
	TokInc: "++", TokDec: "--",
	TokEq: "==", TokNeq: "!=", TokLt: "<", TokGt: ">", TokLeq: "<=", TokGeq: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
	TokBitAnd: "&", TokBitOr: "|", TokBitXor: "^", TokBitNot: "~",
	TokShl: "<<", TokShr: ">>",
	TokPragma: "pragma", TokInclude: "include", TokTemplate: "template",
	TokFunction: "function", TokComponent: "component", TokMain: "main",
	TokPublic: "public", TokSignal: "signal", TokInput: "input",
	TokOutput: "output", TokVar: "var", TokFor: "for", TokWhile: "while",
	TokIf: "if", TokElse: "else", TokReturn: "return", TokAssert: "assert",
	TokLog: "log", TokParallel: "parallel",
}

// String implements fmt.Stringer.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

// Error is a front-end error (lexing, parsing, or compilation) carrying a
// source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
