package circom

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
	"testing"

	"qed2/internal/faultinject"
	"qed2/internal/ff"
	"qed2/internal/r1cs"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// wi reads a witness slot as a small integer.
func wi(p *Program, w r1cs.Witness, id int) int64 {
	return p.System.Field().ToBig(w[id]).Int64()
}

func TestCompileMultiplier(t *testing.T) {
	p := mustCompile(t, `
template Multiplier() {
    signal input a;
    signal input b;
    signal output c;
    c <== a * b;
}
component main = Multiplier();
`)
	st := p.System.Stats()
	if st.Inputs != 2 || st.Outputs != 1 || st.Constraints != 1 {
		t.Fatalf("stats = %+v", st)
	}
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 6, "b": 7}))
	out := p.OutputNames["c"]
	if wi(p, w, out) != 42 {
		t.Errorf("c = %v", w[out])
	}
}

func TestCompileIsZero(t *testing.T) {
	p := mustCompile(t, `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`)
	if p.System.Stats().Constraints != 2 {
		t.Fatalf("constraints = %d, want 2", p.System.Stats().Constraints)
	}
	// The inv assignment must be unconstrained (<--).
	var unconstrained int
	for _, a := range p.Assignments {
		if !a.Constrained {
			unconstrained++
		}
	}
	if unconstrained != 1 {
		t.Errorf("unconstrained assignments = %d, want 1", unconstrained)
	}
	out := p.OutputNames["out"]
	w := p.MustWitness(InputsFromInts(map[string]int64{"in": 0}))
	if wi(p, w, out) != 1 {
		t.Errorf("IsZero(0) = %v, want 1", w[out])
	}
	w = p.MustWitness(InputsFromInts(map[string]int64{"in": 5}))
	if wi(p, w, out) != 0 {
		t.Errorf("IsZero(5) = %v, want 0", w[out])
	}
}

func TestCompileNum2Bits(t *testing.T) {
	p := mustCompile(t, `
template Num2Bits(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc1 += out[i] * e2;
        e2 = e2 + e2;
    }
    lc1 === in;
}
component main = Num2Bits(8);
`)
	st := p.System.Stats()
	if st.Outputs != 8 || st.Constraints != 9 {
		t.Fatalf("stats = %+v", st)
	}
	w := p.MustWitness(InputsFromInts(map[string]int64{"in": 0b10110101}))
	wantBits := []int64{1, 0, 1, 0, 1, 1, 0, 1}
	for i, b := range wantBits {
		id := p.OutputNames["out["+string(rune('0'+i))+"]"]
		if wi(p, w, id) != b {
			t.Errorf("bit %d = %v, want %d", i, w[id], b)
		}
	}
}

func TestCompileComponents(t *testing.T) {
	p := mustCompile(t, `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
template IsEqual() {
    signal input in[2];
    signal output out;
    component isz = IsZero();
    in[1] - in[0] ==> isz.in;
    isz.out ==> out;
}
component main = IsEqual();
`)
	out := p.OutputNames["out"]
	w := p.MustWitness(InputsFromInts(map[string]int64{"in[0]": 4, "in[1]": 4}))
	if wi(p, w, out) != 1 {
		t.Errorf("IsEqual(4,4) = %v", w[out])
	}
	w = p.MustWitness(InputsFromInts(map[string]int64{"in[0]": 4, "in[1]": 5}))
	if wi(p, w, out) != 0 {
		t.Errorf("IsEqual(4,5) = %v", w[out])
	}
	// Sub-component signals carry dotted names.
	if _, ok := p.System.SignalByName("isz.inv"); !ok {
		t.Error("missing dotted sub-component signal name isz.inv")
	}
}

func TestCompileComponentArrays(t *testing.T) {
	p := mustCompile(t, `
template Square() {
    signal input in;
    signal output out;
    out <== in * in;
}
template SumOfSquares(n) {
    signal input in[n];
    signal output out;
    component sq[n];
    var acc = 0;
    signal partial[n];
    for (var i = 0; i < n; i++) {
        sq[i] = Square();
        sq[i].in <== in[i];
    }
    partial[0] <== sq[0].out;
    for (var i = 1; i < n; i++) {
        partial[i] <== partial[i-1] + sq[i].out;
    }
    out <== partial[n-1];
}
component main = SumOfSquares(3);
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"in[0]": 1, "in[1]": 2, "in[2]": 3}))
	if got := wi(p, w, p.OutputNames["out"]); got != 14 {
		t.Errorf("sum of squares = %d, want 14", got)
	}
}

func TestCompileFunctions(t *testing.T) {
	p := mustCompile(t, `
function nbits(a) {
    var n = 1;
    var r = 0;
    while (n-1 < a) {
        r++;
        n *= 2;
    }
    return r;
}
template T() {
    signal input in;
    signal output out;
    out <== in * nbits(7);
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"in": 2}))
	if got := wi(p, w, p.OutputNames["out"]); got != 6 {
		t.Errorf("out = %d, want 2*nbits(7)=6", got)
	}
}

func TestCompileIncludes(t *testing.T) {
	lib := map[string]string{
		"mul.circom": `
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
`,
	}
	p, err := Compile(`
include "mul.circom";
component main = Mul();
`, &CompileOptions{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if p.MainTemplate != "Mul" {
		t.Errorf("main template = %q", p.MainTemplate)
	}
	// Missing include errors.
	if _, err := Compile(`include "nope.circom"; component main = X();`, nil); err == nil {
		t.Error("missing include accepted")
	}
}

func TestCompileQuadraticRules(t *testing.T) {
	// Cubic constraint must be rejected.
	_, err := Compile(`
template T() {
    signal input a;
    signal output out;
    out <== a*a*a;
}
component main = T();
`, nil)
	if err == nil || !strings.Contains(err.Error(), "degree 2") {
		t.Errorf("cubic <== err = %v", err)
	}
	// Division by a signal must be rejected in constraints...
	_, err = Compile(`
template T() {
    signal input a;
    signal output out;
    out <== 1/a;
}
component main = T();
`, nil)
	if err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("signal division <== err = %v", err)
	}
	// ...but allowed in witness assignments.
	p := mustCompile(t, `
template T() {
    signal input a;
    signal output out;
    out <-- 1/a;
    out*a === 1;
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 3}))
	f := p.System.Field()
	if f.Mul(w[p.OutputNames["out"]], f.NewElement(3)) != f.One() {
		t.Error("witness division wrong")
	}
	// Division by zero at witness time errors.
	if _, err := p.GenerateWitness(InputsFromInts(map[string]int64{"a": 0})); err == nil {
		t.Error("1/0 witness generation succeeded")
	}
}

func TestCompilePowUnfolding(t *testing.T) {
	p := mustCompile(t, `
template T() {
    signal input a;
    signal output out;
    out <== a**2 + 2**3;
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 5}))
	if got := wi(p, w, p.OutputNames["out"]); got != 33 {
		t.Errorf("a^2+8 = %d, want 33", got)
	}
	if _, err := Compile(`
template T() { signal input a; signal output o; o <== a**3; }
component main = T();
`, nil); err == nil {
		t.Error("a**3 accepted in constraint")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no main", `template T() { signal input x; signal output o; o <== x; }`, "no main"},
		{"unknown template", `component main = Nope();`, "unknown template"},
		{"param count", `template T(n) { signal input x; signal output o; o <== x; } component main = T();`, "parameters"},
		{"assign to input", `template T() { signal input x; signal output o; x <== 1; o <== x; } component main = T();`, "input"},
		{"double assign", `template T() { signal input x; signal output o; o <== x; o <== x; } component main = T();`, "twice"},
		{"unassigned signal", `template T() { signal input x; signal output o; signal m; o <== x; m*m === x; } component main = T();`, "no assignment"},
		{"const false ===", `template T() { signal input x; signal output o; o <== x; 1 === 2; } component main = T();`, "constant-false"},
		{"undefined ident", `template T() { signal output o; o <== y; } component main = T();`, "undefined"},
		{"bad index", `template T() { signal input x[2]; signal output o; o <== x[5]; } component main = T();`, "out of bounds"},
		{"intermediate access", `
template U() { signal input a; signal output b; signal m; m <== a; b <== m; }
template T() { signal input x; signal output o; component u = U(); u.in === 0; o <== x; }
component main = T();`, "no signal"},
		{"private sub access", `
template U() { signal input a; signal output b; signal m; m <== a; b <== m; }
template T() { signal input x; signal output o; component u = U(); u.a <== x; o <== u.m; }
component main = T();`, "not accessible"},
		{"assert fails", `template T(n) { signal input x; signal output o; assert(n > 4); o <== x; } component main = T(3);`, "assertion failed"},
		{"duplicate template", `template T() {} template T() {} component main = T();`, "duplicate"},
		{"fn no return", `function f(x) { var y = x; } template T() { signal input a; signal output o; o <== a * f(1); } component main = T();`, "without returning"},
		{"sum of quads", `template T() { signal input a; signal input b; signal output o; o <== a*a + b*b; } component main = T();`, "not quadratic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, nil)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestCompileStepBudget(t *testing.T) {
	_, err := Compile(`
template T() {
    signal input x;
    signal output o;
    var i = 0;
    while (1) { i++; }
    o <== x;
}
component main = T();
`, &CompileOptions{MaxSteps: 10000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("infinite loop err = %v", err)
	}
}

func TestCompileRecursionGuard(t *testing.T) {
	_, err := Compile(`
function f(x) { return f(x); }
template T() { signal input a; signal output o; o <== a * f(1); }
component main = T();
`, &CompileOptions{MaxDepth: 16})
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("recursion err = %v", err)
	}
}

func TestCompileSmallField(t *testing.T) {
	f97 := ff.MustField(big.NewInt(97))
	p, err := Compile(`
template T() {
    signal input a;
    signal output o;
    o <== a + 96;
}
component main = T();
`, &CompileOptions{Field: f97})
	if err != nil {
		t.Fatal(err)
	}
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 5}))
	if got := wi(p, w, p.OutputNames["o"]); got != 4 {
		t.Errorf("5 + 96 mod 97 = %d, want 4", got)
	}
}

func TestWitnessTimeAssert(t *testing.T) {
	p := mustCompile(t, `
template T() {
    signal input a;
    signal output o;
    assert(a != 3);
    o <== a;
}
component main = T();
`)
	if _, err := p.GenerateWitness(InputsFromInts(map[string]int64{"a": 5})); err != nil {
		t.Errorf("a=5: %v", err)
	}
	if _, err := p.GenerateWitness(InputsFromInts(map[string]int64{"a": 3})); err == nil {
		t.Error("a=3 passed the witness assert")
	}
}

func TestWitnessUnknownInputRejected(t *testing.T) {
	p := mustCompile(t, `
template T() { signal input a; signal output o; o <== a; }
component main = T();
`)
	if _, err := p.GenerateWitness(InputsFromInts(map[string]int64{"zzz": 1})); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestWitnessOrderIndependence(t *testing.T) {
	// inter depends on a later-assigned subcomponent output; the ready
	// queue must reorder.
	p := mustCompile(t, `
template Sq() { signal input in; signal output out; out <== in*in; }
template T() {
    signal input a;
    signal output o;
    signal inter;
    component s = Sq();
    inter <-- s.out + 1;
    inter === s.out + 1;
    s.in <== a;
    o <== inter;
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 3}))
	if got := wi(p, w, p.OutputNames["o"]); got != 10 {
		t.Errorf("o = %d, want 10", got)
	}
}

func TestConstraintTagsCarryProvenance(t *testing.T) {
	p := mustCompile(t, `
template T() { signal input a; signal output o; o <== a*a; }
component main = T();
`)
	tag := p.System.Constraint(0).Tag
	if !strings.Contains(tag, "o") || !strings.Contains(tag, "<==") {
		t.Errorf("tag = %q", tag)
	}
}

func TestLogCollection(t *testing.T) {
	p := mustCompile(t, `
template T(n) {
    signal input a;
    signal output o;
    log("n is", n);
    o <== a;
}
component main = T(7);
`)
	if len(p.Logs) != 1 || p.Logs[0] != "n is 7" {
		t.Errorf("logs = %v", p.Logs)
	}
}

func TestWitnessCircularDependencyDetected(t *testing.T) {
	p := mustCompile(t, `
template T() {
    signal input x;
    signal output a;
    signal output b;
    a <-- b + 1;
    b <-- a + 1;
    a - b === 1 - x;
}
component main = T();
`)
	_, err := p.GenerateWitness(InputsFromInts(map[string]int64{"x": 3}))
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("cyclic witness err = %v, want 'stuck'", err)
	}
}

func TestMultiDimensionalSignals(t *testing.T) {
	p := mustCompile(t, `
template T(n, m) {
    signal input in[n][m];
    signal output out;
    var acc = 0;
    for (var i = 0; i < n; i++) {
        for (var j = 0; j < m; j++) {
            acc += in[i][j] * (i*m + j + 1);
        }
    }
    out <== acc;
}
component main = T(2, 3);
`)
	// out = sum in[i][j] * (i*3+j+1) with in[i][j] = i*3+j+1 → sum of squares 1..6 = 91
	inputs := map[string]int64{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			inputs[fmt.Sprintf("in[%d][%d]", i, j)] = int64(i*3 + j + 1)
		}
	}
	w := p.MustWitness(InputsFromInts(inputs))
	if got := wi(p, w, p.OutputNames["out"]); got != 91 {
		t.Errorf("out = %d, want 91", got)
	}
}

func TestFunctionReturningArray(t *testing.T) {
	p := mustCompile(t, `
function firstN(n) {
    var out[8];
    for (var i = 0; i < n; i++) { out[i] = i + 1; }
    return out;
}
template T() {
    signal input x;
    signal output o;
    var arr[8] = firstN(3);
    o <== x * arr[2];
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"x": 5}))
	if got := wi(p, w, p.OutputNames["o"]); got != 15 {
		t.Errorf("o = %d, want 15", got)
	}
}

func TestSignalDeclInsideIf(t *testing.T) {
	// Compile-time conditional signal declaration (circom 2.1 style).
	p := mustCompile(t, `
template T(flag) {
    signal input a;
    signal output o;
    if (flag == 1) {
        signal extra;
        extra <== a * a;
        o <== extra;
    } else {
        o <== a;
    }
}
component main = T(1);
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"a": 4}))
	if got := wi(p, w, p.OutputNames["o"]); got != 16 {
		t.Errorf("o = %d, want 16", got)
	}
}

func TestArrayLiterals(t *testing.T) {
	p := mustCompile(t, `
template T() {
    signal input x;
    signal output o;
    var flat[3] = [10, 20, 30];
    var nested[2][2] = [[1, 2], [3, 4]];
    o <== x * (flat[1] + nested[1][0]);
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"x": 2}))
	if got := wi(p, w, p.OutputNames["o"]); got != 46 {
		t.Errorf("o = %d, want 2*(20+3)=46", got)
	}
}

func TestArrayLiteralErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"ragged", `template T() { signal input x; signal output o; var a[2][2] = [[1], [2, 3]]; o <== x; } component main = T();`},
		{"mixed", `template T() { signal input x; signal output o; var a[2] = [1, [2]]; o <== x; } component main = T();`},
		{"size mismatch", `template T() { signal input x; signal output o; var a[3] = [1, 2]; o <== x; } component main = T();`},
		{"scalar from array", `template T() { signal input x; signal output o; var a = [1, 2]; o <== x; } component main = T();`},
		{"array from scalar", `template T() { signal input x; signal output o; var a[2] = 5; o <== x; } component main = T();`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.src, nil); err == nil {
				t.Errorf("compile succeeded")
			}
		})
	}
}

func TestWholeArrayVarAssignment(t *testing.T) {
	p := mustCompile(t, `
template T() {
    signal input x;
    signal output o;
    var a[3] = [1, 2, 3];
    var b[3];
    b = a;
    b[0] = 9;
    // a must be unaffected by mutating b (deep copy semantics)
    o <== x * (a[0]*100 + b[0]);
}
component main = T();
`)
	w := p.MustWitness(InputsFromInts(map[string]int64{"x": 1}))
	if got := wi(p, w, p.OutputNames["o"]); got != 109 {
		t.Errorf("o = %d, want 109", got)
	}
}

func TestConstraintBudgetOverflowReturnsError(t *testing.T) {
	// The overflow used to be a control-flow panic; it must now surface as a
	// positioned compile error through the normal error path.
	src := `
template T() {
    signal input a;
    signal output b[64];
    for (var i = 0; i < 64; i++) { b[i] <== a*a; }
}
component main = T();
`
	_, err := Compile(src, &CompileOptions{MaxConstraints: 8})
	if err == nil {
		t.Fatal("constraint-budget overflow accepted")
	}
	if !strings.Contains(err.Error(), "constraint budget exceeded") {
		t.Fatalf("unexpected error: %v", err)
	}
	var cerr *Error
	if !errors.As(err, &cerr) {
		t.Fatalf("overflow error is not position-tagged: %T %v", err, err)
	}
}

func TestCompilePanicBoundaryWrapsInternalErrors(t *testing.T) {
	// A non-*Error panic inside the compiler (here forced via fault
	// injection) must come back as an "internal error", never escape.
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Kind: faultinject.KindPanic, Site: "circom.compile", Every: 1},
	}})
	defer faultinject.Disable()
	_, err := Compile(`template T() { signal input a; signal output b; b <== a; } component main = T();`, nil)
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUnassignedSignalsGetPerSignalDiagnostics(t *testing.T) {
	// Two offenders must yield two separately source-located diagnostics,
	// not one aggregated message.
	_, err := Compile(`
template T() {
    signal input x;
    signal output o;
    signal m;
    signal n;
    o <== x;
    m * m === x;
    n * n === x;
}
component main = T();`, nil)
	if err == nil {
		t.Fatal("unassigned signals accepted")
	}
	msg := err.Error()
	for _, sig := range []string{"m", "n"} {
		want := fmt.Sprintf("signal %s declared here has no assignment", sig)
		if !strings.Contains(msg, want) {
			t.Errorf("missing diagnostic for %s in:\n%s", sig, msg)
		}
	}
	if !strings.Contains(msg, "T:5:") || !strings.Contains(msg, "T:6:") {
		t.Errorf("diagnostics not source-located:\n%s", msg)
	}
	// errors.Join preserves the individual errors for programmatic access.
	if u, ok := err.(interface{ Unwrap() []error }); !ok || len(u.Unwrap()) != 2 {
		t.Errorf("want a joined error with 2 entries, got %T: %v", err, err)
	}
}

func TestCompileRecordsSourceMetadata(t *testing.T) {
	p := mustCompile(t, `
template Meta() {
    signal input x;
    signal output out;
    signal h;
    h <-- x + 1;
    h === x + 1;
    out <== h * x;
}
component main = Meta();`)
	sys := p.System
	byName := func(name string) r1cs.Signal {
		sig, ok := sys.SignalByName(name)
		if !ok {
			t.Fatalf("no signal %s", name)
		}
		return sig
	}
	h, out := byName("h"), byName("out")
	if !h.Hinted {
		t.Error("h not marked hinted despite <--")
	}
	if out.Hinted {
		t.Error("out marked hinted despite <==")
	}
	for _, sig := range []r1cs.Signal{h, out} {
		if sig.Loc.IsZero() || sig.Loc.Template != "Meta" {
			t.Errorf("signal %s missing declaration loc: %+v", sig.Name, sig.Loc)
		}
	}
	// The <== constraint must carry Def=out and a statement location; the
	// pure === constraint must carry a location but no Def.
	defCons, eqCons := -1, -1
	for i := 0; i < sys.NumConstraints(); i++ {
		c := sys.Constraint(i)
		if c.Def == out.ID {
			defCons = i
		} else if c.Def == 0 {
			eqCons = i
		}
	}
	if defCons == -1 {
		t.Fatal("no constraint with Def=out")
	}
	if sys.Constraint(defCons).Loc.IsZero() {
		t.Error("<== constraint missing loc")
	}
	if eqCons == -1 {
		t.Fatal("no pure === constraint")
	}
	if sys.Constraint(eqCons).Loc.IsZero() {
		t.Error("=== constraint missing loc")
	}
}
