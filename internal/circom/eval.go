package circom

import (
	"errors"
	"math/big"

	"qed2/internal/poly"
)

// errSignalInConst marks a compile-time evaluation that encountered a
// signal; callers use it to distinguish "not a constant" from hard errors.
var errSignalInConst = errors.New("expression depends on a signal")

// symRes is a signal-dependent value stored in a var, mirroring circom's
// semantics where variables may accumulate symbolic expressions over
// signals (e.g. `lc += out[i] * e2`). sym is the constraint-side view and
// is nil when the expression exceeds degree 2 or uses non-arithmetic
// operators; wx is the witness-side residual expression and is always set.
type symRes struct {
	sym *symVal
	wx  WExpr
}

// evalValue evaluates an expression to a var-storable value: a constant
// (scalar or array) when signal-free, otherwise a symRes capturing both the
// symbolic and witness views.
func (e *env) evalValue(x Expr) (cval, error) {
	v, err := e.evalConst(x)
	if err == nil {
		return v, nil
	}
	if !isSignalErr(err) {
		return nil, err
	}
	if e.isFn {
		return nil, err // functions are signal-free
	}
	wx, werr := e.buildWExpr(x)
	if werr != nil {
		return nil, werr
	}
	sym, serr := e.evalSym(x)
	if serr != nil {
		sym = nil // usable only in witness position; constraint use re-errors
	}
	return &symRes{sym: sym, wx: wx}, nil
}

// liftScalar views any scalar value through the (symbolic, witness) pair.
func (e *env) liftScalar(v cval, pos Pos) (*symVal, WExpr, error) {
	switch x := v.(type) {
	case *big.Int:
		return symConst(e.c.f, x), &WConst{V: new(big.Int).Set(x)}, nil
	case *symRes:
		return x.sym, x.wx, nil
	case *arrVal:
		return nil, nil, errAt(pos, "array used as scalar")
	default:
		return nil, nil, errAt(pos, "internal: bad value %T", v)
	}
}

// --- compile-time (constant) evaluation -------------------------------------------

// evalConst evaluates an expression in the compile-time domain (variables,
// parameters, function calls). Signals are rejected with errSignalInConst.
func (e *env) evalConst(x Expr) (cval, error) {
	switch ex := x.(type) {
	case *NumberLit:
		return e.c.f.Reduce(ex.Val), nil
	case *StringLit:
		return nil, errAt(ex.Pos, "string literal outside log()")
	case *Ident, *IndexExpr, *MemberExpr:
		r, err := e.resolveRef(x)
		if err != nil {
			return nil, err
		}
		return e.readConstRef(r)
	case *CallExpr:
		return e.callFunction(ex)
	case *UnaryExpr:
		v, err := e.evalConstScalar(ex.X)
		if err != nil {
			return nil, err
		}
		out, err := applyUn(e.c.f, ex.Op, v)
		if err != nil {
			return nil, errAt(ex.Pos, "%v", err)
		}
		return out, nil
	case *BinaryExpr:
		l, err := e.evalConstScalar(ex.L)
		if err != nil {
			return nil, err
		}
		// Short-circuit booleans.
		switch ex.Op {
		case TokAndAnd:
			if !truthy(l) {
				return boolElt(false), nil
			}
			r, err := e.evalConstScalar(ex.R)
			if err != nil {
				return nil, err
			}
			return boolElt(truthy(r)), nil
		case TokOrOr:
			if truthy(l) {
				return boolElt(true), nil
			}
			r, err := e.evalConstScalar(ex.R)
			if err != nil {
				return nil, err
			}
			return boolElt(truthy(r)), nil
		}
		r, err := e.evalConstScalar(ex.R)
		if err != nil {
			return nil, err
		}
		out, err := applyBin(e.c.f, ex.Op, l, r)
		if err != nil {
			return nil, errAt(ex.Pos, "%v", err)
		}
		return out, nil
	case *CondExpr:
		c, err := e.evalConstScalar(ex.C)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return e.evalConst(ex.T)
		}
		return e.evalConst(ex.F)
	case *ArrayLit:
		return e.evalArrayLit(ex)
	default:
		return nil, errAt(x.exprPos(), "internal: unknown expression %T", x)
	}
}

// readConstRef reads a resolved reference as a compile-time value.
func (e *env) readConstRef(r *ref) (cval, error) {
	switch r.kind {
	case refSig:
		return nil, &Error{Pos: r.pos, Msg: errSignalInConst.Error()}
	case refComp:
		return nil, errAt(r.pos, "component used as value")
	}
	switch v := r.cell.val.(type) {
	case *big.Int:
		if len(r.idx) != 0 {
			return nil, errAt(r.pos, "indexing a scalar variable")
		}
		return v, nil
	case *symRes:
		return nil, &Error{Pos: r.pos, Msg: errSignalInConst.Error()}
	case *arrVal:
		if len(r.idx) == len(v.dims) {
			return v.elems[flattenIndex(v.dims, r.idx)], nil
		}
		// Partial read: a sub-array (used to pass array slices to functions).
		sub := v.dims[len(r.idx):]
		stride := dimsProduct(sub)
		base := 0
		for i, k := range r.idx {
			base = base*v.dims[i] + k
		}
		base *= stride
		out := &arrVal{dims: append([]int(nil), sub...), elems: make([]*big.Int, stride)}
		for i := 0; i < stride; i++ {
			out.elems[i] = new(big.Int).Set(v.elems[base+i])
		}
		return out, nil
	default:
		return nil, errAt(r.pos, "internal: bad var value %T", r.cell.val)
	}
}

// isSignalErr reports whether err is (or wraps) errSignalInConst.
func isSignalErr(err error) bool {
	if errors.Is(err, errSignalInConst) {
		return true
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Msg == errSignalInConst.Error()
	}
	return false
}

// evalConstScalar evaluates to a scalar field element.
func (e *env) evalConstScalar(x Expr) (*big.Int, error) {
	v, err := e.evalConst(x)
	if err != nil {
		return nil, err
	}
	s, ok := v.(*big.Int)
	if !ok {
		return nil, errAt(x.exprPos(), "expected scalar, got array")
	}
	return s, nil
}

func (e *env) evalArrayLit(lit *ArrayLit) (cval, error) {
	if len(lit.Elems) == 0 {
		return nil, errAt(lit.Pos, "empty array literal")
	}
	vals := make([]cval, len(lit.Elems))
	for i, el := range lit.Elems {
		v, err := e.evalConst(el)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	switch first := vals[0].(type) {
	case *big.Int:
		out := &arrVal{dims: []int{len(vals)}, elems: make([]*big.Int, len(vals))}
		for i, v := range vals {
			s, ok := v.(*big.Int)
			if !ok {
				return nil, errAt(lit.Pos, "mixed scalar/array elements in array literal")
			}
			out.elems[i] = e.c.f.Reduce(s)
		}
		return out, nil
	case *arrVal:
		inner := first.dims
		out := &arrVal{dims: append([]int{len(vals)}, inner...)}
		for i, v := range vals {
			a, ok := v.(*arrVal)
			if !ok || dimsProduct(a.dims) != dimsProduct(inner) {
				return nil, errAt(lit.Pos, "ragged array literal at element %d", i)
			}
			out.elems = append(out.elems, a.clone().elems...)
		}
		return out, nil
	default:
		return nil, errAt(lit.Pos, "internal: bad array literal element %T", vals[0])
	}
}

// callFunction executes a compile-time function.
func (e *env) callFunction(call *CallExpr) (cval, error) {
	fn, ok := e.c.functions[call.Name]
	if !ok {
		if _, isTemplate := e.c.templates[call.Name]; isTemplate {
			return nil, errAt(call.Pos, "template %q called as function (instantiate it with `component`)", call.Name)
		}
		return nil, errAt(call.Pos, "unknown function %q", call.Name)
	}
	if len(call.Args) != len(fn.Params) {
		return nil, errAt(call.Pos, "function %s expects %d arguments, got %d", call.Name, len(fn.Params), len(call.Args))
	}
	e.c.depth++
	defer func() { e.c.depth-- }()
	if e.c.depth > e.c.opts.MaxDepth {
		return nil, errAt(call.Pos, "call nesting exceeds %d (unbounded recursion?)", e.c.opts.MaxDepth)
	}
	fe := &env{c: e.c, scopes: []map[string]any{{}}, isFn: true}
	for i, p := range fn.Params {
		v, err := e.evalConst(call.Args[i])
		if err != nil {
			return nil, err
		}
		if err := fe.declare(p, &varCell{val: cloneCval(v)}, call.Pos); err != nil {
			return nil, err
		}
	}
	if err := fe.execBlock(fn.Body); err != nil {
		return nil, err
	}
	if !fe.done {
		return nil, errAt(fn.Pos, "function %s finished without returning a value", fn.Name)
	}
	return fe.retVal, nil
}

// --- symbolic evaluation (constraint emission) --------------------------------------

// evalSym evaluates an expression in the symbolic domain over signals,
// enforcing Circom's "at most quadratic" discipline.
func (e *env) evalSym(x Expr) (*symVal, error) {
	switch ex := x.(type) {
	case *NumberLit:
		return symConst(e.c.f, ex.Val), nil
	case *Ident, *IndexExpr, *MemberExpr:
		r, err := e.resolveRef(x)
		if err != nil {
			return nil, err
		}
		if r.kind == refSig {
			id, err := r.scalarSignal()
			if err != nil {
				return nil, err
			}
			return symLin(e.c.f, poly.Var(e.c.f, id)), nil
		}
		if r.kind == refVar && len(r.idx) == 0 {
			if sr, ok := r.cell.val.(*symRes); ok {
				if sr.sym == nil {
					return nil, errAt(x.exprPos(), "variable holds a non-quadratic signal expression; it cannot appear in a constraint")
				}
				return sr.sym, nil
			}
		}
		v, err := e.readConstRef(r)
		if err != nil {
			return nil, err
		}
		s, ok := v.(*big.Int)
		if !ok {
			return nil, errAt(x.exprPos(), "array used as scalar in constraint expression")
		}
		return symConst(e.c.f, s), nil
	case *CallExpr:
		v, err := e.callFunction(ex)
		if err != nil {
			return nil, err
		}
		s, ok := v.(*big.Int)
		if !ok {
			return nil, errAt(ex.Pos, "function returning array used as scalar")
		}
		return symConst(e.c.f, s), nil
	case *UnaryExpr:
		v, err := e.evalSym(ex.X)
		if err != nil {
			return nil, err
		}
		if ex.Op == TokMinus {
			return symNeg(v), nil
		}
		c, ok := v.isConst()
		if !ok {
			return nil, errAt(ex.Pos, "operator %q on a signal-dependent value is not quadratic", ex.Op.String())
		}
		out, err := applyUn(e.c.f, ex.Op, c)
		if err != nil {
			return nil, errAt(ex.Pos, "%v", err)
		}
		return symConst(e.c.f, out), nil
	case *BinaryExpr:
		l, err := e.evalSym(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalSym(ex.R)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case TokPlus:
			out, err := symAdd(l, r)
			if err != nil {
				return nil, errAt(ex.Pos, "%v", err)
			}
			return out, nil
		case TokMinus:
			out, err := symSub(l, r)
			if err != nil {
				return nil, errAt(ex.Pos, "%v", err)
			}
			return out, nil
		case TokStar:
			out, err := symMul(l, r)
			if err != nil {
				return nil, errAt(ex.Pos, "%v", err)
			}
			return out, nil
		case TokSlash:
			out, err := symDiv(l, r)
			if err != nil {
				return nil, errAt(ex.Pos, "%v", err)
			}
			return out, nil
		case TokPow:
			return e.symPow(ex, l, r)
		default:
			lc, lok := l.isConst()
			rc, rok := r.isConst()
			if !lok || !rok {
				return nil, errAt(ex.Pos, "operator %q on signal-dependent values is not allowed in constraints", ex.Op.String())
			}
			out, err := applyBin(e.c.f, ex.Op, lc, rc)
			if err != nil {
				return nil, errAt(ex.Pos, "%v", err)
			}
			return symConst(e.c.f, out), nil
		}
	case *CondExpr:
		c, err := e.evalConstScalar(ex.C)
		if err != nil {
			if isSignalErr(err) {
				return nil, errAt(ex.Pos, "ternary condition in a constraint must be signal-free")
			}
			return nil, err
		}
		if truthy(c) {
			return e.evalSym(ex.T)
		}
		return e.evalSym(ex.F)
	case *ArrayLit:
		return nil, errAt(ex.Pos, "array literal in constraint expression")
	default:
		return nil, errAt(x.exprPos(), "internal: unknown expression %T", x)
	}
}

// symPow handles ** in constraint expressions: the exponent must be a
// constant; small exponents on linear bases unfold into products.
func (e *env) symPow(ex *BinaryExpr, base, exp *symVal) (*symVal, error) {
	ec, ok := exp.isConst()
	if !ok {
		return nil, errAt(ex.Pos, "exponent must be signal-free")
	}
	if bc, ok := base.isConst(); ok {
		return symConst(e.c.f, e.c.f.ExpBig(bc, ec)), nil
	}
	if !ec.IsInt64() {
		return nil, errAt(ex.Pos, "signal raised to a huge exponent is not quadratic")
	}
	switch ec.Int64() {
	case 0:
		return symConst(e.c.f, big.NewInt(1)), nil
	case 1:
		return base, nil
	case 2:
		out, err := symMul(base, base)
		if err != nil {
			return nil, errAt(ex.Pos, "%v", err)
		}
		return out, nil
	default:
		return nil, errAt(ex.Pos, "signal raised to power %v exceeds degree 2; introduce intermediate signals", ec)
	}
}

// --- witness-expression construction -------------------------------------------------

// buildWExpr partially evaluates an expression for witness generation:
// compile-time parts are folded to constants, signal references remain
// symbolic, and every Circom operator (including division, comparisons and
// bit operations on signals) is preserved as a residual node.
func (e *env) buildWExpr(x Expr) (WExpr, error) {
	switch ex := x.(type) {
	case *NumberLit:
		return &WConst{V: e.c.f.Reduce(ex.Val)}, nil
	case *Ident, *IndexExpr, *MemberExpr:
		r, err := e.resolveRef(x)
		if err != nil {
			return nil, err
		}
		if r.kind == refSig {
			id, err := r.scalarSignal()
			if err != nil {
				return nil, err
			}
			return &WSig{ID: id}, nil
		}
		if r.kind == refVar && len(r.idx) == 0 {
			if sr, ok := r.cell.val.(*symRes); ok {
				return sr.wx, nil
			}
		}
		v, err := e.readConstRef(r)
		if err != nil {
			return nil, err
		}
		s, ok := v.(*big.Int)
		if !ok {
			return nil, errAt(x.exprPos(), "array used as scalar")
		}
		return &WConst{V: new(big.Int).Set(s)}, nil
	case *CallExpr:
		v, err := e.callFunction(ex)
		if err != nil {
			return nil, err
		}
		s, ok := v.(*big.Int)
		if !ok {
			return nil, errAt(ex.Pos, "function returning array used as scalar")
		}
		return &WConst{V: s}, nil
	case *UnaryExpr:
		xw, err := e.buildWExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if c, ok := xw.(*WConst); ok {
			if v, err := applyUn(e.c.f, ex.Op, c.V); err == nil {
				return &WConst{V: v}, nil
			}
		}
		return &WUn{Op: ex.Op, X: xw}, nil
	case *BinaryExpr:
		l, err := e.buildWExpr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := e.buildWExpr(ex.R)
		if err != nil {
			return nil, err
		}
		lc, lok := l.(*WConst)
		rc, rok := r.(*WConst)
		if lok && rok {
			// Fold when the operation succeeds; a failing fold (e.g. 1/0 in
			// a dead conditional branch) stays residual so only actual
			// execution can fail.
			if v, err := applyBin(e.c.f, ex.Op, lc.V, rc.V); err == nil {
				return &WConst{V: v}, nil
			}
		}
		return &WBin{Op: ex.Op, L: l, R: r}, nil
	case *CondExpr:
		c, err := e.buildWExpr(ex.C)
		if err != nil {
			return nil, err
		}
		if cc, ok := c.(*WConst); ok {
			if truthy(cc.V) {
				return e.buildWExpr(ex.T)
			}
			return e.buildWExpr(ex.F)
		}
		t, err := e.buildWExpr(ex.T)
		if err != nil {
			return nil, err
		}
		f, err := e.buildWExpr(ex.F)
		if err != nil {
			return nil, err
		}
		return &WCond{C: c, T: t, F: f}, nil
	case *ArrayLit:
		return nil, errAt(ex.Pos, "array literal cannot be assigned to a signal")
	case *StringLit:
		return nil, errAt(ex.Pos, "string literal cannot be assigned to a signal")
	default:
		return nil, errAt(x.exprPos(), "internal: unknown expression %T", x)
	}
}
