package circom

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("signal input in; out <== a*b + 0x1F;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokSignal, TokInput, TokIdent, TokSemi,
		TokIdent, TokAssignCon, TokIdent, TokStar, TokIdent, TokPlus, TokNumber, TokSemi,
		TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[10].Text != "0x1F" {
		t.Errorf("hex literal text = %q", toks[10].Text)
	}
}

func TestLexOperatorsMaximalMunch(t *testing.T) {
	cases := map[string]TokKind{
		"<==": TokAssignCon, "==>": TokAssignConR, "<--": TokAssignSig,
		"-->": TokAssignSigR, "===": TokConstrainEq, "==": TokEq,
		"!=": TokNeq, "<=": TokLeq, ">=": TokGeq, "&&": TokAndAnd,
		"||": TokOrOr, "<<": TokShl, ">>": TokShr, "**": TokPow,
		"++": TokInc, "--": TokDec, "+=": TokPlusAssign, "\\": TokIntDiv,
		"\\=": TokIntDivAssign, "<<=": TokShlAssign, ">>=": TokShrAssign,
		"<": TokLt, "=": TokAssign, "-": TokMinus,
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if len(toks) != 2 || toks[0].Kind != want {
			t.Errorf("Lex(%q) = %v, want single %v", src, toks, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment <== not a token
a /* block
   comment */ b
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 4 {
		t.Errorf("b at line %d, want 4", toks[1].Pos.Line)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`log("hi\n\"x\"")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "hi\n\"x\"" {
		t.Errorf("string token = %+v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "\"unterminated", "/* unterminated", "0x", `"bad \q esc"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("template templet foo signal signals")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokTemplate, TokIdent, TokIdent, TokSignal, TokIdent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions = %v, %v", toks[0].Pos, toks[1].Pos)
	}
	if !strings.Contains(toks[1].Pos.String(), "2:3") {
		t.Errorf("Pos.String = %q", toks[1].Pos.String())
	}
}
