package circom

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"qed2/internal/faultinject"
	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// CompileOptions configures compilation.
type CompileOptions struct {
	// Field is the constraint field; defaults to the BN254 scalar field,
	// matching the circom compiler's default.
	Field *ff.Field
	// Library resolves include "name" directives to source text.
	Library map[string]string
	// MaxSignals bounds the number of signals (default 1 << 20).
	MaxSignals int
	// MaxConstraints bounds the number of constraints (default 1 << 21).
	MaxConstraints int
	// MaxSteps bounds compile-time statement executions (default 50M).
	MaxSteps int64
	// MaxDepth bounds template/function call nesting (default 128).
	MaxDepth int
}

func (o *CompileOptions) withDefaults() CompileOptions {
	out := CompileOptions{}
	if o != nil {
		out = *o
	}
	if out.Field == nil {
		out.Field = ff.BN254()
	}
	if out.MaxSignals == 0 {
		out.MaxSignals = 1 << 20
	}
	if out.MaxConstraints == 0 {
		out.MaxConstraints = 1 << 21
	}
	if out.MaxSteps == 0 {
		out.MaxSteps = 50_000_000
	}
	if out.MaxDepth == 0 {
		out.MaxDepth = 128
	}
	return out
}

// Compile parses src (resolving includes through opts.Library), instantiates
// the main component, and returns the compiled Program.
func Compile(src string, opts *CompileOptions) (*Program, error) {
	o := (&CompileOptions{}).withDefaults()
	if opts != nil {
		o = opts.withDefaults()
	}
	file, err := loadWithIncludes(src, o.Library)
	if err != nil {
		return nil, err
	}
	return CompileFile(file, &o)
}

// loadWithIncludes parses src and, recursively, every included file from
// the library, merging all templates and functions. Duplicate includes are
// loaded once; include cycles are tolerated for the same reason.
func loadWithIncludes(src string, library map[string]string) (*File, error) {
	root, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	loaded := map[string]bool{}
	queue := append([]string(nil), root.Includes...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if loaded[name] {
			continue
		}
		loaded[name] = true
		text, ok := library[name]
		if !ok {
			return nil, fmt.Errorf("circom: include %q not found in library", name)
		}
		inc, err := ParseFile(text)
		if err != nil {
			return nil, fmt.Errorf("circom: in included file %q: %w", name, err)
		}
		if inc.Main != nil {
			return nil, fmt.Errorf("circom: included file %q declares a main component", name)
		}
		root.Templates = append(root.Templates, inc.Templates...)
		root.Functions = append(root.Functions, inc.Functions...)
		queue = append(queue, inc.Includes...)
	}
	return root, nil
}

// CompileFile compiles an already-parsed (and include-merged) file.
//
// The named returns feed the recover boundary: no panic may escape the
// compiler on untrusted input. A recovered *Error (position-tagged) is
// returned as-is; anything else — a genuine compiler bug — is wrapped as an
// "internal error" so the caller still gets an error, not a crash.
func CompileFile(file *File, opts *CompileOptions) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			prog = nil
			if cerr, ok := r.(*Error); ok {
				err = cerr
				return
			}
			err = fmt.Errorf("circom: internal error: %v", r)
		}
	}()
	if faultinject.Enabled() {
		faultinject.Check("circom.compile")
	}
	o := opts.withDefaults()
	if file.Main == nil {
		return nil, errors.New("circom: no main component declared")
	}
	c := &compiler{
		opts:      o,
		f:         o.Field,
		templates: map[string]*Template{},
		functions: map[string]*Function{},
		sys:       r1cs.NewSystem(o.Field),
	}
	for _, t := range file.Templates {
		if _, dup := c.templates[t.Name]; dup {
			return nil, errAt(t.Pos, "duplicate template %q", t.Name)
		}
		c.templates[t.Name] = t
	}
	for _, fn := range file.Functions {
		if _, dup := c.functions[fn.Name]; dup {
			return nil, errAt(fn.Pos, "duplicate function %q", fn.Name)
		}
		c.functions[fn.Name] = fn
	}
	c.prog = &Program{
		System:      c.sys,
		InputNames:  map[string]int{},
		OutputNames: map[string]int{},
	}
	// Evaluate main arguments in a signal-free environment.
	topEnv := &env{c: c, scopes: []map[string]any{{}}}
	args := make([]cval, len(file.Main.Call.Args))
	for i, a := range file.Main.Call.Args {
		v, err := topEnv.evalConst(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	c.assignedSig = append(c.assignedSig, true) // the constant-one signal
	inst, err := c.instantiate(file.Main.Call.Name, args, "", true, file.Main.Pos)
	if err != nil {
		return nil, err
	}
	c.prog.MainTemplate = file.Main.Call.Name
	_ = inst
	// Every non-input signal must have a witness-generation rule. Each
	// offender gets its own diagnostic pointing at the declaration site,
	// rather than one aggregated location-free message.
	var unassigned []error
	for id := 1; id < c.sys.NumSignals(); id++ {
		sig := c.sys.Signal(id)
		if !c.assignedSig[id] && sig.Kind != r1cs.KindInput {
			if sig.Loc.IsZero() {
				unassigned = append(unassigned, fmt.Errorf("circom: signal %s has no assignment (<== or <--)", sig.Name))
			} else {
				unassigned = append(unassigned, fmt.Errorf("circom: %s: signal %s declared here has no assignment (<== or <--)", sig.Loc, sig.Name))
			}
		}
	}
	if len(unassigned) > 0 {
		return nil, errors.Join(unassigned...)
	}
	return c.prog, nil
}

// --- compiler state --------------------------------------------------------------

type compiler struct {
	opts      CompileOptions
	f         *ff.Field
	templates map[string]*Template
	functions map[string]*Function
	prog      *Program
	sys       *r1cs.System
	steps     int64
	depth     int
	// assignedSig[id] records that signal id has a witness assignment.
	assignedSig []bool
}

func (c *compiler) step(pos Pos) error {
	c.steps++
	if c.steps > c.opts.MaxSteps {
		return errAt(pos, "compilation step budget exceeded (%d steps): possible unbounded loop", c.opts.MaxSteps)
	}
	return nil
}

// cval is the compile-time value domain: *big.Int or *arrVal.
type cval any

// arrVal is a (possibly multi-dimensional) array of field elements, stored
// flattened row-major.
type arrVal struct {
	dims  []int
	elems []*big.Int
}

func newArr(f *ff.Field, dims []int) *arrVal {
	n := 1
	for _, d := range dims {
		n *= d
	}
	a := &arrVal{dims: dims, elems: make([]*big.Int, n)}
	for i := range a.elems {
		a.elems[i] = new(big.Int)
	}
	return a
}

func (a *arrVal) clone() *arrVal {
	out := &arrVal{dims: append([]int(nil), a.dims...), elems: make([]*big.Int, len(a.elems))}
	for i, e := range a.elems {
		out.elems[i] = new(big.Int).Set(e)
	}
	return out
}

func cloneCval(v cval) cval {
	switch x := v.(type) {
	case *big.Int:
		return new(big.Int).Set(x)
	case *arrVal:
		return x.clone()
	case *symRes:
		// symVal and WExpr values are treated as immutable; share them.
		return &symRes{sym: x.sym, wx: x.wx}
	default:
		return v
	}
}

// dimsProduct returns the flattened length of dims.
func dimsProduct(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// flattenIndex converts a full index list into a flat offset.
func flattenIndex(dims, idx []int) int {
	off := 0
	for i, d := range dims {
		off = off*d + idx[i]
	}
	return off
}

// --- bindings -----------------------------------------------------------------

type varCell struct{ val cval }

type sigGroup struct {
	class SignalClass
	dims  []int
	ids   []int // flattened signal IDs
	name  string
}

type subInstance struct {
	tmplName string
	signals  map[string]*sigGroup
	// inputsTotal/inputsSet track subcomponent input wiring completeness.
	inputsTotal int
	inputsSet   int
}

type compGroup struct {
	dims  []int
	slots []*subInstance // nil until instantiated
	name  string
	pos   Pos
}

// env is a lexical environment for one template instantiation or function
// call.
type env struct {
	c      *compiler
	prefix string // signal name prefix, e.g. "c[2]." for subcomponents
	scopes []map[string]any
	inst   *subInstance // non-nil in template mode
	isTop  bool         // instantiating the main component
	isFn   bool         // executing a function body
	retVal cval
	done   bool // a return statement has executed
}

func (e *env) pushScope() { e.scopes = append(e.scopes, map[string]any{}) }
func (e *env) popScope()  { e.scopes = e.scopes[:len(e.scopes)-1] }

// loc converts a source position into the r1cs metadata form, naming the
// template currently being instantiated.
func (e *env) loc(pos Pos) r1cs.SourceLoc {
	tmpl := ""
	if e.inst != nil {
		tmpl = e.inst.tmplName
	}
	return r1cs.SourceLoc{Template: tmpl, Line: pos.Line, Col: pos.Col}
}

func (e *env) lookup(name string) (any, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if b, ok := e.scopes[i][name]; ok {
			return b, true
		}
	}
	return nil, false
}

func (e *env) declare(name string, b any, pos Pos) error {
	top := e.scopes[len(e.scopes)-1]
	if _, dup := top[name]; dup {
		return errAt(pos, "redeclaration of %q", name)
	}
	top[name] = b
	return nil
}

// --- template instantiation ----------------------------------------------------

func (c *compiler) instantiate(name string, args []cval, prefix string, top bool, pos Pos) (*subInstance, error) {
	tmpl, ok := c.templates[name]
	if !ok {
		return nil, errAt(pos, "unknown template %q", name)
	}
	if len(args) != len(tmpl.Params) {
		return nil, errAt(pos, "template %s expects %d parameters, got %d", name, len(tmpl.Params), len(args))
	}
	c.depth++
	defer func() { c.depth-- }()
	if c.depth > c.opts.MaxDepth {
		return nil, errAt(pos, "template nesting exceeds %d (recursive instantiation?)", c.opts.MaxDepth)
	}
	inst := &subInstance{tmplName: name, signals: map[string]*sigGroup{}}
	e := &env{c: c, prefix: prefix, scopes: []map[string]any{{}}, inst: inst, isTop: top}
	for i, p := range tmpl.Params {
		if err := e.declare(p, &varCell{val: cloneCval(args[i])}, tmpl.Pos); err != nil {
			return nil, err
		}
	}
	e.pushScope() // body scope
	if err := e.execBlock(tmpl.Body); err != nil {
		return nil, err
	}
	return inst, nil
}

// --- statement execution --------------------------------------------------------

func (e *env) execBlock(b *Block) error {
	e.pushScope()
	defer e.popScope()
	for _, s := range b.Stmts {
		if err := e.execStmt(s); err != nil {
			return err
		}
		if e.done {
			return nil
		}
	}
	return nil
}

func (e *env) execStmt(s Stmt) error {
	if err := e.c.step(s.stmtPos()); err != nil {
		return err
	}
	switch st := s.(type) {
	case *Block:
		return e.execBlock(st)
	case *VarDecl:
		return e.execVarDecl(st)
	case *SignalDecl:
		return e.execSignalDecl(st)
	case *ComponentDecl:
		return e.execComponentDecl(st)
	case *AssignStmt:
		return e.execAssign(st)
	case *ConstraintStmt:
		return e.execConstraint(st)
	case *IncDecStmt:
		op := TokPlusAssign
		if st.Op == TokDec {
			op = TokMinusAssign
		}
		return e.execAssign(&AssignStmt{
			LHS: st.LHS, Op: op,
			RHS: &NumberLit{Val: big.NewInt(1), Pos: st.Pos},
			Pos: st.Pos,
		})
	case *ForStmt:
		e.pushScope()
		defer e.popScope()
		if st.Init != nil {
			if err := e.execStmt(st.Init); err != nil {
				return err
			}
		}
		for {
			if st.Cond != nil {
				v, err := e.evalConstScalar(st.Cond)
				if err != nil {
					return err
				}
				if !truthy(v) {
					break
				}
			}
			if err := e.execBlock(st.Body); err != nil {
				return err
			}
			if e.done {
				return nil
			}
			if st.Post != nil {
				if err := e.execStmt(st.Post); err != nil {
					return err
				}
			}
			if err := e.c.step(st.Pos); err != nil {
				return err
			}
		}
		return nil
	case *WhileStmt:
		for {
			v, err := e.evalConstScalar(st.Cond)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
			if err := e.execBlock(st.Body); err != nil {
				return err
			}
			if e.done {
				return nil
			}
			if err := e.c.step(st.Pos); err != nil {
				return err
			}
		}
	case *IfStmt:
		v, err := e.evalConstScalar(st.Cond)
		if err != nil {
			return err
		}
		if truthy(v) {
			return e.execBlock(st.Then)
		}
		if st.Else != nil {
			return e.execStmt(st.Else)
		}
		return nil
	case *ReturnStmt:
		if !e.isFn {
			return errAt(st.Pos, "return outside function")
		}
		v, err := e.evalConst(st.Value)
		if err != nil {
			return err
		}
		e.retVal = cloneCval(v)
		e.done = true
		return nil
	case *AssertStmt:
		return e.execAssert(st)
	case *LogStmt:
		return e.execLog(st)
	default:
		return errAt(s.stmtPos(), "internal: unknown statement %T", s)
	}
}

func (e *env) execVarDecl(st *VarDecl) error {
	for _, d := range st.Decls {
		dims, err := e.evalDims(d.Dims)
		if err != nil {
			return err
		}
		var val cval
		if len(dims) == 0 {
			val = new(big.Int)
		} else {
			val = newArr(e.c.f, dims)
		}
		if d.Init != nil {
			iv, err := e.evalValue(d.Init)
			if err != nil {
				return err
			}
			val, err = coerceInit(iv, dims, d.Pos)
			if err != nil {
				return err
			}
		}
		if err := e.declare(d.Name, &varCell{val: val}, d.Pos); err != nil {
			return err
		}
	}
	return nil
}

// coerceInit checks that an initializer value matches the declared dims.
func coerceInit(v cval, dims []int, pos Pos) (cval, error) {
	switch x := v.(type) {
	case *big.Int:
		if len(dims) != 0 {
			return nil, errAt(pos, "array variable initialized with scalar")
		}
		return cloneCval(x), nil
	case *symRes:
		if len(dims) != 0 {
			return nil, errAt(pos, "array variable initialized with a signal-dependent scalar")
		}
		return x, nil
	case *arrVal:
		if len(dims) == 0 {
			return nil, errAt(pos, "scalar variable initialized with array")
		}
		if dimsProduct(dims) != len(x.elems) {
			return nil, errAt(pos, "array initializer size mismatch: declared %v, got %d elements", dims, len(x.elems))
		}
		out := x.clone()
		out.dims = append([]int(nil), dims...)
		return out, nil
	default:
		return nil, errAt(pos, "internal: bad initializer value %T", v)
	}
}

func (e *env) execSignalDecl(st *SignalDecl) error {
	if e.isFn {
		return errAt(st.Pos, "signal declaration inside function")
	}
	for _, d := range st.Decls {
		dims, err := e.evalDims(d.Dims)
		if err != nil {
			return err
		}
		if _, dup := e.inst.signals[d.Name]; dup {
			return errAt(d.Pos, "redeclaration of signal %q", d.Name)
		}
		g := &sigGroup{class: st.Class, dims: dims, name: d.Name}
		n := dimsProduct(dims)
		for i := 0; i < n; i++ {
			fullName := e.prefix + d.Name + indexSuffix(dims, i)
			kind := r1cs.KindInternal
			if e.isTop {
				switch st.Class {
				case SignalInput:
					kind = r1cs.KindInput
				case SignalOutput:
					kind = r1cs.KindOutput
				}
			}
			if e.c.sys.NumSignals() >= e.c.opts.MaxSignals {
				return errAt(d.Pos, "signal budget exceeded (%d)", e.c.opts.MaxSignals)
			}
			id := e.c.sys.AddSignal(fullName, kind)
			e.c.sys.SetSignalLoc(id, e.loc(d.Pos))
			e.c.assignedSig = append(e.c.assignedSig, false)
			g.ids = append(g.ids, id)
			if e.isTop {
				rel := d.Name + indexSuffix(dims, i)
				switch st.Class {
				case SignalInput:
					e.c.prog.InputNames[rel] = id
				case SignalOutput:
					e.c.prog.OutputNames[rel] = id
				}
			}
			if st.Class == SignalInput {
				e.inst.inputsTotal++
			}
		}
		e.inst.signals[d.Name] = g
		if err := e.declare(d.Name, g, d.Pos); err != nil {
			return err
		}
	}
	return nil
}

// indexSuffix renders the multi-dimensional index of flat offset i, e.g.
// "[2][0]"; empty for scalars.
func indexSuffix(dims []int, flat int) string {
	if len(dims) == 0 {
		return ""
	}
	idx := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		idx[i] = flat % dims[i]
		flat /= dims[i]
	}
	var b strings.Builder
	for _, k := range idx {
		fmt.Fprintf(&b, "[%d]", k)
	}
	return b.String()
}

func (e *env) execComponentDecl(st *ComponentDecl) error {
	if e.isFn {
		return errAt(st.Pos, "component declaration inside function")
	}
	for _, d := range st.Decls {
		dims, err := e.evalDims(d.Dims)
		if err != nil {
			return err
		}
		g := &compGroup{dims: dims, slots: make([]*subInstance, dimsProduct(dims)), name: d.Name, pos: d.Pos}
		if err := e.declare(d.Name, g, d.Pos); err != nil {
			return err
		}
		if d.Init != nil {
			if len(dims) != 0 {
				return errAt(d.Pos, "component array cannot have a direct initializer")
			}
			if err := e.instantiateInto(g, 0, d.Init, d.Pos); err != nil {
				return err
			}
		}
	}
	return nil
}

// instantiateInto fills slot flat of group g from a template call expression.
func (e *env) instantiateInto(g *compGroup, flat int, call Expr, pos Pos) error {
	ce, ok := call.(*CallExpr)
	if !ok {
		return errAt(pos, "component initializer must be a template instantiation")
	}
	if g.slots[flat] != nil {
		return errAt(pos, "component %s%s instantiated twice", g.name, indexSuffix(g.dims, flat))
	}
	args := make([]cval, len(ce.Args))
	for i, a := range ce.Args {
		v, err := e.evalConst(a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	childPrefix := e.prefix + g.name + indexSuffix(g.dims, flat) + "."
	inst, err := e.c.instantiate(ce.Name, args, childPrefix, false, pos)
	if err != nil {
		return err
	}
	g.slots[flat] = inst
	return nil
}

// --- references -----------------------------------------------------------------

// refKind tags resolved references.
type refKind int

const (
	refVar refKind = iota
	refSig
	refComp
)

// ref is a resolved lvalue/rvalue path.
type ref struct {
	kind refKind
	cell *varCell
	sig  *sigGroup
	comp *compGroup
	// inst is set when the signal was reached through a component member.
	inst *subInstance
	// idx are the indices applied so far (len ≤ len(dims)).
	idx []int
	pos Pos
}

// dims returns the declared dimensions of the referenced object.
func (r *ref) dims() []int {
	switch r.kind {
	case refSig:
		return r.sig.dims
	case refComp:
		return r.comp.dims
	default:
		if a, ok := r.cell.val.(*arrVal); ok {
			return a.dims
		}
		return nil
	}
}

func (e *env) resolveRef(x Expr) (*ref, error) {
	switch ex := x.(type) {
	case *Ident:
		b, ok := e.lookup(ex.Name)
		if !ok {
			return nil, errAt(ex.Pos, "undefined identifier %q", ex.Name)
		}
		switch bb := b.(type) {
		case *varCell:
			return &ref{kind: refVar, cell: bb, pos: ex.Pos}, nil
		case *sigGroup:
			return &ref{kind: refSig, sig: bb, pos: ex.Pos}, nil
		case *compGroup:
			return &ref{kind: refComp, comp: bb, pos: ex.Pos}, nil
		default:
			return nil, errAt(ex.Pos, "internal: unknown binding %T", b)
		}
	case *IndexExpr:
		base, err := e.resolveRef(ex.X)
		if err != nil {
			return nil, err
		}
		iv, err := e.evalConstScalar(ex.Idx)
		if err != nil {
			return nil, err
		}
		si := e.c.f.SignedBig(iv)
		if !si.IsInt64() {
			return nil, errAt(ex.Pos, "array index out of range: %v", si)
		}
		i := int(si.Int64())
		dims := base.dims()
		if len(base.idx) >= len(dims) {
			return nil, errAt(ex.Pos, "too many indices")
		}
		if i < 0 || i >= dims[len(base.idx)] {
			return nil, errAt(ex.Pos, "index %d out of bounds [0,%d)", i, dims[len(base.idx)])
		}
		base.idx = append(base.idx, i)
		base.pos = ex.Pos
		return base, nil
	case *MemberExpr:
		base, err := e.resolveRef(ex.X)
		if err != nil {
			return nil, err
		}
		if base.kind != refComp {
			return nil, errAt(ex.Pos, "member access on non-component")
		}
		if len(base.idx) != len(base.comp.dims) {
			return nil, errAt(ex.Pos, "component array %s must be fully indexed before member access", base.comp.name)
		}
		inst := base.comp.slots[flattenIndex(base.comp.dims, base.idx)]
		if inst == nil {
			return nil, errAt(ex.Pos, "component %s%s used before instantiation", base.comp.name, indexSuffix(base.comp.dims, flattenIndex(base.comp.dims, base.idx)))
		}
		g, ok := inst.signals[ex.Name]
		if !ok {
			return nil, errAt(ex.Pos, "template %s has no signal %q", inst.tmplName, ex.Name)
		}
		if g.class == SignalIntermediate {
			return nil, errAt(ex.Pos, "intermediate signal %q of %s is not accessible from outside", ex.Name, inst.tmplName)
		}
		return &ref{kind: refSig, sig: g, inst: inst, pos: ex.Pos}, nil
	default:
		return nil, errAt(x.exprPos(), "expression is not addressable")
	}
}

// scalarSignal resolves a reference to a single signal ID.
func (r *ref) scalarSignal() (int, error) {
	if r.kind != refSig {
		return 0, errAt(r.pos, "expected a signal")
	}
	if len(r.idx) != len(r.sig.dims) {
		return 0, errAt(r.pos, "signal array %s requires %d indices, got %d", r.sig.name, len(r.sig.dims), len(r.idx))
	}
	return r.sig.ids[flattenIndex(r.sig.dims, r.idx)], nil
}

// --- assignments and constraints --------------------------------------------------

func (e *env) execAssign(st *AssignStmt) error {
	switch st.Op {
	case TokAssignCon, TokAssignSig:
		return e.execSignalAssign(st)
	}
	// Variable or component assignment.
	r, err := e.resolveRef(st.LHS)
	if err != nil {
		return err
	}
	switch r.kind {
	case refComp:
		if st.Op != TokAssign {
			return errAt(st.Pos, "components only support plain '=' instantiation")
		}
		if len(r.idx) != len(r.comp.dims) {
			return errAt(st.Pos, "component array must be fully indexed for instantiation")
		}
		return e.instantiateInto(r.comp, flattenIndex(r.comp.dims, r.idx), st.RHS, st.Pos)
	case refSig:
		return errAt(st.Pos, "signals must be assigned with <== or <-- (not %q)", st.Op.String())
	}
	// Variable.
	rhs, err := e.evalValue(st.RHS)
	if err != nil {
		return err
	}
	if st.Op == TokAssign {
		return e.storeVar(r, rhs, st.Pos)
	}
	binOp, ok := compoundOps[st.Op]
	if !ok {
		return errAt(st.Pos, "unsupported assignment operator %q", st.Op.String())
	}
	cur, err := e.readVarValue(r)
	if err != nil {
		return err
	}
	// Fast path: both sides constant.
	cv, cok := cur.(*big.Int)
	rv, rok := rhs.(*big.Int)
	if cok && rok {
		nv, err := applyBin(e.c.f, binOp, cv, e.c.f.Reduce(rv))
		if err != nil {
			return errAt(st.Pos, "%v", err)
		}
		return e.storeVar(r, nv, st.Pos)
	}
	// Symbolic path: combine the (symVal, WExpr) views of both sides.
	nv, err := e.combineSymbolic(binOp, cur, rhs, st.Pos)
	if err != nil {
		return err
	}
	return e.storeVar(r, nv, st.Pos)
}

// combineSymbolic applies a binary operator where at least one operand is
// signal-dependent, producing a symRes var value.
func (e *env) combineSymbolic(op TokKind, l, r cval, pos Pos) (cval, error) {
	ls, lw, err := e.liftScalar(l, pos)
	if err != nil {
		return nil, err
	}
	rs, rw, err := e.liftScalar(r, pos)
	if err != nil {
		return nil, err
	}
	var sym *symVal
	if ls != nil && rs != nil {
		var serr error
		switch op {
		case TokPlus:
			sym, serr = symAdd(ls, rs)
		case TokMinus:
			sym, serr = symSub(ls, rs)
		case TokStar:
			sym, serr = symMul(ls, rs)
		case TokSlash:
			sym, serr = symDiv(ls, rs)
		default:
			serr = errors.New("non-arithmetic operator")
		}
		if serr != nil {
			sym = nil // witness-only value from here on
		}
	}
	var wx WExpr = &WBin{Op: op, L: lw, R: rw}
	if lc, lok := lw.(*WConst); lok {
		if rc, rok := rw.(*WConst); rok {
			if v, err := applyBin(e.c.f, op, lc.V, rc.V); err == nil {
				wx = &WConst{V: v}
			}
		}
	}
	return &symRes{sym: sym, wx: wx}, nil
}

// readVarValue reads a fully- or un-indexed variable reference.
func (e *env) readVarValue(r *ref) (cval, error) {
	if r.kind != refVar {
		return nil, errAt(r.pos, "expected a variable")
	}
	switch v := r.cell.val.(type) {
	case *big.Int, *symRes:
		if len(r.idx) != 0 {
			return nil, errAt(r.pos, "indexing a scalar variable")
		}
		return v, nil
	case *arrVal:
		if len(r.idx) != len(v.dims) {
			return nil, errAt(r.pos, "partial array read where scalar expected")
		}
		return v.elems[flattenIndex(v.dims, r.idx)], nil
	default:
		return nil, errAt(r.pos, "internal: bad var value %T", r.cell.val)
	}
}

var compoundOps = map[TokKind]TokKind{
	TokPlusAssign:   TokPlus,
	TokMinusAssign:  TokMinus,
	TokStarAssign:   TokStar,
	TokSlashAssign:  TokSlash,
	TokIntDivAssign: TokIntDiv,
	TokPctAssign:    TokPercent,
	TokShlAssign:    TokShl,
	TokShrAssign:    TokShr,
	TokAndAssign:    TokBitAnd,
	TokOrAssign:     TokBitOr,
	TokXorAssign:    TokBitXor,
}

// storeVar writes a value through a variable reference.
func (e *env) storeVar(r *ref, v cval, pos Pos) error {
	if r.kind != refVar {
		return errAt(pos, "left-hand side is not assignable")
	}
	switch cur := r.cell.val.(type) {
	case *big.Int, *symRes:
		if len(r.idx) != 0 {
			return errAt(pos, "indexing a scalar variable")
		}
		switch nv := v.(type) {
		case *big.Int:
			r.cell.val = e.c.f.Reduce(nv)
		case *symRes:
			r.cell.val = nv
		default:
			return errAt(pos, "cannot assign array to scalar variable")
		}
		return nil
	case *arrVal:
		if len(r.idx) == len(cur.dims) {
			nv, ok := v.(*big.Int)
			if !ok {
				if _, isSym := v.(*symRes); isSym {
					return errAt(pos, "array variables cannot hold signal-dependent values; use a signal array")
				}
				return errAt(pos, "cannot assign array to array element")
			}
			cur.elems[flattenIndex(cur.dims, r.idx)] = e.c.f.Reduce(nv)
			return nil
		}
		if len(r.idx) == 0 {
			nv, ok := v.(*arrVal)
			if !ok || dimsProduct(nv.dims) != dimsProduct(cur.dims) {
				return errAt(pos, "array assignment shape mismatch")
			}
			cp := nv.clone()
			cp.dims = append([]int(nil), cur.dims...)
			r.cell.val = cp
			return nil
		}
		return errAt(pos, "partial array assignment is not supported")
	default:
		return errAt(pos, "internal: bad var value %T", r.cell.val)
	}
}

// execSignalAssign handles `target <== expr` and `target <-- expr`.
func (e *env) execSignalAssign(st *AssignStmt) error {
	if e.isFn {
		return errAt(st.Pos, "signal assignment inside function")
	}
	r, err := e.resolveRef(st.LHS)
	if err != nil {
		return err
	}
	id, err := r.scalarSignal()
	if err != nil {
		return err
	}
	// Validate the target: local non-input signal, or sub-component input.
	if r.inst != nil {
		if r.sig.class != SignalInput {
			return errAt(st.Pos, "cannot assign to %s signal %q of sub-component", r.sig.class, r.sig.name)
		}
		r.inst.inputsSet++
	} else if r.sig.class == SignalInput {
		return errAt(st.Pos, "cannot assign to input signal %q", r.sig.name)
	}
	if e.c.assignedSig[id] {
		return errAt(st.Pos, "signal %s assigned twice", e.c.sys.Name(id))
	}
	e.c.assignedSig[id] = true

	if st.Op == TokAssignCon {
		// <== : constrain and assign.
		sym, err := e.evalSym(st.RHS)
		if err != nil {
			return err
		}
		tag := fmt.Sprintf("%s <== @%s", e.c.sys.Name(id), st.Pos)
		if sym.lin != nil {
			if err := e.emitConstraint(
				poly.ConstInt(e.c.f, 1),
				sym.lin,
				poly.Var(e.c.f, id),
				tag, st.Pos, id,
			); err != nil {
				return err
			}
			e.c.prog.Assignments = append(e.c.prog.Assignments, Assignment{
				Target: id, Expr: &WLin{LC: sym.lin}, Constrained: true, Pos: st.Pos,
			})
		} else {
			if err := e.emitConstraint(
				sym.qa,
				sym.qb,
				poly.Var(e.c.f, id).Sub(sym.qc),
				tag, st.Pos, id,
			); err != nil {
				return err
			}
			e.c.prog.Assignments = append(e.c.prog.Assignments, Assignment{
				Target: id, Expr: &WQuad{A: sym.qa, B: sym.qb, C: sym.qc}, Constrained: true, Pos: st.Pos,
			})
		}
		return nil
	}

	// <-- : assign only. This is the dangerous operator: no constraint is
	// emitted, so the prover is free to pick any value unless separate ===
	// constraints pin it down. The hint flag survives into the R1CS so the
	// static-analysis pass can key detectors off it.
	e.c.sys.MarkHinted(id)
	wx, err := e.buildWExpr(st.RHS)
	if err != nil {
		return err
	}
	e.c.prog.Assignments = append(e.c.prog.Assignments, Assignment{
		Target: id, Expr: wx, Constrained: false, Pos: st.Pos,
	})
	return nil
}

// emitConstraint appends a constraint with source metadata; def is the
// signal a `<==` assignment defined with it (0 for pure === checks).
func (e *env) emitConstraint(a, b, c *poly.LinComb, tag string, pos Pos, def int) error {
	if e.c.sys.NumConstraints() >= e.c.opts.MaxConstraints {
		return errAt(pos, "constraint budget exceeded (%d)", e.c.opts.MaxConstraints)
	}
	e.c.sys.AddConstraint(a, b, c, tag)
	ci := e.c.sys.NumConstraints() - 1
	e.c.sys.SetConstraintLoc(ci, e.loc(pos))
	if def != 0 {
		e.c.sys.SetConstraintDef(ci, def)
	}
	return nil
}

func (e *env) execConstraint(st *ConstraintStmt) error {
	if e.isFn {
		return errAt(st.Pos, "constraint inside function")
	}
	l, err := e.evalSym(st.L)
	if err != nil {
		return err
	}
	r, err := e.evalSym(st.R)
	if err != nil {
		return err
	}
	d, err := symSub(l, r)
	if err != nil {
		return errAt(st.Pos, "constraint is not quadratic: %v", err)
	}
	if c, ok := d.isConst(); ok {
		if c.Sign() != 0 {
			return errAt(st.Pos, "constraint is constant-false: %v === 0 is unsatisfiable", e.c.f.SignedBig(c).String())
		}
		// Constant-true constraints are dropped, matching circom.
		return nil
	}
	tag := fmt.Sprintf("=== @%s", st.Pos)
	if d.lin != nil {
		return e.emitConstraint(poly.ConstInt(e.c.f, 1), d.lin, poly.NewLinComb(e.c.f), tag, st.Pos, 0)
	}
	return e.emitConstraint(d.qa, d.qb, d.qc.Neg(), tag, st.Pos, 0)
}

func (e *env) execAssert(st *AssertStmt) error {
	// Compile-time assert when the condition is signal-free; otherwise a
	// witness-time check.
	v, err := e.evalConst(st.Cond)
	if err == nil {
		sv, ok := v.(*big.Int)
		if !ok {
			return errAt(st.Pos, "assert on array value")
		}
		if !truthy(sv) {
			return errAt(st.Pos, "assertion failed")
		}
		return nil
	}
	if !isSignalErr(err) {
		return err
	}
	if e.isFn {
		return err
	}
	wx, werr := e.buildWExpr(st.Cond)
	if werr != nil {
		return werr
	}
	e.c.prog.Checks = append(e.c.prog.Checks, Check{Expr: wx, Pos: st.Pos, Msg: "assert"})
	return nil
}

func (e *env) execLog(st *LogStmt) error {
	var parts []string
	for _, a := range st.Args {
		if s, ok := a.(*StringLit); ok {
			parts = append(parts, s.Val)
			continue
		}
		v, err := e.evalConst(a)
		if err != nil {
			if errors.Is(err, errSignalInConst) {
				parts = append(parts, "<signal>")
				continue
			}
			return err
		}
		switch x := v.(type) {
		case *big.Int:
			parts = append(parts, e.c.f.SignedBig(x).String())
		case *arrVal:
			parts = append(parts, fmt.Sprintf("<array[%d]>", len(x.elems)))
		}
	}
	e.c.prog.Logs = append(e.c.prog.Logs, strings.Join(parts, " "))
	return nil
}

// evalDims evaluates declaration dimensions to positive ints.
func (e *env) evalDims(dims []Expr) ([]int, error) {
	out := make([]int, 0, len(dims))
	for _, d := range dims {
		v, err := e.evalConstScalar(d)
		if err != nil {
			return nil, err
		}
		sv := e.c.f.SignedBig(v)
		if !sv.IsInt64() || sv.Int64() < 0 || sv.Int64() > 1<<24 {
			return nil, errAt(d.exprPos(), "array dimension out of range: %v", sv)
		}
		out = append(out, int(sv.Int64()))
	}
	return out, nil
}
