package circom

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// WExpr is a residual witness-time expression: the compile-time parts
// (variables, parameters, constant folding) have been evaluated away and
// only signal references remain. WExprs are produced for the right-hand
// sides of <-- and <== and are executed by the witness generator.
type WExpr interface {
	// Eval evaluates the expression; at reads a signal value.
	Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error)
	// AddDeps inserts every referenced signal ID into deps.
	AddDeps(deps map[int]bool)
	// String renders the expression with x<i> signal names.
	String() string
}

// WConst is a constant. The value stays in big.Int form — it is produced by
// the compile-time evaluator — and converts once per read at witness time.
type WConst struct{ V *big.Int }

// WSig reads a signal.
type WSig struct{ ID int }

// WBin applies a binary operator.
type WBin struct {
	Op   TokKind
	L, R WExpr
}

// WUn applies a unary operator.
type WUn struct {
	Op TokKind
	X  WExpr
}

// WCond is a witness-time select c ? t : f.
type WCond struct{ C, T, F WExpr }

// WLin evaluates a linear combination of signals (fast path for <==).
type WLin struct{ LC *poly.LinComb }

// WQuad evaluates A·B + C (fast path for quadratic <==).
type WQuad struct{ A, B, C *poly.LinComb }

// Eval implements WExpr.
func (w *WConst) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	return f.FromBig(w.V), nil
}

// AddDeps implements WExpr.
func (w *WConst) AddDeps(map[int]bool) {}

// String implements WExpr.
func (w *WConst) String() string { return w.V.String() }

// Eval implements WExpr.
func (w *WSig) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) { return at(w.ID), nil }

// AddDeps implements WExpr.
func (w *WSig) AddDeps(deps map[int]bool) { deps[w.ID] = true }

// String implements WExpr.
func (w *WSig) String() string { return fmt.Sprintf("x%d", w.ID) }

// Eval implements WExpr.
func (w *WBin) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	l, err := w.L.Eval(f, at)
	if err != nil {
		return ff.Element{}, err
	}
	// Short-circuit boolean operators.
	switch w.Op {
	case TokAndAnd:
		if l.IsZero() {
			return boolEltOf(f, false), nil
		}
		r, err := w.R.Eval(f, at)
		if err != nil {
			return ff.Element{}, err
		}
		return boolEltOf(f, !r.IsZero()), nil
	case TokOrOr:
		if !l.IsZero() {
			return boolEltOf(f, true), nil
		}
		r, err := w.R.Eval(f, at)
		if err != nil {
			return ff.Element{}, err
		}
		return boolEltOf(f, !r.IsZero()), nil
	}
	r, err := w.R.Eval(f, at)
	if err != nil {
		return ff.Element{}, err
	}
	return applyBinElt(f, w.Op, l, r)
}

// AddDeps implements WExpr.
func (w *WBin) AddDeps(deps map[int]bool) {
	w.L.AddDeps(deps)
	w.R.AddDeps(deps)
}

// String implements WExpr.
func (w *WBin) String() string {
	return fmt.Sprintf("(%s %s %s)", w.L, w.Op, w.R)
}

// Eval implements WExpr.
func (w *WUn) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	x, err := w.X.Eval(f, at)
	if err != nil {
		return ff.Element{}, err
	}
	return applyUnElt(f, w.Op, x)
}

// AddDeps implements WExpr.
func (w *WUn) AddDeps(deps map[int]bool) { w.X.AddDeps(deps) }

// String implements WExpr.
func (w *WUn) String() string { return fmt.Sprintf("(%s%s)", w.Op, w.X) }

// Eval implements WExpr.
func (w *WCond) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	c, err := w.C.Eval(f, at)
	if err != nil {
		return ff.Element{}, err
	}
	if !c.IsZero() {
		return w.T.Eval(f, at)
	}
	return w.F.Eval(f, at)
}

// AddDeps implements WExpr.
func (w *WCond) AddDeps(deps map[int]bool) {
	w.C.AddDeps(deps)
	w.T.AddDeps(deps)
	w.F.AddDeps(deps)
}

// String implements WExpr.
func (w *WCond) String() string { return fmt.Sprintf("(%s ? %s : %s)", w.C, w.T, w.F) }

// Eval implements WExpr.
func (w *WLin) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	return w.LC.Eval(at), nil
}

// AddDeps implements WExpr.
func (w *WLin) AddDeps(deps map[int]bool) {
	for _, v := range w.LC.Vars() {
		deps[v] = true
	}
}

// String implements WExpr.
func (w *WLin) String() string { return w.LC.String() }

// Eval implements WExpr.
func (w *WQuad) Eval(f *ff.Field, at func(int) ff.Element) (ff.Element, error) {
	return f.Add(f.Mul(w.A.Eval(at), w.B.Eval(at)), w.C.Eval(at)), nil
}

// AddDeps implements WExpr.
func (w *WQuad) AddDeps(deps map[int]bool) {
	for _, lc := range []*poly.LinComb{w.A, w.B, w.C} {
		for _, v := range lc.Vars() {
			deps[v] = true
		}
	}
}

// String implements WExpr.
func (w *WQuad) String() string {
	return fmt.Sprintf("(%s)*(%s) + (%s)", w.A, w.B, w.C)
}

// Assignment computes one signal during witness generation.
type Assignment struct {
	Target int
	Expr   WExpr
	// Constrained records whether the assignment came from <== (true) or
	// the unconstrained <-- (false). Unconstrained assignments are the
	// canonical source of under-constrained bugs.
	Constrained bool
	Pos         Pos
}

// Check is a witness-time assertion: Expr must evaluate truthy.
type Check struct {
	Expr WExpr
	Pos  Pos
	Msg  string
}

// Program is the output of compiling a Circom file: the constraint system,
// the witness-generation program, and the input/output name tables.
type Program struct {
	System      *r1cs.System
	Assignments []Assignment
	Checks      []Check
	// InputNames maps a flattened main-input name (e.g. "in[2]") to its
	// signal ID.
	InputNames map[string]int
	// OutputNames maps a flattened main-output name to its signal ID.
	OutputNames map[string]int
	// MainTemplate is the name of the instantiated main template.
	MainTemplate string
	// Logs collects output of log() statements during compilation.
	Logs []string
}

// SortedInputNames returns the input names in deterministic order.
func (p *Program) SortedInputNames() []string {
	names := make([]string, 0, len(p.InputNames))
	for n := range p.InputNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedOutputNames returns the output names in deterministic order.
func (p *Program) SortedOutputNames() []string {
	names := make([]string, 0, len(p.OutputNames))
	for n := range p.OutputNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GenerateWitness runs the witness program on the given inputs (keyed by
// flattened input name, e.g. "in" or "in[3]") and returns a full witness.
// Missing inputs default to zero. The returned witness is NOT checked
// against the constraints; use System.CheckWitness for that (the witness of
// a correct circuit always satisfies them, but an under-constrained circuit
// may also accept witnesses this generator would never produce).
func (p *Program) GenerateWitness(inputs map[string]*big.Int) (r1cs.Witness, error) {
	f := p.System.Field()
	w := p.System.NewWitness()
	assigned := make([]bool, p.System.NumSignals())
	assigned[r1cs.OneID] = true

	for name, id := range p.InputNames {
		if v, ok := inputs[name]; ok {
			w[id] = f.FromBig(v)
		}
		assigned[id] = true
	}
	for name := range inputs {
		if _, ok := p.InputNames[name]; !ok {
			return nil, fmt.Errorf("circom: unknown input %q (have: %s)", name, strings.Join(p.SortedInputNames(), ", "))
		}
	}

	// Ready-queue topological execution: an assignment fires once all its
	// dependencies are assigned. This reproduces circom's
	// "component executes when its inputs arrive" scheduling.
	type pendingAssign struct {
		idx    int
		deps   []int
		queued bool
	}
	waiting := map[int][]*pendingAssign{} // signal → assignments blocked on it
	var ready []*pendingAssign
	for i := range p.Assignments {
		a := &p.Assignments[i]
		depSet := map[int]bool{}
		a.Expr.AddDeps(depSet)
		pa := &pendingAssign{idx: i}
		for d := range depSet {
			if !assigned[d] {
				pa.deps = append(pa.deps, d)
			}
		}
		if len(pa.deps) == 0 {
			pa.queued = true
			ready = append(ready, pa)
		} else {
			for _, d := range pa.deps {
				waiting[d] = append(waiting[d], pa)
			}
		}
	}
	remaining := make([]int, 0)
	executed := 0
	at := func(x int) ff.Element { return w[x] }
	for len(ready) > 0 {
		pa := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		a := &p.Assignments[pa.idx]
		if assigned[a.Target] {
			return nil, fmt.Errorf("circom: signal %s assigned twice", p.System.Name(a.Target))
		}
		v, err := a.Expr.Eval(f, at)
		if err != nil {
			return nil, fmt.Errorf("circom: %s: computing %s: %v", a.Pos, p.System.Name(a.Target), err)
		}
		w[a.Target] = v
		executed++
		assigned[a.Target] = true
		for _, blocked := range waiting[a.Target] {
			if blocked.queued {
				continue
			}
			done := true
			for _, d := range blocked.deps {
				if !assigned[d] {
					done = false
					break
				}
			}
			if done {
				blocked.queued = true
				ready = append(ready, blocked)
			}
		}
		delete(waiting, a.Target)
	}
	if executed < len(p.Assignments) {
		for id := range w {
			if !assigned[id] {
				remaining = append(remaining, id)
			}
		}
		names := make([]string, 0, len(remaining))
		for _, id := range remaining {
			names = append(names, p.System.Name(id))
		}
		return nil, fmt.Errorf("circom: witness generation stuck; unassigned signals: %s", strings.Join(names, ", "))
	}

	for _, c := range p.Checks {
		v, err := c.Expr.Eval(f, at)
		if err != nil {
			return nil, fmt.Errorf("circom: %s: assert: %v", c.Pos, err)
		}
		if v.IsZero() {
			return nil, fmt.Errorf("circom: %s: assertion failed: %s", c.Pos, c.Msg)
		}
	}
	return w, nil
}

// MustWitness is GenerateWitness followed by a constraint check; it panics
// on any failure. Intended for tests and examples with known-good inputs.
func (p *Program) MustWitness(inputs map[string]*big.Int) r1cs.Witness {
	w, err := p.GenerateWitness(inputs)
	if err != nil {
		panic(err)
	}
	if err := p.System.CheckWitness(w); err != nil {
		panic(err)
	}
	return w
}

// InputsFromInts is a convenience for building input maps from int64s.
func InputsFromInts(m map[string]int64) map[string]*big.Int {
	out := make(map[string]*big.Int, len(m))
	for k, v := range m {
		out[k] = big.NewInt(v)
	}
	return out
}
