package circom

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile(src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return f
}

func TestParseTemplateShape(t *testing.T) {
	f := mustParse(t, `
pragma circom 2.0.0;
include "lib.circom";

template Adder(n) {
    signal input a[n];
    signal input b[n];
    signal output out[n];
    for (var i = 0; i < n; i++) {
        out[i] <== a[i] + b[i];
    }
}

component main {public [a]} = Adder(4);
`)
	if len(f.Pragmas) != 1 || len(f.Includes) != 1 || f.Includes[0] != "lib.circom" {
		t.Errorf("pragmas/includes: %v %v", f.Pragmas, f.Includes)
	}
	if len(f.Templates) != 1 {
		t.Fatalf("templates = %d", len(f.Templates))
	}
	tpl := f.Templates[0]
	if tpl.Name != "Adder" || len(tpl.Params) != 1 || tpl.Params[0] != "n" {
		t.Errorf("template header = %q %v", tpl.Name, tpl.Params)
	}
	if f.Main == nil || f.Main.Call.Name != "Adder" || len(f.Main.Call.Args) != 1 {
		t.Fatalf("main = %+v", f.Main)
	}
	if len(f.Main.Public) != 1 || f.Main.Public[0] != "a" {
		t.Errorf("public = %v", f.Main.Public)
	}
}

func TestParseReversedOperatorsNormalize(t *testing.T) {
	f := mustParse(t, `
template T() {
    signal input a;
    signal output b;
    a ==> b;
}
component main = T();
`)
	body := f.Templates[0].Body.Stmts
	as, ok := body[len(body)-1].(*AssignStmt)
	if !ok {
		t.Fatalf("last stmt = %T", body[len(body)-1])
	}
	if as.Op != TokAssignCon {
		t.Errorf("op = %v, want <==", as.Op)
	}
	if id, ok := as.LHS.(*Ident); !ok || id.Name != "b" {
		t.Errorf("LHS = %#v, want b", as.LHS)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 ** 2 ** 2")
	if err != nil {
		t.Fatal(err)
	}
	// Expect 1 + (2 * (3 ** (2 ** 2))): top is +.
	top, ok := e.(*BinaryExpr)
	if !ok || top.Op != TokPlus {
		t.Fatalf("top = %#v", e)
	}
	mul, ok := top.R.(*BinaryExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("rhs = %#v", top.R)
	}
	pow, ok := mul.R.(*BinaryExpr)
	if !ok || pow.Op != TokPow {
		t.Fatalf("pow = %#v", mul.R)
	}
	// ** is right-associative.
	if _, ok := pow.R.(*BinaryExpr); !ok {
		t.Errorf("pow not right-associative: %#v", pow.R)
	}
}

func TestParseTernaryAndComparison(t *testing.T) {
	e, err := ParseExpr("a != 0 ? 1/a : 0")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*CondExpr)
	if !ok {
		t.Fatalf("not ternary: %#v", e)
	}
	if cmp, ok := c.C.(*BinaryExpr); !ok || cmp.Op != TokNeq {
		t.Errorf("cond = %#v", c.C)
	}
}

func TestParsePostfixChains(t *testing.T) {
	e, err := ParseExpr("c[i].out[2]")
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := e.(*IndexExpr)
	if !ok {
		t.Fatalf("top = %#v", e)
	}
	mem, ok := idx.X.(*MemberExpr)
	if !ok || mem.Name != "out" {
		t.Fatalf("member = %#v", idx.X)
	}
	if _, ok := mem.X.(*IndexExpr); !ok {
		t.Errorf("base = %#v", mem.X)
	}
}

func TestParseStatements(t *testing.T) {
	f := mustParse(t, `
function nbits(a) {
    var n = 1;
    var r = 0;
    while (n-1 < a) {
        r++;
        n *= 2;
    }
    return r;
}

template T(n) {
    signal input in;
    signal output out;
    var acc = 0;
    if (n > 2) { acc = 1; } else if (n == 2) { acc = 2; } else acc = 3;
    assert(n > 0);
    log("value", acc);
    var arr[3] = [1, 2, 3];
    component cs[2];
    out <== in * acc;
}
component main = T(3);
`)
	if len(f.Functions) != 1 || f.Functions[0].Name != "nbits" {
		t.Fatalf("functions = %v", f.Functions)
	}
	if len(f.Templates) != 1 {
		t.Fatalf("templates = %d", len(f.Templates))
	}
}

func TestParseSignalInitSugar(t *testing.T) {
	f := mustParse(t, `
template T() {
    signal input in;
    signal output out;
    signal mid <== in * in;
    out <== mid;
}
component main = T();
`)
	// The sugar expands to a block containing decl + assign.
	var found bool
	for _, s := range f.Templates[0].Body.Stmts {
		if b, ok := s.(*Block); ok && len(b.Stmts) == 2 {
			if _, ok := b.Stmts[0].(*SignalDecl); ok {
				if as, ok := b.Stmts[1].(*AssignStmt); ok && as.Op == TokAssignCon {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("signal-init sugar did not desugar to decl+assign")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"template {",
		"template T( {",
		"template T() { signal; }",
		"template T() { var 1x; }",
		"component main = ;",
		"template T() { a + ; }",
		"template T() { if a { } }",
		"template T() { for (;;) }",
		"template T() { x = 1 }", // missing semicolon
		"template T() { } component main = T(); component main = T();",
		"zebra",
	}
	for _, src := range cases {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("ParseFile(%q) error type %T", src, err)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := ParseFile("template T() {\n  wombat ^^;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}
