package circom

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes Circom source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream (terminated by
// a TokEOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(k int) byte {
	if lx.off+k >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+k]
}

func (lx *Lexer) advance(n int) {
	for i := 0; i < n && lx.off < len(lx.src); i++ {
		if lx.src[lx.off] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.off++
	}
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance(2)
			for {
				if lx.off >= len(lx.src) {
					return errAt(start, "unterminated block comment")
				}
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.advance(2)
					break
				}
				lx.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

// multi-character operators, longest first.
var multiOps = []struct {
	text string
	kind TokKind
}{
	{"<==", TokAssignCon},
	{"==>", TokAssignConR},
	{"<--", TokAssignSig},
	{"-->", TokAssignSigR},
	{"===", TokConstrainEq},
	{"<<=", TokShlAssign},
	{">>=", TokShrAssign},
	{"**", TokPow},
	{"==", TokEq},
	{"!=", TokNeq},
	{"<=", TokLeq},
	{">=", TokGeq},
	{"&&", TokAndAnd},
	{"||", TokOrOr},
	{"<<", TokShl},
	{">>", TokShr},
	{"+=", TokPlusAssign},
	{"-=", TokMinusAssign},
	{"*=", TokStarAssign},
	{"/=", TokSlashAssign},
	{"\\=", TokIntDivAssign},
	{"%=", TokPctAssign},
	{"&=", TokAndAssign},
	{"|=", TokOrAssign},
	{"^=", TokXorAssign},
	{"++", TokInc},
	{"--", TokDec},
}

var singleOps = map[byte]TokKind{
	'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
	'[': TokLBracket, ']': TokRBracket, ';': TokSemi, ',': TokComma,
	'.': TokDot, '?': TokQuestion, ':': TokColon,
	'=': TokAssign, '+': TokPlus, '-': TokMinus, '*': TokStar,
	'/': TokSlash, '\\': TokIntDiv, '%': TokPercent,
	'<': TokLt, '>': TokGt, '!': TokNot,
	'&': TokBitAnd, '|': TokBitOr, '^': TokBitXor, '~': TokBitNot,
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peekByte()

	// numbers: decimal or 0x hex
	if c >= '0' && c <= '9' {
		start := lx.off
		if c == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
			lx.advance(2)
			for isHexDigit(lx.peekByte()) {
				lx.advance(1)
			}
			if lx.off == start+2 {
				return Token{}, errAt(pos, "malformed hex literal")
			}
		} else {
			for lx.peekByte() >= '0' && lx.peekByte() <= '9' {
				lx.advance(1)
			}
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: pos}, nil
	}

	// identifiers / keywords
	if r, _ := utf8.DecodeRuneInString(lx.src[lx.off:]); isIdentStart(r) {
		start := lx.off
		for lx.off < len(lx.src) {
			r, sz := utf8.DecodeRuneInString(lx.src[lx.off:])
			if !isIdentPart(r) {
				break
			}
			lx.advance(sz)
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	}

	// strings (used by log(); we keep them but most callers ignore them)
	if c == '"' {
		lx.advance(1)
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errAt(pos, "unterminated string literal")
			}
			ch := lx.peekByte()
			if ch == '"' {
				lx.advance(1)
				break
			}
			if ch == '\\' {
				lx.advance(1)
				esc := lx.peekByte()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"', '\\':
					b.WriteByte(esc)
				default:
					return Token{}, errAt(lx.pos(), "unknown escape \\%c", esc)
				}
				lx.advance(1)
				continue
			}
			b.WriteByte(ch)
			lx.advance(1)
		}
		return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
	}

	// multi-char operators
	for _, op := range multiOps {
		if strings.HasPrefix(lx.src[lx.off:], op.text) {
			lx.advance(len(op.text))
			return Token{Kind: op.kind, Text: op.text, Pos: pos}, nil
		}
	}

	// single-char operators/punctuation
	if kind, ok := singleOps[c]; ok {
		lx.advance(1)
		return Token{Kind: kind, Text: string(c), Pos: pos}, nil
	}

	return Token{}, errAt(pos, "unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
