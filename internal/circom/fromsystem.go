package circom

import "qed2/internal/r1cs"

// ProgramFromSystem wraps a pre-built constraint system in a Program so
// the rest of the pipeline (analysis, benchmarking, reporting) can treat
// it like a compiled circuit. The system may come from a text or binary
// .r1cs file or from the property-based generator; it carries no
// witness-generation instructions, so Assignments and Checks stay empty
// and witness-dependent features are unavailable.
func ProgramFromSystem(sys *r1cs.System, mainTemplate string) *Program {
	prog := &Program{
		System:       sys,
		InputNames:   map[string]int{},
		OutputNames:  map[string]int{},
		MainTemplate: mainTemplate,
	}
	for _, id := range sys.Inputs() {
		prog.InputNames[sys.Name(id)] = id
	}
	for _, id := range sys.Outputs() {
		prog.OutputNames[sys.Name(id)] = id
	}
	return prog
}
