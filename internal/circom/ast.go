package circom

import "math/big"

// File is a parsed Circom source file.
type File struct {
	Pragmas   []string
	Includes  []string
	Templates []*Template
	Functions []*Function
	Main      *MainDecl
}

// Template is a circuit template declaration.
type Template struct {
	Name     string
	Params   []string
	Body     *Block
	Parallel bool
	Pos      Pos
}

// Function is a compile-time function declaration.
type Function struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos
}

// MainDecl is the `component main {public [...]} = T(...)` declaration.
type MainDecl struct {
	Public []string
	Call   *CallExpr
	Pos    Pos
}

// --- statements ---------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtPos() Pos }

// Block is a brace-delimited statement list with its own variable scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Declarator is one name in a var/signal/component declaration, with
// optional array dimensions and initializer.
type Declarator struct {
	Name string
	Dims []Expr // evaluated at compile time
	Init Expr   // optional
	Pos  Pos
}

// SignalClass distinguishes input/output/intermediate signals.
type SignalClass int

// Signal classes.
const (
	SignalIntermediate SignalClass = iota
	SignalInput
	SignalOutput
)

// String implements fmt.Stringer.
func (c SignalClass) String() string {
	switch c {
	case SignalInput:
		return "input"
	case SignalOutput:
		return "output"
	default:
		return "intermediate"
	}
}

// VarDecl declares compile-time variables: `var x = 0, ys[n];`.
type VarDecl struct {
	Decls []Declarator
	Pos   Pos
}

// SignalDecl declares signals: `signal input in[2];`.
type SignalDecl struct {
	Class SignalClass
	Decls []Declarator
	Pos   Pos
}

// ComponentDecl declares sub-components: `component c = T(1);` or
// `component cs[4];`.
type ComponentDecl struct {
	Decls []Declarator
	Pos   Pos
}

// AssignStmt covers var assignment (=, +=, …), component instantiation
// (name = Template(args)), signal assignment (<--) and constraining
// assignment (<==). Reversed forms (==> / -->) are normalized by the parser
// so that LHS is always the target.
type AssignStmt struct {
	LHS Expr
	Op  TokKind // TokAssign, TokPlusAssign, ..., TokAssignSig, TokAssignCon
	RHS Expr
	Pos Pos
}

// ConstraintStmt is the pure constraint `l === r`.
type ConstraintStmt struct {
	L, R Expr
	Pos  Pos
}

// IncDecStmt is `x++` or `x--`.
type IncDecStmt struct {
	LHS Expr
	Op  TokKind // TokInc or TokDec
	Pos Pos
}

// ForStmt is a C-style for loop; Init/Post may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *Block
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// IfStmt is a conditional with optional else branch (Else may be *Block or
// *IfStmt for else-if chains).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt
	Pos  Pos
}

// ReturnStmt returns a value from a function.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// AssertStmt is `assert(cond);`.
type AssertStmt struct {
	Cond Expr
	Pos  Pos
}

// LogStmt is `log(...);` — evaluated for side-effect-free diagnostics.
type LogStmt struct {
	Args []Expr
	Pos  Pos
}

func (s *Block) stmtPos() Pos          { return s.Pos }
func (s *VarDecl) stmtPos() Pos        { return s.Pos }
func (s *SignalDecl) stmtPos() Pos     { return s.Pos }
func (s *ComponentDecl) stmtPos() Pos  { return s.Pos }
func (s *AssignStmt) stmtPos() Pos     { return s.Pos }
func (s *ConstraintStmt) stmtPos() Pos { return s.Pos }
func (s *IncDecStmt) stmtPos() Pos     { return s.Pos }
func (s *ForStmt) stmtPos() Pos        { return s.Pos }
func (s *WhileStmt) stmtPos() Pos      { return s.Pos }
func (s *IfStmt) stmtPos() Pos         { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos     { return s.Pos }
func (s *AssertStmt) stmtPos() Pos     { return s.Pos }
func (s *LogStmt) stmtPos() Pos        { return s.Pos }

// --- expressions -------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface{ exprPos() Pos }

// NumberLit is an integer literal (decimal or hex).
type NumberLit struct {
	Val *big.Int
	Pos Pos
}

// StringLit appears only inside log(...).
type StringLit struct {
	Val string
	Pos Pos
}

// Ident is a bare name: variable, signal, component, or parameter.
type Ident struct {
	Name string
	Pos  Pos
}

// CallExpr is a function call or template instantiation `Name(args)`.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	X   Expr
	Idx Expr
	Pos Pos
}

// MemberExpr is `comp.signal`.
type MemberExpr struct {
	X    Expr
	Name string
	Pos  Pos
}

// UnaryExpr is `-x`, `!x`, or `~x`.
type UnaryExpr struct {
	Op  TokKind
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   TokKind
	L, R Expr
	Pos  Pos
}

// CondExpr is the ternary `c ? t : f`.
type CondExpr struct {
	C, T, F Expr
	Pos     Pos
}

// ArrayLit is `[a, b, c]`, usable as a var initializer.
type ArrayLit struct {
	Elems []Expr
	Pos   Pos
}

func (e *NumberLit) exprPos() Pos  { return e.Pos }
func (e *StringLit) exprPos() Pos  { return e.Pos }
func (e *Ident) exprPos() Pos      { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *MemberExpr) exprPos() Pos { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
func (e *CondExpr) exprPos() Pos   { return e.Pos }
func (e *ArrayLit) exprPos() Pos   { return e.Pos }
