package uniq

import (
	"math/big"
	"math/rand"
	"testing"

	"qed2/internal/circom"
	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

var f97 = ff.MustField(big.NewInt(97))

func lcv(f *ff.Field, v int) *poly.LinComb { return poly.Var(f, v) }

func TestSeeds(t *testing.T) {
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	o := sys.AddSignal("o", r1cs.KindOutput)
	p := New(sys)
	if !p.IsUnique(r1cs.OneID) || !p.IsUnique(a) {
		t.Error("seeds missing")
	}
	if p.IsUnique(o) {
		t.Error("unconstrained output claimed unique")
	}
	if src, _ := p.SourceOf(a); src.Rule != RuleSeed {
		t.Errorf("source of input = %+v", src)
	}
}

func TestSolveRuleChain(t *testing.T) {
	// a (input) → b = 3a+1 → c = b·b? No: c = 2b - 5 → chain of linears.
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	b := sys.AddSignal("b", r1cs.KindInternal)
	c := sys.AddSignal("c", r1cs.KindOutput)
	// 1 * (3a + 1) = b
	sys.AddConstraint(poly.ConstInt(f97, 1), lcv(f97, a).Scale(f97.NewElement(3)).AddConst(f97.NewElement(1)), lcv(f97, b), "")
	// 1 * (2b - 5) = c
	sys.AddConstraint(poly.ConstInt(f97, 1), lcv(f97, b).Scale(f97.NewElement(2)).AddConst(f97.NewElement(-5)), lcv(f97, c), "")
	p := New(sys)
	if !p.IsUnique(b) || !p.IsUnique(c) {
		t.Fatalf("chain not resolved: unique=%v", p.Unique())
	}
	if !p.OutputsUnique() {
		t.Error("OutputsUnique false")
	}
	if src, _ := p.SourceOf(c); src.Rule != RuleSolve || src.Constraint != 1 {
		t.Errorf("source of c = %+v", src)
	}
	counts := p.CountByRule()
	if counts[RuleSeed] != 2 || counts[RuleSolve] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestProductOfKnowns(t *testing.T) {
	// out = a*b with a,b inputs: quad monomial a·b has both vars unique;
	// out appears linearly with constant coefficient → unique.
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	b := sys.AddSignal("b", r1cs.KindInput)
	o := sys.AddSignal("o", r1cs.KindOutput)
	sys.AddConstraint(lcv(f97, a), lcv(f97, b), lcv(f97, o), "")
	p := New(sys)
	if !p.IsUnique(o) {
		t.Error("o = a*b not resolved")
	}
}

func TestVanishingCoefficientIsRejected(t *testing.T) {
	// x·a = c with a an input: coefficient of x vanishes at a=0, so the
	// rule must NOT fire (x free when a=0, c=0).
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	c := sys.AddSignal("c", r1cs.KindInput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	sys.AddConstraint(lcv(f97, x), lcv(f97, a), lcv(f97, c), "")
	p := New(sys)
	if p.IsUnique(x) {
		t.Error("unsound: x·a = c resolved x with vanishing coefficient")
	}
}

func TestSquareIsRejected(t *testing.T) {
	// x² = a: two roots; not unique.
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	sys.AddConstraint(lcv(f97, x), lcv(f97, x), lcv(f97, a), "")
	p := New(sys)
	if p.IsUnique(x) {
		t.Error("unsound: x² = a resolved x")
	}
}

func TestTwoUnknownsBlockedThenUnlocked(t *testing.T) {
	// x + y = a: two unknowns, blocked. After external fact y unique,
	// x resolves incrementally.
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	y := sys.AddSignal("y", r1cs.KindInternal)
	sys.AddConstraint(poly.ConstInt(f97, 1), lcv(f97, x).Add(lcv(f97, y)), lcv(f97, a), "")
	p := New(sys)
	if p.IsUnique(x) || p.IsUnique(y) {
		t.Fatal("premature uniqueness")
	}
	if !p.AddUniqueExternal(y) {
		t.Fatal("AddUniqueExternal returned false")
	}
	if p.AddUniqueExternal(y) {
		t.Error("duplicate AddUniqueExternal returned true")
	}
	if !p.IsUnique(x) {
		t.Error("x not resolved after y became unique")
	}
	if src, _ := p.SourceOf(y); src.Rule != RuleExternal {
		t.Errorf("source of y = %+v", src)
	}
}

func TestUnknownList(t *testing.T) {
	sys := r1cs.NewSystem(f97)
	sys.AddSignal("a", r1cs.KindInput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	p := New(sys)
	unk := p.Unknown()
	if len(unk) != 1 || unk[0] != x {
		t.Errorf("Unknown = %v", unk)
	}
	if got := len(p.Order()); got != 2 {
		t.Errorf("Order length = %d", got)
	}
}

// --- soundness property test -----------------------------------------------------

// TestPropagationSoundnessExhaustive builds random small systems over a
// tiny field, runs propagation, and verifies by exhaustive enumeration
// that every signal claimed unique really is uniquely determined by the
// inputs in every satisfiable input class.
func TestPropagationSoundnessExhaustive(t *testing.T) {
	f5 := ff.MustField(big.NewInt(5))
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 150; iter++ {
		sys := r1cs.NewSystem(f5)
		nIn := 1 + rng.Intn(2)
		nOther := 2 + rng.Intn(2)
		for i := 0; i < nIn; i++ {
			sys.AddSignal("", r1cs.KindInput)
		}
		for i := 0; i < nOther; i++ {
			sys.AddSignal("", r1cs.KindInternal)
		}
		n := sys.NumSignals()
		randLC := func() *poly.LinComb {
			out := poly.ConstInt(f5, int64(rng.Intn(5)))
			for v := 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					out = out.AddTerm(v, f5.NewElement(int64(rng.Intn(5))))
				}
			}
			return out
		}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			sys.AddConstraint(randLC(), randLC(), randLC(), "")
		}
		p := New(sys)

		// Enumerate all witnesses; group by input values; check claimed
		// signals take a single value within each group.
		type key string
		groups := map[key]map[int]map[string]bool{} // inputs -> sig -> values
		total := 1
		for i := 1; i < n; i++ {
			total *= 5
		}
		w := sys.NewWitness()
		for enc := 0; enc < total; enc++ {
			v := enc
			for i := 1; i < n; i++ {
				w[i] = f5.NewElement(int64(v % 5))
				v /= 5
			}
			if sys.CheckWitness(w) != nil {
				continue
			}
			var kb []byte
			for _, in := range sys.Inputs() {
				kb = append(kb, byte('0'+f5.ToBig(w[in]).Int64()))
			}
			g := groups[key(kb)]
			if g == nil {
				g = map[int]map[string]bool{}
				groups[key(kb)] = g
			}
			for i := 1; i < n; i++ {
				if g[i] == nil {
					g[i] = map[string]bool{}
				}
				g[i][f5.String(w[i])] = true
			}
		}
		for _, g := range groups {
			for sig, vals := range g {
				if p.IsUnique(sig) && len(vals) > 1 {
					t.Fatalf("iter %d: propagation UNSOUND: signal %d claimed unique but takes %d values\n%s",
						iter, sig, len(vals), sys.MarshalText())
				}
			}
		}
	}
}

// A circomlib-style integration check: IsZero's constraints resolve `out`
// once `inv` is known, but `inv` itself stays unknown (it is genuinely not
// uniquely determined... it IS determined? inv is only constrained by
// out = -in*inv + 1 and in*out = 0; for in=0, inv is free → not unique).
func TestIsZeroPartialResolution(t *testing.T) {
	prog, err := circom.Compile(`
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog.System)
	invSig, _ := prog.System.SignalByName("inv")
	outSig, _ := prog.System.SignalByName("out")
	if p.IsUnique(invSig.ID) {
		t.Error("inv claimed unique (it is free when in=0)")
	}
	// out is NOT resolvable by propagation alone (its constraint couples it
	// with the unknown inv through in·inv): the SMT stage must finish it.
	if p.IsUnique(outSig.ID) {
		t.Log("note: out resolved by propagation alone (stronger than expected)")
	}
}

// --- binary-decomposition rule ---------------------------------------------------

// buildBits builds the Num2Bits pattern: n boolean signals plus the sum
// constraint Σ 2^i·b_i = in.
func buildBits(t *testing.T, n int, coeffs []int64) (*r1cs.System, []int) {
	t.Helper()
	sys := r1cs.NewSystem(f97)
	in := sys.AddSignal("in", r1cs.KindInput)
	bits := make([]int, n)
	for i := range bits {
		bits[i] = sys.AddSignal("", r1cs.KindOutput)
	}
	for _, b := range bits {
		// b * (b-1) = 0
		sys.AddConstraint(lcv(f97, b), lcv(f97, b).AddConst(f97.NewElement(-1)), poly.NewLinComb(f97), "bool")
	}
	sum := poly.NewLinComb(f97).AddTerm(in, f97.NewElement(-1))
	for i, b := range bits {
		sum = sum.AddTerm(b, f97.NewElement(coeffs[i]))
	}
	sys.AddConstraint(poly.ConstInt(f97, 1), sum, poly.NewLinComb(f97), "sum")
	return sys, bits
}

func TestRuleBitsPowersOfTwo(t *testing.T) {
	sys, bits := buildBits(t, 4, []int64{1, 2, 4, 8})
	p := New(sys)
	for _, b := range bits {
		if !p.IsUnique(b) {
			t.Fatalf("bit %d not resolved by RuleBits", b)
		}
		if src, _ := p.SourceOf(b); src.Rule != RuleBits {
			t.Errorf("bit %d source = %v", b, src.Rule)
		}
	}
}

func TestRuleBitsRejectsAmbiguousCoefficients(t *testing.T) {
	// {1,2,3}: 3 = 1+2 → two bit patterns give the same sum; must NOT fire.
	sys, bits := buildBits(t, 3, []int64{1, 2, 3})
	p := New(sys)
	for _, b := range bits {
		if p.IsUnique(b) {
			t.Fatalf("UNSOUND: ambiguous coefficients resolved bit %d", b)
		}
	}
	// {1,1}: equal coefficients also ambiguous.
	sys2, bits2 := buildBits(t, 2, []int64{1, 1})
	p2 := New(sys2)
	for _, b := range bits2 {
		if p2.IsUnique(b) {
			t.Fatalf("UNSOUND: equal coefficients resolved bit %d", b)
		}
	}
}

func TestRuleBitsRejectsFieldOverflow(t *testing.T) {
	// Over F_97: coefficients 1,2,4,...,64 sum to 127 > 97: two bit vectors
	// can collide modulo 97 (e.g. 97 = 64+32+1 ≡ 0). Must NOT fire.
	sys, bits := buildBits(t, 7, []int64{1, 2, 4, 8, 16, 32, 64})
	p := New(sys)
	for _, b := range bits {
		if p.IsUnique(b) {
			t.Fatalf("UNSOUND: overflowing decomposition resolved bit %d", b)
		}
	}
	// 1,2,4,8,16,32 sums to 63 < 97: fine.
	sys2, bits2 := buildBits(t, 6, []int64{1, 2, 4, 8, 16, 32})
	p2 := New(sys2)
	for _, b := range bits2 {
		if !p2.IsUnique(b) {
			t.Fatalf("bit %d not resolved", b)
		}
	}
}

func TestRuleBitsNegativeCoefficients(t *testing.T) {
	// Signed magnitudes {1,-2,4} are super-increasing in absolute value.
	sys, bits := buildBits(t, 3, []int64{1, -2, 4})
	p := New(sys)
	for _, b := range bits {
		if !p.IsUnique(b) {
			t.Fatalf("bit %d not resolved with negative coefficient", b)
		}
	}
}

func TestRuleBitsRequiresBooleanFacts(t *testing.T) {
	// Same sum constraint but bits lack boolean constraints: must not fire.
	sys := r1cs.NewSystem(f97)
	in := sys.AddSignal("in", r1cs.KindInput)
	b0 := sys.AddSignal("b0", r1cs.KindOutput)
	b1 := sys.AddSignal("b1", r1cs.KindOutput)
	sum := poly.NewLinComb(f97).
		AddTerm(in, f97.NewElement(-1)).
		AddTerm(b0, f97.NewElement(1)).
		AddTerm(b1, f97.NewElement(2))
	sys.AddConstraint(poly.ConstInt(f97, 1), sum, poly.NewLinComb(f97), "sum")
	p := New(sys)
	if p.IsUnique(b0) || p.IsUnique(b1) {
		t.Fatal("UNSOUND: non-boolean signals resolved by RuleBits")
	}
}

func TestNum2BitsResolvedByPropagationAlone(t *testing.T) {
	prog, err := circom.Compile(`
template Num2Bits(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc1 += out[i] * e2;
        e2 = e2 + e2;
    }
    lc1 === in;
}
component main = Num2Bits(32);
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog.System)
	if !p.OutputsUnique() {
		t.Fatal("Num2Bits(32) not fully resolved by propagation")
	}
	if p.CountByRule()[RuleBits] != 32 {
		t.Errorf("RuleBits count = %d, want 32", p.CountByRule()[RuleBits])
	}
}

func TestSnapshotImmutable(t *testing.T) {
	// b = 3a+1 resolves by R-Solve; c is pinned only after the external fact
	// about x arrives. A snapshot taken in between must not see later facts.
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	b := sys.AddSignal("b", r1cs.KindInternal)
	x := sys.AddSignal("x", r1cs.KindInternal)
	c := sys.AddSignal("c", r1cs.KindOutput)
	sys.AddConstraint(poly.ConstInt(f97, 1), lcv(f97, a).Scale(f97.NewElement(3)).AddConst(f97.NewElement(1)), lcv(f97, b), "")
	// x·x = b: not solvable syntactically (two roots).
	sys.AddConstraint(lcv(f97, x), lcv(f97, x), lcv(f97, b), "")
	// 1·(x + 2) = c: pins c once x is unique.
	sys.AddConstraint(poly.ConstInt(f97, 1), lcv(f97, x).AddConst(f97.NewElement(2)), lcv(f97, c), "")
	p := New(sys)
	snap := p.Snapshot()
	if !snap.IsUnique(a) || !snap.IsUnique(b) || snap.IsUnique(x) || snap.IsUnique(c) {
		t.Fatalf("snapshot state wrong: a=%v b=%v x=%v c=%v",
			snap.IsUnique(a), snap.IsUnique(b), snap.IsUnique(x), snap.IsUnique(c))
	}
	if snap.NumUnique() != p.NumUnique() {
		t.Errorf("NumUnique: snap %d, prop %d", snap.NumUnique(), p.NumUnique())
	}
	before := snap.NumUnique()
	p.AddUniqueExternal(x)
	if !p.IsUnique(x) || !p.IsUnique(c) {
		t.Fatal("external fact did not re-propagate")
	}
	// The snapshot must be frozen at its capture point.
	if snap.IsUnique(x) || snap.IsUnique(c) || snap.NumUnique() != before {
		t.Error("snapshot mutated by later propagation")
	}
	// Out-of-range queries are false, not panics.
	if snap.IsUnique(-1) || snap.IsUnique(sys.NumSignals()) {
		t.Error("out-of-range signal claimed unique")
	}
}
