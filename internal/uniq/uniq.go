// Package uniq implements QED²'s lightweight uniqueness-constraint
// propagation: syntactic inference rules that grow a set of signals known
// to be uniquely determined by the circuit inputs, without calling a
// solver.
//
// The engine maintains a set U of unique signals, seeded with the circuit
// inputs and the constant-one signal. The workhorse rule is:
//
//	R-Solve:  for a constraint whose expanded polynomial q = A·B − C has
//	          exactly one signal x ∉ U, where x occurs only linearly and
//	          with a constant nonzero coefficient (no monomial x·y for any
//	          y, including y ∈ U), the constraint rewrites to
//	          x = −rest/c with vars(rest) ⊆ U, so x is uniquely
//	          determined ⇒ x ∈ U.
//
// The constant-coefficient requirement is what keeps the rule sound: in
// x·u = v with u ∈ U the coefficient of x vanishes when u = 0, leaving x
// free, so such constraints are deliberately left to the solver-backed
// reasoning in the core analysis.
//
// External facts (signals proven unique by SMT queries) are injected with
// AddUnique, which re-runs propagation to fixpoint incrementally.
package uniq

import (
	"math/big"
	"sort"

	"qed2/internal/obs"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// Rule identifies how a signal was proven unique.
type Rule string

// Rules.
const (
	// RuleSeed marks inputs and the constant-one signal.
	RuleSeed Rule = "seed"
	// RuleSolve marks signals resolved by the linear-solve rule.
	RuleSolve Rule = "solve"
	// RuleBits marks signals resolved by the binary-decomposition rule:
	// boolean-constrained signals pinned by a linear equation whose
	// coefficients form a super-increasing sequence (e.g. powers of two),
	// which makes the subset sum — and hence every bit — unique.
	RuleBits Rule = "bits"
	// RuleExternal marks facts injected by the caller (e.g. SMT queries).
	RuleExternal Rule = "external"
	// RuleStatic marks facts injected by the static-analysis pre-pass
	// (internal/sa): outputs and intermediates proven determined by
	// constant propagation / abstract interpretation before any SMT query.
	RuleStatic Rule = "static"
)

// Source records the provenance of a uniqueness fact.
type Source struct {
	Rule Rule
	// Constraint is the index of the constraint that fired (RuleSolve), or
	// -1 otherwise.
	Constraint int
}

// Propagator incrementally maintains the set of known-unique signals of
// one constraint system.
type Propagator struct {
	sys    *r1cs.System
	opts   Options
	unique map[int]Source
	quads  []*poly.Quad // cached expansion per constraint
	// sigCons[v] lists constraints mentioning v.
	sigCons map[int][]int
	// boolean[v] records that some constraint forces v ∈ {0,1}.
	boolean map[int]bool
	// order records the derivation order (for diagnostics/metrics).
	order []int
	// Per-rule observability counters, resolved once from Options.Metrics
	// (nil handles are no-ops): attempts count rule evaluations, fired
	// counts firings, and bits.resolved counts signals resolved by R-Bits
	// (one firing can resolve many bits).
	cSolveAttempts, cSolveFired             *obs.Counter
	cBitsAttempts, cBitsFired, cBitsResolve *obs.Counter
	cSeeds, cExternal                       *obs.Counter
}

// Options disables individual inference rules, for ablation studies.
type Options struct {
	// DisableSolve turns the linear-solve rule off.
	DisableSolve bool
	// DisableBits turns the binary-decomposition rule off.
	DisableBits bool
	// Metrics, when non-nil, receives the uniq.* counters (see DESIGN §10
	// for the taxonomy).
	Metrics *obs.Metrics
}

// New builds a propagator seeded with the inputs and the constant-one
// signal, and runs propagation to fixpoint.
func New(sys *r1cs.System) *Propagator {
	return NewWithOptions(sys, Options{})
}

// NewWithOptions is New with selected rules disabled.
func NewWithOptions(sys *r1cs.System, opts Options) *Propagator {
	p := &Propagator{
		sys:     sys,
		opts:    opts,
		unique:  map[int]Source{},
		sigCons: map[int][]int{},

		cSolveAttempts: opts.Metrics.Counter("uniq.rule.solve.attempts"),
		cSolveFired:    opts.Metrics.Counter("uniq.rule.solve.fired"),
		cBitsAttempts:  opts.Metrics.Counter("uniq.rule.bits.attempts"),
		cBitsFired:     opts.Metrics.Counter("uniq.rule.bits.fired"),
		cBitsResolve:   opts.Metrics.Counter("uniq.rule.bits.resolved"),
		cSeeds:         opts.Metrics.Counter("uniq.seeds"),
		cExternal:      opts.Metrics.Counter("uniq.external"),
	}
	p.quads = make([]*poly.Quad, sys.NumConstraints())
	p.boolean = map[int]bool{}
	for i := 0; i < sys.NumConstraints(); i++ {
		q := sys.Constraint(i).Quad()
		p.quads[i] = q
		for _, v := range q.Vars() {
			p.sigCons[v] = append(p.sigCons[v], i)
		}
		if b, ok := booleanOf(q); ok {
			p.boolean[b] = true
		}
	}
	p.seed(r1cs.OneID)
	for _, in := range sys.Inputs() {
		p.seed(in)
	}
	p.fixpoint(nil)
	return p
}

func (p *Propagator) seed(id int) {
	if _, ok := p.unique[id]; !ok {
		p.unique[id] = Source{Rule: RuleSeed, Constraint: -1}
		p.order = append(p.order, id)
		p.cSeeds.Inc()
	}
}

// IsUnique reports whether signal id is known to be uniquely determined.
func (p *Propagator) IsUnique(id int) bool {
	_, ok := p.unique[id]
	return ok
}

// SourceOf returns the provenance of a uniqueness fact.
func (p *Propagator) SourceOf(id int) (Source, bool) {
	s, ok := p.unique[id]
	return s, ok
}

// NumUnique returns the number of known-unique signals.
func (p *Propagator) NumUnique() int { return len(p.unique) }

// Unique returns the known-unique signal IDs, ascending.
func (p *Propagator) Unique() []int {
	out := make([]int, 0, len(p.unique))
	for v := range p.unique {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Unknown returns the signals not (yet) known unique, ascending.
func (p *Propagator) Unknown() []int {
	var out []int
	for id := 0; id < p.sys.NumSignals(); id++ {
		if !p.IsUnique(id) {
			out = append(out, id)
		}
	}
	return out
}

// Order returns signals in the order their uniqueness was derived.
func (p *Propagator) Order() []int {
	return append([]int(nil), p.order...)
}

// CountByRule tallies uniqueness facts per rule.
func (p *Propagator) CountByRule() map[Rule]int {
	out := map[Rule]int{}
	for _, s := range p.unique {
		out[s.Rule]++
	}
	return out
}

// Snapshot is an immutable point-in-time view of the known-unique set. It
// is safe for concurrent readers, which the Propagator itself is not: the
// parallel query engine takes one snapshot per round and hands it to every
// worker while the propagator stays untouched until the round barrier.
type Snapshot struct {
	unique []bool
	count  int
}

// Snapshot captures the current unique set. The returned value never
// changes, even if the propagator keeps deriving facts.
func (p *Propagator) Snapshot() *Snapshot {
	s := &Snapshot{
		unique: make([]bool, p.sys.NumSignals()),
		count:  len(p.unique),
	}
	for id := range p.unique {
		s.unique[id] = true
	}
	return s
}

// IsUnique reports whether signal id was known unique at snapshot time.
func (s *Snapshot) IsUnique(id int) bool {
	return id >= 0 && id < len(s.unique) && s.unique[id]
}

// NumUnique returns the number of known-unique signals at snapshot time.
func (s *Snapshot) NumUnique() int { return s.count }

// AddUnique injects an externally-proven fact and re-propagates.
// It reports whether the fact was new.
func (p *Propagator) AddUnique(id int, src Source) bool {
	if p.IsUnique(id) {
		return false
	}
	p.unique[id] = src
	p.order = append(p.order, id)
	if src.Rule == RuleExternal {
		p.cExternal.Inc()
	}
	p.fixpoint([]int{id})
	return true
}

// AddUniqueExternal is AddUnique with RuleExternal provenance.
func (p *Propagator) AddUniqueExternal(id int) bool {
	return p.AddUnique(id, Source{Rule: RuleExternal, Constraint: -1})
}

// AddUniqueStatic is AddUnique with RuleStatic provenance (facts from the
// static-analysis pre-pass).
func (p *Propagator) AddUniqueStatic(id int) bool {
	return p.AddUnique(id, Source{Rule: RuleStatic, Constraint: -1})
}

// fixpoint applies R-Solve until no constraint fires. If dirty is nil every
// constraint is considered; otherwise only constraints reachable from the
// given freshly-unique signals.
func (p *Propagator) fixpoint(dirty []int) {
	pending := map[int]bool{}
	if dirty == nil {
		for ci := range p.quads {
			pending[ci] = true
		}
	} else {
		for _, v := range dirty {
			for _, ci := range p.sigCons[v] {
				pending[ci] = true
			}
		}
	}
	// Worklist loop.
	for len(pending) > 0 {
		// Deterministic order: smallest constraint index first.
		var ci int
		first := true
		for k := range pending {
			if first || k < ci {
				ci = k
				first = false
			}
		}
		delete(pending, ci)
		var resolved []int
		var rule Rule
		if !p.opts.DisableSolve {
			p.cSolveAttempts.Inc()
			if x, ok := p.ruleSolve(ci); ok {
				resolved = []int{x}
				rule = RuleSolve
				p.cSolveFired.Inc()
			}
		}
		if resolved == nil && !p.opts.DisableBits {
			p.cBitsAttempts.Inc()
			if xs, ok := p.ruleBits(ci); ok {
				resolved = xs
				rule = RuleBits
				p.cBitsFired.Inc()
				p.cBitsResolve.Add(int64(len(xs)))
			}
		}
		for _, x := range resolved {
			p.unique[x] = Source{Rule: rule, Constraint: ci}
			p.order = append(p.order, x)
			for _, next := range p.sigCons[x] {
				pending[next] = true
			}
		}
	}
}

// booleanOf recognizes a boolean constraint: the expanded polynomial is a
// nonzero multiple of x² − x for a single signal x, which forces x ∈ {0,1}.
func booleanOf(q *poly.Quad) (int, bool) {
	vars := q.Vars()
	if len(vars) != 1 || q.NumQuadTerms() != 1 {
		return 0, false
	}
	x := vars[0]
	c := q.CoeffPair(x, x)
	if c.IsZero() {
		return 0, false
	}
	f := q.Field()
	if !q.Lin().Constant().IsZero() {
		return 0, false
	}
	if q.Lin().Coeff(x) != f.Neg(c) {
		return 0, false
	}
	return x, true
}

// ruleBits fires on a constraint whose unknowns are all boolean-constrained
// signals occurring linearly with constant coefficients that form a
// super-increasing sequence with total magnitude below the field modulus.
// Such a linear equation has at most one solution over {0,1}^k for any
// fixed value of the known part, so every unknown becomes unique.
func (p *Propagator) ruleBits(ci int) ([]int, bool) {
	q := p.quads[ci]
	f := q.Field()
	var unknowns []int
	for _, v := range q.Vars() {
		if p.IsUnique(v) {
			continue
		}
		if !p.boolean[v] {
			return nil, false
		}
		unknowns = append(unknowns, v)
	}
	if len(unknowns) == 0 {
		return nil, false
	}
	// Every unknown must occur only linearly (no quadratic monomial may
	// involve an unknown), with a constant nonzero coefficient.
	mags := make([]*big.Int, 0, len(unknowns))
	for _, x := range unknowns {
		for _, y := range q.Vars() {
			if !q.CoeffPair(x, y).IsZero() {
				return nil, false
			}
		}
		c := q.Lin().Coeff(x)
		if c.IsZero() {
			return nil, false
		}
		mag := new(big.Int).Abs(f.Signed(c))
		mags = append(mags, mag)
	}
	// Super-increasing check on magnitudes: sorted ascending, each entry
	// strictly exceeds the sum of all previous ones, and the total stays
	// below the modulus (so field arithmetic cannot wrap a collision in).
	sort.Slice(mags, func(i, j int) bool { return mags[i].Cmp(mags[j]) < 0 })
	sum := new(big.Int)
	for _, m := range mags {
		if m.Cmp(sum) <= 0 {
			return nil, false
		}
		sum.Add(sum, m)
	}
	if sum.Cmp(f.Modulus()) >= 0 {
		return nil, false
	}
	return unknowns, true
}

// ruleSolve checks whether constraint ci pins down exactly one new signal,
// returning it.
func (p *Propagator) ruleSolve(ci int) (int, bool) {
	q := p.quads[ci]
	// Find the unknowns.
	unknown := -1
	for _, v := range q.Vars() {
		if p.IsUnique(v) {
			continue
		}
		if unknown != -1 {
			return 0, false // two or more unknowns
		}
		unknown = v
	}
	if unknown == -1 {
		return 0, false
	}
	x := unknown
	// x must not occur in any quadratic monomial: x² would give two roots,
	// and x·y (even with y unique) has a vanishing coefficient when y = 0.
	if !q.CoeffPair(x, x).IsZero() {
		return 0, false
	}
	for _, y := range q.Vars() {
		if y != x && !q.CoeffPair(x, y).IsZero() {
			return 0, false
		}
	}
	// Linear occurrence with a constant nonzero coefficient.
	if q.Lin().Coeff(x).IsZero() {
		return 0, false
	}
	return x, true
}

// OutputsUnique reports whether every output signal is known unique.
func (p *Propagator) OutputsUnique() bool {
	for _, o := range p.sys.Outputs() {
		if !p.IsUnique(o) {
			return false
		}
	}
	return true
}
