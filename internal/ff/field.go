// Package ff implements arithmetic over prime finite fields F_p.
//
// It is the numeric substrate of the whole system: circuit signals take
// values in F_p, constraints are polynomial equations over F_p, and the
// solver reasons about satisfiability of such equations. Elements are
// represented as *big.Int values normalized into the half-open interval
// [0, p); all operations go through a *Field, which owns the modulus and
// never mutates its arguments.
//
// The package ships the BN254 scalar field (the default field of the Circom
// toolchain) plus helpers to construct arbitrary prime fields, including
// small ones used by the test suite for exhaustive cross-validation.
package ff

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Field represents the prime field F_p for an odd prime p.
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	p        *big.Int // the modulus
	pMinus1  *big.Int // p - 1
	pMinus2  *big.Int // p - 2, exponent for Fermat inversion
	half     *big.Int // (p - 1) / 2, threshold for signed interpretation
	bitLen   int
	name     string
	isSmall  bool   // p fits in int64 (enables exhaustive enumeration)
	smallMod uint64 // p as uint64 when isSmall
}

// ErrNotPrime is returned by NewField when the modulus fails the primality test.
var ErrNotPrime = errors.New("ff: modulus is not prime")

// ErrDivByZero is returned when inverting or dividing by zero.
var ErrDivByZero = errors.New("ff: division by zero")

// NewField constructs the prime field F_p. It returns ErrNotPrime if p is
// not (probably) prime, and an error if p < 3.
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 || p.Cmp(big.NewInt(3)) < 0 {
		return nil, fmt.Errorf("ff: modulus must be an odd prime >= 3, got %v", p)
	}
	if !p.ProbablyPrime(32) {
		return nil, ErrNotPrime
	}
	f := &Field{p: new(big.Int).Set(p)}
	f.pMinus1 = new(big.Int).Sub(f.p, big.NewInt(1))
	f.pMinus2 = new(big.Int).Sub(f.p, big.NewInt(2))
	f.half = new(big.Int).Rsh(f.pMinus1, 1)
	f.bitLen = f.p.BitLen()
	if f.p.IsUint64() {
		f.isSmall = true
		f.smallMod = f.p.Uint64()
	}
	f.name = fmt.Sprintf("F_%s", shortModulus(f.p))
	return f, nil
}

// MustField is like NewField but panics on error. Intended for package-level
// well-known fields and tests.
func MustField(p *big.Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// MustFieldFromString parses a decimal (or 0x-prefixed hex) modulus and
// constructs the field, panicking on error.
func MustFieldFromString(s string) *Field {
	p, ok := new(big.Int).SetString(s, 0)
	if !ok {
		panic(fmt.Sprintf("ff: cannot parse modulus %q", s))
	}
	return MustField(p)
}

// SmallField constructs F_p for a small prime given as an int64.
func SmallField(p int64) (*Field, error) { return NewField(big.NewInt(p)) }

// BN254 returns the scalar field of the BN254 curve, the default field used
// by the Circom compiler and most deployed Circom circuits.
func BN254() *Field { return bn254 }

var bn254 = MustFieldFromString("21888242871839275222246405745257275088548364400416034343698204186575808495617")

// Modulus returns a copy of the field modulus.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.p) }

// BitLen returns the bit length of the modulus.
func (f *Field) BitLen() int { return f.bitLen }

// Name returns a short human-readable name such as "F_97" or "F_2188…5617".
func (f *Field) Name() string { return f.name }

// IsSmall reports whether the modulus fits in a uint64, which enables
// exhaustive enumeration strategies in the solver and test suite.
func (f *Field) IsSmall() bool { return f.isSmall }

// SmallModulus returns the modulus as a uint64. It panics if !IsSmall().
func (f *Field) SmallModulus() uint64 {
	if !f.isSmall {
		panic("ff: SmallModulus on large field")
	}
	return f.smallMod
}

// SameField reports whether g is the same field (same modulus) as f.
func (f *Field) SameField(g *Field) bool {
	return f == g || (g != nil && f.p.Cmp(g.p) == 0)
}

// shortModulus renders a modulus compactly for field names.
func shortModulus(p *big.Int) string {
	s := p.String()
	if len(s) <= 10 {
		return s
	}
	return s[:4] + "…" + s[len(s)-4:]
}

// --- element construction -------------------------------------------------

// Zero returns the additive identity.
func (f *Field) Zero() *big.Int { return new(big.Int) }

// One returns the multiplicative identity.
func (f *Field) One() *big.Int { return big.NewInt(1) }

// NewElement reduces the signed integer v into [0, p).
func (f *Field) NewElement(v int64) *big.Int {
	return f.Reduce(big.NewInt(v))
}

// Reduce returns v mod p in [0, p) without mutating v.
func (f *Field) Reduce(v *big.Int) *big.Int {
	r := new(big.Int).Mod(v, f.p)
	return r
}

// FromString parses a decimal or 0x-hex literal (optionally negative) and
// reduces it into the field.
func (f *Field) FromString(s string) (*big.Int, error) {
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return nil, fmt.Errorf("ff: cannot parse field element %q", s)
	}
	return f.Reduce(v), nil
}

// MustElement is FromString, panicking on parse failure.
func (f *Field) MustElement(s string) *big.Int {
	v, err := f.FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsValid reports whether v is already normalized into [0, p).
func (f *Field) IsValid(v *big.Int) bool {
	return v != nil && v.Sign() >= 0 && v.Cmp(f.p) < 0
}

// --- arithmetic -------------------------------------------------------------

// Add returns a + b mod p.
func (f *Field) Add(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	if r.Cmp(f.p) >= 0 {
		r.Sub(r, f.p)
	}
	return r
}

// Sub returns a - b mod p.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	if r.Sign() < 0 {
		r.Add(r, f.p)
	}
	return r
}

// Neg returns -a mod p.
func (f *Field) Neg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(f.p, a)
}

// Mul returns a * b mod p.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, f.p)
}

// Square returns a² mod p.
func (f *Field) Square(a *big.Int) *big.Int { return f.Mul(a, a) }

// Double returns 2a mod p.
func (f *Field) Double(a *big.Int) *big.Int { return f.Add(a, a) }

// Inv returns a⁻¹ mod p, or ErrDivByZero if a ≡ 0.
func (f *Field) Inv(a *big.Int) (*big.Int, error) {
	if new(big.Int).Mod(a, f.p).Sign() == 0 {
		return nil, ErrDivByZero
	}
	// ModInverse via extended Euclid is faster than Fermat for big moduli.
	r := new(big.Int).ModInverse(a, f.p)
	if r == nil {
		return nil, ErrDivByZero
	}
	return r, nil
}

// MustInv is Inv, panicking on division by zero.
func (f *Field) MustInv(a *big.Int) *big.Int {
	r, err := f.Inv(a)
	if err != nil {
		panic(err)
	}
	return r
}

// Div returns a / b mod p, or ErrDivByZero if b ≡ 0.
func (f *Field) Div(a, b *big.Int) (*big.Int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// Exp returns a^e mod p for a non-negative exponent e.
// A negative exponent is interpreted as (a⁻¹)^|e| and panics if a ≡ 0.
func (f *Field) Exp(a, e *big.Int) *big.Int {
	if e.Sign() < 0 {
		inv := f.MustInv(a)
		return new(big.Int).Exp(inv, new(big.Int).Neg(e), f.p)
	}
	return new(big.Int).Exp(a, e, f.p)
}

// ExpInt is Exp with an int64 exponent.
func (f *Field) ExpInt(a *big.Int, e int64) *big.Int {
	return f.Exp(a, big.NewInt(e))
}

// Equal reports a ≡ b (mod p) for already-normalized inputs.
func (f *Field) Equal(a, b *big.Int) bool { return a.Cmp(b) == 0 }

// IsZero reports a ≡ 0 for a normalized input.
func (f *Field) IsZero(a *big.Int) bool { return a.Sign() == 0 }

// IsOne reports a ≡ 1 for a normalized input.
func (f *Field) IsOne(a *big.Int) bool { return a.Cmp(oneInt) == 0 }

var oneInt = big.NewInt(1)

// Signed returns the representative of a in (-(p-1)/2, (p-1)/2], which is the
// conventional "signed" reading of field elements used in diagnostics
// (e.g. printing -1 instead of p-1).
func (f *Field) Signed(a *big.Int) *big.Int {
	if a.Cmp(f.half) > 0 {
		return new(big.Int).Sub(a, f.p)
	}
	return new(big.Int).Set(a)
}

// String renders a normalized element using the signed representative when
// that is shorter, e.g. "-1" rather than the full modulus-minus-one literal.
func (f *Field) String(a *big.Int) string {
	s := f.Signed(a)
	return s.String()
}

// --- batch / aggregate operations -------------------------------------------

// Sum returns the field sum of all vs.
func (f *Field) Sum(vs ...*big.Int) *big.Int {
	r := new(big.Int)
	for _, v := range vs {
		r.Add(r, v)
	}
	return r.Mod(r, f.p)
}

// Prod returns the field product of all vs (1 for the empty product).
func (f *Field) Prod(vs ...*big.Int) *big.Int {
	r := big.NewInt(1)
	for _, v := range vs {
		r.Mul(r, v)
		r.Mod(r, f.p)
	}
	return r
}

// BatchInv inverts every element of vs with a single field inversion
// (Montgomery's trick). It returns ErrDivByZero if any element is zero.
func (f *Field) BatchInv(vs []*big.Int) ([]*big.Int, error) {
	n := len(vs)
	if n == 0 {
		return nil, nil
	}
	prefix := make([]*big.Int, n)
	acc := big.NewInt(1)
	for i, v := range vs {
		if v.Sign() == 0 {
			return nil, ErrDivByZero
		}
		prefix[i] = new(big.Int).Set(acc)
		acc = f.Mul(acc, v)
	}
	accInv, err := f.Inv(acc)
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = f.Mul(accInv, prefix[i])
		accInv = f.Mul(accInv, vs[i])
	}
	return out, nil
}

// --- randomness ---------------------------------------------------------------

// Rand returns a uniformly random field element using crypto/rand.
func (f *Field) Rand() *big.Int {
	v, err := rand.Int(rand.Reader, f.p)
	if err != nil {
		panic(fmt.Sprintf("ff: crypto/rand failure: %v", err))
	}
	return v
}

// RandSource abstracts the subset of math/rand we need, so deterministic
// test generators can be plugged in.
type RandSource interface {
	Uint64() uint64
}

// RandFrom returns a pseudo-random field element drawn from src. The
// distribution is uniform up to negligible modulo bias for large fields and
// exactly uniform via rejection for small fields.
func (f *Field) RandFrom(src RandSource) *big.Int {
	if f.isSmall {
		// Rejection sampling for exact uniformity.
		bound := f.smallMod
		limit := (^uint64(0) / bound) * bound
		for {
			v := src.Uint64()
			if v < limit {
				return new(big.Int).SetUint64(v % bound)
			}
		}
	}
	nWords := (f.bitLen + 127) / 64 // 64 extra bits drown the modulo bias
	v := new(big.Int)
	word := new(big.Int)
	for i := 0; i < nWords; i++ {
		v.Lsh(v, 64)
		v.Or(v, word.SetUint64(src.Uint64()))
	}
	return v.Mod(v, f.p)
}

// --- square roots & quadratic residues ------------------------------------

// Legendre returns the Legendre symbol (a/p): 0 if a ≡ 0, 1 if a is a
// nonzero quadratic residue, -1 otherwise.
func (f *Field) Legendre(a *big.Int) int {
	if new(big.Int).Mod(a, f.p).Sign() == 0 {
		return 0
	}
	r := f.Exp(a, f.half)
	if r.Cmp(oneInt) == 0 {
		return 1
	}
	return -1
}

// Sqrt returns a square root of a if one exists (Tonelli–Shanks), together
// with true; otherwise nil, false. For a ≡ 0 it returns 0, true.
func (f *Field) Sqrt(a *big.Int) (*big.Int, bool) {
	a = f.Reduce(a)
	if a.Sign() == 0 {
		return new(big.Int), true
	}
	if f.Legendre(a) != 1 {
		return nil, false
	}
	// p ≡ 3 (mod 4): direct exponentiation.
	if f.p.Bit(0) == 1 && f.p.Bit(1) == 1 {
		e := new(big.Int).Add(f.p, oneInt)
		e.Rsh(e, 2)
		return f.Exp(a, e), true
	}
	// Tonelli–Shanks. Write p-1 = q·2^s with q odd.
	q := new(big.Int).Set(f.pMinus1)
	s := 0
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	// Find a quadratic non-residue z.
	z := big.NewInt(2)
	for f.Legendre(z) != -1 {
		z.Add(z, oneInt)
	}
	m := s
	c := f.Exp(z, q)
	t := f.Exp(a, q)
	r := f.Exp(a, new(big.Int).Rsh(new(big.Int).Add(q, oneInt), 1))
	for t.Cmp(oneInt) != 0 {
		// Find least i in (0, m) with t^(2^i) == 1.
		i := 0
		t2 := new(big.Int).Set(t)
		for t2.Cmp(oneInt) != 0 {
			t2 = f.Square(t2)
			i++
			if i == m {
				return nil, false // unreachable for residues; defensive
			}
		}
		b := new(big.Int).Set(c)
		for j := 0; j < m-i-1; j++ {
			b = f.Square(b)
		}
		m = i
		c = f.Square(b)
		t = f.Mul(t, c)
		r = f.Mul(r, b)
	}
	return r, true
}
