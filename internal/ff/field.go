// Package ff implements arithmetic over prime finite fields F_p.
//
// It is the numeric substrate of the whole system: circuit signals take
// values in F_p, constraints are polynomial equations over F_p, and the
// solver reasons about satisfiability of such equations. Elements are
// represented by the fixed-limb value type Element — Montgomery form on
// four 64-bit limbs for large primes, a direct single-uint64 fast path for
// small ones — and all operations go through a *Field, which owns the
// modulus and never mutates its arguments. *big.Int appears only at the
// conversion boundary (parsing, printing, serialization, and the
// compile-time evaluator of the Circom front-end), via the *Big methods.
//
// The package ships the BN254 scalar field (the default field of the Circom
// toolchain) plus helpers to construct arbitrary prime fields up to 256
// bits, including small ones used by the test suite for exhaustive
// cross-validation.
package ff

import (
	"errors"
	"fmt"
	"math/big" //qed2:allow-mathbig — modulus bookkeeping and *Big reference ops, cold path
	"sync"
)

// Field represents the prime field F_p for an odd prime p.
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	p        *big.Int // the modulus
	pMinus1  *big.Int // p - 1
	pMinus2  *big.Int // p - 2, exponent for Fermat inversion
	half     *big.Int // (p - 1) / 2, threshold for signed interpretation
	bitLen   int
	byteLen  int
	name     string
	isSmall  bool   // p fits in uint64 (enables exhaustive enumeration)
	smallMod uint64 // p as uint64 when isSmall

	// Large-field (Montgomery) constants; unused when isSmall.
	pLimbs  Element // the modulus as limbs
	pInv    uint64  // -p⁻¹ mod 2^64
	rSquare Element // R² mod p (plain limbs), for conversion into Montgomery form
	one     Element // the multiplicative identity in the element representation
}

// ErrNotPrime is returned by NewField when the modulus fails the primality test.
var ErrNotPrime = errors.New("ff: modulus is not prime")

// ErrDivByZero is returned when inverting or dividing by zero.
var ErrDivByZero = errors.New("ff: division by zero")

// fieldCache memoizes constructed fields by modulus so that repeated
// NewField calls (the test suite builds thousands of small fields) pay the
// ProbablyPrime check and Montgomery-constant setup only once. Fields are
// immutable, so sharing is safe.
var (
	fieldCacheMu sync.RWMutex
	fieldCache   = map[string]*Field{}
)

// NewField constructs the prime field F_p. It returns ErrNotPrime if p is
// not (probably) prime, and an error if p < 3 or p is wider than
// MaxModulusBits. Fields are cached by modulus, so constructing the same
// field twice returns the same (immutable, concurrency-safe) *Field.
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 || p.Cmp(big.NewInt(3)) < 0 {
		return nil, fmt.Errorf("ff: modulus must be an odd prime >= 3, got %v", p)
	}
	key := p.String()
	fieldCacheMu.RLock()
	cached := fieldCache[key]
	fieldCacheMu.RUnlock()
	if cached != nil {
		return cached, nil
	}
	if p.BitLen() > MaxModulusBits {
		return nil, fmt.Errorf("ff: modulus wider than %d bits is not supported (got %d bits)", MaxModulusBits, p.BitLen())
	}
	if !p.ProbablyPrime(32) {
		return nil, ErrNotPrime
	}
	f := &Field{p: new(big.Int).Set(p)}
	f.pMinus1 = new(big.Int).Sub(f.p, big.NewInt(1))
	f.pMinus2 = new(big.Int).Sub(f.p, big.NewInt(2))
	f.half = new(big.Int).Rsh(f.pMinus1, 1)
	f.bitLen = f.p.BitLen()
	f.byteLen = (f.bitLen + 7) / 8
	if f.p.IsUint64() {
		f.isSmall = true
		f.smallMod = f.p.Uint64()
		f.one = Element{1}
	} else {
		f.pLimbs = limbsFromBig(f.p)
		// -p⁻¹ mod 2^64 by Newton iteration (p is odd, so invertible).
		inv := f.pLimbs[0]
		for i := 0; i < 5; i++ {
			inv *= 2 - f.pLimbs[0]*inv
		}
		f.pInv = -inv
		r2 := new(big.Int).Lsh(big.NewInt(1), 2*MaxModulusBits)
		f.rSquare = limbsFromBig(r2.Mod(r2, f.p))
		r := new(big.Int).Lsh(big.NewInt(1), MaxModulusBits)
		f.one = limbsFromBig(r.Mod(r, f.p))
	}
	f.name = fmt.Sprintf("F_%s", shortModulus(f.p))
	fieldCacheMu.Lock()
	if prior, ok := fieldCache[key]; ok {
		f = prior // lost a construction race; keep the canonical instance
	} else {
		fieldCache[key] = f
	}
	fieldCacheMu.Unlock()
	return f, nil
}

// MustField is like NewField but panics on error. Intended for package-level
// well-known fields and tests.
func MustField(p *big.Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// MustFieldFromString parses a decimal (or 0x-prefixed hex) modulus and
// constructs the field, panicking on error.
func MustFieldFromString(s string) *Field {
	p, ok := new(big.Int).SetString(s, 0)
	if !ok {
		panic(fmt.Sprintf("ff: cannot parse modulus %q", s))
	}
	return MustField(p)
}

// SmallField constructs F_p for a small prime given as an int64.
func SmallField(p int64) (*Field, error) { return NewField(big.NewInt(p)) }

// BN254 returns the scalar field of the BN254 curve, the default field used
// by the Circom compiler and most deployed Circom circuits.
func BN254() *Field { return bn254 }

var bn254 = MustFieldFromString("21888242871839275222246405745257275088548364400416034343698204186575808495617")

// Modulus returns a copy of the field modulus.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.p) }

// BitLen returns the bit length of the modulus.
func (f *Field) BitLen() int { return f.bitLen }

// ByteLen returns the byte length of the Bytes encoding.
func (f *Field) ByteLen() int { return f.byteLen }

// Name returns a short human-readable name such as "F_97" or "F_2188…5617".
func (f *Field) Name() string { return f.name }

// IsSmall reports whether the modulus fits in a uint64, which enables
// exhaustive enumeration strategies in the solver and test suite.
func (f *Field) IsSmall() bool { return f.isSmall }

// SmallModulus returns the modulus as a uint64. It panics if !IsSmall().
func (f *Field) SmallModulus() uint64 {
	if !f.isSmall {
		panic("ff: SmallModulus on large field")
	}
	return f.smallMod
}

// SameField reports whether g is the same field (same modulus) as f.
func (f *Field) SameField(g *Field) bool {
	return f == g || (g != nil && f.p.Cmp(g.p) == 0)
}

// shortModulus renders a modulus compactly for field names.
func shortModulus(p *big.Int) string {
	s := p.String()
	if len(s) <= 10 {
		return s
	}
	return s[:4] + "…" + s[len(s)-4:]
}

// --- big.Int boundary API ----------------------------------------------------
//
// These arbitrary-precision operations exist for the edges of the system —
// parsing, printing, serialization, and the Circom compile-time evaluator,
// whose integer semantics (array indices, loop bounds, shifts) are
// inherently big.Int-shaped — and as the reference implementation the
// differential tests check the limb arithmetic against. None of them may
// appear in solver, substitution or witness-checking hot paths.

// Reduce returns v mod p in [0, p) without mutating v.
func (f *Field) Reduce(v *big.Int) *big.Int {
	return new(big.Int).Mod(v, f.p)
}

// IsValidBig reports whether v is already normalized into [0, p).
func (f *Field) IsValidBig(v *big.Int) bool {
	return v != nil && v.Sign() >= 0 && v.Cmp(f.p) < 0
}

// AddBig returns a + b mod p for normalized inputs.
func (f *Field) AddBig(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	if r.Cmp(f.p) >= 0 {
		r.Sub(r, f.p)
	}
	return r
}

// SubBig returns a - b mod p for normalized inputs.
func (f *Field) SubBig(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	if r.Sign() < 0 {
		r.Add(r, f.p)
	}
	return r
}

// NegBig returns -a mod p for a normalized input.
func (f *Field) NegBig(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(f.p, a)
}

// MulBig returns a * b mod p.
func (f *Field) MulBig(a, b *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, f.p)
}

// InvBig returns a⁻¹ mod p, or ErrDivByZero if a ≡ 0.
func (f *Field) InvBig(a *big.Int) (*big.Int, error) {
	if new(big.Int).Mod(a, f.p).Sign() == 0 {
		return nil, ErrDivByZero
	}
	r := new(big.Int).ModInverse(a, f.p)
	if r == nil {
		return nil, ErrDivByZero
	}
	return r, nil
}

// DivBig returns a / b mod p, or ErrDivByZero if b ≡ 0.
func (f *Field) DivBig(a, b *big.Int) (*big.Int, error) {
	bi, err := f.InvBig(b)
	if err != nil {
		return nil, err
	}
	return f.MulBig(a, bi), nil
}

// ExpBig returns a^e mod p for a non-negative exponent e. A negative
// exponent is interpreted as (a⁻¹)^|e| and panics if a ≡ 0.
func (f *Field) ExpBig(a, e *big.Int) *big.Int {
	if e.Sign() < 0 {
		inv, err := f.InvBig(a)
		if err != nil {
			panic(err)
		}
		return new(big.Int).Exp(inv, new(big.Int).Neg(e), f.p)
	}
	return new(big.Int).Exp(a, e, f.p)
}

// SignedBig returns the representative of a normalized big.Int element in
// (-(p-1)/2, (p-1)/2], the conventional "signed" reading used in
// diagnostics (e.g. printing -1 instead of p-1).
func (f *Field) SignedBig(a *big.Int) *big.Int {
	if a.Cmp(f.half) > 0 {
		return new(big.Int).Sub(a, f.p)
	}
	return new(big.Int).Set(a)
}
