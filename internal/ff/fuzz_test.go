package ff

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzElementCodec exercises the parse/print/serialize boundary: FromString
// on arbitrary text, SetBytes on arbitrary byte strings, and the
// String/Bytes round-trips. Malformed and out-of-range inputs must be
// rejected with errors, never panics, and every accepted value must
// round-trip exactly. Runs its seed corpus as part of the ordinary
// `go test` invocation.
func FuzzElementCodec(f *testing.F) {
	f.Add("0", []byte{0x00})
	f.Add("1", []byte{0x01})
	f.Add("-1", []byte{0x60})
	f.Add("96", []byte{0x61})
	f.Add("0x61", []byte{0xff})
	f.Add("zebra", []byte("zebra"))
	f.Add("21888242871839275222246405745257275088548364400416034343698204186575808495616",
		bytes.Repeat([]byte{0xff}, 32))
	f.Add("115792089237316195423570985008687907853269984665640564039457584007913129639935", []byte{})
	f.Fuzz(func(t *testing.T, s string, raw []byte) {
		fields := []*Field{BN254(), MustField(big.NewInt(97)), MustFieldFromString("18446744073709551557")}
		for _, fld := range fields {
			// FromString: any outcome is fine except a panic; successes must
			// produce canonical elements that survive the text round-trip.
			if e, err := fld.FromString(s); err == nil {
				if !fld.IsValid(e) {
					t.Fatalf("%s: FromString(%q) non-canonical: %v", fld.Name(), s, e)
				}
				back, err := fld.FromString(fld.String(e))
				if err != nil || back != e {
					t.Fatalf("%s: String round-trip broke on %q: %v %v", fld.Name(), s, back, err)
				}
			}
			// SetBytes: reject wrong lengths and out-of-range values, round-trip
			// the rest.
			if e, err := fld.SetBytes(raw); err == nil {
				if len(raw) != fld.ByteLen() {
					t.Fatalf("%s: SetBytes accepted %d bytes, want %d", fld.Name(), len(raw), fld.ByteLen())
				}
				if !fld.IsValid(e) {
					t.Fatalf("%s: SetBytes(%x) non-canonical: %v", fld.Name(), raw, e)
				}
				if got := fld.Bytes(e); !bytes.Equal(got, raw) {
					t.Fatalf("%s: Bytes round-trip: %x != %x", fld.Name(), got, raw)
				}
			} else if len(raw) == fld.ByteLen() && new(big.Int).SetBytes(raw).Cmp(fld.Modulus()) < 0 {
				t.Fatalf("%s: SetBytes rejected valid encoding %x: %v", fld.Name(), raw, err)
			}
			// Bytes ∘ FromBig is always decodable.
			v := new(big.Int).SetBytes(raw)
			e := fld.FromBig(v)
			enc := fld.Bytes(e)
			back, err := fld.SetBytes(enc)
			if err != nil || back != e {
				t.Fatalf("%s: Bytes(FromBig(%v)) not decodable: %v %v", fld.Name(), v, back, err)
			}
		}
	})
}
