package ff

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests: every Element operation must agree with the retained
// *big.Int reference implementation (the *Big boundary API plus big.Int
// modular arithmetic), over BN254 and a spread of small and odd-limb-count
// primes, including the edge values 0, 1, p-1 and Montgomery round-trips.

// diffFields returns the fields the differential suite runs over: BN254
// (4 limbs, the production field), primes occupying 1, 2 and 3 limbs (odd
// limb counts exercise the zero high limbs of the representation), and tiny
// primes on the small-field fast path.
func diffFields(t testing.TB) []*Field {
	t.Helper()
	return []*Field{
		BN254(),
		// 3-limb prime: 2^190 - 11.
		MustField(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 190), big.NewInt(11))),
		// 2-limb prime: 2^127 - 1 (Mersenne).
		MustField(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))),
		// 1-limb primes: large 64-bit (still small-field path) and truly tiny.
		MustFieldFromString("18446744073709551557"), // largest prime < 2^64
		MustField(big.NewInt(65537)),
		MustField(big.NewInt(97)),
		MustField(big.NewInt(3)),
	}
}

// edgeValues returns the boundary cases every property also checks
// explicitly, since quick.Check rarely generates them.
func edgeValues(f *Field) []*big.Int {
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(f.Modulus(), big.NewInt(1)),
		new(big.Int).Sub(f.Modulus(), big.NewInt(2)),
		new(big.Int).Rsh(f.Modulus(), 1),
	}
}

// randBig draws a uniform value in [0, p) from a deterministic source.
func randBig(f *Field, rng *rand.Rand) *big.Int {
	return new(big.Int).Rand(rng, f.Modulus())
}

// checkPair runs prop on (a, b) picked from the quick.Check stream plus all
// edge-value pairs.
func forAllPairs(t *testing.T, f *Field, prop func(a, b *big.Int) bool) {
	t.Helper()
	edges := edgeValues(f)
	for _, a := range edges {
		for _, b := range edges {
			if !prop(a, b) {
				t.Fatalf("%s: property failed on edge pair a=%v b=%v", f.Name(), a, b)
			}
		}
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(0xd1ff)),
	}
	wrapped := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return prop(randBig(f, r), randBig(f, r))
	}
	if err := quick.Check(wrapped, cfg); err != nil {
		t.Fatalf("%s: %v", f.Name(), err)
	}
}

func TestElementDifferentialBinaryOps(t *testing.T) {
	for _, f := range diffFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			forAllPairs(t, f, func(a, b *big.Int) bool {
				ea, eb := f.FromBig(a), f.FromBig(b)
				ra, rb := f.Reduce(a), f.Reduce(b)
				if got, want := f.ToBig(f.Add(ea, eb)), f.AddBig(ra, rb); got.Cmp(want) != 0 {
					t.Errorf("Add(%v,%v) = %v, want %v", ra, rb, got, want)
					return false
				}
				if got, want := f.ToBig(f.Sub(ea, eb)), f.SubBig(ra, rb); got.Cmp(want) != 0 {
					t.Errorf("Sub(%v,%v) = %v, want %v", ra, rb, got, want)
					return false
				}
				if got, want := f.ToBig(f.Mul(ea, eb)), f.MulBig(ra, rb); got.Cmp(want) != 0 {
					t.Errorf("Mul(%v,%v) = %v, want %v", ra, rb, got, want)
					return false
				}
				wantDiv, errBig := f.DivBig(ra, rb)
				gotDiv, errElt := f.Div(ea, eb)
				if (errBig == nil) != (errElt == nil) {
					t.Errorf("Div(%v,%v) error mismatch: big=%v elt=%v", ra, rb, errBig, errElt)
					return false
				}
				if errBig == nil && f.ToBig(gotDiv).Cmp(wantDiv) != 0 {
					t.Errorf("Div(%v,%v) = %v, want %v", ra, rb, f.ToBig(gotDiv), wantDiv)
					return false
				}
				return true
			})
		})
	}
}

func TestElementDifferentialUnaryOps(t *testing.T) {
	for _, f := range diffFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			forAllPairs(t, f, func(a, e *big.Int) bool {
				ea := f.FromBig(a)
				ra := f.Reduce(a)
				if got, want := f.ToBig(f.Neg(ea)), f.NegBig(ra); got.Cmp(want) != 0 {
					t.Errorf("Neg(%v) = %v, want %v", ra, got, want)
					return false
				}
				if got, want := f.ToBig(f.Square(ea)), f.MulBig(ra, ra); got.Cmp(want) != 0 {
					t.Errorf("Square(%v) = %v, want %v", ra, got, want)
					return false
				}
				if got, want := f.ToBig(f.Double(ea)), f.AddBig(ra, ra); got.Cmp(want) != 0 {
					t.Errorf("Double(%v) = %v, want %v", ra, got, want)
					return false
				}
				wantInv, errBig := f.InvBig(ra)
				gotInv, errElt := f.Inv(ea)
				if (errBig == nil) != (errElt == nil) {
					t.Errorf("Inv(%v) error mismatch: big=%v elt=%v", ra, errBig, errElt)
					return false
				}
				if errBig == nil && f.ToBig(gotInv).Cmp(wantInv) != 0 {
					t.Errorf("Inv(%v) = %v, want %v", ra, f.ToBig(gotInv), wantInv)
					return false
				}
				exp := f.Reduce(e)
				if got, want := f.ToBig(f.Exp(ea, exp)), f.ExpBig(ra, exp); got.Cmp(want) != 0 {
					t.Errorf("Exp(%v,%v) = %v, want %v", ra, exp, got, want)
					return false
				}
				if got, want := f.Signed(ea), f.SignedBig(ra); got.Cmp(want) != 0 {
					t.Errorf("Signed(%v) = %v, want %v", ra, got, want)
					return false
				}
				return true
			})
		})
	}
}

// TestElementMontgomeryRoundTrip checks that FromBig → ToBig is the identity
// on [0, p) (i.e. the Montgomery conversion round-trips), that canonical
// representations make == coincide with field equality, and that the zero
// value is the additive identity.
func TestElementMontgomeryRoundTrip(t *testing.T) {
	for _, f := range diffFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			vals := append(edgeValues(f), randBig(f, rng), randBig(f, rng), randBig(f, rng))
			for _, v := range vals {
				rv := f.Reduce(v)
				e := f.FromBig(rv)
				if !f.IsValid(e) {
					t.Fatalf("FromBig(%v) not canonical: %v", rv, e)
				}
				if got := f.ToBig(e); got.Cmp(rv) != 0 {
					t.Fatalf("round-trip: ToBig(FromBig(%v)) = %v", rv, got)
				}
				if e2 := f.FromBig(new(big.Int).Add(rv, f.Modulus())); e2 != e {
					t.Fatalf("FromBig(%v + p) != FromBig(%v): representations not canonical", rv, rv)
				}
			}
			var zero Element
			if f.FromBig(big.NewInt(0)) != zero {
				t.Fatalf("FromBig(0) is not the zero Element")
			}
			if !f.IsOne(f.FromBig(big.NewInt(1))) {
				t.Fatalf("FromBig(1) is not One")
			}
			if f.Add(f.One(), zero) != f.One() {
				t.Fatalf("zero value is not the additive identity")
			}
		})
	}
}

func TestElementDifferentialAggregates(t *testing.T) {
	for _, f := range diffFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var elts []Element
			var bigs []*big.Int
			for i := 0; i < 9; i++ {
				v := randBig(f, rng)
				if i == 0 {
					v = big.NewInt(1) // BatchInv needs nonzero; include 1 and p-1
				}
				if i == 1 {
					v = new(big.Int).Sub(f.Modulus(), big.NewInt(1))
				}
				if v.Sign() == 0 {
					v = big.NewInt(1)
				}
				elts = append(elts, f.FromBig(v))
				bigs = append(bigs, f.Reduce(v))
			}
			sum := new(big.Int)
			prod := big.NewInt(1)
			for _, v := range bigs {
				sum = f.AddBig(sum, v)
				prod = f.MulBig(prod, v)
			}
			if got := f.ToBig(f.Sum(elts...)); got.Cmp(sum) != 0 {
				t.Fatalf("Sum = %v, want %v", got, sum)
			}
			if got := f.ToBig(f.Prod(elts...)); got.Cmp(prod) != 0 {
				t.Fatalf("Prod = %v, want %v", got, prod)
			}
			invs, err := f.BatchInv(elts)
			if err != nil {
				t.Fatalf("BatchInv: %v", err)
			}
			for i, inv := range invs {
				want, err := f.InvBig(bigs[i])
				if err != nil {
					t.Fatalf("InvBig(%v): %v", bigs[i], err)
				}
				if got := f.ToBig(inv); got.Cmp(want) != 0 {
					t.Fatalf("BatchInv[%d] = %v, want %v", i, got, want)
				}
			}
		})
	}
}

func TestElementDifferentialSqrtLegendre(t *testing.T) {
	for _, f := range diffFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			vals := append(edgeValues(f), randBig(f, rng), randBig(f, rng), randBig(f, rng), randBig(f, rng))
			for _, v := range vals {
				rv := f.Reduce(v)
				e := f.FromBig(rv)
				// Reference Legendre via big.Int Jacobi.
				want := big.Jacobi(rv, f.Modulus())
				if got := f.Legendre(e); got != want {
					t.Fatalf("Legendre(%v) = %d, want %d", rv, got, want)
				}
				root, ok := f.Sqrt(e)
				if ok != (want >= 0) {
					t.Fatalf("Sqrt(%v) ok=%v, want %v", rv, ok, want >= 0)
				}
				if ok {
					if got := f.ToBig(f.Square(root)); got.Cmp(rv) != 0 {
						t.Fatalf("Sqrt(%v)² = %v", rv, got)
					}
					// Cross-check the chosen root against big.Int ModSqrt up to sign:
					// the solver's search tree depends on which root comes back, and
					// both representations must keep choosing the same one.
					ref := new(big.Int).ModSqrt(rv, f.Modulus())
					if ref == nil {
						t.Fatalf("ModSqrt(%v) = nil but Sqrt succeeded", rv)
					}
					gotRoot := f.ToBig(root)
					if gotRoot.Cmp(ref) != 0 && gotRoot.Cmp(f.NegBig(ref)) != 0 {
						t.Fatalf("Sqrt(%v) = %v, not ±%v", rv, gotRoot, ref)
					}
				}
			}
		})
	}
}

// TestFieldCache pins the satellite fix: constructing the same field twice
// returns the identical cached instance and skips the repeated primality
// check (observable as identity, and as large-N construction being cheap).
func TestFieldCache(t *testing.T) {
	a := MustField(big.NewInt(101))
	b := MustField(big.NewInt(101))
	if a != b {
		t.Fatalf("NewField(101) not cached: got distinct instances")
	}
	c := MustFieldFromString("101")
	if a != c {
		t.Fatalf("MustFieldFromString(101) not cached")
	}
	if BN254() != MustField(BN254().Modulus()) {
		t.Fatalf("BN254 modulus not cached")
	}
	for i := 0; i < 5000; i++ {
		if f, err := SmallField(97); err != nil || f != MustField(big.NewInt(97)) {
			t.Fatalf("SmallField(97) iteration %d: %v %v", i, f, err)
		}
	}
}
