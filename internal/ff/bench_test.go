package ff

import (
	"math/big"
	"math/rand"
	"testing"
)

// BenchmarkFFOps measures the Element hot-path operations against the
// retained big.Int reference implementation. The refactor's acceptance bar
// is ≥5× on BN254 mul/add (element vs bigint sub-benchmarks).
func BenchmarkFFOps(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *Field
	}{
		{"BN254", BN254()},
		{"F1009", MustField(big.NewInt(1009))},
	} {
		f := tc.f
		rng := rand.New(rand.NewSource(42))
		ea, eb := f.RandFrom(rng), f.RandFrom(rng)
		for ea.IsZero() || eb.IsZero() {
			ea, eb = f.RandFrom(rng), f.RandFrom(rng)
		}
		ba, bb := f.ToBig(ea), f.ToBig(eb)

		b.Run(tc.name+"/mul/element", func(b *testing.B) {
			r := ea
			for i := 0; i < b.N; i++ {
				r = f.Mul(r, eb)
			}
			sinkElt = r
		})
		b.Run(tc.name+"/mul/bigint", func(b *testing.B) {
			r := new(big.Int).Set(ba)
			for i := 0; i < b.N; i++ {
				r = f.MulBig(r, bb)
			}
			sinkBig = r
		})
		b.Run(tc.name+"/add/element", func(b *testing.B) {
			r := ea
			for i := 0; i < b.N; i++ {
				r = f.Add(r, eb)
			}
			sinkElt = r
		})
		b.Run(tc.name+"/add/bigint", func(b *testing.B) {
			r := new(big.Int).Set(ba)
			for i := 0; i < b.N; i++ {
				r = f.AddBig(r, bb)
			}
			sinkBig = r
		})
		b.Run(tc.name+"/inv/element", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkElt = f.MustInv(ea)
			}
		})
		b.Run(tc.name+"/inv/bigint", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := f.InvBig(ba)
				if err != nil {
					b.Fatal(err)
				}
				sinkBig = r
			}
		})
		b.Run(tc.name+"/exp/element", func(b *testing.B) {
			e := big.NewInt(0xdeadbeef)
			for i := 0; i < b.N; i++ {
				sinkElt = f.Exp(ea, e)
			}
		})
		b.Run(tc.name+"/frombig", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkElt = f.FromBig(ba)
			}
		})
	}
}

var (
	sinkElt Element
	sinkBig *big.Int
)
