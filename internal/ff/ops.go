package ff

import (
	"crypto/rand"
	"fmt"
	"math/big" //qed2:allow-mathbig — string/rand conversions at the API boundary, cold path
	"math/bits"
)

// This file implements the Element operations of a Field. Everything here is
// allocation-free on the hot paths: small fields dispatch to single-word
// uint64 arithmetic on limb 0, large fields to the four-limb Montgomery core
// in element.go. Conversions to and from *big.Int (FromBig/ToBig and the
// string/bytes codecs) are the only places that touch the heap.

// --- element construction & conversion ---------------------------------------

// Zero returns the additive identity.
func (f *Field) Zero() Element { return Element{} }

// One returns the multiplicative identity.
func (f *Field) One() Element { return f.one }

// NewElement reduces the signed integer v into the field.
func (f *Field) NewElement(v int64) Element {
	if v >= 0 {
		return f.FromUint64(uint64(v))
	}
	return f.Neg(f.FromUint64(uint64(-v)))
}

// FromUint64 reduces v into the field.
func (f *Field) FromUint64(v uint64) Element {
	if f.isSmall {
		return Element{v % f.smallMod}
	}
	return f.toMont(Element{v})
}

// FromBig reduces a *big.Int (any sign, any magnitude) into the field's
// element representation.
func (f *Field) FromBig(v *big.Int) Element {
	if !f.IsValidBig(v) {
		v = f.Reduce(v)
	}
	if f.isSmall {
		return Element{v.Uint64()}
	}
	return f.toMont(limbsFromBig(v))
}

// ToBig returns the plain integer value of e in [0, p) as a fresh big.Int.
func (f *Field) ToBig(e Element) *big.Int {
	if f.isSmall {
		return new(big.Int).SetUint64(e[0])
	}
	return limbsToBig(f.fromMont(e))
}

// FromString parses a decimal or 0x-hex literal (optionally negative) and
// reduces it into the field.
func (f *Field) FromString(s string) (Element, error) {
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return Element{}, fmt.Errorf("ff: cannot parse field element %q", s)
	}
	return f.FromBig(v), nil
}

// MustElement is FromString, panicking on parse failure.
func (f *Field) MustElement(s string) Element {
	v, err := f.FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsValid reports whether e is a canonical representation of a field
// element: in-range, and with no stray high limbs on the small-field path.
func (f *Field) IsValid(e Element) bool {
	if f.isSmall {
		return e[1] == 0 && e[2] == 0 && e[3] == 0 && e[0] < f.smallMod
	}
	return ltLimbs(e, f.pLimbs)
}

// Bytes returns the fixed-width big-endian encoding of e's plain value,
// exactly ByteLen() bytes. It is the portable serialization counterpart of
// Element.AppendRawBytes (which encodes the internal representation).
func (f *Field) Bytes(e Element) []byte {
	plain := e
	if !f.isSmall {
		plain = f.fromMont(e)
	}
	out := make([]byte, f.byteLen)
	for k := 0; k < f.byteLen; k++ {
		out[f.byteLen-1-k] = byte(plain[k/8] >> (8 * (k % 8)))
	}
	return out
}

// SetBytes decodes a fixed-width big-endian encoding produced by Bytes.
// It rejects (without panicking) inputs of the wrong length and values
// outside [0, p).
func (f *Field) SetBytes(b []byte) (Element, error) {
	if len(b) != f.byteLen {
		return Element{}, fmt.Errorf("ff: encoded element must be %d bytes, got %d", f.byteLen, len(b))
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(f.p) >= 0 {
		return Element{}, fmt.Errorf("ff: encoded value %s out of range for %s", v, f.name)
	}
	if f.isSmall {
		return Element{v.Uint64()}, nil
	}
	return f.toMont(limbsFromBig(v)), nil
}

// --- arithmetic -------------------------------------------------------------

// Add returns a + b. The limb chains are unrolled in the method body so it
// stays within the inlining budget: add/sub dominate poly substitution.
func (f *Field) Add(a, b Element) Element {
	if f.isSmall {
		return f.addSmall(a, b)
	}
	var r, s Element
	var c, bw uint64
	r[0], c = bits.Add64(a[0], b[0], 0)
	r[1], c = bits.Add64(a[1], b[1], c)
	r[2], c = bits.Add64(a[2], b[2], c)
	r[3], c = bits.Add64(a[3], b[3], c)
	s[0], bw = bits.Sub64(r[0], f.pLimbs[0], 0)
	s[1], bw = bits.Sub64(r[1], f.pLimbs[1], bw)
	s[2], bw = bits.Sub64(r[2], f.pLimbs[2], bw)
	s[3], bw = bits.Sub64(r[3], f.pLimbs[3], bw)
	if c != 0 || bw == 0 {
		return s
	}
	return r
}

func (f *Field) addSmall(a, b Element) Element {
	s, c := bits.Add64(a[0], b[0], 0)
	if c != 0 || s >= f.smallMod {
		s -= f.smallMod
	}
	return Element{s}
}

// Sub returns a - b.
func (f *Field) Sub(a, b Element) Element {
	if f.isSmall {
		return f.subSmall(a, b)
	}
	var r, s Element
	var bw, c uint64
	r[0], bw = bits.Sub64(a[0], b[0], 0)
	r[1], bw = bits.Sub64(a[1], b[1], bw)
	r[2], bw = bits.Sub64(a[2], b[2], bw)
	r[3], bw = bits.Sub64(a[3], b[3], bw)
	s[0], c = bits.Add64(r[0], f.pLimbs[0], 0)
	s[1], c = bits.Add64(r[1], f.pLimbs[1], c)
	s[2], c = bits.Add64(r[2], f.pLimbs[2], c)
	s[3], _ = bits.Add64(r[3], f.pLimbs[3], c)
	if bw != 0 {
		return s
	}
	return r
}

func (f *Field) subSmall(a, b Element) Element {
	s, bw := bits.Sub64(a[0], b[0], 0)
	if bw != 0 {
		s += f.smallMod
	}
	return Element{s}
}

// Neg returns -a.
func (f *Field) Neg(a Element) Element {
	if a.IsZero() {
		return Element{}
	}
	if f.isSmall {
		return Element{f.smallMod - a[0]}
	}
	r, _ := subLimbs(f.pLimbs, a)
	return r
}

// Mul returns a * b.
func (f *Field) Mul(a, b Element) Element {
	if f.isSmall {
		hi, lo := bits.Mul64(a[0], b[0])
		_, rem := bits.Div64(hi, lo, f.smallMod)
		return Element{rem}
	}
	return f.montMul(a, b)
}

// Square returns a².
func (f *Field) Square(a Element) Element { return f.Mul(a, a) }

// Double returns 2a.
func (f *Field) Double(a Element) Element { return f.Add(a, a) }

// Inv returns a⁻¹, or ErrDivByZero if a ≡ 0. It runs the binary extended
// Euclidean algorithm on limbs (HAC 14.61), which stays allocation-free and
// is an order of magnitude faster than Fermat exponentiation.
func (f *Field) Inv(a Element) (Element, error) {
	if a.IsZero() {
		return Element{}, ErrDivByZero
	}
	if f.isSmall {
		return Element{invUint64(a[0], f.smallMod)}, nil
	}
	u := f.fromMont(a) // plain value x
	v := f.pLimbs
	x1 := Element{1}
	var x2 Element
	one := Element{1}
	for u != one && v != one {
		for u[0]&1 == 0 {
			u = shr1(u, 0)
			if x1[0]&1 == 0 {
				x1 = shr1(x1, 0)
			} else {
				s, c := addLimbs(x1, f.pLimbs)
				x1 = shr1(s, c)
			}
		}
		for v[0]&1 == 0 {
			v = shr1(v, 0)
			if x2[0]&1 == 0 {
				x2 = shr1(x2, 0)
			} else {
				s, c := addLimbs(x2, f.pLimbs)
				x2 = shr1(s, c)
			}
		}
		// Mod-p subtraction keeps the coefficients canonical; it works on
		// plain values because [0,p) arithmetic is representation-agnostic.
		if !ltLimbs(u, v) {
			u, _ = subLimbs(u, v)
			x1 = f.Sub(x1, x2)
		} else {
			v, _ = subLimbs(v, u)
			x2 = f.Sub(x2, x1)
		}
	}
	r := x1
	if u != one {
		r = x2
	}
	return f.toMont(r), nil // plain x⁻¹ back into Montgomery form
}

// MustInv is Inv, panicking on division by zero.
func (f *Field) MustInv(a Element) Element {
	r, err := f.Inv(a)
	if err != nil {
		panic(err)
	}
	return r
}

// Div returns a / b, or ErrDivByZero if b ≡ 0.
func (f *Field) Div(a, b Element) (Element, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return Element{}, err
	}
	return f.Mul(a, bi), nil
}

// Exp returns a^e for a non-negative exponent e, by square-and-multiply on
// the element representation. A negative exponent is interpreted as
// (a⁻¹)^|e| and panics if a ≡ 0.
func (f *Field) Exp(a Element, e *big.Int) Element {
	if e.Sign() < 0 {
		return f.Exp(f.MustInv(a), new(big.Int).Neg(e))
	}
	r := f.one
	for i := e.BitLen() - 1; i >= 0; i-- {
		r = f.Mul(r, r)
		if e.Bit(i) == 1 {
			r = f.Mul(r, a)
		}
	}
	return r
}

// ExpInt is Exp with an int64 exponent.
func (f *Field) ExpInt(a Element, e int64) Element {
	return f.Exp(a, big.NewInt(e))
}

// Equal reports a == b. (Representations are canonical, so this is plain
// value equality; it exists for symmetry with the rest of the API.)
func (f *Field) Equal(a, b Element) bool { return a == b }

// IsZero reports a ≡ 0.
func (f *Field) IsZero(a Element) bool { return a.IsZero() }

// IsOne reports a ≡ 1.
func (f *Field) IsOne(a Element) bool { return a == f.one }

var oneInt = big.NewInt(1)

// Signed returns the plain representative of a in (-(p-1)/2, (p-1)/2], the
// conventional "signed" reading of field elements used in diagnostics
// (e.g. printing -1 instead of p-1).
func (f *Field) Signed(a Element) *big.Int {
	return f.SignedBig(f.ToBig(a))
}

// String renders an element using the signed representative when that is
// shorter, e.g. "-1" rather than the full modulus-minus-one literal.
func (f *Field) String(a Element) string {
	return f.Signed(a).String()
}

// --- batch / aggregate operations -------------------------------------------

// Sum returns the field sum of all vs.
func (f *Field) Sum(vs ...Element) Element {
	var r Element
	for _, v := range vs {
		r = f.Add(r, v)
	}
	return r
}

// Prod returns the field product of all vs (1 for the empty product).
func (f *Field) Prod(vs ...Element) Element {
	r := f.one
	for _, v := range vs {
		r = f.Mul(r, v)
	}
	return r
}

// BatchInv inverts every element of vs with a single field inversion
// (Montgomery's trick). It returns ErrDivByZero if any element is zero.
func (f *Field) BatchInv(vs []Element) ([]Element, error) {
	n := len(vs)
	if n == 0 {
		return nil, nil
	}
	prefix := make([]Element, n)
	acc := f.one
	for i, v := range vs {
		if v.IsZero() {
			return nil, ErrDivByZero
		}
		prefix[i] = acc
		acc = f.Mul(acc, v)
	}
	accInv, err := f.Inv(acc)
	if err != nil {
		return nil, err
	}
	out := make([]Element, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = f.Mul(accInv, prefix[i])
		accInv = f.Mul(accInv, vs[i])
	}
	return out, nil
}

// --- randomness ---------------------------------------------------------------

// Rand returns a uniformly random field element using crypto/rand.
func (f *Field) Rand() Element {
	v, err := rand.Int(rand.Reader, f.p)
	if err != nil {
		panic(fmt.Sprintf("ff: crypto/rand failure: %v", err))
	}
	return f.FromBig(v)
}

// RandSource abstracts the subset of math/rand we need, so deterministic
// test generators can be plugged in.
type RandSource interface {
	Uint64() uint64
}

// RandFrom returns a pseudo-random field element drawn from src. The
// distribution is uniform up to negligible modulo bias for large fields and
// exactly uniform via rejection for small fields. The draw sequence (number
// of Uint64 calls and resulting value) is stable across releases: seeded
// runs must keep reproducing the same solver search trees.
func (f *Field) RandFrom(src RandSource) Element {
	if f.isSmall {
		// Rejection sampling for exact uniformity.
		bound := f.smallMod
		limit := (^uint64(0) / bound) * bound
		for {
			v := src.Uint64()
			if v < limit {
				return Element{v % bound}
			}
		}
	}
	nWords := (f.bitLen + 127) / 64 // 64 extra bits drown the modulo bias
	v := new(big.Int)
	word := new(big.Int)
	for i := 0; i < nWords; i++ {
		v.Lsh(v, 64)
		v.Or(v, word.SetUint64(src.Uint64()))
	}
	return f.FromBig(v.Mod(v, f.p))
}

// --- square roots & quadratic residues ------------------------------------

// Legendre returns the Legendre symbol (a/p): 0 if a ≡ 0, 1 if a is a
// nonzero quadratic residue, -1 otherwise.
func (f *Field) Legendre(a Element) int {
	if a.IsZero() {
		return 0
	}
	if f.Exp(a, f.half) == f.one {
		return 1
	}
	return -1
}

// Sqrt returns a square root of a if one exists (Tonelli–Shanks), together
// with true; otherwise the zero Element and false. For a ≡ 0 it returns
// 0, true. The chosen root is deterministic: callers branch the solver
// search on it, so it must not vary between runs or representations.
func (f *Field) Sqrt(a Element) (Element, bool) {
	if a.IsZero() {
		return Element{}, true
	}
	if f.Legendre(a) != 1 {
		return Element{}, false
	}
	// p ≡ 3 (mod 4): direct exponentiation.
	if f.p.Bit(0) == 1 && f.p.Bit(1) == 1 {
		e := new(big.Int).Add(f.p, oneInt)
		e.Rsh(e, 2)
		return f.Exp(a, e), true
	}
	// Tonelli–Shanks. Write p-1 = q·2^s with q odd.
	q := new(big.Int).Set(f.pMinus1)
	s := 0
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	// Find a quadratic non-residue z.
	zi := int64(2)
	z := f.NewElement(zi)
	for f.Legendre(z) != -1 {
		zi++
		z = f.NewElement(zi)
	}
	m := s
	c := f.Exp(z, q)
	t := f.Exp(a, q)
	r := f.Exp(a, new(big.Int).Rsh(new(big.Int).Add(q, oneInt), 1))
	for t != f.one {
		// Find least i in (0, m) with t^(2^i) == 1.
		i := 0
		t2 := t
		for t2 != f.one {
			t2 = f.Square(t2)
			i++
			if i == m {
				return Element{}, false // unreachable for residues; defensive
			}
		}
		b := c
		for j := 0; j < m-i-1; j++ {
			b = f.Square(b)
		}
		m = i
		c = f.Square(b)
		t = f.Mul(t, c)
		r = f.Mul(r, b)
	}
	return r, true
}
