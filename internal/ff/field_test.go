package ff

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var testFields = []*Field{
	BN254(),
	MustField(big.NewInt(97)),
	MustField(big.NewInt(1009)),
	MustField(big.NewInt((1 << 31) - 1)), // Mersenne prime 2^31-1
}

func TestNewFieldRejectsComposite(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 4, 9, 15, 100, 1 << 20} {
		if _, err := SmallField(n); err == nil {
			t.Errorf("NewField(%d) accepted a non-prime/out-of-range modulus", n)
		}
	}
}

func TestNewFieldAcceptsPrimes(t *testing.T) {
	for _, n := range []int64{3, 5, 7, 97, 65537, (1 << 31) - 1} {
		f, err := SmallField(n)
		if err != nil {
			t.Fatalf("NewField(%d): %v", n, err)
		}
		if !f.IsSmall() || f.SmallModulus() != uint64(n) {
			t.Errorf("NewField(%d): IsSmall/SmallModulus mismatch", n)
		}
	}
}

func TestNewFieldRejectsWideModulus(t *testing.T) {
	// 2^521 - 1 is prime but wider than MaxModulusBits.
	p := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 521), big.NewInt(1))
	if _, err := NewField(p); err == nil {
		t.Fatal("NewField accepted a modulus wider than MaxModulusBits")
	}
}

func TestBN254Basics(t *testing.T) {
	f := BN254()
	if f.IsSmall() {
		t.Fatal("BN254 reported small")
	}
	if f.BitLen() != 254 {
		t.Fatalf("BN254 bitlen = %d, want 254", f.BitLen())
	}
	// -1 must print as -1 via signed representation.
	m1 := f.Neg(f.One())
	if got := f.String(m1); got != "-1" {
		t.Errorf("String(-1) = %q", got)
	}
}

// randElt returns a deterministic pseudo-random element for property tests.
func randElt(f *Field, rng *rand.Rand) Element {
	return f.RandFrom(rng)
}

// toInt64 returns the plain value of e as an int64 (small-field tests only).
func toInt64(f *Field, e Element) int64 {
	return f.ToBig(e).Int64()
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, f := range testFields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			cfg := &quick.Config{
				MaxCount: 200,
				Values: func(vs []reflect.Value, r *rand.Rand) {
					for i := range vs {
						vs[i] = reflect.ValueOf(randElt(f, r))
					}
				},
			}
			// Commutativity, associativity, distributivity.
			comm := func(a, b Element) bool {
				return f.Add(a, b) == f.Add(b, a) &&
					f.Mul(a, b) == f.Mul(b, a)
			}
			if err := quick.Check(comm, cfg); err != nil {
				t.Error(err)
			}
			assoc := func(a, b, c Element) bool {
				l := f.Add(f.Add(a, b), c)
				r := f.Add(a, f.Add(b, c))
				lm := f.Mul(f.Mul(a, b), c)
				rm := f.Mul(a, f.Mul(b, c))
				return l == r && lm == rm
			}
			if err := quick.Check(assoc, cfg); err != nil {
				t.Error(err)
			}
			distrib := func(a, b, c Element) bool {
				l := f.Mul(a, f.Add(b, c))
				r := f.Add(f.Mul(a, b), f.Mul(a, c))
				return l == r
			}
			if err := quick.Check(distrib, cfg); err != nil {
				t.Error(err)
			}
			inverses := func(a Element) bool {
				if !f.Sub(f.Add(a, f.Neg(a)), f.Zero()).IsZero() {
					return false
				}
				if a.IsZero() {
					return true
				}
				inv := f.MustInv(a)
				return f.Mul(a, inv) == f.One()
			}
			if err := quick.Check(inverses, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSubNegConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range testFields {
		for i := 0; i < 100; i++ {
			a, b := randElt(f, rng), randElt(f, rng)
			want := f.Add(a, f.Neg(b))
			got := f.Sub(a, b)
			if got != want {
				t.Fatalf("%s: Sub mismatch a=%v b=%v", f.Name(), a, b)
			}
			if !f.IsValid(got) {
				t.Fatalf("%s: Sub out of range", f.Name())
			}
		}
	}
}

func TestDivByZero(t *testing.T) {
	f := MustField(big.NewInt(97))
	if _, err := f.Inv(f.Zero()); err != ErrDivByZero {
		t.Errorf("Inv(0) err = %v, want ErrDivByZero", err)
	}
	if _, err := f.Div(f.One(), f.Zero()); err != ErrDivByZero {
		t.Errorf("Div(1,0) err = %v, want ErrDivByZero", err)
	}
	// A multiple of p reduces to the zero element and must still be caught.
	if _, err := f.Inv(f.FromBig(big.NewInt(97 * 3))); err != ErrDivByZero {
		t.Errorf("Inv(3p) err = %v, want ErrDivByZero", err)
	}
}

func TestExp(t *testing.T) {
	f := MustField(big.NewInt(97))
	if got := f.ExpInt(f.NewElement(2), 10); got != f.NewElement(1024%97) {
		t.Errorf("2^10 = %v", f.String(got))
	}
	// Fermat: a^(p-1) = 1 for a != 0.
	for a := int64(1); a < 97; a++ {
		if got := f.ExpInt(f.NewElement(a), 96); !f.IsOne(got) {
			t.Fatalf("%d^96 = %v, want 1", a, f.String(got))
		}
	}
	// Negative exponent.
	inv2 := f.MustInv(f.NewElement(2))
	if got := f.ExpInt(f.NewElement(2), -1); got != inv2 {
		t.Errorf("2^-1 = %v, want %v", f.String(got), f.String(inv2))
	}
}

func TestBatchInv(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, f := range testFields {
		vs := make([]Element, 17)
		for i := range vs {
			for {
				vs[i] = randElt(f, rng)
				if !vs[i].IsZero() {
					break
				}
			}
		}
		invs, err := f.BatchInv(vs)
		if err != nil {
			t.Fatalf("%s: BatchInv: %v", f.Name(), err)
		}
		for i := range vs {
			if f.Mul(vs[i], invs[i]) != f.One() {
				t.Fatalf("%s: BatchInv[%d] wrong", f.Name(), i)
			}
		}
		// Zero inside the batch is rejected.
		vs[5] = f.Zero()
		if _, err := f.BatchInv(vs); err != ErrDivByZero {
			t.Fatalf("%s: BatchInv with zero err=%v", f.Name(), err)
		}
	}
	if out, err := BN254().BatchInv(nil); err != nil || out != nil {
		t.Errorf("BatchInv(nil) = %v, %v", out, err)
	}
}

func TestSqrtExhaustiveSmall(t *testing.T) {
	f := MustField(big.NewInt(97)) // 97 ≡ 1 (mod 4): exercises Tonelli–Shanks
	squares := map[int64]bool{}
	for a := int64(0); a < 97; a++ {
		squares[(a*a)%97] = true
	}
	for a := int64(0); a < 97; a++ {
		r, ok := f.Sqrt(f.NewElement(a))
		if ok != squares[a] {
			t.Fatalf("Sqrt(%d) ok=%v, want %v", a, ok, squares[a])
		}
		if ok && toInt64(f, f.Mul(r, r)) != a {
			t.Fatalf("Sqrt(%d) = %v, square is %v", a, r, f.Mul(r, r))
		}
	}
}

func TestSqrtP3Mod4(t *testing.T) {
	f := MustField(big.NewInt(1019)) // 1019 ≡ 3 (mod 4): direct path
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := randElt(f, rng)
		sq := f.Square(a)
		r, ok := f.Sqrt(sq)
		if !ok {
			t.Fatalf("Sqrt(%v²) not found", a)
		}
		if f.Square(r) != sq {
			t.Fatalf("Sqrt(%v²) = %v wrong", a, r)
		}
	}
}

func TestSqrtBN254(t *testing.T) {
	f := BN254()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		a := randElt(f, rng)
		sq := f.Square(a)
		r, ok := f.Sqrt(sq)
		if !ok || f.Square(r) != sq {
			t.Fatalf("BN254 Sqrt round-trip failed for %v", a)
		}
	}
}

func TestLegendre(t *testing.T) {
	f := MustField(big.NewInt(97))
	if f.Legendre(f.Zero()) != 0 {
		t.Error("Legendre(0) != 0")
	}
	nResidues := 0
	for a := int64(1); a < 97; a++ {
		switch f.Legendre(f.NewElement(a)) {
		case 1:
			nResidues++
		case -1:
		default:
			t.Fatalf("Legendre(%d) out of {-1,1}", a)
		}
	}
	if nResidues != 48 {
		t.Errorf("quadratic residues mod 97: got %d, want 48", nResidues)
	}
}

func TestSignedAndString(t *testing.T) {
	f := MustField(big.NewInt(97))
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"}, {1, "1"}, {48, "48"}, {49, "-48"}, {96, "-1"},
	}
	for _, c := range cases {
		if got := f.String(f.NewElement(c.in)); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFromString(t *testing.T) {
	f := MustField(big.NewInt(97))
	cases := map[string]int64{
		"0":    0,
		"96":   96,
		"97":   0,
		"-1":   96,
		"0x61": 0, // 0x61 = 97
		"100":  3,
	}
	for in, want := range cases {
		got, err := f.FromString(in)
		if err != nil {
			t.Fatalf("FromString(%q): %v", in, err)
		}
		if toInt64(f, got) != want {
			t.Errorf("FromString(%q) = %v, want %d", in, got, want)
		}
	}
	if _, err := f.FromString("zebra"); err == nil {
		t.Error("FromString(zebra) succeeded")
	}
}

func TestSumProd(t *testing.T) {
	f := MustField(big.NewInt(97))
	if !f.Sum().IsZero() {
		t.Error("empty Sum != 0")
	}
	if !f.IsOne(f.Prod()) {
		t.Error("empty Prod != 1")
	}
	got := f.Sum(f.NewElement(90), f.NewElement(10), f.NewElement(5))
	if toInt64(f, got) != 8 {
		t.Errorf("Sum = %v", got)
	}
	got = f.Prod(f.NewElement(10), f.NewElement(10))
	if toInt64(f, got) != 3 {
		t.Errorf("Prod = %v", got)
	}
}

func TestRandFromUniformSmall(t *testing.T) {
	f := MustField(big.NewInt(5))
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[toInt64(f, f.RandFrom(rng))]++
	}
	for v := int64(0); v < 5; v++ {
		c := counts[v]
		if c < n/5-n/50 || c > n/5+n/50 {
			t.Errorf("value %d count %d is far from uniform", v, c)
		}
	}
}

func TestRandCrypto(t *testing.T) {
	f := BN254()
	a, b := f.Rand(), f.Rand()
	if !f.IsValid(a) || !f.IsValid(b) {
		t.Fatal("Rand produced out-of-range element")
	}
	if a == b {
		t.Error("two crypto-random BN254 elements collided (astronomically unlikely)")
	}
}

func TestSameField(t *testing.T) {
	a := MustField(big.NewInt(97))
	b := MustField(big.NewInt(97))
	c := MustField(big.NewInt(101))
	if !a.SameField(b) || a.SameField(c) || a.SameField(nil) {
		t.Error("SameField misbehaves")
	}
}

func TestAccessors(t *testing.T) {
	f := MustField(big.NewInt(97))
	if f.Modulus().Int64() != 97 {
		t.Error("Modulus")
	}
	m := f.Modulus()
	m.SetInt64(5) // must not corrupt the field
	if f.Modulus().Int64() != 97 {
		t.Error("Modulus returned aliased storage")
	}
	if toInt64(f, f.MustElement("-1")) != 96 {
		t.Error("MustElement")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustElement(garbage) did not panic")
		}
	}()
	f.MustElement("zebra")
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustField(4) did not panic")
		}
	}()
	MustField(big.NewInt(4))
}

func TestMustFieldFromStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFieldFromString(garbage) did not panic")
		}
	}()
	MustFieldFromString("zebra")
}

func TestZeroOneDoubleSquare(t *testing.T) {
	f := MustField(big.NewInt(97))
	if !f.Zero().IsZero() || toInt64(f, f.One()) != 1 {
		t.Error("Zero/One")
	}
	if toInt64(f, f.Double(f.NewElement(50))) != 3 {
		t.Error("Double")
	}
	if toInt64(f, f.Square(f.NewElement(10))) != 3 {
		t.Error("Square")
	}
	if !f.IsOne(f.One()) || f.IsOne(f.Zero()) || !f.IsZero(f.Zero()) {
		t.Error("IsOne/IsZero")
	}
	if f.SmallModulus() != 97 {
		t.Error("SmallModulus")
	}
	defer func() {
		if recover() == nil {
			t.Error("SmallModulus on BN254 did not panic")
		}
	}()
	BN254().SmallModulus()
}
