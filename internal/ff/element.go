package ff

import (
	"math/big" //qed2:allow-mathbig — boundary conversions (SetBig/Big), not hot-path arithmetic
	"math/bits"
)

// Element is a field element in a fixed four-limb little-endian
// representation. It is a comparable value type: == , map keys and slice
// copies all work, and the zero value is the field's additive identity.
//
// The representation depends on the field:
//
//   - large fields (modulus wider than 64 bits): the limbs hold the
//     Montgomery form a·R mod p with R = 2^256, kept canonical in [0, p);
//   - small fields (modulus fits a uint64): limb 0 holds the plain value in
//     [0, p) and the other limbs are zero, so exhaustive-enumeration code
//     can iterate raw uint64 values without conversion cost.
//
// Both representations are canonical, so two Elements of the same field are
// equal as field values iff they are equal as Go values. Elements carry no
// field pointer; all arithmetic goes through the owning *Field, and mixing
// Elements of different fields is a caller bug (exactly as it was for the
// previous *big.Int representation).
type Element [4]uint64

// ElementLimbs is the number of 64-bit limbs of an Element; MaxModulusBits
// is the widest supported modulus.
const (
	ElementLimbs   = 4
	MaxModulusBits = 64 * ElementLimbs
)

// IsZero reports whether e is the additive identity. (Zero is all-zero
// limbs in both representations: 0·R mod p = 0.)
func (e Element) IsZero() bool { return e == Element{} }

// AppendRawBytes appends the raw 32-byte limb encoding of e (little-endian
// limb order) to dst and returns the result. The encoding is canonical per
// field and is intended for hash/dedup keys, not for serialization across
// fields or representations; use Field.Bytes for a portable encoding.
func (e Element) AppendRawBytes(dst []byte) []byte {
	for _, w := range e {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// --- limb-vector primitives ---------------------------------------------------

// addLimbs returns a + b and the carry-out.
func addLimbs(a, b Element) (Element, uint64) {
	var r Element
	var c uint64
	r[0], c = bits.Add64(a[0], b[0], 0)
	r[1], c = bits.Add64(a[1], b[1], c)
	r[2], c = bits.Add64(a[2], b[2], c)
	r[3], c = bits.Add64(a[3], b[3], c)
	return r, c
}

// subLimbs returns a - b and the borrow-out.
func subLimbs(a, b Element) (Element, uint64) {
	var r Element
	var bw uint64
	r[0], bw = bits.Sub64(a[0], b[0], 0)
	r[1], bw = bits.Sub64(a[1], b[1], bw)
	r[2], bw = bits.Sub64(a[2], b[2], bw)
	r[3], bw = bits.Sub64(a[3], b[3], bw)
	return r, bw
}

// ltLimbs reports a < b as 256-bit unsigned integers.
func ltLimbs(a, b Element) bool {
	_, bw := subLimbs(a, b)
	return bw != 0
}

// shr1 shifts e right by one bit, with top entering as the new bit 255
// (used when halving a 257-bit intermediate held as limbs plus carry).
func shr1(e Element, top uint64) Element {
	e[0] = e[0]>>1 | e[1]<<63
	e[1] = e[1]>>1 | e[2]<<63
	e[2] = e[2]>>1 | e[3]<<63
	e[3] = e[3]>>1 | top<<63
	return e
}

// invUint64 returns a⁻¹ mod p for 0 < a < p and odd prime p, by the binary
// extended Euclidean algorithm (HAC 14.61 specialization for odd moduli).
func invUint64(a, p uint64) uint64 {
	u, v := a, p
	x1, x2 := uint64(1), uint64(0)
	for u != 1 && v != 1 {
		for u&1 == 0 {
			u >>= 1
			if x1&1 == 0 {
				x1 >>= 1
			} else {
				x1 = x1>>1 + p>>1 + 1 // (x1+p)/2 without overflow; both odd
			}
		}
		for v&1 == 0 {
			v >>= 1
			if x2&1 == 0 {
				x2 >>= 1
			} else {
				x2 = x2>>1 + p>>1 + 1
			}
		}
		if u >= v {
			u -= v
			if x1 >= x2 {
				x1 -= x2
			} else {
				x1 += p - x2
			}
		} else {
			v -= u
			if x2 >= x1 {
				x2 -= x1
			} else {
				x2 += p - x1
			}
		}
	}
	if u == 1 {
		return x1
	}
	return x2
}

// limbsFromBig converts a non-negative big.Int < 2^256 into limbs.
func limbsFromBig(v *big.Int) Element {
	var e Element
	words := v.Bits()
	for i := 0; i < len(words) && i < ElementLimbs; i++ {
		e[i] = uint64(words[i])
	}
	return e
}

// limbsToBig converts limbs into a fresh big.Int.
func limbsToBig(e Element) *big.Int {
	v := new(big.Int)
	var w big.Int
	for i := ElementLimbs - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, w.SetUint64(e[i]))
	}
	return v
}

// --- Montgomery multiplication (large-field path) -----------------------------

// montMul returns a·b·R⁻¹ mod p for canonical Montgomery inputs, using the
// textbook CIOS method (Koç–Acar–Kaliski) with an explicit overflow word,
// which is correct for any odd modulus below 2^256. The result is reduced
// into [0, p).
func (f *Field) montMul(a, b Element) Element {
	var t [ElementLimbs + 2]uint64
	p := &f.pLimbs
	for i := 0; i < ElementLimbs; i++ {
		// t += a * b[i]
		var c uint64
		for j := 0; j < ElementLimbs; j++ {
			hi, lo := bits.Mul64(a[j], b[i])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j] = lo
			c = hi
		}
		var cc uint64
		t[ElementLimbs], cc = bits.Add64(t[ElementLimbs], c, 0)
		t[ElementLimbs+1] = cc

		// Reduce: add m·p so the low word cancels, then shift down one word.
		m := t[0] * f.pInv
		hi, lo := bits.Mul64(m, p[0])
		_, cc = bits.Add64(lo, t[0], 0)
		c = hi + cc
		for j := 1; j < ElementLimbs; j++ {
			hi, lo = bits.Mul64(m, p[j])
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j-1] = lo
			c = hi
		}
		t[ElementLimbs-1], cc = bits.Add64(t[ElementLimbs], c, 0)
		t[ElementLimbs] = t[ElementLimbs+1] + cc
	}
	r := Element{t[0], t[1], t[2], t[3]}
	if t[ElementLimbs] != 0 || !ltLimbs(r, f.pLimbs) {
		r, _ = subLimbs(r, f.pLimbs)
	}
	return r
}

// toMont converts a plain limb value < p into Montgomery form.
func (f *Field) toMont(a Element) Element { return f.montMul(a, f.rSquare) }

// fromMont converts a Montgomery-form value into plain limbs.
func (f *Field) fromMont(a Element) Element { return f.montMul(a, Element{1}) }
