package r1cs

import (
	"bytes"
	"encoding/binary"
	"math/big"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// binTestSystem builds a small mixed system: interleaved input/output/
// internal declarations (so the binary wire permutation is non-trivial), a
// hinted signal, and constraints exercising constants, negatives, and
// multi-term linear combinations.
func binTestSystem(t *testing.T) *System {
	t.Helper()
	f := ff.BN254()
	sys := NewSystem(f)
	in1 := sys.AddSignal("in1", KindInput)
	out1 := sys.AddSignal("out1", KindOutput)
	inv := sys.AddSignal("inv", KindInternal)
	in2 := sys.AddSignal("in2", KindInput)
	out2 := sys.AddSignal("out2", KindOutput)
	sys.MarkHinted(inv)
	// out1 = 1 - in1*inv  (IsZero core)
	sys.AddConstraint(
		poly.Var(f, in1),
		poly.Var(f, inv),
		poly.ConstInt(f, 1).Sub(poly.Var(f, out1)),
		"iszero")
	// in1*out1 = 0
	sys.AddConstraint(poly.Var(f, in1), poly.Var(f, out1), poly.NewLinComb(f), "check")
	// out2 = 3*in1 + in2 - 7
	sys.AddConstraint(
		poly.Term(f, in1, f.NewElement(3)).AddTerm(in2, f.One()).AddConst(f.NewElement(-7)),
		poly.ConstInt(f, 1),
		poly.Var(f, out2),
		"linear")
	return sys
}

// TestBinaryRoundTripIdentity checks that MarshalBinary + MarshalSym →
// ParseBinaryWithSym reconstructs the exact signal numbering, names, kinds,
// hint flags, and constraints (metadata aside), via the canonical digest of
// a metadata-stripped twin.
func TestBinaryRoundTripIdentity(t *testing.T) {
	sys := binTestSystem(t)
	got, err := ParseBinaryWithSym(sys.MarshalBinary(), sys.MarshalSym())
	if err != nil {
		t.Fatalf("ParseBinaryWithSym: %v", err)
	}
	if got.NumSignals() != sys.NumSignals() || got.NumConstraints() != sys.NumConstraints() {
		t.Fatalf("shape mismatch: %d/%d signals, %d/%d constraints",
			got.NumSignals(), sys.NumSignals(), got.NumConstraints(), sys.NumConstraints())
	}
	for id := 0; id < sys.NumSignals(); id++ {
		want, g := sys.Signal(id), got.Signal(id)
		if want.Name != g.Name || want.Kind != g.Kind || want.Hinted != g.Hinted {
			t.Errorf("signal %d: got %+v, want name=%s kind=%s hinted=%v", id, g, want.Name, want.Kind, want.Hinted)
		}
	}
	// Binary drops tags/locations/def: compare against a stripped twin.
	stripped := stripMetadata(t, sys)
	if stripped.Digest() != got.Digest() {
		t.Fatalf("canonical digest mismatch after binary round trip:\n%s\nvs\n%s",
			stripped.CanonicalText(), got.CanonicalText())
	}
}

// stripMetadata rebuilds a system without tags, locations, and def
// attribution (what the binary format cannot carry), keeping names, kinds
// and hints.
func stripMetadata(t *testing.T, sys *System) *System {
	t.Helper()
	out := NewSystem(sys.Field())
	for id := 1; id < sys.NumSignals(); id++ {
		sig := sys.Signal(id)
		out.AddSignal(sig.Name, sig.Kind)
		if sig.Hinted {
			out.MarkHinted(id)
		}
	}
	for _, c := range sys.Constraints() {
		out.AddConstraint(c.A, c.B, c.C, "")
	}
	return out
}

// TestBinaryRoundTripWithoutSym checks the nameless path: names are
// synthesized from labels, everything structural survives.
func TestBinaryRoundTripWithoutSym(t *testing.T) {
	sys := binTestSystem(t)
	got, err := ParseBinary(sys.MarshalBinary())
	if err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	if got.NumSignals() != sys.NumSignals() || got.NumConstraints() != sys.NumConstraints() {
		t.Fatalf("shape mismatch")
	}
	for id := 1; id < sys.NumSignals(); id++ {
		if want, g := sys.Signal(id).Kind, got.Signal(id).Kind; want != g {
			t.Errorf("signal %d: kind %s, want %s", id, g, want)
		}
	}
	if got.Signal(1).Name != "w1" {
		t.Errorf("synthesized name = %q, want w1", got.Signal(1).Name)
	}
}

// TestBinaryTextEquivalence checks that the text and binary serializations
// of the same system parse to canonically equal systems.
func TestBinaryTextEquivalence(t *testing.T) {
	sys := binTestSystem(t)
	fromText, err := ParseString(sys.MarshalText())
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	fromBin, err := ParseBinaryWithSym(sys.MarshalBinary(), sys.MarshalSym())
	if err != nil {
		t.Fatalf("ParseBinaryWithSym: %v", err)
	}
	if stripMetadata(t, fromText).Digest() != fromBin.Digest() {
		t.Fatal("text and binary parses disagree on the canonical form")
	}
}

// TestParseAutoDetects checks format autodetection on both serializations.
func TestParseAutoDetects(t *testing.T) {
	sys := binTestSystem(t)
	if s, err := ParseAuto([]byte(sys.MarshalText())); err != nil || s.NumConstraints() != sys.NumConstraints() {
		t.Fatalf("ParseAuto(text): %v", err)
	}
	if s, err := ParseAuto(sys.MarshalBinary()); err != nil || s.NumConstraints() != sys.NumConstraints() {
		t.Fatalf("ParseAuto(binary): %v", err)
	}
	if !IsBinaryR1CS(sys.MarshalBinary()) {
		t.Fatal("IsBinaryR1CS rejected a binary file")
	}
	if IsBinaryR1CS([]byte(sys.MarshalText())) {
		t.Fatal("IsBinaryR1CS accepted the text format")
	}
}

// TestBinarySmallField exercises the single-limb (n8=8) encoding path.
func TestBinarySmallField(t *testing.T) {
	f, err := ff.SmallField(97)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(f)
	in := sys.AddSignal("in", KindInput)
	out := sys.AddSignal("out", KindOutput)
	sys.AddConstraint(poly.Var(f, in), poly.Var(f, in), poly.Var(f, out), "")
	got, err := ParseBinaryWithSym(sys.MarshalBinary(), sys.MarshalSym())
	if err != nil {
		t.Fatalf("ParseBinaryWithSym: %v", err)
	}
	if got.Field().Modulus().Cmp(big.NewInt(97)) != 0 {
		t.Fatalf("modulus = %s, want 97", got.Field().Modulus())
	}
	if got.Digest() != sys.Digest() {
		t.Fatal("small-field round trip changed the canonical form")
	}
	_ = out
}

// TestBinaryForeignLabels checks the fallback for real snarkjs exports:
// labels that are not a permutation of the wire space (sparse,
// post-optimization) keep wire-order numbering and still parse.
func TestBinaryForeignLabels(t *testing.T) {
	sys := binTestSystem(t)
	data := sys.MarshalBinary()
	// Rewrite the wire2label section (last 6*8 bytes of the file, after its
	// 12-byte section header) with sparse labels 0,10,20,30,40,50, and
	// raise nLabels (header offset 76) to cover them.
	n := len(data)
	mapBody := data[n-6*8:]
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint64(mapBody[i*8:], uint64(i*10))
	}
	binary.LittleEndian.PutUint64(data[76:], 100)
	got, err := ParseBinary(data)
	if err != nil {
		t.Fatalf("ParseBinary with foreign labels: %v", err)
	}
	// Wire order: one, outputs (out1,out2), inputs (in1,in2), internal.
	if k := got.Signal(1).Kind; k != KindOutput {
		t.Fatalf("wire 1 kind = %s, want output", k)
	}
	if name := got.Signal(1).Name; name != "w10" {
		t.Fatalf("wire 1 name = %q, want w10 (labeled)", name)
	}
	if k := got.Signal(5).Kind; k != KindInternal {
		t.Fatalf("wire 5 kind = %s, want internal", k)
	}
}

// TestBinaryRejects exercises the hardening paths: truncations, bad magic,
// bad version, duplicate and missing sections, oversized counts, wrong
// coefficient ranges, trailing bytes.
func TestBinaryRejects(t *testing.T) {
	sys := binTestSystem(t)
	good := sys.MarshalBinary()

	mutate := func(name string, f func([]byte) []byte) (string, []byte) { return name, f(bytes.Clone(good)) }
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("r2cs\x01\x00\x00\x00")},
		{"truncated header", good[:20]},
		{"truncated mid-section", good[:len(good)-5]},
	}
	name, data := mutate("bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], 9)
		return b
	})
	cases = append(cases, struct {
		name string
		data []byte
	}{name, data})
	name, data = mutate("trailing bytes", func(b []byte) []byte { return append(b, 0xff) })
	cases = append(cases, struct {
		name string
		data []byte
	}{name, data})

	for _, tc := range cases {
		if _, err := ParseBinary(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Oversized wire count in the header (offset: 12 section dir + 12
	// section header + 4 n8 + 32 prime).
	b := bytes.Clone(good)
	binary.LittleEndian.PutUint32(b[12+12+4+32:], uint32(maxParseSignals+1))
	if _, err := ParseBinary(b); err == nil {
		t.Error("oversized wire count accepted")
	}

	// Non-prime modulus.
	b = bytes.Clone(good)
	b[12+12+4] = 0x00 // BN254 prime low byte -> even number
	if _, err := ParseBinary(b); err == nil {
		t.Error("non-prime modulus accepted")
	}

	// Duplicate section: append a second header section and bump nSections.
	b = bytes.Clone(good)
	hdr := bytes.Clone(b[12 : 12+12+4+32+4*4+8+4])
	b = append(b, hdr...)
	binary.LittleEndian.PutUint32(b[8:], 4)
	if _, err := ParseBinary(b); err == nil {
		t.Error("duplicate header section accepted")
	}
}

// TestSymRejects exercises sym-table validation.
func TestSymRejects(t *testing.T) {
	sys := binTestSystem(t)
	bin := sys.MarshalBinary()
	for name, sym := range map[string]string{
		"too few fields":  "1,1,-1\n",
		"bad label":       "x,1,-1,a\n",
		"bad wire":        "1,y,-1,a\n",
		"duplicate label": "1,1,-1,a\n1,2,-1,b\n",
		"duplicate name":  "1,1,-1,a\n2,2,-1,a\n",
		"empty name":      "1,1,-1,\n",
		"bad attribute":   "1,1,-1,a,wat\n",
	} {
		if _, err := ParseBinaryWithSym(bin, []byte(sym)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A valid foreign sym (no hint column) is fine.
	if _, err := ParseBinaryWithSym(bin, []byte("1,1,-1,main.a\n2,2,-1,main.b\n")); err != nil {
		t.Errorf("plain 4-column sym rejected: %v", err)
	}
}
