package r1cs

import (
	"math/big"
	"reflect"
	"strings"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

var f97 = ff.MustField(big.NewInt(97))

// buildMulSystem builds: out = a*b  (one multiplication constraint).
func buildMulSystem(t testing.TB) (*System, int, int, int) {
	t.Helper()
	s := NewSystem(f97)
	a := s.AddSignal("a", KindInput)
	b := s.AddSignal("b", KindInput)
	out := s.AddSignal("out", KindOutput)
	s.AddConstraint(poly.Var(f97, a), poly.Var(f97, b), poly.Var(f97, out), "mul")
	return s, a, b, out
}

func TestSystemBasics(t *testing.T) {
	s, a, b, out := buildMulSystem(t)
	if s.NumSignals() != 4 || s.NumConstraints() != 1 {
		t.Fatalf("counts: %d signals, %d constraints", s.NumSignals(), s.NumConstraints())
	}
	if got := s.Signal(0); got.Kind != KindOne || got.Name != "one" {
		t.Errorf("signal 0 = %+v", got)
	}
	if !reflect.DeepEqual(s.Inputs(), []int{a, b}) {
		t.Errorf("Inputs = %v", s.Inputs())
	}
	if !reflect.DeepEqual(s.Outputs(), []int{out}) {
		t.Errorf("Outputs = %v", s.Outputs())
	}
	if sig, ok := s.SignalByName("b"); !ok || sig.ID != b {
		t.Errorf("SignalByName(b) = %+v, %v", sig, ok)
	}
	if _, ok := s.SignalByName("zebra"); ok {
		t.Error("found nonexistent signal")
	}
	st := s.Stats()
	if st.Inputs != 2 || st.Outputs != 1 || st.Nonlinear != 1 || st.Linear != 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestDuplicateSignalPanics(t *testing.T) {
	s := NewSystem(f97)
	s.AddSignal("x", KindInput)
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	s.AddSignal("x", KindInternal)
}

func TestAddConstraintValidation(t *testing.T) {
	s := NewSystem(f97)
	s.AddSignal("x", KindInput)
	defer func() {
		if recover() == nil {
			t.Error("unknown signal reference did not panic")
		}
	}()
	s.AddConstraint(poly.Var(f97, 5), poly.ConstInt(f97, 1), poly.ConstInt(f97, 0), "")
}

func TestCheckWitness(t *testing.T) {
	s, a, b, out := buildMulSystem(t)
	w := s.NewWitness()
	w[a] = f97.NewElement(6)
	w[b] = f97.NewElement(7)
	w[out] = f97.NewElement(42)
	if err := s.CheckWitness(w); err != nil {
		t.Fatalf("valid witness rejected: %v", err)
	}
	w[out] = f97.NewElement(41)
	err := s.CheckWitness(w)
	if err == nil {
		t.Fatal("invalid witness accepted")
	}
	var ue *UnsatisfiedError
	if !errorsAs(err, &ue) {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(err.Error(), "mul") || !strings.Contains(err.Error(), "out") {
		t.Errorf("error lacks provenance: %v", err)
	}
	// wrong length
	if err := s.CheckWitness(w[:2]); err == nil {
		t.Error("short witness accepted")
	}
	// broken one-slot
	w[out] = f97.NewElement(42)
	w[0] = f97.NewElement(2)
	if err := s.CheckWitness(w); err == nil {
		t.Error("witness with one!=1 accepted")
	}
}

func errorsAs(err error, target **UnsatisfiedError) bool {
	ue, ok := err.(*UnsatisfiedError)
	if ok {
		*target = ue
	}
	return ok
}

func TestConstraintQuadAndLinear(t *testing.T) {
	s := NewSystem(f97)
	x := s.AddSignal("x", KindInput)
	y := s.AddSignal("y", KindOutput)
	// Linear constraint via constant A: 1 * (x + 2) = y
	s.AddConstraint(poly.ConstInt(f97, 1), poly.Var(f97, x).AddConst(f97.NewElement(2)), poly.Var(f97, y), "lin")
	// Product that cancels: x * 0 = 0 is linear (trivially zero quad).
	s.AddConstraint(poly.Var(f97, x), poly.ConstInt(f97, 0), poly.ConstInt(f97, 0), "zero")
	// Genuine nonlinear: x * x = y
	s.AddConstraint(poly.Var(f97, x), poly.Var(f97, x), poly.Var(f97, y), "sq")
	if !s.Constraint(0).IsLinear() || !s.Constraint(1).IsLinear() || s.Constraint(2).IsLinear() {
		t.Error("IsLinear misclassification")
	}
	q := s.Constraint(2).Quad()
	if q.Degree() != 2 || f97.ToBig(q.CoeffPair(x, x)).Int64() != 1 {
		t.Errorf("Quad of x*x=y wrong: %v", q)
	}
	if !reflect.DeepEqual(s.Constraint(2).Vars(), []int{x, y}) {
		t.Errorf("Vars = %v", s.Constraint(2).Vars())
	}
}

func TestWitnessHelpers(t *testing.T) {
	s, a, b, out := buildMulSystem(t)
	w1 := s.NewWitness()
	w2 := w1.Clone()
	w2[out] = f97.NewElement(5)
	if AgreeOn(w1, w2, []int{a, b}) != true {
		t.Error("AgreeOn inputs should hold")
	}
	if AgreeOn(w1, w2, []int{out}) {
		t.Error("AgreeOn out should fail")
	}
	if got := FirstDifference(w1, w2, []int{a, b, out}); got != out {
		t.Errorf("FirstDifference = %d, want %d", got, out)
	}
	if got := FirstDifference(w1, w2, []int{a, b}); got != -1 {
		t.Errorf("FirstDifference = %d, want -1", got)
	}
	// Clone isolation (value semantics: writing one slice never aliases).
	w2[a] = f97.NewElement(9)
	if !w1[a].IsZero() {
		t.Error("Clone aliases storage")
	}
}

// buildChain builds a chain x0 -> x1 -> ... -> xn with xi+1 = xi * xi,
// useful for slicing tests.
func buildChain(n int) (*System, []int) {
	s := NewSystem(f97)
	ids := make([]int, n+1)
	ids[0] = s.AddSignal("in", KindInput)
	for i := 1; i <= n; i++ {
		kind := KindInternal
		if i == n {
			kind = KindOutput
		}
		ids[i] = s.AddSignal("", kind)
		s.AddConstraint(poly.Var(f97, ids[i-1]), poly.Var(f97, ids[i-1]), poly.Var(f97, ids[i]), "sq")
	}
	return s, ids
}

func TestSliceAround(t *testing.T) {
	s, ids := buildChain(6)
	// Radius 1 around the middle signal: the two adjacent constraints.
	sl := s.SliceAround(ids[3], 1, 0)
	if len(sl.Constraints) != 2 {
		t.Fatalf("radius-1 slice has %d constraints, want 2: %v", len(sl.Constraints), sl.Constraints)
	}
	// Signals: ids[2..4] plus target.
	want := []int{ids[2], ids[3], ids[4]}
	if !reflect.DeepEqual(sl.Signals, want) {
		t.Errorf("slice signals = %v, want %v", sl.Signals, want)
	}
	// Radius 2 grabs two more constraints.
	sl2 := s.SliceAround(ids[3], 2, 0)
	if len(sl2.Constraints) != 4 {
		t.Errorf("radius-2 slice has %d constraints, want 4", len(sl2.Constraints))
	}
	// Big radius saturates at the full system.
	slAll := s.SliceAround(ids[3], 100, 0)
	if len(slAll.Constraints) != s.NumConstraints() {
		t.Errorf("saturated slice has %d constraints, want %d", len(slAll.Constraints), s.NumConstraints())
	}
	// Cap limits growth but keeps the radius-1 core.
	slCap := s.SliceAround(ids[3], 100, 3)
	if len(slCap.Constraints) < 2 || len(slCap.Constraints) > 4 {
		t.Errorf("capped slice has %d constraints", len(slCap.Constraints))
	}
}

func TestSliceIsolatedSignal(t *testing.T) {
	s := NewSystem(f97)
	x := s.AddSignal("x", KindInput)
	free := s.AddSignal("free", KindOutput)
	s.AddConstraint(poly.Var(f97, x), poly.ConstInt(f97, 1), poly.Var(f97, x), "id")
	sl := s.SliceAround(free, 3, 0)
	if len(sl.Constraints) != 0 {
		t.Errorf("isolated signal slice = %v", sl.Constraints)
	}
	if !reflect.DeepEqual(sl.Signals, []int{free}) {
		t.Errorf("isolated signal set = %v", sl.Signals)
	}
}

func TestConnectedComponents(t *testing.T) {
	s := NewSystem(f97)
	a := s.AddSignal("a", KindInput)
	b := s.AddSignal("b", KindInternal)
	c := s.AddSignal("c", KindInput)
	d := s.AddSignal("d", KindOutput)
	free := s.AddSignal("free", KindOutput)
	s.AddConstraint(poly.Var(f97, a), poly.Var(f97, a), poly.Var(f97, b), "")
	s.AddConstraint(poly.Var(f97, c), poly.Var(f97, c), poly.Var(f97, d), "")
	comps := s.ConnectedComponents()
	want := [][]int{{a, b}, {c, d}, {free}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s, a, b, out := buildMulSystem(t)
	// Add a constraint with constants and a tag to exercise the format.
	s.AddConstraint(
		poly.ConstInt(f97, 1),
		poly.Var(f97, a).Scale(f97.NewElement(3)).AddConst(f97.NewElement(5)),
		poly.Var(f97, out).AddTerm(b, f97.NewElement(96)),
		"affine check",
	)
	text := s.MarshalText()
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if s2.MarshalText() != text {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, s2.MarshalText())
	}
	if s2.NumSignals() != s.NumSignals() || s2.NumConstraints() != s.NumConstraints() {
		t.Error("round trip lost content")
	}
	if s2.Constraint(1).Tag != "affine check" {
		t.Errorf("tag lost: %q", s2.Constraint(1).Tag)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"nonsense",
		"r1cs v1\nprime 96\n",                   // not prime
		"r1cs v1\nprime 97\nsignal 5 input x\n", // out of order id
		"r1cs v1\nprime 97\nsignal 1 martian x\n",   // bad kind
		"r1cs v1\nprime 97\nconstraint [0|] [0|]\n", // two parts only
		"r1cs v1\nprime 97\nwombat\n",               // unknown line
		"r1cs v1\nprime 97\nconstraint [zebra|] [0|] [0|]\n",
	}
	for _, text := range bad {
		if _, err := ParseString(text); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", text)
		}
	}
}

func TestSignalKindString(t *testing.T) {
	cases := map[SignalKind]string{
		KindOne: "one", KindInput: "input", KindOutput: "output",
		KindInternal: "internal", SignalKind(42): "SignalKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstraintsOf(t *testing.T) {
	s, ids := buildChain(3)
	// ids[1] occurs in constraints 0 (as output) and 1 (as input).
	got := s.ConstraintsOf(ids[1])
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("ConstraintsOf = %v", got)
	}
	if len(s.ConstraintsOf(ids[3])) != 1 {
		t.Errorf("tail signal constraints = %v", s.ConstraintsOf(ids[3]))
	}
}

func TestNameFallback(t *testing.T) {
	s := NewSystem(f97)
	if s.Name(0) != "one" {
		t.Error("Name(0)")
	}
	if s.Name(99) != "x99" {
		t.Errorf("Name(99) = %q", s.Name(99))
	}
	if s.Name(-1) != "x-1" {
		t.Errorf("Name(-1) = %q", s.Name(-1))
	}
}

func TestAddSignalAutoName(t *testing.T) {
	s := NewSystem(f97)
	id := s.AddSignal("", KindInternal)
	if s.Name(id) != "_sig1" {
		t.Errorf("auto name = %q", s.Name(id))
	}
	defer func() {
		if recover() == nil {
			t.Error("second one-signal did not panic")
		}
	}()
	s.AddSignal("two", KindOne)
}

func TestConstraintString(t *testing.T) {
	s, _, _, _ := buildMulSystem(t)
	got := s.Constraint(0).String()
	if !strings.Contains(got, "*") || !strings.Contains(got, "=") {
		t.Errorf("Constraint.String = %q", got)
	}
}

func TestMarshalMetadataRoundTrip(t *testing.T) {
	s, a, b, out := buildMulSystem(t)
	s.SetSignalLoc(a, SourceLoc{Template: "Mul", Line: 3, Col: 7})
	s.MarkHinted(b)
	s.SetSignalLoc(b, SourceLoc{Template: "Mul", Line: 4, Col: 2})
	s.SetConstraintLoc(0, SourceLoc{Template: "Mul", Line: 6, Col: 9})
	s.SetConstraintDef(0, out)
	text := s.MarshalText()
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if s2.MarshalText() != text {
		t.Errorf("metadata round trip not stable:\n%s\nvs\n%s", text, s2.MarshalText())
	}
	if got := s2.Signal(a).Loc; got != (SourceLoc{Template: "Mul", Line: 3, Col: 7}) {
		t.Errorf("signal loc lost: %+v", got)
	}
	if !s2.Signal(b).Hinted {
		t.Error("hint flag lost")
	}
	if s2.Signal(a).Hinted {
		t.Error("hint flag leaked to unhinted signal")
	}
	c := s2.Constraint(0)
	if c.Def != out {
		t.Errorf("constraint def lost: %d", c.Def)
	}
	if c.Loc != (SourceLoc{Template: "Mul", Line: 6, Col: 9}) {
		t.Errorf("constraint loc lost: %+v", c.Loc)
	}
	if c.Tag != "mul" {
		t.Errorf("tag lost alongside metadata: %q", c.Tag)
	}
}

func TestParseMetadataErrors(t *testing.T) {
	base := "r1cs v1\nprime 97\nsignal 0 one one\nsignal 1 input a\n"
	for _, tc := range []struct{ name, text string }{
		{"bad loc", base + "signal 2 output o loc=nocolons\n"},
		{"unknown attribute", base + "signal 2 output o zebra\n"},
		{"bad def target", base + "signal 2 output o\nconstraint [0|1:1] [0|2:1] [0|2:1] def=9\n"},
		{"bad constraint loc", base + "signal 2 output o\nconstraint [0|1:1] [0|2:1] [0|2:1] @ nocolons\n"},
	} {
		if _, err := ParseString(tc.text); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSourceLoc(t *testing.T) {
	var zero SourceLoc
	if !zero.IsZero() || zero.String() != "" {
		t.Errorf("zero loc: IsZero=%v String=%q", zero.IsZero(), zero.String())
	}
	l := SourceLoc{Template: "T", Line: 12, Col: 3}
	if l.IsZero() || l.String() != "T:12:3" {
		t.Errorf("loc: IsZero=%v String=%q", l.IsZero(), l.String())
	}
}
