// Package r1cs represents arithmetic circuits as rank-1 constraint systems
// (R1CS): collections of constraints ⟨A,s⟩·⟨B,s⟩ = ⟨C,s⟩ over a signal
// vector s in a prime field, exactly the form emitted by the Circom
// compiler. It also provides the constraint–signal graph and the k-hop
// slicing operation that the QED² analysis uses to build local SMT queries,
// plus witness checking and a text serialization format.
package r1cs

import (
	"fmt"
	"sort"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// SignalKind classifies a circuit signal.
type SignalKind int

const (
	// KindOne is the distinguished constant-one signal (always ID 0).
	KindOne SignalKind = iota
	// KindInput marks a main-component input signal: the values the
	// verifier fixes. Uniqueness of every other signal is judged relative
	// to the inputs.
	KindInput
	// KindOutput marks a main-component output signal: the values whose
	// uniqueness defines whether the circuit is properly constrained.
	KindOutput
	// KindInternal marks intermediate witness signals.
	KindInternal
)

// String implements fmt.Stringer.
func (k SignalKind) String() string {
	switch k {
	case KindOne:
		return "one"
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindInternal:
		return "internal"
	default:
		return fmt.Sprintf("SignalKind(%d)", int(k))
	}
}

// SourceLoc points into the circom source that produced a signal or a
// constraint: the template the construct was written in and its line:column
// position within the (include-merged) source of that template. The zero
// value means "no location recorded" — hand-built systems and pre-metadata
// .r1cs files simply omit it.
type SourceLoc struct {
	Template string
	Line     int
	Col      int
}

// IsZero reports whether no location was recorded.
func (l SourceLoc) IsZero() bool { return l.Template == "" && l.Line == 0 && l.Col == 0 }

// String renders "Template:line:col" ("" for the zero location).
func (l SourceLoc) String() string {
	if l.IsZero() {
		return ""
	}
	return fmt.Sprintf("%s:%d:%d", l.Template, l.Line, l.Col)
}

// Signal is a named wire of the circuit.
type Signal struct {
	ID   int
	Name string
	Kind SignalKind
	// Loc is the declaration site in the circom source, if compiled.
	Loc SourceLoc
	// Hinted records that the signal was assigned with the witness-only
	// `<--` operator: the compiler emitted a generation rule but no
	// constraint, so nothing pins the value unless separate === constraints
	// do. This is the canonical origin of under-constrained circuits and
	// the static-analysis pass keys several detectors off it.
	Hinted bool
}

// Constraint is a single rank-1 constraint ⟨A,s⟩·⟨B,s⟩ = ⟨C,s⟩.
type Constraint struct {
	A, B, C *poly.LinComb
	// Tag records provenance (template/source construct) for diagnostics.
	Tag string
	// Loc is the source position of the statement that emitted the
	// constraint, if compiled.
	Loc SourceLoc
	// Def is the signal a `<==` assignment defined with this constraint
	// (the compiler emits one constraint per <==), or 0 when the constraint
	// came from a pure === check or the origin is unknown. 0 is unambiguous
	// because the constant-one signal is never an assignment target. The
	// static-analysis dependency graph uses Def to orient edges.
	Def int
}

// Quad returns the canonical expanded polynomial A·B − C, which is zero on
// exactly the satisfying assignments of the constraint.
func (c Constraint) Quad() *poly.Quad {
	return poly.MulLin(c.A, c.B).Sub(poly.QuadFromLin(c.C))
}

// Vars returns the set of signal IDs mentioned by the constraint (excluding
// the constant-one signal only if it does not appear), ascending.
func (c Constraint) Vars() []int {
	seen := map[int]bool{}
	for _, lc := range []*poly.LinComb{c.A, c.B, c.C} {
		for _, v := range lc.Vars() {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// IsLinear reports whether the constraint has an empty quadratic part
// (i.e. A or B is constant, or the product cancels).
func (c Constraint) IsLinear() bool {
	if c.A.IsConst() || c.B.IsConst() {
		return true
	}
	return c.Quad().IsLinear()
}

// String renders the constraint with x<i> variable names.
func (c Constraint) String() string {
	return fmt.Sprintf("(%s) * (%s) = (%s)", c.A, c.B, c.C)
}

// System is a complete rank-1 constraint system together with its signal
// table. Signal ID 0 is always the constant-one signal.
type System struct {
	field       *ff.Field
	signals     []Signal
	constraints []Constraint
	byName      map[string]int
	// adjacency caches, built lazily and invalidated by mutation
	sigToCons [][]int
}

// NewSystem creates an empty system over the given field. The constant-one
// signal is pre-installed with ID 0.
func NewSystem(field *ff.Field) *System {
	s := &System{field: field, byName: map[string]int{}}
	s.signals = append(s.signals, Signal{ID: 0, Name: "one", Kind: KindOne})
	s.byName["one"] = 0
	return s
}

// Field returns the underlying field.
func (s *System) Field() *ff.Field { return s.field }

// OneID is the signal ID of the constant-one signal.
const OneID = 0

// AddSignal appends a new signal and returns its ID. Names must be unique;
// an empty name is auto-generated.
func (s *System) AddSignal(name string, kind SignalKind) int {
	if kind == KindOne {
		panic("r1cs: cannot add a second constant-one signal")
	}
	id := len(s.signals)
	if name == "" {
		name = fmt.Sprintf("_sig%d", id)
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("r1cs: duplicate signal name %q", name))
	}
	s.signals = append(s.signals, Signal{ID: id, Name: name, Kind: kind})
	s.byName[name] = id
	s.sigToCons = nil
	return id
}

// AddConstraint appends ⟨a,s⟩·⟨b,s⟩ = ⟨c,s⟩.
func (s *System) AddConstraint(a, b, c *poly.LinComb, tag string) {
	for _, lc := range []*poly.LinComb{a, b, c} {
		if !lc.Field().SameField(s.field) {
			panic("r1cs: constraint over wrong field")
		}
		for _, v := range lc.Vars() {
			if v < 0 || v >= len(s.signals) {
				panic(fmt.Sprintf("r1cs: constraint references unknown signal %d", v))
			}
		}
	}
	s.constraints = append(s.constraints, Constraint{A: a, B: b, C: c, Tag: tag})
	s.sigToCons = nil
}

// SetSignalLoc records the source location of a signal's declaration.
func (s *System) SetSignalLoc(id int, loc SourceLoc) {
	if id <= 0 || id >= len(s.signals) {
		panic(fmt.Sprintf("r1cs: SetSignalLoc on unknown signal %d", id))
	}
	s.signals[id].Loc = loc
}

// MarkHinted records that a signal was assigned with the witness-only `<--`
// operator.
func (s *System) MarkHinted(id int) {
	if id <= 0 || id >= len(s.signals) {
		panic(fmt.Sprintf("r1cs: MarkHinted on unknown signal %d", id))
	}
	s.signals[id].Hinted = true
}

// SetConstraintLoc records the source location of the i-th constraint.
func (s *System) SetConstraintLoc(i int, loc SourceLoc) {
	if i < 0 || i >= len(s.constraints) {
		panic(fmt.Sprintf("r1cs: SetConstraintLoc on unknown constraint %d", i))
	}
	s.constraints[i].Loc = loc
}

// SetConstraintDef records that the i-th constraint was emitted by a `<==`
// assignment defining signal def.
func (s *System) SetConstraintDef(i, def int) {
	if i < 0 || i >= len(s.constraints) {
		panic(fmt.Sprintf("r1cs: SetConstraintDef on unknown constraint %d", i))
	}
	if def <= 0 || def >= len(s.signals) {
		panic(fmt.Sprintf("r1cs: SetConstraintDef with unknown signal %d", def))
	}
	s.constraints[i].Def = def
}

// NumSignals returns the number of signals including the constant one.
func (s *System) NumSignals() int { return len(s.signals) }

// NumConstraints returns the number of constraints.
func (s *System) NumConstraints() int { return len(s.constraints) }

// Signal returns the signal with the given ID.
func (s *System) Signal(id int) Signal { return s.signals[id] }

// SignalByName looks a signal up by name.
func (s *System) SignalByName(name string) (Signal, bool) {
	id, ok := s.byName[name]
	if !ok {
		return Signal{}, false
	}
	return s.signals[id], true
}

// Signals returns a copy of the signal table.
func (s *System) Signals() []Signal {
	out := make([]Signal, len(s.signals))
	copy(out, s.signals)
	return out
}

// Constraint returns the i-th constraint.
func (s *System) Constraint(i int) Constraint { return s.constraints[i] }

// Constraints returns the constraint slice (callers must not mutate).
func (s *System) Constraints() []Constraint { return s.constraints }

// idsOfKind returns the IDs of all signals of kind k, ascending.
func (s *System) idsOfKind(k SignalKind) []int {
	var out []int
	for _, sig := range s.signals {
		if sig.Kind == k {
			out = append(out, sig.ID)
		}
	}
	return out
}

// Inputs returns the input signal IDs.
func (s *System) Inputs() []int { return s.idsOfKind(KindInput) }

// Outputs returns the output signal IDs.
func (s *System) Outputs() []int { return s.idsOfKind(KindOutput) }

// Internals returns the internal signal IDs.
func (s *System) Internals() []int { return s.idsOfKind(KindInternal) }

// Name returns a human-readable name for a signal ID, for diagnostics.
func (s *System) Name(id int) string {
	if id >= 0 && id < len(s.signals) {
		return s.signals[id].Name
	}
	return fmt.Sprintf("x%d", id)
}

// Stats summarizes a system for reporting.
type Stats struct {
	Signals     int
	Inputs      int
	Outputs     int
	Internals   int
	Constraints int
	Linear      int
	Nonlinear   int
}

// Stats computes summary statistics.
func (s *System) Stats() Stats {
	st := Stats{
		Signals:     len(s.signals),
		Inputs:      len(s.Inputs()),
		Outputs:     len(s.Outputs()),
		Internals:   len(s.Internals()),
		Constraints: len(s.constraints),
	}
	for i := range s.constraints {
		if s.constraints[i].IsLinear() {
			st.Linear++
		} else {
			st.Nonlinear++
		}
	}
	return st
}

// --- witnesses ---------------------------------------------------------------

// Witness is a full assignment to every signal, indexed by signal ID.
// Entry 0 must be 1. Values are ff.Element, so a witness is a single flat
// allocation and checking it is allocation-free.
type Witness []ff.Element

// NewWitness allocates a zeroed witness of the right length with the
// constant-one slot set.
func (s *System) NewWitness() Witness {
	w := make(Witness, len(s.signals))
	w[OneID] = s.field.One()
	return w
}

// Clone deep-copies a witness.
func (w Witness) Clone() Witness {
	out := make(Witness, len(w))
	copy(out, w)
	return out
}

// CheckWitness verifies that w satisfies every constraint, returning a
// descriptive error naming the first violated constraint.
func (s *System) CheckWitness(w Witness) error {
	if len(w) != len(s.signals) {
		return fmt.Errorf("r1cs: witness length %d, want %d", len(w), len(s.signals))
	}
	if !s.field.IsOne(w[OneID]) {
		return fmt.Errorf("r1cs: witness constant-one slot is %v", s.field.String(w[OneID]))
	}
	at := func(x int) ff.Element { return w[x] }
	for i := range s.constraints {
		c := &s.constraints[i]
		av := c.A.Eval(at)
		bv := c.B.Eval(at)
		cv := c.C.Eval(at)
		if s.field.Mul(av, bv) != cv {
			return &UnsatisfiedError{Index: i, Constraint: c, System: s}
		}
	}
	return nil
}

// UnsatisfiedError reports a violated constraint with provenance.
type UnsatisfiedError struct {
	Index      int
	Constraint *Constraint
	System     *System
}

// Error implements error.
func (e *UnsatisfiedError) Error() string {
	tag := e.Constraint.Tag
	if tag != "" {
		tag = " [" + tag + "]"
	}
	if !e.Constraint.Loc.IsZero() {
		tag += " at " + e.Constraint.Loc.String()
	}
	named := func(x int) string { return e.System.Name(x) }
	return fmt.Sprintf("r1cs: constraint #%d violated%s: (%s) * (%s) = (%s)",
		e.Index, tag,
		e.Constraint.A.StringNamed(named),
		e.Constraint.B.StringNamed(named),
		e.Constraint.C.StringNamed(named))
}

// AgreeOn reports whether two witnesses assign equal values to every signal
// in ids.
func AgreeOn(a, b Witness, ids []int) bool {
	for _, id := range ids {
		if a[id] != b[id] {
			return false
		}
	}
	return true
}

// FirstDifference returns the smallest signal ID in ids on which the two
// witnesses differ, or -1 if they agree on all of them.
func FirstDifference(a, b Witness, ids []int) int {
	for _, id := range ids {
		if a[id] != b[id] {
			return id
		}
	}
	return -1
}
