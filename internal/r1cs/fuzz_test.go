package r1cs

import (
	"math/big"
	"strings"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// fuzzSeedSystem builds a small valid system whose marshaled form seeds the
// fuzzer with a fully well-formed input.
func fuzzSeedSystem() *System {
	f, err := ff.NewField(big.NewInt(97))
	if err != nil {
		panic(err)
	}
	sys := NewSystem(f)
	a := sys.AddSignal("a", KindInput)
	b := sys.AddSignal("b", KindOutput)
	lcA := poly.Var(f, a)
	lcB := poly.Var(f, b)
	sys.AddConstraint(lcA, lcA, lcB, "b <== a*a")
	return sys
}

// FuzzParse checks that Parse never panics on arbitrary input: every
// malformed, adversarial, or resource-hostile document must come back as a
// positioned error. Signal-table and constraint-table mutations are
// pre-validated in Parse, so the System.AddSignal/AddConstraint panics
// (reserved for programmer error) must be unreachable from here.
func FuzzParse(f *testing.F) {
	valid := fuzzSeedSystem().MarshalText()
	seeds := []string{
		"",
		"r1cs v1",
		"r1cs v1\nprime 97\n",
		valid,
		// Duplicate signal name: used to panic inside AddSignal.
		"r1cs v1\nprime 97\nsignal 1 input x\nsignal 2 input x\n",
		// Constraint referencing an unknown signal: used to panic inside
		// AddConstraint.
		"r1cs v1\nprime 97\nsignal 1 input x\nconstraint [0|9:1] [0|] [0|]\n",
		// Negative variable ID.
		"r1cs v1\nprime 97\nsignal 1 input x\nconstraint [0|-1:1] [0|] [0|]\n",
		// Malformed one-signal and out-of-order IDs.
		"r1cs v1\nprime 97\nsignal 5 one one\n",
		"r1cs v1\nprime 97\nsignal 7 input x\n",
		// Oversized numeric literals (allocation / quadratic-conversion bait).
		"r1cs v1\nprime " + strings.Repeat("9", 400) + "\n",
		"r1cs v1\nprime 97\nsignal 1 input x\nconstraint [" + strings.Repeat("1", 400) + "|] [0|] [0|]\n",
		// Structural garbage.
		"r1cs v1\nprime 97\nconstraint [0| [0|] [0|]\n",
		"r1cs v1\nprime 97\nconstraint [0|] [0|]\n",
		"r1cs v1\nprime 97\nwat\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := ParseString(src)
		if err != nil {
			return
		}
		// Anything that parses must round-trip through the text format.
		text := sys.MarshalText()
		sys2, err := ParseString(text)
		if err != nil {
			t.Fatalf("re-parse of marshaled system failed: %v\n%s", err, text)
		}
		if got := sys2.MarshalText(); got != text {
			t.Fatalf("marshal round-trip not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}
