package r1cs

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"strconv"
	"strings"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// Parse hardening limits. The text format is accepted from untrusted
// sources (the qed2 CLI analyzes .r1cs files directly), so every count and
// numeric literal an attacker controls is bounded before it can drive an
// allocation or a quadratic big-integer conversion.
const (
	// maxParseSignals bounds the signal table of a parsed system.
	maxParseSignals = 1 << 20
	// maxParseConstraints bounds the constraint count of a parsed system.
	maxParseConstraints = 1 << 21
	// maxParseTerms bounds the terms of one linear combination.
	maxParseTerms = 1 << 16
	// maxParseDigits bounds decimal literals (constants, coefficients, the
	// prime): 256-bit moduli need 78 digits; anything much longer is abuse.
	maxParseDigits = 256
)

// parseBig converts a bounded decimal literal.
func parseBig(s string) (*big.Int, bool) {
	if len(s) == 0 || len(s) > maxParseDigits {
		return nil, false
	}
	return new(big.Int).SetString(s, 10)
}

// The text format is line oriented:
//
//	r1cs v1
//	prime <decimal modulus>
//	signal <id> <kind> <name> [loc=<template>:<line>:<col>] [hint]
//	...
//	constraint [<lc>] [<lc>] [<lc>] [@ <template>:<line>:<col>] [# tag]
//
// where <lc> is "<const>|<var>:<coeff>,<var>:<coeff>,..." with all numbers
// decimal and normalized. It exists so compiled circuits can be saved,
// diffed in tests, and fed back to the analyzer without re-running the
// front-end.
//
// The loc= / hint signal tokens and the "@ loc" constraint segment carry the
// compiler's source locations and `<--` witness-only-assignment origin flag
// through serialization; they are optional, so pre-metadata files still
// parse, and older parsers of this format would only have broken on them if
// they rejected trailing tokens (signal names cannot contain spaces).

// WriteTo serializes the system in the text format.
func (s *System) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(fmt.Fprintf(bw, "r1cs v1\nprime %s\n", s.field.Modulus())); err != nil {
		return n, err
	}
	for _, sig := range s.signals {
		if err := count(fmt.Fprintln(bw, signalLine(sig))); err != nil {
			return n, err
		}
	}
	for i := range s.constraints {
		if err := count(fmt.Fprintln(bw, constraintLine(&s.constraints[i]))); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// signalLine renders one "signal ..." line of the text format.
func signalLine(sig Signal) string {
	line := fmt.Sprintf("signal %d %s %s", sig.ID, sig.Kind, sig.Name)
	if !sig.Loc.IsZero() {
		line += " loc=" + sig.Loc.String()
	}
	if sig.Hinted {
		line += " hint"
	}
	return line
}

// constraintLine renders one "constraint ..." line of the text format. The
// rendering is deterministic: marshalLC visits terms in ascending variable
// order, so equal constraints always produce equal lines — the property the
// canonical digest (canonical.go) builds on.
func constraintLine(c *Constraint) string {
	line := fmt.Sprintf("constraint [%s] [%s] [%s]", marshalLC(c.A), marshalLC(c.B), marshalLC(c.C))
	if c.Def != 0 {
		line += fmt.Sprintf(" def=%d", c.Def)
	}
	if !c.Loc.IsZero() {
		line += " @ " + c.Loc.String()
	}
	if c.Tag != "" {
		line += " # " + c.Tag
	}
	return line
}

// MarshalText renders the system as a string in the text format.
func (s *System) MarshalText() string {
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

func marshalLC(lc *poly.LinComb) string {
	f := lc.Field()
	var b strings.Builder
	b.WriteString(f.ToBig(lc.Constant()).String())
	b.WriteByte('|')
	first := true
	lc.VisitTerms(func(x int, coeff ff.Element) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d:%s", x, f.ToBig(coeff))
	})
	return b.String()
}

// parseLC parses one linear combination. numSignals bounds the variable IDs
// a term may reference — validating here keeps System.AddConstraint's
// out-of-range panic unreachable from untrusted input.
func parseLC(f *ff.Field, s string, numSignals int) (*poly.LinComb, error) {
	konst, rest, ok := strings.Cut(s, "|")
	if !ok {
		return nil, fmt.Errorf("r1cs: malformed linear combination %q", s)
	}
	c, parsed := parseBig(konst)
	if !parsed {
		return nil, fmt.Errorf("r1cs: bad constant in %q", s)
	}
	lc := poly.ConstBig(f, c)
	if rest == "" {
		return lc, nil
	}
	terms := strings.Split(rest, ",")
	if len(terms) > maxParseTerms {
		return nil, fmt.Errorf("r1cs: linear combination has %d terms (limit %d)", len(terms), maxParseTerms)
	}
	for _, term := range terms {
		vs, cs, ok := strings.Cut(term, ":")
		if !ok {
			return nil, fmt.Errorf("r1cs: malformed term %q", term)
		}
		v, err := strconv.Atoi(vs)
		if err != nil {
			return nil, fmt.Errorf("r1cs: bad variable in term %q", term)
		}
		if v < 0 || v >= numSignals {
			return nil, fmt.Errorf("r1cs: term %q references unknown signal %d (have %d)", term, v, numSignals)
		}
		coeff, parsed := parseBig(cs)
		if !parsed {
			return nil, fmt.Errorf("r1cs: bad coefficient in term %q", term)
		}
		lc = lc.AddTerm(v, f.FromBig(coeff))
	}
	return lc, nil
}

// Parse reads a system from the text format.
func Parse(r io.Reader) (*System, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			return line, true
		}
		return "", false
	}
	header, ok := next()
	if !ok || header != "r1cs v1" {
		return nil, fmt.Errorf("r1cs: line %d: missing 'r1cs v1' header", lineNo)
	}
	primeLine, ok := next()
	if !ok || !strings.HasPrefix(primeLine, "prime ") {
		return nil, fmt.Errorf("r1cs: line %d: missing prime", lineNo)
	}
	p, parsed := parseBig(strings.TrimPrefix(primeLine, "prime "))
	if !parsed {
		return nil, fmt.Errorf("r1cs: line %d: bad prime", lineNo)
	}
	field, err := ff.NewField(p)
	if err != nil {
		return nil, fmt.Errorf("r1cs: line %d: %v", lineNo, err)
	}
	sys := NewSystem(field)
	// seen pre-checks names so that duplicate input never reaches the
	// AddSignal duplicate-name panic, which is reserved for programmer error.
	seen := map[string]bool{"one": true}
	for {
		line, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "signal "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				return nil, fmt.Errorf("r1cs: line %d: bad signal: want 'signal <id> <kind> <name>'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("r1cs: line %d: bad signal ID %q", lineNo, fields[1])
			}
			kind, name := fields[2], fields[3]
			var loc SourceLoc
			hinted := false
			for _, extra := range fields[4:] {
				switch {
				case strings.HasPrefix(extra, "loc="):
					loc, err = parseLoc(strings.TrimPrefix(extra, "loc="))
					if err != nil {
						return nil, fmt.Errorf("r1cs: line %d: %v", lineNo, err)
					}
				case extra == "hint":
					hinted = true
				default:
					return nil, fmt.Errorf("r1cs: line %d: unknown signal attribute %q", lineNo, extra)
				}
			}
			if kind == "one" {
				if id != OneID || name != "one" {
					return nil, fmt.Errorf("r1cs: line %d: malformed one-signal", lineNo)
				}
				continue
			}
			var k SignalKind
			switch kind {
			case "input":
				k = KindInput
			case "output":
				k = KindOutput
			case "internal":
				k = KindInternal
			default:
				return nil, fmt.Errorf("r1cs: line %d: unknown signal kind %q", lineNo, kind)
			}
			if seen[name] {
				return nil, fmt.Errorf("r1cs: line %d: duplicate signal name %q", lineNo, name)
			}
			seen[name] = true
			if sys.NumSignals() >= maxParseSignals {
				return nil, fmt.Errorf("r1cs: line %d: too many signals (limit %d)", lineNo, maxParseSignals)
			}
			if got := sys.AddSignal(name, k); got != id {
				return nil, fmt.Errorf("r1cs: line %d: signal IDs out of order (got %d want %d)", lineNo, got, id)
			}
			if !loc.IsZero() {
				sys.SetSignalLoc(id, loc)
			}
			if hinted {
				sys.MarkHinted(id)
			}
		case strings.HasPrefix(line, "constraint "):
			body := strings.TrimPrefix(line, "constraint ")
			tag := ""
			if i := strings.Index(body, " # "); i >= 0 {
				tag = body[i+3:]
				body = body[:i]
			}
			// The optional " @ loc" segment sits between the bracket bodies
			// and the tag; bracket bodies contain no spaces, so the marker
			// cannot occur inside them.
			var loc SourceLoc
			if i := strings.Index(body, " @ "); i >= 0 {
				var err error
				loc, err = parseLoc(body[i+3:])
				if err != nil {
					return nil, fmt.Errorf("r1cs: line %d: %v", lineNo, err)
				}
				body = body[:i]
			}
			def := 0
			if i := strings.Index(body, " def="); i >= 0 {
				var err error
				def, err = strconv.Atoi(strings.TrimSpace(body[i+5:]))
				if err != nil || def <= 0 || def >= sys.NumSignals() {
					return nil, fmt.Errorf("r1cs: line %d: bad def signal %q", lineNo, strings.TrimSpace(body[i+5:]))
				}
				body = body[:i]
			}
			parts, err := splitBracketed(body)
			if err != nil {
				return nil, fmt.Errorf("r1cs: line %d: %v", lineNo, err)
			}
			if sys.NumConstraints() >= maxParseConstraints {
				return nil, fmt.Errorf("r1cs: line %d: too many constraints (limit %d)", lineNo, maxParseConstraints)
			}
			lcs := make([]*poly.LinComb, 3)
			for i, p := range parts {
				lcs[i], err = parseLC(field, p, sys.NumSignals())
				if err != nil {
					return nil, fmt.Errorf("r1cs: line %d: %v", lineNo, err)
				}
			}
			sys.AddConstraint(lcs[0], lcs[1], lcs[2], tag)
			if !loc.IsZero() {
				sys.SetConstraintLoc(sys.NumConstraints()-1, loc)
			}
			if def != 0 {
				sys.SetConstraintDef(sys.NumConstraints()-1, def)
			}
		default:
			return nil, fmt.Errorf("r1cs: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sys, nil
}

// parseLoc parses a "<template>:<line>:<col>" source location token. The
// template name is everything before the last two colon-separated integers,
// so dotted or otherwise exotic template names round-trip as long as they
// contain no whitespace (which the writer never emits).
func parseLoc(s string) (SourceLoc, error) {
	j := strings.LastIndexByte(s, ':')
	if j < 0 {
		return SourceLoc{}, fmt.Errorf("r1cs: malformed source location %q", s)
	}
	i := strings.LastIndexByte(s[:j], ':')
	if i < 0 {
		return SourceLoc{}, fmt.Errorf("r1cs: malformed source location %q", s)
	}
	line, err1 := strconv.Atoi(s[i+1 : j])
	col, err2 := strconv.Atoi(s[j+1:])
	if err1 != nil || err2 != nil || line < 0 || col < 0 || line > 1<<30 || col > 1<<30 {
		return SourceLoc{}, fmt.Errorf("r1cs: malformed source location %q", s)
	}
	return SourceLoc{Template: s[:i], Line: line, Col: col}, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*System, error) { return Parse(strings.NewReader(s)) }

// splitBracketed splits "[a] [b] [c]" into exactly three bracket bodies.
func splitBracketed(s string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(s)
	for len(rest) > 0 {
		if rest[0] != '[' {
			return nil, fmt.Errorf("expected '[' in %q", rest)
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return nil, fmt.Errorf("unterminated '[' in %q", rest)
		}
		out = append(out, rest[1:end])
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(out) != 3 {
		return nil, fmt.Errorf("constraint must have exactly 3 linear combinations, got %d", len(out))
	}
	return out, nil
}
