package r1cs

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzBinarySeed marshals the shared fuzz seed system in the binary format.
func fuzzBinarySeed() []byte {
	return fuzzSeedSystem().MarshalBinary()
}

// mutBinary returns a copy of the seed with fn applied — the seed corpus
// mirrors the attack classes the hardening caps in ParseBinary close:
// truncated sections, oversized counts, wrong primes, duplicate sections.
func mutBinary(fn func([]byte) []byte) []byte {
	return fn(bytes.Clone(fuzzBinarySeed()))
}

// FuzzParseBinary checks that ParseBinary never panics on arbitrary bytes:
// every malformed, adversarial, or resource-hostile file must come back as
// an error, under the same hardening caps r1cs.Parse enforces for the text
// format (signal/constraint/term counts, bounded allocations). Anything
// that parses must survive a marshal → re-parse round trip.
func FuzzParseBinary(f *testing.F) {
	valid := fuzzBinarySeed()
	seeds := [][]byte{
		nil,
		[]byte("r1cs"),
		valid,
		// Truncations at every structural boundary: mid-magic, mid-section
		// directory, mid-header, mid-constraint, mid-map.
		valid[:2],
		valid[:8],
		valid[:12],
		valid[:20],
		valid[:len(valid)/2],
		valid[:len(valid)-3],
		// Oversized counts: wires, constraints, terms, labels.
		mutBinary(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24+4+8:], 1<<31) // nWires (n8=8 for F_97)
			return b
		}),
		mutBinary(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24+4+8+16+8:], 1<<30) // nConstraints
			return b
		}),
		mutBinary(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], 1<<20) // n8 huge
			return b
		}),
		// Wrong prime: even (composite), zero, and a value the coefficients
		// then exceed.
		mutBinary(func(b []byte) []byte {
			b[24+4] = 96 // 97 -> 96
			return b
		}),
		mutBinary(func(b []byte) []byte {
			b[24+4] = 0
			return b
		}),
		mutBinary(func(b []byte) []byte {
			b[24+4] = 3 // coefficients mod 97 now out of range for F_3
			return b
		}),
		// Duplicate header section appended (and nSections bumped).
		mutBinary(func(b []byte) []byte {
			hdr := bytes.Clone(b[12 : 12+12+4+8+16+8+4])
			b = append(b, hdr...)
			binary.LittleEndian.PutUint32(b[8:], 4)
			return b
		}),
		// Section claiming more bytes than remain.
		mutBinary(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40) // header size
			return b
		}),
		// Trailing garbage after the last section.
		mutBinary(func(b []byte) []byte { return append(b, 0xde, 0xad) }),
		// Version from the text format's " v1\n" bytes.
		append([]byte("r1cs"), []byte(" v1\nprime 97\n")...),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := ParseBinary(data)
		if err != nil {
			return
		}
		// Anything that parses must round-trip through the binary format.
		bin := sys.MarshalBinary()
		sys2, err := ParseBinary(bin)
		if err != nil {
			t.Fatalf("re-parse of marshaled system failed: %v", err)
		}
		if sys2.Digest() != sys.Digest() {
			t.Fatalf("binary round trip changed the canonical form:\n%s\nvs\n%s",
				sys.CanonicalText(), sys2.CanonicalText())
		}
	})
}

// FuzzParseSym checks the .sym table parser against arbitrary input paired
// with the valid binary seed.
func FuzzParseSym(f *testing.F) {
	f.Add("1,1,-1,main.a\n2,2,-1,main.b\n")
	f.Add("1,1,-1,a,hint\n")
	f.Add("1,1,-1\n")
	f.Add("99999999999999999999,0,-1,x\n")
	f.Add("1,1,-1,a\n1,2,-1,b\n")
	f.Fuzz(func(t *testing.T, sym string) {
		_, _ = ParseBinaryWithSym(fuzzBinarySeed(), []byte(sym))
	})
}
