package r1cs

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// Binary snarkjs .r1cs interchange format (the iden3 r1csfile spec, v1),
// the form the Circom/snarkjs toolchain exports and every downstream zk
// tool consumes. The layout is section-framed:
//
//	magic "r1cs" | u32 version=1 | u32 nSections
//	per section: u32 type | u64 byte size | body
//
// with three section types this reader understands (custom-gate sections 4
// and 5 are skipped, any other unknown type is tolerated and ignored):
//
//	1 header:      u32 n8 (bytes per field element) | prime (n8 bytes LE)
//	               u32 nWires | u32 nPubOut | u32 nPubIn | u32 nPrvIn
//	               u64 nLabels | u32 nConstraints
//	2 constraints: per constraint, for each of A, B, C:
//	               u32 nTerms | nTerms × (u32 wireID | coeff n8 bytes LE)
//	3 wire2label:  nWires × u64 label
//
// All integers are little-endian. Wire 0 is the constant-one wire; wires
// 1..nPubOut are the public outputs, the next nPubIn+nPrvIn wires are the
// inputs, and the remainder are internal. Since this analysis judges
// uniqueness relative to all inputs, public and private inputs both map to
// KindInput.
//
// MarshalBinary writes the wire2label section as the identity-preserving
// permutation back to the System's own signal IDs, so a
// MarshalBinary→ParseBinary round trip reconstructs the exact signal
// numbering (and therefore the exact slicing, query order, and verdicts) of
// the original system. Files from the real toolchain use labels as indices
// into the pre-optimization signal space — not a permutation — in which
// case the reader falls back to wire order. Signal names do not live in the
// binary format at all; the companion .sym file (see sym.go) carries them.
//
// The binary format has no slot for the compiler metadata the text format
// round-trips (source locations, constraint tags, <== def attribution).
// Those degrade gracefully: findings lose locations, and the dependency
// graph treats every constraint as bidirectional. Hint flags are carried by
// the .sym extension column, so verdict-relevant inputs survive; the
// byte-identical-verdict differential test (internal/bench) pins that.

// Binary parse hardening caps, mirroring the text-format limits: every
// count an attacker controls is bounded before it drives an allocation.
const (
	binMagic = "r1cs"
	// maxBinSections bounds the section directory (the spec uses 3-5).
	maxBinSections = 64
	// maxBinFieldBytes bounds n8: the ff substrate supports moduli up to
	// 256 bits, and snarkjs pads n8 to a multiple of 8.
	maxBinFieldBytes = 32
)

// IsBinaryR1CS reports whether data starts with the snarkjs .r1cs magic.
// The text format's "r1cs v1" header shares the first four bytes, so the
// version field disambiguates: the binary version is a small little-endian
// integer, while the text header continues with " v1\n" (0x0a31_7620).
func IsBinaryR1CS(data []byte) bool {
	return len(data) >= 8 && string(data[:4]) == binMagic &&
		binary.LittleEndian.Uint32(data[4:8]) <= 0xff
}

// ParseAuto parses either serialization of a constraint system, detecting
// the snarkjs binary format by its magic number and treating everything
// else as the text format.
func ParseAuto(data []byte) (*System, error) {
	if IsBinaryR1CS(data) {
		return ParseBinary(data)
	}
	return ParseString(string(data))
}

// ParseAutoWithSym is ParseAuto with an optional .sym name table (ignored
// for the text format, which carries its own names). sym may be nil.
func ParseAutoWithSym(data, sym []byte) (*System, error) {
	if IsBinaryR1CS(data) {
		return ParseBinaryWithSym(data, sym)
	}
	return ParseString(string(data))
}

// binReader is a bounds-checked little-endian cursor over a byte slice.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("r1cs: binary truncated at offset %d (need %d bytes, have %d)", r.off, n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *binReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// binHeader is the decoded header section.
type binHeader struct {
	n8           int
	field        *ff.Field
	nWires       int
	nPubOut      int
	nPubIn       int
	nPrvIn       int
	nLabels      uint64
	nConstraints int
}

// ParseBinary reads a snarkjs binary .r1cs file. Signal names are
// synthesized ("w<label>"); use ParseBinaryWithSym to attach the circom
// .sym name table.
func ParseBinary(data []byte) (*System, error) {
	return ParseBinaryWithSym(data, nil)
}

// ParseBinaryWithSym reads a snarkjs binary .r1cs file plus an optional
// .sym table mapping labels to signal names (nil for synthesized names).
func ParseBinaryWithSym(data, sym []byte) (*System, error) {
	r := &binReader{data: data}
	magic, err := r.bytes(4)
	if err != nil || string(magic) != binMagic {
		return nil, fmt.Errorf("r1cs: not a binary .r1cs file (bad magic)")
	}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("r1cs: unsupported binary format version %d (want 1)", version)
	}
	nSections, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nSections == 0 || nSections > maxBinSections {
		return nil, fmt.Errorf("r1cs: implausible section count %d", nSections)
	}
	// Walk the section directory first: the header section must be decoded
	// before the constraint section regardless of file order, and duplicate
	// sections of a known type are rejected rather than silently letting
	// one shadow the other.
	sections := map[uint32][]byte{}
	for i := uint32(0); i < nSections; i++ {
		typ, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("r1cs: section %d: %v", i, err)
		}
		size, err := r.u64()
		if err != nil {
			return nil, fmt.Errorf("r1cs: section %d: %v", i, err)
		}
		if size > uint64(r.remaining()) {
			return nil, fmt.Errorf("r1cs: section %d (type %d) claims %d bytes, only %d remain", i, typ, size, r.remaining())
		}
		body, _ := r.bytes(int(size))
		switch typ {
		case 1, 2, 3:
			if _, dup := sections[typ]; dup {
				return nil, fmt.Errorf("r1cs: duplicate section of type %d", typ)
			}
			sections[typ] = body
		default:
			// Custom-gate and future sections: tolerated, ignored.
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("r1cs: %d trailing bytes after the last section", r.remaining())
	}
	hdrBody, ok := sections[1]
	if !ok {
		return nil, fmt.Errorf("r1cs: missing header section")
	}
	hdr, err := parseBinHeader(hdrBody)
	if err != nil {
		return nil, err
	}
	consBody, ok := sections[2]
	if !ok {
		return nil, fmt.Errorf("r1cs: missing constraint section")
	}
	labels, err := parseWire2Label(sections[3], hdr)
	if err != nil {
		return nil, err
	}
	names, hints, err := parseSym(sym)
	if err != nil {
		return nil, err
	}
	return buildFromBinary(hdr, consBody, labels, names, hints)
}

// parseBinHeader decodes and validates the header section.
func parseBinHeader(body []byte) (*binHeader, error) {
	r := &binReader{data: body}
	n8u, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	if n8u == 0 || n8u > maxBinFieldBytes || n8u%8 != 0 {
		return nil, fmt.Errorf("r1cs: header: field element size %d bytes unsupported (want a multiple of 8, at most %d)", n8u, maxBinFieldBytes)
	}
	n8 := int(n8u)
	primeBytes, err := r.bytes(n8)
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	prime := leBig(primeBytes)
	field, err := ff.NewField(prime)
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: bad prime %s: %v", prime, err)
	}
	hdr := &binHeader{n8: n8, field: field}
	nWires, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	nPubOut, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	nPubIn, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	nPrvIn, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	nLabels, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	nConstraints, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("r1cs: header: %v", err)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("r1cs: header: %d trailing bytes", r.remaining())
	}
	if nWires == 0 || nWires > maxParseSignals {
		return nil, fmt.Errorf("r1cs: header: wire count %d out of range (limit %d)", nWires, maxParseSignals)
	}
	if nConstraints > maxParseConstraints {
		return nil, fmt.Errorf("r1cs: header: constraint count %d exceeds limit %d", nConstraints, maxParseConstraints)
	}
	io := uint64(nPubOut) + uint64(nPubIn) + uint64(nPrvIn)
	if io+1 > uint64(nWires) {
		return nil, fmt.Errorf("r1cs: header: %d public/private I/O wires exceed %d total wires", io, nWires)
	}
	hdr.nWires = int(nWires)
	hdr.nPubOut = int(nPubOut)
	hdr.nPubIn = int(nPubIn)
	hdr.nPrvIn = int(nPrvIn)
	hdr.nLabels = nLabels
	hdr.nConstraints = int(nConstraints)
	return hdr, nil
}

// parseWire2Label decodes the optional wire-to-label map (nil body = no
// section, identity mapping).
func parseWire2Label(body []byte, hdr *binHeader) ([]uint64, error) {
	if body == nil {
		return nil, nil
	}
	if len(body) != hdr.nWires*8 {
		return nil, fmt.Errorf("r1cs: wire2label section is %d bytes, want %d (8 per wire)", len(body), hdr.nWires*8)
	}
	labels := make([]uint64, hdr.nWires)
	for i := range labels {
		labels[i] = binary.LittleEndian.Uint64(body[i*8:])
		if hdr.nLabels > 0 && labels[i] >= hdr.nLabels {
			return nil, fmt.Errorf("r1cs: wire %d maps to label %d, beyond the %d declared labels", i, labels[i], hdr.nLabels)
		}
	}
	return labels, nil
}

// labelPermutation reports whether the wire2label map is a permutation of
// [0, nWires) fixing 0 — the shape MarshalBinary emits to preserve signal
// numbering. Real snarkjs exports map into the larger pre-optimization
// label space instead, and get wire-order numbering.
func labelPermutation(labels []uint64) bool {
	if labels == nil || labels[0] != 0 {
		return false
	}
	seen := make([]bool, len(labels))
	for _, l := range labels {
		if l >= uint64(len(labels)) || seen[l] {
			return false
		}
		seen[l] = true
	}
	return true
}

// buildFromBinary assembles the System from the decoded sections.
func buildFromBinary(hdr *binHeader, consBody []byte, labels []uint64, names map[uint64]string, hints map[uint64]bool) (*System, error) {
	// wireKind classifies a wire by its index per the snarkjs layout.
	wireKind := func(w int) SignalKind {
		switch {
		case w == 0:
			return KindOne
		case w <= hdr.nPubOut:
			return KindOutput
		case w <= hdr.nPubOut+hdr.nPubIn+hdr.nPrvIn:
			return KindInput
		default:
			return KindInternal
		}
	}
	// sigOf maps a wire index to the signal ID the System will use.
	sigOf := func(w int) int { return w }
	sys := NewSystem(hdr.field)
	if labelPermutation(labels) {
		// Identity-preserving round trip: signal ID = label. Build the
		// signal table in label order, remembering each wire's target.
		sigOf = func(w int) int { return int(labels[w]) }
		wireOf := make([]int, hdr.nWires) // label -> wire
		for w, l := range labels {
			wireOf[l] = w
		}
		for id := 1; id < hdr.nWires; id++ {
			w := wireOf[id]
			if err := addBinarySignal(sys, uint64(id), wireKind(w), names, hints); err != nil {
				return nil, err
			}
		}
	} else {
		for w := 1; w < hdr.nWires; w++ {
			label := uint64(w)
			if labels != nil {
				label = labels[w]
			}
			if err := addBinarySignal(sys, label, wireKind(w), names, hints); err != nil {
				return nil, err
			}
		}
	}
	// Constraint section: 3 linear combinations per constraint.
	r := &binReader{data: consBody}
	for ci := 0; ci < hdr.nConstraints; ci++ {
		var lcs [3]*poly.LinComb
		for j := 0; j < 3; j++ {
			lc, err := parseBinaryLC(r, hdr, sigOf)
			if err != nil {
				return nil, fmt.Errorf("r1cs: constraint %d: %v", ci, err)
			}
			lcs[j] = lc
		}
		sys.AddConstraint(lcs[0], lcs[1], lcs[2], "")
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("r1cs: constraint section has %d trailing bytes after %d constraints", r.remaining(), hdr.nConstraints)
	}
	return sys, nil
}

// addBinarySignal installs one non-constant signal, naming it from the sym
// table when present ("w<label>" otherwise) and applying the hint flag.
func addBinarySignal(sys *System, label uint64, kind SignalKind, names map[uint64]string, hints map[uint64]bool) error {
	name := names[label]
	if name == "" {
		name = fmt.Sprintf("w%d", label)
	}
	if _, dup := sys.SignalByName(name); dup {
		return fmt.Errorf("r1cs: duplicate signal name %q from sym table", name)
	}
	id := sys.AddSignal(name, kind)
	if hints[label] {
		sys.MarkHinted(id)
	}
	return nil
}

// parseBinaryLC decodes one linear combination of the constraint section.
func parseBinaryLC(r *binReader, hdr *binHeader, sigOf func(int) int) (*poly.LinComb, error) {
	nTerms, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nTerms > maxParseTerms {
		return nil, fmt.Errorf("linear combination has %d terms (limit %d)", nTerms, maxParseTerms)
	}
	lc := poly.NewLinComb(hdr.field)
	for t := uint32(0); t < nTerms; t++ {
		wire, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(wire) >= hdr.nWires {
			return nil, fmt.Errorf("term references wire %d beyond the %d declared wires", wire, hdr.nWires)
		}
		coeffBytes, err := r.bytes(hdr.n8)
		if err != nil {
			return nil, err
		}
		v := leBig(coeffBytes)
		if v.Cmp(hdr.field.Modulus()) >= 0 {
			return nil, fmt.Errorf("coefficient %s out of range for the declared prime", v)
		}
		coeff := hdr.field.FromBig(v)
		if wire == 0 {
			lc = lc.AddConst(coeff)
		} else {
			lc = lc.AddTerm(sigOf(int(wire)), coeff)
		}
	}
	return lc, nil
}

// --- writer ------------------------------------------------------------------

// binaryWireOrder returns the snarkjs wire permutation of a system: the
// constant one, then outputs, inputs, and internals, each in ascending
// signal-ID order. wires[w] is the signal ID on wire w.
func (s *System) binaryWireOrder() []int {
	wires := make([]int, 0, len(s.signals))
	wires = append(wires, OneID)
	wires = append(wires, s.Outputs()...)
	wires = append(wires, s.Inputs()...)
	wires = append(wires, s.Internals()...)
	return wires
}

// MarshalBinary renders the system in the snarkjs binary .r1cs format.
// Outputs occupy the first wires, then inputs (all public), then internals;
// the wire2label section maps every wire back to its original signal ID so
// ParseBinary reconstructs the exact signal numbering. Names, locations,
// tags and def attribution are not representable; pair with MarshalSym to
// keep names and hint flags.
func (s *System) MarshalBinary() []byte {
	f := s.field
	n8 := ((f.BitLen() + 63) / 64) * 8
	wires := s.binaryWireOrder()
	wireOf := make([]int, len(s.signals)) // signal ID -> wire
	for w, id := range wires {
		wireOf[id] = w
	}

	le := func(buf []byte, v *big.Int) {
		be := v.Bytes()
		for i, b := range be {
			buf[len(be)-1-i] = b
		}
	}
	var out []byte
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u64 := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }

	out = append(out, binMagic...)
	u32(1) // version
	u32(3) // sections: header, constraints, wire2label

	// Header section.
	u32(1)
	u64(uint64(4 + n8 + 4*4 + 8 + 4))
	u32(uint32(n8))
	primeLE := make([]byte, n8)
	le(primeLE, f.Modulus())
	out = append(out, primeLE...)
	u32(uint32(len(wires)))
	u32(uint32(len(s.Outputs())))
	u32(uint32(len(s.Inputs())))
	u32(0) // nPrvIn: this model treats every input as verifier-fixed
	u64(uint64(len(wires)))
	u32(uint32(len(s.constraints)))

	// Constraint section.
	var cons []byte
	coeffBuf := make([]byte, n8)
	appendLC := func(lc *poly.LinComb) {
		n := lc.NumTerms()
		if !lc.Constant().IsZero() {
			n++
		}
		cons = binary.LittleEndian.AppendUint32(cons, uint32(n))
		emit := func(wire int, coeff *big.Int) {
			cons = binary.LittleEndian.AppendUint32(cons, uint32(wire))
			for i := range coeffBuf {
				coeffBuf[i] = 0
			}
			le(coeffBuf, coeff)
			cons = append(cons, coeffBuf...)
		}
		if !lc.Constant().IsZero() {
			emit(0, f.ToBig(lc.Constant()))
		}
		lc.VisitTerms(func(x int, coeff ff.Element) {
			emit(wireOf[x], f.ToBig(coeff))
		})
	}
	for i := range s.constraints {
		c := &s.constraints[i]
		appendLC(c.A)
		appendLC(c.B)
		appendLC(c.C)
	}
	u32(2)
	u64(uint64(len(cons)))
	out = append(out, cons...)

	// Wire2label section: wire -> original signal ID.
	u32(3)
	u64(uint64(8 * len(wires)))
	for _, id := range wires {
		u64(uint64(id))
	}
	return out
}

// leBig converts little-endian bytes to a big.Int.
func leBig(b []byte) *big.Int {
	be := make([]byte, len(b))
	for i, v := range b {
		be[len(b)-1-i] = v
	}
	return new(big.Int).SetBytes(be)
}
