package r1cs

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strings"
)

// Canonical serialization: a normal form of the text format under which two
// systems have equal bytes exactly when they are the same circuit up to
// constraint order. It is the keying function of the content-addressed
// report store (internal/store) — a submission's digest decides whether a
// cached report may be served — so its determinism requirements are strict:
//
//   - Byte-identical across runs and processes: every line is rendered by
//     the same deterministic writers as MarshalText (marshalLC visits terms
//     in ascending variable order; no map iteration anywhere).
//   - Invariant under constraint order: the constraint lines are sorted
//     lexicographically. Two parses of the same file with shuffled
//     constraint lines digest equal.
//   - Sensitive to everything else: signal names, kinds, IDs, source
//     locations, hint flags, def attribution and tags all reach the digest.
//     That is deliberately stricter than verdict-equivalence — metadata
//     twins re-analyze rather than risk serving one circuit's diagnostics
//     (reasons name signals; stats count constraints) for another's.
//
// Analysis never mutates a System, so the digest is stable before/after
// Analyze and independent of Config.Workers; TestDigestStableAcrossAnalysis
// (qed2_test.go) pins that end to end.

// WriteCanonical writes the canonical form: the "r1cs v1" header, the prime,
// the signal lines in ID order, then the constraint lines sorted as byte
// strings.
func (s *System) WriteCanonical(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString("r1cs v1\nprime ")
	b.WriteString(s.field.Modulus().String())
	b.WriteByte('\n')
	for _, sig := range s.signals {
		b.WriteString(signalLine(sig))
		b.WriteByte('\n')
	}
	lines := make([]string, len(s.constraints))
	for i := range s.constraints {
		lines[i] = constraintLine(&s.constraints[i])
	}
	sort.Strings(lines)
	for _, line := range lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// CanonicalText renders the canonical form as a string. The result parses
// with Parse and re-canonicalizes to itself.
func (s *System) CanonicalText() string {
	var b strings.Builder
	if _, err := s.WriteCanonical(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// Digest returns the hex SHA-256 of the canonical form: the circuit's
// content address. Equal digests mean equal circuits up to constraint order
// (collision-resistance of SHA-256 aside).
func (s *System) Digest() string {
	h := sha256.New()
	if _, err := s.WriteCanonical(h); err != nil {
		panic(err) // hash.Hash never errors
	}
	return hex.EncodeToString(h.Sum(nil))
}
