package r1cs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// The circom .sym companion file: one line per signal,
//
//	<label>,<wire>,<component>,<name>
//
// mapping the label space of the binary .r1cs wire2label section onto
// human names. The binary format itself carries no names, so analyzing a
// snarkjs export without the .sym file falls back to synthesized "w<label>"
// names; with it, reports and counterexamples use the source names
// (e.g. "main.out[2]").
//
// MarshalSym emits one extension beyond circom's four columns: a trailing
// ",hint" marker on signals assigned with the witness-only `<--` operator.
// Hint flags feed the static-analysis detectors, and the binary format has
// nowhere else to keep them; parsers that split on the first four commas
// (as circom's own tooling does — names cannot contain commas) are
// unaffected, and parseSym accepts files with or without the column.

// maxSymLines bounds the sym table, matching the signal cap of Parse.
const maxSymLines = maxParseSignals

// parseSym decodes a .sym table into label→name and label→hinted maps.
// A nil input yields nil maps (synthesized names). Lines with wire -1
// (signals optimized out of the wire space) are kept: labels, not wires,
// key the table.
func parseSym(data []byte) (names map[uint64]string, hints map[uint64]bool, err error) {
	if data == nil {
		return nil, nil, nil
	}
	names = map[uint64]string{}
	hints = map[uint64]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if len(names) >= maxSymLines {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: too many entries (limit %d)", lineNo, maxSymLines)
		}
		parts := strings.SplitN(line, ",", 5)
		if len(parts) < 4 {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: want 'label,wire,component,name', got %q", lineNo, line)
		}
		label, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: bad label %q", lineNo, parts[0])
		}
		// parts[1] (wire) and parts[2] (component) are validated as
		// integers but otherwise unused: the wire2label section is
		// authoritative for the wire mapping.
		if _, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64); err != nil {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: bad wire %q", lineNo, parts[1])
		}
		if _, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64); err != nil {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: bad component %q", lineNo, parts[2])
		}
		name := parts[3]
		if len(parts) == 5 {
			switch parts[4] {
			case "hint":
				hints[label] = true
			default:
				return nil, nil, fmt.Errorf("r1cs: sym line %d: unknown attribute %q", lineNo, parts[4])
			}
		}
		if name == "" {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: empty signal name", lineNo)
		}
		if prior, dup := names[label]; dup {
			return nil, nil, fmt.Errorf("r1cs: sym line %d: duplicate label %d (%q and %q)", lineNo, label, prior, name)
		}
		names[label] = name
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return names, hints, nil
}

// MarshalSym renders the system's name table in the circom .sym format,
// labeled to match MarshalBinary's wire2label section (label = signal ID).
// The component column is -1 (this model keeps no component tree), and
// hinted signals carry the ",hint" extension column.
func (s *System) MarshalSym() []byte {
	wires := s.binaryWireOrder()
	wireOf := make([]int, len(s.signals))
	for w, id := range wires {
		wireOf[id] = w
	}
	var b strings.Builder
	for _, sig := range s.signals {
		if sig.ID == OneID {
			continue
		}
		fmt.Fprintf(&b, "%d,%d,-1,%s", sig.ID, wireOf[sig.ID], sig.Name)
		if sig.Hinted {
			b.WriteString(",hint")
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
