package r1cs

import "sort"

// buildAdjacency constructs the signal → constraint-indices index.
// The constant-one signal is deliberately excluded from adjacency: it occurs
// in nearly every constraint and would otherwise collapse all slices into
// the whole circuit.
func (s *System) buildAdjacency() {
	if s.sigToCons != nil {
		return
	}
	adj := make([][]int, len(s.signals))
	for ci := range s.constraints {
		for _, v := range s.constraints[ci].Vars() {
			if v == OneID {
				continue
			}
			adj[v] = append(adj[v], ci)
		}
	}
	s.sigToCons = adj
}

// ConstraintsOf returns the indices of constraints mentioning signal id
// (excluding occurrences of the constant-one signal).
func (s *System) ConstraintsOf(id int) []int {
	s.buildAdjacency()
	return s.sigToCons[id]
}

// PrepareConcurrent eagerly builds the lazy adjacency index so that the
// read-only graph operations (SliceAround, ConstraintsOf,
// ConnectedComponents) are safe to call from multiple goroutines. Callers
// that slice concurrently must invoke it once, before spawning workers, and
// must not mutate the system while workers run.
func (s *System) PrepareConcurrent() { s.buildAdjacency() }

// Slice is a connected fragment of the system used for local uniqueness
// queries: the constraints within a bounded graph distance of a target
// signal, together with the signals they mention.
type Slice struct {
	// Target is the signal the slice was grown around.
	Target int
	// Constraints holds indices into the parent system, ascending.
	Constraints []int
	// Signals holds the IDs of all signals mentioned by those constraints
	// (including the constant-one signal if it occurs), ascending.
	Signals []int
}

// SliceAround grows a slice of the constraint–signal graph around the target
// signal. Radius 1 takes the constraints directly mentioning the target;
// radius k+1 additionally takes all constraints sharing a signal with the
// radius-k slice. maxConstraints (if > 0) caps growth: expansion stops
// before exceeding the cap, always keeping at least the radius-1 core.
func (s *System) SliceAround(target, radius, maxConstraints int) Slice {
	s.buildAdjacency()
	inCons := map[int]bool{}
	inSig := map[int]bool{target: true}
	frontier := []int{target}
	total := 0
	for r := 0; r < radius && len(frontier) > 0; r++ {
		var added []int
		for _, sig := range frontier {
			for _, ci := range s.sigToCons[sig] {
				if inCons[ci] {
					continue
				}
				if maxConstraints > 0 && total >= maxConstraints && r > 0 {
					continue
				}
				inCons[ci] = true
				total++
				added = append(added, ci)
			}
		}
		frontier = frontier[:0]
		for _, ci := range added {
			for _, v := range s.constraints[ci].Vars() {
				if v == OneID {
					continue
				}
				if !inSig[v] {
					inSig[v] = true
					frontier = append(frontier, v)
				}
			}
		}
	}
	sl := Slice{Target: target}
	for ci := range inCons {
		sl.Constraints = append(sl.Constraints, ci)
	}
	sort.Ints(sl.Constraints)
	sigSet := map[int]bool{target: true}
	for _, ci := range sl.Constraints {
		for _, v := range s.constraints[ci].Vars() {
			sigSet[v] = true
		}
	}
	for v := range sigSet {
		sl.Signals = append(sl.Signals, v)
	}
	sort.Ints(sl.Signals)
	return sl
}

// ConnectedComponents partitions the non-constant signals into groups that
// are transitively connected through shared constraints. Isolated signals
// (mentioned by no constraint) form singleton components.
func (s *System) ConnectedComponents() [][]int {
	s.buildAdjacency()
	n := len(s.signals)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for ci := range s.constraints {
		vars := s.constraints[ci].Vars()
		var first = -1
		for _, v := range vars {
			if v == OneID {
				continue
			}
			if first == -1 {
				first = v
			} else {
				union(first, v)
			}
		}
	}
	groups := map[int][]int{}
	for id := 1; id < n; id++ {
		r := find(id)
		groups[r] = append(groups[r], id)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
