package r1cs

import (
	"math/big"
	"strings"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// metadataSystem builds a small system exercising every serialized feature:
// named signals of all kinds, source locations, a hinted signal, a def
// attribution and a tag.
func metadataSystem(t testing.TB) *System {
	t.Helper()
	f, err := ff.NewField(big.NewInt(97))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(f)
	in := s.AddSignal("in", KindInput)
	h := s.AddSignal("h", KindInternal)
	out := s.AddSignal("out", KindOutput)
	s.SetSignalLoc(in, SourceLoc{Template: "T", Line: 1, Col: 2})
	s.MarkHinted(h)
	v := func(x int) *poly.LinComb { return poly.Var(f, x) }
	one := poly.Const(f, f.One())
	s.AddConstraint(v(in), v(in), v(h), "sq")
	s.AddConstraint(v(h), one, v(out), "copy")
	s.SetConstraintLoc(0, SourceLoc{Template: "T", Line: 3, Col: 4})
	s.SetConstraintDef(1, out)
	return s
}

// shuffleConstraintLines deterministically permutes the constraint lines of
// a marshaled system (an LCG-driven Fisher–Yates), leaving header and
// signal lines in place — the text-format equivalent of a compiler emitting
// constraints in a different order.
func shuffleConstraintLines(text string, seed uint64) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	first := len(lines)
	for i, l := range lines {
		if strings.HasPrefix(l, "constraint ") {
			first = i
			break
		}
	}
	cons := lines[first:]
	state := seed*2862933555777941757 + 3037000493
	for i := len(cons) - 1; i > 0; i-- {
		state = state*2862933555777941757 + 3037000493
		j := int(state % uint64(i+1))
		cons[i], cons[j] = cons[j], cons[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestCanonicalByteIdenticalAcrossRenders(t *testing.T) {
	s := metadataSystem(t)
	a, b := s.CanonicalText(), s.CanonicalText()
	if a != b {
		t.Fatalf("CanonicalText not deterministic:\n%q\nvs\n%q", a, b)
	}
	if s.Digest() != s.Digest() {
		t.Fatal("Digest not deterministic")
	}
	// The canonical form is itself valid text format and a fixed point of
	// canonicalization.
	reparsed, err := ParseString(a)
	if err != nil {
		t.Fatalf("canonical form does not parse: %v", err)
	}
	if got := reparsed.CanonicalText(); got != a {
		t.Fatalf("canonicalization not idempotent:\n%q\nvs\n%q", got, a)
	}
}

func TestDigestInvariantUnderConstraintShuffle(t *testing.T) {
	s := metadataSystem(t)
	text := s.MarshalText()
	want := s.Digest()
	for seed := uint64(1); seed <= 5; seed++ {
		shuffled, err := ParseString(shuffleConstraintLines(text, seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := shuffled.Digest(); got != want {
			t.Fatalf("seed %d: digest changed under constraint shuffle: %s vs %s", seed, got, want)
		}
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := metadataSystem(t).Digest()
	// A different coefficient is a different circuit.
	mut := metadataSystem(t)
	f := mut.Field()
	mut.AddConstraint(poly.Var(f, 1), poly.Const(f, f.One()), poly.Var(f, 2), "")
	if mut.Digest() == base {
		t.Fatal("adding a constraint did not change the digest")
	}
	// Metadata is part of the address too: a hint flag flips the digest, so
	// the store never serves one circuit's diagnostics for a metadata twin.
	mut2 := metadataSystem(t)
	mut2.MarkHinted(3)
	if mut2.Digest() == base {
		t.Fatal("hint metadata did not change the digest")
	}
}

// FuzzCanonicalShuffle feeds arbitrary text through the parser and checks
// the two core canonical-form invariants on everything that parses: digests
// are invariant under constraint-line shuffles, and canonicalization is a
// parse/render fixed point.
func FuzzCanonicalShuffle(f *testing.F) {
	f.Add(metadataSystem(f).MarshalText(), uint64(1))
	f.Add("r1cs v1\nprime 13\nsignal 1 input a\nsignal 2 output b\nconstraint [0|1:1] [1|] [0|2:1]\nconstraint [0|2:1] [0|2:1] [0|1:1]\n", uint64(7))
	f.Fuzz(func(t *testing.T, text string, seed uint64) {
		sys, err := ParseString(text)
		if err != nil {
			return
		}
		want := sys.Digest()
		if shuffled, err := ParseString(shuffleConstraintLines(sys.MarshalText(), seed%64+1)); err == nil {
			if got := shuffled.Digest(); got != want {
				t.Fatalf("digest not shuffle-invariant: %s vs %s", got, want)
			}
		}
		canon, err := ParseString(sys.CanonicalText())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v", err)
		}
		if got := canon.Digest(); got != want {
			t.Fatalf("canonical re-parse changed digest: %s vs %s", got, want)
		}
	})
}
