package sa

import (
	"math/big"
	"testing"
)

func cg(m, r int64) *Congruence { return newCongruence(bi(m), bi(r)) }

func TestCongruenceNormalization(t *testing.T) {
	if newCongruence(bi(1), bi(0)) != nil || newCongruence(bi(0), bi(3)) != nil {
		t.Error("modulus < 2 must yield the trivial (nil) congruence")
	}
	c := cg(5, -3) // ≡ 2 (mod 5) after Euclidean reduction
	if c.R.Cmp(bi(2)) != 0 {
		t.Errorf("residue = %v, want 2", c.R)
	}
	if !c.Admits(bi(7)) || !c.Admits(bi(-3)) || c.Admits(bi(5)) {
		t.Error("Admits wrong")
	}
}

func TestCongruenceMeet(t *testing.T) {
	// x ≡ 2 (mod 3) ∧ x ≡ 3 (mod 5) → x ≡ 8 (mod 15).
	m, ok := cg(3, 2).meet(cg(5, 3))
	if !ok || m.M.Cmp(bi(15)) != 0 || m.R.Cmp(bi(8)) != 0 {
		t.Errorf("meet = %v, %v", m, ok)
	}
	// x ≡ 1 (mod 4) ∧ x ≡ 3 (mod 4): incompatible.
	if _, ok := cg(4, 1).meet(cg(4, 3)); ok {
		t.Error("contradictory congruences should meet to empty")
	}
	// x ≡ 1 (mod 6) ∧ x ≡ 3 (mod 4): gcd 2 divides neither difference… 1−3 = −2, divisible → CRT solves mod 12: x ≡ 7.
	m, ok = cg(6, 1).meet(cg(4, 3))
	if !ok || m.M.Cmp(bi(12)) != 0 || m.R.Cmp(bi(7)) != 0 {
		t.Errorf("meet = %v, %v", m, ok)
	}
}

func TestCongruenceMeetCap(t *testing.T) {
	// Two coprime moduli whose lcm overflows the cap: the stronger operand
	// is kept rather than materializing a huge modulus.
	big1 := new(big.Int).Lsh(bigOne, 80)
	big2 := new(big.Int).Add(new(big.Int).Lsh(bigOne, 80), bigOne)
	a, b := newCongruence(big1, bi(1)), newCongruence(big2, bi(1))
	m, ok := a.meet(b)
	if !ok || m.M.Cmp(congruenceModCap) > 0 {
		t.Errorf("capped meet = %v, %v", m, ok)
	}
}

func TestCongruenceTightens(t *testing.T) {
	if !cg(3, 1).tightens(cg(6, 1)) {
		t.Error("finer modulus should tighten")
	}
	if cg(6, 1).tightens(cg(6, 1)) {
		t.Error("equal congruence must not tighten")
	}
}

func TestCongruenceNonzeroByResidue(t *testing.T) {
	if !cg(4, 3).NonzeroByResidue() || cg(4, 0).NonzeroByResidue() {
		t.Error("NonzeroByResidue wrong")
	}
}

func TestMeetIntervalCongruence(t *testing.T) {
	// x ∈ [0, 10] ∧ x ≡ 3 (mod 4) → x ∈ [3, 7].
	m, ok := meetIntervalCongruence(iv(0, 10), cg(4, 3))
	if !ok || m.Lo.Cmp(bi(3)) != 0 || m.Hi.Cmp(bi(7)) != 0 {
		t.Errorf("meet = %v, %v", m, ok)
	}
	// x ∈ [4, 6] ∧ x ≡ 3 (mod 4): empty.
	if _, ok := meetIntervalCongruence(iv(4, 6), cg(4, 3)); ok {
		t.Error("empty meet not detected")
	}
}
