package sa

import (
	"fmt"
	"sort"
	"strings"
)

// The signal-tag lattice, à la Circom tags: a compact, human-oriented view
// of the abstract state. Where the interval/congruence domains carry exact
// per-signal sets, tags name the handful of shapes circuit authors reason
// in — `binary`, `maxbit(k)`, `nonzero`, `const` — and flow along the
// dependency graph simply because the underlying domains do. Detectors
// (overflow-prone-sum, nonzero-divisor-proved) and the lint renderers key
// on tags rather than raw intervals, so messages read like the Circom tag
// system the author already knows.

// TagKind enumerates the tag lattice's generators.
type TagKind int

// Tag kinds, ordered from most to least specific for rendering.
const (
	// TagConst marks a signal pinned to one value in every satisfying
	// assignment.
	TagConst TagKind = iota
	// TagBinary marks a signal proven ∈ {0,1}.
	TagBinary
	// TagMaxBit marks a signal proven ∈ [0, 2^K − 1].
	TagMaxBit
	// TagNonZero marks a signal proven ≠ 0 in every satisfying assignment.
	TagNonZero
)

// Tag is one lattice element attached to a signal.
type Tag struct {
	Kind TagKind
	// K is the bit bound for TagMaxBit (unused otherwise).
	K int
}

// String renders the tag in Circom tag syntax.
func (t Tag) String() string {
	switch t.Kind {
	case TagConst:
		return "const"
	case TagBinary:
		return "binary"
	case TagMaxBit:
		return fmt.Sprintf("maxbit(%d)", t.K)
	case TagNonZero:
		return "nonzero"
	default:
		return fmt.Sprintf("Tag(%d)", int(t.Kind))
	}
}

// TagsOf derives the tag set of a signal from the final abstract state, in
// canonical (Kind-ascending) order. Subsumed tags are dropped: a constant
// is not additionally tagged binary, and binary subsumes maxbit(1).
func (st *AbsState) TagsOf(id int) []Tag {
	var tags []Tag
	if st.isConst[id] {
		tags = append(tags, Tag{Kind: TagConst})
	} else if st.isBool[id] {
		tags = append(tags, Tag{Kind: TagBinary})
	} else if iv := st.ival[id]; iv != nil {
		if k, ok := iv.maxBits(); ok {
			tags = append(tags, Tag{Kind: TagMaxBit, K: k})
		}
	}
	if st.Nonzero(id) && !st.isConst[id] {
		tags = append(tags, Tag{Kind: TagNonZero})
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Kind < tags[j].Kind })
	return tags
}

// TagString renders a signal's tag set as "{binary, nonzero}" ("" when the
// signal has no tags) for finding messages.
func (st *AbsState) TagString(id int) string {
	tags := st.TagsOf(id)
	if len(tags) == 0 {
		return ""
	}
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MaxBitsOf returns the tightest maxbit(k) bound implied by the state
// (binary signals are maxbit(1), constants their own bit length), and
// whether any bound is known. This is the bound the overflow-prone-sum
// detector folds over.
func (st *AbsState) MaxBitsOf(id int) (int, bool) {
	if st.isConst[id] {
		s := st.sys.Field().Signed(st.constVal[id])
		if s.Sign() < 0 {
			return 0, false
		}
		return s.BitLen(), true
	}
	if iv := st.ival[id]; iv != nil {
		return iv.maxBits()
	}
	if st.isBool[id] {
		return 1, true
	}
	return 0, false
}
