package sa

import (
	"fmt"
	"math/big"
	"sort"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// AbsState is the result of an abstract interpretation of the constraint
// system over F_p. Six interacting domains are tracked per signal:
//
//   - Const: the signal provably takes one fixed value in every satisfying
//     assignment (derived by constant propagation through constraints).
//   - Bool: some constraint forces the signal into {0,1} (the s·(s−1)=0
//     pattern, possibly after constant substitution).
//   - Determined: the signal is a deterministic function of the inputs —
//     every pair of satisfying assignments agreeing on the inputs agrees on
//     it. Inputs and constants seed the domain; linear chains of determined
//     signals and binary decompositions extend it.
//   - Interval: the signed representative lies in [Lo, Hi] (interval.go).
//   - Congruence: the signed representative is ≡ R (mod M) (congruence.go).
//   - Nonzero: no satisfying assignment gives the signal the value 0.
//
// Every fact is a theorem about the constraint set, derived by rules whose
// soundness arguments live in DESIGN.md §12 and §17; Verify replays the
// facts against the original constraints as an independent consistency
// check before anything downstream is allowed to act on them.
//
// All fact writes flow through the recording helpers (setConst, recordBool,
// recordDet, recordInterval, recordCongruence, recordNonzero) so the
// cross-domain meets fire on every update and Verify sees a coherent state;
// the `rangefact` vet check enforces this mechanically.
type AbsState struct {
	sys *r1cs.System
	// constVal[id] is the proven constant (valid iff isConst[id]).
	constVal []ff.Element
	isConst  []bool
	isBool   []bool
	isDet    []bool
	// residual[ci] is constraint ci's Quad with every proven constant
	// substituted.
	residual []*poly.Quad

	// ival[id]/cong[id] are the interval and congruence facts (nil = Top);
	// nonzero[id] marks signals proven ≠ 0.
	ival    []*Interval
	cong    []*Congruence
	nonzero []bool
	// rangeDet[id] marks signals whose determinedness was FIRST established
	// by a range-domain rule (singleton interval promotion) rather than a
	// classic const/solve/bits rule — the attribution behind core's
	// Stats.StaticRangeUnique.
	rangeDet []bool
	// budget[id] is the remaining number of interval/congruence refinements
	// allowed for the signal; when it reaches 0 the signal's range facts
	// freeze, bounding the fixpoint ascent.
	budget []int

	// conflicts lists constraints whose abstract sets admit no solution —
	// proofs of unsatisfiability surfaced as range-violation findings.
	// conflictAt dedupes per constraint.
	conflicts  []Conflict
	conflictAt []bool

	// guards[s] lists the selector-guard facts s·(x−k) = 0 feeding the
	// relational one-hot rule; guardSeen/onehotAt dedupe extraction and
	// firing per constraint.
	guards    map[int][]guardFact
	guardSeen []bool
	onehotAt  []bool

	// constGen counts constant facts; scanGen[ci] is the constGen at which
	// residual[ci] was last scanned. Equal generations mean no new constant
	// can occur in the residual, so applyConsts returns the cached pointer
	// without rescanning (and without allocating).
	constGen int
	scanGen  []int
	// rangeGen counts range-domain facts (intervals, congruences, bools,
	// consts); projGen[ci] gates the projection rule the same way.
	rangeGen int
	projGen  []int

	// loLim/hiLim bound every signed representative: loLim < v ≤ hiLim.
	// full is the shared Top interval [loLim, hiLim].
	loLim, hiLim *big.Int
	full         *Interval
	pMod         *big.Int
}

// Conflict records a constraint whose abstract value sets admit no
// satisfying assignment: the range-domain analogue of a nonzero constant
// residual. Signal is the projected signal when the empty set arose from a
// per-signal meet, or -1 for a whole-constraint admissibility failure.
type Conflict struct {
	Constraint int
	Signal     int
	Msg        string
}

// maxRangeRefinements is the per-signal interval/congruence update budget.
// 16 refinements accommodate the deepest real chains (bool seed → ladder
// projection → congruence meet → …) while keeping the fixpoint short.
const maxRangeRefinements = 16

// Interpret runs the abstract interpretation to fixpoint. The iteration
// order is deterministic (ascending constraint index per round, rules in
// fixed order per visit), so equal systems produce identical states.
func Interpret(sys *r1cs.System, g *Graph) *AbsState {
	n := sys.NumSignals()
	st := &AbsState{
		sys:       sys,
		constVal:  make([]ff.Element, n),
		isConst:   make([]bool, n),
		isBool:    make([]bool, n),
		isDet:     make([]bool, n),
		residual:  make([]*poly.Quad, sys.NumConstraints()),
		ival:      make([]*Interval, n),
		cong:      make([]*Congruence, n),
		nonzero:   make([]bool, n),
		rangeDet:  make([]bool, n),
		budget:    make([]int, n),
		scanGen:   make([]int, sys.NumConstraints()),
		projGen:   make([]int, sys.NumConstraints()),
		guards:    make(map[int][]guardFact),
		guardSeen: make([]bool, sys.NumConstraints()),
		onehotAt:  make([]bool, sys.NumConstraints()),
		pMod:      sys.Field().Modulus(),
	}
	st.loLim, st.hiLim = signedBounds(sys.Field())
	st.full = newInterval(st.loLim, st.hiLim)
	for i := range st.budget {
		st.budget[i] = maxRangeRefinements
	}
	for i := range st.scanGen {
		st.scanGen[i] = -1
		st.projGen[i] = -1
	}
	st.setConst(r1cs.OneID, sys.Field().One())
	for _, in := range sys.Inputs() {
		st.recordDet(in)
	}
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		st.residual[ci] = sys.Constraint(ci).Quad()
	}
	// Round-based fixpoint: scan all constraints in index order until a
	// full round derives nothing new. The boolean domains are monotone and
	// finite, and interval/congruence refinements are budgeted per signal,
	// so this terminates in a bounded number of rounds.
	for changed := true; changed; {
		changed = false
		for ci := range st.residual {
			if st.visit(ci) {
				changed = true
			}
		}
	}
	return st
}

// visit applies every rule to one constraint residual; reports progress.
func (st *AbsState) visit(ci int) bool {
	q := st.applyConsts(ci)
	changed := false

	// Rule C-Solve: residual k·x + c = 0 with k ≠ 0 pins x = −c/k in every
	// satisfying assignment.
	if x, v, ok := constOf(q); ok {
		if st.setConst(x, v) {
			changed = true
		}
	}
	// Rule B-Range: residual k·(x² − x) = 0 forces x ∈ {0,1}.
	if x, ok := booleanOf(q); ok {
		if st.recordBool(x, ci) {
			changed = true
		}
	}
	// Rule D-Solve: if exactly one variable x of the residual is not yet
	// determined, x occurs only linearly with a constant nonzero
	// coefficient, then x = f(determined signals) is determined.
	if x, ok := st.detSolve(q); ok {
		if st.recordDet(x) {
			changed = true
		}
	}
	// Rule D-Bits: a linear residual whose undetermined variables are all
	// boolean with super-increasing coefficient magnitudes summing below
	// the modulus has at most one {0,1}-solution per value of the
	// determined part — every bit becomes determined.
	for _, x := range st.detBits(q) {
		if st.recordDet(x) {
			changed = true
		}
	}
	// Rule R-Proj: HC4-style interval projection with a congruence
	// piggyback (see ruleProject).
	if st.ruleProject(ci, q) {
		changed = true
	}
	// Rules N-Inv / N-Mul: nonzero propagation through products.
	if st.ruleNonzeroProduct(ci, q) {
		changed = true
	}
	// Rule R-OneHot, part 1: index selector guards s·(x−k) = 0.
	if st.ruleGuard(ci, q) {
		changed = true
	}
	// Rule R-OneHot, part 2: fire on guarded nonzero-constant sums.
	if st.ruleOneHot(ci, q) {
		changed = true
	}
	return changed
}

// applyConsts substitutes newly-proven constants into a residual, caching
// the result. The scan is generation-gated: when no constant fact has been
// recorded since the last scan of this constraint, the cached pointer is
// returned immediately, and when a scan finds nothing to substitute the
// original residual pointer is returned unchanged — repeated visits of a
// constant-free constraint allocate nothing.
func (st *AbsState) applyConsts(ci int) *poly.Quad {
	if st.scanGen[ci] == st.constGen {
		return st.residual[ci]
	}
	q := st.residual[ci]
	for {
		// The constant-one signal is itself a constant fact (value 1), so
		// an explicit var-0 occurrence folds away here like any other
		// constant. The unordered visits are a pure existence scan (the
		// minimum matching variable), so the fold is order-independent.
		found := -1
		q.Lin().VisitTermsUnordered(func(x int, _ ff.Element) {
			if st.isConst[x] && (found < 0 || x < found) {
				found = x
			}
		})
		q.VisitQuadTermsUnordered(func(p poly.VarPair, _ ff.Element) {
			if st.isConst[p.X] && (found < 0 || p.X < found) {
				found = p.X
			}
			if st.isConst[p.Y] && (found < 0 || p.Y < found) {
				found = p.Y
			}
		})
		if found < 0 {
			break
		}
		q = q.SubstituteValue(found, st.constVal[found])
	}
	st.residual[ci] = q
	st.scanGen[ci] = st.constGen
	return q
}

// --- recording helpers -------------------------------------------------------
//
// Every fact write goes through exactly one of the helpers below so that
// (a) the cross-domain meets fire on every update, (b) the generation
// counters driving the incremental scans stay coherent, and (c) Verify can
// assume the stored state is closed under the meets. Direct writes to the
// fact arrays outside these helpers are rejected by the `rangefact` vet
// analyzer.

// setConst records a constant fact (constants are also determined, have a
// singleton interval, and are nonzero when the value is).
func (st *AbsState) setConst(id int, v ff.Element) bool {
	if st.isConst[id] {
		return false
	}
	s := st.sys.Field().Signed(v)
	if iv := st.ival[id]; iv != nil && !iv.Contains(s) {
		st.recordConflict(-1, id,
			fmt.Sprintf("signal %s is pinned to %v but its established range is %s", st.sys.Name(id), s, iv))
	}
	if cg := st.cong[id]; cg != nil && !cg.Admits(s) {
		st.recordConflict(-1, id,
			fmt.Sprintf("signal %s is pinned to %v but its established congruence is %s", st.sys.Name(id), s, cg))
	}
	if st.nonzero[id] && v.IsZero() {
		st.recordConflict(-1, id,
			fmt.Sprintf("signal %s is pinned to 0 but was proven nonzero", st.sys.Name(id)))
	}
	st.isConst[id] = true
	st.constVal[id] = v
	st.isDet[id] = true
	st.constGen++
	st.rangeGen++
	st.ival[id] = intervalOfConst(st.sys.Field(), v)
	if !v.IsZero() {
		st.nonzero[id] = true
	}
	return true
}

// promoteSingleton records the constant fact implied by a singleton
// abstract set derived in the range domains; the determinedness it implies
// is attributed to the range rules when no classic rule got there first.
func (st *AbsState) promoteSingleton(id int, v *big.Int) bool {
	wasDet := st.isDet[id]
	if !st.setConst(id, st.sys.Field().FromBig(v)) {
		return false
	}
	if !wasDet {
		st.rangeDet[id] = true
	}
	return true
}

// recordBool records a booleanness fact and seeds the interval domain with
// [0, 1].
func (st *AbsState) recordBool(id, ci int) bool {
	if st.isBool[id] {
		return false
	}
	st.isBool[id] = true
	st.rangeGen++
	st.recordInterval(id, boolInterval(), ci)
	return true
}

// recordDet records a classic determinedness fact.
func (st *AbsState) recordDet(id int) bool {
	if st.isDet[id] {
		return false
	}
	st.isDet[id] = true
	return true
}

// recordRelDet records a determinedness fact derived by a range/relational
// rule, attributed to the range engine when no classic rule got there first
// (the provenance behind core's Stats.StaticRangeUnique).
func (st *AbsState) recordRelDet(id int) bool {
	if st.isDet[id] {
		return false
	}
	st.isDet[id] = true
	st.rangeDet[id] = true
	return true
}

// recordNonzero records that no satisfying assignment zeroes the signal.
func (st *AbsState) recordNonzero(id int) bool {
	if st.nonzero[id] {
		return false
	}
	st.nonzero[id] = true
	st.rangeGen++
	return true
}

// recordConflict records a proof of unsatisfiability (at most one per
// constraint); reports whether the conflict is new.
func (st *AbsState) recordConflict(ci, id int, msg string) bool {
	if ci >= 0 && st.conflictAt[ci] {
		return false
	}
	if ci >= 0 {
		st.conflictAt[ci] = true
	}
	st.conflicts = append(st.conflicts, Conflict{Constraint: ci, Signal: id, Msg: msg})
	return true
}

// recordInterval meets a derived interval fact into the state. The update
// is applied only when it strictly tightens the stored interval and the
// signal's refinement budget is not exhausted; an empty meet records a
// conflict instead. Cross-domain closure: the result is tightened against
// the congruence fact, a singleton promotes to a constant, and an interval
// excluding 0 implies nonzero.
func (st *AbsState) recordInterval(id int, iv *Interval, ci int) bool {
	if st.budget[id] <= 0 || st.isConst[id] {
		return false
	}
	cur := st.ival[id]
	if cur == nil {
		cur = st.full
	}
	m, ok := cur.meet(iv)
	if !ok {
		return st.recordConflict(ci, id,
			fmt.Sprintf("derived range %s for signal %s contradicts its established range %s", iv, st.sys.Name(id), cur))
	}
	if !cur.tightens(m) {
		return false
	}
	if c := st.cong[id]; c != nil {
		t, ok := meetIntervalCongruence(m, c)
		if !ok {
			return st.recordConflict(ci, id,
				fmt.Sprintf("derived range %s for signal %s contradicts its congruence %s", m, st.sys.Name(id), c))
		}
		m = t
	}
	st.ival[id] = m
	st.budget[id]--
	st.rangeGen++
	if m.IsSingleton() {
		st.promoteSingleton(id, m.Lo)
	} else if !m.ContainsZero() {
		st.recordNonzero(id)
	}
	return true
}

// recordCongruence meets a derived congruence fact into the state, under
// the same budget/conflict/closure discipline as recordInterval.
func (st *AbsState) recordCongruence(id int, c *Congruence, ci int) bool {
	if c == nil || st.budget[id] <= 0 || st.isConst[id] {
		return false
	}
	if cur := st.cong[id]; cur != nil {
		m, ok := cur.meet(c)
		if !ok {
			return st.recordConflict(ci, id,
				fmt.Sprintf("derived congruence %s for signal %s contradicts its established %s", c, st.sys.Name(id), cur))
		}
		if m.M.Cmp(cur.M) == 0 && m.R.Cmp(cur.R) == 0 {
			return false
		}
		c = m
	}
	if iv := st.ival[id]; iv != nil {
		t, ok := meetIntervalCongruence(iv, c)
		if !ok {
			return st.recordConflict(ci, id,
				fmt.Sprintf("derived congruence %s for signal %s contradicts its range %s", c, st.sys.Name(id), iv))
		}
		if iv.tightens(t) {
			st.ival[id] = t
		}
	}
	st.cong[id] = c
	st.budget[id]--
	st.rangeGen++
	if iv := st.ival[id]; iv != nil && iv.IsSingleton() {
		st.promoteSingleton(id, iv.Lo)
	} else if c.NonzeroByResidue() {
		st.recordNonzero(id)
	}
	return true
}

// ivOf returns the signal's interval, falling back to the full signed range
// (the trivially-true interval every signal satisfies).
func (st *AbsState) ivOf(id int) *Interval {
	if iv := st.ival[id]; iv != nil {
		return iv
	}
	return st.full
}

// --- range rules -------------------------------------------------------------

// ruleProject is Rule R-Proj, the HC4-style interval projection.
//
// Over signed representatives the residual q = Σ qᵢⱼ·xᵢ·xⱼ + Σ cᵢ·xᵢ + c₀
// satisfies q ≡ 0 (mod p), i.e. the exact integer value V of q (coefficients
// taken signed, variables ranging over their intervals) is a multiple of p.
// Summing the exact term ranges gives V ∈ [T_lo, T_hi]; when exactly one
// multiple k·p lies in that window, the field equation collapses to the
// *integer* equation V = k·p — the no-wraparound condition — and solving it
// for each linear-only term cᵥ·xᵥ projects a sound interval onto xᵥ:
//
//	cᵥ·xᵥ = k·p − (V − cᵥ·xᵥ) ∈ [k·p − (T_hi − tᵥ_lo), k·p − (T_lo − tᵥ_hi)]
//
// When NO multiple of p lies in the window the abstract sets admit no
// solution at all and a conflict is recorded (range-violation). When two or
// more multiples fit, nothing fires: the wraparound is not resolved.
//
// The same integer equation V = k·p carries the congruence transfer: every
// term is a member of a known residue class (cᵥ·xᵥ ≡ cᵥ·Rᵥ mod |cᵥ|·Mᵥ for
// signals with a congruence fact, ≡ 0 mod |c| otherwise), so the target
// term is congruent to k·p minus the sum of the classes modulo their gcd,
// and dividing by its coefficient projects a congruence onto the signal.
//
// The rule is generation-gated: it reruns only when some range fact changed
// since the last evaluation on this constraint.
func (st *AbsState) ruleProject(ci int, q *poly.Quad) bool {
	if st.projGen[ci] == st.rangeGen {
		return false
	}
	st.projGen[ci] = st.rangeGen

	// Quick reject: with no informative interval anywhere in the
	// constraint the window spans many multiples of p.
	info := false
	q.Lin().VisitTermsUnordered(func(x int, _ ff.Element) {
		if st.ival[x] != nil {
			info = true
		}
	})
	q.VisitQuadTermsUnordered(func(p poly.VarPair, _ ff.Element) {
		if st.ival[p.X] != nil || st.ival[p.Y] != nil {
			info = true
		}
	})
	if !info {
		return false
	}

	f := st.sys.Field()
	var (
		terms    []projTerm
		quadMods []*big.Int
		inQuad   map[int]bool
	)
	tLo := f.Signed(q.Lin().Constant())
	tHi := new(big.Int).Set(tLo)
	konst := new(big.Int).Set(tLo)
	q.VisitQuadTerms(func(p poly.VarPair, coeff ff.Element) {
		c := f.Signed(coeff)
		lo, hi := prodRange(c, st.ivOf(p.X), st.ivOf(p.Y))
		tLo.Add(tLo, lo)
		tHi.Add(tHi, hi)
		quadMods = append(quadMods, new(big.Int).Abs(c))
		if inQuad == nil {
			inQuad = make(map[int]bool, 2*q.NumQuadTerms())
		}
		inQuad[p.X] = true
		inQuad[p.Y] = true
	})
	q.Lin().VisitTerms(func(v int, coeff ff.Element) {
		c := f.Signed(coeff)
		lo, hi := termRange(c, st.ivOf(v))
		tLo.Add(tLo, lo)
		tHi.Add(tHi, hi)
		terms = append(terms, projTerm{v: v, c: c, lo: lo, hi: hi})
	})

	kLo := ceilDiv(tLo, st.pMod)
	kHi := floorDiv(tHi, st.pMod)
	switch kHi.Cmp(kLo) {
	case -1:
		// No multiple of p fits: the established ranges exclude every
		// solution of this constraint.
		return st.recordConflict(ci, -1,
			fmt.Sprintf("constraint #%d cannot hold for any values in the established ranges (residual value window [%v, %v] contains no multiple of the field modulus)", ci, tLo, tHi))
	case 0:
		// Exactly one multiple: integer equation established, project.
	default:
		return false
	}
	kp := new(big.Int).Mul(kLo, st.pMod)

	changed := false
	for _, t := range terms {
		if inQuad[t.v] {
			continue
		}
		// rest = V − t ∈ [tLo − t.hi, tHi − t.lo]; c·x = kp − rest.
		pLo := new(big.Int).Sub(kp, new(big.Int).Sub(tHi, t.lo))
		pHi := new(big.Int).Sub(kp, new(big.Int).Sub(tLo, t.hi))
		iv, ok := divProject(pLo, pHi, t.c)
		if !ok {
			if st.recordConflict(ci, t.v,
				fmt.Sprintf("constraint #%d admits no integer value for signal %s within the established ranges", ci, st.sys.Name(t.v))) {
				changed = true
			}
			continue
		}
		if st.recordInterval(t.v, iv, ci) {
			changed = true
		}
		if st.congruenceTransfer(ci, terms, quadMods, konst, t.v, t.c, kp) {
			changed = true
		}
	}
	return changed
}

// projTerm is one linear term cᵥ·xᵥ of a residual with its exact signed
// value range, as collected by ruleProject.
type projTerm struct {
	v      int
	c      *big.Int
	lo, hi *big.Int
}

// congruenceTransfer projects a congruence onto target from the integer
// equation  c·x + Σ other terms + konst = kp  established by ruleProject
// (only then is the modular constraint an integer one, which is what makes
// residue reasoning over signed representatives sound). Every other term is
// a member of a known residue class: cᵤ·xᵤ ≡ cᵤ·Rᵤ (mod |cᵤ|·Mᵤ) when xᵤ
// carries a congruence fact, and ≡ 0 (mod |cᵤ|) otherwise (a multiple of
// its own coefficient); a quadratic term is ≡ 0 (mod |coeff|). With G the
// gcd of those moduli and ρ the residue sum,
//
//	c·x ≡ kp − konst − ρ (mod G),
//
// which has solutions iff g = gcd(c, G) divides the right-hand side —
// otherwise the constraint is unsatisfiable under the established facts
// (conflict) — and then x ≡ (rhs/g)·(c/g)⁻¹ (mod G/g).
func (st *AbsState) congruenceTransfer(ci int, terms []projTerm, quadMods []*big.Int, konst *big.Int, target int, c, kp *big.Int) bool {
	if len(terms)+len(quadMods) < 2 {
		// No other variable term: the exact case, fully handled by the
		// interval projection.
		return false
	}
	if st.budget[target] <= 0 || st.isConst[target] {
		return false
	}
	var g *big.Int
	rho := new(big.Int)
	gcdIn := func(m *big.Int) {
		if g == nil {
			g = new(big.Int).Set(m)
		} else {
			g.GCD(nil, nil, g, m)
		}
	}
	for _, t := range terms {
		if t.v == target {
			continue
		}
		if cg := st.cong[t.v]; cg != nil {
			gcdIn(new(big.Int).Abs(new(big.Int).Mul(t.c, cg.M)))
			rho.Add(rho, new(big.Int).Mul(t.c, cg.R))
		} else {
			gcdIn(new(big.Int).Abs(t.c))
		}
	}
	for _, m := range quadMods {
		gcdIn(m)
	}
	if g == nil || g.Cmp(bigTwo) < 0 {
		return false
	}
	rhs := new(big.Int).Sub(kp, konst)
	rhs.Sub(rhs, rho)
	rhs.Mod(rhs, g)
	cg := new(big.Int).Mod(c, g)
	gg := new(big.Int).GCD(nil, nil, g, new(big.Int).Abs(cg))
	if new(big.Int).Mod(rhs, gg).Sign() != 0 {
		return st.recordConflict(ci, target,
			fmt.Sprintf("constraint #%d admits no residue class for signal %s consistent with the established congruences", ci, st.sys.Name(target)))
	}
	m := new(big.Int).Div(g, gg)
	if m.Cmp(bigTwo) < 0 {
		return false
	}
	inv := new(big.Int).ModInverse(new(big.Int).Div(cg, gg), m)
	if inv == nil {
		return false
	}
	r := new(big.Int).Mul(new(big.Int).Div(rhs, gg), inv)
	return st.recordCongruence(target, newCongruence(m, r), ci)
}

// ruleNonzeroProduct covers the nonzero product rules:
//
//   - N-Inv: residual c·x·y + c₀ = 0 with c₀ ≠ 0 forces x·y = −c₀/c ≠ 0,
//     so both factors are nonzero in every satisfying assignment (the
//     x·inv = 1 inverse-witness pattern).
//   - N-Mul: residual c·x·y + d·z = 0 defines z = −(c/d)·x·y, so z ≠ 0
//     exactly when both x ≠ 0 and y ≠ 0; nonzero flows both ways.
func (st *AbsState) ruleNonzeroProduct(ci int, q *poly.Quad) bool {
	if q.NumQuadTerms() != 1 {
		return false
	}
	var px, py int
	q.VisitQuadTermsUnordered(func(p poly.VarPair, _ ff.Element) { px, py = p.X, p.Y })
	lin := q.Lin()
	changed := false
	switch {
	case lin.IsConst() && !lin.Constant().IsZero():
		// N-Inv.
		if st.recordNonzero(px) {
			changed = true
		}
		if st.recordNonzero(py) {
			changed = true
		}
	case lin.Constant().IsZero() && lin.NumTerms() == 1:
		// N-Mul: the single linear variable is z.
		z, _ := lin.IsSingleVar()
		if z == px || z == py {
			return false
		}
		if st.nonzero[px] && st.nonzero[py] && st.recordNonzero(z) {
			changed = true
		}
		if st.nonzero[z] {
			if st.recordNonzero(px) {
				changed = true
			}
			if st.recordNonzero(py) {
				changed = true
			}
		}
	}
	return changed
}

// guardFact records a selector-guard constraint s·(x−k) = 0 for signal s:
// in every satisfying assignment, s ≠ 0 forces x = k.
type guardFact struct {
	x  int
	k  ff.Element
	ci int
}

// ruleGuard extracts selector guards, part 1 of Rule R-OneHot. A residual of
// the shape c·a·b + d·s = 0 with s ∈ {a, b} (or no linear part at all)
// factors as s·(c·x + d) = 0, i.e. s·(x − k) = 0 with k = −d/c: whenever
// s ≠ 0 the co-factor x is pinned to k. Guards are indexed once per
// constraint; they are derived from the residual, which agrees with the
// original constraint on every satisfying assignment, so a guard stays valid
// even if the residual is later folded further.
func (st *AbsState) ruleGuard(ci int, q *poly.Quad) bool {
	if st.guardSeen[ci] || q.NumQuadTerms() != 1 {
		return false
	}
	var a, b int
	var cq ff.Element
	q.VisitQuadTermsUnordered(func(p poly.VarPair, c ff.Element) { a, b, cq = p.X, p.Y, c })
	if a == b || cq.IsZero() {
		return false
	}
	lin := q.Lin()
	if !lin.Constant().IsZero() {
		return false
	}
	f := q.Field()
	changed := false
	add := func(s, x int, k ff.Element) {
		st.guards[s] = append(st.guards[s], guardFact{x: x, k: k, ci: ci})
		changed = true
	}
	switch lin.NumTerms() {
	case 0:
		// s·x = 0: both factors guard each other with k = 0.
		add(a, b, f.Zero())
		add(b, a, f.Zero())
	case 1:
		s, _ := lin.IsSingleVar()
		if s != a && s != b {
			return false
		}
		x := a + b - s
		add(s, x, f.Mul(f.Neg(lin.Coeff(s)), f.MustInv(cq)))
	default:
		return false
	}
	st.guardSeen[ci] = true
	return changed
}

// ruleOneHot is part 2 of Rule R-OneHot, the relational one-hot selector
// rule (the Decoder-with-success pattern of circomlib's Multiplexer).
//
// Preconditions on a linear residual Σ cᵢ·sᵢ + C = 0 with C ≠ 0:
//
//   - every summand sᵢ has a selector guard sᵢ·(x − kᵢ) = 0 against one
//     common signal x, with the kᵢ pairwise distinct;
//   - x is determined and does not itself appear in the sum.
//
// Then in any satisfying assignment at most one sᵢ is nonzero (two nonzero
// summands would pin x to two different kᵢ), and all-zero contradicts
// C ≠ 0; so x = kᵢ for exactly one i, sᵢ = −C/cᵢ, and every other summand
// is 0. Each sᵢ is therefore a two-valued function of x alone: determined
// (x is), with value set {0, −C/cᵢ} — an interval fact, and a booleanness
// fact when −C/cᵢ = 1. Additional constraints can only shrink the solution
// set, so deriving from this subset is sound for the full system.
func (st *AbsState) ruleOneHot(ci int, q *poly.Quad) bool {
	if st.onehotAt[ci] || !q.IsLinear() {
		return false
	}
	lin := q.Lin()
	if lin.Constant().IsZero() || lin.NumTerms() < 2 {
		return false
	}
	// Cheap bail: every summand needs at least one guard.
	missing := false
	lin.VisitTermsUnordered(func(v int, _ ff.Element) {
		if len(st.guards[v]) == 0 {
			missing = true
		}
	})
	if missing {
		return false
	}
	type summand struct {
		v int
		c ff.Element
	}
	var terms []summand
	lin.VisitTerms(func(v int, c ff.Element) {
		terms = append(terms, summand{v: v, c: c})
	})
	// Candidate common selectors: the determined guard signals of the first
	// summand, in guard-recording order (deterministic).
	f := q.Field()
	for _, g0 := range st.guards[terms[0].v] {
		x := g0.x
		if !st.isDet[x] {
			continue
		}
		ks := make([]ff.Element, len(terms))
		ok := true
		for i, t := range terms {
			if t.v == x {
				ok = false
				break
			}
			found := false
			for _, g := range st.guards[t.v] {
				if g.x == x {
					ks[i] = g.k
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < len(ks) && ok; i++ {
			for j := i + 1; j < len(ks); j++ {
				if ks[i] == ks[j] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		st.onehotAt[ci] = true
		changed := false
		negC := f.Neg(lin.Constant())
		for _, t := range terms {
			val := f.Mul(negC, f.MustInv(t.c))
			if st.recordRelDet(t.v) {
				changed = true
			}
			if val == f.One() && st.recordBool(t.v, ci) {
				changed = true
			}
			s := f.Signed(val)
			lo, hi := new(big.Int), s
			if s.Sign() < 0 {
				lo, hi = s, new(big.Int)
			}
			if st.recordInterval(t.v, newInterval(lo, hi), ci) {
				changed = true
			}
		}
		return changed
	}
	return false
}

// --- classic rule recognizers ------------------------------------------------

// constOf recognizes a single-variable linear residual k·x + c = 0.
func constOf(q *poly.Quad) (x int, v ff.Element, ok bool) {
	if !q.IsLinear() {
		return 0, ff.Element{}, false
	}
	lin := q.Lin()
	x, single := lin.IsSingleVar()
	if !single {
		return 0, ff.Element{}, false
	}
	f := q.Field()
	k := lin.Coeff(x)
	if k.IsZero() {
		return 0, ff.Element{}, false
	}
	return x, f.Mul(f.Neg(lin.Constant()), f.MustInv(k)), true
}

// booleanOf recognizes a boolean-forcing residual: a nonzero multiple of
// x² − x for a single variable x (same shape as uniq's R-Bits precondition,
// but evaluated on the constant-substituted residual).
func booleanOf(q *poly.Quad) (int, bool) {
	vars := q.Vars()
	if len(vars) != 1 || q.NumQuadTerms() != 1 {
		return 0, false
	}
	x := vars[0]
	c := q.CoeffPair(x, x)
	if c.IsZero() || !q.Lin().Constant().IsZero() {
		return 0, false
	}
	if q.Lin().Coeff(x) != q.Field().Neg(c) {
		return 0, false
	}
	return x, true
}

// detSolve finds the unique undetermined variable of a residual, provided
// it occurs only linearly with a constant nonzero coefficient.
func (st *AbsState) detSolve(q *poly.Quad) (int, bool) {
	x := -1
	for _, v := range q.Vars() {
		if v == r1cs.OneID || st.isDet[v] {
			continue
		}
		if x != -1 {
			return 0, false
		}
		x = v
	}
	if x == -1 {
		return 0, false
	}
	for _, y := range q.Vars() {
		if !q.CoeffPair(x, y).IsZero() {
			return 0, false
		}
	}
	if q.Lin().Coeff(x).IsZero() {
		return 0, false
	}
	return x, true
}

// detBits implements the binary-decomposition rule over the determined
// domain; it returns the bits that become determined (nil if the rule does
// not fire).
func (st *AbsState) detBits(q *poly.Quad) []int {
	if !q.IsLinear() {
		return nil
	}
	f := q.Field()
	var unknowns []int
	for _, v := range q.Vars() {
		if v == r1cs.OneID || st.isDet[v] {
			continue
		}
		if !st.isBool[v] {
			return nil
		}
		unknowns = append(unknowns, v)
	}
	if len(unknowns) == 0 {
		return nil
	}
	mags := make([]*big.Int, 0, len(unknowns))
	for _, x := range unknowns {
		c := q.Lin().Coeff(x)
		if c.IsZero() {
			return nil
		}
		mags = append(mags, new(big.Int).Abs(f.Signed(c)))
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i].Cmp(mags[j]) < 0 })
	sum := new(big.Int)
	for _, m := range mags {
		if m.Cmp(sum) <= 0 {
			return nil
		}
		sum.Add(sum, m)
	}
	if sum.Cmp(f.Modulus()) >= 0 {
		return nil
	}
	return unknowns
}

// --- accessors ---------------------------------------------------------------

// Determined reports whether a signal is proven uniquely determined by the
// inputs.
func (st *AbsState) Determined(id int) bool { return st.isDet[id] }

// Bool reports whether a signal is proven ∈ {0,1}.
func (st *AbsState) Bool(id int) bool { return st.isBool[id] }

// Const returns a signal's proven constant value, if any.
func (st *AbsState) Const(id int) (ff.Element, bool) {
	return st.constVal[id], st.isConst[id]
}

// Interval returns a signal's proven signed-representative range (nil when
// unknown). The result must not be mutated.
func (st *AbsState) Interval(id int) *Interval { return st.ival[id] }

// Congruence returns a signal's proven residue class (nil when unknown).
// The result must not be mutated.
func (st *AbsState) Congruence(id int) *Congruence { return st.cong[id] }

// Nonzero reports whether a signal is proven ≠ 0 in every satisfying
// assignment.
func (st *AbsState) Nonzero(id int) bool { return st.nonzero[id] }

// RangeDetermined reports whether a signal's determinedness was first
// established by a range-domain rule rather than a classic rule.
func (st *AbsState) RangeDetermined(id int) bool { return st.rangeDet[id] }

// Conflicts returns the recorded unsatisfiability proofs. The result
// aliases internal state and must not be mutated.
func (st *AbsState) Conflicts() []Conflict { return st.conflicts }

// NumConst counts constant facts (excluding the constant-one signal).
func (st *AbsState) NumConst() int { return st.count(st.isConst) - 1 }

// NumBool counts boolean facts.
func (st *AbsState) NumBool() int { return st.count(st.isBool) }

// NumDetermined counts determined facts (inputs and constants included,
// the constant-one signal excluded).
func (st *AbsState) NumDetermined() int { return st.count(st.isDet) - 1 }

// NumInterval counts signals with a non-trivial interval fact (excluding
// the constant-one signal).
func (st *AbsState) NumInterval() int {
	n := 0
	for id, iv := range st.ival {
		if id != r1cs.OneID && iv != nil {
			n++
		}
	}
	return n
}

// NumNonzero counts nonzero facts (excluding the constant-one signal).
func (st *AbsState) NumNonzero() int { return st.count(st.nonzero) - 1 }

func (st *AbsState) count(bits []bool) int {
	n := 0
	for _, b := range bits {
		if b {
			n++
		}
	}
	return n
}
