package sa

import (
	"fmt"
	"math/big"
	"sort"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// AbsState is the result of an abstract interpretation of the constraint
// system over F_p. Three interacting domains are tracked per signal:
//
//   - Const: the signal provably takes one fixed value in every satisfying
//     assignment (derived by constant propagation through constraints).
//   - Bool: some constraint forces the signal into {0,1} (the s·(s−1)=0
//     pattern, possibly after constant substitution).
//   - Determined: the signal is a deterministic function of the inputs —
//     every pair of satisfying assignments agreeing on the inputs agrees on
//     it. Inputs and constants seed the domain; linear chains of determined
//     signals and binary decompositions extend it.
//
// Every fact is a theorem about the constraint set, derived by rules whose
// soundness arguments live in DESIGN.md §12; Verify replays the constant
// facts against the original constraints as an independent consistency
// check before anything downstream is allowed to act on them.
type AbsState struct {
	sys *r1cs.System
	// constVal[id] is the proven constant (valid iff isConst[id]).
	constVal []ff.Element
	isConst  []bool
	isBool   []bool
	isDet    []bool
	// residual[ci] is constraint ci's Quad with every proven constant
	// substituted.
	residual []*poly.Quad
}

// Interpret runs the abstract interpretation to fixpoint. The iteration
// order is deterministic (ascending constraint index per round), so equal
// systems produce identical states.
func Interpret(sys *r1cs.System, g *Graph) *AbsState {
	n := sys.NumSignals()
	st := &AbsState{
		sys:      sys,
		constVal: make([]ff.Element, n),
		isConst:  make([]bool, n),
		isBool:   make([]bool, n),
		isDet:    make([]bool, n),
		residual: make([]*poly.Quad, sys.NumConstraints()),
	}
	st.setConst(r1cs.OneID, sys.Field().One())
	for _, in := range sys.Inputs() {
		st.isDet[in] = true
	}
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		st.residual[ci] = sys.Constraint(ci).Quad()
	}
	// Round-based fixpoint: scan all constraints in index order until a
	// full round derives nothing new. The domains are finite and facts are
	// never retracted, so this terminates in O(signals) rounds.
	for changed := true; changed; {
		changed = false
		for ci := range st.residual {
			if st.visit(ci) {
				changed = true
			}
		}
	}
	return st
}

// visit applies every rule to one constraint residual; reports progress.
func (st *AbsState) visit(ci int) bool {
	q := st.applyConsts(ci)
	changed := false

	// Rule C-Solve: residual k·x + c = 0 with k ≠ 0 pins x = −c/k in every
	// satisfying assignment.
	if x, v, ok := constOf(q); ok {
		if st.setConst(x, v) {
			changed = true
		}
	}
	// Rule B-Range: residual k·(x² − x) = 0 forces x ∈ {0,1}.
	if x, ok := booleanOf(q); ok && !st.isBool[x] {
		st.isBool[x] = true
		changed = true
	}
	// Rule D-Solve: if exactly one variable x of the residual is not yet
	// determined, x occurs only linearly with a constant nonzero
	// coefficient, then x = f(determined signals) is determined.
	if x, ok := st.detSolve(q); ok && !st.isDet[x] {
		st.isDet[x] = true
		changed = true
	}
	// Rule D-Bits: a linear residual whose undetermined variables are all
	// boolean with super-increasing coefficient magnitudes summing below
	// the modulus has at most one {0,1}-solution per value of the
	// determined part — every bit becomes determined.
	for _, x := range st.detBits(q) {
		if !st.isDet[x] {
			st.isDet[x] = true
			changed = true
		}
	}
	return changed
}

// applyConsts substitutes newly-proven constants into a residual, caching
// the result.
func (st *AbsState) applyConsts(ci int) *poly.Quad {
	q := st.residual[ci]
	// The constant-one signal is itself a constant fact (value 1), so an
	// explicit var-0 occurrence folds away here like any other constant.
	for {
		substituted := false
		for _, v := range q.Vars() {
			if st.isConst[v] {
				q = q.SubstituteValue(v, st.constVal[v])
				substituted = true
				break
			}
		}
		if !substituted {
			break
		}
	}
	st.residual[ci] = q
	return q
}

// setConst records a constant fact (constants are also determined).
func (st *AbsState) setConst(id int, v ff.Element) bool {
	if st.isConst[id] {
		return false
	}
	st.isConst[id] = true
	st.constVal[id] = v
	st.isDet[id] = true
	return true
}

// constOf recognizes a single-variable linear residual k·x + c = 0.
func constOf(q *poly.Quad) (x int, v ff.Element, ok bool) {
	if !q.IsLinear() {
		return 0, ff.Element{}, false
	}
	lin := q.Lin()
	x, single := lin.IsSingleVar()
	if !single {
		return 0, ff.Element{}, false
	}
	f := q.Field()
	k := lin.Coeff(x)
	if k.IsZero() {
		return 0, ff.Element{}, false
	}
	return x, f.Mul(f.Neg(lin.Constant()), f.MustInv(k)), true
}

// booleanOf recognizes a boolean-forcing residual: a nonzero multiple of
// x² − x for a single variable x (same shape as uniq's R-Bits precondition,
// but evaluated on the constant-substituted residual).
func booleanOf(q *poly.Quad) (int, bool) {
	vars := q.Vars()
	if len(vars) != 1 || q.NumQuadTerms() != 1 {
		return 0, false
	}
	x := vars[0]
	c := q.CoeffPair(x, x)
	if c.IsZero() || !q.Lin().Constant().IsZero() {
		return 0, false
	}
	if q.Lin().Coeff(x) != q.Field().Neg(c) {
		return 0, false
	}
	return x, true
}

// detSolve finds the unique undetermined variable of a residual, provided
// it occurs only linearly with a constant nonzero coefficient.
func (st *AbsState) detSolve(q *poly.Quad) (int, bool) {
	x := -1
	for _, v := range q.Vars() {
		if v == r1cs.OneID || st.isDet[v] {
			continue
		}
		if x != -1 {
			return 0, false
		}
		x = v
	}
	if x == -1 {
		return 0, false
	}
	for _, y := range q.Vars() {
		if !q.CoeffPair(x, y).IsZero() {
			return 0, false
		}
	}
	if q.Lin().Coeff(x).IsZero() {
		return 0, false
	}
	return x, true
}

// detBits implements the binary-decomposition rule over the determined
// domain; it returns the bits that become determined (nil if the rule does
// not fire).
func (st *AbsState) detBits(q *poly.Quad) []int {
	if !q.IsLinear() {
		return nil
	}
	f := q.Field()
	var unknowns []int
	for _, v := range q.Vars() {
		if v == r1cs.OneID || st.isDet[v] {
			continue
		}
		if !st.isBool[v] {
			return nil
		}
		unknowns = append(unknowns, v)
	}
	if len(unknowns) == 0 {
		return nil
	}
	mags := make([]*big.Int, 0, len(unknowns))
	for _, x := range unknowns {
		c := q.Lin().Coeff(x)
		if c.IsZero() {
			return nil
		}
		mags = append(mags, new(big.Int).Abs(f.Signed(c)))
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i].Cmp(mags[j]) < 0 })
	sum := new(big.Int)
	for _, m := range mags {
		if m.Cmp(sum) <= 0 {
			return nil
		}
		sum.Add(sum, m)
	}
	if sum.Cmp(f.Modulus()) >= 0 {
		return nil
	}
	return unknowns
}

// Determined reports whether a signal is proven uniquely determined by the
// inputs.
func (st *AbsState) Determined(id int) bool { return st.isDet[id] }

// Bool reports whether a signal is proven ∈ {0,1}.
func (st *AbsState) Bool(id int) bool { return st.isBool[id] }

// Const returns a signal's proven constant value, if any.
func (st *AbsState) Const(id int) (ff.Element, bool) {
	return st.constVal[id], st.isConst[id]
}

// NumConst counts constant facts (excluding the constant-one signal).
func (st *AbsState) NumConst() int { return st.count(st.isConst) - 1 }

// NumBool counts boolean facts.
func (st *AbsState) NumBool() int { return st.count(st.isBool) }

// NumDetermined counts determined facts (inputs and constants included,
// the constant-one signal excluded).
func (st *AbsState) NumDetermined() int { return st.count(st.isDet) - 1 }

func (st *AbsState) count(bits []bool) int {
	n := 0
	for _, b := range bits {
		if b {
			n++
		}
	}
	return n
}

// Verify replays the constant facts against the original constraints: with
// every proven constant substituted, no constraint may reduce to a nonzero
// constant (which would mean a derivation produced a value no satisfying
// assignment can take — i.e. an absint bug, or an unsatisfiable system).
// Downstream consumers (core's pre-phase) refuse to inject facts when the
// replay fails, keeping the soundness contract "hints may only skip work
// when the proof is replayed" mechanical rather than aspirational.
func (st *AbsState) Verify() error {
	for ci := 0; ci < st.sys.NumConstraints(); ci++ {
		q := st.sys.Constraint(ci).Quad()
		for _, v := range q.Vars() {
			if st.isConst[v] {
				q = q.SubstituteValue(v, st.constVal[v])
			}
		}
		if c, isConst := q.IsConst(); isConst && !c.IsZero() {
			return fmt.Errorf("sa: constant replay failed on constraint #%d: residual %s ≠ 0", ci, st.sys.Field().String(c))
		}
	}
	return nil
}
