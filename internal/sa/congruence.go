package sa

import (
	"fmt"
	"math/big"
)

// The congruence domain: per-signal residue classes x ≡ R (mod M) of the
// signed representative, capturing shift-and-mask and even/odd structure
// the interval domain cannot see (x = 4·y says nothing about x's range,
// but pins x ≡ 0 mod 4 once y is bounded).
//
// Like intervals, a congruence fact is a theorem about the *integer* value
// of the signed representative, so a derivation may only record one when
// the underlying arithmetic provably did not wrap around the modulus; the
// congruence transfer function therefore piggybacks on the interval
// projection, which establishes exactly that no-wrap bound. Top is a nil
// Congruence (equivalently M = 1, which carries no information and is
// never stored).

// Congruence is the fact "signed(x) ≡ R (mod M)" with M ≥ 2, 0 ≤ R < M.
type Congruence struct {
	M, R *big.Int
}

// newCongruence normalizes (m, r) into a stored fact; it returns nil when
// m < 2 (no information).
func newCongruence(m, r *big.Int) *Congruence {
	if m.Cmp(bigTwo) < 0 {
		return nil
	}
	rr := new(big.Int).Mod(r, m) // big.Int.Mod is Euclidean: 0 ≤ rr < m
	return &Congruence{M: new(big.Int).Set(m), R: rr}
}

// congruenceOfConst embeds a constant v as v mod 2^k for a generous fixed
// k: constants participate in gcd-combinations of the transfer function via
// their exact value, so the stored class is only used for meets.
func congruenceOfConst(v *big.Int) *Congruence {
	return newCongruence(constCongruenceMod, v)
}

var (
	bigTwo = big.NewInt(2)
	// constCongruenceMod is the modulus used to embed constants
	// (2^64 — larger than any mask/shift stride a circuit gadget uses).
	constCongruenceMod = new(big.Int).Lsh(bigOne, 64)
)

// Admits reports whether integer v is in the residue class.
func (c *Congruence) Admits(v *big.Int) bool {
	return new(big.Int).Mod(v, c.M).Cmp(c.R) == 0
}

// meet intersects two congruence facts. By CRT the intersection of
// r1 + m1·Z and r2 + m2·Z is either empty (when gcd(m1,m2) ∤ r1−r2) or a
// single class mod lcm(m1,m2). ok=false reports the empty case — a range
// conflict. To keep the state small the lcm is capped: when it exceeds
// congruenceModCap the meet keeps the stronger (larger-modulus) operand,
// which is always sound (a weaker theorem).
func (c *Congruence) meet(other *Congruence) (*Congruence, bool) {
	g := new(big.Int).GCD(nil, nil, c.M, other.M)
	diff := new(big.Int).Sub(c.R, other.R)
	if new(big.Int).Mod(diff, g).Sign() != 0 {
		return nil, false
	}
	lcm := new(big.Int).Div(new(big.Int).Mul(c.M, other.M), g)
	if lcm.Cmp(congruenceModCap) > 0 {
		if c.M.Cmp(other.M) >= 0 {
			return c, true
		}
		return other, true
	}
	// Solve x ≡ c.R (mod c.M), x ≡ other.R (mod other.M) by the extended
	// gcd: x = c.R + c.M·t with t ≡ (other.R − c.R)/g · inv(c.M/g) (mod
	// other.M/g).
	m1g := new(big.Int).Div(c.M, g)
	m2g := new(big.Int).Div(other.M, g)
	dg := new(big.Int).Div(new(big.Int).Neg(diff), g)
	inv := new(big.Int).ModInverse(new(big.Int).Mod(m1g, m2g), m2g)
	if inv == nil {
		// m2g == 1: the classes are nested; keep the stronger one.
		if c.M.Cmp(other.M) >= 0 {
			return c, true
		}
		return other, true
	}
	t := new(big.Int).Mod(new(big.Int).Mul(dg, inv), m2g)
	x := new(big.Int).Add(c.R, new(big.Int).Mul(c.M, t))
	return newCongruence(lcm, x), true
}

// congruenceModCap bounds stored moduli (2^128): large enough for every
// limb/mask stride in practice, small enough that meets stay cheap and the
// fixpoint ascent is short.
var congruenceModCap = new(big.Int).Lsh(bigOne, 128)

// tightens reports whether other carries strictly more information than c
// (its classes are a proper subset).
func (c *Congruence) tightens(other *Congruence) bool {
	if new(big.Int).Mod(other.M, c.M).Sign() != 0 {
		// Incomparable moduli: the meet will decide; treat as progress.
		return true
	}
	return other.M.Cmp(c.M) > 0
}

// NonzeroByResidue reports whether the class excludes 0 (R ≢ 0 mod M):
// every member is a nonzero integer, hence a nonzero field element.
func (c *Congruence) NonzeroByResidue() bool { return c.R.Sign() != 0 }

// String renders the fact for findings and debugging.
func (c *Congruence) String() string { return fmt.Sprintf("≡ %v (mod %v)", c.R, c.M) }

// meetIntervalCongruence tightens an interval to the residue class: the
// smallest member ≥ Lo and the largest ≤ Hi. ok=false when the class has no
// member in the interval (a range conflict). When the result pins a single
// integer the caller has derived a constant no single domain could see.
func meetIntervalCongruence(iv *Interval, c *Congruence) (*Interval, bool) {
	// lo' = Lo + ((R − Lo) mod M)
	adj := new(big.Int).Sub(c.R, iv.Lo)
	adj.Mod(adj, c.M)
	lo := new(big.Int).Add(iv.Lo, adj)
	// hi' = Hi − ((Hi − R) mod M)
	adj2 := new(big.Int).Sub(iv.Hi, c.R)
	adj2.Mod(adj2, c.M)
	hi := new(big.Int).Sub(iv.Hi, adj2)
	if lo.Cmp(hi) > 0 {
		return nil, false
	}
	return newInterval(lo, hi), true
}
