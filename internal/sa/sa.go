// Package sa is the circuit static-analysis pass: cheap, solver-free
// structural reasoning over an R1CS that runs before (and independently of)
// the SMT-driven core analysis. It builds a signal-dependency graph with
// SCC/topological decomposition, runs an abstract interpretation over F_p
// (constant propagation, a boolean domain, and a determinedness domain),
// checks input→output reachability, and evaluates a set of
// Circomspect-style pattern detectors producing source-located findings.
//
// The pass plays two roles:
//
//   - As a pre-phase of core.Analyze, its facts prune, order, and shrink
//     the scheduler's SMT queries. Facts may only skip a query when they
//     are replay-verified proofs (see Result.Verify); reachability "unsafe"
//     hints never decide a verdict — they only prioritize the full-circuit
//     queries whose SAT models core confirms into checked witness pairs.
//   - Standalone, as `qed2 -lint`: deterministic human- and
//     machine-readable findings over a .circom file or a parsed .r1cs.
package sa

import (
	"fmt"
	"sort"

	"qed2/internal/obs"
	"qed2/internal/r1cs"
)

// Severity ranks findings.
type Severity int

// Severities, ascending.
const (
	// SeverityInfo marks advisory findings (e.g. every `<--` use).
	SeverityInfo Severity = iota
	// SeverityWarning marks likely defects that need human judgment.
	SeverityWarning
	// SeverityError marks findings that are definite defects pending only
	// counterexample confirmation (e.g. unreachable outputs).
	SeverityError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Finding is one deterministic, source-located lint result.
type Finding struct {
	// Detector is the stable kebab-case detector identifier.
	Detector string   `json:"detector"`
	Severity Severity `json:"-"`
	// SeverityName is Severity rendered for JSON output.
	SeverityName string `json:"severity"`
	// Signal names the offending signal ("" for constraint-level findings).
	Signal string `json:"signal,omitempty"`
	// SignalID is the offending signal's ID (0 when Signal == "").
	SignalID int `json:"signal_id,omitempty"`
	// Constraint is the index of the offending constraint (-1 if none).
	Constraint int `json:"constraint,omitempty"`
	// Loc points at the circom source when location metadata survived
	// compilation (template:line:col), rendered empty otherwise.
	Loc string `json:"loc,omitempty"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// String renders "loc: severity[detector]: message".
func (f Finding) String() string {
	loc := f.Loc
	if loc == "" {
		loc = "<unknown>"
	}
	return fmt.Sprintf("%s: %s[%s]: %s", loc, f.Severity, f.Detector, f.Message)
}

// Options configures the pass. All fields are optional; observability
// handles are nil-safe.
type Options struct {
	Obs       *obs.Tracer
	ObsParent *obs.Span
	Metrics   *obs.Metrics
}

func (o *Options) withDefaults() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// Result is the output of one static-analysis pass.
type Result struct {
	// Findings are the detector results, in deterministic order.
	Findings []Finding
	// Graph is the signal-dependency graph with its SCC decomposition.
	Graph *Graph
	// Abs is the final abstract state.
	Abs *AbsState
	// DeterminedOutputs lists outputs the abstract interpretation proved
	// uniquely determined by the inputs — discharged without any SMT call.
	DeterminedOutputs []int
	// DeterminedSignals lists every signal proven determined (sorted;
	// includes inputs, constants, and DeterminedOutputs).
	DeterminedSignals []int
	// RangeDetermined lists the subset of DeterminedSignals whose
	// determinedness was first established by a range-domain rule (interval
	// singleton promotion) rather than a classic const/solve/bits rule —
	// facts the pre-PR analysis could not derive at all.
	RangeDetermined []int
	// UnreachableOutputs lists outputs with no constraint path from any
	// input that the abstract interpretation could not discharge either:
	// candidates for definite under-constraint. core treats these as
	// prioritization hints only — an unsafe verdict still requires a
	// confirmed witness pair from a full-circuit query.
	UnreachableOutputs []int
	// PrunedSignals lists signals whose slice queries are sound to skip:
	// they live in constraint-graph components containing no output, so
	// their uniqueness can never influence an output verdict (uniqueness
	// propagation and slicing are component-local).
	PrunedSignals []int
}

// DeterminedSet returns the determined signals as a membership set.
func (r *Result) DeterminedSet() map[int]bool {
	out := make(map[int]bool, len(r.DeterminedSignals))
	for _, s := range r.DeterminedSignals {
		out[s] = true
	}
	return out
}

// PrunedSet returns the pruned signals as a membership set.
func (r *Result) PrunedSet() map[int]bool {
	out := make(map[int]bool, len(r.PrunedSignals))
	for _, s := range r.PrunedSignals {
		out[s] = true
	}
	return out
}

// MaxSeverity returns the highest severity among the findings
// (SeverityInfo when there are none).
func (r *Result) MaxSeverity() Severity {
	max := SeverityInfo
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// Analyze runs the full static pass over a system. It never mutates sys
// (beyond forcing the lazy adjacency index) and is deterministic: equal
// systems produce byte-identical results regardless of concurrency in the
// surrounding process.
func Analyze(sys *r1cs.System, opts *Options) *Result {
	o := opts.withDefaults()
	span := o.Obs.Start(o.ObsParent, "sa.analyze",
		obs.KV("signals", sys.NumSignals()), obs.KV("constraints", sys.NumConstraints()))

	gs := o.Obs.Start(span, "sa.graph")
	g := BuildGraph(sys)
	gs.End(obs.KV("sccs", len(g.SCCs)), obs.KV("components", g.NumComponents))

	as := o.Obs.Start(span, "sa.absint")
	abs := Interpret(sys, g)
	as.End(obs.KV("consts", abs.NumConst()), obs.KV("bools", abs.NumBool()),
		obs.KV("determined", abs.NumDetermined()),
		obs.KV("intervals", abs.NumInterval()), obs.KV("nonzero", abs.NumNonzero()),
		obs.KV("conflicts", len(abs.Conflicts())))

	ds := o.Obs.Start(span, "sa.detect")
	res := &Result{Graph: g, Abs: abs}
	runDetectors(sys, g, abs, res)
	ds.End(obs.KV("findings", len(res.Findings)))

	for id := 1; id < sys.NumSignals(); id++ {
		if abs.Determined(id) {
			res.DeterminedSignals = append(res.DeterminedSignals, id)
			if abs.RangeDetermined(id) {
				res.RangeDetermined = append(res.RangeDetermined, id)
			}
		}
	}
	for _, out := range sys.Outputs() {
		if abs.Determined(out) {
			res.DeterminedOutputs = append(res.DeterminedOutputs, out)
		}
	}
	res.PrunedSignals = g.SignalsWithoutOutputComponent()
	sortFindings(res.Findings)

	o.Metrics.Counter("sa.findings").Add(int64(len(res.Findings)))
	o.Metrics.Counter("sa.outputs.discharged").Add(int64(len(res.DeterminedOutputs)))
	o.Metrics.Counter("sa.outputs.unreachable").Add(int64(len(res.UnreachableOutputs)))
	span.End(obs.KV("findings", len(res.Findings)),
		obs.KV("outputs_discharged", len(res.DeterminedOutputs)),
		obs.KV("outputs_unreachable", len(res.UnreachableOutputs)),
		obs.KV("signals_pruned", len(res.PrunedSignals)))
	return res
}

// sortFindings fixes the canonical finding order: severity descending, then
// location, detector, signal ID, constraint index, and message — a total
// order, so output is reproducible across runs and worker counts.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.Detector != b.Detector {
			return a.Detector < b.Detector
		}
		if a.SignalID != b.SignalID {
			return a.SignalID < b.SignalID
		}
		if a.Constraint != b.Constraint {
			return a.Constraint < b.Constraint
		}
		return a.Message < b.Message
	})
}

// newFinding fills the derived fields of a Finding.
func newFinding(sys *r1cs.System, detector string, sev Severity, sigID, cons int, loc r1cs.SourceLoc, msg string) Finding {
	f := Finding{
		Detector:     detector,
		Severity:     sev,
		SeverityName: sev.String(),
		Constraint:   cons,
		Loc:          loc.String(),
		Message:      msg,
	}
	if sigID > 0 {
		f.Signal = sys.Name(sigID)
		f.SignalID = sigID
	}
	return f
}
