package sa

import (
	"fmt"
	"math/big"
	"sort"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// runDetectors evaluates the Circomspect-style pattern detectors plus the
// reachability analysis, appending findings (and the reachability
// candidates) to res. All detectors are pure functions of the system, the
// graph, and the abstract state, so finding sets are deterministic.
func runDetectors(sys *r1cs.System, g *Graph, abs *AbsState, res *Result) {
	detectReachability(sys, g, abs, res)
	detectHints(sys, res)
	detectUnused(sys, res)
	detectDangling(sys, g, res)
	detectNonBinarySelector(sys, abs, res)
	detectNonBinaryDecomposition(sys, abs, res)
	detectRangeViolation(sys, abs, res)
	detectOverflowProneSum(sys, abs, res)
}

// detectRangeViolation surfaces the abstract interpreter's range conflicts:
// a constraint (or a per-signal meet) whose established value sets admit no
// solution. Since every range fact is a theorem about satisfying
// assignments, a conflict proves the system unsatisfiable — either a
// constraint forces a signal outside its decomposition/tag range (the
// array-bounds-style defect) or the circuit admits no witness at all.
func detectRangeViolation(sys *r1cs.System, abs *AbsState, res *Result) {
	for _, c := range abs.Conflicts() {
		loc := r1cs.SourceLoc{}
		if c.Constraint >= 0 {
			loc = sys.Constraint(c.Constraint).Loc
		} else if c.Signal > 0 {
			loc = sys.Signal(c.Signal).Loc
		}
		sig := 0
		if c.Signal > 0 {
			sig = c.Signal
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "range-violation", SeverityError, sig, c.Constraint, loc, c.Msg))
	}
}

// detectOverflowProneSum flags linear constraints whose range-bounded terms
// span at least the field modulus: two distinct in-range assignments can
// then alias the same field value, so the equation no longer pins the
// bounded signals' integer interpretation (the Num2Bits(254)/AliasCheck
// wraparound class). Constraints whose bounded span stays below p are
// wrap-free by the same window argument ruleProject uses.
func detectOverflowProneSum(sys *r1cs.System, abs *AbsState, res *Result) {
	f := sys.Field()
	p := f.Modulus()
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		c := sys.Constraint(ci)
		q := c.Quad()
		if !q.IsLinear() {
			continue
		}
		extent := new(big.Int)
		bounded := 0
		q.Lin().VisitTerms(func(v int, coeff ff.Element) {
			if v == r1cs.OneID {
				return
			}
			iv := abs.Interval(v)
			if iv == nil || iv.IsSingleton() {
				return
			}
			lo, hi := termRange(f.Signed(coeff), iv)
			extent.Add(extent, new(big.Int).Sub(hi, lo))
			bounded++
		})
		if bounded < 2 || extent.Cmp(p) < 0 {
			continue
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "overflow-prone-sum", SeverityWarning, 0, ci, c.Loc,
				fmt.Sprintf("constraint #%d sums %d range-bounded signals whose combined span (%d bits) reaches the field modulus (%d bits): distinct in-range assignments can alias the same field value%s",
					ci, bounded, extent.BitLen(), f.BitLen(), tagSuffix(c.Tag))))
	}
}

// detectReachability flags outputs with no constraint path from any input.
// An output that is statically determined (e.g. pinned to a constant by
// `out === 5`) is excluded: it has no input path either, yet it is
// perfectly constrained. The remaining outputs are definite
// under-constraint candidates — any satisfying assignment can be perturbed
// on the output's component without touching the inputs — but the verdict
// is still core's to make: the finding is a prioritization hint, and core
// must confirm a concrete witness pair before reporting unsafe.
func detectReachability(sys *r1cs.System, g *Graph, abs *AbsState, res *Result) {
	for _, out := range sys.Outputs() {
		if g.ComponentHasInput(out) || abs.Determined(out) {
			continue
		}
		sig := sys.Signal(out)
		msg := fmt.Sprintf("output %s has no constraint path from any input and is not statically determined: the prover can vary it freely (candidate witness pair: any two values)", sig.Name)
		if g.ConstraintsOn(out) == 0 {
			msg = fmt.Sprintf("output %s appears in no constraint at all: the prover can assign it any value", sig.Name)
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "unreachable-output", SeverityError, out, -1, sig.Loc, msg))
		res.UnreachableOutputs = append(res.UnreachableOutputs, out)
	}
}

// detectHints flags `<--` signals: every use advisorily (the Circomspect
// "signal assignment" warning), and as an error when the signal appears in
// no constraint at all — nothing can pin such a value.
func detectHints(sys *r1cs.System, res *Result) {
	for id := 1; id < sys.NumSignals(); id++ {
		sig := sys.Signal(id)
		if !sig.Hinted {
			continue
		}
		if len(sys.ConstraintsOf(id)) == 0 {
			sev := SeverityWarning
			note := "no constraint mentions it, so the prover may choose any value"
			if sig.Kind == r1cs.KindOutput {
				sev = SeverityError
				note = "no constraint mentions this output, so the circuit is under-constrained"
			}
			res.Findings = append(res.Findings,
				newFinding(sys, "unconstrained-hint", sev, id, -1, sig.Loc,
					fmt.Sprintf("signal %s is assigned with <-- but %s", sig.Name, note)))
			continue
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "hinted-signal", SeverityInfo, id, -1, sig.Loc,
				fmt.Sprintf("signal %s is assigned with <-- (witness-only): verify the constraints mentioning it pin the value", sig.Name)))
	}
}

// detectUnused flags non-hinted signals that no constraint mentions:
// unused inputs (dead parameters weaken the interface contract) and
// floating internals from metadata-free .r1cs files.
func detectUnused(sys *r1cs.System, res *Result) {
	for id := 1; id < sys.NumSignals(); id++ {
		sig := sys.Signal(id)
		if sig.Hinted || sig.Kind == r1cs.KindOutput || len(sys.ConstraintsOf(id)) > 0 {
			continue
		}
		what := "internal signal"
		if sig.Kind == r1cs.KindInput {
			what = "input signal"
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "unused-signal", SeverityWarning, id, -1, sig.Loc,
				fmt.Sprintf("%s %s appears in no constraint", what, sig.Name)))
	}
}

// detectDangling flags constraints whose entire signal set lives in
// components containing neither inputs nor outputs: they constrain wires
// that cannot influence or be influenced by the circuit's interface.
func detectDangling(sys *r1cs.System, g *Graph, res *Result) {
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		c := sys.Constraint(ci)
		relevant := false
		seen := false
		for _, v := range c.Vars() {
			if v == r1cs.OneID {
				continue
			}
			seen = true
			comp := g.ComponentOf(v)
			if comp >= 0 && (g.compHasInput[comp] || g.compHasOutput[comp]) {
				relevant = true
				break
			}
		}
		if !seen || relevant {
			continue
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "dangling-constraint", SeverityWarning, 0, ci, c.Loc,
				fmt.Sprintf("constraint #%d touches no signal connected to an input or output%s", ci, tagSuffix(c.Tag))))
	}
}

// detectNonBinarySelector flags the mux shape s·(a−b)+b where the selector
// s is not boolean-constrained: a malicious prover can pick s outside
// {0,1} and produce an output that is neither branch. The R1CS shape is a
// constraint whose A side is a single variable s and whose B side is a
// constant-free difference (coefficients summing to zero).
func detectNonBinarySelector(sys *r1cs.System, abs *AbsState, res *Result) {
	f := sys.Field()
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		c := sys.Constraint(ci)
		s, single := c.A.IsSingleVar()
		if !single || s == r1cs.OneID || c.B.IsConst() || c.B.NumTerms() < 2 {
			continue
		}
		if !c.B.Constant().IsZero() {
			continue
		}
		sum := f.Zero()
		c.B.VisitTerms(func(_ int, coeff ff.Element) { sum = f.Add(sum, coeff) })
		if !sum.IsZero() {
			continue
		}
		if abs.Bool(s) {
			continue
		}
		if _, isConst := abs.Const(s); isConst {
			continue
		}
		res.Findings = append(res.Findings,
			newFinding(sys, "non-binary-selector", SeverityWarning, s, ci, c.Loc,
				fmt.Sprintf("signal %s selects between branches in constraint #%d but is not constrained to {0,1}%s", sys.Name(s), ci, tagSuffix(c.Tag))))
	}
}

// detectNonBinaryDecomposition flags binary-decomposition constraints —
// linear equations with super-increasing coefficients over signals intended
// as bits — in which some "bit" has no boolean constraint: the subset-sum
// uniqueness argument collapses and the decomposition admits multiple
// solutions (the classic buggy-Num2Bits pattern).
func detectNonBinaryDecomposition(sys *r1cs.System, abs *AbsState, res *Result) {
	for ci := 0; ci < sys.NumConstraints(); ci++ {
		c := sys.Constraint(ci)
		q := c.Quad()
		if !q.IsLinear() {
			continue
		}
		// Candidate bit positions: variables that are boolean OR look like
		// they were meant to be (the shape fires only when ≥ 2 variables
		// have strictly super-increasing magnitudes and most are boolean).
		var bits, nonBool []int
		for _, v := range q.Vars() {
			if v == r1cs.OneID || abs.Determined(v) && !abs.Bool(v) {
				continue
			}
			bits = append(bits, v)
			if !abs.Bool(v) {
				nonBool = append(nonBool, v)
			}
		}
		if len(bits) < 2 || len(nonBool) == 0 || len(nonBool)*2 > len(bits) {
			continue // not decomposition-shaped, or too few bools to tell
		}
		if !superIncreasing(q, bits) {
			continue
		}
		for _, v := range nonBool {
			res.Findings = append(res.Findings,
				newFinding(sys, "non-binary-in-decomposition", SeverityWarning, v, ci, c.Loc,
					fmt.Sprintf("signal %s is used as a bit in decomposition constraint #%d but is never constrained to {0,1}: the decomposition is not unique%s", sys.Name(v), ci, tagSuffix(c.Tag))))
		}
	}
}

// superIncreasing reports whether the linear coefficients of the given
// variables have strictly super-increasing signed magnitudes (each exceeds
// the sum of all smaller ones) — the shape of a binary decomposition.
func superIncreasing(q *poly.Quad, vars []int) bool {
	f := q.Field()
	mags := make([]*big.Int, 0, len(vars))
	for _, v := range vars {
		c := q.Lin().Coeff(v)
		if c.IsZero() {
			return false
		}
		mags = append(mags, new(big.Int).Abs(f.Signed(c)))
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i].Cmp(mags[j]) < 0 })
	sum := new(big.Int)
	for _, m := range mags {
		if m.Cmp(sum) <= 0 {
			return false
		}
		sum.Add(sum, m)
	}
	return true
}

// tagSuffix renders a constraint tag for messages.
func tagSuffix(tag string) string {
	if tag == "" {
		return ""
	}
	return " [" + tag + "]"
}
