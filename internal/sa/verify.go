package sa

import (
	"fmt"
	"math/big"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// Verify replays the derived facts against the original constraints as an
// independent consistency check. Downstream consumers (core's pre-phase)
// refuse to inject facts when the replay fails, keeping the soundness
// contract "hints may only skip work when the proof is replayed" mechanical
// rather than aspirational. Four layers run, cheapest first:
//
//  1. Constant replay: with every proven constant substituted, no original
//     constraint may reduce to a nonzero constant.
//  2. Cross-domain consistency: each signal's facts must agree with each
//     other (a constant lies in its interval and congruence class, a
//     boolean constant is 0 or 1, a nonzero signal is not the constant 0)
//     and be well-formed (intervals inside the signed range, congruence
//     moduli ≥ 2 with normalized residues).
//  3. Admissibility replay: re-deriving each constraint's signed value
//     window from the final intervals, some multiple of p must fit — the
//     exact check ruleProject's conflict detection is built on, but
//     evaluated on the original (unsubstituted) constraints.
//  4. Witness sampling: for signals whose abstract set is tiny (at most
//     maxSampleCandidates values once the interval is intersected with the
//     congruence class), each candidate is substituted into the signal's
//     residual constraints; if every candidate contradicts some constraint
//     the abstract set is empty — a derivation bug the meets missed.
//
// Any conflict recorded during interpretation also fails Verify: a
// conflict claims the system is unsatisfiable, which core must never act
// on as a fact (it degrades to the solver instead).
func (st *AbsState) Verify() error {
	// Layer 1: constant replay.
	for ci := 0; ci < st.sys.NumConstraints(); ci++ {
		q := st.sys.Constraint(ci).Quad()
		for _, v := range q.Vars() {
			if st.isConst[v] {
				q = q.SubstituteValue(v, st.constVal[v])
			}
		}
		if c, isConst := q.IsConst(); isConst && !c.IsZero() {
			return fmt.Errorf("sa: constant replay failed on constraint #%d: residual %s ≠ 0", ci, st.sys.Field().String(c))
		}
	}

	// Layer 2: cross-domain consistency.
	f := st.sys.Field()
	for id := 0; id < st.sys.NumSignals(); id++ {
		if iv := st.ival[id]; iv != nil {
			if iv.Lo.Cmp(iv.Hi) > 0 {
				return fmt.Errorf("sa: malformed interval %s on signal %s", iv, st.sys.Name(id))
			}
			if iv.Lo.Cmp(st.loLim) < 0 || iv.Hi.Cmp(st.hiLim) > 0 {
				return fmt.Errorf("sa: interval %s on signal %s leaves the signed range", iv, st.sys.Name(id))
			}
		}
		if cg := st.cong[id]; cg != nil {
			if cg.M.Cmp(bigTwo) < 0 || cg.R.Sign() < 0 || cg.R.Cmp(cg.M) >= 0 {
				return fmt.Errorf("sa: malformed congruence %s on signal %s", cg, st.sys.Name(id))
			}
		}
		if !st.isConst[id] {
			continue
		}
		s := f.Signed(st.constVal[id])
		if iv := st.ival[id]; iv != nil && !iv.Contains(s) {
			return fmt.Errorf("sa: constant %v on signal %s outside its interval %s", s, st.sys.Name(id), iv)
		}
		if cg := st.cong[id]; cg != nil && !cg.Admits(s) {
			return fmt.Errorf("sa: constant %v on signal %s outside its congruence %s", s, st.sys.Name(id), cg)
		}
		if st.isBool[id] && s.Sign() != 0 && s.Cmp(bigOne) != 0 {
			return fmt.Errorf("sa: boolean signal %s pinned to non-boolean constant %v", st.sys.Name(id), s)
		}
		if st.nonzero[id] && st.constVal[id].IsZero() {
			return fmt.Errorf("sa: nonzero signal %s pinned to 0", st.sys.Name(id))
		}
	}

	// Layer 3: interval admissibility replay on the original constraints.
	for ci := 0; ci < st.sys.NumConstraints(); ci++ {
		q := st.sys.Constraint(ci).Quad()
		tLo := f.Signed(q.Lin().Constant())
		tHi := new(big.Int).Set(tLo)
		q.VisitQuadTerms(func(p poly.VarPair, coeff ff.Element) {
			lo, hi := prodRange(f.Signed(coeff), st.ivOf(p.X), st.ivOf(p.Y))
			tLo.Add(tLo, lo)
			tHi.Add(tHi, hi)
		})
		q.Lin().VisitTerms(func(v int, coeff ff.Element) {
			lo, hi := termRange(f.Signed(coeff), st.ivOf(v))
			tLo.Add(tLo, lo)
			tHi.Add(tHi, hi)
		})
		if ceilDiv(tLo, st.pMod).Cmp(floorDiv(tHi, st.pMod)) > 0 {
			return fmt.Errorf("sa: range replay failed on constraint #%d: value window [%v, %v] admits no multiple of the modulus", ci, tLo, tHi)
		}
	}

	// Layer 4: witness sampling over tiny abstract sets.
	sampled := 0
	for id := 1; id < st.sys.NumSignals() && sampled < maxSampledSignals; id++ {
		cands := st.candidates(id)
		if cands == nil {
			continue
		}
		sampled++
		admissible := false
		for _, v := range cands {
			if st.candidateAdmissible(id, v) {
				admissible = true
				break
			}
		}
		if !admissible {
			return fmt.Errorf("sa: witness sampling failed on signal %s: every value in %s is contradicted by some constraint", st.sys.Name(id), st.ival[id])
		}
	}

	if len(st.conflicts) > 0 {
		c := st.conflicts[0]
		return fmt.Errorf("sa: range conflict recorded (%d total): %s", len(st.conflicts), c.Msg)
	}
	return nil
}

// Sampling limits: candidate sets larger than maxSampleCandidates are
// skipped (the abstract set is not "tiny"), and at most maxSampledSignals
// signals are sampled per Verify call so the check stays O(small).
const (
	maxSampleCandidates = 4
	maxSampledSignals   = 64
)

// candidates enumerates a non-constant signal's abstract value set when it
// has at most maxSampleCandidates members (interval ∩ congruence class),
// returning nil otherwise.
func (st *AbsState) candidates(id int) []*big.Int {
	iv := st.ival[id]
	if iv == nil || st.isConst[id] {
		return nil
	}
	width := iv.Width()
	if !width.IsInt64() || width.Int64() >= maxSampleCandidates {
		return nil
	}
	cg := st.cong[id]
	var out []*big.Int
	v := new(big.Int).Set(iv.Lo)
	for v.Cmp(iv.Hi) <= 0 {
		if cg == nil || cg.Admits(v) {
			out = append(out, new(big.Int).Set(v))
		}
		v.Add(v, bigOne)
	}
	return out
}

// candidateAdmissible substitutes x := v (plus all proven constants, via
// the cached residuals) into every constraint mentioning x and reports
// whether none reduces to a nonzero constant.
func (st *AbsState) candidateAdmissible(id int, v *big.Int) bool {
	e := st.sys.Field().FromBig(v)
	for _, ci := range st.sys.ConstraintsOf(id) {
		q := st.residual[ci].SubstituteValue(id, e)
		if c, isConst := q.IsConst(); isConst && !c.IsZero() {
			return false
		}
	}
	return true
}
