package sa

import (
	"strings"
	"testing"
)

const oneHotSrc = `
pragma circom 2.0.0;
template OneHot() {
    signal input sel;
    signal output out[3];
    var lc = 0;
    for (var i = 0; i < 3; i++) {
        out[i] <-- (sel == i) ? 1 : 0;
        out[i] * (sel - i) === 0;
        lc += out[i];
    }
    lc === 1;
}
component main = OneHot();
`

// TestOneHotRule: the Decoder-with-success pattern. Every selector-guarded
// summand of the nonzero-constant sum is determined, boolean, and in [0, 1],
// with range-rule attribution — and the state survives Verify.
func TestOneHotRule(t *testing.T) {
	prog := compile(t, oneHotSrc)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	n := 0
	for id := 1; id < sys.NumSignals(); id++ {
		if !strings.Contains(sys.Name(id), "out[") {
			continue
		}
		n++
		if !st.Determined(id) {
			t.Errorf("%s not determined", sys.Name(id))
		}
		if !st.RangeDetermined(id) {
			t.Errorf("%s not attributed to the range engine", sys.Name(id))
		}
		if !st.Bool(id) {
			t.Errorf("%s not boolean", sys.Name(id))
		}
		if got := st.Interval(id); got == nil || got.Lo.Sign() != 0 || got.Hi.Cmp(bigOne) != 0 {
			t.Errorf("%s interval = %v, want [0, 1]", sys.Name(id), got)
		}
	}
	if n != 3 {
		t.Fatalf("matched %d out[] signals, want 3", n)
	}
	if err := st.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// Without the nonzero-sum constraint (bare Decoder shape: the sum flows into
// a free signal) the rule must not fire: all-zero and one-hot assignments
// both satisfy the guards.
func TestOneHotRequiresPinnedSum(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template Dec() {
    signal input sel;
    signal output out[3];
    signal output success;
    var lc = 0;
    for (var i = 0; i < 3; i++) {
        out[i] <-- (sel == i) ? 1 : 0;
        out[i] * (sel - i) === 0;
        lc += out[i];
    }
    lc ==> success;
    success * (success - 1) === 0;
}
component main = Dec();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	for id := 1; id < sys.NumSignals(); id++ {
		if strings.Contains(sys.Name(id), "out[") && st.Determined(id) {
			t.Errorf("%s must not be determined without a pinned sum", sys.Name(id))
		}
	}
}

// Duplicate guard constants break the pairwise-distinctness precondition:
// two summands guarded against the same selector value can trade their
// values freely.
func TestOneHotRequiresDistinctGuards(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template Dup() {
    signal input sel;
    signal output a;
    signal output b;
    a <-- 1;
    b <-- 0;
    a * (sel - 1) === 0;
    b * (sel - 1) === 0;
    a + b === 1;
}
component main = Dup();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	seen := 0
	for id := 1; id < sys.NumSignals(); id++ {
		name := sys.Name(id)
		if name != "a" && name != "b" {
			continue
		}
		seen++
		if st.Determined(id) {
			t.Errorf("%s must not be determined under duplicate guards", name)
		}
	}
	if seen != 2 {
		t.Fatalf("matched %d signals, want 2", seen)
	}
}

// A non-unit sum constant still determines the summands, with value set
// {0, C/cᵢ}: determined and ranged but not boolean.
func TestOneHotNonUnitValue(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template TwoHot() {
    signal input sel;
    signal output a;
    signal output b;
    a <-- (sel == 0) ? 2 : 0;
    b <-- (sel == 1) ? 2 : 0;
    a * sel === 0;
    b * (sel - 1) === 0;
    a + b === 2;
}
component main = TwoHot();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	seen := 0
	for id := 1; id < sys.NumSignals(); id++ {
		name := sys.Name(id)
		if name != "a" && name != "b" {
			continue
		}
		seen++
		if !st.Determined(id) || !st.RangeDetermined(id) {
			t.Errorf("%s not range-determined", name)
		}
		if st.Bool(id) {
			t.Errorf("%s must not be boolean (values {0, 2})", name)
		}
		if got := st.Interval(id); got == nil || got.Lo.Sign() != 0 || got.Hi.Cmp(bi(2)) != 0 {
			t.Errorf("%s interval = %v, want [0, 2]", name, got)
		}
	}
	if seen != 2 {
		t.Fatalf("matched %d signals, want 2", seen)
	}
	if err := st.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// Booleanness constraints are self-guards (s·(s−1) = 0 guards s against
// itself) and must not feed the one-hot rule: a sum of two free bits
// equalling 1 does not determine either bit.
func TestOneHotIgnoresSelfGuards(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template Bits() {
    signal input x;
    signal output a;
    signal output b;
    a <-- x;
    b <-- 1 - x;
    a * (a - 1) === 0;
    b * (b - 1) === 0;
    a + b === 1;
}
component main = Bits();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	seen := 0
	for id := 1; id < sys.NumSignals(); id++ {
		name := sys.Name(id)
		if name != "a" && name != "b" {
			continue
		}
		seen++
		if st.Determined(id) {
			t.Errorf("%s must not be determined from self-guards", name)
		}
	}
	if seen != 2 {
		t.Fatalf("matched %d signals, want 2", seen)
	}
}

// TestApplyConstsNoReallocation pins the satellite fix: a rescan that finds
// nothing to substitute returns the original residual pointer and performs
// no allocation.
func TestApplyConstsNoReallocation(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a * b;
}
component main = Mul();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	for ci := range st.residual {
		before := st.applyConsts(ci)
		// Force a rescan: pretend a constant fact arrived. The residual has
		// no constant variables, so the scan must fall through to the
		// original pointer.
		st.scanGen[ci] = st.constGen - 1
		if after := st.applyConsts(ci); after != before {
			t.Fatalf("constraint %d: rescan replaced the residual pointer", ci)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for ci := range st.residual {
			st.scanGen[ci] = st.constGen - 1
			st.applyConsts(ci)
		}
	})
	if allocs != 0 {
		t.Errorf("applyConsts allocates %.1f objects per no-op rescan, want 0", allocs)
	}
}

// A constraint contradicting an established range surfaces as a conflict and
// fails Verify (core must drop every hint rather than act on an unsat claim).
func TestRangeConflictFailsVerify(t *testing.T) {
	prog := compile(t, `
pragma circom 2.0.0;
template Bad() {
    signal input x;
    signal output b;
    b <-- 1;
    b * (b - 1) === 0;
    b === 5;
}
component main = Bad();
`)
	sys := prog.System
	st := Interpret(sys, BuildGraph(sys))
	if len(st.Conflicts()) == 0 {
		t.Fatal("no conflict recorded for b ∈ {0,1} ∧ b = 5")
	}
	if err := st.Verify(); err == nil {
		t.Error("Verify must fail when a conflict was recorded")
	}
}
