// Suite-level tests live in an external test package so they can use
// internal/bench (which imports core, which imports sa) without a cycle.
package sa_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"qed2/internal/bench"
	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/sa"
)

// TestMontgomeryBugExample lints the shipped buggy MontgomeryDouble circuit:
// the pass must surface the unconstrained `lamda <-- .../...` hint and its
// possibly-zero denominator, each pointing at the hint's source line.
func TestMontgomeryBugExample(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "montgomery-bug", "circuit.circom"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := circom.Compile(string(src), &circom.CompileOptions{Library: bench.Library()})
	if err != nil {
		t.Fatal(err)
	}
	res := sa.AnalyzeProgram(prog, nil)
	byDetector := map[string][]sa.Finding{}
	for _, f := range res.Findings {
		byDetector[f.Detector] = append(byDetector[f.Detector], f)
	}
	for _, want := range []string{"possibly-zero-divisor", "hinted-signal"} {
		fs := byDetector[want]
		if len(fs) == 0 {
			t.Fatalf("no %s finding; got %+v", want, res.Findings)
		}
		if fs[0].Signal != "lamda" {
			t.Errorf("%s flagged %s, want lamda", want, fs[0].Signal)
		}
		if fs[0].Loc == "" {
			t.Errorf("%s finding not source-located", want)
		}
	}
}

// TestSuiteLintDeterminism runs the static pass twice over every instance of
// the paper's benchmark suite and demands byte-identical findings — the
// determinism contract `qed2 -lint` advertises.
func TestSuiteLintDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling the full suite is slow")
	}
	for _, inst := range bench.Suite() {
		prog, err := inst.Compile()
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		var runs [2][]byte
		for i := range runs {
			res := sa.AnalyzeProgram(prog, nil)
			b, err := json.Marshal(res.Findings)
			if err != nil {
				t.Fatal(err)
			}
			runs[i] = b
		}
		if string(runs[0]) != string(runs[1]) {
			t.Errorf("%s: findings differ across runs", inst.Name)
		}
	}
}

// TestSuiteSafeInstancesHaveNoUnreachableOutputs checks the reachability
// detector against ground truth: on instances the paper's analysis proves
// safe, no output may be flagged unreachable (such a flag would be a
// guaranteed false positive, since safe means every output is unique).
func TestSuiteSafeInstancesHaveNoUnreachableOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling the full suite is slow")
	}
	for _, inst := range bench.Suite() {
		if inst.Expect != bench.ExpectSafe {
			continue
		}
		prog, err := inst.Compile()
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		res := sa.Analyze(prog.System, nil)
		if len(res.UnreachableOutputs) != 0 {
			t.Errorf("%s: safe instance has unreachable outputs %v", inst.Name, res.UnreachableOutputs)
		}
	}
}

// TestStaticReportDeterministicAcrossWorkers runs the full core analysis at
// different worker counts and requires the embedded static report (and the
// verdict) to be byte-identical — the pre-pass runs before the first round,
// so concurrency must not leak into it.
func TestStaticReportDeterministicAcrossWorkers(t *testing.T) {
	inst, ok := bench.ByName(bench.Suite(), "MontgomeryDouble()")
	if !ok {
		t.Fatal("MontgomeryDouble not in suite")
	}
	prog, err := inst.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var reports [2]*core.Report
	for i, w := range []int{1, 8} {
		reports[i] = core.Analyze(prog.System, &core.Config{Seed: 1, Workers: w})
	}
	if reports[0].Verdict != reports[1].Verdict {
		t.Fatalf("verdict differs across workers: %v vs %v", reports[0].Verdict, reports[1].Verdict)
	}
	var enc [2][]byte
	for i, r := range reports {
		if r.Static == nil {
			t.Fatal("static report missing in ModeFull")
		}
		b, err := json.Marshal(r.Static.Findings)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = b
	}
	if string(enc[0]) != string(enc[1]) {
		t.Errorf("static findings differ across worker counts:\n%s\n%s", enc[0], enc[1])
	}
}
