package sa

import (
	"fmt"

	"qed2/internal/circom"
	"qed2/internal/r1cs"
)

// AnalyzeProgram runs the full static pass over a compiled circom program:
// everything Analyze does on the constraint system, plus the program-level
// detectors that need the witness-generation expressions the compiler
// attached to `<--` hints (information a bare .r1cs cannot carry).
func AnalyzeProgram(prog *circom.Program, opts *Options) *Result {
	res := Analyze(prog.System, opts)
	detectZeroDivisors(prog, res)
	sortFindings(res.Findings)
	return res
}

// detectZeroDivisors walks the witness expressions of unconstrained (`<--`)
// assignments looking for division by a non-constant denominator. At
// witness time a zero denominator either aborts generation (field division)
// or silently produces garbage (integer div/mod), and in the classic
// inverse-hint idiom (`inv <-- 1/x`) the accompanying constraint is
// satisfied by inv=0 when x=0 — the textbook IsZero bug. A division that
// only executes under a witness-time guard (the true/false arm of a `?:`)
// is reported at Info severity; an unguarded one is a Warning.
func detectZeroDivisors(prog *circom.Program, res *Result) {
	sys := prog.System
	for i := range prog.Assignments {
		a := &prog.Assignments[i]
		if a.Constrained {
			continue
		}
		loc := sys.Signal(a.Target).Loc
		if loc.IsZero() {
			// Fall back to the assignment's own position inside the main
			// template when the signal was declared elsewhere.
			loc = r1cs.SourceLoc{Template: prog.MainTemplate, Line: a.Pos.Line, Col: a.Pos.Col}
		}
		walkDivisors(a.Expr, false, func(div circom.WExpr, op circom.TokKind, guarded bool) {
			if id, ok := divisorSignal(div); ok && res.Abs.Nonzero(id) {
				// The range/nonzero domains prove the denominator cannot be
				// zero in any satisfying assignment, discharging the warning.
				res.Findings = append(res.Findings,
					newFinding(sys, "nonzero-divisor-proved", SeverityInfo, a.Target, -1, loc,
						fmt.Sprintf("hint for signal %s divides by signal %s, which the range analysis proves nonzero in every satisfying assignment%s",
							sys.Name(a.Target), sys.Name(id), tagNote(res.Abs, id))))
				return
			}
			sev := SeverityWarning
			note := "if the denominator is zero, witness generation fails or the hint silently takes an arbitrary value"
			if guarded {
				sev = SeverityInfo
				note = "the division is behind a witness-time guard; verify the guard rules out a zero denominator"
			}
			res.Findings = append(res.Findings,
				newFinding(sys, "possibly-zero-divisor", sev, a.Target, -1, loc,
					fmt.Sprintf("hint for signal %s divides by non-constant expression %s (operator %q): %s",
						sys.Name(a.Target), div.String(), tokenText(op), note)))
		})
	}
}

// divisorSignal extracts the signal read by a divisor expression when it is
// a bare (possibly scaled) signal: a WSig node, or a single-term linear
// combination with no constant — the only shapes whose zero-ness coincides
// with a single signal's.
func divisorSignal(e circom.WExpr) (int, bool) {
	switch w := e.(type) {
	case *circom.WSig:
		return w.ID, true
	case *circom.WLin:
		if x, ok := w.LC.IsSingleVar(); ok && w.LC.Constant().IsZero() {
			return x, true
		}
	}
	return 0, false
}

// tagNote renders a signal's tag set as a message suffix.
func tagNote(abs *AbsState, id int) string {
	if ts := abs.TagString(id); ts != "" {
		return " " + ts
	}
	return ""
}

// walkDivisors visits every division/modulo node of a witness expression
// whose denominator is not a compile-time constant, tracking whether the
// node sits under a conditional arm.
func walkDivisors(e circom.WExpr, guarded bool, fn func(div circom.WExpr, op circom.TokKind, guarded bool)) {
	switch w := e.(type) {
	case *circom.WBin:
		switch w.Op {
		case circom.TokSlash, circom.TokIntDiv, circom.TokPercent:
			if !isConstExpr(w.R) {
				fn(w.R, w.Op, guarded)
			}
		}
		walkDivisors(w.L, guarded, fn)
		walkDivisors(w.R, guarded, fn)
	case *circom.WUn:
		walkDivisors(w.X, guarded, fn)
	case *circom.WCond:
		walkDivisors(w.C, guarded, fn)
		walkDivisors(w.T, true, fn)
		walkDivisors(w.F, true, fn)
	}
	// WConst, WSig, WLin, WQuad contain no division nodes.
}

// isConstExpr reports whether a witness expression references no signals —
// i.e. it evaluates to the same value in every witness.
func isConstExpr(e circom.WExpr) bool {
	deps := map[int]bool{}
	e.AddDeps(deps)
	return len(deps) == 0
}

// tokenText renders an operator token for messages.
func tokenText(op circom.TokKind) string { return op.String() }
