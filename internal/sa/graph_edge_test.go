package sa

import (
	"math/big"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

var fldEdge = ff.MustField(big.NewInt(97))

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// A self-referential constraint (a·a = a, the signal on all three sides)
// must not wedge the Tarjan walk or duplicate the signal in TopoSignals.
func TestGraphSelfReferentialConstraint(t *testing.T) {
	f := fldEdge
	s := r1cs.NewSystem(f)
	a := s.AddSignal("a", r1cs.KindOutput)
	s.AddConstraint(poly.Var(f, a), poly.Var(f, a), poly.Var(f, a), "self")
	g := BuildGraph(s)

	if g.NumComponents != 1 {
		t.Fatalf("NumComponents = %d, want 1", g.NumComponents)
	}
	if g.ComponentOf(a) != 0 {
		t.Errorf("ComponentOf(a) = %d", g.ComponentOf(a))
	}
	if idx := g.SCCIndex(a); idx < 0 || idx >= len(g.SCCs) {
		t.Errorf("SCCIndex(a) = %d out of range", idx)
	}
	count := 0
	for _, v := range g.TopoSignals {
		if v == a {
			count++
		}
	}
	if count != 1 {
		t.Errorf("a appears %d times in TopoSignals, want 1", count)
	}
	if g.ConstraintsOn(a) != 1 {
		t.Errorf("ConstraintsOn(a) = %d, want 1", g.ConstraintsOn(a))
	}
	if skip := g.SignalsWithoutOutputComponent(); len(skip) != 0 {
		t.Errorf("output's own component marked skippable: %v", skip)
	}
}

// A self-referential constraint carrying <== definition metadata (the
// defined signal is also a source) creates a signal→constraint→signal
// cycle; the SCC walk must still terminate and classify it.
func TestGraphSelfReferentialDef(t *testing.T) {
	f := fldEdge
	s := r1cs.NewSystem(f)
	a := s.AddSignal("a", r1cs.KindInternal)
	s.AddConstraint(poly.Var(f, a), poly.Var(f, a), poly.Var(f, a), "selfdef")
	s.SetConstraintDef(0, a)
	g := BuildGraph(s)

	if idx := g.SCCIndex(a); idx < 0 || idx >= len(g.SCCs) {
		t.Fatalf("SCCIndex(a) = %d out of range", idx)
	}
	if !containsInt(g.SCCs[g.SCCIndex(a)], a) {
		t.Errorf("SCC %d does not contain a", g.SCCIndex(a))
	}
	// No output anywhere: the lone component is prunable.
	if skip := g.SignalsWithoutOutputComponent(); !containsInt(skip, a) {
		t.Errorf("a missing from SignalsWithoutOutputComponent: %v", skip)
	}
}

// Signals that appear in no constraint at all still get a component label,
// a singleton SCC, and a TopoSignals slot — and never an input/output
// attribution they don't have.
func TestGraphUnconstrainedSignals(t *testing.T) {
	f := fldEdge
	s := r1cs.NewSystem(f)
	in := s.AddSignal("in", r1cs.KindInput)
	out := s.AddSignal("out", r1cs.KindOutput)
	ghost := s.AddSignal("ghost", r1cs.KindInternal)
	lonely := s.AddSignal("lonely", r1cs.KindInput)
	s.AddConstraint(poly.Var(f, in), poly.Var(f, in), poly.Var(f, out), "sq")
	g := BuildGraph(s)

	// {in,out} plus two singleton islands.
	if g.NumComponents != 3 {
		t.Fatalf("NumComponents = %d, want 3", g.NumComponents)
	}
	if g.ComponentOf(ghost) == g.ComponentOf(in) || g.ComponentOf(ghost) == g.ComponentOf(lonely) {
		t.Errorf("ghost shares a component: ghost=%d in=%d lonely=%d",
			g.ComponentOf(ghost), g.ComponentOf(in), g.ComponentOf(lonely))
	}
	if g.ConstraintsOn(ghost) != 0 || g.ConstraintsOn(lonely) != 0 {
		t.Errorf("unconstrained signals report constraints: ghost=%d lonely=%d",
			g.ConstraintsOn(ghost), g.ConstraintsOn(lonely))
	}
	if !g.ComponentHasInput(lonely) {
		t.Error("lonely is itself an input; its component has an input")
	}
	if g.ComponentHasInput(ghost) {
		t.Error("ghost's singleton component has no input")
	}
	for _, id := range []int{in, out, ghost, lonely} {
		if !containsInt(g.TopoSignals, id) {
			t.Errorf("%s missing from TopoSignals", s.Name(id))
		}
		if idx := g.SCCIndex(id); idx < 0 || idx >= len(g.SCCs) {
			t.Errorf("SCCIndex(%s) = %d out of range", s.Name(id), idx)
		}
	}
	skip := g.SignalsWithoutOutputComponent()
	if !containsInt(skip, ghost) || !containsInt(skip, lonely) {
		t.Errorf("islands missing from SignalsWithoutOutputComponent: %v", skip)
	}
	if containsInt(skip, in) || containsInt(skip, out) {
		t.Errorf("output component wrongly skippable: %v", skip)
	}
}

// A constraint touching one signal and the constant wire (x·x = 1) forms a
// single-signal component; the constant-one signal stays outside every
// component and SCC.
func TestGraphSingleSignalComponent(t *testing.T) {
	f := fldEdge
	s := r1cs.NewSystem(f)
	x := s.AddSignal("x", r1cs.KindInternal)
	s.AddConstraint(poly.Var(f, x), poly.Var(f, x), poly.ConstInt(f, 1), "unit")
	g := BuildGraph(s)

	if g.NumComponents != 1 {
		t.Fatalf("NumComponents = %d, want 1", g.NumComponents)
	}
	if g.ComponentOf(r1cs.OneID) != -1 {
		t.Errorf("ComponentOf(one) = %d, want -1", g.ComponentOf(r1cs.OneID))
	}
	if g.SCCIndex(r1cs.OneID) != -1 {
		t.Errorf("SCCIndex(one) = %d, want -1", g.SCCIndex(r1cs.OneID))
	}
	if len(g.SCCs) != 1 || !containsInt(g.SCCs[0], x) || len(g.SCCs[0]) != 1 {
		t.Errorf("SCCs = %v, want [[x]]", g.SCCs)
	}
	if containsInt(g.TopoSignals, r1cs.OneID) {
		t.Error("constant-one signal leaked into TopoSignals")
	}
}

// An empty system (constant wire only) must build without panicking and
// report zero of everything.
func TestGraphEmptySystem(t *testing.T) {
	s := r1cs.NewSystem(fldEdge)
	g := BuildGraph(s)
	if g.NumComponents != 0 || len(g.SCCs) != 0 || len(g.TopoSignals) != 0 {
		t.Errorf("empty system: components=%d sccs=%d topo=%d",
			g.NumComponents, len(g.SCCs), len(g.TopoSignals))
	}
	if len(g.SignalsWithoutOutputComponent()) != 0 {
		t.Error("empty system reports skippable signals")
	}
}

// TopoSignals must respect <== orientation: definition sources come before
// the defined signal in an acyclic chain a → b → c.
func TestGraphTopoOrderRespectsDefs(t *testing.T) {
	f := fldEdge
	s := r1cs.NewSystem(f)
	a := s.AddSignal("a", r1cs.KindInput)
	b := s.AddSignal("b", r1cs.KindInternal)
	c := s.AddSignal("c", r1cs.KindOutput)
	s.AddConstraint(poly.Var(f, a), poly.Var(f, a), poly.Var(f, b), "b<==a*a")
	s.SetConstraintDef(0, b)
	s.AddConstraint(poly.Var(f, b), poly.Var(f, b), poly.Var(f, c), "c<==b*b")
	s.SetConstraintDef(1, c)
	g := BuildGraph(s)

	pos := map[int]int{}
	for i, v := range g.TopoSignals {
		pos[v] = i
	}
	if !(pos[a] < pos[b] && pos[b] < pos[c]) {
		t.Errorf("topo order violates defs: a=%d b=%d c=%d", pos[a], pos[b], pos[c])
	}
	if !(g.SCCIndex(a) < g.SCCIndex(b) && g.SCCIndex(b) < g.SCCIndex(c)) {
		t.Errorf("SCC order violates defs: a=%d b=%d c=%d",
			g.SCCIndex(a), g.SCCIndex(b), g.SCCIndex(c))
	}
}
