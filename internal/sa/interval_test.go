package sa

import (
	"math/big"
	"testing"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func iv(lo, hi int64) *Interval { return newInterval(bi(lo), bi(hi)) }

func TestIntervalBasics(t *testing.T) {
	b := iv(-3, 5)
	if !b.Contains(bi(-3)) || !b.Contains(bi(0)) || !b.Contains(bi(5)) {
		t.Error("Contains rejects in-range values")
	}
	if b.Contains(bi(-4)) || b.Contains(bi(6)) {
		t.Error("Contains accepts out-of-range values")
	}
	if !b.ContainsZero() || iv(1, 4).ContainsZero() || iv(-4, -1).ContainsZero() {
		t.Error("ContainsZero wrong")
	}
	if !singletonInterval(bi(7)).IsSingleton() || b.IsSingleton() {
		t.Error("IsSingleton wrong")
	}
	if got := iv(2, 5).Width(); got.Cmp(bi(3)) != 0 {
		t.Errorf("Width = %v, want 3 (Hi−Lo)", got)
	}
	if s := boolInterval(); s.Lo.Sign() != 0 || s.Hi.Cmp(bigOne) != 0 {
		t.Errorf("boolInterval = %v", s)
	}
}

func TestIntervalMeetAndTightens(t *testing.T) {
	m, ok := iv(0, 10).meet(iv(5, 20))
	if !ok || m.Lo.Cmp(bi(5)) != 0 || m.Hi.Cmp(bi(10)) != 0 {
		t.Errorf("meet = %v, %v", m, ok)
	}
	if _, ok := iv(0, 3).meet(iv(4, 9)); ok {
		t.Error("disjoint meet should be empty")
	}
	if !iv(0, 10).tightens(iv(0, 9)) || !iv(0, 10).tightens(iv(1, 10)) {
		t.Error("strictly smaller interval should tighten")
	}
	if iv(0, 10).tightens(iv(0, 10)) {
		t.Error("equal interval must not tighten")
	}
}

func TestIntervalMaxBits(t *testing.T) {
	for _, tc := range []struct {
		in   *Interval
		want int
		ok   bool
	}{
		{iv(0, 0), 0, true},
		{iv(0, 1), 1, true},
		{iv(0, 255), 8, true},
		{iv(0, 256), 9, true},
		{iv(3, 12), 4, true},
		{iv(-1, 4), 0, false}, // negative lower bound: no unsigned bit width
	} {
		got, ok := tc.in.maxBits()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("maxBits(%v) = %d,%v want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestTermAndProdRange(t *testing.T) {
	lo, hi := termRange(bi(-2), iv(1, 3))
	if lo.Cmp(bi(-6)) != 0 || hi.Cmp(bi(-2)) != 0 {
		t.Errorf("termRange = [%v,%v]", lo, hi)
	}
	// (-1..2) * (-3..1): endpoint products {3,-1,-6,2} → [-6, 3].
	lo, hi = prodRange(bi(1), iv(-1, 2), iv(-3, 1))
	if lo.Cmp(bi(-6)) != 0 || hi.Cmp(bi(3)) != 0 {
		t.Errorf("prodRange = [%v,%v]", lo, hi)
	}
}

func TestDivProject(t *testing.T) {
	// 2x ∈ [3, 9] → x ∈ [2, 4].
	got, ok := divProject(bi(3), bi(9), bi(2))
	if !ok || got.Lo.Cmp(bi(2)) != 0 || got.Hi.Cmp(bi(4)) != 0 {
		t.Errorf("divProject(3,9,2) = %v,%v", got, ok)
	}
	// -3x ∈ [2, 7] → x ∈ [-2, -1] (x = -1: -3·-1 = 3 ∈ [2,7]).
	got, ok = divProject(bi(2), bi(7), bi(-3))
	if !ok || got.Lo.Cmp(bi(-2)) != 0 || got.Hi.Cmp(bi(-1)) != 0 {
		t.Errorf("divProject(2,7,-3) = %v,%v", got, ok)
	}
	// 5x ∈ [2, 4] holds for no integer x.
	if _, ok := divProject(bi(2), bi(4), bi(5)); ok {
		t.Error("divProject should report an empty projection")
	}
}

func TestFloorCeilDiv(t *testing.T) {
	for _, tc := range []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
	} {
		if got := floorDiv(bi(tc.a), bi(tc.b)); got.Cmp(bi(tc.fl)) != 0 {
			t.Errorf("floorDiv(%d,%d) = %v", tc.a, tc.b, got)
		}
		if got := ceilDiv(bi(tc.a), bi(tc.b)); got.Cmp(bi(tc.ce)) != 0 {
			t.Errorf("ceilDiv(%d,%d) = %v", tc.a, tc.b, got)
		}
	}
}
