package sa

import (
	"fmt"
	"math/big"

	"qed2/internal/ff"
)

// The interval domain: per-signal value ranges under the signed embedding.
//
// A field element e is identified with its signed representative
// f.Signed(e) ∈ (−(p−1)/2, (p−1)/2], and an Interval [Lo, Hi] is the fact
// "in every satisfying assignment, the signed representative of this signal
// lies in [Lo, Hi]" — a theorem about the constraint set, exactly like the
// constant facts of the const domain. Top (no information) is represented
// by a nil Interval; the empty interval never appears in the state (an
// empty meet is a range conflict, recorded separately and surfaced by the
// range-violation detector).
//
// All arithmetic on intervals is exact big.Int arithmetic over signed
// representatives. A transfer function is applied only when its result
// provably stays inside the signed range, so field wrap-around can never
// be mistaken for integer arithmetic; anything that could wrap degrades to
// Top. Soundness sketches live in DESIGN.md §17.

// Interval is a closed integer interval [Lo, Hi] of signed representatives.
// The zero value is unusable; intervals are built with the constructors
// below. Lo ≤ Hi always holds for intervals stored in an AbsState.
type Interval struct {
	Lo, Hi *big.Int
}

// newInterval builds [lo, hi] taking ownership of both ints.
func newInterval(lo, hi *big.Int) *Interval { return &Interval{Lo: lo, Hi: hi} }

// singletonInterval builds [v, v].
func singletonInterval(v *big.Int) *Interval {
	return &Interval{Lo: v, Hi: new(big.Int).Set(v)}
}

// boolInterval is the seed interval [0, 1] of the boolean domain.
func boolInterval() *Interval {
	return &Interval{Lo: new(big.Int), Hi: big.NewInt(1)}
}

// intervalOfConst embeds a proven constant as the singleton interval of its
// signed representative.
func intervalOfConst(f *ff.Field, v ff.Element) *Interval {
	return singletonInterval(f.Signed(v))
}

// IsSingleton reports whether the interval pins a single value.
func (iv *Interval) IsSingleton() bool { return iv.Lo.Cmp(iv.Hi) == 0 }

// Contains reports whether v ∈ [Lo, Hi].
func (iv *Interval) Contains(v *big.Int) bool {
	return iv.Lo.Cmp(v) <= 0 && v.Cmp(iv.Hi) <= 0
}

// ContainsZero reports whether 0 ∈ [Lo, Hi].
func (iv *Interval) ContainsZero() bool { return iv.Lo.Sign() <= 0 && iv.Hi.Sign() >= 0 }

// Width returns Hi − Lo.
func (iv *Interval) Width() *big.Int { return new(big.Int).Sub(iv.Hi, iv.Lo) }

// meet intersects two intervals; ok is false when the intersection is empty
// (a range conflict: two theorems about the same signal exclude each other,
// so no satisfying assignment exists).
func (iv *Interval) meet(other *Interval) (*Interval, bool) {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo.Cmp(lo) > 0 {
		lo = other.Lo
	}
	if other.Hi.Cmp(hi) < 0 {
		hi = other.Hi
	}
	if lo.Cmp(hi) > 0 {
		return nil, false
	}
	return newInterval(new(big.Int).Set(lo), new(big.Int).Set(hi)), true
}

// tightens reports whether other ⊂ iv strictly on at least one endpoint —
// i.e. recording other after iv would refine the state.
func (iv *Interval) tightens(other *Interval) bool {
	return other.Lo.Cmp(iv.Lo) > 0 || other.Hi.Cmp(iv.Hi) < 0
}

// String renders the interval for findings and debugging.
func (iv *Interval) String() string {
	if iv.IsSingleton() {
		return fmt.Sprintf("[%v]", iv.Lo)
	}
	return fmt.Sprintf("[%v, %v]", iv.Lo, iv.Hi)
}

// maxBits returns the smallest k with [Lo, Hi] ⊆ [0, 2^k − 1], and whether
// such a k exists (Lo ≥ 0) — the maxbit(k) tag of the Circom tag system.
func (iv *Interval) maxBits() (int, bool) {
	if iv.Lo.Sign() < 0 {
		return 0, false
	}
	return iv.Hi.BitLen(), true
}

// termRange is the exact integer range of c·x for a signed coefficient c
// and x ∈ [iv.Lo, iv.Hi]: the endpoint products, ordered by the sign of c.
func termRange(c *big.Int, iv *Interval) (lo, hi *big.Int) {
	lo = new(big.Int).Mul(c, iv.Lo)
	hi = new(big.Int).Mul(c, iv.Hi)
	if c.Sign() < 0 {
		lo, hi = hi, lo
	}
	return lo, hi
}

// prodRange is the exact integer range of c·x·y for x ∈ a, y ∈ b: the
// extrema over the four endpoint products, scaled by c.
func prodRange(c *big.Int, a, b *Interval) (lo, hi *big.Int) {
	p1 := new(big.Int).Mul(a.Lo, b.Lo)
	p2 := new(big.Int).Mul(a.Lo, b.Hi)
	p3 := new(big.Int).Mul(a.Hi, b.Lo)
	p4 := new(big.Int).Mul(a.Hi, b.Hi)
	lo, hi = p1, p1
	for _, p := range []*big.Int{p2, p3, p4} {
		if p.Cmp(lo) < 0 {
			lo = p
		}
		if p.Cmp(hi) > 0 {
			hi = p
		}
	}
	lo = new(big.Int).Mul(c, lo)
	hi = new(big.Int).Mul(c, hi)
	if c.Sign() < 0 {
		lo, hi = hi, lo
	}
	return lo, hi
}

// divProject projects the constraint c·x ∈ [lo, hi] onto x for a nonzero
// signed coefficient c: x ∈ [⌈lo/c⌉, ⌊hi/c⌋] (endpoints swapped for c < 0).
// ok is false when the projected interval is empty — no integer x satisfies
// the bound, which the caller records as a range conflict.
func divProject(lo, hi, c *big.Int) (*Interval, bool) {
	if c.Sign() < 0 {
		lo, hi = new(big.Int).Neg(hi), new(big.Int).Neg(lo)
		c = new(big.Int).Neg(c)
	}
	xlo := ceilDiv(lo, c)
	xhi := floorDiv(hi, c)
	if xlo.Cmp(xhi) > 0 {
		return nil, false
	}
	return newInterval(xlo, xhi), true
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	if r.Sign() < 0 {
		q.Sub(q, bigOne)
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	if r.Sign() > 0 {
		q.Add(q, bigOne)
	}
	return q
}

var bigOne = big.NewInt(1)

// signedBounds returns the representable signed range (lowLim, highLim) of
// the field: every signed representative satisfies lowLim < v ≤ highLim,
// with highLim = (p−1)/2 for odd p. An interval that provably stays within
// [lowLim+1, highLim] describes integer arithmetic with no field
// wrap-around; transfer functions whose result range could leave it must
// degrade to Top.
func signedBounds(f *ff.Field) (lo, hi *big.Int) {
	hi = new(big.Int).Rsh(f.Modulus(), 1)
	lo = new(big.Int).Neg(hi)
	return lo, hi
}
