package sa

import (
	"sort"

	"qed2/internal/r1cs"
)

// Graph is the signal-dependency graph of an R1CS, in bipartite form:
// nodes are signals plus constraints, and edges run signal→constraint→signal
// so that a constraint with k variables contributes O(k) edges instead of a
// k-clique. Constraints carrying the compiler's `<==` definition metadata
// (Constraint.Def) are oriented — sources flow into the constraint and the
// constraint flows into the defined signal; pure === constraints (and
// constraints from metadata-free .r1cs files) are bidirectional. The
// constant-one signal is excluded, exactly as in the slicing adjacency.
type Graph struct {
	sys *r1cs.System
	// succ is the directed adjacency over nodes: node i < NumSignals is
	// signal i; node NumSignals+ci is constraint ci.
	succ [][]int
	// SCCs lists the strongly connected components restricted to signal
	// members (components consisting only of a constraint node are
	// dropped), in topological order: dependencies before dependents.
	SCCs [][]int
	// sccOf maps each node to its SCC index in emission (reverse
	// topological) order; use SCCIndex for the signal view.
	sccOf []int
	// comp is the undirected connected-component label per signal
	// (-1 for the constant-one signal).
	comp []int
	// compHasInput / compHasOutput record per-component I/O membership.
	compHasInput  []bool
	compHasOutput []bool
	// NumComponents counts undirected components over non-constant signals.
	NumComponents int
	// TopoSignals lists all non-constant signals in dependency order
	// (definition sources before defined signals; ties by signal ID).
	TopoSignals []int
	// sccIndexOf memoizes SCCIndex lookups.
	sccIndexOf map[int]int
}

// BuildGraph constructs the dependency graph for a system.
func BuildGraph(sys *r1cs.System) *Graph {
	nSig := sys.NumSignals()
	nCons := sys.NumConstraints()
	g := &Graph{sys: sys, succ: make([][]int, nSig+nCons)}
	for ci := 0; ci < nCons; ci++ {
		c := sys.Constraint(ci)
		cn := nSig + ci
		def := c.Def
		for _, v := range c.Vars() {
			if v == r1cs.OneID {
				continue
			}
			if def > 0 {
				if v == def {
					g.succ[cn] = append(g.succ[cn], v)
				} else {
					g.succ[v] = append(g.succ[v], cn)
				}
				continue
			}
			g.succ[v] = append(g.succ[v], cn)
			g.succ[cn] = append(g.succ[cn], v)
		}
		// A <== whose sources are all constant still defines its target.
		if def > 0 && len(g.succ[cn]) == 0 {
			g.succ[cn] = append(g.succ[cn], def)
		}
	}
	g.buildComponents()
	g.buildSCCs()
	return g
}

// buildComponents labels undirected connected components of the signal set
// and records which components contain inputs and outputs.
func (g *Graph) buildComponents() {
	nSig := g.sys.NumSignals()
	parent := make([]int, nSig)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for ci := 0; ci < g.sys.NumConstraints(); ci++ {
		first := -1
		for _, v := range g.sys.Constraint(ci).Vars() {
			if v == r1cs.OneID {
				continue
			}
			if first == -1 {
				first = v
			} else if ra, rb := find(first), find(v); ra != rb {
				parent[ra] = rb
			}
		}
	}
	g.comp = make([]int, nSig)
	label := map[int]int{}
	for id := 0; id < nSig; id++ {
		if id == r1cs.OneID {
			g.comp[id] = -1
			continue
		}
		root := find(id)
		l, ok := label[root]
		if !ok {
			l = len(label)
			label[root] = l
		}
		g.comp[id] = l
	}
	g.NumComponents = len(label)
	g.compHasInput = make([]bool, g.NumComponents)
	g.compHasOutput = make([]bool, g.NumComponents)
	for id := 1; id < nSig; id++ {
		switch g.sys.Signal(id).Kind {
		case r1cs.KindInput:
			g.compHasInput[g.comp[id]] = true
		case r1cs.KindOutput:
			g.compHasOutput[g.comp[id]] = true
		}
	}
}

// buildSCCs runs an iterative Tarjan over the bipartite node set and
// derives the signal-only SCC list in topological order.
func (g *Graph) buildSCCs() {
	n := len(g.succ)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	g.sccOf = make([]int, n)
	for i := range index {
		index[i] = unvisited
		g.sccOf[i] = -1
	}
	var stack []int
	next := 0
	var emitted [][]int

	type frame struct {
		node int
		succ int // next successor index to visit
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.node
			if fr.succ < len(g.succ[v]) {
				w := g.succ[v][fr.succ]
				fr.succ++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].node; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.sccOf[w] = len(emitted)
					members = append(members, w)
					if w == v {
						break
					}
				}
				emitted = append(emitted, members)
			}
		}
	}
	// Tarjan emits SCCs in reverse topological order; reverse and restrict
	// to signal members.
	nSig := g.sys.NumSignals()
	for i := len(emitted) - 1; i >= 0; i-- {
		var sigs []int
		for _, node := range emitted[i] {
			if node < nSig && node != r1cs.OneID {
				sigs = append(sigs, node)
			}
		}
		if len(sigs) == 0 {
			continue
		}
		sort.Ints(sigs)
		g.SCCs = append(g.SCCs, sigs)
		g.TopoSignals = append(g.TopoSignals, sigs...)
	}
}

// SCCIndex returns the index into SCCs of the component containing signal
// id, or -1 for the constant-one signal.
func (g *Graph) SCCIndex(id int) int {
	if id == r1cs.OneID {
		return -1
	}
	// sccOf holds emission indices over all nodes; recover the position in
	// the reversed, signal-only list by scanning SCCs lazily. SCCs is tiny
	// relative to signals only in pathological cases, so precompute once.
	if g.sccIndexOf == nil {
		g.sccIndexOf = make(map[int]int, g.sys.NumSignals())
		for i, scc := range g.SCCs {
			for _, s := range scc {
				g.sccIndexOf[s] = i
			}
		}
	}
	return g.sccIndexOf[id]
}

// ComponentOf returns the undirected component label of a signal.
func (g *Graph) ComponentOf(id int) int { return g.comp[id] }

// ComponentHasInput reports whether a signal's undirected component
// contains at least one input signal.
func (g *Graph) ComponentHasInput(id int) bool {
	c := g.comp[id]
	return c >= 0 && g.compHasInput[c]
}

// ConstraintsOn returns the number of constraints mentioning the signal.
func (g *Graph) ConstraintsOn(id int) int { return len(g.sys.ConstraintsOf(id)) }

// SignalsWithoutOutputComponent returns, ascending, every non-constant
// signal living in an undirected component that contains no output.
// Uniqueness facts cannot cross components (propagation and slicing are
// both component-local), so slice queries for these signals cannot
// influence any output verdict and are sound to skip.
func (g *Graph) SignalsWithoutOutputComponent() []int {
	var out []int
	for id := 1; id < g.sys.NumSignals(); id++ {
		if c := g.comp[id]; c >= 0 && !g.compHasOutput[c] {
			out = append(out, id)
		}
	}
	return out
}
