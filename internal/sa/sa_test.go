package sa

import (
	"encoding/json"
	"strings"
	"testing"

	"qed2/internal/circom"
	"qed2/internal/r1cs"
)

func compile(t testing.TB, src string) *circom.Program {
	t.Helper()
	p, err := circom.Compile(src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func findingsOf(res *Result, detector string) []Finding {
	var out []Finding
	for _, f := range res.Findings {
		if f.Detector == detector {
			out = append(out, f)
		}
	}
	return out
}

// --- graph -----------------------------------------------------------------

func TestGraphComponentsAndPruning(t *testing.T) {
	// Two islands: in→out is the interface component; u === v*v is a floating
	// internal component no output can observe.
	src := `
template Two() {
    signal input in;
    signal output out;
    signal u;
    signal v;
    out <== in * in;
    v <-- 7;
    u <== v * v;
}
component main = Two();
`
	p := compile(t, src)
	sys := p.System
	g := BuildGraph(sys)
	if g.NumComponents != 2 {
		t.Fatalf("NumComponents = %d, want 2", g.NumComponents)
	}
	in, out := sys.Inputs()[0], sys.Outputs()[0]
	if g.ComponentOf(in) != g.ComponentOf(out) {
		t.Errorf("in and out should share a component")
	}
	if !g.ComponentHasInput(out) {
		t.Errorf("output's component should contain the input")
	}
	pruned := g.SignalsWithoutOutputComponent()
	if len(pruned) != 2 {
		t.Fatalf("pruned = %v, want the two floating internals", pruned)
	}
	for _, s := range pruned {
		name := sys.Name(s)
		if name != "u" && name != "v" {
			t.Errorf("pruned signal %s should be u or v", name)
		}
		if g.ComponentHasInput(s) {
			t.Errorf("floating component claims an input")
		}
	}
}

func TestGraphTopoOrderFollowsDefinitions(t *testing.T) {
	src := `
template Chain() {
    signal input in;
    signal output out;
    signal mid;
    mid <== in * in;
    out <== mid * mid;
}
component main = Chain();
`
	p := compile(t, src)
	sys := p.System
	g := BuildGraph(sys)
	pos := map[string]int{}
	for i, s := range g.TopoSignals {
		pos[sys.Name(s)] = i
	}
	if !(pos["in"] < pos["mid"] && pos["mid"] < pos["out"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
	// Every non-constant signal appears exactly once.
	if len(g.TopoSignals) != sys.NumSignals()-1 {
		t.Errorf("TopoSignals has %d entries, want %d", len(g.TopoSignals), sys.NumSignals()-1)
	}
}

func TestGraphSCCsOnCycle(t *testing.T) {
	// a and b mutually constrain via two === equations: one SCC of size ≥ 2
	// would require directed edges both ways, which pure === provides.
	src := `
template Cyc() {
    signal input in;
    signal output out;
    signal a;
    signal b;
    a <-- in + 1;
    b <-- a - in;
    a === b + in;
    b === a - in;
    out <== a * b;
}
component main = Cyc();
`
	p := compile(t, src)
	g := BuildGraph(p.System)
	found := false
	for _, scc := range g.SCCs {
		if len(scc) >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a nontrivial SCC, got %v", g.SCCs)
	}
}

// --- abstract interpretation ------------------------------------------------

func TestAbsintConstantPropagation(t *testing.T) {
	// k is pinned to 5; m = k*k propagates to 25; out = m+k to 30.
	src := `
template Consts() {
    signal input in;
    signal output out;
    signal k;
    signal m;
    k <== 5;
    m <== k * k;
    out <== m + k;
    in * 0 === 0;
}
component main = Consts();
`
	p := compile(t, src)
	sys := p.System
	abs := Interpret(sys, BuildGraph(sys))
	f := sys.Field()
	for name, want := range map[string]int64{"k": 5, "m": 25, "out": 30} {
		id := signalByName(t, sys, name)
		v, ok := abs.Const(id)
		if !ok {
			t.Fatalf("%s not proven constant", name)
		}
		if v != f.NewElement(want) {
			t.Errorf("%s = %s, want %d", name, f.String(v), want)
		}
		if !abs.Determined(id) {
			t.Errorf("constant %s not determined", name)
		}
	}
	if err := abs.Verify(); err != nil {
		t.Errorf("replay failed on consistent system: %v", err)
	}
}

func TestAbsintBoolAndDetermined(t *testing.T) {
	// Num2Bits shape: bits are boolean (B-Range) and, via the super-increasing
	// sum, determined by the input (D-Bits); the linear chain determines out.
	src := `
template Bits() {
    signal input in;
    signal output out;
    signal b[3];
    var lc = 0;
    var e2 = 1;
    for (var i = 0; i < 3; i++) {
        b[i] <-- (in >> i) & 1;
        b[i] * (b[i] - 1) === 0;
        lc += b[i] * e2;
        e2 = e2 + e2;
    }
    lc === in;
    out <== b[0] + 2*b[2];
}
component main = Bits();
`
	p := compile(t, src)
	sys := p.System
	abs := Interpret(sys, BuildGraph(sys))
	for _, name := range []string{"b[0]", "b[1]", "b[2]"} {
		id := signalByName(t, sys, name)
		if !abs.Bool(id) {
			t.Errorf("%s not proven boolean", name)
		}
		if !abs.Determined(id) {
			t.Errorf("%s not proven determined", name)
		}
	}
	out := sys.Outputs()[0]
	if !abs.Determined(out) {
		t.Errorf("out not determined despite determined bits")
	}
}

func TestAbsintDetSolveChain(t *testing.T) {
	src := `
template Chain() {
    signal input in;
    signal output out;
    signal a;
    signal b;
    a <== 3*in + 1;
    b <== a * in;
    out <== b + a;
}
component main = Chain();
`
	p := compile(t, src)
	sys := p.System
	abs := Interpret(sys, BuildGraph(sys))
	for _, name := range []string{"a", "b", "out"} {
		if !abs.Determined(signalByName(t, sys, name)) {
			t.Errorf("%s not determined", name)
		}
	}
	if n := abs.NumDetermined(); n != sys.NumSignals()-1 {
		t.Errorf("NumDetermined = %d, want all %d", n, sys.NumSignals()-1)
	}
}

func TestAbsintVerifyCatchesContradiction(t *testing.T) {
	// x === 1 and x === 2 cannot both hold: constant propagation derives one
	// of them, and the replay must flag the other's nonzero residual.
	src := `
template Unsat() {
    signal input in;
    signal x;
    x <== 1;
    x === 2;
    in * 0 === 0;
}
component main = Unsat();
`
	p := compile(t, src)
	sys := p.System
	abs := Interpret(sys, BuildGraph(sys))
	if err := abs.Verify(); err == nil {
		t.Fatal("Verify accepted an unsatisfiable system")
	} else if !strings.Contains(err.Error(), "replay failed") {
		t.Errorf("unexpected error: %v", err)
	}
}

// --- detectors ---------------------------------------------------------------

func TestDetectUnreachableOutput(t *testing.T) {
	src := `
template Free() {
    signal input in;
    signal output out;
    signal t;
    t <== in * in;
    out <-- in;
    out * (out - 1) === 0;
}
component main = Free();
`
	p := compile(t, src)
	res := Analyze(p.System, nil)
	fs := findingsOf(res, "unreachable-output")
	if len(fs) != 1 || fs[0].Severity != SeverityError {
		t.Fatalf("unreachable-output findings = %+v", fs)
	}
	if fs[0].Signal != "out" {
		t.Errorf("flagged %s, want out", fs[0].Signal)
	}
	if len(res.UnreachableOutputs) != 1 {
		t.Errorf("UnreachableOutputs = %v", res.UnreachableOutputs)
	}
}

func TestDetectUnreachableOutputExcludesDeterminedConstants(t *testing.T) {
	// out === 5 has no input path either, but it is perfectly constrained.
	src := `
template Pinned() {
    signal input in;
    signal output out;
    out <== 5;
    in * 0 === 0;
}
component main = Pinned();
`
	p := compile(t, src)
	res := Analyze(p.System, nil)
	if fs := findingsOf(res, "unreachable-output"); len(fs) != 0 {
		t.Fatalf("constant output flagged unreachable: %+v", fs)
	}
	if len(res.DeterminedOutputs) != 1 {
		t.Errorf("DeterminedOutputs = %v, want the pinned output", res.DeterminedOutputs)
	}
}

func TestDetectUnconstrainedHint(t *testing.T) {
	src := `
template Hint() {
    signal input in;
    signal output out;
    signal free;
    free <-- in * 2;
    out <== in * in;
}
component main = Hint();
`
	p := compile(t, src)
	res := Analyze(p.System, nil)
	fs := findingsOf(res, "unconstrained-hint")
	if len(fs) != 1 || fs[0].Severity != SeverityWarning || fs[0].Signal != "free" {
		t.Fatalf("unconstrained-hint findings = %+v", fs)
	}
	if fs[0].Loc == "" {
		t.Errorf("finding not source-located")
	}
}

func TestDetectNonBinarySelector(t *testing.T) {
	// Mux with an unconstrained selector: s*(a-b)+b. Constrained variant must
	// stay silent.
	src := `
template Mux() {
    signal input s;
    signal input a;
    signal input b;
    signal output out;
    out <== s * (a - b) + b;
}
component main = Mux();
`
	p := compile(t, src)
	res := Analyze(p.System, nil)
	fs := findingsOf(res, "non-binary-selector")
	if len(fs) != 1 || fs[0].Signal != "s" {
		t.Fatalf("non-binary-selector findings = %+v", fs)
	}

	constrained := `
template Mux() {
    signal input s;
    signal input a;
    signal input b;
    signal output out;
    s * (s - 1) === 0;
    out <== s * (a - b) + b;
}
component main = Mux();
`
	p2 := compile(t, constrained)
	if fs := findingsOf(Analyze(p2.System, nil), "non-binary-selector"); len(fs) != 0 {
		t.Fatalf("boolean selector still flagged: %+v", fs)
	}
}

func TestDetectNonBinaryInDecomposition(t *testing.T) {
	// The classic buggy Num2Bits: one bit's boolean constraint is missing.
	src := `
template BadBits() {
    signal input in;
    signal output out[3];
    var lc = 0;
    var e2 = 1;
    for (var i = 0; i < 3; i++) {
        out[i] <-- (in >> i) & 1;
        if (i < 2) {
            out[i] * (out[i] - 1) === 0;
        }
        lc += out[i] * e2;
        e2 = e2 + e2;
    }
    lc === in;
}
component main = BadBits();
`
	p := compile(t, src)
	res := Analyze(p.System, nil)
	fs := findingsOf(res, "non-binary-in-decomposition")
	if len(fs) != 1 || fs[0].Signal != "out[2]" {
		t.Fatalf("non-binary-in-decomposition findings = %+v", fs)
	}
}

func TestDetectZeroDivisorViaProgram(t *testing.T) {
	src := `
template Inv() {
    signal input in;
    signal output out;
    out <-- 1 / in;
    out * in === 1;
}
component main = Inv();
`
	p := compile(t, src)
	res := AnalyzeProgram(p, nil)
	// out·in = 1 proves in ≠ 0 (rule N-Inv), so the divisor warning is
	// discharged down to the nonzero-divisor-proved info finding.
	if fs := findingsOf(res, "possibly-zero-divisor"); len(fs) != 0 {
		t.Fatalf("possibly-zero-divisor findings = %+v", fs)
	}
	fs := findingsOf(res, "nonzero-divisor-proved")
	if len(fs) != 1 || fs[0].Severity != SeverityInfo {
		t.Fatalf("nonzero-divisor-proved findings = %+v", fs)
	}
	// A guarded division is advisory only.
	guarded := `
template Inv() {
    signal input in;
    signal output out;
    out <-- in != 0 ? 1 / in : 0;
    out * in === in;
}
component main = Inv();
`
	p2 := compile(t, guarded)
	fs2 := findingsOf(AnalyzeProgram(p2, nil), "possibly-zero-divisor")
	if len(fs2) != 1 || fs2[0].Severity != SeverityInfo {
		t.Fatalf("guarded divisor findings = %+v", fs2)
	}
}

// --- result plumbing ---------------------------------------------------------

func TestAnalyzeDeterministic(t *testing.T) {
	src := `
template Mixed() {
    signal input in;
    signal output out;
    signal h;
    signal u;
    signal v;
    h <-- in * 3;
    v <-- 2;
    u <-- v * v;
    u === v * v;
    out <-- in;
    out * (out - 1) === 0;
}
component main = Mixed();
`
	p := compile(t, src)
	var runs [2][]byte
	for i := range runs {
		res := Analyze(p.System, nil)
		b, err := json.Marshal(res.Findings)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = b
	}
	if string(runs[0]) != string(runs[1]) {
		t.Fatalf("findings not deterministic:\n%s\n%s", runs[0], runs[1])
	}
}

func TestFindingStringAndSeverityOrder(t *testing.T) {
	f := Finding{Detector: "d", Severity: SeverityError, SeverityName: "error",
		Loc: "T:1:2", Message: "m"}
	if got := f.String(); got != "T:1:2: error[d]: m" {
		t.Errorf("String() = %q", got)
	}
	fs := []Finding{
		{Detector: "b", Severity: SeverityInfo},
		{Detector: "a", Severity: SeverityError},
		{Detector: "c", Severity: SeverityWarning},
	}
	sortFindings(fs)
	if fs[0].Detector != "a" || fs[1].Detector != "c" || fs[2].Detector != "b" {
		t.Errorf("sort order wrong: %+v", fs)
	}
}

func signalByName(t *testing.T, sys *r1cs.System, name string) int {
	t.Helper()
	for id := 1; id < sys.NumSignals(); id++ {
		if sys.Name(id) == name {
			return id
		}
	}
	t.Fatalf("no signal named %s", name)
	return -1
}

func TestDetectOverflowProneSum(t *testing.T) {
	// Two 253-bit ladders summed in one constraint: the bounded terms span
	// 2·(2^253−1) ≥ p, so two distinct in-range bit assignments can alias
	// the same field value for out — the AliasCheck wraparound class.
	src := `
template WideSum() {
    signal input a;
    signal input b;
    signal output out;
    signal abits[253];
    signal bbits[253];
    var la = 0;
    var lb = 0;
    for (var i = 0; i < 253; i++) {
        abits[i] <-- (a >> i) & 1;
        abits[i] * (abits[i] - 1) === 0;
        la += abits[i] * (2 ** i);
        bbits[i] <-- (b >> i) & 1;
        bbits[i] * (bbits[i] - 1) === 0;
        lb += bbits[i] * (2 ** i);
    }
    la === a;
    lb === b;
    out <== la + lb;
}
component main = WideSum();
`
	res := AnalyzeProgram(compile(t, src), nil)
	fs := findingsOf(res, "overflow-prone-sum")
	if len(fs) != 1 || fs[0].Severity != SeverityWarning {
		t.Fatalf("overflow-prone-sum findings = %+v", fs)
	}
	if !strings.Contains(fs[0].Message, "254 bits") {
		t.Errorf("message lacks the span bit-width: %s", fs[0].Message)
	}
	// A single ladder is exact — its signed span is p−1 < p — and must
	// stay silent no matter how many bits it has.
	single := `
template N2B() {
    signal input in;
    signal output out[254];
    var lc = 0;
    for (var i = 0; i < 254; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc += out[i] * (2 ** i);
    }
    lc === in;
}
component main = N2B();
`
	if fs := findingsOf(AnalyzeProgram(compile(t, single), nil), "overflow-prone-sum"); len(fs) != 0 {
		t.Fatalf("single ladder flagged: %+v", fs)
	}
}
