// Package store is the content-addressed report store of the qed2d analysis
// service: it maps a circuit's canonical digest (r1cs.(*System).Digest) to
// the cached report of a previous analysis, so re-submissions of the same
// circuit — the dominant traffic pattern for circomlib-derived templates —
// cost a hash lookup instead of a solver run.
//
// Keying and soundness. The digest covers the canonical form of the whole
// system (constraint-order independent, metadata-sensitive), and a store is
// opened under a configuration stamp: reports produced under different
// budgets, seed or mode are never mixed, exactly like the bench checkpoint
// header (DESIGN.md §11). Within one stamp, analysis is deterministic, so a
// cache hit returns byte-for-byte the report a fresh run would produce —
// caching can change latency, never verdicts (DESIGN.md §14).
//
// Verdict hygiene. Only decided, non-degraded reports are cacheable: every
// Unknown — whether degraded (canceled, internal-error), resource-limited
// or a genuine budget outcome — is re-analyzed on resubmission. This is the
// whole-report analogue of the solver memo-cache cacheable split
// (core/scheduler.go): a report that merely records "we gave up" must not
// be replayed as if it were a proof.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"qed2/internal/buildinfo"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
)

// Report is the serializable summary of one analysis, the unit the store
// caches and the jobs API returns. It carries the verdict, the
// counterexample rendered in the same shape the bench golden gate pins
// (output name, witnessed values, differing-signal names in ID order), and
// an effort summary.
type Report struct {
	Verdict  string `json:"verdict"`
	Reason   string `json:"reason,omitempty"`
	Degraded string `json:"degraded,omitempty"`
	// CEOutput/CEValues/CESignals summarize the counterexample of an unsafe
	// verdict: the differing output with its two witnessed values, and the
	// names of every signal on which the witness pair disagrees (ID order).
	CEOutput  string    `json:"ce_output,omitempty"`
	CEValues  [2]string `json:"ce_values,omitempty"`
	CESignals []string  `json:"ce_signals,omitempty"`
	// Circuit shape and analysis effort.
	Signals       int     `json:"signals"`
	Constraints   int     `json:"constraints"`
	UniqueSignals int     `json:"unique_signals"`
	Queries       int     `json:"queries"`
	SolverSteps   int64   `json:"solver_steps"`
	CacheHits     int     `json:"cache_hits"`
	DurationMS    float64 `json:"duration_ms"`
	// Version stamps the build that produced the report (informational).
	Version string `json:"version,omitempty"`
}

// FromCore summarizes a core report against its system (needed to name the
// counterexample signals).
func FromCore(rep *core.Report, sys *r1cs.System) *Report {
	out := &Report{
		Verdict:       rep.Verdict.String(),
		Reason:        rep.Reason,
		Degraded:      string(rep.Degraded),
		Signals:       rep.Stats.SignalsTotal,
		Constraints:   rep.Stats.Constraints,
		UniqueSignals: rep.Stats.UniqueTotal,
		Queries:       rep.Stats.Queries,
		SolverSteps:   rep.Stats.SolverSteps,
		CacheHits:     rep.Stats.CacheHits,
		DurationMS:    float64(rep.Stats.Duration.Microseconds()) / 1000,
		Version:       buildinfo.Get().String(),
	}
	if ce := rep.Counter; ce != nil {
		f := sys.Field()
		out.CEOutput = sys.Name(ce.Signal)
		out.CEValues = [2]string{f.String(ce.W1[ce.Signal]), f.String(ce.W2[ce.Signal])}
		for id := 1; id < sys.NumSignals(); id++ {
			if ce.W1[id] != ce.W2[id] {
				out.CESignals = append(out.CESignals, sys.Name(id))
			}
		}
	}
	return out
}

// Cacheable reports whether a report may be served from the store: only
// decided verdicts (safe/unsafe) that are not degraded. Every flavor of
// Unknown re-analyzes.
func Cacheable(r *Report) bool {
	if r == nil || r.Degraded != "" {
		return false
	}
	return r.Verdict == core.VerdictSafe.String() || r.Verdict == core.VerdictUnsafe.String()
}

// ErrUncacheable is returned by Put for reports Cacheable rejects.
var ErrUncacheable = errors.New("store: report is not cacheable (undecided or degraded)")

// Options configures Open.
type Options struct {
	// Capacity bounds the in-memory LRU tier (default 1024 entries).
	Capacity int
	// Dir, when non-empty, enables the on-disk tier: one JSON file per
	// digest, surviving restarts. Created if missing.
	Dir string
	// Stamp pins the analyzer configuration the cached reports are valid
	// for (the service uses the JSON of its checkpoint config). A disk tier
	// written under a different stamp is refused at Open, like a mismatched
	// bench checkpoint header.
	Stamp string
	// Metrics, when non-nil, receives the service.store.* counters.
	Metrics *obs.Metrics
}

// Store is the two-tier content-addressed report cache. Safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // digest -> lru element
	lru     *list.List               // front = most recently used
	dir     string

	scrubMu   sync.Mutex
	lastScrub *ScrubReport

	hits, misses, puts     *obs.Counter
	evictions, diskHits    *obs.Counter
	rejectedPuts, putFails *obs.Counter
	corruptQuarantined     *obs.Counter
	scrubRepaired          *obs.Counter
}

type entry struct {
	digest string
	rep    *Report
}

// stampFile is the disk-tier stamp marker inside Options.Dir.
const stampFile = "store_stamp.json"

// corruptDir is the quarantine sidecar directory inside Options.Dir:
// entries that fail checksum or shape verification are moved here (for
// postmortem inspection) instead of being served or left to fail every
// future read.
const corruptDir = ".corrupt"

// diskFormat is the on-disk entry format version. Format 2 wraps the report
// in a checksummed envelope; a stamp file recorded under an older format is
// refused wholesale at Open (entries written without checksums cannot be
// verified, so they cannot be trusted either).
const diskFormat = 2

// stampPayload is the JSON stored in stampFile: the configuration stamp
// plus the entry format version and producing build.
type stampPayload struct {
	Format  int    `json:"format"`
	Stamp   string `json:"stamp"`
	Version string `json:"version,omitempty"`
}

// diskEnvelope is the format-2 on-disk entry: the report JSON plus a
// SHA-256 over its compact form (whitespace-insensitive, so re-indentation
// by the envelope encoder does not perturb it). A torn write, a flipped
// bit, or a hand-edited file fails verification and is treated as a miss
// (and quarantined), never served and never fatal.
type diskEnvelope struct {
	Format int             `json:"format"`
	SHA256 string          `json:"sha256"`
	Report json.RawMessage `json:"report"`
}

// reportChecksum hashes the compact form of a report's JSON.
func reportChecksum(raw json.RawMessage) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Open creates a store. With a Dir, the disk tier's stamp is verified
// (written on first use): reports cached under a different analyzer
// configuration are refused wholesale rather than filtered per entry, and a
// startup scrub walks every entry, quarantining the ones that fail checksum
// verification and sweeping orphaned temp files, so the tier a daemon
// starts serving from is known-good (see Scrub).
func Open(opts Options) (*Store, error) {
	s := &Store{
		cap:                opts.Capacity,
		entries:            map[string]*list.Element{},
		lru:                list.New(),
		dir:                opts.Dir,
		hits:               opts.Metrics.Counter("service.store.hits"),
		misses:             opts.Metrics.Counter("service.store.misses"),
		puts:               opts.Metrics.Counter("service.store.puts"),
		evictions:          opts.Metrics.Counter("service.store.evictions"),
		diskHits:           opts.Metrics.Counter("service.store.disk_hits"),
		rejectedPuts:       opts.Metrics.Counter("service.store.rejected_puts"),
		putFails:           opts.Metrics.Counter("service.store.put_failures"),
		corruptQuarantined: opts.Metrics.Counter("service.store.corrupt_quarantined"),
		scrubRepaired:      opts.Metrics.Counter("service.store.scrub_repaired"),
	}
	if s.cap <= 0 {
		s.cap = 1024
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", s.dir, err)
	}
	path := filepath.Join(s.dir, stampFile)
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		payload, merr := json.Marshal(stampPayload{Format: diskFormat, Stamp: opts.Stamp, Version: buildinfo.Get().String()})
		if merr == nil {
			merr = os.WriteFile(path, append(payload, '\n'), 0o644)
		}
		if merr != nil {
			return nil, fmt.Errorf("store: writing stamp %s: %w", path, merr)
		}
	case err != nil:
		return nil, fmt.Errorf("store: reading stamp %s: %w", path, err)
	default:
		var have stampPayload
		if err := json.Unmarshal(b, &have); err != nil {
			return nil, fmt.Errorf("store: corrupt stamp %s: %w — delete the store directory to rebuild it", path, err)
		}
		if have.Stamp != opts.Stamp {
			return nil, fmt.Errorf("store: %s was written under config stamp %s but this run uses %s — point -store-dir elsewhere or delete it", s.dir, have.Stamp, opts.Stamp)
		}
		if have.Format != diskFormat {
			return nil, fmt.Errorf("store: %s uses entry format %d but this build writes format %d (checksummed envelopes) — delete the store directory to rebuild it", s.dir, have.Format, diskFormat)
		}
	}
	s.Scrub()
	return s, nil
}

// Get looks a digest up, memory tier first, then disk. ok is false on a
// miss — including when fault injection (site service.store.get) poisons
// the lookup: a store fault degrades to a re-analysis, never to a wrong or
// missing verdict.
func (s *Store) Get(digest string) (*Report, bool) {
	if faultinject.Enabled() {
		if f := faultinject.Check("service.store.get"); f.Err != "" || f.Deadline {
			s.misses.Inc()
			return nil, false
		}
	}
	s.mu.Lock()
	if el, ok := s.entries[digest]; ok {
		s.lru.MoveToFront(el)
		rep := el.Value.(*entry).rep
		s.mu.Unlock()
		s.hits.Inc()
		return rep, true
	}
	s.mu.Unlock()
	if rep, ok := s.diskGet(digest); ok {
		s.installMemory(digest, rep)
		s.diskHits.Inc()
		s.hits.Inc()
		return rep, true
	}
	s.misses.Inc()
	return nil, false
}

func (s *Store) diskGet(digest string) (*Report, bool) {
	if s.dir == "" || !validDigest(digest) {
		return nil, false
	}
	path := filepath.Join(s.dir, digest+".json")
	rep, err := s.loadEntry(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil, false
	case err != nil:
		// Verification failure: the entry is structurally unsound (torn
		// write that predates the fsync hardening, bit rot, hand edit). A
		// corrupt entry is a miss, never an error — and it is moved aside so
		// the next read of this digest goes straight to re-analysis instead
		// of re-verifying a file known to be bad.
		s.quarantineCorrupt(path)
		return nil, false
	}
	// Hygiene is enforced on the read path too: a degraded or undecided
	// report on disk (written by a buggy older build) is treated as absent,
	// mirroring the Put-side Cacheable gate. The entry is well-formed, so it
	// is left in place, not quarantined.
	if !Cacheable(rep) {
		return nil, false
	}
	return rep, true
}

// loadEntry reads and verifies one disk-tier entry: envelope shape, format,
// checksum over the raw report bytes, and report decodability. The
// store.corrupt fault-injection site flips a byte of what was read, driving
// the real verification failure path rather than simulating its outcome.
func (s *Store) loadEntry(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if faultinject.Enabled() {
		if f := faultinject.Check("store.corrupt"); (f.Err != "" || f.Deadline) && len(b) > 0 {
			b[len(b)/2] ^= 0xff
		}
	}
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("store: %s: undecodable envelope: %w", path, err)
	}
	if env.Format != diskFormat {
		return nil, fmt.Errorf("store: %s: entry format %d, want %d", path, env.Format, diskFormat)
	}
	got, err := reportChecksum(env.Report)
	if err != nil {
		return nil, fmt.Errorf("store: %s: unhashable report: %w", path, err)
	}
	if got != env.SHA256 {
		return nil, fmt.Errorf("store: %s: checksum mismatch (%s != %s)", path, got, env.SHA256)
	}
	rep := &Report{}
	if err := json.Unmarshal(env.Report, rep); err != nil {
		return nil, fmt.Errorf("store: %s: undecodable report: %w", path, err)
	}
	return rep, nil
}

// quarantineCorrupt moves a verification-failed entry into the .corrupt/
// sidecar directory (best effort — if even the move fails, the file is
// removed so it cannot keep failing every read).
func (s *Store) quarantineCorrupt(path string) {
	dst := filepath.Join(s.dir, corruptDir, filepath.Base(path))
	if err := os.MkdirAll(filepath.Join(s.dir, corruptDir), 0o755); err == nil {
		err = os.Rename(path, dst)
		if err == nil {
			s.corruptQuarantined.Inc()
			return
		}
	}
	if os.Remove(path) == nil {
		s.corruptQuarantined.Inc()
	}
}

// Put caches a report under a digest. Uncacheable reports (any Unknown, or
// a set Degraded flag) are refused with ErrUncacheable — the cache-verdict
// hygiene gate. Disk-tier write failures are reported but leave the memory
// tier updated.
func (s *Store) Put(digest string, rep *Report) error {
	if !Cacheable(rep) {
		s.rejectedPuts.Inc()
		return ErrUncacheable
	}
	if faultinject.Enabled() {
		if f := faultinject.Check("service.store.put"); f.Err != "" || f.Deadline {
			s.putFails.Inc()
			return fmt.Errorf("store: injected fault: %s", f.Err)
		}
	}
	s.installMemory(digest, rep)
	s.puts.Inc()
	if s.dir == "" {
		return nil
	}
	if !validDigest(digest) {
		return fmt.Errorf("store: refusing to write non-hex digest %q to disk", digest)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: marshaling report: %w", err)
	}
	sum, err := reportChecksum(raw)
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: hashing report: %w", err)
	}
	b, err := json.MarshalIndent(diskEnvelope{
		Format: diskFormat,
		SHA256: sum,
		Report: raw,
	}, "", "  ")
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: marshaling envelope: %w", err)
	}
	// Durable atomic publish: the temp file is fsynced before the rename
	// and the directory after it, so neither a concurrent Get nor a daemon
	// restarted after a power cut can observe a torn or vanished entry. Even
	// if the fsyncs are skipped by a hostile filesystem, the checksum turns
	// a torn entry into a quarantined miss rather than a served lie.
	final := filepath.Join(s.dir, digest+".json")
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err == nil {
		_, err = tmp.Write(append(b, '\n'))
		if err == nil {
			err = tmp.Sync()
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), final)
		}
		if err == nil {
			err = syncDir(s.dir)
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: writing %s: %w", final, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) installMemory(digest string, rep *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[digest]; ok {
		el.Value.(*entry).rep = rep
		s.lru.MoveToFront(el)
		return
	}
	s.entries[digest] = s.lru.PushFront(&entry{digest: digest, rep: rep})
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry).digest)
		s.evictions.Inc()
	}
}

// Len returns the number of entries in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// ScrubReport summarizes one integrity pass over the disk tier.
type ScrubReport struct {
	// Scanned counts the entry files examined; Valid the ones that passed
	// checksum verification; Corrupt the ones quarantined to .corrupt/.
	Scanned int `json:"scanned"`
	Valid   int `json:"valid"`
	Corrupt int `json:"corrupt"`
	// TempRemoved counts orphaned put-*.tmp files swept (a Put interrupted
	// before its rename).
	TempRemoved int `json:"temp_removed"`
	// Foreign counts files that are neither entries, temp files, nor the
	// stamp marker; they are left untouched.
	Foreign int `json:"foreign"`
	// Err is the walk-level failure, if any (per-entry corruption is not an
	// error — it is the condition the scrub exists to absorb). A non-empty
	// Err flips /readyz to not-ready: the tier's health is unknown.
	Err string `json:"error,omitempty"`
}

// Scrub walks the disk tier, verifying every entry's checksum envelope:
// corrupt entries are quarantined to the .corrupt/ sidecar, orphaned temp
// files are removed, and the resulting counts are retained for LastScrub
// (surfaced by qed2d's /healthz). Open runs one scrub at startup so the
// index a daemon serves from only contains verified entries; it may also be
// called on a live store — concurrent Gets racing a quarantine simply miss.
// A store without a disk tier scrubs vacuously.
func (s *Store) Scrub() ScrubReport {
	var rep ScrubReport
	defer func() {
		s.scrubMu.Lock()
		s.lastScrub = &rep
		s.scrubMu.Unlock()
	}()
	if s.dir == "" {
		return rep
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		switch {
		case name == stampFile:
		case strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp"):
			if os.Remove(path) == nil {
				rep.TempRemoved++
			}
		case strings.HasSuffix(name, ".json") && validDigest(strings.TrimSuffix(name, ".json")):
			rep.Scanned++
			if _, err := s.loadEntry(path); err != nil && !errors.Is(err, os.ErrNotExist) {
				s.quarantineCorrupt(path)
				s.scrubRepaired.Inc()
				rep.Corrupt++
			} else if err == nil {
				rep.Valid++
			}
		default:
			rep.Foreign++
		}
	}
	return rep
}

// LastScrub returns the most recent scrub summary (ok=false before any
// scrub ran, i.e. on a memory-only store opened without a Dir).
func (s *Store) LastScrub() (ScrubReport, bool) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.lastScrub == nil {
		return ScrubReport{}, false
	}
	return *s.lastScrub, true
}

// validDigest accepts exactly the lowercase-hex SHA-256 shape Digest
// produces, keeping attacker-shaped digests out of file paths.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
