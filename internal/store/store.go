// Package store is the content-addressed report store of the qed2d analysis
// service: it maps a circuit's canonical digest (r1cs.(*System).Digest) to
// the cached report of a previous analysis, so re-submissions of the same
// circuit — the dominant traffic pattern for circomlib-derived templates —
// cost a hash lookup instead of a solver run.
//
// Keying and soundness. The digest covers the canonical form of the whole
// system (constraint-order independent, metadata-sensitive), and a store is
// opened under a configuration stamp: reports produced under different
// budgets, seed or mode are never mixed, exactly like the bench checkpoint
// header (DESIGN.md §11). Within one stamp, analysis is deterministic, so a
// cache hit returns byte-for-byte the report a fresh run would produce —
// caching can change latency, never verdicts (DESIGN.md §14).
//
// Verdict hygiene. Only decided, non-degraded reports are cacheable: every
// Unknown — whether degraded (canceled, internal-error), resource-limited
// or a genuine budget outcome — is re-analyzed on resubmission. This is the
// whole-report analogue of the solver memo-cache cacheable split
// (core/scheduler.go): a report that merely records "we gave up" must not
// be replayed as if it were a proof.
package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"qed2/internal/buildinfo"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
)

// Report is the serializable summary of one analysis, the unit the store
// caches and the jobs API returns. It carries the verdict, the
// counterexample rendered in the same shape the bench golden gate pins
// (output name, witnessed values, differing-signal names in ID order), and
// an effort summary.
type Report struct {
	Verdict  string `json:"verdict"`
	Reason   string `json:"reason,omitempty"`
	Degraded string `json:"degraded,omitempty"`
	// CEOutput/CEValues/CESignals summarize the counterexample of an unsafe
	// verdict: the differing output with its two witnessed values, and the
	// names of every signal on which the witness pair disagrees (ID order).
	CEOutput  string    `json:"ce_output,omitempty"`
	CEValues  [2]string `json:"ce_values,omitempty"`
	CESignals []string  `json:"ce_signals,omitempty"`
	// Circuit shape and analysis effort.
	Signals       int     `json:"signals"`
	Constraints   int     `json:"constraints"`
	UniqueSignals int     `json:"unique_signals"`
	Queries       int     `json:"queries"`
	SolverSteps   int64   `json:"solver_steps"`
	CacheHits     int     `json:"cache_hits"`
	DurationMS    float64 `json:"duration_ms"`
	// Version stamps the build that produced the report (informational).
	Version string `json:"version,omitempty"`
}

// FromCore summarizes a core report against its system (needed to name the
// counterexample signals).
func FromCore(rep *core.Report, sys *r1cs.System) *Report {
	out := &Report{
		Verdict:       rep.Verdict.String(),
		Reason:        rep.Reason,
		Degraded:      string(rep.Degraded),
		Signals:       rep.Stats.SignalsTotal,
		Constraints:   rep.Stats.Constraints,
		UniqueSignals: rep.Stats.UniqueTotal,
		Queries:       rep.Stats.Queries,
		SolverSteps:   rep.Stats.SolverSteps,
		CacheHits:     rep.Stats.CacheHits,
		DurationMS:    float64(rep.Stats.Duration.Microseconds()) / 1000,
		Version:       buildinfo.Get().String(),
	}
	if ce := rep.Counter; ce != nil {
		f := sys.Field()
		out.CEOutput = sys.Name(ce.Signal)
		out.CEValues = [2]string{f.String(ce.W1[ce.Signal]), f.String(ce.W2[ce.Signal])}
		for id := 1; id < sys.NumSignals(); id++ {
			if ce.W1[id] != ce.W2[id] {
				out.CESignals = append(out.CESignals, sys.Name(id))
			}
		}
	}
	return out
}

// Cacheable reports whether a report may be served from the store: only
// decided verdicts (safe/unsafe) that are not degraded. Every flavor of
// Unknown re-analyzes.
func Cacheable(r *Report) bool {
	if r == nil || r.Degraded != "" {
		return false
	}
	return r.Verdict == core.VerdictSafe.String() || r.Verdict == core.VerdictUnsafe.String()
}

// ErrUncacheable is returned by Put for reports Cacheable rejects.
var ErrUncacheable = errors.New("store: report is not cacheable (undecided or degraded)")

// Options configures Open.
type Options struct {
	// Capacity bounds the in-memory LRU tier (default 1024 entries).
	Capacity int
	// Dir, when non-empty, enables the on-disk tier: one JSON file per
	// digest, surviving restarts. Created if missing.
	Dir string
	// Stamp pins the analyzer configuration the cached reports are valid
	// for (the service uses the JSON of its checkpoint config). A disk tier
	// written under a different stamp is refused at Open, like a mismatched
	// bench checkpoint header.
	Stamp string
	// Metrics, when non-nil, receives the service.store.* counters.
	Metrics *obs.Metrics
}

// Store is the two-tier content-addressed report cache. Safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // digest -> lru element
	lru     *list.List               // front = most recently used
	dir     string

	hits, misses, puts     *obs.Counter
	evictions, diskHits    *obs.Counter
	rejectedPuts, putFails *obs.Counter
}

type entry struct {
	digest string
	rep    *Report
}

// stampFile is the disk-tier stamp marker inside Options.Dir.
const stampFile = "store_stamp.json"

// stampPayload is the JSON stored in stampFile: the configuration stamp
// plus an informational format version and producing build.
type stampPayload struct {
	Format  int    `json:"format"`
	Stamp   string `json:"stamp"`
	Version string `json:"version,omitempty"`
}

// Open creates a store. With a Dir, the disk tier's stamp is verified
// (written on first use): reports cached under a different analyzer
// configuration are refused wholesale rather than filtered per entry.
func Open(opts Options) (*Store, error) {
	s := &Store{
		cap:          opts.Capacity,
		entries:      map[string]*list.Element{},
		lru:          list.New(),
		dir:          opts.Dir,
		hits:         opts.Metrics.Counter("service.store.hits"),
		misses:       opts.Metrics.Counter("service.store.misses"),
		puts:         opts.Metrics.Counter("service.store.puts"),
		evictions:    opts.Metrics.Counter("service.store.evictions"),
		diskHits:     opts.Metrics.Counter("service.store.disk_hits"),
		rejectedPuts: opts.Metrics.Counter("service.store.rejected_puts"),
		putFails:     opts.Metrics.Counter("service.store.put_failures"),
	}
	if s.cap <= 0 {
		s.cap = 1024
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", s.dir, err)
	}
	path := filepath.Join(s.dir, stampFile)
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		payload, merr := json.Marshal(stampPayload{Format: 1, Stamp: opts.Stamp, Version: buildinfo.Get().String()})
		if merr == nil {
			merr = os.WriteFile(path, append(payload, '\n'), 0o644)
		}
		if merr != nil {
			return nil, fmt.Errorf("store: writing stamp %s: %w", path, merr)
		}
	case err != nil:
		return nil, fmt.Errorf("store: reading stamp %s: %w", path, err)
	default:
		var have stampPayload
		if err := json.Unmarshal(b, &have); err != nil {
			return nil, fmt.Errorf("store: corrupt stamp %s: %w — delete the store directory to rebuild it", path, err)
		}
		if have.Stamp != opts.Stamp {
			return nil, fmt.Errorf("store: %s was written under config stamp %s but this run uses %s — point -store-dir elsewhere or delete it", s.dir, have.Stamp, opts.Stamp)
		}
	}
	return s, nil
}

// Get looks a digest up, memory tier first, then disk. ok is false on a
// miss — including when fault injection (site service.store.get) poisons
// the lookup: a store fault degrades to a re-analysis, never to a wrong or
// missing verdict.
func (s *Store) Get(digest string) (*Report, bool) {
	if faultinject.Enabled() {
		if f := faultinject.Check("service.store.get"); f.Err != "" || f.Deadline {
			s.misses.Inc()
			return nil, false
		}
	}
	s.mu.Lock()
	if el, ok := s.entries[digest]; ok {
		s.lru.MoveToFront(el)
		rep := el.Value.(*entry).rep
		s.mu.Unlock()
		s.hits.Inc()
		return rep, true
	}
	s.mu.Unlock()
	if rep, ok := s.diskGet(digest); ok {
		s.installMemory(digest, rep)
		s.diskHits.Inc()
		s.hits.Inc()
		return rep, true
	}
	s.misses.Inc()
	return nil, false
}

func (s *Store) diskGet(digest string) (*Report, bool) {
	if s.dir == "" || !validDigest(digest) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, digest+".json"))
	if err != nil {
		return nil, false
	}
	rep := &Report{}
	if err := json.Unmarshal(b, rep); err != nil {
		return nil, false
	}
	// Hygiene is enforced on the read path too: a degraded or undecided
	// report on disk (hand-edited, or written by a buggy older build) is
	// treated as absent, mirroring the Put-side Cacheable gate.
	if !Cacheable(rep) {
		return nil, false
	}
	return rep, true
}

// Put caches a report under a digest. Uncacheable reports (any Unknown, or
// a set Degraded flag) are refused with ErrUncacheable — the cache-verdict
// hygiene gate. Disk-tier write failures are reported but leave the memory
// tier updated.
func (s *Store) Put(digest string, rep *Report) error {
	if !Cacheable(rep) {
		s.rejectedPuts.Inc()
		return ErrUncacheable
	}
	if faultinject.Enabled() {
		if f := faultinject.Check("service.store.put"); f.Err != "" || f.Deadline {
			s.putFails.Inc()
			return fmt.Errorf("store: injected fault: %s", f.Err)
		}
	}
	s.installMemory(digest, rep)
	s.puts.Inc()
	if s.dir == "" {
		return nil
	}
	if !validDigest(digest) {
		return fmt.Errorf("store: refusing to write non-hex digest %q to disk", digest)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: marshaling report: %w", err)
	}
	// Atomic publish: never expose a torn report file to a concurrent Get
	// or a restarted daemon.
	final := filepath.Join(s.dir, digest+".json")
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err == nil {
		_, err = tmp.Write(append(b, '\n'))
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), final)
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	if err != nil {
		s.putFails.Inc()
		return fmt.Errorf("store: writing %s: %w", final, err)
	}
	return nil
}

func (s *Store) installMemory(digest string, rep *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[digest]; ok {
		el.Value.(*entry).rep = rep
		s.lru.MoveToFront(el)
		return
	}
	s.entries[digest] = s.lru.PushFront(&entry{digest: digest, rep: rep})
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry).digest)
		s.evictions.Inc()
	}
}

// Len returns the number of entries in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// validDigest accepts exactly the lowercase-hex SHA-256 shape Digest
// produces, keeping attacker-shaped digests out of file paths.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
