package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
)

func safeReport(tag string) *Report {
	return &Report{Verdict: "safe", Reason: tag, Signals: 3, Constraints: 2}
}

func digestN(n byte) string {
	return strings.Repeat("0", 62) + strings.ToLower(string([]byte{hexDigit(n >> 4), hexDigit(n & 15)}))
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func TestStoreLRUEvictsOldest(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Open(Options{Capacity: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(digestN(i), safeReport("r")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(digestN(1)); ok {
		t.Fatal("oldest entry survived beyond capacity")
	}
	for i := byte(2); i <= 3; i++ {
		if _, ok := s.Get(digestN(i)); !ok {
			t.Fatalf("entry %d evicted early", i)
		}
	}
	c := m.Counters()
	if c["service.store.evictions"] != 1 || c["service.store.hits"] != 2 || c["service.store.misses"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	// Touching 2 then inserting must evict 3, not 2.
	s.Get(digestN(2))
	s.Put(digestN(4), safeReport("r"))
	if _, ok := s.Get(digestN(2)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := s.Get(digestN(3)); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestStoreRejectsUncacheableReports(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Open(Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	uncacheable := []*Report{
		nil,
		{Verdict: "unknown", Reason: "analysis budget exhausted"},
		{Verdict: "unknown", Reason: "canceled", Degraded: "canceled"},
		{Verdict: "unknown", Reason: "internal error: boom", Degraded: "internal-error"},
		// Defensive: a decided verdict with a (contract-violating) degraded
		// flag must still be refused.
		{Verdict: "safe", Degraded: "canceled"},
	}
	for i, rep := range uncacheable {
		if err := s.Put(digestN(byte(i+1)), rep); !errors.Is(err, ErrUncacheable) {
			t.Errorf("report %d: Put = %v, want ErrUncacheable", i, err)
		}
		if _, ok := s.Get(digestN(byte(i + 1))); ok {
			t.Errorf("report %d: uncacheable report served back", i)
		}
	}
	if got := m.Counters()["service.store.rejected_puts"]; got != int64(len(uncacheable)) {
		t.Fatalf("rejected_puts = %d, want %d", got, len(uncacheable))
	}
	if err := s.Put(digestN(200), &Report{Verdict: "unsafe", CEOutput: "out"}); err != nil {
		t.Fatalf("decided unsafe verdict refused: %v", err)
	}
}

func TestStoreDiskTierRoundTripAndStamp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: `{"seed":1}`})
	if err != nil {
		t.Fatal(err)
	}
	want := safeReport("persisted")
	if err := s.Put(digestN(9), want); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir and stamp serves the report from disk.
	m := obs.NewMetrics()
	s2, err := Open(Options{Dir: dir, Stamp: `{"seed":1}`, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(digestN(9))
	if !ok || got.Reason != "persisted" {
		t.Fatalf("disk round trip failed: %+v ok=%v", got, ok)
	}
	if c := m.Counters(); c["service.store.disk_hits"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	// A mismatched stamp is refused wholesale.
	if _, err := Open(Options{Dir: dir, Stamp: `{"seed":2}`}); err == nil {
		t.Fatal("mismatched stamp accepted")
	}
}

func TestStoreDiskHygieneOnReadPath(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// A bare (unenveloped) report planted directly in the disk tier fails
	// envelope verification and must be treated as absent — and moved to
	// quarantine rather than re-verified on every read.
	planted := filepath.Join(dir, digestN(7)+".json")
	if err := os.WriteFile(planted, []byte(`{"verdict":"unknown","degraded":"canceled"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestN(7)); ok {
		t.Fatal("unverifiable report served from disk")
	}
	if _, err := os.Stat(planted); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unverifiable entry left in place: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".corrupt", digestN(7)+".json")); err != nil {
		t.Fatalf("unverifiable entry not quarantined: %v", err)
	}
	// A torn write (file truncated mid-entry) likewise reads as a miss.
	if err := os.WriteFile(planted, []byte(`{"format":2,"sha256":"ab`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestN(7)); ok {
		t.Fatal("torn report file served from disk")
	}
}

// TestStoreCorruptEntryScrubbedToMiss is the acceptance check for store
// integrity: flipping bytes of a disk entry turns the next Get into a miss
// with the damaged file quarantined — never a served lie, never a fatal
// error — and a fresh Put heals the digest.
func TestStoreCorruptEntryScrubbedToMiss(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	s, err := Open(Options{Dir: dir, Stamp: "x", Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(9), safeReport("good")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, digestN(9)+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the report payload (past the envelope preamble).
	mut := append([]byte(nil), b...)
	mut[len(mut)/2] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir reads from disk (its memory tier is
	// empty): the flipped entry must verify-fail into a miss.
	s2, err := Open(Options{Dir: dir, Stamp: "x", Metrics: obs.NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := s2.Get(digestN(9)); ok {
		t.Fatalf("corrupt entry served: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, ".corrupt", digestN(9)+".json")); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// The digest heals on the next Put + Get cycle.
	if err := s2.Put(digestN(9), safeReport("healed")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := s3.Get(digestN(9)); !ok || rep.Reason != "healed" {
		t.Fatalf("healed entry not served: %+v ok=%v", rep, ok)
	}
}

// TestStoreStartupScrub verifies the Open-time integrity pass: corrupt
// entries are quarantined, orphaned temp files swept, valid entries
// retained, and the counts surfaced through LastScrub.
func TestStoreStartupScrub(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(1), safeReport("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(2), safeReport("b")); err != nil {
		t.Fatal(err)
	}
	// Corrupt entry 2, plant an orphaned temp file and a foreign file.
	path2 := filepath.Join(dir, digestN(2)+".json")
	b, _ := os.ReadFile(path2)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path2, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "put-orphan.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	s2, err := Open(Options{Dir: dir, Stamp: "x", Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := s2.LastScrub()
	if !ok {
		t.Fatal("no scrub recorded after Open with a disk tier")
	}
	if rep.Scanned != 2 || rep.Valid != 1 || rep.Corrupt != 1 || rep.TempRemoved != 1 || rep.Foreign != 1 || rep.Err != "" {
		t.Fatalf("scrub = %+v", rep)
	}
	if c := m.Counters(); c["service.store.corrupt_quarantined"] != 1 || c["service.store.scrub_repaired"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	if _, ok := s2.Get(digestN(1)); !ok {
		t.Fatal("valid entry lost to scrub")
	}
	if _, ok := s2.Get(digestN(2)); ok {
		t.Fatal("quarantined entry still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "put-orphan.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan temp file survived the scrub")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatal("foreign file removed by the scrub")
	}
}

// TestStoreRefusesOldEntryFormat: a disk tier stamped with the pre-checksum
// entry format is refused wholesale at Open (its entries cannot be
// verified), with a message telling the operator what to do.
func TestStoreRefusesOldEntryFormat(t *testing.T) {
	dir := t.TempDir()
	stamp := `{"format":1,"stamp":"x"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "store_stamp.json"), []byte(stamp), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Options{Dir: dir, Stamp: "x"})
	if err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("old-format tier accepted: %v", err)
	}
}

// TestStoreCorruptFaultInjection: the store.corrupt chaos site flips a byte
// of what diskGet read, driving the genuine verification-failure path.
func TestStoreCorruptFaultInjection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(3), safeReport("r")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "store.corrupt", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()
	// Fresh store: memory tier empty, so the Get goes to disk and the
	// injected bit flip must degrade it to a miss.
	s2, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(digestN(3)); ok {
		t.Fatal("injected corruption did not degrade to a miss")
	}
}

func TestStoreFaultInjectionDegradesToMiss(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(5), safeReport("r")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "service.store.get", Kind: faultinject.KindError, Every: 1},
		{Site: "service.store.put", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()
	if _, ok := s.Get(digestN(5)); ok {
		t.Fatal("injected get fault did not degrade to a miss")
	}
	if err := s.Put(digestN(6), safeReport("r")); err == nil {
		t.Fatal("injected put fault not surfaced")
	}
	faultinject.Disable()
	if _, ok := s.Get(digestN(5)); !ok {
		t.Fatal("entry lost after fault injection disabled")
	}
	if _, ok := s.Get(digestN(6)); ok {
		t.Fatal("fault-poisoned put was applied")
	}
}

func TestFromCoreCacheableSplit(t *testing.T) {
	rep := &core.Report{Verdict: core.VerdictSafe}
	rep.Stats.SignalsTotal = 4
	rep.Stats.Duration = 1500 * time.Microsecond
	sr := FromCore(rep, nil)
	if !Cacheable(sr) || sr.Verdict != "safe" || sr.Signals != 4 {
		t.Fatalf("FromCore(safe) = %+v", sr)
	}
	if sr.Version == "" {
		t.Fatal("report not version-stamped")
	}
	deg := &core.Report{Verdict: core.VerdictUnknown, Reason: "canceled", Degraded: core.DegradedCanceled}
	if Cacheable(FromCore(deg, nil)) {
		t.Fatal("degraded report marked cacheable")
	}
}
