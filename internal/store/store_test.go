package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
)

func safeReport(tag string) *Report {
	return &Report{Verdict: "safe", Reason: tag, Signals: 3, Constraints: 2}
}

func digestN(n byte) string {
	return strings.Repeat("0", 62) + strings.ToLower(string([]byte{hexDigit(n >> 4), hexDigit(n & 15)}))
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func TestStoreLRUEvictsOldest(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Open(Options{Capacity: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(digestN(i), safeReport("r")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(digestN(1)); ok {
		t.Fatal("oldest entry survived beyond capacity")
	}
	for i := byte(2); i <= 3; i++ {
		if _, ok := s.Get(digestN(i)); !ok {
			t.Fatalf("entry %d evicted early", i)
		}
	}
	c := m.Counters()
	if c["service.store.evictions"] != 1 || c["service.store.hits"] != 2 || c["service.store.misses"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	// Touching 2 then inserting must evict 3, not 2.
	s.Get(digestN(2))
	s.Put(digestN(4), safeReport("r"))
	if _, ok := s.Get(digestN(2)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := s.Get(digestN(3)); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestStoreRejectsUncacheableReports(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Open(Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	uncacheable := []*Report{
		nil,
		{Verdict: "unknown", Reason: "analysis budget exhausted"},
		{Verdict: "unknown", Reason: "canceled", Degraded: "canceled"},
		{Verdict: "unknown", Reason: "internal error: boom", Degraded: "internal-error"},
		// Defensive: a decided verdict with a (contract-violating) degraded
		// flag must still be refused.
		{Verdict: "safe", Degraded: "canceled"},
	}
	for i, rep := range uncacheable {
		if err := s.Put(digestN(byte(i+1)), rep); !errors.Is(err, ErrUncacheable) {
			t.Errorf("report %d: Put = %v, want ErrUncacheable", i, err)
		}
		if _, ok := s.Get(digestN(byte(i + 1))); ok {
			t.Errorf("report %d: uncacheable report served back", i)
		}
	}
	if got := m.Counters()["service.store.rejected_puts"]; got != int64(len(uncacheable)) {
		t.Fatalf("rejected_puts = %d, want %d", got, len(uncacheable))
	}
	if err := s.Put(digestN(200), &Report{Verdict: "unsafe", CEOutput: "out"}); err != nil {
		t.Fatalf("decided unsafe verdict refused: %v", err)
	}
}

func TestStoreDiskTierRoundTripAndStamp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: `{"seed":1}`})
	if err != nil {
		t.Fatal(err)
	}
	want := safeReport("persisted")
	if err := s.Put(digestN(9), want); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir and stamp serves the report from disk.
	m := obs.NewMetrics()
	s2, err := Open(Options{Dir: dir, Stamp: `{"seed":1}`, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(digestN(9))
	if !ok || got.Reason != "persisted" {
		t.Fatalf("disk round trip failed: %+v ok=%v", got, ok)
	}
	if c := m.Counters(); c["service.store.disk_hits"] != 1 {
		t.Fatalf("counters = %v", c)
	}
	// A mismatched stamp is refused wholesale.
	if _, err := Open(Options{Dir: dir, Stamp: `{"seed":2}`}); err == nil {
		t.Fatal("mismatched stamp accepted")
	}
}

func TestStoreDiskHygieneOnReadPath(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Stamp: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// A degraded report planted directly in the disk tier (bypassing Put)
	// must be treated as absent.
	planted := filepath.Join(dir, digestN(7)+".json")
	if err := os.WriteFile(planted, []byte(`{"verdict":"unknown","degraded":"canceled"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestN(7)); ok {
		t.Fatal("degraded report served from disk")
	}
	if err := os.WriteFile(planted, []byte(`{"verdict":"safe"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestN(7)); ok {
		t.Fatal("torn report file served from disk")
	}
}

func TestStoreFaultInjectionDegradesToMiss(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestN(5), safeReport("r")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "service.store.get", Kind: faultinject.KindError, Every: 1},
		{Site: "service.store.put", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()
	if _, ok := s.Get(digestN(5)); ok {
		t.Fatal("injected get fault did not degrade to a miss")
	}
	if err := s.Put(digestN(6), safeReport("r")); err == nil {
		t.Fatal("injected put fault not surfaced")
	}
	faultinject.Disable()
	if _, ok := s.Get(digestN(5)); !ok {
		t.Fatal("entry lost after fault injection disabled")
	}
	if _, ok := s.Get(digestN(6)); ok {
		t.Fatal("fault-poisoned put was applied")
	}
}

func TestFromCoreCacheableSplit(t *testing.T) {
	rep := &core.Report{Verdict: core.VerdictSafe}
	rep.Stats.SignalsTotal = 4
	rep.Stats.Duration = 1500 * time.Microsecond
	sr := FromCore(rep, nil)
	if !Cacheable(sr) || sr.Verdict != "safe" || sr.Signals != 4 {
		t.Fatalf("FromCore(safe) = %+v", sr)
	}
	if sr.Version == "" {
		t.Fatal("report not version-stamped")
	}
	deg := &core.Report{Verdict: core.VerdictUnknown, Reason: "canceled", Degraded: core.DegradedCanceled}
	if Cacheable(FromCore(deg, nil)) {
		t.Fatal("degraded report marked cacheable")
	}
}
