package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// textTable renders rows with aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

func (t *textTable) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// workersNote renders the query-worker configuration of a result set for
// table captions, so regenerated tables record the parallelism they were
// measured under. Empty when the result set carries no reports.
func workersNote(results []Result) string {
	for _, r := range results {
		if r.Report != nil {
			return fmt.Sprintf(" (query workers: %d)", r.Report.Stats.Workers)
		}
	}
	return ""
}

// groupByCategory partitions results by instance category, preserving suite
// category order.
func groupByCategory(results []Result) ([]string, map[string][]Result) {
	var order []string
	groups := map[string][]Result{}
	for _, r := range results {
		c := r.Instance.Category
		if _, ok := groups[c]; !ok {
			order = append(order, c)
		}
		groups[c] = append(groups[c], r)
	}
	return order, groups
}

// Table1 regenerates the benchmark-statistics table: per category, the
// number of circuits and the signal/constraint size distribution.
func Table1(results []Result) string {
	t := &textTable{header: []string{
		"Category", "Circuits", "Signals(avg)", "Signals(max)", "Constraints(avg)", "Constraints(max)",
	}}
	order, groups := groupByCategory(results)
	totalT := &Tally{}
	var allSig, allCon, maxSig, maxCon int
	for _, cat := range order {
		rs := groups[cat]
		var sig, con, mxs, mxc int
		for _, r := range rs {
			sig += r.System.Signals
			con += r.System.Constraints
			if r.System.Signals > mxs {
				mxs = r.System.Signals
			}
			if r.System.Constraints > mxc {
				mxc = r.System.Constraints
			}
			totalT.Add(r)
		}
		allSig += sig
		allCon += con
		if mxs > maxSig {
			maxSig = mxs
		}
		if mxc > maxCon {
			maxCon = mxc
		}
		n := len(rs)
		t.add(cat, fmt.Sprint(n),
			fmt.Sprintf("%.1f", float64(sig)/float64(n)), fmt.Sprint(mxs),
			fmt.Sprintf("%.1f", float64(con)/float64(n)), fmt.Sprint(mxc))
	}
	n := len(results)
	t.add("TOTAL", fmt.Sprint(n),
		fmt.Sprintf("%.1f", float64(allSig)/float64(n)), fmt.Sprint(maxSig),
		fmt.Sprintf("%.1f", float64(allCon)/float64(n)), fmt.Sprint(maxCon))
	return "Table 1: benchmark statistics\n\n" + t.String()
}

// Table2 regenerates the main results table: per-category verdicts and
// solve rate for the full QED² configuration. The abstract commits to a
// 70% overall solve rate on the authors' corpus; see EXPERIMENTS.md for the
// paper-vs-measured discussion.
func Table2(results []Result) string {
	t := &textTable{header: []string{
		"Category", "N", "Safe", "Unsafe", "Unknown", "Solved%", "AvgTime(ms)", "Queries",
	}}
	order, groups := groupByCategory(results)
	var tot Tally
	var totTime time.Duration
	var totQ int
	for _, cat := range order {
		rs := groups[cat]
		var ct Tally
		var dt time.Duration
		var q int
		for _, r := range rs {
			ct.Add(r)
			dt += r.AnalyzeTime
			if r.Report != nil {
				q += r.Report.Stats.Queries
			}
		}
		tot.Total += ct.Total
		tot.Safe += ct.Safe
		tot.Unsafe += ct.Unsafe
		tot.Unknown += ct.Unknown
		totTime += dt
		totQ += q
		t.add(cat, fmt.Sprint(ct.Total), fmt.Sprint(ct.Safe), fmt.Sprint(ct.Unsafe),
			fmt.Sprint(ct.Unknown), fmt.Sprintf("%.1f", ct.SolvedPct()),
			ms(dt/time.Duration(len(rs))), fmt.Sprint(q))
	}
	t.add("TOTAL", fmt.Sprint(tot.Total), fmt.Sprint(tot.Safe), fmt.Sprint(tot.Unsafe),
		fmt.Sprint(tot.Unknown), fmt.Sprintf("%.1f", tot.SolvedPct()),
		ms(totTime/time.Duration(max(1, tot.Total))), fmt.Sprint(totQ))
	return "Table 2: main results (full QED² configuration)" + workersNote(results) + "\n\n" + t.String()
}

// Table3 regenerates the tool-comparison table across configurations
// (QED² vs the propagation-only and monolithic-SMT baselines).
func Table3(byMode map[string][]Result, order []string) string {
	t := &textTable{header: []string{
		"Configuration", "Safe", "Unsafe", "Unknown", "Solved", "Solved%", "TotalTime(s)",
	}}
	note := ""
	for _, mode := range order {
		if note == "" {
			note = workersNote(byMode[mode])
		}
		rs := byMode[mode]
		tal := TallyOf(rs)
		var dt time.Duration
		for _, r := range rs {
			dt += r.AnalyzeTime
		}
		t.add(mode, fmt.Sprint(tal.Safe), fmt.Sprint(tal.Unsafe), fmt.Sprint(tal.Unknown),
			fmt.Sprintf("%d/%d", tal.Solved(), tal.Total),
			fmt.Sprintf("%.1f", tal.SolvedPct()),
			fmt.Sprintf("%.2f", dt.Seconds()))
	}
	return "Table 3: comparison against baselines" + note + "\n\n" + t.String()
}

// Table4 regenerates the previously-unknown-vulnerabilities table: the
// flagged circuits of the vulnerability set with their checked witness
// pairs.
func Table4(results []Result) string {
	t := &textTable{header: []string{
		"#", "Circuit", "Category", "Verdict", "Output", "Witness1", "Witness2",
	}}
	i := 0
	for _, r := range results {
		if !r.Instance.Vuln {
			continue
		}
		i++
		verdict, output, v1, v2 := "-", "-", "-", "-"
		if r.Report != nil {
			verdict = r.Report.Verdict.String()
			if ce := r.Report.Counter; ce != nil {
				output = r.CEOutput
				v1 = r.CEVal1
				v2 = r.CEVal2
			}
		}
		t.add(fmt.Sprint(i), r.Instance.Name, r.Instance.Category, verdict, output, v1, v2)
	}
	return "Table 4: previously-unknown vulnerabilities (checked witness pairs)\n\n" + t.String()
}

// Figure1 regenerates the cactus plot: for each configuration, the
// cumulative time to solve the k-th easiest instance. Printed as one
// series per configuration.
func Figure1(byMode map[string][]Result, order []string) string {
	var b strings.Builder
	b.WriteString("Figure 1: cactus plot — instances solved vs cumulative time\n")
	b.WriteString("(series: solved-count, cumulative-seconds)\n\n")
	for _, mode := range order {
		rs := byMode[mode]
		var times []time.Duration
		for _, r := range rs {
			if r.Solved() {
				times = append(times, r.AnalyzeTime)
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		fmt.Fprintf(&b, "%s:", mode)
		var cum time.Duration
		step := len(times)/16 + 1
		for i, d := range times {
			cum += d
			if (i+1)%step == 0 || i == len(times)-1 {
				fmt.Fprintf(&b, " (%d, %.3fs)", i+1, cum.Seconds())
			}
		}
		fmt.Fprintf(&b, "   [solved %d/%d]\n", len(times), len(rs))
	}
	return b.String()
}

// Figure2 regenerates the attribution ablation: as the slice radius k
// varies, how many uniqueness facts come from propagation vs SMT queries,
// and how many instances are decided.
func Figure2(byRadius map[int][]Result) string {
	t := &textTable{header: []string{
		"Radius", "Solved", "Solved%", "PropFacts", "SMTFacts", "Queries", "TotalTime(s)",
	}}
	var radii []int
	for k := range byRadius {
		radii = append(radii, k)
	}
	sort.Ints(radii)
	for _, k := range radii {
		rs := byRadius[k]
		tal := TallyOf(rs)
		var prop, smtFacts, queries int
		var dt time.Duration
		for _, r := range rs {
			if r.Report != nil {
				prop += r.Report.Stats.PropagationUnique
				smtFacts += r.Report.Stats.SMTUnique
				queries += r.Report.Stats.Queries
			}
			dt += r.AnalyzeTime
		}
		t.add(fmt.Sprint(k), fmt.Sprintf("%d/%d", tal.Solved(), tal.Total),
			fmt.Sprintf("%.1f", tal.SolvedPct()),
			fmt.Sprint(prop), fmt.Sprint(smtFacts), fmt.Sprint(queries),
			fmt.Sprintf("%.2f", dt.Seconds()))
	}
	return "Figure 2: propagation/SMT attribution vs slice radius\n\n" + t.String()
}

// Figure3 regenerates the scalability scatter: per-instance constraint
// count against analysis time.
func Figure3(results []Result) string {
	t := &textTable{header: []string{"Circuit", "Constraints", "Signals", "Time(ms)", "Verdict"}}
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].System.Constraints < sorted[j].System.Constraints
	})
	for _, r := range sorted {
		v := "error"
		if r.Report != nil {
			v = r.Report.Verdict.String()
		}
		t.add(r.Instance.Name, fmt.Sprint(r.System.Constraints), fmt.Sprint(r.System.Signals),
			ms(r.AnalyzeTime), v)
	}
	return "Figure 3: analysis time vs circuit size (scatter data)\n\n" + t.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure4 regenerates the inference-rule ablation: the full rule set
// versus disabling the binary-decomposition rule versus disabling all
// propagation rules (sliced SMT only). Shows how much of the corpus each
// layer of "lightweight uniqueness inference" carries.
func Figure4(byConfig map[string][]Result, order []string) string {
	t := &textTable{header: []string{
		"Rules", "Solved", "Solved%", "PropFacts", "BitsFacts", "SMTFacts", "Queries", "TotalTime(s)",
	}}
	for _, name := range order {
		rs := byConfig[name]
		tal := TallyOf(rs)
		var prop, bits, smtFacts, queries int
		var dt time.Duration
		for _, r := range rs {
			if r.Report != nil {
				prop += r.Report.Stats.PropagationUnique
				bits += r.Report.Stats.BitsUnique
				smtFacts += r.Report.Stats.SMTUnique
				queries += r.Report.Stats.Queries
			}
			dt += r.AnalyzeTime
		}
		t.add(name, fmt.Sprintf("%d/%d", tal.Solved(), tal.Total),
			fmt.Sprintf("%.1f", tal.SolvedPct()),
			fmt.Sprint(prop), fmt.Sprint(bits), fmt.Sprint(smtFacts),
			fmt.Sprint(queries), fmt.Sprintf("%.2f", dt.Seconds()))
	}
	return "Figure 4: inference-rule ablation\n\n" + t.String()
}
