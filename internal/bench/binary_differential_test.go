package bench

import (
	"reflect"
	"testing"

	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/r1cs"
)

// TestBinaryDifferentialSuite is the whole-suite differential gate for the
// binary .r1cs reader: every suite instance is compiled once, then analyzed
// both as the compiled system and as its binary+sym round trip
// (MarshalBinary/MarshalSym → ParseBinaryWithSym). The binary format drops
// source locations, constraint tags, and def attribution, so this run pins
// the design claim that those are presentation metadata only: verdicts,
// reasons, and counterexample summaries (output name, witnessed values,
// full differing-signal set) must be byte-identical instance by instance.
func TestBinaryDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run skipped with -short")
	}
	insts := Suite()
	binInsts := make([]Instance, len(insts))
	for i, in := range insts {
		orig := in
		in.Gen = func() (*circom.Program, error) {
			prog, err := orig.Compile()
			if err != nil {
				return nil, err
			}
			sys, err := r1cs.ParseBinaryWithSym(prog.System.MarshalBinary(), prog.System.MarshalSym())
			if err != nil {
				return nil, err
			}
			return circom.ProgramFromSystem(sys, prog.MainTemplate), nil
		}
		binInsts[i] = in
	}
	cfg := core.Config{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1, Workers: 1}
	direct := Run(insts, &RunOptions{Config: cfg})
	viaBinary := Run(binInsts, &RunOptions{Config: cfg})

	for i := range direct {
		a, b := direct[i], viaBinary[i]
		name := a.Instance.Name
		if (a.CompileErr == nil) != (b.CompileErr == nil) {
			t.Errorf("%s: compile outcome differs: %v vs %v", name, a.CompileErr, b.CompileErr)
			continue
		}
		if a.Report == nil || b.Report == nil {
			continue
		}
		if a.Report.Verdict != b.Report.Verdict || a.Report.Reason != b.Report.Reason {
			t.Errorf("%s: verdict differs: direct (%v, %q), via binary (%v, %q)",
				name, a.Report.Verdict, a.Report.Reason, b.Report.Verdict, b.Report.Reason)
		}
		if a.CEOutput != b.CEOutput || a.CEVal1 != b.CEVal1 || a.CEVal2 != b.CEVal2 ||
			!reflect.DeepEqual(a.CEDiffers, b.CEDiffers) {
			t.Errorf("%s: counterexample summary differs:\ndirect     %s=%s/%s %v\nvia binary %s=%s/%s %v",
				name, a.CEOutput, a.CEVal1, a.CEVal2, a.CEDiffers, b.CEOutput, b.CEVal1, b.CEVal2, b.CEDiffers)
		}
	}
}

// TestBinaryRoundTripSuiteStructure is the cheap (short-mode) half of the
// differential gate: for every suite instance the binary+sym round trip
// must reproduce the exact signal table — IDs, names, kinds, hint flags —
// and constraint count, which is what makes the analysis inputs identical.
func TestBinaryRoundTripSuiteStructure(t *testing.T) {
	for _, in := range Suite() {
		prog, err := in.Compile()
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		sys := prog.System
		got, err := r1cs.ParseBinaryWithSym(sys.MarshalBinary(), sys.MarshalSym())
		if err != nil {
			t.Fatalf("%s: binary round trip: %v", in.Name, err)
		}
		if got.NumSignals() != sys.NumSignals() || got.NumConstraints() != sys.NumConstraints() {
			t.Errorf("%s: shape changed: %d/%d signals, %d/%d constraints", in.Name,
				got.NumSignals(), sys.NumSignals(), got.NumConstraints(), sys.NumConstraints())
			continue
		}
		for id := 0; id < sys.NumSignals(); id++ {
			want, g := sys.Signal(id), got.Signal(id)
			if want.Name != g.Name || want.Kind != g.Kind || want.Hinted != g.Hinted {
				t.Errorf("%s: signal %d changed: got (%s,%s,hint=%v), want (%s,%s,hint=%v)",
					in.Name, id, g.Name, g.Kind, g.Hinted, want.Name, want.Kind, want.Hinted)
				break
			}
		}
	}
}
