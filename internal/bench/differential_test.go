package bench

import (
	"reflect"
	"testing"

	"qed2/internal/core"
	"qed2/internal/obs"
)

// TestIncrementalDifferentialSuite is the whole-suite differential gate for
// incremental slice solving: every instance is analyzed twice, once with
// the shared-base/learned-fact machinery disabled and once enabled, at the
// pinned golden budgets but with no wall-clock timeout (outcomes are then
// fully deterministic, bounded by GlobalSteps alone). Verdicts, reasons and
// counterexample summaries must be byte-identical instance by instance, and
// the enabled pass must demonstrably reuse base states — otherwise the
// comparison is vacuous.
func TestIncrementalDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run skipped with -short")
	}
	insts := Suite()
	run := func(disable bool) ([]Result, *obs.Metrics) {
		reg := obs.NewMetrics()
		cfg := core.Config{
			QuerySteps:         20_000,
			GlobalSteps:        400_000,
			Seed:               1,
			Workers:            1,
			DisableIncremental: disable,
			Metrics:            reg,
		}
		return Run(insts, &RunOptions{Config: cfg, Metrics: reg}), reg
	}
	off, offReg := run(true)
	on, onReg := run(false)

	if len(off) != len(on) {
		t.Fatalf("result counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		a, b := off[i], on[i]
		name := a.Instance.Name
		if (a.CompileErr == nil) != (b.CompileErr == nil) {
			t.Errorf("%s: compile outcome differs", name)
			continue
		}
		if a.Report == nil || b.Report == nil {
			continue
		}
		if a.Report.Verdict != b.Report.Verdict || a.Report.Reason != b.Report.Reason {
			t.Errorf("%s: verdict differs: disabled (%v, %q), enabled (%v, %q)",
				name, a.Report.Verdict, a.Report.Reason, b.Report.Verdict, b.Report.Reason)
		}
		if a.CEOutput != b.CEOutput || a.CEVal1 != b.CEVal1 || a.CEVal2 != b.CEVal2 ||
			!reflect.DeepEqual(a.CEDiffers, b.CEDiffers) {
			t.Errorf("%s: counterexample summary differs:\ndisabled %s=%s/%s %v\nenabled  %s=%s/%s %v",
				name, a.CEOutput, a.CEVal1, a.CEVal2, a.CEDiffers, b.CEOutput, b.CEVal1, b.CEVal2, b.CEDiffers)
		}
		if !reflect.DeepEqual(a.Report.Counter, b.Report.Counter) {
			t.Errorf("%s: counterexample witnesses differ", name)
		}
	}

	if v := offReg.Counter("smt.incremental.reuses").Value(); v != 0 {
		t.Errorf("disabled pass recorded %d incremental reuses", v)
	}
	if v := onReg.Counter("smt.incremental.reuses").Value(); v == 0 {
		t.Error("enabled pass recorded no incremental reuses — differential check is vacuous")
	}
	saved := offReg.Counter("smt.steps").Value() - onReg.Counter("smt.steps").Value()
	t.Logf("suite steps: disabled %d, enabled %d (%d saved; %d reuses, %d batch groups, %d fallbacks)",
		offReg.Counter("smt.steps").Value(), onReg.Counter("smt.steps").Value(), saved,
		onReg.Counter("smt.incremental.reuses").Value(),
		onReg.Counter("core.batch.groups").Value(),
		onReg.Counter("core.batch.fallbacks").Value())

	// Lint findings are produced by the static pass, which the incremental
	// solver must not influence at all.
	f1, err1 := CollectFindings(insts)
	f2, err2 := CollectFindings(insts)
	if err1 != nil || err2 != nil {
		t.Fatalf("collect findings: %v / %v", err1, err2)
	}
	if diffs := DiffFindings(f1, f2); len(diffs) != 0 {
		t.Errorf("lint findings unstable across runs: %v", diffs)
	}
}
