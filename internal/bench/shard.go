package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Deterministic sharding for CI: `qed2bench -shard i/n` runs every
// instance whose index in the assembled run list (suite order, then corpus
// manifest order) is congruent to i-1 mod n. The partition is a pure
// function of the instance list, so n shard invocations cover each
// instance exactly once, and because golden snapshots are keyed and sorted
// by instance name, merging the n per-shard snapshots reproduces the
// unsharded snapshot byte for byte.

// ParseShard parses an "i/n" shard selector (1-based index).
func ParseShard(s string) (index, total int, err error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bench: shard %q: want i/n, e.g. 2/4", s)
	}
	index, err = strconv.Atoi(lhs)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: shard %q: bad index: %v", s, err)
	}
	total, err = strconv.Atoi(rhs)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: shard %q: bad total: %v", s, err)
	}
	if total < 1 || index < 1 || index > total {
		return 0, 0, fmt.Errorf("bench: shard %q: need 1 <= i <= n", s)
	}
	return index, total, nil
}

// ShardInstances returns the index-th of total interleaved slices of
// insts (1-based). Interleaving (index mod total) rather than chunking
// balances the expensive suite head and the cheap corpus tail across legs.
func ShardInstances(insts []Instance, index, total int) []Instance {
	var out []Instance
	for i := index - 1; i < len(insts); i += total {
		out = append(out, insts[i])
	}
	return out
}

// MergeGolden recombines per-shard golden snapshots into one. All parts
// must carry the same analyzer configuration and disjoint instance names;
// the merged file is sorted by name, making the merge of a complete shard
// set byte-identical to an unsharded snapshot of the same run list.
func MergeGolden(parts []*GoldenFile) (*GoldenFile, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bench: merge: no shard files")
	}
	merged := &GoldenFile{Config: parts[0].Config}
	seen := map[string]int{}
	for i, p := range parts {
		if p.Config != merged.Config {
			return nil, fmt.Errorf("bench: merge: shard %d config %+v differs from shard 0 config %+v",
				i, p.Config, merged.Config)
		}
		for _, v := range p.Verdicts {
			if prev, dup := seen[v.Name]; dup {
				return nil, fmt.Errorf("bench: merge: instance %q appears in shards %d and %d — overlapping shard runs",
					v.Name, prev, i)
			}
			seen[v.Name] = i
			merged.Verdicts = append(merged.Verdicts, v)
		}
	}
	sort.Slice(merged.Verdicts, func(i, j int) bool {
		return merged.Verdicts[i].Name < merged.Verdicts[j].Name
	})
	return merged, nil
}

// Restrict returns a copy of g containing only the named instances, in the
// same sorted order. Gates that run a subset of the golden population (the
// service replay test, a sharded leg before merging) diff against the
// restricted file so DiffGolden's missing-instance check applies to the
// subset actually run.
func (g *GoldenFile) Restrict(names map[string]bool) *GoldenFile {
	out := &GoldenFile{Config: g.Config}
	for _, v := range g.Verdicts {
		if names[v.Name] {
			out.Verdicts = append(out.Verdicts, v)
		}
	}
	return out
}

// InstanceNames returns the name set of a run list, for Restrict.
func InstanceNames(insts []Instance) map[string]bool {
	names := make(map[string]bool, len(insts))
	for _, in := range insts {
		names[in.Name] = true
	}
	return names
}
