package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func goldenFixture() *GoldenFile {
	return &GoldenFile{
		Config: GoldenConfig{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1},
		Verdicts: []GoldenVerdict{
			{Name: "a", Verdict: "safe"},
			{Name: "b", Verdict: "unsafe", CEOutput: "out", CESignals: []string{"main.out", "main.tmp"}},
			{Name: "c", Verdict: "unknown"},
		},
	}
}

func TestDiffGoldenIdentical(t *testing.T) {
	diffs, degraded := DiffGolden(goldenFixture(), goldenFixture())
	if len(diffs) != 0 || len(degraded) != 0 {
		t.Fatalf("identical snapshots should not diff, got %v / %v", diffs, degraded)
	}
}

func TestDiffGoldenDetectsVerdictFlip(t *testing.T) {
	fresh := goldenFixture()
	fresh.Verdicts[0].Verdict = "unsafe"
	diffs, _ := DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "a: verdict flipped safe -> unsafe") {
		t.Fatalf("expected one verdict-flip diff, got %v", diffs)
	}
}

func TestDiffGoldenDegradedVerdictsAreNotFailures(t *testing.T) {
	// The Reason strings are deliberately the wrapped human-readable forms
	// core emits for mid-round cancellations and quarantines: classification
	// must come from the Degraded flag, never from parsing Reason.
	fresh := goldenFixture()
	fresh.Verdicts[0] = GoldenVerdict{Name: "a", Verdict: "unknown",
		Reason: "output main.out undecided: canceled", Degraded: "canceled"}
	fresh.Verdicts[1] = GoldenVerdict{Name: "b", Verdict: "unknown",
		Reason: "output main.out undecided: internal error: forced panic", Degraded: "internal-error"}
	diffs, degraded := DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 0 {
		t.Fatalf("degraded verdicts reported as failing diffs: %v", diffs)
	}
	if len(degraded) != 2 {
		t.Fatalf("expected 2 degraded entries, got %v", degraded)
	}
	joined := strings.Join(degraded, "\n")
	if !strings.Contains(joined, "a: degraded safe -> unknown (output main.out undecided: canceled)") ||
		!strings.Contains(joined, "b: degraded unsafe -> unknown (output main.out undecided: internal error: forced panic)") {
		t.Fatalf("unexpected degraded lines: %v", degraded)
	}
	// An unknown with a budget reason and no degradation flag is still a
	// real flip — even when the reason happens to mention "canceled".
	fresh = goldenFixture()
	fresh.Verdicts[0] = GoldenVerdict{Name: "a", Verdict: "unknown", Reason: "global budget exhausted"}
	fresh.Verdicts[1] = GoldenVerdict{Name: "b", Verdict: "unknown", Reason: "a reason mentioning canceled"}
	diffs, degraded = DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 2 || len(degraded) != 0 {
		t.Fatalf("unflagged unknowns should be failing flips, got %v / %v", diffs, degraded)
	}
}

func TestDiffGoldenDetectsCounterexampleChange(t *testing.T) {
	fresh := goldenFixture()
	fresh.Verdicts[1].CESignals = []string{"main.out"}
	diffs, _ := DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "counterexample signal set changed") {
		t.Fatalf("expected one signal-set diff, got %v", diffs)
	}
}

func TestDiffGoldenDetectsMissingAndNewInstances(t *testing.T) {
	fresh := goldenFixture()
	fresh.Verdicts[2].Name = "d"
	diffs, _ := DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 2 {
		t.Fatalf("expected missing+new diffs, got %v", diffs)
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "c: instance missing") || !strings.Contains(joined, "d: new instance") {
		t.Fatalf("unexpected diff content: %v", diffs)
	}
}

func TestDiffGoldenConfigMismatchFailsFast(t *testing.T) {
	fresh := goldenFixture()
	fresh.Config.Seed = 2
	fresh.Verdicts[0].Verdict = "unsafe" // must be masked by the config fast-fail
	diffs, _ := DiffGolden(goldenFixture(), fresh)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "config mismatch") {
		t.Fatalf("expected a single config-mismatch diff, got %v", diffs)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	g := goldenFixture()
	b, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs, _ := DiffGolden(g, back); len(diffs) != 0 {
		t.Fatalf("round trip changed the snapshot: %v", diffs)
	}
}

func TestCheckedInGoldenMatchesSuite(t *testing.T) {
	// The checked-in golden file must cover exactly the current suite plus
	// the pinned corpus manifest with the default budgets; otherwise the CI
	// gate reports noise instead of regressions. This does not run the
	// suite (that is CI's golden job) — it only validates shape.
	path := filepath.Join("..", "..", "testdata", "golden_verdicts.json")
	g, err := LoadGolden(path)
	if err != nil {
		t.Skipf("no checked-in golden file: %v", err)
	}
	want := GoldenConfig{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1}
	if g.Config != want {
		t.Fatalf("golden config %+v does not pin the default budgets %+v", g.Config, want)
	}
	insts := Suite()
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata", "corpus", "manifest.json"))
	if err != nil {
		t.Fatalf("loading pinned corpus manifest: %v", err)
	}
	insts = append(insts, corpus...)
	if len(g.Verdicts) != len(insts) {
		t.Fatalf("golden file has %d instances, suite+corpus has %d — regenerate with -corpus testdata/corpus/manifest.json -golden-out",
			len(g.Verdicts), len(insts))
	}
	names := InstanceNames(insts)
	for _, v := range g.Verdicts {
		if !names[v.Name] {
			t.Errorf("golden instance %q not in suite or corpus", v.Name)
		}
		switch v.Verdict {
		case "safe", "unsafe", "unknown":
		default:
			t.Errorf("golden instance %q has unexpected verdict %q", v.Name, v.Verdict)
		}
	}
}

func TestCompareBaseline(t *testing.T) {
	mk := func(ms float64) *RunRecord {
		return &RunRecord{Sections: []SectionRecord{{Name: "run:full", AnalyzeMS: ms}}}
	}
	if err := CompareBaseline(mk(1000), mk(1500), 2.0); err != nil {
		t.Fatalf("1.5x should pass a 2x guard: %v", err)
	}
	if err := CompareBaseline(mk(1000), mk(2500), 2.0); err == nil {
		t.Fatal("2.5x should fail a 2x guard")
	}
	if err := CompareBaseline(&RunRecord{}, mk(10), 2.0); err == nil {
		t.Fatal("missing run:full section in baseline should error")
	}
}
