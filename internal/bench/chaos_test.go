package bench

import (
	"context"
	"runtime"
	"testing"
	"time"

	"qed2/internal/core"
	"qed2/internal/faultinject"
)

// chaosConfig keeps chaos runs fast: step budgets small enough that the full
// suite finishes in seconds, query-level parallelism > 1 so the worker pool
// itself is exercised under -race.
func chaosConfig() core.Config {
	return core.Config{QuerySteps: 500, GlobalSteps: 10_000, Workers: 2, Seed: 1}
}

// verdictOf classifies a result for monotone-degradation comparisons.
func verdictOf(r Result) string {
	if r.CompileErr != nil {
		return "compile-error"
	}
	return r.Report.Verdict.String()
}

// assertMonotoneDegradation checks the fault-tolerance invariant between a
// clean run and a chaos run over the same instances: faults may degrade a
// decided verdict to unknown (or leave it alone), but must never flip
// safe <-> unsafe — those verdicts require a sound UNSAT proof or a checked
// witness pair, which no injected fault can fabricate.
func assertMonotoneDegradation(t *testing.T, base, chaos []Result) {
	t.Helper()
	if len(base) != len(chaos) {
		t.Fatalf("result counts differ: %d vs %d", len(base), len(chaos))
	}
	for i := range base {
		b, c := verdictOf(base[i]), verdictOf(chaos[i])
		if (b == "safe" && c == "unsafe") || (b == "unsafe" && c == "safe") {
			t.Errorf("%s: verdict flipped %s -> %s under fault injection",
				base[i].Instance.Name, b, c)
		}
	}
}

// assertNoGoroutineLeak retries until the goroutine count settles back to
// (roughly) its pre-run level. The slack absorbs runtime-internal goroutines;
// worker pools must be fully joined by the time Run returns, so anything
// beyond that is a leak.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSolvePanicsMonotoneDegradation is the headline chaos schedule:
// forced panics in a substantial fraction of solver queries across the whole
// benchmark suite. The run must terminate, leak no goroutines, keep every
// verdict monotone (decided verdicts only ever degrade to unknown), and the
// schedule must actually have crashed >= 10% of queries — otherwise the test
// would vacuously pass with a misconfigured plan.
func TestChaosSolvePanicsMonotoneDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the full benchmark twice")
	}
	insts := Suite()
	cfg := chaosConfig()
	base := Run(insts, &RunOptions{Config: cfg})

	before := runtime.NumGoroutine()
	faultinject.Enable(&faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Site: "smt.solve", Kind: faultinject.KindPanic, Rate: 0.15},
	}})
	defer faultinject.Disable()
	chaos := Run(insts, &RunOptions{Config: cfg})
	faultinject.Disable()
	assertNoGoroutineLeak(t, before)

	assertMonotoneDegradation(t, base, chaos)

	var queries, panics int
	for _, r := range chaos {
		if r.Report != nil {
			queries += r.Report.Stats.Queries
			panics += r.Report.Stats.QueryPanics
		}
	}
	if queries == 0 {
		t.Fatal("chaos run issued no solver queries")
	}
	if ratio := float64(panics) / float64(queries); ratio < 0.10 {
		t.Fatalf("panic schedule fired on %.1f%% of %d queries, want >= 10%%",
			100*ratio, queries)
	}
}

// TestChaosMixedFaultKinds layers injected solver errors, step-level early
// deadlines, and query latency over a suite subset: the degraded run must
// terminate, join all workers, and stay verdict-monotone versus a clean run.
func TestChaosMixedFaultKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules re-run part of the benchmark suite")
	}
	insts := Suite()
	if len(insts) > 40 {
		insts = insts[:40]
	}
	cfg := chaosConfig()
	base := Run(insts, &RunOptions{Config: cfg})

	before := runtime.NumGoroutine()
	faultinject.Enable(&faultinject.Plan{Seed: 11, Rules: []faultinject.Rule{
		{Site: "smt.solve", Kind: faultinject.KindError, Rate: 0.2, Msg: "injected solver fault"},
		{Site: "smt.step", Kind: faultinject.KindDeadline, Rate: 0.005},
		{Site: "core.query", Kind: faultinject.KindLatency, Every: 7, Delay: time.Millisecond},
	}})
	defer faultinject.Disable()
	chaos := Run(insts, &RunOptions{Config: cfg})
	hits := faultinject.Hits()
	faultinject.Disable()
	assertNoGoroutineLeak(t, before)

	assertMonotoneDegradation(t, base, chaos)
	for _, site := range []string{"smt.solve", "smt.step", "core.query"} {
		if hits[site] == 0 {
			t.Errorf("chaos schedule never reached site %s", site)
		}
	}
}

// TestChaosInstancePanicIsolation crashes entire bench instances: every 4th
// instance panics before its front-end runs. Each crash must stay contained
// to its own Result (as a compile-error), every other instance must match the
// clean run exactly, and the run must still produce one result per instance.
func TestChaosInstancePanicIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules re-run part of the benchmark suite")
	}
	insts := Suite()
	if len(insts) > 24 {
		insts = insts[:24]
	}
	cfg := chaosConfig()
	base := Run(insts, &RunOptions{Config: cfg})

	// Workers: 1 so the per-site hit counter maps deterministically onto the
	// instance order and the fired set is reproducible.
	before := runtime.NumGoroutine()
	faultinject.Enable(&faultinject.Plan{Seed: 3, Rules: []faultinject.Rule{
		{Site: "bench.instance", Kind: faultinject.KindPanic, Every: 4},
	}})
	defer faultinject.Disable()
	chaos := RunContext(context.Background(), insts, &RunOptions{Config: cfg, Workers: 1})
	faultinject.Disable()
	assertNoGoroutineLeak(t, before)

	if len(chaos) != len(insts) {
		t.Fatalf("got %d results for %d instances", len(chaos), len(insts))
	}
	crashed := 0
	for i, r := range chaos {
		if (i+1)%4 == 0 {
			crashed++
			if r.CompileErr == nil || r.Report != nil {
				t.Errorf("%s: expected contained instance crash, got %+v", r.Instance.Name, r)
			}
			continue
		}
		if got, want := verdictOf(r), verdictOf(base[i]); got != want {
			t.Errorf("%s: uninjected instance changed verdict %s -> %s", r.Instance.Name, want, got)
		}
	}
	if crashed == 0 {
		t.Fatal("schedule crashed no instances")
	}
}
