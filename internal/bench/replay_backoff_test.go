package bench

import (
	"net/http"
	"testing"
	"time"
)

func backoffOpts() ReplayOptions {
	return ReplayOptions{
		PollInterval: 50 * time.Millisecond,
		BackoffCap:   2 * time.Second,
		JitterSeed:   1,
	}.withDefaults()
}

func TestReplayBackoffGrowsAndCaps(t *testing.T) {
	bo := newReplayBackoff(backoffOpts(), "inst-a")
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		d := bo.next(0)
		ideal := 50 * time.Millisecond << attempt
		if ideal > 2*time.Second || ideal <= 0 {
			ideal = 2 * time.Second
		}
		if d < ideal/2 || d > ideal {
			t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, d, ideal/2, ideal)
		}
		if ideal == 2*time.Second {
			prevMax = d
		}
	}
	if prevMax > 2*time.Second {
		t.Fatalf("capped wait %v exceeds cap", prevMax)
	}
	// Far past the shift width the schedule must not overflow or stall.
	bo.attempt = 30
	if d := bo.next(0); d < time.Second || d > 2*time.Second {
		t.Fatalf("saturated attempt: wait %v outside [1s, 2s]", d)
	}
}

func TestReplayBackoffDeterministic(t *testing.T) {
	a := newReplayBackoff(backoffOpts(), "inst-a")
	b := newReplayBackoff(backoffOpts(), "inst-a")
	for i := 0; i < 8; i++ {
		if wa, wb := a.next(0), b.next(0); wa != wb {
			t.Fatalf("attempt %d: same (seed, instance) waited %v vs %v", i, wa, wb)
		}
	}
	// Different instances decorrelate; different seeds too.
	c := newReplayBackoff(backoffOpts(), "inst-b")
	oSeed := backoffOpts()
	oSeed.JitterSeed = 99
	d := newReplayBackoff(oSeed, "inst-a")
	a.reset()
	var diffName, diffSeed bool
	for i := 0; i < 8; i++ {
		w := a.next(0)
		if w != c.next(0) {
			diffName = true
		}
		if w != d.next(0) {
			diffSeed = true
		}
	}
	if !diffName || !diffSeed {
		t.Fatalf("jitter failed to decorrelate (name=%v seed=%v)", diffName, diffSeed)
	}
}

func TestReplayBackoffResetRestartsRamp(t *testing.T) {
	bo := newReplayBackoff(backoffOpts(), "inst-a")
	first := bo.next(0)
	for i := 0; i < 5; i++ {
		bo.next(0)
	}
	bo.reset()
	if again := bo.next(0); again != first {
		t.Fatalf("post-reset wait %v != initial %v", again, first)
	}
}

func TestReplayBackoffHonorsRetryAfter(t *testing.T) {
	bo := newReplayBackoff(backoffOpts(), "inst-a")
	if d := bo.next(3 * time.Second); d != 3*time.Second {
		t.Fatalf("Retry-After override: wait %v, want 3s", d)
	}
	// The override still advanced the ramp: the next implicit wait reflects
	// attempt 1, not attempt 0.
	if d := bo.next(0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("post-override wait %v outside [50ms, 100ms]", d)
	}
}

func TestRetryAfterOf(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0}, // http-date form: ignored, not misparsed
	}
	for _, c := range cases {
		if got := retryAfterOf(mk(c.header)); got != c.want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
