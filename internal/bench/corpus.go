package bench

import (
	"fmt"
	"sort"

	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/gen"
)

// The generated corpus: benchmark instances backed by internal/gen instead
// of Circom source. A corpus manifest (testdata/corpus/manifest.json) pins
// only (seed, profile, label) triples — the circuits themselves are
// regenerated on demand, and each regeneration re-validates the recorded
// label against the generator's self-checked ground truth, so a drifting
// generator fails loudly instead of silently flipping the corpus.

// CorpusInstance adapts one manifest entry to a benchmark instance.
func CorpusInstance(e gen.ManifestEntry) Instance {
	return Instance{
		Name:        e.Name,
		Category:    "Corpus/" + e.Profile,
		Expect:      corpusExpectation(e.Label),
		CorpusLabel: e.Label,
		Gen: func() (*circom.Program, error) {
			c, err := gen.Generate(e.Spec())
			if err != nil {
				return nil, err
			}
			if c.Label.String() != e.Label {
				return nil, fmt.Errorf("bench: corpus instance %s: generator produced label %s, manifest records %s — regenerate the corpus",
					e.Name, c.Label, e.Label)
			}
			return circom.ProgramFromSystem(c.System, "gen:"+e.Profile), nil
		},
	}
}

// corpusExpectation maps a generator label to the suite's expectation
// vocabulary. Unknown-labeled instances are genuinely under-constrained
// (the generator plants and verifies an alias pair), so their ground truth
// is unsafe even though the expected verdict is unknown.
func corpusExpectation(label string) Expectation {
	switch label {
	case gen.ProfileSafe:
		return ExpectSafe
	default:
		return ExpectUnsafe
	}
}

// CorpusInstances adapts a whole manifest.
func CorpusInstances(m *gen.Manifest) []Instance {
	insts := make([]Instance, len(m.Instances))
	for i, e := range m.Instances {
		insts[i] = CorpusInstance(e)
	}
	return insts
}

// LoadCorpus loads a manifest file and adapts it.
func LoadCorpus(path string) ([]Instance, error) {
	m, err := gen.LoadManifest(path)
	if err != nil {
		return nil, err
	}
	return CorpusInstances(m), nil
}

// GroundTruth is the outcome of checking corpus results against their
// generator labels. The two classes have different severities:
//
//   - Violations are soundness breaks: a safe verdict on an instance whose
//     label proves a second witness exists, or an unsafe verdict on a
//     label-safe instance. Either means the analyzer (or the generator's
//     self-validation) is wrong, and the nightly gate fails.
//   - Misses are completeness regressions: an unsafe-labeled instance
//     (planted, findable by construction) the analyzer did not resolve to
//     unsafe. Reported for tracking, non-fatal — budget changes legitimately
//     move this set. Unknown-labeled instances are never misses: their whole
//     point is to sit beyond the budget.
type GroundTruth struct {
	Checked    int      `json:"checked"`
	Violations []string `json:"violations,omitempty"`
	Misses     []string `json:"misses,omitempty"`
}

// CheckGroundTruth classifies corpus results (instances without a
// CorpusLabel are skipped). Compile errors on corpus instances are
// violations too: a manifest entry that no longer regenerates is a stale
// corpus, not an analysis outcome.
func CheckGroundTruth(results []Result) GroundTruth {
	var gt GroundTruth
	for _, r := range results {
		label := r.Instance.CorpusLabel
		if label == "" {
			continue
		}
		gt.Checked++
		if r.CompileErr != nil {
			gt.Violations = append(gt.Violations, fmt.Sprintf("%s: generation failed: %v", r.Instance.Name, r.CompileErr))
			continue
		}
		verdict := r.Report.Verdict
		switch label {
		case gen.ProfileSafe:
			if verdict == core.VerdictUnsafe {
				gt.Violations = append(gt.Violations, fmt.Sprintf("%s: unsafe verdict on a label-safe instance (claimed counterexample on %s)",
					r.Instance.Name, r.CEOutput))
			}
		case gen.ProfileUnsafe:
			if verdict == core.VerdictSafe {
				gt.Violations = append(gt.Violations, fmt.Sprintf("%s: safe verdict on a label-unsafe instance (a planted witness pair exists)", r.Instance.Name))
			} else if verdict != core.VerdictUnsafe {
				gt.Misses = append(gt.Misses, fmt.Sprintf("%s: planted bug not found (verdict %s: %s)", r.Instance.Name, verdict, r.Report.Reason))
			}
		case gen.ProfileUnknown:
			if verdict == core.VerdictSafe {
				gt.Violations = append(gt.Violations, fmt.Sprintf("%s: safe verdict on a label-unknown instance (a planted alias pair exists)", r.Instance.Name))
			}
		}
	}
	sort.Strings(gt.Violations)
	sort.Strings(gt.Misses)
	return gt
}
