package bench

import (
	"fmt"

	"qed2/internal/circom"
)

// Expectation is the ground-truth label of a benchmark instance.
type Expectation int

// Expectations.
const (
	// ExpectSafe marks circuits known to be properly constrained.
	ExpectSafe Expectation = iota
	// ExpectUnsafe marks circuits known to be under-constrained.
	ExpectUnsafe
	// ExpectHard marks circuits whose ground truth is safe-or-unknown
	// territory for the analysis (e.g. denominators that cannot vanish on
	// the honest domain but can on arbitrary field inputs).
	ExpectHard
)

// String implements fmt.Stringer.
func (e Expectation) String() string {
	switch e {
	case ExpectSafe:
		return "safe"
	case ExpectUnsafe:
		return "unsafe"
	default:
		return "hard"
	}
}

// Instance is one benchmark circuit.
type Instance struct {
	// Name is the display name, e.g. "Num2Bits(16)".
	Name string
	// Category groups instances for per-category tables.
	Category string
	// Includes lists the library files the main source needs.
	Includes []string
	// Main is the main-component declaration.
	Main string
	// Expect is the ground-truth label.
	Expect Expectation
	// Vuln marks the previously-unknown-vulnerability set (Table 4).
	Vuln bool
	// Gen, when non-nil, builds the program directly instead of compiling
	// Circom source — used by corpus instances backed by the property-based
	// generator (internal/gen). Includes and Main are unused for such
	// instances.
	Gen func() (*circom.Program, error)
	// CorpusLabel is the generator's ground-truth label string ("safe",
	// "unsafe", "unknown") for corpus instances, empty for the Circom
	// suite. Unlike Expect it distinguishes "under-constrained and
	// expected found" from "under-constrained but expected beyond budget",
	// which is what the nightly ground-truth gate keys on.
	CorpusLabel string
}

// Source assembles the full compilable source of the instance.
func (in Instance) Source() string {
	src := "pragma circom 2.0.0;\n"
	for _, inc := range in.Includes {
		src += fmt.Sprintf("include %q;\n", inc)
	}
	return src + in.Main + "\n"
}

// Compile compiles the instance against the bundled library, or builds it
// from its generator when the instance is corpus-backed.
func (in Instance) Compile() (*circom.Program, error) {
	if in.Gen != nil {
		return in.Gen()
	}
	return circom.Compile(in.Source(), &circom.CompileOptions{Library: Library()})
}

// SuiteSize is the number of instances in the evaluation suite, matching
// the paper's 163 Circom circuits.
const SuiteSize = 163

// Suite builds the 163-instance evaluation corpus. The population mirrors
// the paper's: overwhelmingly safe small/medium arithmetic templates from a
// circomlib-style library across parameter sweeps, a tail of genuinely
// vulnerable widely-used templates, and seeded mutants of the classic bug
// classes.
func Suite() []Instance {
	var s []Instance
	add := func(cat, name string, expect Expectation, vuln bool, includes []string, mainDecl string) {
		s = append(s, Instance{
			Name: name, Category: cat, Includes: includes,
			Main: mainDecl, Expect: expect, Vuln: vuln,
		})
	}
	tmpl := func(cat, tmplName string, expect Expectation, vuln bool, include string, params ...int) {
		name := tmplName
		args := ""
		if len(params) > 0 {
			args = fmt.Sprint(params[0])
			for _, p := range params[1:] {
				args += fmt.Sprintf(", %d", p)
			}
			name = fmt.Sprintf("%s(%s)", tmplName, args)
		} else {
			name += "()"
		}
		add(cat, name, expect, vuln, []string{include},
			fmt.Sprintf("component main = %s(%s);", tmplName, args))
	}

	// --- Bitify (52) -----------------------------------------------------
	for n := 1; n <= 26; n++ {
		tmpl("Bitify", "Num2Bits", ExpectSafe, false, "bitify.circom", n)
	}
	// Num2Bits(254) is genuinely under-constrained over BN254: every value
	// below 2^254 − p has a second, aliased decomposition. (Finding the
	// pair needs range reasoning; Unknown is an acceptable outcome.)
	tmpl("Bitify", "Num2Bits", ExpectUnsafe, false, "bitify.circom", 254)
	for n := 1; n <= 16; n++ {
		tmpl("Bitify", "Bits2Num", ExpectSafe, false, "bitify.circom", n)
	}
	for _, n := range []int{2, 4, 8, 16} {
		tmpl("Bitify", "Num2BitsNeg", ExpectHard, false, "bitify.circom", n)
	}
	tmpl("Bitify", "CompConstant", ExpectSafe, false, "compconstant.circom", 7)
	add("Bitify", "CompConstant(p\\2)", ExpectSafe, false, []string{"compconstant.circom"},
		"component main = CompConstant(10944121435919637611123202872628637544274182200208017171849102093287904247808);")
	tmpl("Bitify", "AliasCheck", ExpectSafe, false, "aliascheck.circom")
	tmpl("Bitify", "Sign", ExpectSafe, false, "sign.circom")
	// The strict decomposition is safe but requires reasoning about the
	// alias-check range constraint; ExpectHard acknowledges the analysis
	// may time out rather than prove it.
	tmpl("Bitify", "Num2Bits_strict", ExpectHard, false, "bitify_strict.circom")

	// --- Comparators (23) -------------------------------------------------
	tmpl("Comparators", "IsZero", ExpectSafe, false, "comparators.circom")
	tmpl("Comparators", "IsEqual", ExpectSafe, false, "comparators.circom")
	tmpl("Comparators", "ForceEqualIfEnabled", ExpectSafe, false, "comparators.circom")
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 252} {
		tmpl("Comparators", "LessThan", ExpectSafe, false, "comparators.circom", n)
	}
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("Comparators", "LessEqThan", ExpectSafe, false, "comparators.circom", n)
	}
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("Comparators", "GreaterThan", ExpectSafe, false, "comparators.circom", n)
	}
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("Comparators", "GreaterEqThan", ExpectSafe, false, "comparators.circom", n)
	}

	// --- Gates (12) --------------------------------------------------------
	for _, g := range []string{"XOR", "AND", "OR", "NOT", "NAND", "NOR"} {
		tmpl("Gates", g, ExpectSafe, false, "gates.circom")
	}
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		tmpl("Gates", "MultiAND", ExpectSafe, false, "gates.circom", n)
	}

	// --- Mux (15) ----------------------------------------------------------
	tmpl("Mux", "Mux1", ExpectSafe, false, "mux1.circom")
	for _, n := range []int{1, 2, 4, 8, 16} {
		tmpl("Mux", "MultiMux1", ExpectSafe, false, "mux1.circom", n)
	}
	tmpl("Mux", "Mux2", ExpectSafe, false, "mux2.circom")
	for _, n := range []int{1, 2, 4, 8} {
		tmpl("Mux", "MultiMux2", ExpectSafe, false, "mux2.circom", n)
	}
	tmpl("Mux", "Mux3", ExpectSafe, false, "mux3.circom")
	for _, n := range []int{1, 2, 4} {
		tmpl("Mux", "MultiMux3", ExpectSafe, false, "mux3.circom", n)
	}

	// --- Multiplexer (14) ---------------------------------------------------
	for _, w := range []int{2, 4, 8, 16, 32} {
		tmpl("Multiplexer", "Decoder", ExpectUnsafe, w == 4, "multiplexer.circom", w)
	}
	for _, w := range []int{2, 4, 8, 16} {
		tmpl("Multiplexer", "EscalarProduct", ExpectSafe, false, "multiplexer.circom", w)
	}
	for _, p := range [][2]int{{1, 2}, {2, 2}, {2, 4}, {4, 4}, {4, 8}} {
		tmpl("Multiplexer", "Multiplexer", ExpectSafe, false, "multiplexer.circom", p[0], p[1])
	}

	// --- Curve operations (6) ------------------------------------------------
	tmpl("Curve", "Edwards2Montgomery", ExpectUnsafe, true, "montgomery.circom")
	tmpl("Curve", "Montgomery2Edwards", ExpectUnsafe, true, "montgomery.circom")
	tmpl("Curve", "MontgomeryAdd", ExpectUnsafe, true, "montgomery.circom")
	tmpl("Curve", "MontgomeryDouble", ExpectUnsafe, true, "montgomery.circom")
	tmpl("Curve", "BabyAdd", ExpectHard, false, "babyjub.circom")
	tmpl("Curve", "BabyDbl", ExpectHard, false, "babyjub.circom")

	// --- Hash (7) ---------------------------------------------------------------
	for _, r := range []int{2, 5, 10, 45, 91} {
		tmpl("Hash", "MiMC7", ExpectSafe, false, "mimc.circom", r)
	}
	tmpl("Hash", "MiMCFeistel", ExpectSafe, false, "mimc.circom", 10)
	tmpl("Hash", "MiMCSponge", ExpectSafe, false, "mimc.circom", 2, 10, 2)

	// --- Binary arithmetic (11) ----------------------------------------------
	for _, p := range [][2]int{{2, 2}, {4, 2}, {8, 2}, {16, 2}, {32, 2}, {8, 3}, {16, 3}, {32, 3}, {8, 4}, {16, 4}} {
		tmpl("BinArith", "BinSum", ExpectSafe, false, "binsum.circom", p[0], p[1])
	}
	tmpl("BinArith", "Switcher", ExpectSafe, false, "switcher.circom")

	// --- BigInt-lite (12) ---------------------------------------------------------
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("BigInt", "ModSum", ExpectSafe, false, "bigintlite.circom", n)
	}
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("BigInt", "ModSub", ExpectSafe, false, "bigintlite.circom", n)
	}
	for _, n := range []int{8, 16, 32, 64} {
		tmpl("BigInt", "ModProd", ExpectSafe, false, "bigintlite.circom", n)
	}

	// --- Seeded bugs (11) ------------------------------------------------------
	tmpl("SeededBugs", "IsZeroBuggy", ExpectUnsafe, true, "buggy.circom")
	tmpl("SeededBugs", "SwitcherBuggy", ExpectUnsafe, true, "buggy.circom")
	for _, n := range []int{3, 4, 6, 8} {
		tmpl("SeededBugs", "Num2BitsBuggy", ExpectUnsafe, n == 4, "buggy.circom", n)
	}
	for _, n := range []int{8, 16, 32} {
		tmpl("SeededBugs", "ModSumBuggy", ExpectUnsafe, false, "buggy.circom", n)
	}
	for _, p := range [][2]int{{1, 2}, {2, 2}} {
		tmpl("SeededBugs", "MultiplexerBuggy", ExpectUnsafe, false, "buggy.circom", p[0], p[1])
	}

	if len(s) != SuiteSize {
		panic(fmt.Sprintf("bench: suite has %d instances, want %d", len(s), SuiteSize))
	}
	return s
}

// Categories returns the distinct categories in suite order.
func Categories(insts []Instance) []string {
	var out []string
	seen := map[string]bool{}
	for _, in := range insts {
		if !seen[in.Category] {
			seen[in.Category] = true
			out = append(out, in.Category)
		}
	}
	return out
}

// ByName finds an instance by display name.
func ByName(insts []Instance, name string) (Instance, bool) {
	for _, in := range insts {
		if in.Name == name {
			return in, true
		}
	}
	return Instance{}, false
}
