package bench

import (
	"strings"
	"testing"

	"qed2/internal/core"
	"qed2/internal/gen"
)

// TestCorpusInstanceCompile checks the manifest-entry adapter: generation
// through the Instance.Compile path, name/label plumbing, and the stale-
// label defense.
func TestCorpusInstanceCompile(t *testing.T) {
	m, err := gen.BuildManifest(500, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range CorpusInstances(m) {
		prog, err := in.Compile()
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if prog.System.NumConstraints() == 0 {
			t.Errorf("%s: empty system", in.Name)
		}
		if len(prog.OutputNames) == 0 {
			t.Errorf("%s: no outputs", in.Name)
		}
		if in.CorpusLabel == "" {
			t.Errorf("%s: missing corpus label", in.Name)
		}
	}
	// A stale manifest label must fail generation, not mislabel the run.
	stale := m.Instances[0]
	stale.Label = map[string]string{
		gen.ProfileSafe:   gen.ProfileUnsafe,
		gen.ProfileUnsafe: gen.ProfileSafe,
	}[stale.Label]
	if stale.Label == "" {
		stale.Label = gen.ProfileSafe
	}
	if _, err := CorpusInstance(stale).Compile(); err == nil || !strings.Contains(err.Error(), "regenerate the corpus") {
		t.Errorf("stale label compiled without error (err=%v)", err)
	}
}

// TestCorpusAnalysisSmoke analyzes a handful of corpus instances end to
// end and checks the verdicts against the generator's ground truth: no
// unsound outcomes, and the planted easy bugs actually found.
func TestCorpusAnalysisSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus analysis skipped with -short")
	}
	var insts []Instance
	for seed := int64(0); len(insts) < 8; seed++ {
		c, err := gen.Generate(gen.Spec{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if c.Label == gen.LabelUnknown {
			continue // exercised (expensively) by the golden corpus run
		}
		insts = append(insts, CorpusInstance(gen.ManifestEntry{
			Name: c.Name, Seed: seed, Profile: c.Label.String(), Label: c.Label.String(),
		}))
	}
	results := Run(insts, &RunOptions{Config: goldenTestConfig()})
	gt := CheckGroundTruth(results)
	if gt.Checked != len(insts) {
		t.Fatalf("checked %d results, want %d", gt.Checked, len(insts))
	}
	if len(gt.Violations) != 0 {
		t.Errorf("ground-truth violations: %v", gt.Violations)
	}
	if len(gt.Misses) != 0 {
		t.Errorf("planted bugs missed: %v", gt.Misses)
	}
}

// TestCheckGroundTruthClassification pins the violation/miss taxonomy on
// synthetic results.
func TestCheckGroundTruthClassification(t *testing.T) {
	mk := func(label string, verdict core.Verdict) Result {
		return Result{
			Instance: Instance{Name: label + "/" + verdict.String(), CorpusLabel: label},
			Report:   &core.Report{Verdict: verdict, Reason: "r"},
		}
	}
	results := []Result{
		mk(gen.ProfileSafe, core.VerdictSafe),                                                         // ok
		mk(gen.ProfileSafe, core.VerdictUnknown),                                                      // ok (incomplete, not unsound)
		mk(gen.ProfileSafe, core.VerdictUnsafe),                                                       // violation
		mk(gen.ProfileUnsafe, core.VerdictUnsafe),                                                     // ok
		mk(gen.ProfileUnsafe, core.VerdictSafe),                                                       // violation
		mk(gen.ProfileUnsafe, core.VerdictUnknown),                                                    // miss
		mk(gen.ProfileUnknown, core.VerdictUnknown),                                                   // ok
		mk(gen.ProfileUnknown, core.VerdictUnsafe),                                                    // ok (completeness win)
		mk(gen.ProfileUnknown, core.VerdictSafe),                                                      // violation
		{Instance: Instance{Name: "suite-instance"}, Report: &core.Report{Verdict: core.VerdictSafe}}, // skipped
	}
	gt := CheckGroundTruth(results)
	if gt.Checked != 9 {
		t.Errorf("Checked = %d, want 9", gt.Checked)
	}
	if len(gt.Violations) != 3 {
		t.Errorf("Violations = %v, want 3 entries", gt.Violations)
	}
	if len(gt.Misses) != 1 {
		t.Errorf("Misses = %v, want 1 entry", gt.Misses)
	}
}
