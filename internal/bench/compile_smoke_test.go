package bench

import "testing"

// TestSuiteCompilesAll guarantees the whole corpus stays compilable: every
// instance must pass the front-end, and every circuit must actually emit
// constraints (an empty system would silently analyze as vacuously safe).
func TestSuiteCompilesAll(t *testing.T) {
	for _, inst := range Suite() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			p, err := inst.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if p.System.NumConstraints() == 0 {
				t.Errorf("%s compiled to zero constraints", inst.Name)
			}
			if len(p.InputNames) == 0 {
				t.Errorf("%s has no inputs", inst.Name)
			}
		})
	}
}
