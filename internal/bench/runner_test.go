package bench

import (
	"testing"

	"qed2/internal/core"
)

// TestRunnerProgressMonotonic pins the serialization contract of the
// Progress callback: even with many workers finishing out of order, the
// observed done values must be exactly 1..N in order, and invocations must
// never overlap (the callback mutates shared state without locking, so any
// concurrent invocation is caught by the race detector).
func TestRunnerProgressMonotonic(t *testing.T) {
	insts := Suite()[:16]
	var seen []int
	results := Run(insts, &RunOptions{
		Config:  core.Config{QuerySteps: 1_000, GlobalSteps: 10_000, Seed: 1},
		Workers: 8,
		Progress: func(done, total int, r Result) {
			if total != len(insts) {
				t.Errorf("total = %d, want %d", total, len(insts))
			}
			seen = append(seen, done)
		},
	})
	if len(results) != len(insts) {
		t.Fatalf("got %d results, want %d", len(results), len(insts))
	}
	if len(seen) != len(insts) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(insts))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done sequence %v not monotonic at position %d", seen, i)
		}
	}
}
