package bench

import (
	"context"
	"path/filepath"
	"testing"

	"qed2/internal/core"
)

// TestRunnerProgressMonotonic pins the serialization contract of the
// Progress callback: even with many workers finishing out of order, the
// observed done values must be exactly 1..N in order, and invocations must
// never overlap (the callback mutates shared state without locking, so any
// concurrent invocation is caught by the race detector).
func TestRunnerProgressMonotonic(t *testing.T) {
	insts := Suite()[:16]
	var seen []int
	results := Run(insts, &RunOptions{
		Config:  core.Config{QuerySteps: 1_000, GlobalSteps: 10_000, Seed: 1},
		Workers: 8,
		Progress: func(done, total int, r Result) {
			if total != len(insts) {
				t.Errorf("total = %d, want %d", total, len(insts))
			}
			seen = append(seen, done)
		},
	})
	if len(results) != len(insts) {
		t.Fatalf("got %d results, want %d", len(results), len(insts))
	}
	if len(seen) != len(insts) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(insts))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done sequence %v not monotonic at position %d", seen, i)
		}
	}
}

// TestRunContextCanceledStampsEveryInstance pins two contracts of a canceled
// run: the Progress callback still reaches done == len(insts) (canceled
// stamps count as completed instances), and no cancellation-degraded result
// is ever persisted to the checkpoint — a resumed run must re-analyze them.
func TestRunContextCanceledStampsEveryInstance(t *testing.T) {
	insts := Suite()[:8]
	cfg := core.Config{QuerySteps: 500, GlobalSteps: 10_000, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	results := RunContext(ctx, insts, &RunOptions{
		Config:     cfg,
		Workers:    4,
		Checkpoint: w,
		Progress:   func(done, total int, r Result) { last = done },
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if last != len(insts) {
		t.Fatalf("final Progress done = %d, want %d (canceled instances must be reported)", last, len(insts))
	}
	for _, r := range results {
		if r.Report == nil || r.Report.Degraded != core.DegradedCanceled {
			t.Fatalf("%s: result = %+v, want cancellation-degraded unknown", r.Instance.Name, r.Report)
		}
	}
	got, err := LoadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("checkpoint persisted %d cancellation-degraded records: %v", len(got), got)
	}
}
