package bench

import (
	"os"
	"path/filepath"
	"testing"

	"qed2/internal/sa"
)

func twoInstanceFindings() *FindingsFile {
	return &FindingsFile{Instances: []InstanceFindings{
		{Name: "A()", Findings: []sa.Finding{
			{Detector: "unconstrained-hint", SeverityName: "warning", Signal: "x", SignalID: 3,
				Constraint: -1, Loc: "A:4:5", Message: "m"},
		}},
		{Name: "B()", Findings: []sa.Finding{}},
	}}
}

func TestDiffFindingsIdentical(t *testing.T) {
	if diffs := DiffFindings(twoInstanceFindings(), twoInstanceFindings()); len(diffs) != 0 {
		t.Fatalf("identical files diff: %v", diffs)
	}
}

// TestDiffFindingsFailsClosed perturbs the fresh snapshot every way a
// regression could manifest and demands the gate notices each one.
func TestDiffFindingsFailsClosed(t *testing.T) {
	perturb := map[string]func(f *FindingsFile){
		"dropped finding": func(f *FindingsFile) { f.Instances[0].Findings = nil },
		"extra finding": func(f *FindingsFile) {
			f.Instances[1].Findings = append(f.Instances[1].Findings, sa.Finding{Detector: "d"})
		},
		"severity changed":   func(f *FindingsFile) { f.Instances[0].Findings[0].SeverityName = "error" },
		"location changed":   func(f *FindingsFile) { f.Instances[0].Findings[0].Loc = "A:9:9" },
		"message changed":    func(f *FindingsFile) { f.Instances[0].Findings[0].Message = "other" },
		"detector changed":   func(f *FindingsFile) { f.Instances[0].Findings[0].Detector = "other" },
		"signal changed":     func(f *FindingsFile) { f.Instances[0].Findings[0].Signal = "y" },
		"instance missing":   func(f *FindingsFile) { f.Instances = f.Instances[:1] },
		"instance renamed":   func(f *FindingsFile) { f.Instances[1].Name = "C()" },
		"constraint changed": func(f *FindingsFile) { f.Instances[0].Findings[0].Constraint = 7 },
	}
	for name, mutate := range perturb {
		fresh := twoInstanceFindings()
		mutate(fresh)
		if diffs := DiffFindings(twoInstanceFindings(), fresh); len(diffs) == 0 {
			t.Errorf("%s: gate passed a perturbed snapshot", name)
		}
	}
}

func TestFindingsRoundTrip(t *testing.T) {
	f := twoInstanceFindings()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "findings.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFindings(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffFindings(f, loaded); len(diffs) != 0 {
		t.Fatalf("round trip not faithful: %v", diffs)
	}
}

func TestLoadFindingsErrors(t *testing.T) {
	if _, err := LoadFindings(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFindings(bad); err == nil {
		t.Error("corrupt file accepted")
	}
}

// TestCheckedInFindingsMatchSuite is the gate itself: the static pass over
// the current suite plus the first FindingsCorpusSlice corpus instances
// must reproduce testdata/golden_findings.json exactly. On a legitimate
// detector change, regenerate with
//
//	go run ./cmd/qed2bench -corpus testdata/corpus/manifest.json \
//	  -findings-corpus 100 -findings-out testdata/golden_findings.json
//
// and review the diff like any other code change.
func TestCheckedInFindingsMatchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling the full suite is slow")
	}
	golden, err := LoadFindings(filepath.Join("..", "..", "testdata", "golden_findings.json"))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata", "corpus", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	insts := append(Suite(), corpus[:FindingsCorpusSlice]...)
	fresh, err := CollectFindings(insts)
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffFindings(golden, fresh)
	for _, d := range diffs {
		t.Error(d)
	}
}
