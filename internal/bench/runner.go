package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/smt"
)

// Result is the outcome of analyzing one instance.
type Result struct {
	Instance Instance
	// CompileErr is set when the front-end rejected the instance (a harness
	// bug, not an analysis outcome).
	CompileErr error
	// Stats describes the compiled system.
	System r1cs.Stats
	// Report is the analysis report (nil if compilation failed).
	Report *core.Report
	// CompileTime and AnalyzeTime split the wall clock.
	CompileTime time.Duration
	AnalyzeTime time.Duration
	// CEOutput/CEVal1/CEVal2 summarize the counterexample (unsafe verdicts
	// only): the differing output's name and its two witnessed values.
	CEOutput string
	CEVal1   string
	CEVal2   string
	// CEDiffers lists (in signal-ID order) the names of every signal on
	// which the two counterexample witnesses disagree — the signal set the
	// golden-verdict regression gate pins.
	CEDiffers []string
}

// Solved reports whether the analysis reached a definite verdict.
func (r Result) Solved() bool {
	return r.Report != nil &&
		(r.Report.Verdict == core.VerdictSafe || r.Report.Verdict == core.VerdictUnsafe)
}

// RunOptions configures a suite run.
type RunOptions struct {
	// Config is the analyzer configuration applied to every instance.
	Config core.Config
	// Workers is the number of instances analyzed concurrently (default:
	// GOMAXPROCS). Query-level parallelism within one analysis is
	// configured separately via Config.Workers.
	Workers int
	// Progress, when non-nil, is called after each instance completes.
	// Invocations are serialized and done is strictly monotonic, so the
	// callback needs no locking of its own.
	Progress func(done, total int, r Result)
	// Obs, when non-nil, receives one "bench.run" span per Run call with a
	// "bench.instance" child (wrapping compile + analysis spans) per
	// instance; Metrics receives the aggregated pipeline counters. With
	// Workers > 1 the interleaving of instance events in the trace depends
	// on scheduling; results and counter totals do not.
	Obs     *obs.Tracer
	Metrics *obs.Metrics
	// Checkpoint, when non-nil, receives one record per freshly completed
	// instance. Results degraded by cancellation are not persisted: a
	// resumed run must re-analyze them, so resume converges to the same
	// verdict set as an uninterrupted run.
	Checkpoint *CheckpointWriter
	// Completed maps instance names to records from a previous run's
	// checkpoint; those instances are skipped and their results rehydrated
	// (see resultFromRecord) instead of re-analyzed.
	Completed map[string]InstanceRecord
}

// Run compiles and analyzes every instance, preserving input order.
func Run(insts []Instance, opts *RunOptions) []Result {
	return RunContext(context.Background(), insts, opts)
}

// RunContext is Run with cancellation: once ctx is canceled, in-flight
// analyses stop at their next query boundary (reporting unknown: canceled)
// and every not-yet-started instance is stamped with the same partial
// verdict instead of being analyzed, so the caller always gets one Result
// per instance no matter when the cancellation fired.
func RunContext(ctx context.Context, insts []Instance, opts *RunOptions) []Result {
	o := RunOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	rs := o.Obs.Start(nil, "bench.run",
		obs.KV("instances", len(insts)), obs.KV("workers", o.Workers))
	defer rs.End()
	results := make([]Result, len(insts))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		// progressMu serializes the Progress callback and guards done, so
		// callers observe a strictly increasing done counter even when
		// workers finish out of order.
		progressMu sync.Mutex
		done       int
	)
	progress := func(i int) {
		progressMu.Lock()
		done++
		if o.Progress != nil {
			o.Progress(done, len(insts), results[i])
		}
		progressMu.Unlock()
	}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(insts) {
					return
				}
				if rec, ok := o.Completed[insts[i].Name]; ok {
					results[i] = resultFromRecord(insts[i], rec)
					progress(i)
					continue
				}
				if ctx.Err() != nil {
					results[i] = canceledResult(insts[i])
					progress(i)
					continue
				}
				results[i] = runOne(ctx, insts[i], o.Config, o.Obs, rs, o.Metrics)
				if o.Checkpoint != nil && !degradedByCancel(results[i]) {
					o.Checkpoint.Append(instanceRecordOf(results[i]))
				}
				progress(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// canceledResult stamps an instance that was never analyzed because the run
// was canceled first.
func canceledResult(inst Instance) Result {
	return Result{
		Instance: inst,
		Report: &core.Report{
			Verdict:  core.VerdictUnknown,
			Reason:   smt.Canceled,
			Degraded: core.DegradedCanceled,
		},
	}
}

// degradedByCancel reports whether a result's unknown verdict is an
// artifact of cancellation rather than a real budget outcome. Such results
// must not be checkpointed — resuming re-analyzes them. The check is on the
// structured Report.Degraded flag, not the Reason string: core wraps
// mid-round cancellations into "output X undecided: canceled" phrases that
// no string equality would survive.
func degradedByCancel(r Result) bool {
	return r.Report != nil && r.Report.Degraded == core.DegradedCanceled
}

func runOne(ctx context.Context, inst Instance, cfg core.Config, tr *obs.Tracer, parent *obs.Span, metrics *obs.Metrics) Result {
	res := Result{Instance: inst}
	is := tr.Start(parent, "bench.instance",
		obs.KV("instance", inst.Name), obs.KV("category", inst.Category))
	verdict := runInstance(ctx, inst, &res, cfg, tr, is, metrics)
	is.End(obs.KV("verdict", verdict),
		obs.KV("analyze_us", res.AnalyzeTime.Microseconds()))
	return res
}

// runInstance does the compile + analyze work of one instance under a panic
// boundary: a crash anywhere in the front-end, the analysis, or the
// counterexample summary is converted into a per-instance failure result
// instead of killing the whole suite run. A panic before the front-end
// finished becomes a CompileErr; after that it becomes an Unknown report —
// in both cases only ever a degradation, never a flipped verdict.
func runInstance(ctx context.Context, inst Instance, res *Result, cfg core.Config, tr *obs.Tracer, is *obs.Span, metrics *obs.Metrics) (verdict string) {
	compiled := false
	defer func() {
		if r := recover(); r != nil {
			tr.Event(is, "bench.instance.panic",
				obs.KV("instance", inst.Name), obs.KV("panic", fmt.Sprint(r)))
			if !compiled {
				res.CompileErr = fmt.Errorf("bench: %s: internal error: %v", inst.Name, r)
				verdict = "compile-error"
				return
			}
			res.Report = &core.Report{
				Verdict:  core.VerdictUnknown,
				Reason:   fmt.Sprintf("internal error: %v", r),
				Degraded: core.DegradedInternal,
			}
			verdict = core.VerdictUnknown.String()
		}
	}()
	if faultinject.Enabled() {
		faultinject.Check("bench.instance")
	}
	t0 := time.Now()
	prog, err := inst.Compile()
	res.CompileTime = time.Since(t0)
	if err != nil {
		res.CompileErr = fmt.Errorf("bench: %s: %w", inst.Name, err)
		return "compile-error"
	}
	compiled = true
	res.System = prog.System.Stats()
	cfg.Obs = tr
	cfg.ObsParent = is
	cfg.Metrics = metrics
	t1 := time.Now()
	res.Report = core.AnalyzeContext(ctx, prog.System, &cfg)
	res.AnalyzeTime = time.Since(t1)
	if ce := res.Report.Counter; ce != nil {
		f := prog.System.Field()
		res.CEOutput = prog.System.Name(ce.Signal)
		res.CEVal1 = f.String(ce.W1[ce.Signal])
		res.CEVal2 = f.String(ce.W2[ce.Signal])
		for id := 1; id < prog.System.NumSignals(); id++ {
			if ce.W1[id] != ce.W2[id] {
				res.CEDiffers = append(res.CEDiffers, prog.System.Name(id))
			}
		}
	}
	return res.Report.Verdict.String()
}

// Tally aggregates verdicts over a result set.
type Tally struct {
	Total, Safe, Unsafe, Unknown, CompileErrors int
}

// Add folds one result into the tally.
func (t *Tally) Add(r Result) {
	t.Total++
	switch {
	case r.CompileErr != nil:
		t.CompileErrors++
	case r.Report.Verdict == core.VerdictSafe:
		t.Safe++
	case r.Report.Verdict == core.VerdictUnsafe:
		t.Unsafe++
	default:
		t.Unknown++
	}
}

// Solved returns the number of definitely-decided instances.
func (t Tally) Solved() int { return t.Safe + t.Unsafe }

// SolvedPct returns the solved percentage.
func (t Tally) SolvedPct() float64 {
	if t.Total == 0 {
		return 0
	}
	return 100 * float64(t.Solved()) / float64(t.Total)
}

// TallyOf aggregates a result slice.
func TallyOf(results []Result) Tally {
	var t Tally
	for _, r := range results {
		t.Add(r)
	}
	return t
}
