package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"qed2/internal/core"
)

// HTTP suite replay: drives the benchmark suite through a running qed2d
// daemon instead of in-process analysis, returning the same []Result shape
// Run produces, so the golden gate (GoldenFromResults + DiffGolden) applies
// unchanged to service-path verdicts. The client is deliberately built on
// its own wire structs — it speaks the daemon's JSON API, it does not
// import the service package — and it retries everything the service
// contract declares transient: 429 admission rejections, 503 draining,
// connection errors while the daemon restarts, and jobs shed as retriable
// cancellations by a drain. A replay that spans a SIGTERM drain therefore
// converges to the same verdict set as an uninterrupted one.

// ReplayOptions configures ReplayHTTP.
type ReplayOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as X-QED2-Tenant (default "bench").
	Tenant string
	// Inflight bounds concurrently outstanding instances (default 8).
	Inflight int
	// PollInterval is the job-status poll cadence (default 50ms).
	PollInterval time.Duration
	// FailureRetries bounds resubmissions of jobs that end failed (internal
	// error or a sandbox hard fault) before the instance is recorded as a
	// degraded unknown (default 3). Retriable cancellations and admission
	// rejections (429/503/422) are not counted against it.
	FailureRetries int
	// BackoffCap caps the exponential retry backoff (default 2s). Retries
	// wait PollInterval, 2×, 4×, ... up to the cap, each with deterministic
	// jitter in [d/2, d]; an explicit Retry-After from the daemon overrides
	// the schedule for that wait.
	BackoffCap time.Duration
	// JitterSeed seeds the deterministic retry jitter (default 1), so two
	// replays of the same suite against the same daemon behavior wait
	// identically — chaos runs stay reproducible.
	JitterSeed int64
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Progress, when non-nil, is called after each instance completes;
	// invocations are serialized and done is strictly monotone.
	Progress func(done, total int, r Result)
}

func (o ReplayOptions) withDefaults() ReplayOptions {
	if o.Tenant == "" {
		o.Tenant = "bench"
	}
	if o.Inflight <= 0 {
		o.Inflight = 8
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.FailureRetries <= 0 {
		o.FailureRetries = 3
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// replayJob mirrors the daemon's JobView wire shape (the fields the replay
// consumes).
type replayJob struct {
	ID        string        `json:"id"`
	Status    string        `json:"status"`
	Retriable bool          `json:"retriable"`
	Error     string        `json:"error"`
	Report    *replayReport `json:"report"`
}

// replayReport mirrors the daemon's report wire shape.
type replayReport struct {
	Verdict     string    `json:"verdict"`
	Reason      string    `json:"reason"`
	Degraded    string    `json:"degraded"`
	CEOutput    string    `json:"ce_output"`
	CEValues    [2]string `json:"ce_values"`
	CESignals   []string  `json:"ce_signals"`
	Queries     int       `json:"queries"`
	SolverSteps int64     `json:"solver_steps"`
	CacheHits   int       `json:"cache_hits"`
	DurationMS  float64   `json:"duration_ms"`
}

// ReplayHTTP analyzes every instance through the daemon at opts.BaseURL,
// preserving input order. It returns an error only when ctx expires or an
// instance exhausts its retry budget against a persistently failing daemon;
// per-instance compile rejections (HTTP 400) become CompileErr results like
// the in-process runner's.
func ReplayHTTP(ctx context.Context, insts []Instance, opts ReplayOptions) ([]Result, error) {
	o := opts.withDefaults()
	results := make([]Result, len(insts))
	errs := make([]error, len(insts))
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	sem := make(chan struct{}, o.Inflight)
	for i := range insts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			results[i], errs[i] = replayOne(ctx, insts[i], o)
			progressMu.Lock()
			done++
			if o.Progress != nil && errs[i] == nil {
				o.Progress(done, len(insts), results[i])
			}
			progressMu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("bench: replay %s: %w", insts[i].Name, err)
		}
	}
	return results, nil
}

// replayOne drives one instance to a terminal, non-retriable outcome.
func replayOne(ctx context.Context, inst Instance, o ReplayOptions) (Result, error) {
	src := inst.Source()
	t0 := time.Now()
	failures := 0
	bo := newReplayBackoff(o, inst.Name)
	for {
		job, status, retryAfter, err := submit(ctx, o, src)
		switch {
		case err != nil:
			// Daemon unreachable (restarting) — back off and resubmit.
			if err := sleepCtx(ctx, bo.next(0)); err != nil {
				return Result{}, err
			}
			continue
		case status == http.StatusBadRequest:
			return Result{Instance: inst, CompileErr: fmt.Errorf("bench: %s: %s", inst.Name, job.Error)}, nil
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable ||
			status == http.StatusUnprocessableEntity:
			// Transient admission rejections: overload (429), drain (503),
			// or a quarantined digest (422) whose Retry-After is the
			// remaining breaker cooldown — waiting it out lands the resubmit
			// as the half-open probe.
			if err := sleepCtx(ctx, bo.next(retryAfter)); err != nil {
				return Result{}, err
			}
			continue
		case status != http.StatusOK && status != http.StatusAccepted:
			return Result{}, fmt.Errorf("unexpected HTTP %d from submit", status)
		}
		// Admission succeeded — the daemon is healthy, so the next retriable
		// event starts a fresh backoff ramp.
		bo.reset()

		final, err := pollJob(ctx, o, job)
		if err != nil {
			return Result{}, err
		}
		switch final.Status {
		case "done":
			return resultFromReplay(inst, final.Report, time.Since(t0)), nil
		case "canceled":
			if final.Retriable {
				// Shed by a drain; the restarted daemon takes the resubmit.
				if err := sleepCtx(ctx, bo.next(0)); err != nil {
					return Result{}, err
				}
				continue
			}
			return Result{}, fmt.Errorf("job %s canceled non-retriably: %s", final.ID, final.Error)
		case "failed":
			failures++
			if failures <= o.FailureRetries {
				if err := sleepCtx(ctx, bo.next(0)); err != nil {
					return Result{}, err
				}
				continue
			}
			// Persistently failing instance: record the degradation rather
			// than wedge the suite, mirroring the in-process panic boundary.
			res := Result{Instance: inst, AnalyzeTime: time.Since(t0)}
			res.Report = &core.Report{
				Verdict:  core.VerdictUnknown,
				Reason:   final.Error,
				Degraded: core.DegradedInternal,
			}
			return res, nil
		default:
			return Result{}, fmt.Errorf("job %s reached unexpected status %q", final.ID, final.Status)
		}
	}
}

// replayBackoff is the per-instance retry schedule: capped exponential
// growth from PollInterval with deterministic jitter. Jitter decorrelates
// the retry storms of instances rejected by the same overload burst without
// sacrificing reproducibility — the wait for (seed, instance, attempt) is a
// pure function.
type replayBackoff struct {
	base, cap time.Duration
	seed      uint64
	attempt   uint
}

func newReplayBackoff(o ReplayOptions, name string) *replayBackoff {
	return &replayBackoff{
		base: o.PollInterval,
		cap:  o.BackoffCap,
		seed: uint64(o.JitterSeed) ^ hashName(name),
	}
}

func (b *replayBackoff) reset() { b.attempt = 0 }

// next returns the wait before the next retry. A positive retryAfter (the
// daemon's explicit Retry-After) overrides the exponential schedule — the
// server knows its own cooldowns — but still advances the attempt counter.
func (b *replayBackoff) next(retryAfter time.Duration) time.Duration {
	attempt := b.attempt
	if b.attempt < 30 {
		b.attempt++
	}
	if retryAfter > 0 {
		return retryAfter
	}
	d := b.base << attempt
	if d > b.cap || d <= 0 {
		d = b.cap
	}
	// Deterministic jitter in [d/2, d].
	half := d / 2
	span := uint64(d-half) + 1
	return half + time.Duration(mix64(b.seed^uint64(attempt)*0x9E3779B97F4A7C15)%span)
}

// hashName is FNV-1a over the instance name.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// submit POSTs the circuit source, returning the parsed job, the HTTP
// status, and any Retry-After the daemon attached to a rejection. A non-nil
// error means the request never got an HTTP response (connection refused
// mid-restart).
func submit(ctx context.Context, o ReplayOptions, src string) (replayJob, int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		o.BaseURL+"/v1/analyze", strings.NewReader(src))
	if err != nil {
		return replayJob{}, 0, 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-QED2-Tenant", o.Tenant)
	resp, err := o.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return replayJob{}, 0, 0, ctx.Err()
		}
		return replayJob{}, 0, 0, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var job replayJob
	// Error statuses may carry a plain-text body; tolerate non-JSON there.
	_ = json.Unmarshal(b, &job)
	if job.Error == "" && resp.StatusCode >= 400 {
		job.Error = strings.TrimSpace(string(b))
	}
	if (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted) && job.ID == "" {
		// A 2xx without a job ID is a torn response (daemon killed
		// mid-write); report it as unreachable so the caller resubmits.
		return replayJob{}, 0, 0, fmt.Errorf("torn submit response")
	}
	return job, resp.StatusCode, retryAfterOf(resp), nil
}

// retryAfterOf parses a delay-seconds Retry-After header (the only form the
// daemon emits); absent or unparsable yields zero.
func retryAfterOf(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// pollJob follows a job to a terminal status, resubmitting-friendly: a 404
// (daemon restarted without this job) or a connection error is reported as
// a retriable canceled job so the caller loops back to submit.
func pollJob(ctx context.Context, o ReplayOptions, job replayJob) (replayJob, error) {
	for {
		if terminalStatus(job.Status) {
			return job, nil
		}
		if err := sleepCtx(ctx, o.PollInterval); err != nil {
			return replayJob{}, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			o.BaseURL+"/v1/jobs/"+job.ID, nil)
		if err != nil {
			return replayJob{}, err
		}
		resp, err := o.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return replayJob{}, ctx.Err()
			}
			return replayJob{ID: job.ID, Status: "canceled", Retriable: true, Error: "daemon unreachable"}, nil
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		var next replayJob
		derr := rerr
		if derr == nil {
			derr = json.Unmarshal(b, &next)
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return replayJob{ID: job.ID, Status: "canceled", Retriable: true, Error: "job lost across restart"}, nil
		case resp.StatusCode != http.StatusOK:
			return replayJob{}, fmt.Errorf("polling job %s: HTTP %d", job.ID, resp.StatusCode)
		case derr != nil:
			return replayJob{}, fmt.Errorf("polling job %s: %w", job.ID, derr)
		}
		job = next
	}
}

func terminalStatus(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// resultFromReplay rehydrates a wire report into the Result shape the
// golden gate consumes (mirroring resultFromRecord: witnesses and system
// stats are not carried over HTTP).
func resultFromReplay(inst Instance, rep *replayReport, elapsed time.Duration) Result {
	res := Result{Instance: inst, AnalyzeTime: elapsed}
	if rep == nil {
		res.Report = &core.Report{Verdict: core.VerdictUnknown, Reason: "daemon returned no report", Degraded: core.DegradedInternal}
		return res
	}
	v, _ := core.ParseVerdict(rep.Verdict)
	res.Report = &core.Report{Verdict: v, Reason: rep.Reason, Degraded: core.Degradation(rep.Degraded)}
	res.Report.Stats.Queries = rep.Queries
	res.Report.Stats.SolverSteps = rep.SolverSteps
	res.Report.Stats.CacheHits = rep.CacheHits
	res.CEOutput = rep.CEOutput
	res.CEVal1 = rep.CEValues[0]
	res.CEVal2 = rep.CEValues[1]
	res.CEDiffers = rep.CESignals
	return res
}

// sleepCtx sleeps, honoring cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
