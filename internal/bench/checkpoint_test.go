package bench

import (
	"os"
	"path/filepath"
	"testing"

	"qed2/internal/core"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(InstanceRecord{Name: "a", Verdict: "safe", Queries: 3})
	w.Append(InstanceRecord{Name: "b", Verdict: "unsafe", CEOutput: "out", CESignals: []string{"out", "tmp"}})
	w.Append(InstanceRecord{Name: "c", Verdict: "compile-error", Reason: "bench: c: boom"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records, want 3", len(got))
	}
	if got["a"].Verdict != "safe" || got["a"].Queries != 3 {
		t.Fatalf("record a = %+v", got["a"])
	}

	res := resultFromRecord(Instance{Name: "b"}, got["b"])
	if res.Report == nil || res.Report.Verdict != core.VerdictUnsafe {
		t.Fatalf("rehydrated b = %+v", res)
	}
	if res.CEOutput != "out" || len(res.CEDiffers) != 2 {
		t.Fatalf("rehydrated b counterexample = %q %v", res.CEOutput, res.CEDiffers)
	}
	res = resultFromRecord(Instance{Name: "c"}, got["c"])
	if res.CompileErr == nil || res.Report != nil {
		t.Fatalf("rehydrated c = %+v", res)
	}
}

func TestLoadCheckpointTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"name":"a","verdict":"safe"}
{"name":"b","verdict":"unsafe"}
{"name":"c","verd`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records from torn checkpoint, want 2", len(got))
	}
	if _, ok := got["c"]; ok {
		t.Fatal("torn final record was not discarded")
	}
}

func TestLoadCheckpointMissingFileIsEmpty(t *testing.T) {
	got, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing checkpoint loaded %d records", len(got))
	}
}

func TestLoadCheckpointRejectsGarbageMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"name":"a","verdict":"safe"}
not json at all
{"name":"b","verdict":"unsafe"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}
