package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qed2/internal/core"
)

// ckCfg is the analyzer configuration checkpoint tests stamp and resume
// under.
func ckCfg() core.Config {
	return core.Config{QuerySteps: 500, GlobalSteps: 10_000, Seed: 1}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Append(InstanceRecord{Name: "a", Verdict: "safe", Queries: 3})
	w.Append(InstanceRecord{Name: "b", Verdict: "unsafe", CEOutput: "out", CESignals: []string{"out", "tmp"}})
	w.Append(InstanceRecord{Name: "c", Verdict: "compile-error", Reason: "bench: c: boom"})
	w.Append(InstanceRecord{Name: "d", Verdict: "unknown", Reason: "internal error: boom", Degraded: string(core.DegradedInternal)})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("loaded %d records, want 4", len(got))
	}
	if got["a"].Verdict != "safe" || got["a"].Queries != 3 {
		t.Fatalf("record a = %+v", got["a"])
	}

	res := resultFromRecord(Instance{Name: "b"}, got["b"])
	if res.Report == nil || res.Report.Verdict != core.VerdictUnsafe {
		t.Fatalf("rehydrated b = %+v", res)
	}
	if res.CEOutput != "out" || len(res.CEDiffers) != 2 {
		t.Fatalf("rehydrated b counterexample = %q %v", res.CEOutput, res.CEDiffers)
	}
	res = resultFromRecord(Instance{Name: "c"}, got["c"])
	if res.CompileErr == nil || res.Report != nil {
		t.Fatalf("rehydrated c = %+v", res)
	}
	res = resultFromRecord(Instance{Name: "d"}, got["d"])
	if res.Report == nil || res.Report.Degraded != core.DegradedInternal {
		t.Fatalf("rehydrated d lost its degradation flag: %+v", res.Report)
	}
}

// TestCheckpointHeaderWrittenOncePerFile pins the append contract: reopening
// an existing checkpoint (the -resume path) must not write a second header.
func TestCheckpointHeaderWrittenOncePerFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	for i := 0; i < 2; i++ {
		w, err := NewCheckpointWriter(path, ckCfg())
		if err != nil {
			t.Fatal(err)
		}
		w.Append(InstanceRecord{Name: string(rune('a' + i)), Verdict: "safe"})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), `"config"`); n != 1 {
		t.Fatalf("checkpoint has %d header lines after two sessions, want 1:\n%s", n, b)
	}
	got, err := LoadCheckpoint(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
}

// TestLoadCheckpointRejectsConfigMismatch: resuming under different budgets,
// seed, or mode must refuse the checkpoint instead of silently rehydrating
// records produced under another configuration.
func TestLoadCheckpointRejectsConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Append(InstanceRecord{Name: "a", Verdict: "safe"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"query steps", func(c *core.Config) { c.QuerySteps = 9_999 }},
		{"global steps", func(c *core.Config) { c.GlobalSteps = 1 }},
		{"seed", func(c *core.Config) { c.Seed = 2 }},
		{"mode", func(c *core.Config) { c.Mode = core.ModeSMTOnly }},
		{"slice radius", func(c *core.Config) { c.SliceRadius = 3 }},
		{"rule ablation", func(c *core.Config) { c.DisableBitsRule = true }},
	} {
		cfg := ckCfg()
		tc.mutate(&cfg)
		if _, err := LoadCheckpoint(path, cfg); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		} else if !strings.Contains(err.Error(), "written under config") {
			t.Errorf("%s mismatch: unhelpful error %v", tc.name, err)
		}
	}
	// Workers and Timeout do not change step-budget-decided verdicts and
	// must not be stamped — a run interrupted at -workers 8 resumes at
	// -workers 1.
	cfg := ckCfg()
	cfg.Workers = 8
	cfg.Timeout = 1
	if _, err := LoadCheckpoint(path, cfg); err != nil {
		t.Errorf("workers/timeout change rejected: %v", err)
	}
}

func TestLoadCheckpointRejectsMissingHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"name":"a","verdict":"safe"}
{"name":"b","verdict":"unsafe"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path, ckCfg())
	if err == nil {
		t.Fatal("headerless checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "no config header") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestLoadCheckpointRejectsCorruptVerdict: a record whose verdict string is
// valid JSON but not a verdict ("Safe", "safe ") must fail loading instead
// of silently rehydrating as unknown.
func TestLoadCheckpointRejectsCorruptVerdict(t *testing.T) {
	for _, bad := range []string{"Safe", "safe ", "", "undecided"} {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		w, err := NewCheckpointWriter(path, ckCfg())
		if err != nil {
			t.Fatal(err)
		}
		w.Append(InstanceRecord{Name: "a", Verdict: bad})
		w.Append(InstanceRecord{Name: "b", Verdict: "safe"})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path, ckCfg()); err == nil {
			t.Errorf("verdict %q accepted", bad)
		}
	}
}

func TestLoadCheckpointTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Append(InstanceRecord{Name: "a", Verdict: "safe"})
	w.Append(InstanceRecord{Name: "b", Verdict: "unsafe"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"name":"c","verd`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records from torn checkpoint, want 2", len(got))
	}
	if _, ok := got["c"]; ok {
		t.Fatal("torn final record was not discarded")
	}
}

func TestLoadCheckpointMissingFileIsEmpty(t *testing.T) {
	got, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.jsonl"), ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing checkpoint loaded %d records", len(got))
	}
}

func TestLoadCheckpointRejectsGarbageMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := NewCheckpointWriter(path, ckCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Append(InstanceRecord{Name: "a", Verdict: "safe"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n" + `{"name":"b","verdict":"unsafe"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, ckCfg()); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}
