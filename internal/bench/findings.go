package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"qed2/internal/sa"
)

// The golden-findings regression gate: a checked-in snapshot of the static
// analysis pass's findings for every suite instance plus the first
// FindingsCorpusSlice generated-corpus instances, diffed against a fresh
// run in CI (testdata/golden_findings.json). The static pass is solver-free
// and deterministic, so unlike the verdict gate this one needs no pinned
// budgets — any change in detectors, the abstract interpretation, or the
// compiler's source-location plumbing shows up as a findings diff and must
// be acknowledged by regenerating the file (qed2bench -findings-out).

// FindingsCorpusSlice is how many corpus instances (in manifest order) the
// findings gate pins alongside the hand-written suite. A fixed prefix keeps
// the gate fast and its golden file reviewable while still exercising the
// detectors on generator-shaped circuits; the full corpus is covered by the
// (budgeted, sharded) verdict gate instead.
const FindingsCorpusSlice = 100

// InstanceFindings is one instance's pinned lint output.
type InstanceFindings struct {
	Name     string       `json:"name"`
	Findings []sa.Finding `json:"findings"`
}

// FindingsFile is the checked-in findings snapshot.
type FindingsFile struct {
	Instances []InstanceFindings `json:"instances"`
}

// CollectFindings compiles every instance and runs the static pass,
// returning the snapshot sorted by instance name. Compilation failures are
// errors: every suite instance must compile.
func CollectFindings(insts []Instance) (*FindingsFile, error) {
	out := &FindingsFile{}
	for _, inst := range insts {
		prog, err := inst.Compile()
		if err != nil {
			return nil, fmt.Errorf("bench: compiling %s: %w", inst.Name, err)
		}
		res := sa.AnalyzeProgram(prog, nil)
		findings := res.Findings
		if findings == nil {
			findings = []sa.Finding{}
		}
		out.Instances = append(out.Instances, InstanceFindings{Name: inst.Name, Findings: findings})
	}
	sort.Slice(out.Instances, func(i, j int) bool { return out.Instances[i].Name < out.Instances[j].Name })
	return out, nil
}

// Marshal renders the findings file as indented JSON.
func (f *FindingsFile) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadFindings reads a findings file from disk.
func LoadFindings(path string) (*FindingsFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &FindingsFile{}
	if err := json.Unmarshal(b, f); err != nil {
		return nil, fmt.Errorf("bench: parsing findings file %s: %w", path, err)
	}
	return f, nil
}

// DiffFindings compares a fresh snapshot against the golden one, returning
// one readable line per discrepancy (empty = identical). The gate fails
// closed: a missing instance, an extra instance, a dropped finding, a new
// finding, and any field change (severity, location, message, …) all count.
// Instances are matched by name; findings are compared positionally, which
// is exact because sa fixes a canonical total order on findings.
func DiffFindings(golden, fresh *FindingsFile) []string {
	var diffs []string
	goldenBy := map[string][]sa.Finding{}
	for _, inst := range golden.Instances {
		goldenBy[inst.Name] = inst.Findings
	}
	seen := map[string]bool{}
	for _, f := range fresh.Instances {
		seen[f.Name] = true
		g, ok := goldenBy[f.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: new instance (%d findings) not in golden file — regenerate with -findings-out", f.Name, len(f.Findings)))
			continue
		}
		if len(g) != len(f.Findings) {
			diffs = append(diffs, fmt.Sprintf("%s: finding count changed %d -> %d", f.Name, len(g), len(f.Findings)))
			continue
		}
		for i := range g {
			a, _ := json.Marshal(g[i])
			b, _ := json.Marshal(f.Findings[i])
			if string(a) != string(b) {
				diffs = append(diffs, fmt.Sprintf("%s: finding #%d changed %s -> %s", f.Name, i, a, b))
			}
		}
	}
	for _, inst := range golden.Instances {
		if !seen[inst.Name] {
			diffs = append(diffs, fmt.Sprintf("%s: instance missing from fresh run (%d golden findings)", inst.Name, len(inst.Findings)))
		}
	}
	sort.Strings(diffs)
	return diffs
}
