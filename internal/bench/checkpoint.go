package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"qed2/internal/buildinfo"
	"qed2/internal/core"
)

// Checkpointing: qed2bench persists one JSON InstanceRecord per line as
// instances complete, so a crashed or interrupted suite run can resume
// (-resume) from the instances already decided instead of restarting. The
// first line of the file is a header stamping the analyzer configuration
// (like GoldenFile.Config): resuming under different budgets, seed, or mode
// would silently mix records from incomparable runs, so LoadCheckpoint
// refuses a mismatched stamp. Record lines are append-only JSONL — a kill
// can at worst tear the final line, which LoadCheckpoint tolerates by
// discarding it.

// CheckpointConfig pins the analyzer configuration a checkpoint's records
// were produced under. It covers every Config field that determines
// verdicts deterministically; Workers is deliberately absent (reports are
// identical for any worker count) and so is the wall-clock Timeout (like
// GoldenConfig: suite runs use a timeout far above what any instance needs,
// so the step budgets decide).
type CheckpointConfig struct {
	Mode        string `json:"mode"`
	SliceRadius int    `json:"slice_radius"`
	QuerySteps  int64  `json:"query_steps"`
	GlobalSteps int64  `json:"global_steps"`
	Seed        int64  `json:"seed"`
	NoSolveRule bool   `json:"no_solve_rule,omitempty"`
	NoBitsRule  bool   `json:"no_bits_rule,omitempty"`
}

// StampOf derives the configuration stamp from an analyzer configuration.
// It is shared with the qed2d service layer, whose drain checkpoint and
// content-addressed report store key on the same stamp — one definition of
// "same configuration" across every persisted artifact.
func StampOf(cfg core.Config) CheckpointConfig { return checkpointConfigOf(cfg) }

// checkpointConfigOf derives the stamp from an analyzer configuration.
func checkpointConfigOf(cfg core.Config) CheckpointConfig {
	return CheckpointConfig{
		Mode:        cfg.Mode.String(),
		SliceRadius: cfg.SliceRadius,
		QuerySteps:  cfg.QuerySteps,
		GlobalSteps: cfg.GlobalSteps,
		Seed:        cfg.Seed,
		NoSolveRule: cfg.DisableSolveRule,
		NoBitsRule:  cfg.DisableBitsRule,
	}
}

// checkpointHeader is the first line of a checkpoint file. The non-nil
// Config discriminates it from InstanceRecord lines (which require "name").
// Version stamps the build that wrote the file; it is informational —
// resumability is decided by the config stamp alone, since verdicts are
// deterministic per configuration across builds of the same source.
type checkpointHeader struct {
	Config  *CheckpointConfig `json:"config"`
	Version string            `json:"version,omitempty"`
}

// CheckpointWriter appends instance records to a JSONL checkpoint file.
// Append is safe for concurrent use by the bench worker pool. Write errors
// are sticky: the first one is remembered and reported by Err, and later
// Appends become no-ops, so a full disk cannot corrupt the tail of the file
// with interleaved partial lines.
type CheckpointWriter struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// NewCheckpointWriter opens (creating or appending to) the checkpoint file.
// A fresh (empty or new) file gets a header line stamping cfg; appending to
// a resumed file keeps the existing header — LoadCheckpoint has already
// verified it matches before the writer is opened.
func NewCheckpointWriter(path string, cfg core.Config) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: opening checkpoint %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: opening checkpoint %s: %w", path, err)
	}
	if st.Size() == 0 {
		stamp := checkpointConfigOf(cfg)
		b, err := json.Marshal(checkpointHeader{Config: &stamp, Version: buildinfo.Get().String()})
		if err == nil {
			_, err = f.Write(append(b, '\n'))
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: writing checkpoint header %s: %w", path, err)
		}
	}
	return &CheckpointWriter{f: f}, nil
}

// Append writes one record as a single JSONL line.
func (w *CheckpointWriter) Append(rec InstanceRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		w.setErr(err)
		return
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if _, err := w.f.Write(b); err != nil {
		w.err = err
	}
}

func (w *CheckpointWriter) setErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first write error, if any.
func (w *CheckpointWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// LoadCheckpoint reads a checkpoint file back into a name-keyed record map,
// refusing one whose header stamps a configuration different from cfg —
// rehydrating records produced under different budgets, seed, or mode would
// silently mix incomparable runs into one result set. A missing file is an
// empty checkpoint (resume of a run that never started). A torn final line
// — the signature of a mid-write kill — is discarded; malformed lines
// anywhere else (including an unparseable or missing header) are an error,
// since they mean the file is not a checkpoint of this run.
func LoadCheckpoint(path string, cfg core.Config) (map[string]InstanceRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return map[string]InstanceRecord{}, nil
		}
		return nil, fmt.Errorf("bench: reading checkpoint %s: %w", path, err)
	}
	lines := strings.Split(string(b), "\n")
	// Trim trailing blank lines so "last line" means last record attempt.
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return map[string]InstanceRecord{}, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Config == nil {
		return nil, fmt.Errorf("bench: checkpoint %s has no config header (corrupt, or predates config stamping) — delete it and rerun", path)
	}
	if want := checkpointConfigOf(cfg); *hdr.Config != want {
		return nil, fmt.Errorf("bench: checkpoint %s was written under config %+v but this run uses %+v — delete it or rerun with matching flags", path, *hdr.Config, want)
	}
	out := make(map[string]InstanceRecord, len(lines)-1)
	for i, line := range lines[1:] {
		lineNo := i + 2 // 1-based, after the header
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec InstanceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if lineNo == len(lines) {
				break // torn final line from an interrupted write
			}
			return nil, fmt.Errorf("bench: checkpoint %s line %d: %w", path, lineNo, err)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("bench: checkpoint %s line %d: record without instance name", path, lineNo)
		}
		if _, ok := core.ParseVerdict(rec.Verdict); !ok && rec.Verdict != "compile-error" {
			return nil, fmt.Errorf("bench: checkpoint %s line %d: unrecognized verdict %q", path, lineNo, rec.Verdict)
		}
		out[rec.Name] = rec
	}
	return out, nil
}

// resultFromRecord rehydrates a checkpointed record into a Result carrying
// everything the tables, tallies and golden diff consume. Witnesses and the
// compiled system statistics are not persisted; the rehydrated Result
// reflects that (System is zero, Report.Counter is nil). rec.Verdict has
// been validated by LoadCheckpoint.
func resultFromRecord(inst Instance, rec InstanceRecord) Result {
	res := Result{
		Instance:    inst,
		AnalyzeTime: time.Duration(rec.AnalyzeMS * float64(time.Millisecond)),
	}
	if rec.Verdict == "compile-error" {
		res.CompileErr = errors.New(rec.Reason)
		return res
	}
	v, _ := core.ParseVerdict(rec.Verdict)
	res.Report = &core.Report{Verdict: v, Reason: rec.Reason, Degraded: core.Degradation(rec.Degraded)}
	res.Report.Stats.Queries = rec.Queries
	res.Report.Stats.SolverSteps = rec.SolverSteps
	res.Report.Stats.CacheHits = rec.CacheHits
	res.CEOutput = rec.CEOutput
	res.CEDiffers = rec.CESignals
	return res
}
