package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"qed2/internal/core"
)

// Checkpointing: qed2bench persists one JSON InstanceRecord per line as
// instances complete, so a crashed or interrupted suite run can resume
// (-resume) from the instances already decided instead of restarting. The
// format is append-only JSONL — a kill can at worst tear the final line,
// which LoadCheckpoint tolerates by discarding it.

// CheckpointWriter appends instance records to a JSONL checkpoint file.
// Append is safe for concurrent use by the bench worker pool. Write errors
// are sticky: the first one is remembered and reported by Err, and later
// Appends become no-ops, so a full disk cannot corrupt the tail of the file
// with interleaved partial lines.
type CheckpointWriter struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// NewCheckpointWriter opens (creating or appending to) the checkpoint file.
func NewCheckpointWriter(path string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: opening checkpoint %s: %w", path, err)
	}
	return &CheckpointWriter{f: f}, nil
}

// Append writes one record as a single JSONL line.
func (w *CheckpointWriter) Append(rec InstanceRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		w.setErr(err)
		return
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if _, err := w.f.Write(b); err != nil {
		w.err = err
	}
}

func (w *CheckpointWriter) setErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first write error, if any.
func (w *CheckpointWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// LoadCheckpoint reads a checkpoint file back into a name-keyed record map.
// A missing file is an empty checkpoint (resume of a run that never
// started). A torn final line — the signature of a mid-write kill — is
// discarded; malformed lines anywhere else are an error, since they mean
// the file is not a checkpoint.
func LoadCheckpoint(path string) (map[string]InstanceRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return map[string]InstanceRecord{}, nil
		}
		return nil, fmt.Errorf("bench: reading checkpoint %s: %w", path, err)
	}
	lines := strings.Split(string(b), "\n")
	// Trim trailing blank lines so "last line" means last record attempt.
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	out := make(map[string]InstanceRecord, len(lines))
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec InstanceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final line from an interrupted write
			}
			return nil, fmt.Errorf("bench: checkpoint %s line %d: %w", path, i+1, err)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("bench: checkpoint %s line %d: record without instance name", path, i+1)
		}
		out[rec.Name] = rec
	}
	return out, nil
}

// resultFromRecord rehydrates a checkpointed record into a Result carrying
// everything the tables, tallies and golden diff consume. Witnesses and the
// compiled system statistics are not persisted; the rehydrated Result
// reflects that (System is zero, Report.Counter is nil).
func resultFromRecord(inst Instance, rec InstanceRecord) Result {
	res := Result{
		Instance:    inst,
		AnalyzeTime: time.Duration(rec.AnalyzeMS * float64(time.Millisecond)),
	}
	if rec.Verdict == "compile-error" {
		res.CompileErr = errors.New(rec.Reason)
		return res
	}
	v, _ := core.ParseVerdict(rec.Verdict)
	res.Report = &core.Report{Verdict: v, Reason: rec.Reason}
	res.Report.Stats.Queries = rec.Queries
	res.Report.Stats.SolverSteps = rec.SolverSteps
	res.Report.Stats.CacheHits = rec.CacheHits
	res.CEOutput = rec.CEOutput
	res.CEDiffers = rec.CESignals
	return res
}
