package bench

import (
	"strings"
	"testing"
	"time"

	"qed2/internal/circom"
	"qed2/internal/core"
)

func TestSuiteShape(t *testing.T) {
	insts := Suite()
	if len(insts) != SuiteSize {
		t.Fatalf("suite has %d instances, want %d", len(insts), SuiteSize)
	}
	names := map[string]bool{}
	vulns := 0
	unsafe := 0
	for _, in := range insts {
		if names[in.Name] {
			t.Errorf("duplicate instance name %q", in.Name)
		}
		names[in.Name] = true
		if in.Vuln {
			vulns++
			if in.Expect != ExpectUnsafe {
				t.Errorf("%s marked vuln but expectation is %s", in.Name, in.Expect)
			}
		}
		if in.Expect == ExpectUnsafe {
			unsafe++
		}
	}
	// The abstract commits to 8 previously-unknown vulnerabilities.
	if vulns != 8 {
		t.Errorf("vulnerability set has %d instances, want 8", vulns)
	}
	if unsafe < 15 {
		t.Errorf("only %d unsafe ground-truth instances; the tail looks too thin", unsafe)
	}
	cats := Categories(insts)
	if len(cats) < 8 {
		t.Errorf("only %d categories: %v", len(cats), cats)
	}
	if _, ok := ByName(insts, "Num2Bits(26)"); !ok {
		t.Error("ByName failed for a known instance")
	}
	if _, ok := ByName(insts, "Zebra(1)"); ok {
		t.Error("ByName found a ghost")
	}
}

func TestInstanceSourceAssembly(t *testing.T) {
	in, _ := ByName(Suite(), "LessThan(8)")
	src := in.Source()
	for _, want := range []string{"pragma circom", `include "comparators.circom"`, "component main = LessThan(8);"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestExpectationString(t *testing.T) {
	if ExpectSafe.String() != "safe" || ExpectUnsafe.String() != "unsafe" || ExpectHard.String() != "hard" {
		t.Error("Expectation strings")
	}
}

// TestSuiteVerdictsSound runs the analyzer over the full 163-instance suite
// and checks every verdict against the ground-truth labels; it also pins
// the headline numbers (every vulnerability found, solve rate).
func TestSuiteVerdictsSound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run skipped with -short")
	}
	insts := Suite()
	results := Run(insts, &RunOptions{Config: core.Config{
		QuerySteps:  20_000,
		GlobalSteps: 400_000,
		Timeout:     5 * time.Second,
		Seed:        1,
	}})
	for _, r := range results {
		if r.CompileErr != nil {
			t.Errorf("%s: compile error: %v", r.Instance.Name, r.CompileErr)
			continue
		}
		switch r.Report.Verdict {
		case core.VerdictSafe:
			if r.Instance.Expect == ExpectUnsafe {
				t.Errorf("%s: UNSOUND Safe verdict on a known-unsafe circuit", r.Instance.Name)
			}
		case core.VerdictUnsafe:
			if r.Instance.Expect == ExpectSafe {
				t.Errorf("%s: UNSOUND Unsafe verdict on a known-safe circuit", r.Instance.Name)
			}
			if r.CEOutput == "" {
				t.Errorf("%s: unsafe verdict without counterexample summary", r.Instance.Name)
			}
		}
		if r.Instance.Vuln && r.Report.Verdict != core.VerdictUnsafe {
			t.Errorf("%s: vulnerability not flagged (verdict %s, %s)",
				r.Instance.Name, r.Report.Verdict, r.Report.Reason)
		}
	}
	tal := TallyOf(results)
	if tal.SolvedPct() < 90 {
		t.Errorf("solve rate %.1f%% below expectation", tal.SolvedPct())
	}
	if tal.Unsafe < 15 {
		t.Errorf("only %d unsafe verdicts", tal.Unsafe)
	}
	t.Logf("suite: %d safe, %d unsafe, %d unknown (%.1f%% solved)",
		tal.Safe, tal.Unsafe, tal.Unknown, tal.SolvedPct())
}

// fakeResults builds a small synthetic result set for formatter tests.
func fakeResults() []Result {
	mk := func(name, cat string, verdict core.Verdict, vuln bool, cons int, d time.Duration) Result {
		rep := &core.Report{Verdict: verdict}
		rep.Stats.Queries = 2
		rep.Stats.PropagationUnique = 3
		rep.Stats.SMTUnique = 1
		r := Result{
			Instance:    Instance{Name: name, Category: cat, Vuln: vuln, Expect: ExpectSafe},
			Report:      rep,
			AnalyzeTime: d,
		}
		r.System.Constraints = cons
		r.System.Signals = cons + 2
		if verdict == core.VerdictUnsafe {
			r.CEOutput, r.CEVal1, r.CEVal2 = "out", "0", "1"
			rep.Counter = &core.CounterExample{}
		}
		return r
	}
	return []Result{
		mk("A(1)", "CatX", core.VerdictSafe, false, 5, time.Millisecond),
		mk("A(2)", "CatX", core.VerdictUnknown, false, 9, 2*time.Millisecond),
		mk("B()", "CatY", core.VerdictUnsafe, true, 3, 500*time.Microsecond),
	}
}

func TestTableFormatters(t *testing.T) {
	rs := fakeResults()
	t1 := Table1(rs)
	for _, want := range []string{"CatX", "CatY", "TOTAL", "Constraints(max)"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2(rs)
	for _, want := range []string{"Solved%", "CatY", "TOTAL"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3(map[string][]Result{"qed2": rs}, []string{"qed2"})
	if !strings.Contains(t3, "qed2") || !strings.Contains(t3, "2/3") {
		t.Errorf("Table3 malformed:\n%s", t3)
	}
	t4 := Table4(rs)
	if !strings.Contains(t4, "B()") || !strings.Contains(t4, "out") {
		t.Errorf("Table4 missing the vulnerable circuit:\n%s", t4)
	}
	if strings.Contains(t4, "A(1)") {
		t.Errorf("Table4 includes a non-vuln circuit:\n%s", t4)
	}
	f1 := Figure1(map[string][]Result{"qed2": rs}, []string{"qed2"})
	if !strings.Contains(f1, "solved 2/3") {
		t.Errorf("Figure1 malformed:\n%s", f1)
	}
	f2 := Figure2(map[int][]Result{1: rs, 2: rs})
	if !strings.Contains(f2, "Radius") || !strings.Contains(f2, "PropFacts") {
		t.Errorf("Figure2 malformed:\n%s", f2)
	}
	f3 := Figure3(rs)
	if !strings.Contains(f3, "B()") {
		t.Errorf("Figure3 malformed:\n%s", f3)
	}
	// Figure3 sorts by constraint count: B() (3) must come before A(2) (9).
	if strings.Index(f3, "B()") > strings.Index(f3, "A(2)") {
		t.Errorf("Figure3 not sorted by size:\n%s", f3)
	}
}

func TestTallyArithmetic(t *testing.T) {
	rs := fakeResults()
	tal := TallyOf(rs)
	if tal.Total != 3 || tal.Safe != 1 || tal.Unsafe != 1 || tal.Unknown != 1 {
		t.Errorf("tally = %+v", tal)
	}
	if tal.Solved() != 2 {
		t.Errorf("Solved = %d", tal.Solved())
	}
	if pct := tal.SolvedPct(); pct < 66 || pct > 67 {
		t.Errorf("SolvedPct = %f", pct)
	}
	var empty Tally
	if empty.SolvedPct() != 0 {
		t.Error("empty tally pct")
	}
	ce := Result{CompileErr: errFake}
	tal.Add(ce)
	if tal.CompileErrors != 1 {
		t.Error("compile error not tallied")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	insts := Suite()[:12]
	cfg := core.Config{QuerySteps: 5_000, GlobalSteps: 50_000, Seed: 1}
	serial := Run(insts, &RunOptions{Config: cfg, Workers: 1})
	parallel := Run(insts, &RunOptions{Config: cfg, Workers: 4})
	for i := range insts {
		sv, pv := serial[i].Report.Verdict, parallel[i].Report.Verdict
		if sv != pv {
			t.Errorf("%s: serial %v != parallel %v", insts[i].Name, sv, pv)
		}
	}
}

func TestRunnerProgressCallback(t *testing.T) {
	insts := Suite()[:3]
	var calls int
	Run(insts, &RunOptions{
		Config:   core.Config{QuerySteps: 1000, GlobalSteps: 5000},
		Workers:  2,
		Progress: func(done, total int, r Result) { calls++ },
	})
	if calls != 3 {
		t.Errorf("progress calls = %d, want 3", calls)
	}
}

// TestExtendedLibraryTemplates covers library templates that are not part
// of the pinned 163-instance suite: they must compile, and the analyzer
// must never claim safety for the ladder step that inherits the Montgomery
// denominators.
func TestExtendedLibraryTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	cases := []struct {
		main      string
		neverSafe bool
	}{
		{"component main = Multiplexor2();", false},
		{"component main = BabyCheck();", false},
		{"component main = BitElementMulAny();", true},
		{"component main = MiMCFeistel(5);", false},
		{"component main = MiMCSponge(1, 5, 1);", false},
		{"component main = Bits2Num_strict();", false},
	}
	lib := Library()
	for _, c := range cases {
		src := `pragma circom 2.0.0;
include "escalarmulany.circom";
include "edwards.circom";
include "mimc.circom";
include "bitify_strict.circom";
` + c.main
		prog, err := circom.Compile(src, &circom.CompileOptions{Library: lib})
		if err != nil {
			t.Errorf("%s: compile: %v", c.main, err)
			continue
		}
		r := core.Analyze(prog.System, &core.Config{
			QuerySteps: 10_000, GlobalSteps: 100_000,
			Timeout: 5 * time.Second, Seed: 1,
		})
		if c.neverSafe && r.Verdict == core.VerdictSafe {
			t.Errorf("%s: claimed Safe but inherits the Montgomery bugs", c.main)
		}
	}
}
