package bench

import (
	"fmt"
	"testing"

	"qed2/internal/core"
)

func goldenTestConfig() core.Config {
	return core.Config{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in          string
		index, toto int
		ok          bool
	}{
		{"1/1", 1, 1, true},
		{"2/4", 2, 4, true},
		{"4/4", 4, 4, true},
		{"0/4", 0, 0, false},
		{"5/4", 0, 0, false},
		{"-1/4", 0, 0, false},
		{"1/0", 0, 0, false},
		{"x/4", 0, 0, false},
		{"1/x", 0, 0, false},
		{"14", 0, 0, false},
		{"", 0, 0, false},
	} {
		i, n, err := ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShard(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (i != tc.index || n != tc.toto) {
			t.Errorf("ParseShard(%q) = %d/%d, want %d/%d", tc.in, i, n, tc.index, tc.toto)
		}
	}
}

// TestShardPartition checks the core sharding invariant: the n shards are
// disjoint and their union, in any order, is exactly the input list.
func TestShardPartition(t *testing.T) {
	insts := make([]Instance, 17)
	for i := range insts {
		insts[i] = Instance{Name: fmt.Sprintf("i%02d", i)}
	}
	for _, n := range []int{1, 2, 3, 4, 5, 17, 20} {
		seen := map[string]int{}
		total := 0
		for idx := 1; idx <= n; idx++ {
			shard := ShardInstances(insts, idx, n)
			total += len(shard)
			for _, in := range shard {
				seen[in.Name]++
			}
		}
		if total != len(insts) {
			t.Errorf("n=%d: shards cover %d instances, want %d", n, total, len(insts))
		}
		for _, in := range insts {
			if seen[in.Name] != 1 {
				t.Errorf("n=%d: instance %s covered %d times", n, in.Name, seen[in.Name])
			}
		}
	}
}

// TestMergeGoldenRecombines checks that merging per-shard snapshots of a
// split result set reproduces the unsharded snapshot exactly.
func TestMergeGoldenRecombines(t *testing.T) {
	results := make([]Result, 11)
	for i := range results {
		results[i] = fakeResults()[i%3]
		results[i].Instance.Name = fmt.Sprintf("inst%02d", i)
	}
	cfg := goldenTestConfig()
	whole := GoldenFromResults(cfg, results)

	insts := make([]Instance, len(results))
	byName := map[string]Result{}
	for i, r := range results {
		insts[i] = r.Instance
		byName[r.Instance.Name] = r
	}
	var parts []*GoldenFile
	for idx := 1; idx <= 4; idx++ {
		var shardResults []Result
		for _, in := range ShardInstances(insts, idx, 4) {
			shardResults = append(shardResults, byName[in.Name])
		}
		parts = append(parts, GoldenFromResults(cfg, shardResults))
	}
	merged, err := MergeGolden(parts)
	if err != nil {
		t.Fatalf("MergeGolden: %v", err)
	}
	wantBytes, _ := whole.Marshal()
	gotBytes, _ := merged.Marshal()
	if string(wantBytes) != string(gotBytes) {
		t.Fatalf("merged snapshot differs from unsharded snapshot:\n%s\nvs\n%s", gotBytes, wantBytes)
	}
	if diffs, _ := DiffGolden(whole, merged); len(diffs) != 0 {
		t.Fatalf("DiffGolden(whole, merged) = %v", diffs)
	}
}

func TestMergeGoldenRejects(t *testing.T) {
	cfg := goldenTestConfig()
	a := GoldenFromResults(cfg, fakeResults()[:1])
	if _, err := MergeGolden(nil); err == nil {
		t.Error("empty merge accepted")
	}
	// Overlapping instance names.
	if _, err := MergeGolden([]*GoldenFile{a, a}); err == nil {
		t.Error("overlapping shards accepted")
	}
	// Config mismatch.
	cfg2 := cfg
	cfg2.Seed = 999
	b := GoldenFromResults(cfg2, fakeResults()[1:2])
	if _, err := MergeGolden([]*GoldenFile{a, b}); err == nil {
		t.Error("config mismatch accepted")
	}
}

func TestGoldenRestrict(t *testing.T) {
	g := GoldenFromResults(goldenTestConfig(), fakeResults())
	names := map[string]bool{"A(1)": true, "B()": true}
	r := g.Restrict(names)
	if len(r.Verdicts) != 2 {
		t.Fatalf("restricted to %d verdicts, want 2", len(r.Verdicts))
	}
	for _, v := range r.Verdicts {
		if !names[v.Name] {
			t.Errorf("unexpected instance %s in restricted file", v.Name)
		}
	}
	if r.Config != g.Config {
		t.Error("Restrict dropped the config")
	}
}
