// Package bench contains the evaluation corpus and harness: a faithful
// re-implementation of the relevant circomlib templates (plus seeded-bug
// variants) in the supported Circom subset, the 163-instance benchmark
// suite mirroring the paper's evaluation population, a parallel runner, and
// formatters that regenerate every table and figure of the evaluation.
package bench

// Library returns the circomlib-style source files, keyed by include name.
// The genuinely under-constrained templates (Decoder and the Montgomery
// conversions/operations) reproduce the real circomlib code including its
// vulnerabilities; the *Buggy templates are seeded mutants of the classic
// "<-- without ===" and "missing range constraint" bug classes.
func Library() map[string]string {
	return map[string]string{
		"bitify.circom":        srcBitify,
		"comparators.circom":   srcComparators,
		"gates.circom":         srcGates,
		"mux1.circom":          srcMux1,
		"mux2.circom":          srcMux2,
		"mux3.circom":          srcMux3,
		"switcher.circom":      srcSwitcher,
		"multiplexer.circom":   srcMultiplexer,
		"montgomery.circom":    srcMontgomery,
		"babyjub.circom":       srcBabyjub,
		"mimc.circom":          srcMiMC,
		"binsum.circom":        srcBinSum,
		"bigintlite.circom":    srcBigIntLite,
		"compconstant.circom":  srcCompConstant,
		"aliascheck.circom":    srcAliasCheck,
		"sign.circom":          srcSign,
		"bitify_strict.circom": srcBitifyStrict,
		"escalarmulany.circom": srcEscalarMulAny,
		"edwards.circom":       srcEdwards,
		"buggy.circom":         srcBuggy,
	}
}

const srcBitify = `
pragma circom 2.0.0;
include "comparators.circom";

template Num2Bits(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc1 += out[i] * e2;
        e2 = e2 + e2;
    }
    lc1 === in;
}

template Bits2Num(n) {
    signal input in[n];
    signal output out;
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        lc1 += in[i] * e2;
        e2 = e2 + e2;
    }
    lc1 ==> out;
}

template Num2BitsNeg(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    component isZero;
    isZero = IsZero();
    var neg = n == 0 ? 0 : 2**n - in;
    for (var i = 0; i < n; i++) {
        out[i] <-- (neg >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc1 += out[i] * 2**i;
    }
    in ==> isZero.in;
    lc1 + isZero.out * 2**n === 2**n - in;
}
`

const srcComparators = `
pragma circom 2.0.0;
include "bitify.circom";

template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}

template IsEqual() {
    signal input in[2];
    signal output out;
    component isz = IsZero();
    in[1] - in[0] ==> isz.in;
    isz.out ==> out;
}

template ForceEqualIfEnabled() {
    signal input enabled;
    signal input in[2];
    component isz = IsZero();
    in[1] - in[0] ==> isz.in;
    (1 - isz.out)*enabled === 0;
}

template LessThan(n) {
    assert(n <= 252);
    signal input in[2];
    signal output out;
    component n2b = Num2Bits(n+1);
    n2b.in <== in[0] + (1<<n) - in[1];
    out <== 1 - n2b.out[n];
}

template LessEqThan(n) {
    signal input in[2];
    signal output out;
    component lt = LessThan(n);
    lt.in[0] <== in[0];
    lt.in[1] <== in[1] + 1;
    lt.out ==> out;
}

template GreaterThan(n) {
    signal input in[2];
    signal output out;
    component lt = LessThan(n);
    lt.in[0] <== in[1];
    lt.in[1] <== in[0];
    lt.out ==> out;
}

template GreaterEqThan(n) {
    signal input in[2];
    signal output out;
    component lt = LessThan(n);
    lt.in[0] <== in[1];
    lt.in[1] <== in[0] + 1;
    lt.out ==> out;
}
`

const srcGates = `
pragma circom 2.0.0;

template XOR() {
    signal input a;
    signal input b;
    signal output out;
    out <== a + b - 2*a*b;
}

template AND() {
    signal input a;
    signal input b;
    signal output out;
    out <== a*b;
}

template OR() {
    signal input a;
    signal input b;
    signal output out;
    out <== a + b - a*b;
}

template NOT() {
    signal input in;
    signal output out;
    out <== 1 + in - 2*in;
}

template NAND() {
    signal input a;
    signal input b;
    signal output out;
    out <== 1 - a*b;
}

template NOR() {
    signal input a;
    signal input b;
    signal output out;
    out <== a*b + 1 - a - b;
}

template MultiAND(n) {
    signal input in[n];
    signal output out;
    component and1;
    component and2;
    component ands[2];
    if (n == 1) {
        out <== in[0];
    } else if (n == 2) {
        and1 = AND();
        and1.a <== in[0];
        and1.b <== in[1];
        out <== and1.out;
    } else {
        and2 = AND();
        var n1 = n \ 2;
        var n2 = n - n \ 2;
        ands[0] = MultiAND(n1);
        ands[1] = MultiAND(n2);
        for (var i = 0; i < n1; i++) ands[0].in[i] <== in[i];
        for (var i = 0; i < n2; i++) ands[1].in[i] <== in[n1 + i];
        and2.a <== ands[0].out;
        and2.b <== ands[1].out;
        out <== and2.out;
    }
}
`

const srcMux1 = `
pragma circom 2.0.0;

template MultiMux1(n) {
    signal input c[n][2];
    signal input s;
    signal output out[n];
    for (var i = 0; i < n; i++) {
        out[i] <== (c[i][1] - c[i][0])*s + c[i][0];
    }
}

template Mux1() {
    var i;
    signal input c[2];
    signal input s;
    signal output out;
    component mux = MultiMux1(1);
    for (i = 0; i < 2; i++) {
        mux.c[0][i] <== c[i];
    }
    s ==> mux.s;
    mux.out[0] ==> out;
}
`

const srcMux2 = `
pragma circom 2.0.0;

template MultiMux2(n) {
    signal input c[n][4];
    signal input s[2];
    signal output out[n];

    signal a10[n];
    signal a1[n];
    signal a0[n];
    signal a[n];

    signal s10;
    s10 <== s[1] * s[0];
    for (var i = 0; i < n; i++) {
        a10[i] <== (c[i][3] - c[i][2] - c[i][1] + c[i][0]) * s10;
        a1[i]  <== (c[i][2] - c[i][0]) * s[1];
        a0[i]  <== (c[i][1] - c[i][0]) * s[0];
        a[i]   <== c[i][0];
        out[i] <== a10[i] + a1[i] + a0[i] + a[i];
    }
}

template Mux2() {
    var i;
    signal input c[4];
    signal input s[2];
    signal output out;
    component mux = MultiMux2(1);
    for (i = 0; i < 4; i++) {
        mux.c[0][i] <== c[i];
    }
    for (i = 0; i < 2; i++) {
        s[i] ==> mux.s[i];
    }
    mux.out[0] ==> out;
}
`

const srcMux3 = `
pragma circom 2.0.0;

template MultiMux3(n) {
    signal input c[n][8];
    signal input s[3];
    signal output out[n];

    signal a210[n];
    signal a21[n];
    signal a20[n];
    signal a2[n];
    signal a10[n];
    signal a1[n];
    signal a0[n];
    signal a[n];

    signal s10;
    s10 <== s[1] * s[0];
    for (var i = 0; i < n; i++) {
        a210[i] <== (c[i][7] - c[i][6] - c[i][5] + c[i][4] - c[i][3] + c[i][2] + c[i][1] - c[i][0]) * s10;
        a21[i]  <== (c[i][6] - c[i][4] - c[i][2] + c[i][0]) * s[1];
        a20[i]  <== (c[i][5] - c[i][4] - c[i][1] + c[i][0]) * s[0];
        a2[i]   <== c[i][4] - c[i][0];
        a10[i]  <== (c[i][3] - c[i][2] - c[i][1] + c[i][0]) * s10;
        a1[i]   <== (c[i][2] - c[i][0]) * s[1];
        a0[i]   <== (c[i][1] - c[i][0]) * s[0];
        a[i]    <== c[i][0];
        out[i]  <== (a210[i] + a21[i] + a20[i] + a2[i]) * s[2] + (a10[i] + a1[i] + a0[i] + a[i]);
    }
}

template Mux3() {
    var i;
    signal input c[8];
    signal input s[3];
    signal output out;
    component mux = MultiMux3(1);
    for (i = 0; i < 8; i++) {
        mux.c[0][i] <== c[i];
    }
    for (i = 0; i < 3; i++) {
        s[i] ==> mux.s[i];
    }
    mux.out[0] ==> out;
}
`

const srcSwitcher = `
pragma circom 2.0.0;

template Switcher() {
    signal input sel;
    signal input L;
    signal input R;
    signal output outL;
    signal output outR;
    signal aux;
    aux <== (R - L)*sel;
    outL <== aux + L;
    outR <== -aux + R;
}
`

const srcMultiplexer = `
pragma circom 2.0.0;

// Decoder is reproduced exactly as in circomlib; it is genuinely
// under-constrained: the all-zero output vector with success = 0 satisfies
// the constraints for every input.
template Decoder(w) {
    signal input inp;
    signal output out[w];
    signal output success;
    var lc = 0;
    for (var i = 0; i < w; i++) {
        out[i] <-- (inp == i) ? 1 : 0;
        out[i] * (inp - i) === 0;
        lc = lc + out[i];
    }
    lc ==> success;
    success * (success - 1) === 0;
}

template EscalarProduct(w) {
    signal input in1[w];
    signal input in2[w];
    signal output out;
    signal aux[w];
    var lc = 0;
    for (var i = 0; i < w; i++) {
        aux[i] <== in1[i] * in2[i];
        lc = lc + aux[i];
    }
    out <== lc;
}

template Multiplexer(wIn, nIn) {
    signal input inp[nIn][wIn];
    signal input sel;
    signal output out[wIn];

    component dec = Decoder(nIn);
    component ep[wIn];
    for (var k = 0; k < wIn; k++) {
        ep[k] = EscalarProduct(nIn);
    }
    sel ==> dec.inp;
    for (var j = 0; j < wIn; j++) {
        for (var k = 0; k < nIn; k++) {
            inp[k][j] ==> ep[j].in1[k];
            dec.out[k] ==> ep[j].in2[k];
        }
        ep[j].out ==> out[j];
    }
    dec.success === 1;
}
`

const srcMontgomery = `
pragma circom 2.0.0;

// The four Montgomery/Edwards conversion and arithmetic templates are
// reproduced as in circomlib. All four are under-constrained: the witness
// hints divide (<--) and the accompanying === constraints do not exclude a
// zero denominator, leaving an output free on that input class. QED²
// reported these as previously-unknown vulnerabilities.

template Edwards2Montgomery() {
    signal input in[2];
    signal output out[2];

    out[0] <-- (1 + in[1]) / (1 - in[1]);
    out[1] <-- out[0] / in[0];

    out[0] * (1 - in[1]) === (1 + in[1]);
    out[1] * in[0] === out[0];
}

template Montgomery2Edwards() {
    signal input in[2];
    signal output out[2];

    out[0] <-- in[0] / in[1];
    out[1] <-- (in[0] - 1) / (in[0] + 1);

    out[0] * in[1] === in[0];
    out[1] * (in[0] + 1) === in[0] - 1;
}

template MontgomeryAdd() {
    signal input in1[2];
    signal input in2[2];
    signal output out[2];

    var a = 168700;
    var d = 168696;
    var A = (2 * (a + d)) / (a - d);
    var B = 4 / (a - d);

    signal lamda;
    lamda <-- (in2[1] - in1[1]) / (in2[0] - in1[0]);
    lamda * (in2[0] - in1[0]) === (in2[1] - in1[1]);

    out[0] <== B*lamda*lamda - A - in1[0] - in2[0];
    out[1] <== lamda * (in1[0] - out[0]) - in1[1];
}

template MontgomeryDouble() {
    signal input in[2];
    signal output out[2];

    var a = 168700;
    var d = 168696;
    var A = (2 * (a + d)) / (a - d);
    var B = 4 / (a - d);

    signal lamda;
    signal x1_2;

    x1_2 <== in[0] * in[0];

    lamda <-- (3*x1_2 + 2*A*in[0] + 1) / (2*B*in[1]);
    lamda * (2*B*in[1]) === (3*x1_2 + 2*A*in[0] + 1);

    out[0] <== B*lamda*lamda - A - 2*in[0];
    out[1] <== lamda * (in[0] - out[0]) - in[1];
}
`

const srcBabyjub = `
pragma circom 2.0.0;

template BabyAdd() {
    signal input x1;
    signal input y1;
    signal input x2;
    signal input y2;
    signal output xout;
    signal output yout;

    signal beta;
    signal gamma;
    signal delta;
    signal tau;

    var a = 168700;
    var d = 168696;

    beta <== x1*y2;
    gamma <== y1*x2;
    delta <== (-a*x1 + y1) * (x2 + y2);
    tau <== beta * gamma;

    xout <-- (beta + gamma) / (1 + d*tau);
    (1 + d*tau) * xout === (beta + gamma);

    yout <-- (delta + a*beta - gamma) / (1 - d*tau);
    (1 - d*tau) * yout === (delta + a*beta - gamma);
}

template BabyDbl() {
    signal input x;
    signal input y;
    signal output xout;
    signal output yout;

    component adder = BabyAdd();
    adder.x1 <== x;
    adder.y1 <== y;
    adder.x2 <== x;
    adder.y2 <== y;

    adder.xout ==> xout;
    adder.yout ==> yout;
}
`

const srcMiMC = `
pragma circom 2.0.0;

// MiMCConst synthesizes deterministic round constants. circomlib derives
// its constants from Keccak; the exact values are irrelevant to the
// constraint structure (see DESIGN.md, substitutions).
function MiMCConst(i) {
    return i*i*i + 7919*i + 91;
}

template MiMC7(nrounds) {
    signal input x_in;
    signal input k;
    signal output out;

    signal t2[nrounds];
    signal t4[nrounds];
    signal t6[nrounds];
    signal t7[nrounds-1];

    var t;
    for (var i = 0; i < nrounds; i++) {
        if (i == 0) {
            t = k + x_in;
        } else {
            t = k + t7[i-1] + MiMCConst(i);
        }
        t2[i] <== t*t;
        t4[i] <== t2[i]*t2[i];
        t6[i] <== t4[i]*t2[i];
        if (i < nrounds - 1) {
            t7[i] <== t6[i]*t;
        } else {
            out <== t6[i]*t + k;
        }
    }
}

template MiMCFeistel(nrounds) {
    signal input xL_in;
    signal input xR_in;
    signal input k;
    signal output xL_out;
    signal output xR_out;

    var t;
    signal t2[nrounds];
    signal t4[nrounds];
    signal t5[nrounds];
    signal xL[nrounds-1];
    signal xR[nrounds-1];
    var c;
    var aux;

    for (var i = 0; i < nrounds; i++) {
        if (i == 0) {
            t = k + xL_in;
        } else {
            c = (i < nrounds - 1) ? MiMCConst(i) : 0;
            t = k + xL[i-1] + c;
        }
        t2[i] <== t*t;
        t4[i] <== t2[i]*t2[i];
        t5[i] <== t4[i]*t;
        if (i < nrounds - 1) {
            aux = (i == 0) ? xR_in : xR[i-1];
            xL[i] <== aux + t5[i];
            xR[i] <== (i == 0) ? xL_in : xL[i-1];
        } else {
            xR_out <== xR[i-1] + t5[i];
            xL_out <== xL[i-1];
        }
    }
}

template MiMCSponge(nInputs, nRounds, nOutputs) {
    signal input ins[nInputs];
    signal input k;
    signal output outs[nOutputs];

    component S[nInputs + nOutputs - 1];

    for (var i = 0; i < nInputs; i++) {
        S[i] = MiMCFeistel(nRounds);
        S[i].k <== k;
        if (i == 0) {
            S[i].xL_in <== ins[0];
            S[i].xR_in <== 0;
        } else {
            S[i].xL_in <== S[i-1].xL_out + ins[i];
            S[i].xR_in <== S[i-1].xR_out;
        }
    }

    outs[0] <== S[nInputs - 1].xL_out;

    for (var i = 0; i < nOutputs - 1; i++) {
        S[nInputs + i] = MiMCFeistel(nRounds);
        S[nInputs + i].k <== k;
        S[nInputs + i].xL_in <== S[nInputs + i - 1].xL_out;
        S[nInputs + i].xR_in <== S[nInputs + i - 1].xR_out;
        outs[i + 1] <== S[nInputs + i].xL_out;
    }
}
`

const srcBinSum = `
pragma circom 2.0.0;

function nbits(a) {
    var n = 1;
    var r = 0;
    while (n - 1 < a) {
        r++;
        n *= 2;
    }
    return r;
}

template BinSum(n, ops) {
    var nout = nbits((2**n - 1)*ops);
    signal input in[ops][n];
    signal output out[nout];

    var lin = 0;
    var lout = 0;
    var e2 = 1;
    for (var k = 0; k < n; k++) {
        for (var j = 0; j < ops; j++) {
            lin += in[j][k] * e2;
        }
        e2 = e2 + e2;
    }
    e2 = 1;
    for (var k = 0; k < nout; k++) {
        out[k] <-- (lin >> k) & 1;
        out[k] * (out[k] - 1) === 0;
        lout += out[k] * e2;
        e2 = e2 + e2;
    }
    lin === lout;
}
`

const srcBigIntLite = `
pragma circom 2.0.0;
include "bitify.circom";
include "comparators.circom";

// A compact long-arithmetic layer in the style of circom-ecdsa's bigint:
// word-level modular add/sub/mul with explicit carry/borrow outputs.

template ModSum(n) {
    assert(n <= 250);
    signal input a;
    signal input b;
    signal output sum;
    signal output carry;
    component n2b = Num2Bits(n + 1);
    n2b.in <== a + b;
    carry <== n2b.out[n];
    sum <== a + b - carry * (1 << n);
}

template ModSub(n) {
    assert(n <= 250);
    signal input a;
    signal input b;
    signal output out;
    signal output borrow;
    component lt = LessThan(n);
    lt.in[0] <== a;
    lt.in[1] <== b;
    borrow <== lt.out;
    out <== borrow * (1 << n) + a - b;
}

template ModProd(n) {
    assert(n <= 125);
    signal input a;
    signal input b;
    signal output prod;
    signal output carry;

    component n2b = Num2Bits(2*n);
    n2b.in <== a * b;

    component b2nProd = Bits2Num(n);
    component b2nCarry = Bits2Num(n);
    for (var i = 0; i < n; i++) {
        b2nProd.in[i] <== n2b.out[i];
        b2nCarry.in[i] <== n2b.out[n + i];
    }
    prod <== b2nProd.out;
    carry <== b2nCarry.out;
}
`

const srcBuggy = `
pragma circom 2.0.0;
include "multiplexer.circom";

// Seeded mutants of classic under-constrained bug classes: assigning with
// <-- and forgetting the matching ===, and dropping range/booleanity
// constraints.

template IsZeroBuggy() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    // BUG: missing  in*out === 0;
}

template SwitcherBuggy() {
    signal input sel;
    signal input L;
    signal input R;
    signal output outL;
    signal output outR;
    signal aux;
    aux <-- (R - L)*sel;   // BUG: <-- instead of <==
    outL <== aux + L;
    outR <== -aux + R;
}

template Num2BitsBuggy(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        out[i] <-- (in >> i) & 1;
        if (i < n - 1) {
            out[i] * (out[i] - 1) === 0;   // BUG: top bit never constrained
        }
        lc1 += out[i] * e2;
        e2 = e2 + e2;
    }
    lc1 === in;
}

template ModSumBuggy(n) {
    assert(n <= 250);
    signal input a;
    signal input b;
    signal output sum;
    signal output carry;
    carry <-- (a + b) >> n;            // BUG: carry never constrained
    sum <== a + b - carry * (1 << n);
}

template MultiplexerBuggy(wIn, nIn) {
    signal input inp[nIn][wIn];
    signal input sel;
    signal output out[wIn];

    component dec = Decoder(nIn);
    component ep[wIn];
    for (var k = 0; k < wIn; k++) {
        ep[k] = EscalarProduct(nIn);
    }
    sel ==> dec.inp;
    for (var j = 0; j < wIn; j++) {
        for (var k = 0; k < nIn; k++) {
            inp[k][j] ==> ep[j].in1[k];
            dec.out[k] ==> ep[j].in2[k];
        }
        ep[j].out ==> out[j];
    }
    // BUG: missing  dec.success === 1;
}
`

const srcCompConstant = `
pragma circom 2.0.0;
include "bitify.circom";

// CompConstant returns 1 if the 254-bit input (LSB first) is greater than
// the constant ct, processing the bits in 127 two-bit windows. This is the
// circomlib implementation verbatim; it is a heavy consumer of symbolic
// compile-time variables (slsb/smsb hold signals).
template CompConstant(ct) {
    signal input in[254];
    signal output out;

    signal parts[127];
    signal sout;

    var clsb;
    var cmsb;
    var slsb;
    var smsb;

    var sum = 0;

    var b = (1 << 128) - 1;
    var a = 1;
    var e = 1;
    var i;

    for (i = 0; i < 127; i++) {
        clsb = (ct >> (i*2)) & 1;
        cmsb = (ct >> (i*2 + 1)) & 1;
        slsb = in[i*2];
        smsb = in[i*2 + 1];

        if ((cmsb == 0) && (clsb == 0)) {
            parts[i] <== -b*smsb*slsb + b*smsb + b*slsb;
        } else if ((cmsb == 0) && (clsb == 1)) {
            parts[i] <== a*smsb*slsb - a*slsb + b*smsb - a*smsb + a;
        } else if ((cmsb == 1) && (clsb == 0)) {
            parts[i] <== b*smsb*slsb - a*smsb + a;
        } else {
            parts[i] <== -a*smsb*slsb + a;
        }

        sum = sum + parts[i];

        b = b - e;
        a = a + e;
        e = e * 2;
    }

    sout <== sum;

    component num2bits = Num2Bits(135);
    num2bits.in <== sout;
    out <== num2bits.out[127];
}
`

const srcAliasCheck = `
pragma circom 2.0.0;
include "compconstant.circom";

// AliasCheck forces a 254-bit little-endian decomposition to denote a
// value below the field modulus, ruling out the aliased second encoding.
template AliasCheck() {
    signal input in[254];
    component compConstant = CompConstant(-1);
    for (var i = 0; i < 254; i++) {
        in[i] ==> compConstant.in[i];
    }
    compConstant.out === 0;
}
`

const srcSign = `
pragma circom 2.0.0;
include "compconstant.circom";

// Sign outputs 1 when the 254-bit input (taken below p) is larger than
// (p-1)/2, i.e. "negative" in the signed reading.
template Sign() {
    signal input in[254];
    signal output sign;
    component comp = CompConstant(10944121435919637611123202872628637544274182200208017171849102093287904247808);
    for (var i = 0; i < 254; i++) {
        in[i] ==> comp.in[i];
    }
    sign <== comp.out;
}
`

const srcBitifyStrict = `
pragma circom 2.0.0;
include "bitify.circom";
include "aliascheck.circom";

// Num2Bits_strict is the safe 254-bit decomposition: plain Num2Bits(254)
// is under-constrained over BN254 (in and in+p share a 254-bit encoding),
// so the alias check is required.
template Num2Bits_strict() {
    signal input in;
    signal output out[254];

    component aliasCheck = AliasCheck();
    component n2b = Num2Bits(254);
    in ==> n2b.in;

    for (var i = 0; i < 254; i++) {
        n2b.out[i] ==> out[i];
        n2b.out[i] ==> aliasCheck.in[i];
    }
}

template Bits2Num_strict() {
    signal input in[254];
    signal output out;

    component aliasCheck = AliasCheck();
    component b2n = Bits2Num(254);

    for (var i = 0; i < 254; i++) {
        in[i] ==> b2n.in[i];
        in[i] ==> aliasCheck.in[i];
    }
    b2n.out ==> out;
}
`

const srcEscalarMulAny = `
pragma circom 2.0.0;
include "montgomery.circom";

template Multiplexor2() {
    signal input sel;
    signal input in[2][2];
    signal output out[2];

    out[0] <== (in[1][0] - in[0][0])*sel + in[0][0];
    out[1] <== (in[1][1] - in[0][1])*sel + in[0][1];
}

// BitElementMulAny is one ladder step of circomlib's any-point scalar
// multiplication. It composes MontgomeryDouble and MontgomeryAdd and
// therefore inherits their under-constrained denominator classes.
template BitElementMulAny() {
    signal input sel;
    signal input dblIn[2];
    signal input addIn[2];
    signal output dblOut[2];
    signal output addOut[2];

    component doubler = MontgomeryDouble();
    component adder = MontgomeryAdd();
    component selector = Multiplexor2();

    sel ==> selector.sel;

    dblIn[0] ==> doubler.in[0];
    dblIn[1] ==> doubler.in[1];
    doubler.out[0] ==> adder.in1[0];
    doubler.out[1] ==> adder.in1[1];
    addIn[0] ==> adder.in2[0];
    addIn[1] ==> adder.in2[1];
    addIn[0] ==> selector.in[0][0];
    addIn[1] ==> selector.in[0][1];
    adder.out[0] ==> selector.in[1][0];
    adder.out[1] ==> selector.in[1][1];

    doubler.out[0] ==> dblOut[0];
    doubler.out[1] ==> dblOut[1];
    selector.out[0] ==> addOut[0];
    selector.out[1] ==> addOut[1];
}
`

const srcEdwards = `
pragma circom 2.0.0;

// BabyCheck constrains (x, y) to lie on the BabyJubJub twisted Edwards
// curve a·x² + y² = 1 + d·x²·y².
template BabyCheck() {
    signal input x;
    signal input y;

    signal x2;
    signal y2;

    var a = 168700;
    var d = 168696;

    x2 <== x*x;
    y2 <== y*y;

    a*x2 + y2 === 1 + d*x2*y2;
}
`
