package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"qed2/internal/core"
)

// The golden-verdict regression gate: a checked-in snapshot of every
// suite instance's verdict and counterexample signal set, diffed against a
// fresh run in CI. Verdicts are deterministic for a fixed configuration as
// long as the wall-clock timeout is never the binding budget (the golden
// runs use a timeout far above what any instance needs, so the step
// budgets decide), which turns "identical reports" from a claim in a
// commit message into a checked invariant.

// GoldenConfig pins the analyzer configuration a golden file is valid
// for. A diff against a run with a different configuration fails fast
// instead of reporting meaningless verdict flips.
type GoldenConfig struct {
	QuerySteps  int64 `json:"query_steps"`
	GlobalSteps int64 `json:"global_steps"`
	Seed        int64 `json:"seed"`
}

// GoldenVerdict is one instance's pinned outcome.
type GoldenVerdict struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"`
	// Reason is recorded for unknown verdicts as human-readable context in
	// diff output. Reasons are never compared for equality and never
	// classified: degradation is carried by the machine-readable Degraded
	// flag below.
	Reason string `json:"reason,omitempty"`
	// Degraded carries core.Report.Degraded ("canceled" or
	// "internal-error") for unknown verdicts that are fault-tolerance
	// artifacts; see IsDegraded.
	Degraded string `json:"degraded,omitempty"`
	// CEOutput and CESignals pin the counterexample shape for unsafe
	// verdicts: the differing output and the full set of signals on which
	// the witness pair disagrees.
	CEOutput  string   `json:"ce_output,omitempty"`
	CESignals []string `json:"ce_signals,omitempty"`
}

// GoldenFile is the checked-in golden-verdict snapshot
// (testdata/golden_verdicts.json).
type GoldenFile struct {
	Config   GoldenConfig    `json:"config"`
	Verdicts []GoldenVerdict `json:"verdicts"`
}

// GoldenFromResults snapshots a result set (sorted by instance name).
func GoldenFromResults(cfg core.Config, results []Result) *GoldenFile {
	g := &GoldenFile{Config: GoldenConfig{
		QuerySteps:  cfg.QuerySteps,
		GlobalSteps: cfg.GlobalSteps,
		Seed:        cfg.Seed,
	}}
	for _, r := range results {
		ir := instanceRecordOf(r)
		gv := GoldenVerdict{
			Name:      ir.Name,
			Verdict:   ir.Verdict,
			CEOutput:  ir.CEOutput,
			CESignals: ir.CESignals,
		}
		if gv.Verdict == core.VerdictUnknown.String() {
			gv.Reason = ir.Reason
			gv.Degraded = ir.Degraded
		}
		g.Verdicts = append(g.Verdicts, gv)
	}
	sort.Slice(g.Verdicts, func(i, j int) bool { return g.Verdicts[i].Name < g.Verdicts[j].Name })
	return g
}

// Marshal renders the golden file as indented JSON.
func (g *GoldenFile) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadGolden reads a golden file from disk.
func LoadGolden(path string) (*GoldenFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &GoldenFile{}
	if err := json.Unmarshal(b, g); err != nil {
		return nil, fmt.Errorf("bench: parsing golden file %s: %w", path, err)
	}
	return g, nil
}

// IsDegraded reports whether a fresh verdict is a fault-tolerance
// degradation rather than an analysis outcome: unknown because the run was
// canceled or because a query was quarantined after a panic. The golden
// gate reports these separately and non-fatally, so a chaos schedule or an
// interrupted run composes with the regression gate instead of tripping it.
// Classification is by the structured Degraded flag (core.Report.Degraded
// carried through InstanceRecord), never by parsing the Reason string —
// core wraps the underlying cause into "output X undecided: …" phrases
// that substring heuristics would have to chase.
func (v GoldenVerdict) IsDegraded() bool {
	return v.Verdict == core.VerdictUnknown.String() && v.Degraded != ""
}

// DiffGolden compares a fresh snapshot against the golden one and returns
// one readable line per real discrepancy (empty slice = identical) plus one
// line per degraded fresh verdict (unknown: canceled / internal error where
// the golden file pins a real verdict). Degraded entries are a separate,
// non-failing category: they mean the fresh run was interrupted or
// fault-injected, not that the analysis changed. Instances are matched by
// name; order within the files does not matter.
func DiffGolden(golden, fresh *GoldenFile) (diffs, degraded []string) {
	if golden.Config != fresh.Config {
		diffs = append(diffs, fmt.Sprintf("config mismatch: golden %+v vs fresh %+v (the gate only compares equal configurations)",
			golden.Config, fresh.Config))
		return diffs, nil
	}
	goldenBy := map[string]GoldenVerdict{}
	for _, v := range golden.Verdicts {
		goldenBy[v.Name] = v
	}
	seen := map[string]bool{}
	for _, f := range fresh.Verdicts {
		seen[f.Name] = true
		g, ok := goldenBy[f.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: new instance (verdict %s) not in golden file — regenerate with -golden-out", f.Name, f.Verdict))
			continue
		}
		if g.Verdict != f.Verdict {
			if f.IsDegraded() {
				degraded = append(degraded, fmt.Sprintf("%s: degraded %s -> unknown (%s)", f.Name, g.Verdict, f.Reason))
				continue
			}
			diffs = append(diffs, fmt.Sprintf("%s: verdict flipped %s -> %s", f.Name, g.Verdict, f.Verdict))
			continue
		}
		if g.CEOutput != f.CEOutput {
			diffs = append(diffs, fmt.Sprintf("%s: counterexample output changed %q -> %q", f.Name, g.CEOutput, f.CEOutput))
		}
		if !equalStrings(g.CESignals, f.CESignals) {
			diffs = append(diffs, fmt.Sprintf("%s: counterexample signal set changed %v -> %v", f.Name, g.CESignals, f.CESignals))
		}
	}
	for _, g := range golden.Verdicts {
		if !seen[g.Name] {
			diffs = append(diffs, fmt.Sprintf("%s: instance missing from fresh run (golden verdict %s)", g.Name, g.Verdict))
		}
	}
	sort.Strings(diffs)
	sort.Strings(degraded)
	return diffs, degraded
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
