package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"qed2/internal/core"
)

// RunRecord is the machine-readable record of one qed2bench invocation,
// written by the -json flag. It captures enough to diff two runs of the
// evaluation: the exact configuration, one timed section per suite run and
// per rendered table/figure, and the aggregate solver effort behind each.
type RunRecord struct {
	// Timestamp is the wall-clock start of the invocation (RFC 3339).
	Timestamp time.Time `json:"timestamp"`
	// SuiteSize is the number of instances in the evaluation suite.
	SuiteSize int `json:"suite_size"`
	// InstanceWorkers is the -workers flag after defaulting (instances
	// analyzed concurrently); QueryWorkers is the -query-workers flag
	// (slice queries within one analysis).
	InstanceWorkers int `json:"instance_workers"`
	QueryWorkers    int `json:"query_workers"`
	// QuerySteps/GlobalSteps/TimeoutMS/Seed mirror the analyzer budgets.
	QuerySteps  int64   `json:"query_steps"`
	GlobalSteps int64   `json:"global_steps"`
	TimeoutMS   float64 `json:"timeout_ms"`
	Seed        int64   `json:"seed"`
	// Sections holds one entry per suite run ("run:full", ...) and per
	// rendered artifact ("table2", "fig1", ...), in execution order.
	Sections []SectionRecord `json:"sections"`
	// Counters is the final snapshot of the observability registry
	// (uniq.*, smt.*, core.* — see DESIGN §10), when one was attached.
	Counters map[string]int64 `json:"counters,omitempty"`
	// TotalWallMS is the end-to-end wall clock of the invocation.
	TotalWallMS float64 `json:"total_wall_ms"`
}

// SectionRecord times one phase of the invocation and summarizes the result
// set it produced or rendered. Run sections carry the cost of analysis;
// table/figure sections only the (cheap) rendering, with the tally
// identifying which result set they consumed.
type SectionRecord struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	// Verdict tally over the section's result set.
	Instances     int `json:"instances"`
	Solved        int `json:"solved"`
	Safe          int `json:"safe"`
	Unsafe        int `json:"unsafe"`
	Unknown       int `json:"unknown"`
	CompileErrors int `json:"compile_errors"`
	// Aggregate solver effort over the result set.
	Queries     int   `json:"queries"`
	SolverSteps int64 `json:"solver_steps"`
	CacheHits   int   `json:"cache_hits"`
	// AnalyzeMS is the summed per-instance analysis wall clock (can exceed
	// WallMS of a run section when instances execute in parallel).
	AnalyzeMS float64 `json:"analyze_ms"`
	// Results holds one record per instance. Populated only for "run:*"
	// sections — table/figure sections re-render a result set an earlier
	// run section already itemized.
	Results []InstanceRecord `json:"results,omitempty"`
}

// InstanceRecord is the per-instance row of a run section: the verdict,
// the counterexample signal set (what the golden gate diffs), and the
// per-instance effort.
type InstanceRecord struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Verdict  string `json:"verdict"`
	Reason   string `json:"reason,omitempty"`
	// Degraded carries core.Report.Degraded: non-empty when an unknown
	// verdict is a fault-tolerance artifact (cancellation, panic
	// quarantine) rather than a budget outcome. Machine-readable so
	// consumers never classify by parsing Reason.
	Degraded  string   `json:"degraded,omitempty"`
	CEOutput  string   `json:"ce_output,omitempty"`
	CESignals []string `json:"ce_signals,omitempty"`

	AnalyzeMS   float64 `json:"analyze_ms"`
	Queries     int     `json:"queries"`
	SolverSteps int64   `json:"solver_steps"`
	CacheHits   int     `json:"cache_hits"`
}

// instanceRecordOf summarizes one result.
func instanceRecordOf(r Result) InstanceRecord {
	ir := InstanceRecord{
		Name:      r.Instance.Name,
		Category:  r.Instance.Category,
		AnalyzeMS: float64(r.AnalyzeTime) / float64(time.Millisecond),
	}
	if r.CompileErr != nil {
		ir.Verdict = "compile-error"
		ir.Reason = r.CompileErr.Error()
		return ir
	}
	ir.Verdict = r.Report.Verdict.String()
	ir.Reason = r.Report.Reason
	ir.Degraded = string(r.Report.Degraded)
	ir.CEOutput = r.CEOutput
	ir.CESignals = r.CEDiffers
	ir.Queries = r.Report.Stats.Queries
	ir.SolverSteps = r.Report.Stats.SolverSteps
	ir.CacheHits = r.Report.Stats.CacheHits
	return ir
}

// NewRunRecord starts a record for an invocation over suiteSize instances.
func NewRunRecord(suiteSize, instanceWorkers, queryWorkers int, cfg core.Config) *RunRecord {
	return &RunRecord{
		Timestamp:       time.Now().UTC(),
		SuiteSize:       suiteSize,
		InstanceWorkers: instanceWorkers,
		QueryWorkers:    queryWorkers,
		QuerySteps:      cfg.QuerySteps,
		GlobalSteps:     cfg.GlobalSteps,
		TimeoutMS:       float64(cfg.Timeout) / float64(time.Millisecond),
		Seed:            cfg.Seed,
	}
}

// AddSection appends a timed section summarizing results.
func (rec *RunRecord) AddSection(name string, d time.Duration, results []Result) {
	s := SectionRecord{Name: name, WallMS: float64(d) / float64(time.Millisecond)}
	t := TallyOf(results)
	s.Instances = t.Total
	s.Solved = t.Solved()
	s.Safe, s.Unsafe, s.Unknown, s.CompileErrors = t.Safe, t.Unsafe, t.Unknown, t.CompileErrors
	for _, r := range results {
		s.AnalyzeMS += float64(r.AnalyzeTime) / float64(time.Millisecond)
		if r.Report == nil {
			continue
		}
		s.Queries += r.Report.Stats.Queries
		s.SolverSteps += r.Report.Stats.SolverSteps
		s.CacheHits += r.Report.Stats.CacheHits
	}
	if strings.HasPrefix(name, "run:") {
		s.Results = make([]InstanceRecord, 0, len(results))
		for _, r := range results {
			s.Results = append(s.Results, instanceRecordOf(r))
		}
	}
	rec.Sections = append(rec.Sections, s)
}

// Finish stamps the total wall clock and renders the record as indented
// JSON ready to write to the -json file.
func (rec *RunRecord) Finish(total time.Duration) ([]byte, error) {
	rec.TotalWallMS = float64(total) / float64(time.Millisecond)
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Section returns the first section with the given name, or nil.
func (rec *RunRecord) Section(name string) *SectionRecord {
	for i := range rec.Sections {
		if rec.Sections[i].Name == name {
			return &rec.Sections[i]
		}
	}
	return nil
}

// LoadRunRecord reads a -json run record back from disk.
func LoadRunRecord(path string) (*RunRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &RunRecord{}
	if err := json.Unmarshal(b, rec); err != nil {
		return nil, fmt.Errorf("bench: parsing run record %s: %w", path, err)
	}
	return rec, nil
}

// CompareBaseline is the bench-regression guard: it compares the summed
// per-instance analysis time of the "run:full" section of a fresh record
// against a baseline record and returns an error when the fresh run is
// more than maxSlowdown times slower. It deliberately compares only the
// analysis-time total (not wall clock, which depends on worker count, and
// not per-instance timings, which are too noisy on shared runners).
func CompareBaseline(baseline, fresh *RunRecord, maxSlowdown float64) error {
	base := baseline.Section("run:full")
	cur := fresh.Section("run:full")
	if base == nil || cur == nil {
		return fmt.Errorf("bench: baseline comparison needs a run:full section in both records (baseline: %v, fresh: %v)", base != nil, cur != nil)
	}
	if base.AnalyzeMS <= 0 {
		return fmt.Errorf("bench: baseline run:full has non-positive analyze_ms %.1f", base.AnalyzeMS)
	}
	ratio := cur.AnalyzeMS / base.AnalyzeMS
	if ratio > maxSlowdown {
		return fmt.Errorf("bench: analysis time regression: %.0f ms vs baseline %.0f ms (%.2fx > %.2fx allowed)",
			cur.AnalyzeMS, base.AnalyzeMS, ratio, maxSlowdown)
	}
	return nil
}
