// Package obs is the zero-dependency observability substrate of the QED²
// pipeline: hierarchical wall-clock spans, named atomic counters and
// power-of-two histograms, and a buffered JSONL event sink.
//
// Every handle type tolerates a nil receiver as a no-op, so packages
// instrument unconditionally and pay (almost) nothing when tracing is off:
// a nil *Tracer produces nil *Span values whose End is a no-op, and a nil
// *Metrics hands out nil *Counter/*Histogram handles. The sink is guarded
// by a mutex, which makes it safe under the parallel slice-query engine
// (internal/core) and the bench instance pool (internal/bench); with
// workers=1 the event order — though not the timestamps — is fully
// deterministic, matching the analyzer's own determinism contract.
//
// Trace schema (one JSON object per line):
//
//	{"ev":"meta","name":S,"t_us":N, ...attrs}           (opt-in, see Meta)
//	{"ev":"span_start","id":N,"parent":N,"name":S,"t_us":N, ...attrs}
//	{"ev":"span_end","id":N,"name":S,"t_us":N,"dur_us":N, ...attrs}
//	{"ev":"event","parent":N,"name":S,"t_us":N, ...attrs}
//	{"ev":"metrics","counters":{...},"histograms":{...}}
//
// id is a process-unique span ID (> 0, allocation order); parent is 0 for
// roots. t_us is microseconds since the tracer was created. Attribute keys
// are caller-chosen and must avoid the reserved keys above.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key string
	Val any
}

// KV builds an Attr.
func KV(key string, val any) Attr { return Attr{Key: key, Val: val} }

// Tracer emits spans and events as JSONL. Create with New or NewFile; a
// nil *Tracer is valid and discards everything.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	closer  io.Closer
	start   time.Time
	err     error
	metrics *Metrics

	next atomic.Int64
}

// New creates a tracer writing JSONL events to w.
func New(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 1<<16), start: time.Now()}
}

// NewFile creates a tracer writing to the given file path (truncating it).
// Close flushes and closes the file.
func NewFile(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := New(f)
	t.closer = f
	return t, nil
}

// AttachMetrics associates a registry whose final state is emitted as a
// "metrics" event when the tracer is closed.
func (t *Tracer) AttachMetrics(m *Metrics) {
	if t != nil {
		t.metrics = m
	}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Meta emits a {"ev":"meta","name":name,...} header line carrying
// run-level annotations (the CLIs and qed2d stamp the build version and
// revision here). It is opt-in — New does not emit one — so traces written
// by library users and tests keep their exact line layout; callers that
// want a stamped trace call Meta first, before any span opens.
func (t *Tracer) Meta(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("meta", -1, -1, name, time.Now(), -1, attrs)
}

// Span is one timed, named region of the pipeline. A nil *Span is valid:
// End is a no-op and child spans started under it become roots.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
}

// ID returns the span's process-unique ID (0 on a nil receiver).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a span under parent (nil for a root) and emits its
// span_start event. Returns nil when the tracer is nil.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: t.next.Add(1), parent: parent.ID(), name: name, start: time.Now()}
	t.emit("span_start", s.id, s.parent, name, s.start, -1, attrs)
	return s
}

// End closes the span, emitting its span_end event with the given final
// attributes.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.emit("span_end", s.id, -1, s.name, now, now.Sub(s.start), attrs)
}

// Event emits a point event under parent (nil for top level).
func (t *Tracer) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("event", -1, parent.ID(), name, time.Now(), -1, attrs)
}

// emit appends one JSONL line. id/parent are omitted when negative, dur
// when negative. Field order is fixed and attrs keep their given order, so
// traces are byte-stable apart from the timestamps.
func (t *Tracer) emit(ev string, id, parent int64, name string, at time.Time, dur time.Duration, attrs []Attr) {
	var b bytes.Buffer
	b.WriteString(`{"ev":`)
	b.WriteString(jsonString(ev))
	if id >= 0 {
		fmt.Fprintf(&b, `,"id":%d`, id)
	}
	if parent >= 0 {
		fmt.Fprintf(&b, `,"parent":%d`, parent)
	}
	b.WriteString(`,"name":`)
	b.WriteString(jsonString(name))
	fmt.Fprintf(&b, `,"t_us":%d`, at.Sub(t.start).Microseconds())
	if dur >= 0 {
		fmt.Fprintf(&b, `,"dur_us":%d`, dur.Microseconds())
	}
	for _, a := range attrs {
		b.WriteByte(',')
		b.WriteString(jsonString(a.Key))
		b.WriteByte(':')
		v, err := json.Marshal(a.Val)
		if err != nil {
			v = []byte(jsonString(fmt.Sprintf("!marshal: %v", err)))
		}
		b.Write(v)
	}
	b.WriteString("}\n")
	t.mu.Lock()
	if t.err == nil {
		_, t.err = t.w.Write(b.Bytes())
	}
	t.mu.Unlock()
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// Flush forces buffered events out to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	return t.err
}

// Close emits the attached metrics registry (if any) as a final "metrics"
// event, flushes, and closes the underlying file when the tracer owns one.
// It returns the first error the sink encountered.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if t.metrics != nil {
		payload := struct {
			Counters   map[string]int64             `json:"counters"`
			Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
		}{t.metrics.Counters(), t.metrics.Histograms()}
		v, err := json.Marshal(payload)
		if err == nil {
			line := append([]byte(`{"ev":"metrics",`), v[1:]...)
			line = append(line, '\n')
			t.mu.Lock()
			if t.err == nil {
				_, t.err = t.w.Write(line)
			}
			t.mu.Unlock()
		}
	}
	err := t.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
