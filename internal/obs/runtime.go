package obs

import (
	"runtime"
	"time"
)

// StartRuntimeSampler emits a "runtime" event (heap in use, cumulative GC
// count, goroutine count) every interval until the returned stop function
// is called. It is the cheap in-trace complement to the full
// net/http/pprof endpoint for long suite runs: the trace alone shows
// whether memory or goroutine counts drifted over the run. A nil tracer
// returns a no-op stop function.
func (t *Tracer) StartRuntimeSampler(interval time.Duration) (stop func()) {
	if t == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				t.emitRuntime()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func (t *Tracer) emitRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Event(nil, "runtime",
		KV("heap_alloc", ms.HeapAlloc),
		KV("heap_objects", ms.HeapObjects),
		KV("num_gc", ms.NumGC),
		KV("goroutines", runtime.NumGoroutine()))
}
