package obs

import (
	"bytes"
	"sync"
)

// Stream is an io.Writer trace sink that fans complete JSONL lines out to
// dynamically attached subscribers, with a bounded replay ring so a late
// subscriber still sees the recent past. It is the bridge between the
// tracer's buffered writer and the qed2d per-job event feeds: a job's
// tracer writes into a Stream, and every client streaming the job's events
// gets the lines pushed to its channel.
//
// Delivery is strictly non-blocking: a subscriber whose channel is full
// loses lines (counted per subscriber and in aggregate) rather than ever
// stalling the producer — a slow HTTP client must not be able to slow the
// analysis down. Partial writes are buffered until their newline arrives,
// so line framing survives the bufio flushes above.
type Stream struct {
	mu      sync.Mutex
	partial []byte
	ring    [][]byte // last ringCap complete lines, oldest first
	ringCap int
	subs    map[int]*streamSub
	nextSub int
	dropped int64
}

type streamSub struct {
	ch      chan []byte
	dropped int64
}

// NewStream creates a stream retaining the last ringCap lines for replay
// (minimum 1).
func NewStream(ringCap int) *Stream {
	if ringCap < 1 {
		ringCap = 1
	}
	return &Stream{ringCap: ringCap, subs: map[int]*streamSub{}}
}

// Write implements io.Writer: it splits the byte stream into lines and
// broadcasts each complete line. It never fails and never blocks on
// subscribers.
func (s *Stream) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partial = append(s.partial, p...)
	for {
		i := bytes.IndexByte(s.partial, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, i)
		copy(line, s.partial[:i])
		s.partial = s.partial[i+1:]
		s.broadcastLocked(line)
	}
	return len(p), nil
}

func (s *Stream) broadcastLocked(line []byte) {
	if len(s.ring) == s.ringCap {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = line
	} else {
		s.ring = append(s.ring, line)
	}
	for _, sub := range s.subs {
		select {
		case sub.ch <- line:
		default:
			sub.dropped++
			s.dropped++
		}
	}
}

// Subscribe attaches a subscriber: the returned channel first replays the
// retained ring, then receives live lines. buffer sizes the live-delivery
// headroom beyond the replay (minimum 1). cancel detaches the subscriber
// and closes the channel; it is idempotent.
func (s *Stream) Subscribe(buffer int) (lines <-chan []byte, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	s.mu.Lock()
	sub := &streamSub{ch: make(chan []byte, buffer+len(s.ring))}
	for _, line := range s.ring {
		sub.ch <- line
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	s.mu.Unlock()
	return sub.ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub.ch)
		}
	}
}

// Dropped returns the total number of line deliveries lost to full
// subscriber channels.
func (s *Stream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
