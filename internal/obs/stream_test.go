package obs

import (
	"encoding/json"
	"fmt"
	"testing"
)

func collect(ch <-chan []byte, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, string(<-ch))
	}
	return out
}

func TestStreamSplitsLinesAcrossWrites(t *testing.T) {
	s := NewStream(8)
	ch, cancel := s.Subscribe(8)
	defer cancel()
	// One line delivered in three writes, then two lines in one write.
	s.Write([]byte(`{"a":`))
	s.Write([]byte(`1`))
	s.Write([]byte("}\n"))
	s.Write([]byte("line2\nline3\n"))
	got := collect(ch, 3)
	want := []string{`{"a":1}`, "line2", "line3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStreamReplaysRingToLateSubscriber(t *testing.T) {
	s := NewStream(2)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(s, "line%d\n", i)
	}
	ch, cancel := s.Subscribe(1)
	defer cancel()
	got := collect(ch, 2)
	if got[0] != "line3" || got[1] != "line4" {
		t.Fatalf("replay = %v, want last two lines", got)
	}
}

func TestStreamDropsOnFullSubscriber(t *testing.T) {
	s := NewStream(1)
	_, cancel := s.Subscribe(1) // capacity 1 (+0 replay), never drained
	defer cancel()
	s.Write([]byte("a\nb\nc\n"))
	if d := s.Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2 (capacity-1 subscriber saw 3 lines)", d)
	}
}

func TestStreamCancelIsIdempotentAndClosesChannel(t *testing.T) {
	s := NewStream(4)
	ch, cancel := s.Subscribe(1)
	cancel()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	s.Write([]byte("after\n")) // must not panic on a removed subscriber
}

func TestTracerMetaRoundTrip(t *testing.T) {
	s := NewStream(4)
	ch, cancel := s.Subscribe(4)
	defer cancel()
	tr := New(s)
	tr.Meta("qed2-test", KV("version", "v1.2.3"))
	sp := tr.Start(nil, "work")
	sp.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := collect(ch, 3)
	var meta struct {
		Ev      string `json:"ev"`
		Name    string `json:"name"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line %q: %v", lines[0], err)
	}
	if meta.Ev != "meta" || meta.Name != "qed2-test" || meta.Version != "v1.2.3" {
		t.Fatalf("meta = %+v", meta)
	}
	// Nil tracer: Meta is a no-op, like every other method.
	var nilT *Tracer
	nilT.Meta("x")
}
