package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named atomic counters and histograms. A nil
// *Metrics is valid and turns every operation into a no-op, so call sites
// can instrument unconditionally; the registry itself is safe for
// concurrent use, and the Counter/Histogram handles it hands out are safe
// to update from any goroutine (the worker pools of internal/core and
// internal/bench share one registry).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the counter with the given name.
// Returns nil — a valid no-op handle — when m is nil. Call sites on hot
// paths should resolve their counters once and hold the handle rather than
// looking it up per increment.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the histogram with the given
// name. Returns nil — a valid no-op handle — when m is nil.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram accumulates an int64-valued distribution in power-of-two
// buckets: bucket i counts observations v with bit-length i, i.e. the
// ranges {0}, {1}, [2,3], [4,7], [8,15], … Exact count, sum, min and max
// are kept alongside, which is enough to reconcile against aggregate
// statistics (sum of smt.query.steps must equal Stats.SolverSteps).
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64
}

// Observe records one value. Negative values clamp to bucket 0. Safe on a
// nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps bucket index (value bit-length) to observation count;
	// only non-empty buckets appear.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Snapshot copies the current state (zero value on a nil receiver).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n != 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]int64{}
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Counters returns a name → value snapshot of every counter.
func (m *Metrics) Counters() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	return out
}

// Histograms returns a name → snapshot map of every histogram.
func (m *Metrics) Histograms() map[string]HistogramSnapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(m.hists))
	for name, h := range m.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Render writes a human-readable table of every counter and histogram,
// sorted by name (the `qed2 -metrics` output).
func (m *Metrics) Render(w io.Writer) {
	if m == nil {
		return
	}
	counters := m.Counters()
	hists := m.Histograms()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-36s %12d\n", name, counters[name])
	}
	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := hists[name]
		mean := float64(0)
		if s.Count > 0 {
			mean = float64(s.Sum) / float64(s.Count)
		}
		fmt.Fprintf(w, "%-36s count=%d sum=%d min=%d mean=%.1f max=%d\n",
			name, s.Count, s.Sum, s.Min, mean, s.Max)
	}
}
