package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decodeLines parses a JSONL buffer into one map per line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerSpansAndEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Start(nil, "analyze", KV("mode", "qed2"))
	child := tr.Start(root, "query", KV("sig", 3))
	tr.Event(child, "cache_hit", KV("sig", 7))
	child.End(KV("status", "unsat"))
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(lines), buf.String())
	}
	if lines[0]["ev"] != "span_start" || lines[0]["name"] != "analyze" || lines[0]["parent"] != float64(0) {
		t.Errorf("bad root start: %v", lines[0])
	}
	if lines[1]["parent"] != lines[0]["id"] {
		t.Errorf("child not parented to root: %v vs %v", lines[1], lines[0])
	}
	if lines[2]["ev"] != "event" || lines[2]["parent"] != lines[1]["id"] {
		t.Errorf("event not parented to child span: %v", lines[2])
	}
	if lines[3]["ev"] != "span_end" || lines[3]["id"] != lines[1]["id"] || lines[3]["status"] != "unsat" {
		t.Errorf("bad child end: %v", lines[3])
	}
	if _, ok := lines[3]["dur_us"]; !ok {
		t.Errorf("span_end missing dur_us: %v", lines[3])
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "x", KV("k", 1))
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	s.End() // must not panic
	tr.Event(s, "e")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var m *Metrics
	c := m.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	h := m.Histogram("y")
	h.Observe(3)
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Error("nil histogram recorded")
	}
	if m.Counters() != nil || m.Histograms() != nil {
		t.Error("nil metrics produced snapshots")
	}
	m.Render(&bytes.Buffer{})
}

func TestMetricsCountersAndHistograms(t *testing.T) {
	m := NewMetrics()
	if m.Counter("a") != m.Counter("a") {
		t.Error("counter lookup not stable")
	}
	m.Counter("a").Add(3)
	m.Counter("a").Inc()
	m.Counter("b").Inc()
	h := m.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	counters := m.Counters()
	if counters["a"] != 4 || counters["b"] != 1 {
		t.Errorf("counters = %v", counters)
	}
	snap := m.Histograms()["h"]
	if snap.Count != 6 || snap.Sum != 110 || snap.Min != 0 || snap.Max != 100 {
		t.Errorf("histogram snapshot = %+v", snap)
	}
	// 0→bucket 0, 1→1, 2..3→2, 4→3, 100→7.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, 7: 1}
	for b, n := range want {
		if snap.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", b, snap.Buckets[b], n, snap.Buckets)
		}
	}
	var out bytes.Buffer
	m.Render(&out)
	for _, want := range []string{"a", "b", "h", "count=6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}

func TestTracerEmitsMetricsOnClose(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	m := NewMetrics()
	m.Counter("core.cache.hits").Add(7)
	m.Histogram("smt.query.steps").Observe(42)
	tr.AttachMetrics(m)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["ev"] != "metrics" {
		t.Fatalf("want one metrics event, got %v", lines)
	}
	counters := lines[0]["counters"].(map[string]any)
	if counters["core.cache.hits"] != float64(7) {
		t.Errorf("counters = %v", counters)
	}
	if _, ok := lines[0]["histograms"].(map[string]any)["smt.query.steps"]; !ok {
		t.Errorf("histograms missing: %v", lines[0])
	}
}

// TestTracerConcurrentEmit exercises the sink under the kind of contention
// the worker pools produce; run with -race.
func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	m := NewMetrics()
	tr.AttachMetrics(m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := m.Counter("spans")
			for i := 0; i < 50; i++ {
				s := tr.Start(nil, "work", KV("g", g), KV("i", i))
				c.Inc()
				s.End(KV("ok", true))
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 8*50*2+1 {
		t.Fatalf("got %d events, want %d", len(lines), 8*50*2+1)
	}
	// Every line must be well-formed JSON (decodeLines already checked) and
	// span IDs must be unique per start event.
	seen := map[float64]bool{}
	for _, l := range lines {
		if l["ev"] == "span_start" {
			id := l["id"].(float64)
			if seen[id] {
				t.Fatalf("duplicate span id %v", id)
			}
			seen[id] = true
		}
	}
}

func TestTracerDeterministicShape(t *testing.T) {
	// Two single-goroutine runs emit the same event sequence apart from
	// timestamps — the workers=1 determinism contract.
	shape := func() string {
		var buf bytes.Buffer
		tr := New(&buf)
		root := tr.Start(nil, "a", KV("x", 1))
		tr.Start(root, "b").End(KV("n", int64(2)))
		root.End()
		tr.Close()
		var out []string
		for _, m := range decodeLines(t, &buf) {
			delete(m, "t_us")
			delete(m, "dur_us")
			b, _ := json.Marshal(m)
			out = append(out, string(b))
		}
		return strings.Join(out, "\n")
	}
	if a, b := shape(), shape(); a != b {
		t.Errorf("shapes differ:\n%s\n---\n%s", a, b)
	}
}
