// Package analyzers holds the project's custom vet checks, enforced in CI
// via `go vet -vettool=$(go env GOPATH)/bin/qed2vet` (see cmd/qed2vet).
//
// The checks are purely syntactic — they need only a parsed file, no type
// information — which keeps cmd/qed2vet dependency-free: it speaks the
// go vet unitchecker protocol with nothing but the standard library.
//
// Three checks are implemented:
//
//   - nobig: the solver hot path (ff, poly, smt) must not import math/big.
//     Heap-allocating bignums on the propagation/solving path is the exact
//     regression the fixed-limb ff.Element refactor removed; cold conversion
//     layers that genuinely need big.Int opt out with a file-level
//     `//qed2:allow-mathbig` comment.
//
//   - ctxloop: condition-less `for {}` loops in solver code (smt, core) must
//     poll some cancellation or budget signal — an identifier mentioning
//     ctx/done/step/budget/deadline/halt/cancel — somewhere in the body.
//     The fault-tolerance design guarantees analyses are cancelable; a loop
//     that cannot observe cancellation silently breaks that guarantee. A
//     deliberate exception is annotated `//qed2:allow-unpolled-loop` on the
//     loop's line or the line above.
//
//   - rangefact: inside qed2/internal/sa, the abstract-domain fact arrays on
//     AbsState (isConst, isBool, isDet, constVal, ival, cong, nonzero,
//     rangeDet) may only be written by the recording helpers (setConst,
//     promoteSingleton, and the record* methods). Those helpers are where
//     the soundness discipline lives — generation bumps, conflict checks,
//     budget accounting, domain-closure meets, and range-rule attribution.
//     A rule function that pokes a fact array directly bypasses all of it
//     and silently corrupts Verify/Stats. A deliberate exception is
//     annotated `//qed2:allow-rangefact` on the assignment's line or the
//     line above.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// NoBigPackages are the import paths where the nobig check applies.
var NoBigPackages = map[string]bool{
	"qed2/internal/ff":   true,
	"qed2/internal/poly": true,
	"qed2/internal/smt":  true,
}

// CtxLoopPackages are the import paths where the ctxloop check applies.
var CtxLoopPackages = map[string]bool{
	"qed2/internal/smt":  true,
	"qed2/internal/core": true,
}

// RangeFactPackage is the import path where the rangefact check applies.
const RangeFactPackage = "qed2/internal/sa"

// rangeFactArrays are the AbsState per-signal fact arrays guarded by the
// rangefact check.
var rangeFactArrays = map[string]bool{
	"isConst":  true,
	"isBool":   true,
	"isDet":    true,
	"constVal": true,
	"ival":     true,
	"cong":     true,
	"nonzero":  true,
	"rangeDet": true,
}

// Directives recognized in comments.
const (
	AllowMathBig      = "qed2:allow-mathbig"
	AllowUnpolledLoop = "qed2:allow-unpolled-loop"
	AllowRangeFact    = "qed2:allow-rangefact"
)

// pollTokens are the substrings (case-insensitive) that mark a loop body as
// observing cancellation or a budget.
var pollTokens = []string{"ctx", "done", "step", "budget", "deadline", "halt", "cancel"}

// Diagnostic is one finding, positioned for "file:line:col: message" output.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// Needed reports whether any check applies to the package, letting the vet
// driver skip parsing packages it has nothing to say about.
func Needed(importPath string) bool {
	return NoBigPackages[importPath] || CtxLoopPackages[importPath] || importPath == RangeFactPackage
}

// CheckFile runs every applicable check on one parsed file (which must have
// been parsed with comments). Test files are exempt: the checks guard
// production hot paths, and tests legitimately use big.Int as a reference
// implementation.
func CheckFile(importPath string, fset *token.FileSet, f *ast.File) []Diagnostic {
	name := fset.Position(f.Pos()).Filename
	if strings.HasSuffix(name, "_test.go") {
		return nil
	}
	var diags []Diagnostic
	if NoBigPackages[importPath] {
		diags = append(diags, checkNoBig(fset, f)...)
	}
	if CtxLoopPackages[importPath] {
		diags = append(diags, checkCtxLoop(fset, f)...)
	}
	if importPath == RangeFactPackage {
		diags = append(diags, checkRangeFact(fset, f)...)
	}
	return diags
}

// checkNoBig flags math/big imports unless the file carries a file-level
// allow directive (the directive names the whole file as a sanctioned
// conversion layer, so one comment covers every use).
func checkNoBig(fset *token.FileSet, f *ast.File) []Diagnostic {
	if hasDirective(f, AllowMathBig) {
		return nil
	}
	var diags []Diagnostic
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "math/big" {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   fset.Position(imp.Pos()),
			Check: "nobig",
			Message: "math/big is forbidden on the solver hot path (use ff.Element); " +
				"mark a deliberate conversion layer with //" + AllowMathBig,
		})
	}
	return diags
}

// checkCtxLoop flags condition-less for-loops whose bodies reference no
// cancellation/budget identifier.
func checkCtxLoop(fset *token.FileSet, f *ast.File) []Diagnostic {
	allowed := directiveLines(fset, f, AllowUnpolledLoop)
	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		pos := fset.Position(loop.For)
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return true
		}
		if bodyPolls(loop.Body) {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Check: "ctxloop",
			Message: fmt.Sprintf("infinite for-loop never polls cancellation or a step budget "+
				"(no identifier mentioning %s); poll one or annotate //%s",
				strings.Join(pollTokens, "/"), AllowUnpolledLoop),
		})
		return true
	})
	return diags
}

// rangeFactRecorder reports whether a function is one of the sanctioned
// AbsState recording helpers.
func rangeFactRecorder(name string) bool {
	return name == "setConst" || name == "promoteSingleton" || strings.HasPrefix(name, "record")
}

// checkRangeFact flags direct writes to AbsState fact arrays outside the
// recording helpers: assignments (including compound ones) whose left-hand
// side indexes a selector field named after a guarded array, e.g.
// `st.isDet[id] = true` inside a rule function.
func checkRangeFact(fset *token.FileSet, f *ast.File) []Diagnostic {
	allowed := directiveLines(fset, f, AllowRangeFact)
	var diags []Diagnostic
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || rangeFactRecorder(fn.Name.Name) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			// Writes inside a nested function literal are still writes in
			// this (non-recorder) function; keep walking into everything.
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range assign.Lhs {
				field, ok := indexedFactArray(lhs)
				if !ok {
					continue
				}
				pos := fset.Position(lhs.Pos())
				if allowed[pos.Line] || allowed[pos.Line-1] {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:   pos,
					Check: "rangefact",
					Message: fmt.Sprintf("direct write to AbsState fact array %q outside the recording helpers "+
						"bypasses generation/conflict/budget bookkeeping; call the record* helper "+
						"(or annotate //%s)", field, AllowRangeFact),
				})
			}
			return true
		})
	}
	return diags
}

// indexedFactArray matches `<expr>.<factArray>[<index>]` and returns the
// array's field name.
func indexedFactArray(e ast.Expr) (string, bool) {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return "", false
	}
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok || !rangeFactArrays[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// bodyPolls reports whether any identifier in the loop body mentions a poll
// token (case-insensitive substring), including selector fields like
// a.ctx or s.stepBudget.
func bodyPolls(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lower := strings.ToLower(id.Name)
		for _, tok := range pollTokens {
			if strings.Contains(lower, tok) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasDirective reports whether any comment in the file contains the
// directive.
func hasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				return true
			}
		}
	}
	return false
}

// directiveLines returns the set of lines carrying the directive.
func directiveLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				lines[fset.Position(c.Pos()).Line] = true
				// A multi-line comment covers every line it spans.
				lines[fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}
