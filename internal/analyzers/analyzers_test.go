package analyzers

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []Diagnostic, func(string) []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, nil, func(importPath string) []Diagnostic {
		return CheckFile(importPath, fset, f)
	}
}

func TestNoBigFlagsImport(t *testing.T) {
	_, _, check := parse(t, `package ff
import "math/big"
var x big.Int
`)
	diags := check("qed2/internal/ff")
	if len(diags) != 1 || diags[0].Check != "nobig" {
		t.Fatalf("diags = %+v, want one nobig", diags)
	}
	if diags[0].Pos.Line != 2 {
		t.Errorf("position = %v, want line 2", diags[0].Pos)
	}
}

func TestNoBigRespectsDirective(t *testing.T) {
	_, _, check := parse(t, `package ff
import "math/big" //qed2:allow-mathbig — conversion layer
var x big.Int
`)
	if diags := check("qed2/internal/ff"); len(diags) != 0 {
		t.Fatalf("directive ignored: %+v", diags)
	}
}

func TestNoBigScopedToHotPackages(t *testing.T) {
	_, _, check := parse(t, `package sa
import "math/big"
var x big.Int
`)
	if diags := check("qed2/internal/sa"); len(diags) != 0 {
		t.Fatalf("nobig fired outside its package set: %+v", diags)
	}
}

func TestNoBigIgnoresOtherImports(t *testing.T) {
	_, _, check := parse(t, `package ff
import (
	"fmt"
	"math/bits"
)
var _ = fmt.Sprint(bits.UintSize)
`)
	if diags := check("qed2/internal/ff"); len(diags) != 0 {
		t.Fatalf("unexpected diags: %+v", diags)
	}
}

func TestCtxLoopFlagsUnpolledLoop(t *testing.T) {
	_, _, check := parse(t, `package smt
func f() {
	for {
		g()
	}
}
func g() {}
`)
	diags := check("qed2/internal/smt")
	if len(diags) != 1 || diags[0].Check != "ctxloop" {
		t.Fatalf("diags = %+v, want one ctxloop", diags)
	}
}

func TestCtxLoopAcceptsPolledLoops(t *testing.T) {
	for _, body := range []string{
		"if s.ctx.Err() != nil { return }",
		"if s.step > s.maxSteps { return }",
		"if outOfBudget() { return }",
		"select { case <-done: return; default: }",
		"if deadlineExceeded { return }",
	} {
		_, _, check := parse(t, `package smt
var s struct{ ctx interface{ Err() error }; step, maxSteps int }
var deadlineExceeded bool
var done chan struct{}
func outOfBudget() bool { return false }
func f() {
	for {
		`+body+`
	}
}
`)
		if diags := check("qed2/internal/smt"); len(diags) != 0 {
			t.Errorf("body %q flagged: %+v", body, diags)
		}
	}
}

func TestCtxLoopIgnoresConditionalLoops(t *testing.T) {
	_, _, check := parse(t, `package core
func f(n int) {
	for i := 0; i < n; i++ {
		g()
	}
	for n > 0 {
		n--
	}
}
func g() {}
`)
	if diags := check("qed2/internal/core"); len(diags) != 0 {
		t.Fatalf("bounded loops flagged: %+v", diags)
	}
}

func TestCtxLoopRespectsDirective(t *testing.T) {
	for _, src := range []string{
		// Directive on the preceding line.
		`package smt
func f() {
	//qed2:allow-unpolled-loop
	for {
		g()
	}
}
func g() {}
`,
		// Directive on the loop's own line.
		`package smt
func f() {
	for { //qed2:allow-unpolled-loop
		g()
	}
}
func g() {}
`,
	} {
		_, _, check := parse(t, src)
		if diags := check("qed2/internal/smt"); len(diags) != 0 {
			t.Errorf("directive ignored: %+v", diags)
		}
	}
}

func TestRangeFactFlagsDirectWrite(t *testing.T) {
	_, _, check := parse(t, `package sa
func (st *AbsState) ruleBogus(id int) bool {
	st.isDet[id] = true
	st.ival[id] = nil
	return true
}
`)
	diags := check("qed2/internal/sa")
	if len(diags) != 2 {
		t.Fatalf("diags = %+v, want two rangefact", diags)
	}
	for _, d := range diags {
		if d.Check != "rangefact" {
			t.Errorf("check = %q, want rangefact", d.Check)
		}
	}
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 4 {
		t.Errorf("positions = %v, %v; want lines 3 and 4", diags[0].Pos, diags[1].Pos)
	}
}

func TestRangeFactAllowsRecorders(t *testing.T) {
	_, _, check := parse(t, `package sa
func (st *AbsState) recordDet(id int) bool {
	st.isDet[id] = true
	return true
}
func (st *AbsState) setConst(id int, v int) bool {
	st.isConst[id] = true
	st.constVal[id] = v
	return true
}
func (st *AbsState) promoteSingleton(id int) {
	st.rangeDet[id] = true
}
`)
	if diags := check("qed2/internal/sa"); len(diags) != 0 {
		t.Fatalf("recorders flagged: %+v", diags)
	}
}

func TestRangeFactIgnoresNonFactArrays(t *testing.T) {
	// scanGen is bookkeeping, not a fact array; reads of fact arrays and
	// writes to locals must also pass.
	_, _, check := parse(t, `package sa
func (st *AbsState) visit(ci int) bool {
	st.scanGen[ci] = st.constGen
	seen := map[int]bool{}
	seen[ci] = st.isDet[ci]
	return seen[ci]
}
`)
	if diags := check("qed2/internal/sa"); len(diags) != 0 {
		t.Fatalf("non-fact writes flagged: %+v", diags)
	}
}

func TestRangeFactScopedToSA(t *testing.T) {
	_, _, check := parse(t, `package other
func f(st *AbsState, id int) {
	st.isDet[id] = true
}
`)
	if diags := check("qed2/internal/other"); len(diags) != 0 {
		t.Fatalf("rangefact fired outside internal/sa: %+v", diags)
	}
}

func TestRangeFactRespectsDirective(t *testing.T) {
	_, _, check := parse(t, `package sa
func (st *AbsState) ruleSpecial(id int) {
	//qed2:allow-rangefact — documented invariant: no bookkeeping applies here
	st.nonzero[id] = true
	st.isBool[id] = true //qed2:allow-rangefact
}
`)
	if diags := check("qed2/internal/sa"); len(diags) != 0 {
		t.Fatalf("directive ignored: %+v", diags)
	}
}

func TestRangeFactFlagsWritesInClosures(t *testing.T) {
	_, _, check := parse(t, `package sa
func (st *AbsState) ruleClosure(ids []int) {
	walk(func(id int) {
		st.cong[id] = nil
	})
}
func walk(f func(int)) {}
`)
	diags := check("qed2/internal/sa")
	if len(diags) != 1 || diags[0].Check != "rangefact" {
		t.Fatalf("diags = %+v, want one rangefact inside the closure", diags)
	}
}

func TestChecksSkipTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x_test.go", `package ff
import "math/big"
var x big.Int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if diags := CheckFile("qed2/internal/ff", fset, f); len(diags) != 0 {
		t.Fatalf("test file flagged: %+v", diags)
	}
}

// TestRepoIsVetClean runs the checks over the actual checked packages, so a
// plain `go test ./...` catches violations even before the CI vettool step.
func TestRepoIsVetClean(t *testing.T) {
	dirs := map[string]string{
		"qed2/internal/ff":   filepath.Join("..", "ff"),
		"qed2/internal/poly": filepath.Join("..", "poly"),
		"qed2/internal/smt":  filepath.Join("..", "smt"),
		"qed2/internal/core": filepath.Join("..", "core"),
		"qed2/internal/sa":   filepath.Join("..", "sa"),
	}
	for importPath, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, d := range CheckFile(importPath, fset, f) {
				t.Errorf("%s: [%s] %s", d.Pos, d.Check, d.Message)
			}
		}
	}
}
