package service

import (
	"sync"
	"time"

	"qed2/internal/core"
	"qed2/internal/r1cs"
	"qed2/internal/store"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"     // terminal: report available
	StatusFailed   Status = "failed"   // terminal: internal error (report, if any, is degraded)
	StatusCanceled Status = "canceled" // terminal: shed by drain; retriable
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Event is one entry of a job's progress feed, consumed by the jobs API
// (polled via JobView.Events or streamed as NDJSON). Seq is strictly
// increasing per job; TMS is milliseconds since submission.
type Event struct {
	Seq  int64  `json:"seq"`
	TMS  int64  `json:"t_ms"`
	Kind string `json:"kind"` // "status" | "progress"
	// Kind "status": the status entered, plus Error for failed/canceled.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Kind "progress": a core.ProgressEvent snapshot from a round barrier.
	Phase         string `json:"phase,omitempty"`
	Round         int    `json:"round,omitempty"`
	Tasks         int    `json:"tasks,omitempty"`
	UniqueSignals int    `json:"unique_signals,omitempty"`
	Queries       int    `json:"queries,omitempty"`
	SolverSteps   int64  `json:"solver_steps,omitempty"`
	Verdict       string `json:"verdict,omitempty"`
}

// Job is one analysis submission. All mutable state is behind mu; the
// identity fields are immutable after creation.
type Job struct {
	// Immutable.
	ID     string
	Tenant string
	Digest string

	sys *r1cs.System

	mu        sync.Mutex
	status    Status
	report    *store.Report
	errMsg    string
	retriable bool // terminal state is safe to resubmit (drain shedding)
	cached    bool // report came from the store, no solver run

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel func() // set while running; cancels the job's AnalyzeContext

	// Bounded event ring (oldest first); seq numbers stay globally
	// monotone even as old entries are dropped.
	events  []Event
	ringCap int
	seq     int64
	// changed is closed and replaced whenever an event is appended, so
	// streaming readers can wait for news without polling.
	changed chan struct{}
}

func newJob(id, tenant, digest string, sys *r1cs.System, ringCap int) *Job {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Job{
		ID:        id,
		Tenant:    tenant,
		Digest:    digest,
		sys:       sys,
		status:    StatusQueued,
		submitted: time.Now(),
		ringCap:   ringCap,
		changed:   make(chan struct{}),
	}
}

// JobView is the JSON shape of a job returned by the API.
type JobView struct {
	ID        string        `json:"id"`
	Tenant    string        `json:"tenant"`
	Digest    string        `json:"digest"`
	Status    Status        `json:"status"`
	Cached    bool          `json:"cached,omitempty"`
	Retriable bool          `json:"retriable,omitempty"`
	Error     string        `json:"error,omitempty"`
	Report    *store.Report `json:"report,omitempty"`
	// Timestamps in Unix milliseconds (0 = not reached).
	SubmittedMS int64 `json:"submitted_ms"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
	// LastSeq is the sequence number of the newest event.
	LastSeq int64 `json:"last_seq"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Digest:      j.Digest,
		Status:      j.status,
		Cached:      j.cached,
		Retriable:   j.retriable,
		Error:       j.errMsg,
		Report:      j.report,
		SubmittedMS: j.submitted.UnixMilli(),
		LastSeq:     j.seq,
	}
	if !j.started.IsZero() {
		v.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		v.FinishedMS = j.finished.UnixMilli()
	}
	return v
}

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Report returns the terminal report (nil unless status is done).
func (j *Job) Report() *store.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// EventsSince returns the buffered events with Seq > after (oldest first)
// and a channel that is closed when a newer event than the returned set
// arrives. If events older than `after+1` have been dropped from the ring,
// the caller simply gets what is still buffered — progress events are
// advisory; the terminal status event is always the newest and never missed
// by a reader that follows the changed channel.
func (j *Job) EventsSince(after int64) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, ev := range j.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, j.changed
}

// emit appends an event, evicting the oldest non-status entries when the
// ring overflows.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

func (j *Job) emitLocked(ev Event) {
	j.seq++
	ev.Seq = j.seq
	ev.TMS = time.Since(j.submitted).Milliseconds()
	if len(j.events) >= j.ringCap {
		drop := len(j.events) - j.ringCap + 1
		j.events = append(j.events[:0], j.events[drop:]...)
	}
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// emitProgress converts a core progress snapshot into an event.
func (j *Job) emitProgress(ev core.ProgressEvent) {
	j.emit(Event{
		Kind:          "progress",
		Phase:         ev.Phase,
		Round:         ev.Round,
		Tasks:         ev.Tasks,
		UniqueSignals: ev.UniqueTotal,
		Queries:       ev.Queries,
		SolverSteps:   ev.SolverSteps,
		Verdict:       ev.Verdict,
	})
}

// setRunning transitions queued -> running.
func (j *Job) setRunning(cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.emitLocked(Event{Kind: "status", Status: string(StatusRunning)})
}

// finish moves the job to a terminal state. It is a no-op if the job is
// already terminal (a drain racing a natural completion keeps whichever
// outcome landed first — a decided verdict is never revoked).
func (j *Job) finish(st Status, rep *store.Report, errMsg string, retriable bool) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.status = st
	j.report = rep
	j.errMsg = errMsg
	j.retriable = retriable
	j.finished = time.Now()
	j.cancel = nil
	j.emitLocked(Event{Kind: "status", Status: string(st), Error: errMsg})
	return true
}

// markCached stamps a store-hit job: born terminal, report attached.
func (j *Job) markCached(rep *store.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cached = true
	j.status = StatusDone
	j.report = rep
	j.finished = time.Now()
	j.emitLocked(Event{Kind: "status", Status: string(StatusDone)})
}

// cancelRunning invokes the job's analysis cancel func, if any.
func (j *Job) cancelRunning() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
