// Package service is the job engine behind qed2d: it accepts circuit
// submissions from multiple tenants, runs them through the core analyzer on
// a bounded worker pool, and exposes each job's lifecycle as a pollable /
// streamable event feed.
//
// Admission and fairness. The queue is bounded (ErrQueueFull past
// Config.QueueDepth) with an additional per-tenant quota (ErrTenantQuota),
// and workers pop jobs round-robin across tenant queues: a tenant
// submitting hundreds of circuits delays its own backlog, not everyone
// else's. Both rejections are retriable overloads — the HTTP layer maps
// them to 429.
//
// Caching. Submissions are deduplicated by the circuit's canonical digest:
// a store hit returns a terminal job immediately (no solver run), and a
// submission whose digest is already queued or running attaches to the
// in-flight job instead of enqueueing a duplicate. Only decided,
// non-degraded reports enter the store (store.Cacheable), so caching never
// changes a verdict, only its latency.
//
// Drain. Drain sheds queued jobs as retriable cancellations, cancels
// in-flight analyses at their next query boundary, and checkpoints the
// interrupted circuits under the same configuration stamp as bench
// checkpoints; Resume re-enqueues them, so a restarted daemon converges to
// the verdict set an uninterrupted run would have produced.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/store"
)

// Sentinel errors for admission control and lifecycle. ErrQueueFull and
// ErrTenantQuota are transient overloads (HTTP 429); ErrDraining means the
// daemon is shutting down (HTTP 503 + Retry-After).
var (
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrTenantQuota = errors.New("service: tenant queue quota exceeded")
	ErrDraining    = errors.New("service: draining, not accepting jobs")
)

// Config configures an Engine.
type Config struct {
	// Analyzer is the core configuration applied to every job. It also
	// derives the configuration stamp for the store and drain checkpoint.
	Analyzer core.Config
	// Workers is the number of concurrent analyses (default 1). Worker
	// count never affects verdicts, only throughput.
	Workers int
	// QueueDepth bounds the total number of queued (not yet running) jobs
	// (default 64).
	QueueDepth int
	// TenantQuota bounds the queued jobs of any single tenant (default:
	// QueueDepth, i.e. no extra per-tenant limit).
	TenantQuota int
	// EventBuffer bounds each job's retained event ring (default 256).
	EventBuffer int
	// Store, when non-nil, caches reports by circuit digest.
	Store *store.Store
	// Library resolves include directives for source submissions.
	Library map[string]string
	// Metrics, when non-nil, receives the service.jobs.* counters.
	Metrics *obs.Metrics
	// CheckpointPath, when non-empty, is where Drain persists interrupted
	// jobs and Resume reloads them from.
	CheckpointPath string
	// Runner, when non-nil, replaces the in-process core.AnalyzeContext
	// call for every job — qed2d -sandbox plugs in Sandbox.Run here. A
	// *HardFaultError from the runner becomes a hard-fault degraded job and
	// feeds the quarantine breaker; in-process mode has no hard faults (a
	// panic is contained as internal-error) and never trips it.
	Runner JobRunner
	// QuarantineThreshold is the consecutive hard-fault count that trips a
	// digest's breaker (default 3). Only meaningful with a Runner.
	QuarantineThreshold int
	// QuarantineCooldown is how long a tripped digest stays quarantined
	// before a half-open probe is admitted (default 30s).
	QuarantineCooldown time.Duration
}

// Engine is the multi-tenant job engine. Safe for concurrent use.
type Engine struct {
	cfg Config

	ctx    context.Context // root context of all job analyses
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signaled when work is enqueued or the engine stops
	stopped  bool
	draining bool
	queues   map[string][]*Job // tenant -> FIFO of queued jobs
	ring     []string          // round-robin tenant order
	rrNext   int
	queued   int             // total queued jobs across tenants
	active   map[string]*Job // digest -> queued/running job (dedup)
	jobs     map[string]*Job // id -> job, all lifetimes
	order    []string        // job ids in submission order
	nextID   int64

	wg sync.WaitGroup

	breaker *breaker // nil without a Runner

	submitted, cached, deduped *obs.Counter
	rejected, analyzed         *obs.Counter
	failed, canceled           *obs.Counter
	hardFaults, quarantined    *obs.Counter
}

// New starts an engine with Config.Workers analysis workers.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TenantQuota <= 0 || cfg.TenantQuota > cfg.QueueDepth {
		cfg.TenantQuota = cfg.QueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		queues:    map[string][]*Job{},
		active:    map[string]*Job{},
		jobs:      map[string]*Job{},
		submitted: cfg.Metrics.Counter("service.jobs.submitted"),
		cached:    cfg.Metrics.Counter("service.jobs.cached"),
		deduped:   cfg.Metrics.Counter("service.jobs.deduped"),
		rejected:  cfg.Metrics.Counter("service.jobs.rejected"),
		analyzed:  cfg.Metrics.Counter("service.jobs.analyzed"),
		failed:    cfg.Metrics.Counter("service.jobs.failed"),
		canceled:  cfg.Metrics.Counter("service.jobs.canceled"),

		hardFaults:  cfg.Metrics.Counter("service.jobs.hard_faults"),
		quarantined: cfg.Metrics.Counter("service.jobs.quarantined"),
	}
	if cfg.Runner != nil {
		e.breaker = newBreaker(cfg.QuarantineThreshold, cfg.QuarantineCooldown)
	}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Stamp returns the configuration stamp for an analyzer configuration —
// the JSON of the bench checkpoint config. The store directory and the
// drain checkpoint are both keyed by it.
func Stamp(cfg core.Config) string { return stampJSON(cfg) }

// ConfigStamp returns the engine's own configuration stamp.
func (e *Engine) ConfigStamp() string { return stampJSON(e.cfg.Analyzer) }

// SubmitSource compiles circom source against the engine's library and
// submits the resulting system. Compile errors are returned to the caller
// (HTTP 400), not turned into jobs: they are input defects, not analysis
// outcomes.
func (e *Engine) SubmitSource(tenant, src string) (*Job, error) {
	prog, err := circom.Compile(src, &circom.CompileOptions{Library: e.cfg.Library})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	return e.Submit(tenant, prog.System)
}

// SubmitR1CS parses an r1cs text body and submits it.
func (e *Engine) SubmitR1CS(tenant, text string) (*Job, error) {
	sys, err := r1cs.Parse(strings.NewReader(text))
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return e.Submit(tenant, sys)
}

// Submit enqueues a system for analysis. The returned job may already be
// terminal (store hit) or may be a previously submitted job for the same
// circuit (digest dedup). Admission errors wrap ErrQueueFull,
// ErrTenantQuota or ErrDraining.
func (e *Engine) Submit(tenant string, sys *r1cs.System) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	e.submitted.Inc()
	digest := sys.Digest()

	// Store first: a cached report answers without touching the queue even
	// under drain or overload.
	if e.cfg.Store != nil {
		if rep, ok := e.cfg.Store.Get(digest); ok {
			j := e.register(tenant, digest, nil)
			j.markCached(rep)
			e.cached.Inc()
			return j, nil
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining || e.stopped {
		e.rejected.Inc()
		return nil, ErrDraining
	}
	if j := e.active[digest]; j != nil {
		e.deduped.Inc()
		return j, nil
	}
	if e.breaker != nil {
		// After the store and dedup checks: a cached verdict always serves,
		// and a resubmission of an in-flight half-open probe attaches to it
		// instead of stacking probes. Only a genuinely new run is gated.
		if err := e.breaker.allow(digest); err != nil {
			e.rejected.Inc()
			e.quarantined.Inc()
			return nil, err
		}
	}
	if e.queued >= e.cfg.QueueDepth {
		e.rejected.Inc()
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, e.cfg.QueueDepth)
	}
	if len(e.queues[tenant]) >= e.cfg.TenantQuota {
		e.rejected.Inc()
		return nil, fmt.Errorf("%w (tenant %q, quota %d)", ErrTenantQuota, tenant, e.cfg.TenantQuota)
	}
	if faultinject.Enabled() {
		if f := faultinject.Check("service.enqueue"); f.Err != "" || f.Deadline {
			// An injected enqueue fault is a transient overload: the client
			// retries, nothing is half-enqueued.
			e.rejected.Inc()
			return nil, fmt.Errorf("%w (injected: %s)", ErrQueueFull, f.Err)
		}
	}
	j := e.registerLocked(tenant, digest, sys)
	e.enqueueLocked(j)
	return j, nil
}

// register creates and indexes a job outside the queue (store hits).
func (e *Engine) register(tenant, digest string, sys *r1cs.System) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registerLocked(tenant, digest, sys)
}

func (e *Engine) registerLocked(tenant, digest string, sys *r1cs.System) *Job {
	e.nextID++
	j := newJob("j"+strconv.FormatInt(e.nextID, 10), tenant, digest, sys, e.cfg.EventBuffer)
	e.jobs[j.ID] = j
	e.order = append(e.order, j.ID)
	return j
}

func (e *Engine) enqueueLocked(j *Job) {
	if _, ok := e.queues[j.Tenant]; !ok {
		e.ring = append(e.ring, j.Tenant)
	}
	e.queues[j.Tenant] = append(e.queues[j.Tenant], j)
	e.queued++
	e.active[j.Digest] = j
	e.cond.Signal()
}

// Job returns a job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id])
	}
	return out
}

// QueueStats is a point-in-time queue summary for /healthz and /readyz.
type QueueStats struct {
	Queued   int            `json:"queued"`
	Depth    int            `json:"depth"` // admission bound (Config.QueueDepth)
	Running  int            `json:"running"`
	Draining bool           `json:"draining"`
	Tenants  map[string]int `json:"tenants,omitempty"`
}

// Stats snapshots the queue.
func (e *Engine) Stats() QueueStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := QueueStats{Queued: e.queued, Depth: e.cfg.QueueDepth, Draining: e.draining, Tenants: map[string]int{}}
	for t, q := range e.queues {
		if len(q) > 0 {
			st.Tenants[t] = len(q)
		}
	}
	for _, j := range e.active {
		if j.Status() == StatusRunning {
			st.Running++
		}
	}
	return st
}

// worker pops jobs (fairly across tenants) until the engine stops.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		j := e.next()
		if j == nil {
			return
		}
		e.runJob(j)
	}
}

func (e *Engine) next() *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return nil
		}
		if j := e.popLocked(); j != nil {
			return j
		}
		e.cond.Wait()
	}
}

// popLocked dequeues round-robin across tenants: each pop starts from the
// tenant after the previously served one.
func (e *Engine) popLocked() *Job {
	n := len(e.ring)
	for i := 0; i < n; i++ {
		idx := (e.rrNext + i) % n
		q := e.queues[e.ring[idx]]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		e.queues[e.ring[idx]] = q[1:]
		e.queued--
		e.rrNext = (idx + 1) % n
		return j
	}
	return nil
}

// runJob analyzes one job under the fault boundaries the pipeline already
// has: a per-job cancelable context and a panic boundary converting crashes
// into failed jobs rather than dead workers. With a Runner configured the
// analysis instead happens in an isolated worker process, which adds the
// hard-fault outcome (the worker died) on top of the soft ones.
func (e *Engine) runJob(j *Job) {
	jobCtx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	j.setRunning(cancel)

	var sr *store.Report
	if e.cfg.Runner != nil {
		sr = e.runSandboxed(jobCtx, j)
	} else {
		sr = e.runInProcess(jobCtx, j)
	}

	if e.cfg.Store != nil && store.Cacheable(sr) {
		// A put failure (disk full, injected fault) only costs future cache
		// hits; the job itself still completes with its fresh report.
		_ = e.cfg.Store.Put(j.Digest, sr)
	}

	e.mu.Lock()
	if e.active[j.Digest] == j {
		delete(e.active, j.Digest)
	}
	e.mu.Unlock()

	switch core.Degradation(sr.Degraded) {
	case core.DegradedCanceled:
		// Shut down mid-analysis (drain): shed as retriable so a client —
		// or Resume — re-analyzes it.
		if j.finish(StatusCanceled, nil, "canceled: server draining", true) {
			e.canceled.Inc()
		}
	case core.DegradedInternal:
		if j.finish(StatusFailed, sr, sr.Reason, false) {
			e.failed.Inc()
		}
	case core.DegradedHardFault:
		// The worker died without a verdict. Terminal and retriable — a
		// transient fault (memory pressure) may succeed on resubmission;
		// a genuinely poisonous one trips the quarantine breaker instead.
		e.hardFaults.Inc()
		if e.breaker != nil {
			e.breaker.recordFault(j.Digest)
		}
		if j.finish(StatusFailed, sr, sr.Reason, true) {
			e.failed.Inc()
		}
	default:
		if e.breaker != nil {
			e.breaker.recordSuccess(j.Digest)
		}
		if j.finish(StatusDone, sr, "", false) {
			e.analyzed.Inc()
		}
	}
}

// runInProcess is the classic path: core.AnalyzeContext on this worker
// goroutine behind a panic boundary.
func (e *Engine) runInProcess(ctx context.Context, j *Job) *store.Report {
	var rep *core.Report
	func() {
		defer func() {
			if r := recover(); r != nil {
				rep = &core.Report{
					Verdict:  core.VerdictUnknown,
					Reason:   fmt.Sprintf("internal error: %v", r),
					Degraded: core.DegradedInternal,
				}
			}
		}()
		cfg := e.cfg.Analyzer
		cfg.Metrics = e.cfg.Metrics
		cfg.Progress = j.emitProgress
		rep = core.AnalyzeContext(ctx, j.sys, &cfg)
	}()
	return store.FromCore(rep, j.sys)
}

// runSandboxed delegates the analysis to the configured Runner (a worker
// subprocess) and maps its error space onto the degradation vocabulary:
// context cancellation → canceled (drain semantics, identical to
// in-process), *HardFaultError → hard-fault, anything else → internal.
func (e *Engine) runSandboxed(ctx context.Context, j *Job) *store.Report {
	cfg := e.cfg.Analyzer
	cfg.Progress = j.emitProgress
	sr, err := e.cfg.Runner(ctx, j.sys, cfg)
	switch hf := (*HardFaultError)(nil); {
	case err == nil && sr != nil:
		return sr
	case ctx.Err() != nil:
		return &store.Report{
			Verdict:  core.VerdictUnknown.String(),
			Reason:   "canceled",
			Degraded: string(core.DegradedCanceled),
		}
	case errors.As(err, &hf):
		return &store.Report{
			Verdict:  core.VerdictUnknown.String(),
			Reason:   hf.Error(),
			Degraded: string(core.DegradedHardFault),
		}
	default:
		reason := "internal error: runner returned no report"
		if err != nil {
			reason = "internal error: " + err.Error()
		}
		return &store.Report{
			Verdict:  core.VerdictUnknown.String(),
			Reason:   reason,
			Degraded: string(core.DegradedInternal),
		}
	}
}

// QuarantineOpenCount reports how many digests are currently quarantined,
// for /readyz; zero without a sandbox runner.
func (e *Engine) QuarantineOpenCount() int {
	if e.breaker == nil {
		return 0
	}
	return e.breaker.OpenCount()
}

// sortedTenantsLocked returns the tenants with queued jobs, sorted, for
// deterministic drain ordering.
func (e *Engine) sortedTenantsLocked() []string {
	out := make([]string, 0, len(e.queues))
	for t, q := range e.queues {
		if len(q) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
