package service

import (
	"errors"
	"testing"
	"time"
)

// The breaker unit tests drive the state machine with a hand-cranked clock:
// closed → open after the threshold, fail-fast with a shrinking RetryAfter
// during the cooldown, a single half-open probe after it, and the probe's
// outcome deciding between closed and re-open.

func testBreaker() (*breaker, *time.Time) {
	b := newBreaker(3, 10*time.Second)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker()
	const d = "digest-a"
	for i := 0; i < 2; i++ {
		if tripped := b.recordFault(d); tripped {
			t.Fatalf("fault %d tripped below threshold", i+1)
		}
		if err := b.allow(d); err != nil {
			t.Fatalf("fault %d: allow = %v, want nil below threshold", i+1, err)
		}
	}
	if !b.recordFault(d) {
		t.Fatal("threshold fault did not trip the breaker")
	}
	err := b.allow(d)
	var qe *QuarantineError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("allow after trip = %v", err)
	}
	if qe.Faults != 3 || qe.RetryAfter != 10*time.Second {
		t.Fatalf("quarantine error = %+v", qe)
	}
	if b.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", b.OpenCount())
	}
	// An unrelated digest is unaffected.
	if err := b.allow("digest-b"); err != nil {
		t.Fatalf("unrelated digest: allow = %v", err)
	}
}

func TestBreakerRetryAfterShrinks(t *testing.T) {
	b, now := testBreaker()
	const d = "digest-a"
	for i := 0; i < 3; i++ {
		b.recordFault(d)
	}
	*now = now.Add(7 * time.Second)
	var qe *QuarantineError
	if err := b.allow(d); !errors.As(err, &qe) || qe.RetryAfter != 3*time.Second {
		t.Fatalf("allow at t+7s = %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, now := testBreaker()
	const d = "digest-a"
	for i := 0; i < 3; i++ {
		b.recordFault(d)
	}
	*now = now.Add(11 * time.Second)
	// First post-cooldown submission wins the probe slot...
	if err := b.allow(d); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// ...and concurrent submissions do not stack probes.
	if err := b.allow(d); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second probe admitted: %v", err)
	}
	if b.OpenCount() != 1 {
		t.Fatalf("OpenCount during probe = %d, want 1", b.OpenCount())
	}

	// Probe succeeds: history is wiped, faults count from zero again.
	b.recordSuccess(d)
	if err := b.allow(d); err != nil {
		t.Fatalf("allow after recovery = %v", err)
	}
	if b.OpenCount() != 0 {
		t.Fatalf("OpenCount after recovery = %d, want 0", b.OpenCount())
	}
	if b.recordFault(d) {
		t.Fatal("first fault after recovery re-tripped immediately")
	}
}

func TestBreakerProbeFaultReopens(t *testing.T) {
	b, now := testBreaker()
	const d = "digest-a"
	for i := 0; i < 3; i++ {
		b.recordFault(d)
	}
	*now = now.Add(11 * time.Second)
	if err := b.allow(d); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// Probe hard-faults: re-open for a fresh cooldown from now.
	if !b.recordFault(d) {
		t.Fatal("probe fault did not re-trip the breaker")
	}
	var qe *QuarantineError
	if err := b.allow(d); !errors.As(err, &qe) || qe.RetryAfter != 10*time.Second {
		t.Fatalf("allow after probe fault = %v", err)
	}
}

func TestBreakerSuccessResetsBelowThreshold(t *testing.T) {
	b, _ := testBreaker()
	const d = "digest-a"
	b.recordFault(d)
	b.recordFault(d)
	b.recordSuccess(d)
	// Two more faults stay below the threshold: the success cleared history.
	b.recordFault(d)
	if b.recordFault(d) {
		t.Fatal("breaker tripped despite an intervening success")
	}
	if err := b.allow(d); err != nil {
		t.Fatalf("allow = %v", err)
	}
}
