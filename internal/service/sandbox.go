package service

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/store"
)

// Sandboxed execution (qed2d -sandbox). The engine's in-process panic
// boundary contains Go panics, but nothing in-process can contain a hard
// fault: an OOM kill, a fatal runtime error (stack overflow, concurrent map
// write deep in a dependency), or a solver loop that stops polling its
// context takes the whole daemon — and every tenant's jobs — with it. In
// sandbox mode each analysis instead runs in a re-exec'd child process
// (`qed2d worker`) that receives the circuit on stdin and streams progress
// events and the final stamped Report back as NDJSON on stdout. The parent
// supervises the child with a wall-clock watchdog and an RSS poller and
// SIGKILLs it when it wedges or exceeds its memory ceiling; any child death
// without a verified final report line is classified as a hard fault
// (core.DegradedHardFault) — an undecided, never-cacheable outcome for that
// one job, and nothing else.
//
// Both ends of the pipe protocol live in this file: Sandbox (parent,
// plugged into the engine as Config.Runner) and WorkerMain (child,
// dispatched by cmd/qed2d when argv[1] == "worker").

// JobRunner executes one job's analysis on behalf of the engine, replacing
// the in-process core.AnalyzeContext call. cfg.Progress (when non-nil)
// receives the same milestone events an in-process run would emit. A
// *HardFaultError return means the execution vehicle died — the analysis
// outcome is unknown and must not be cached; any other error is an
// internal failure of the runner itself.
type JobRunner func(ctx context.Context, sys *r1cs.System, cfg core.Config) (*store.Report, error)

// HardFaultError reports that an isolated worker process died without
// delivering a verdict: killed by the kernel (OOM), by a fatal runtime
// error, or by the supervisor's watchdog. It is the error-space twin of
// core.DegradedHardFault.
type HardFaultError struct {
	// Cause is a short machine-greppable reason: "oom-rss", "wall-clock",
	// "killed", "exit", "torn-output", "spawn".
	Cause string
	// Detail is the human-oriented elaboration (exit status, limits, stderr
	// tail).
	Detail string
}

// Error implements error.
func (e *HardFaultError) Error() string {
	if e.Detail == "" {
		return "hard fault: " + e.Cause
	}
	return "hard fault: " + e.Cause + ": " + e.Detail
}

// Sandbox runs jobs in re-exec'd worker subprocesses. The zero value is not
// usable: Binary must point at a qed2d executable (normally
// os.Executable()).
type Sandbox struct {
	// Binary is the executable to re-exec with the "worker" subcommand.
	Binary string
	// MemMB, when positive, is the child's memory ceiling: the child sets
	// debug.SetMemoryLimit(MemMB<<20) so the Go runtime GCs aggressively
	// near the limit, and the parent SIGKILLs any child whose RSS
	// nevertheless exceeds it (runaway allocations the soft limit cannot
	// stop).
	MemMB int
	// Wall is the per-job wall-clock watchdog (default 5m): a child that
	// has not delivered its report within Wall is considered wedged and
	// SIGKILLed regardless of what it is doing.
	Wall time.Duration
	// RSSPoll is the RSS sampling cadence (default 100ms).
	RSSPoll time.Duration
	// Metrics, when non-nil, receives the service.sandbox.* counters.
	Metrics *obs.Metrics
}

func (s *Sandbox) wall() time.Duration {
	if s.Wall > 0 {
		return s.Wall
	}
	return 5 * time.Minute
}

func (s *Sandbox) rssPoll() time.Duration {
	if s.RSSPoll > 0 {
		return s.RSSPoll
	}
	return 100 * time.Millisecond
}

// workerConfig is the -config JSON handed to the child: the analyzer
// configuration fields that determine verdicts, plus the sandbox knobs.
// Progress/Obs/Metrics hooks deliberately do not cross the process
// boundary — progress comes back over the pipe.
type workerConfig struct {
	Mode        string `json:"mode"`
	SliceRadius int    `json:"slice_radius"`
	QuerySteps  int64  `json:"query_steps"`
	GlobalSteps int64  `json:"global_steps"`
	TimeoutMS   int64  `json:"timeout_ms"`
	Seed        int64  `json:"seed"`
	Workers     int    `json:"workers"`
	NoSolveRule bool   `json:"no_solve_rule,omitempty"`
	NoBitsRule  bool   `json:"no_bits_rule,omitempty"`
	NoStatic    bool   `json:"no_static,omitempty"`
	NoIncr      bool   `json:"no_incremental,omitempty"`
	MemMB       int    `json:"mem_mb,omitempty"`
	// Chaos, set by the parent when a worker.kill / worker.hang fault fires
	// at spawn, tells the child to die or wedge mid-analysis — the
	// deterministic stand-in for a real OOM kill or runaway solver loop.
	Chaos string `json:"chaos,omitempty"`
}

// workerLine is one NDJSON line of the child→parent stream.
type workerLine struct {
	Kind     string              `json:"kind"` // "progress" | "report"
	Progress *core.ProgressEvent `json:"progress,omitempty"`
	Report   *store.Report       `json:"report,omitempty"`
}

// maxWorkerLine bounds one NDJSON line from the child (reports carry
// counterexample signal lists; 8 MiB is far beyond any real one).
const maxWorkerLine = 8 << 20

// Run executes one job in a worker subprocess; it satisfies JobRunner.
func (s *Sandbox) Run(ctx context.Context, sys *r1cs.System, cfg core.Config) (*store.Report, error) {
	spawns := s.Metrics.Counter("service.sandbox.spawns")
	hardFaults := s.Metrics.Counter("service.sandbox.hard_faults")
	wallKills := s.Metrics.Counter("service.sandbox.wall_kills")
	rssKills := s.Metrics.Counter("service.sandbox.rss_kills")

	wc := workerConfig{
		Mode:        cfg.Mode.String(),
		SliceRadius: cfg.SliceRadius,
		QuerySteps:  cfg.QuerySteps,
		GlobalSteps: cfg.GlobalSteps,
		TimeoutMS:   cfg.Timeout.Milliseconds(),
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		NoSolveRule: cfg.DisableSolveRule,
		NoBitsRule:  cfg.DisableBitsRule,
		NoStatic:    cfg.DisableStatic,
		NoIncr:      cfg.DisableIncremental,
		MemMB:       s.MemMB,
	}
	// The chaos sites are checked in the parent, once per spawn, so their
	// deterministic hit counters advance across jobs (a per-child counter
	// would make every child decide identically). A fired site rides to the
	// child as a config field and takes effect mid-analysis there.
	if faultinject.Enabled() {
		if f := faultinject.Check("worker.kill"); f.Err != "" || f.Deadline {
			wc.Chaos = chaosKill
		}
		if f := faultinject.Check("worker.hang"); (f.Err != "" || f.Deadline) && wc.Chaos == "" {
			wc.Chaos = chaosHang
		}
	}
	cfgJSON, err := json.Marshal(wc)
	if err != nil {
		return nil, fmt.Errorf("service: marshaling worker config: %v", err)
	}

	cmd := exec.Command(s.Binary, "worker", "-config", string(cfgJSON))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, &HardFaultError{Cause: "spawn", Detail: err.Error()}
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, &HardFaultError{Cause: "spawn", Detail: err.Error()}
	}
	var stderr tailBuffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return nil, &HardFaultError{Cause: "spawn", Detail: err.Error()}
	}
	spawns.Inc()

	// Feed the circuit; a child that dies early makes the write fail with
	// EPIPE, which is fine — the wait-side classification decides.
	go func() {
		var buf strings.Builder
		_, _ = sys.WriteTo(&buf)
		_, _ = io.WriteString(stdin, buf.String())
		stdin.Close()
	}()

	// Watchdog: SIGKILL on context cancellation (drain), wall-clock
	// overrun, or RSS above the ceiling. killReason records which fired
	// first; the reader loop below never blocks it (the child's pipes close
	// when it dies).
	var (
		killMu     sync.Mutex
		killReason string
	)
	kill := func(reason string) {
		killMu.Lock()
		if killReason == "" {
			killReason = reason
			cmd.Process.Kill()
		}
		killMu.Unlock()
	}
	watchdogDone := make(chan struct{})
	reaped := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		deadline := time.NewTimer(s.wall())
		defer deadline.Stop()
		ticker := time.NewTicker(s.rssPoll())
		defer ticker.Stop()
		for {
			select {
			case <-reaped:
				return
			case <-ctx.Done():
				kill("context")
				return
			case <-deadline.C:
				wallKills.Inc()
				kill("wall-clock")
				return
			case <-ticker.C:
				if s.MemMB > 0 {
					if rss, ok := processRSS(cmd.Process.Pid); ok && rss > int64(s.MemMB)<<20 {
						rssKills.Inc()
						kill("oom-rss")
						return
					}
				}
			}
		}
	}()

	// Read the child's stream until EOF (its death closes the pipe).
	var report *store.Report
	var lineErr error
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64<<10), maxWorkerLine)
	for sc.Scan() {
		var line workerLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			lineErr = fmt.Errorf("undecodable worker line: %v", err)
			break
		}
		switch {
		case line.Kind == "progress" && line.Progress != nil:
			if cfg.Progress != nil {
				cfg.Progress(*line.Progress)
			}
		case line.Kind == "report" && line.Report != nil:
			report = line.Report
		}
	}
	if lineErr == nil {
		lineErr = sc.Err()
	}
	waitErr := cmd.Wait()
	close(reaped)
	<-watchdogDone

	killMu.Lock()
	reason := killReason
	killMu.Unlock()

	switch {
	case ctx.Err() != nil:
		// Drain or per-job cancel: the kill is deliberate, not a fault.
		return nil, ctx.Err()
	case reason != "":
		hardFaults.Inc()
		return nil, &HardFaultError{Cause: reason, Detail: s.limitDetail(waitErr, &stderr)}
	case waitErr != nil:
		// Killed by the kernel (OOM), a fatal runtime error (exit 2), or
		// any other abnormal death.
		hardFaults.Inc()
		return nil, &HardFaultError{Cause: "exit", Detail: s.limitDetail(waitErr, &stderr)}
	case report == nil:
		// Exit 0 but no (or an undecodable) final report line: a torn
		// stream is as untrustworthy as a crash.
		hardFaults.Inc()
		detail := "worker exited without a report"
		if lineErr != nil {
			detail = lineErr.Error()
		}
		return nil, &HardFaultError{Cause: "torn-output", Detail: detail}
	}
	return report, nil
}

// limitDetail renders the child's exit state plus a stderr tail.
func (s *Sandbox) limitDetail(waitErr error, stderr *tailBuffer) string {
	var parts []string
	if waitErr != nil {
		parts = append(parts, waitErr.Error())
	}
	if tail := stderr.String(); tail != "" {
		parts = append(parts, "stderr: "+tail)
	}
	return strings.Join(parts, "; ")
}

// tailBuffer retains the last kilobyte of what was written to it — enough
// of a crashing child's stderr to diagnose, bounded so a looping child
// cannot balloon the parent.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	const keep = 1 << 10
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > keep {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-keep:]...)
	}
	t.mu.Unlock()
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.TrimSpace(string(t.buf))
}

// processRSS reads a process's resident set size. Linux-only (procfs);
// elsewhere ok is false and the RSS watchdog is inert (the wall-clock
// watchdog and the child-side soft limit still stand).
func processRSS(pid int) (int64, bool) {
	b, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}

// Chaos modes carried by workerConfig.Chaos.
const (
	chaosKill = "kill" // raise SIGKILL on self at the first progress event
	chaosHang = "hang" // block forever at the first progress event
)

// WorkerMain is the child-side entry point of the sandbox protocol,
// dispatched by cmd/qed2d for the "worker" subcommand. It reads an r1cs
// text dump from stdin, analyzes it under the -config JSON, and streams
// progress plus the final Report as NDJSON on stdout. The exit code is 0
// when a report was written, 3 on usage/input errors. It never writes
// anything but protocol lines to stdout.
func WorkerMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qed2d worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgJSON := fs.String("config", "", "worker configuration JSON (required)")
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *cfgJSON == "" || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: qed2d worker -config <json> < circuit.r1cs")
		return 3
	}
	var wc workerConfig
	if err := json.Unmarshal([]byte(*cfgJSON), &wc); err != nil {
		fmt.Fprintln(stderr, "qed2d worker: bad -config:", err)
		return 3
	}
	// The chaos substrate is armed in the child too: solver-level sites
	// (smt.*, core.query) fire here exactly as they would in-process, so a
	// chaos schedule exercises both the in-child soft boundaries and the
	// parent's hard-fault classification.
	if _, err := faultinject.EnableFromEnv(); err != nil {
		fmt.Fprintln(stderr, "qed2d worker:", err)
		return 3
	}
	if wc.MemMB > 0 {
		debug.SetMemoryLimit(int64(wc.MemMB) << 20)
	}

	sys, err := r1cs.Parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "qed2d worker: parsing circuit:", err)
		return 3
	}

	cfg := core.Config{
		SliceRadius:        wc.SliceRadius,
		QuerySteps:         wc.QuerySteps,
		GlobalSteps:        wc.GlobalSteps,
		Timeout:            time.Duration(wc.TimeoutMS) * time.Millisecond,
		Seed:               wc.Seed,
		Workers:            wc.Workers,
		DisableSolveRule:   wc.NoSolveRule,
		DisableBitsRule:    wc.NoBitsRule,
		DisableStatic:      wc.NoStatic,
		DisableIncremental: wc.NoIncr,
	}
	switch wc.Mode {
	case core.ModeFull.String(), "":
		cfg.Mode = core.ModeFull
	case core.ModePropagationOnly.String():
		cfg.Mode = core.ModePropagationOnly
	case core.ModeSMTOnly.String():
		cfg.Mode = core.ModeSMTOnly
	default:
		fmt.Fprintf(stderr, "qed2d worker: unknown mode %q\n", wc.Mode)
		return 3
	}

	enc := json.NewEncoder(stdout)
	chaosArmed := wc.Chaos != ""
	cfg.Progress = func(ev core.ProgressEvent) {
		if chaosArmed {
			// Mid-analysis hard-fault simulation: a SIGKILL is exactly what
			// the kernel's OOM killer delivers, and an unbounded block is
			// exactly a solver loop that stopped polling. Both leave the
			// parent to discover the death through the pipe and watchdog.
			chaosArmed = false
			switch wc.Chaos {
			case chaosKill:
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
				runtime.Gosched() // not reached once the signal lands
			case chaosHang:
				select {}
			}
		}
		_ = enc.Encode(workerLine{Kind: "progress", Progress: &ev})
	}

	rep := core.AnalyzeContext(context.Background(), sys, &cfg)
	if err := enc.Encode(workerLine{Kind: "report", Report: store.FromCore(rep, sys)}); err != nil {
		fmt.Fprintln(stderr, "qed2d worker: writing report:", err)
		return 3
	}
	return 0
}

var _ JobRunner = (*Sandbox)(nil).Run // Sandbox.Run satisfies the engine contract
