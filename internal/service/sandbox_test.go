package service

import (
	"errors"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"qed2/internal/faultinject"
	"qed2/internal/obs"
)

// TestMain doubles this test binary as the sandbox worker: when the harness
// re-execs os.Args[0] with the "worker" subcommand, the process runs
// WorkerMain instead of the test suite — the exact dispatch cmd/qed2d does —
// so the full parent/child pipe protocol is exercised hermetically, without
// building the daemon binary.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(WorkerMain(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func testSandbox(m *obs.Metrics) *Sandbox {
	return &Sandbox{
		Binary:  os.Args[0],
		Wall:    60 * time.Second,
		RSSPoll: 10 * time.Millisecond,
		Metrics: m,
	}
}

func TestSandboxRunDelivery(t *testing.T) {
	m := obs.NewMetrics()
	e := New(Config{Analyzer: testConfig(), Workers: 2, Metrics: m, Runner: testSandbox(m).Run})
	defer e.Close()

	j, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.Status != StatusDone || v.Report == nil || v.Report.Verdict != "safe" {
		t.Fatalf("sandboxed safe job = %+v report %+v", v, v.Report)
	}
	// Progress events must cross the process boundary, not just the report.
	evs, _ := j.EventsSince(0)
	var sawProgress bool
	for _, ev := range evs {
		if ev.Kind == "progress" {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatalf("no progress events crossed the worker pipe: %+v", evs)
	}

	// Counterexamples survive the wire format too.
	j2, err := e.SubmitSource("alice", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitTerminal(t, j2)
	if v2.Status != StatusDone || v2.Report.Verdict != "unsafe" || v2.Report.CEOutput == "" {
		t.Fatalf("sandboxed buggy job = %+v report %+v", v2, v2.Report)
	}
	if got := m.Counters()["service.sandbox.spawns"]; got < 2 {
		t.Fatalf("service.sandbox.spawns = %d, want >= 2", got)
	}
}

func TestSandboxWorkerKillIsHardFault(t *testing.T) {
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "worker.kill", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()

	m := obs.NewMetrics()
	e := New(Config{Analyzer: testConfig(), Workers: 1, Metrics: m, Runner: testSandbox(m).Run})
	defer e.Close()

	j, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.Status != StatusFailed {
		t.Fatalf("killed worker's job = %+v", v)
	}
	if v.Report == nil || v.Report.Degraded != "hard-fault" {
		t.Fatalf("killed worker's report = %+v, want hard-fault degradation", v.Report)
	}
	if !v.Retriable {
		t.Fatal("hard-fault job must be retriable")
	}
	if got := m.Counters()["service.jobs.hard_faults"]; got != 1 {
		t.Fatalf("service.jobs.hard_faults = %d, want 1", got)
	}

	// The daemon-side engine is unharmed: with faults off, the same digest
	// analyzes normally (one fault is below the quarantine threshold).
	faultinject.Disable()
	j2, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	if v2 := waitTerminal(t, j2); v2.Status != StatusDone || v2.Report.Verdict != "safe" {
		t.Fatalf("post-fault job = %+v report %+v", v2, v2.Report)
	}
}

func TestSandboxWallClockWatchdog(t *testing.T) {
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "worker.hang", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()

	m := obs.NewMetrics()
	sb := testSandbox(m)
	sb.Wall = 300 * time.Millisecond
	e := New(Config{Analyzer: testConfig(), Workers: 1, Metrics: m, Runner: sb.Run})
	defer e.Close()

	j, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.Status != StatusFailed || v.Report == nil || v.Report.Degraded != "hard-fault" {
		t.Fatalf("hung worker's job = %+v report %+v", v, v.Report)
	}
	if !strings.Contains(v.Error, "wall-clock") {
		t.Fatalf("hung worker's error = %q, want wall-clock watchdog kill", v.Error)
	}
	if got := m.Counters()["service.sandbox.wall_kills"]; got != 1 {
		t.Fatalf("service.sandbox.wall_kills = %d, want 1", got)
	}
}

func TestSandboxQuarantineBreaker(t *testing.T) {
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "worker.kill", Kind: faultinject.KindError, Every: 1},
	}})
	defer faultinject.Disable()

	m := obs.NewMetrics()
	e := New(Config{
		Analyzer:            testConfig(),
		Workers:             1,
		Metrics:             m,
		Runner:              testSandbox(m).Run,
		QuarantineThreshold: 2,
		QuarantineCooldown:  100 * time.Millisecond,
	})
	defer e.Close()

	// Two consecutive hard faults trip the digest's breaker.
	for i := 0; i < 2; i++ {
		j, err := e.SubmitSource("alice", srcSafe)
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		if v := waitTerminal(t, j); v.Status != StatusFailed || v.Report.Degraded != "hard-fault" {
			t.Fatalf("fault %d: job = %+v", i, v)
		}
	}

	// Open breaker: fail fast with the typed quarantine error.
	_, err := e.SubmitSource("alice", srcSafe)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("submission after trip: err = %v, want ErrQuarantined", err)
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) || qe.Faults != 2 || qe.RetryAfter <= 0 {
		t.Fatalf("quarantine error = %+v", qe)
	}
	if n := e.QuarantineOpenCount(); n != 1 {
		t.Fatalf("QuarantineOpenCount = %d, want 1", n)
	}
	if got := m.Counters()["service.jobs.quarantined"]; got != 1 {
		t.Fatalf("service.jobs.quarantined = %d, want 1", got)
	}

	// Cooldown elapses and the fault clears (transient pressure): the next
	// submission is the half-open probe, and its success closes the breaker.
	faultinject.Disable()
	time.Sleep(150 * time.Millisecond)
	j, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if v := waitTerminal(t, j); v.Status != StatusDone || v.Report.Verdict != "safe" {
		t.Fatalf("probe job = %+v", v)
	}
	if n := e.QuarantineOpenCount(); n != 0 {
		t.Fatalf("QuarantineOpenCount after recovery = %d, want 0", n)
	}
}

// TestSandboxWatchdogGoroutineFence runs a mix of healthy, killed, and hung
// sandbox jobs and asserts every watchdog and reader goroutine is joined —
// the leak fence for the supervision machinery.
func TestSandboxWatchdogGoroutineFence(t *testing.T) {
	before := runtime.NumGoroutine()

	faultinject.Enable(&faultinject.Plan{Seed: 3, Rules: []faultinject.Rule{
		{Site: "worker.kill", Kind: faultinject.KindError, Every: 3},
		{Site: "worker.hang", Kind: faultinject.KindError, Every: 4},
	}})
	defer faultinject.Disable()

	m := obs.NewMetrics()
	sb := testSandbox(m)
	sb.Wall = 500 * time.Millisecond
	e := New(Config{Analyzer: testConfig(), Workers: 2, Metrics: m, Runner: sb.Run})
	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		j, err := e.SubmitSource("alice", srcMul(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		v := waitTerminal(t, j)
		if v.Status != StatusDone && v.Status != StatusFailed {
			t.Fatalf("job %s = %+v", j.ID, v)
		}
	}
	e.Close()
	faultinject.Disable()
	assertNoGoroutineLeak(t, before)
}
