package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"qed2/internal/bench"
	"qed2/internal/buildinfo"
	"qed2/internal/core"
	"qed2/internal/r1cs"
)

// Graceful drain (SIGTERM path). The contract mirrors the bench checkpoint
// (DESIGN.md §11): decided verdicts are never revoked — a job that finishes
// while the drain is racing it keeps its result and is stored — while
// everything undecided is either shed back to the client as a retriable
// cancellation (queued jobs) or checkpointed for the next daemon process
// (in-flight jobs). The checkpoint is stamped with the analyzer
// configuration; Resume refuses a mismatched stamp, so a restarted daemon
// can only continue runs whose verdicts are comparable to its own.

// stampJSON renders the configuration stamp shared by the report store and
// the drain checkpoint: the JSON of the bench checkpoint config.
func stampJSON(cfg core.Config) string {
	b, err := json.Marshal(bench.StampOf(cfg))
	if err != nil {
		// CheckpointConfig is a flat struct of scalars; Marshal cannot fail.
		panic(err)
	}
	return string(b)
}

// drainHeader is the first line of a drain checkpoint file.
type drainHeader struct {
	Config  *bench.CheckpointConfig `json:"config"`
	Version string                  `json:"version,omitempty"`
}

// drainRecord is one interrupted in-flight job: everything needed to
// re-create it in the next process.
type drainRecord struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Digest string `json:"digest"`
	R1CS   string `json:"r1cs"`
}

// DrainSummary reports what a drain did.
type DrainSummary struct {
	// Shed is the number of queued jobs rejected as retriable cancellations.
	Shed int
	// Interrupted is the number of in-flight jobs canceled mid-analysis and
	// written to the checkpoint.
	Interrupted int
	// Checkpoint is the path written (empty if no CheckpointPath configured
	// or nothing was interrupted).
	Checkpoint string
}

// Drain gracefully shuts the engine down: queued jobs are shed as
// retriable cancellations, in-flight analyses are canceled at their next
// query boundary, workers are joined, and the interrupted jobs are
// checkpointed. ctx bounds the wait for in-flight jobs to notice the
// cancellation. The engine accepts no submissions afterwards.
func (e *Engine) Drain(ctx context.Context) (DrainSummary, error) {
	shed, running := e.stop(true)
	sum := DrainSummary{Shed: len(shed)}

	// Wait for workers to finish their (already canceled) analyses.
	done := make(chan struct{})
	go func() { e.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline pressure: hard-cancel the root context (a no-op if the
		// per-job cancels already fired) and wait it out — every analysis
		// loop checks its context at query boundaries.
		e.cancel()
		<-done
	}
	e.cancel()

	// Checkpoint the jobs that were genuinely interrupted: running at drain
	// time and finished canceled. A job that completed decided in the race
	// keeps its verdict and needs no resume.
	var interrupted []*Job
	for _, j := range running {
		if j.Status() == StatusCanceled {
			interrupted = append(interrupted, j)
		}
	}
	sum.Interrupted = len(interrupted)
	if e.cfg.CheckpointPath == "" || len(interrupted) == 0 {
		return sum, nil
	}
	if err := writeDrainCheckpoint(e.cfg.CheckpointPath, e.cfg.Analyzer, interrupted); err != nil {
		return sum, err
	}
	sum.Checkpoint = e.cfg.CheckpointPath
	return sum, nil
}

// Close shuts the engine down without checkpointing: queued jobs are shed,
// running analyses canceled, workers joined. For tests and error paths.
func (e *Engine) Close() {
	e.stop(false)
	e.cancel()
	e.wg.Wait()
}

// stop flips the engine into its terminal state and returns the shed
// queued jobs and the jobs that were running. Idempotent: a second call
// finds empty queues. When cancelRunning is true the in-flight analyses'
// contexts are canceled individually (Close cancels the root instead).
func (e *Engine) stop(cancelRunning bool) (shed, running []*Job) {
	e.mu.Lock()
	e.draining = true
	e.stopped = true
	for _, t := range e.sortedTenantsLocked() {
		shed = append(shed, e.queues[t]...)
		e.queues[t] = nil
	}
	e.queued = 0
	for _, j := range shed {
		delete(e.active, j.Digest)
	}
	for _, j := range e.active {
		running = append(running, j)
	}
	e.cond.Broadcast()
	e.mu.Unlock()

	for _, j := range shed {
		if j.finish(StatusCanceled, nil, "canceled: server draining", true) {
			e.canceled.Inc()
		}
	}
	if cancelRunning {
		for _, j := range running {
			j.cancelRunning()
		}
	}
	return shed, running
}

// writeDrainCheckpoint persists interrupted jobs as stamped JSONL,
// published atomically (temp file + rename) so a torn write can never
// masquerade as a checkpoint.
func writeDrainCheckpoint(path string, cfg core.Config, jobs []*Job) error {
	stamp := bench.StampOf(cfg)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(drainHeader{Config: &stamp, Version: buildinfo.Get().String()}); err != nil {
		return fmt.Errorf("service: encoding checkpoint header: %w", err)
	}
	for _, j := range jobs {
		var text bytes.Buffer
		if _, err := j.sys.WriteTo(&text); err != nil {
			return fmt.Errorf("service: serializing job %s: %w", j.ID, err)
		}
		rec := drainRecord{ID: j.ID, Tenant: j.Tenant, Digest: j.Digest, R1CS: text.String()}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("service: encoding job %s: %w", j.ID, err)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "drain-*.tmp")
	if err != nil {
		return fmt.Errorf("service: writing checkpoint: %w", err)
	}
	_, werr := tmp.Write(buf.Bytes())
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing checkpoint %s: %w", path, werr)
	}
	return nil
}

// Resume reloads a drain checkpoint into the (freshly started) engine,
// re-enqueueing every interrupted job under its original ID and tenant. A
// missing file is an empty resume; a checkpoint stamped with a different
// analyzer configuration is refused, exactly like bench.LoadCheckpoint. A
// torn final line — the signature of a mid-write kill — is discarded. The
// checkpoint file is removed after a successful load so a later drain can
// rewrite it from scratch.
func (e *Engine) Resume() (int, error) {
	path := e.cfg.CheckpointPath
	if path == "" {
		return 0, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("service: reading checkpoint %s: %w", path, err)
	}
	lines := strings.Split(string(b), "\n")
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return 0, nil
	}
	var hdr drainHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Config == nil {
		return 0, fmt.Errorf("service: checkpoint %s has no config header — delete it and restart", path)
	}
	if want := bench.StampOf(e.cfg.Analyzer); *hdr.Config != want {
		return 0, fmt.Errorf("service: checkpoint %s was written under config %+v but this daemon runs %+v — delete it or restart with matching flags", path, *hdr.Config, want)
	}
	resumed := 0
	for i, line := range lines[1:] {
		lineNo := i + 2
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec drainRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if lineNo == len(lines) {
				break // torn final line
			}
			return resumed, fmt.Errorf("service: checkpoint %s line %d: %w", path, lineNo, err)
		}
		sys, err := r1cs.Parse(strings.NewReader(rec.R1CS))
		if err != nil {
			return resumed, fmt.Errorf("service: checkpoint %s line %d: %w", path, lineNo, err)
		}
		if err := e.resumeJob(rec, sys); err != nil {
			return resumed, err
		}
		resumed++
	}
	if err := os.Remove(path); err != nil {
		return resumed, fmt.Errorf("service: removing consumed checkpoint %s: %w", path, err)
	}
	return resumed, nil
}

// resumeJob re-creates one interrupted job. The store is consulted first —
// another process may have decided the same circuit since the drain — and
// admission control is bypassed: resumed jobs were admitted by the previous
// process, re-rejecting them would drop work the client was promised.
func (e *Engine) resumeJob(rec drainRecord, sys *r1cs.System) error {
	digest := sys.Digest()
	if rec.Digest != "" && rec.Digest != digest {
		return fmt.Errorf("service: resumed job %s: checkpoint digest %.12s… does not match its circuit (%.12s…)", rec.ID, rec.Digest, digest)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return errors.New("service: cannot resume into a stopped engine")
	}
	if _, ok := e.jobs[rec.ID]; ok {
		return fmt.Errorf("service: duplicate job id %s in checkpoint", rec.ID)
	}
	// Keep fresh IDs past every resumed one.
	if n, err := strconv.ParseInt(strings.TrimPrefix(rec.ID, "j"), 10, 64); err == nil && n > e.nextID {
		e.nextID = n
	}
	tenant := rec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	j := newJob(rec.ID, tenant, digest, sys, e.cfg.EventBuffer)
	e.jobs[j.ID] = j
	e.order = append(e.order, j.ID)
	if e.cfg.Store != nil {
		if rep, ok := e.cfg.Store.Get(digest); ok {
			j.markCached(rep)
			e.cached.Inc()
			return nil
		}
	}
	if dup := e.active[digest]; dup != nil {
		// Two interrupted jobs for one circuit cannot both be active; the
		// later one simply completes when the earlier one does. Mark it
		// cached-equivalent by leaving it queued behind the same digest is
		// not possible, so shed it as retriable.
		j.finish(StatusCanceled, nil, "canceled: duplicate of in-flight job "+dup.ID, true)
		e.canceled.Inc()
		return nil
	}
	e.enqueueLocked(j)
	return nil
}
