package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Poison-job quarantine. A circuit that hard-faults its sandbox worker —
// OOM, fatal runtime error, watchdog kill — will almost certainly do it
// again on resubmission, and clients retry failed jobs by design. Without a
// breaker, one poison circuit burns a worker slot per retry forever. The
// quarantine is a per-digest circuit breaker: after Threshold consecutive
// hard faults the digest trips open and submissions fail fast with a typed
// 422 (QuarantineError) instead of reaching the queue; after Cooldown one
// half-open probe is admitted, and its outcome decides between closing the
// breaker (transient pressure, e.g. a co-tenant's memory spike) and
// re-opening it (genuinely poisonous input). Verdict-producing runs and
// cache hits are unaffected — only the hard-fault path feeds the counter.

// ErrQuarantined is the sentinel under every QuarantineError, for
// errors.Is. The HTTP layer maps it to 422 Unprocessable Entity with a
// Retry-After of the remaining cooldown.
var ErrQuarantined = errors.New("service: digest is quarantined after repeated hard faults")

// QuarantineError is the typed admission failure for a quarantined digest.
type QuarantineError struct {
	Digest string
	// Faults is how many consecutive hard faults tripped the breaker.
	Faults int
	// RetryAfter is the remaining cooldown (zero when a half-open probe is
	// already in flight — retry once it settles).
	RetryAfter time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("service: digest %s quarantined after %d hard faults (retry in %s)",
		e.Digest, e.Faults, e.RetryAfter.Round(time.Second))
}

func (e *QuarantineError) Unwrap() error { return ErrQuarantined }

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

type breakerEntry struct {
	state    int
	faults   int       // consecutive hard faults
	openedAt time.Time // when the breaker last tripped
}

// breaker tracks per-digest hard-fault history. All methods are safe for
// concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		entries:   map[string]*breakerEntry{},
	}
}

// allow decides admission for a digest: nil when closed or when this call
// wins the single half-open probe slot, a *QuarantineError otherwise.
func (b *breaker) allow(digest string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ent := b.entries[digest]
	if ent == nil || ent.state == breakerClosed {
		return nil
	}
	if ent.state == breakerOpen {
		if remaining := ent.openedAt.Add(b.cooldown).Sub(b.now()); remaining > 0 {
			return &QuarantineError{Digest: digest, Faults: ent.faults, RetryAfter: remaining}
		}
		// Cooldown elapsed: this submission becomes the half-open probe.
		ent.state = breakerHalfOpen
		return nil
	}
	// Half-open with the probe still in flight: fail fast, don't stack
	// probes (the engine's digest dedup catches most of these already; this
	// covers a probe that finished queueing but whose outcome is pending).
	return &QuarantineError{Digest: digest, Faults: ent.faults}
}

// recordFault notes a hard fault for a digest and returns true when this
// fault tripped (or re-tripped) the breaker open.
func (b *breaker) recordFault(digest string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	ent := b.entries[digest]
	if ent == nil {
		ent = &breakerEntry{}
		b.entries[digest] = ent
	}
	ent.faults++
	if ent.state == breakerHalfOpen || ent.faults >= b.threshold {
		ent.state = breakerOpen
		ent.openedAt = b.now()
		return true
	}
	return false
}

// recordSuccess resets a digest after a run that produced a verdict (or any
// non-hard-fault outcome): the input has proven it can execute, so its
// history is cleared entirely.
func (b *breaker) recordSuccess(digest string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, digest)
}

// OpenCount reports how many digests are currently quarantined (open or
// probing), for /readyz and /metrics.
func (b *breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, ent := range b.entries {
		if ent.state != breakerClosed {
			n++
		}
	}
	return n
}
