package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/store"
)

const srcSafe = `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`

const srcBuggy = `
template IsZeroBuggy() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
}
component main = IsZeroBuggy();
`

// srcMul yields a family of distinct trivially-safe circuits (distinct
// digests) for queue-shape tests.
func srcMul(k int) string {
	return fmt.Sprintf(`
template Mul%d() {
    signal input a;
    signal input b;
    signal output out;
    out <== a * b + %d;
}
component main = Mul%d();
`, k, k, k)
}

func testConfig() core.Config {
	return core.Config{QuerySteps: 50_000, GlobalSteps: 1_000_000, Seed: 1}
}

// waitTerminal follows the job's event feed until it reaches a terminal
// status, exercising the EventsSince/changed contract the NDJSON streaming
// handler relies on.
func waitTerminal(t *testing.T, j *Job) JobView {
	t.Helper()
	deadline := time.After(60 * time.Second)
	var after int64
	for {
		if j.Status().Terminal() {
			return j.View()
		}
		evs, changed := j.EventsSince(after)
		if len(evs) > 0 {
			after = evs[len(evs)-1].Seq
			continue
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatalf("job %s stuck in status %s", j.ID, j.Status())
		}
	}
}

func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := j.Status()
		if st == StatusRunning || st.Terminal() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started (status %s)", j.ID, j.Status())
}

func TestSubmitAnalyzeDone(t *testing.T) {
	e := New(Config{Analyzer: testConfig(), Workers: 2})
	defer e.Close()
	j, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j)
	if v.Status != StatusDone || v.Report == nil || v.Report.Verdict != "safe" {
		t.Fatalf("job = %+v", v)
	}
	if v.Cached {
		t.Fatal("fresh analysis marked cached")
	}
	evs, _ := j.EventsSince(0)
	var sawRunning, sawProgress, sawDone bool
	for _, ev := range evs {
		switch {
		case ev.Kind == "status" && ev.Status == "running":
			sawRunning = true
		case ev.Kind == "progress":
			sawProgress = true
		case ev.Kind == "status" && ev.Status == "done":
			sawDone = true
		}
	}
	if !sawRunning || !sawProgress || !sawDone {
		t.Fatalf("event feed incomplete (running=%v progress=%v done=%v): %+v",
			sawRunning, sawProgress, sawDone, evs)
	}
	// Unsafe circuits carry their counterexample summary.
	j2, err := e.SubmitSource("alice", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitTerminal(t, j2)
	if v2.Status != StatusDone || v2.Report.Verdict != "unsafe" || v2.Report.CEOutput == "" {
		t.Fatalf("buggy job = %+v report %+v", v2, v2.Report)
	}
}

func TestStoreHitSecondSubmission(t *testing.T) {
	m := obs.NewMetrics()
	st, err := store.Open(store.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Analyzer: testConfig(), Workers: 1, Store: st, Metrics: m})
	defer e.Close()
	j1, err := e.Submit("alice", mustCompile(t, srcSafe))
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitTerminal(t, j1)
	if v1.Status != StatusDone || v1.Cached {
		t.Fatalf("first submission = %+v", v1)
	}
	// Same circuit again: answered from the store, no second solver run.
	j2, err := e.Submit("bob", mustCompile(t, srcSafe))
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitTerminal(t, j2)
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("second submission not served from store: %+v", v2)
	}
	if v2.Report.Verdict != v1.Report.Verdict {
		t.Fatalf("cached verdict %q != fresh verdict %q", v2.Report.Verdict, v1.Report.Verdict)
	}
	c := m.Counters()
	if c["service.store.misses"] != 1 || c["service.store.hits"] != 1 {
		t.Fatalf("store counters = %v, want 1 miss + 1 hit", c)
	}
	if c["service.jobs.analyzed"] != 1 || c["service.jobs.cached"] != 1 {
		t.Fatalf("job counters = %v, want 1 analyzed + 1 cached", c)
	}
}

func TestDigestDedupWhileInFlight(t *testing.T) {
	// Pin the single worker on a blocker circuit so the next submissions
	// stay queued deterministically.
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "core.query", Kind: faultinject.KindLatency, Every: 1, Delay: 300 * time.Millisecond},
	}})
	defer faultinject.Disable()
	m := obs.NewMetrics()
	e := New(Config{Analyzer: testConfig(), Workers: 1, Metrics: m})
	defer e.Close()
	blocker, err := e.SubmitSource("blk", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	a1, err := e.SubmitSource("alice", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.SubmitSource("bob", srcSafe)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("identical in-flight circuits got distinct jobs %s and %s", a1.ID, a2.ID)
	}
	if m.Counters()["service.jobs.deduped"] != 1 {
		t.Fatalf("counters = %v", m.Counters())
	}
	faultinject.Disable()
	if v := waitTerminal(t, a1); v.Status != StatusDone {
		t.Fatalf("deduped job = %+v", v)
	}
}

func TestAdmissionControl(t *testing.T) {
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "core.query", Kind: faultinject.KindLatency, Every: 1, Delay: 300 * time.Millisecond},
	}})
	defer faultinject.Disable()
	m := obs.NewMetrics()
	e := New(Config{Analyzer: testConfig(), Workers: 1, QueueDepth: 2, TenantQuota: 1, Metrics: m})
	defer e.Close()
	blocker, err := e.SubmitSource("blk", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	// One queued job per tenant fits.
	if _, err := e.SubmitSource("alice", srcMul(1)); err != nil {
		t.Fatal(err)
	}
	// The same tenant's second queued job trips the per-tenant quota.
	if _, err := e.SubmitSource("alice", srcMul(2)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("quota breach = %v, want ErrTenantQuota", err)
	}
	// Another tenant still fits until the global depth is reached.
	if _, err := e.SubmitSource("bob", srcMul(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitSource("carol", srcMul(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow = %v, want ErrQueueFull", err)
	}
	if got := m.Counters()["service.jobs.rejected"]; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	faultinject.Disable()
}

// TestRoundRobinFairness drives the scheduler's pop order directly: with
// tenant A three deep and B, C one each, service order must interleave
// tenants instead of draining A first.
func TestRoundRobinFairness(t *testing.T) {
	e := New(Config{Analyzer: testConfig(), Workers: 1, QueueDepth: 16})
	defer e.Close()
	e.mu.Lock()
	mk := func(tenant string, k int) *Job {
		j := e.registerLocked(tenant, fmt.Sprintf("%064d", k), nil)
		e.enqueueLocked(j)
		return j
	}
	a1, a2, a3 := mk("a", 1), mk("a", 2), mk("a", 3)
	b1 := mk("b", 4)
	c1 := mk("c", 5)
	want := []*Job{a1, b1, c1, a2, a3}
	for i, w := range want {
		got := e.popLocked()
		if got != w {
			t.Fatalf("pop %d = %v, want %s", i, got, w.ID)
		}
	}
	if e.popLocked() != nil {
		t.Fatal("pop from empty queue returned a job")
	}
	e.mu.Unlock()
}

func TestDrainChecksPointsAndResumes(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "drain.ckpt")
	cfg := Config{Analyzer: testConfig(), Workers: 1, CheckpointPath: ckpt}

	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "core.query", Kind: faultinject.KindLatency, Every: 1, Delay: 500 * time.Millisecond},
	}})
	defer faultinject.Disable()
	e := New(cfg)
	blocker, err := e.SubmitSource("t1", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	queued, err := e.SubmitSource("t2", srcSafe)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sum, err := e.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Disable()
	if sum.Shed != 1 || sum.Interrupted != 1 || sum.Checkpoint != ckpt {
		t.Fatalf("drain summary = %+v", sum)
	}
	// The queued job was shed as a retriable cancellation.
	if v := queued.View(); v.Status != StatusCanceled || !v.Retriable {
		t.Fatalf("queued job after drain = %+v", v)
	}
	if v := blocker.View(); v.Status != StatusCanceled {
		t.Fatalf("in-flight job after drain = %+v", v)
	}
	// Submissions after drain are refused.
	if _, err := e.SubmitSource("t3", srcMul(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit = %v, want ErrDraining", err)
	}

	// A restarted engine resumes the interrupted job under its original ID
	// and converges to the verdict an uninterrupted run would produce.
	e2 := New(cfg)
	defer e2.Close()
	n, err := e2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	resumed, ok := e2.Job(blocker.ID)
	if !ok {
		t.Fatalf("resumed job lost its ID %s", blocker.ID)
	}
	if v := waitTerminal(t, resumed); v.Status != StatusDone || v.Report.Verdict != "unsafe" {
		t.Fatalf("resumed job = %+v report %+v", v, v.Report)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("consumed checkpoint still on disk (err=%v)", err)
	}
	// Fresh IDs do not collide with resumed ones.
	j, err := e2.SubmitSource("t1", srcMul(7))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == blocker.ID {
		t.Fatalf("fresh job reused resumed ID %s", j.ID)
	}
}

func TestResumeRefusesMismatchedStamp(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "drain.ckpt")
	cfg := Config{Analyzer: testConfig(), Workers: 1, CheckpointPath: ckpt}
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "core.query", Kind: faultinject.KindLatency, Every: 1, Delay: 500 * time.Millisecond},
	}})
	defer faultinject.Disable()
	e := New(cfg)
	j, err := e.SubmitSource("t1", srcBuggy)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	faultinject.Disable()

	other := cfg
	other.Analyzer.Seed = 99
	e2 := New(other)
	defer e2.Close()
	if _, err := e2.Resume(); err == nil {
		t.Fatal("resume accepted a checkpoint from a different analyzer configuration")
	}
}

// mustCompile turns source into a system for Submit-level tests.
func mustCompile(t *testing.T, src string) *r1cs.System {
	t.Helper()
	prog, err := circom.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog.System
}
