package service

import (
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/store"
)

// Chaos coverage for the service-layer fault sites (service.enqueue,
// service.store.get, service.store.put), following the bench chaos harness
// contract: under injected faults the engine may degrade (retries, cache
// misses, failed jobs) but must never flip a decided verdict, leak
// goroutines, or wedge.

func chaosAnalyzer() core.Config {
	return core.Config{QuerySteps: 500, GlobalSteps: 10_000, Workers: 2, Seed: 1}
}

// runSuiteThroughEngine submits every instance (retrying transient
// admission rejections, as an HTTP client would on 429) and returns the
// terminal verdict per instance name. mod, when non-nil, adjusts the engine
// configuration before New (sandbox runner, different store tier).
func runSuiteThroughEngine(t *testing.T, insts []bench.Instance, mod func(*Config)) map[string]string {
	t.Helper()
	m := obs.NewMetrics()
	st, err := store.Open(store.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Analyzer:   chaosAnalyzer(),
		Workers:    2,
		QueueDepth: 8,
		Store:      st,
		Library:    bench.Library(),
		Metrics:    m,
	}
	if mod != nil {
		mod(&cfg)
	}
	e := New(cfg)
	defer e.Close()
	jobs := map[string]*Job{}
	out := map[string]string{}
	for _, inst := range insts {
		src := inst.Source()
		var j *Job
		var err error
		for attempt := 0; ; attempt++ {
			j, err = e.SubmitSource("chaos", src)
			if err == nil {
				break
			}
			if (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQuota)) && attempt < 5000 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			break
		}
		if err != nil {
			out[inst.Name] = "compile-error"
			continue
		}
		jobs[inst.Name] = j
	}
	for name, j := range jobs {
		v := waitTerminal(t, j)
		switch v.Status {
		case StatusDone:
			out[name] = v.Report.Verdict
		default:
			// Failed (injected panic) or canceled: a degraded unknown.
			out[name] = "unknown"
		}
	}
	return out
}

func decided(v string) bool { return v == "safe" || v == "unsafe" }

func TestChaosServiceFaultSites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds; skipped in -short")
	}
	before := runtime.NumGoroutine()
	insts := bench.Suite()[:16]

	clean := runSuiteThroughEngine(t, insts, nil)

	faultinject.Enable(&faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Site: "service.enqueue", Kind: faultinject.KindError, Rate: 0.25},
		{Site: "service.store.get", Kind: faultinject.KindError, Rate: 0.3},
		{Site: "service.store.put", Kind: faultinject.KindError, Rate: 0.3},
		{Site: "core.query", Kind: faultinject.KindPanic, Rate: 0.02},
	}})
	defer faultinject.Disable()
	faulty := runSuiteThroughEngine(t, insts, nil)
	hits := faultinject.Hits()
	faultinject.Disable()

	for _, site := range []string{"service.enqueue", "service.store.get", "service.store.put"} {
		if hits[site] == 0 {
			t.Errorf("site %s never exercised (hits=%v)", site, hits)
		}
	}
	if len(faulty) != len(insts) {
		t.Fatalf("faulty run produced %d outcomes for %d instances", len(faulty), len(insts))
	}
	// Verdict monotonicity: faults may degrade a decided verdict to
	// unknown, never change one decided verdict into another.
	for name, cv := range clean {
		fv := faulty[name]
		if decided(cv) && decided(fv) && cv != fv {
			t.Errorf("%s: verdict flipped under faults: clean=%s faulty=%s", name, cv, fv)
		}
	}
	assertNoGoroutineLeak(t, before)
}

// TestChaosSandboxFaultSites runs the suite through a sandboxed engine with
// the hard-fault sites armed — worker.kill (child SIGKILLs itself
// mid-analysis), worker.hang (child wedges until the wall watchdog fires),
// and store.corrupt (disk-tier reads see flipped bytes) — under the same
// contract as the soft-fault chaos run: outcomes may degrade to unknown,
// decided verdicts never flip, nothing leaks or wedges.
func TestChaosSandboxFaultSites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run spawns worker processes; skipped in -short")
	}
	before := runtime.NumGoroutine()
	insts := bench.Suite()[:12]
	dir := t.TempDir()

	sandboxed := func(wall time.Duration) func(*Config) {
		return func(cfg *Config) {
			m := cfg.Metrics
			st, err := store.Open(store.Options{Dir: dir, Stamp: Stamp(cfg.Analyzer), Metrics: m})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Store = st
			sb := &Sandbox{Binary: os.Args[0], Wall: wall, Metrics: m}
			cfg.Runner = sb.Run
			// Quarantine is covered by its own tests; an effectively
			// unreachable threshold keeps every resubmission admissible here.
			cfg.QuarantineThreshold = 1 << 20
		}
	}

	clean := runSuiteThroughEngine(t, insts, sandboxed(60*time.Second))

	faultinject.Enable(&faultinject.Plan{Seed: 11, Rules: []faultinject.Rule{
		{Site: "worker.kill", Kind: faultinject.KindError, Rate: 0.2},
		{Site: "worker.hang", Kind: faultinject.KindError, Rate: 0.15},
		{Site: "store.corrupt", Kind: faultinject.KindError, Rate: 0.3},
	}})
	defer faultinject.Disable()
	faulty := runSuiteThroughEngine(t, insts, sandboxed(2*time.Second))
	hits := faultinject.Hits()
	faultinject.Disable()

	for _, site := range []string{"worker.kill", "worker.hang", "store.corrupt"} {
		if hits[site] == 0 {
			t.Errorf("site %s never exercised (hits=%v)", site, hits)
		}
	}
	if len(faulty) != len(insts) {
		t.Fatalf("faulty run produced %d outcomes for %d instances", len(faulty), len(insts))
	}
	for name, cv := range clean {
		fv := faulty[name]
		if decided(cv) && decided(fv) && cv != fv {
			t.Errorf("%s: verdict flipped under hard faults: clean=%s faulty=%s", name, cv, fv)
		}
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak waits for the goroutine count to return to (near)
// its pre-test level, mirroring the bench chaos harness fence.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
