package faultinject

import (
	"strings"
	"testing"
	"time"
)

// withPlan arms p for the duration of the test.
func withPlan(t *testing.T, p *Plan) {
	t.Helper()
	Enable(p)
	t.Cleanup(Disable)
}

func TestDisabledIsZero(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	if f := Check("smt.solve"); f != (Fault{}) {
		t.Fatalf("disabled Check returned %+v", f)
	}
	if h := Hits(); h != nil {
		t.Fatalf("disabled Hits returned %v", h)
	}
}

func TestEveryFiresDeterministically(t *testing.T) {
	withPlan(t, &Plan{Seed: 1, Rules: []Rule{
		{Kind: KindError, Site: "s", Every: 3, Msg: "boom"},
	}})
	var fired []int
	for i := 1; i <= 9; i++ {
		if f := Check("s"); f.Err != "" {
			if f.Err != "boom" {
				t.Fatalf("hit %d: err %q, want boom", i, f.Err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("every=3 fired on hits %v, want [3 6 9]", fired)
	}
	if h := Hits()["s"]; h != 9 {
		t.Fatalf("Hits()[s] = %d, want 9", h)
	}
}

func TestRateIsDeterministicAndRoughlyCalibrated(t *testing.T) {
	pattern := func(seed int64) []bool {
		Enable(&Plan{Seed: seed, Rules: []Rule{{Kind: KindError, Site: "s", Rate: 0.25}}})
		defer Disable()
		out := make([]bool, 2000)
		for i := range out {
			out[i] = Check("s").Err != ""
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different firing at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// 2000 hits at rate 0.25: expect ~500; accept a generous band.
	if fires < 350 || fires > 650 {
		t.Fatalf("rate 0.25 fired %d/2000 times", fires)
	}
	c := pattern(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

func TestPanicKind(t *testing.T) {
	withPlan(t, &Plan{Seed: 1, Rules: []Rule{{Kind: KindPanic, Site: "s", Every: 1}}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic rule did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "faultinject") || !strings.Contains(msg, "s") {
			t.Fatalf("panic message %v does not identify the site", r)
		}
	}()
	Check("s")
}

func TestLatencyAndDeadlineKinds(t *testing.T) {
	withPlan(t, &Plan{Seed: 1, Rules: []Rule{
		{Kind: KindLatency, Site: "s", Every: 1, Delay: 10 * time.Millisecond},
		{Kind: KindDeadline, Site: "s", Every: 1},
	}})
	t0 := time.Now()
	f := Check("s")
	if !f.Deadline {
		t.Fatal("deadline rule did not set Fault.Deadline")
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}
}

func TestSiteIsolation(t *testing.T) {
	withPlan(t, &Plan{Seed: 1, Rules: []Rule{{Kind: KindError, Site: "a", Every: 1}}})
	if f := Check("b"); f != (Fault{}) {
		t.Fatalf("unarmed site b got fault %+v", f)
	}
	if f := Check("a"); f.Err == "" {
		t.Fatal("armed site a got no fault")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("panic@smt.solve:rate=0.1; latency@core.query:every=3:delay=5ms ;error@smt.step:every=2:msg=zap")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != KindPanic || r.Site != "smt.solve" || r.Rate != 0.1 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Kind != KindLatency || r.Site != "core.query" || r.Every != 3 || r.Delay != 5*time.Millisecond {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = p.Rules[2]
	if r.Kind != KindError || r.Site != "smt.step" || r.Every != 2 || r.Msg != "zap" {
		t.Fatalf("rule 2 = %+v", r)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"panic@",
		"@site:rate=1",
		"explode@smt.solve:rate=1",
		"panic@smt.solve",           // no schedule
		"panic@smt.solve:rate=2",    // rate out of range
		"panic@smt.solve:every=0",   // every must be positive
		"panic@smt.solve:bogus=1",   // unknown option
		"panic@smt.solve:rate",      // malformed option
		"latency@smt.solve:every=1", // latency without delay
		"latency@smt.solve:every=1:delay=x",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", spec)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "error@s:every=1")
	t.Setenv(EnvSeedVar, "42")
	ok, err := EnableFromEnv()
	if err != nil || !ok {
		t.Fatalf("EnableFromEnv = %v, %v", ok, err)
	}
	t.Cleanup(Disable)
	if f := Check("s"); f.Err == "" {
		t.Fatal("env-armed plan did not fire")
	}
	t.Setenv(EnvSeedVar, "notanumber")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
	t.Setenv(EnvVar, "")
	t.Setenv(EnvSeedVar, "")
	if ok, err := EnableFromEnv(); ok || err != nil {
		t.Fatalf("empty env: got %v, %v", ok, err)
	}
}
